#include "sim/simulator.h"

#include "obs/trace.h"

namespace dcfb::sim {

namespace {

/** Merge a component's counters and histograms under a prefix. */
void
merge(RunResult &out, const std::string &prefix, const StatSet &stats)
{
    for (const auto &kv : stats.all())
        out.stats[prefix + "." + kv.first] += kv.second;
    for (const auto &kv : stats.histograms()) {
        if (kv.second.count == 0)
            continue;
        out.hists[prefix + "." + kv.first].merge(kv.second);
    }
}

} // namespace

RunResult
simulate(const SystemConfig &config, const RunWindows &windows)
{
    System system(config);

    for (Cycle c = 0; c < windows.warm; ++c)
        system.step();

    std::uint64_t instr_before = system.instructions();
    system.resetStats();

    // Miss-attribution tracing covers exactly the measured window, so
    // the bounded stream is not burnt on warmup traffic.
    bool tracing = obs::Tracing::sinkOpen();
    if (tracing) {
        obs::Tracing::beginRun(config.profile.name,
                               presetName(config.preset));
    }

    for (Cycle c = 0; c < windows.measure; ++c)
        system.step();

    if (tracing)
        obs::Tracing::endRun();

    RunResult res;
    res.workload = config.profile.name;
    res.design = presetName(config.preset);
    res.cycles = windows.measure;
    res.instructions = system.instructions() - instr_before;

    merge(res, "sim", system.simStats);
    merge(res, "fe", system.fetch->stats());
    merge(res, "l1i", system.l1i->stats());
    merge(res, "l1d", system.l1d->stats());
    merge(res, "llc", system.llc->stats());
    merge(res, "mem", system.memory->stats());
    merge(res, "noc", system.mesh->stats());
    merge(res, "btb", system.btb->stats());
    merge(res, "tage", system.tage->stats());
    merge(res, "be", system.backend->stats());
    if (system.decoupled) {
        merge(res, "sg", system.decoupled->shotgunBtb().stats());
        merge(res, "bb", system.decoupled->bbBtb().stats());
    }
    if (auto *p = dynamic_cast<prefetch::Sn4lDisBtb *>(
            system.prefetcher.get())) {
        merge(res, "pf", p->stats());
        merge(res, "pf", p->seqTable().stats());
        merge(res, "pf", p->disTable().stats());
        merge(res, "pf", p->rlu().stats());
    }
    if (auto *p = dynamic_cast<prefetch::ConfluencePrefetcher *>(
            system.prefetcher.get())) {
        merge(res, "pf", p->stats());
    }
    return res;
}

double
fscr(const RunResult &design, const RunResult &baseline)
{
    std::uint64_t base = baseline.frontendStalls();
    if (base == 0)
        return 0.0;
    std::uint64_t mine = design.frontendStalls();
    if (mine >= base)
        return 0.0;
    return 1.0 - static_cast<double>(mine) / static_cast<double>(base);
}

double
speedup(const RunResult &design, const RunResult &baseline)
{
    return baseline.ipc() > 0 ? design.ipc() / baseline.ipc() : 0.0;
}

} // namespace dcfb::sim
