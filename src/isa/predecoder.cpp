#include "isa/predecoder.h"

#include "isa/vl_encoding.h"
#include "rt/faults.h"

namespace dcfb::isa {

namespace {

/** Decode one instruction at (block, offset); VL instructions may straddle
 *  into the next block, so reads go through the stitched image reader. */
bool
decodeOne(const workload::ProgramImage &image, bool variable_length,
          Addr block_addr, unsigned byte_offset, PredecodedBranch &out)
{
    Addr pc = blockAlign(block_addr) + byte_offset;
    if (!variable_length) {
        if (byte_offset % kInstrBytes != 0)
            return false;
        const auto *blk = image.block(pc);
        if (!blk)
            return false;
        std::uint32_t word = readWord(blk->data() + byte_offset);
        DecodedInstr instr = decodeInstr(pc, word);
        if (!isBranch(instr.kind))
            return false;
        out = {byte_offset, instr.kind, instr.hasTarget, instr.target, pc};
        return true;
    }
    std::uint8_t buf[kVlMaxLength];
    unsigned got = image.read(pc, buf, kVlMaxLength);
    VlDecodedInstr instr = vlDecodeInstr(pc, buf, got);
    if (instr.length == 0 || !isBranch(instr.kind))
        return false;
    out = {byte_offset, instr.kind, instr.hasTarget, instr.target, pc};
    return true;
}

} // namespace

void
Predecoder::perturb(std::vector<PredecodedBranch> &branches) const
{
    if (!injector)
        return;
    for (auto &b : branches) {
        if (b.hasTarget)
            b.target = injector->corruptTarget(b.target);
    }
}

const Predecoder::CachedBlock &
Predecoder::cachedBlock(Addr block_addr) const
{
    if (cache.empty())
        cache.resize(kCacheEntries);
    Addr tag = blockNumber(block_addr);
    CachedBlock &e =
        cache[static_cast<std::size_t>(tag) & (kCacheEntries - 1)];
    if (e.tag != tag) {
        e.tag = tag;
        e.count = 0;
        for (unsigned slot = 0; slot < kInstrPerBlock; ++slot) {
            PredecodedBranch b;
            if (decodeOne(image, false, block_addr, slot * kInstrBytes, b))
                e.branches[e.count++] = b;
        }
    }
    return e;
}

std::vector<PredecodedBranch>
Predecoder::predecodeBlock(Addr block_addr) const
{
    std::vector<PredecodedBranch> branches;
    if (variableLength) {
        // Boundaries unknown without a footprint: nothing decodable.
        return branches;
    }
    const CachedBlock &e = cachedBlock(block_addr);
    branches.assign(e.branches.begin(), e.branches.begin() + e.count);
    perturb(branches);
    return branches;
}

std::span<const PredecodedBranch>
Predecoder::predecodeBlockSpan(Addr block_addr) const
{
    if (variableLength)
        return {};
    const CachedBlock &e = cachedBlock(block_addr);
    if (!injector) [[likely]]
        return {e.branches.data(), e.count};
    // Injection: perturb a scratch copy so the cached clean decode stays
    // clean and the RNG draw order matches predecodeBlock() exactly.
    for (unsigned i = 0; i < e.count; ++i) {
        scratch[i] = e.branches[i];
        if (scratch[i].hasTarget)
            scratch[i].target = injector->corruptTarget(scratch[i].target);
    }
    return {scratch.data(), e.count};
}

bool
Predecoder::decodeBranchAt(Addr block_addr, unsigned byte_offset,
                           PredecodedBranch &out) const
{
    if (byte_offset >= kBlockBytes)
        return false;
    bool found = false;
    if (!variableLength) {
        const CachedBlock &e = cachedBlock(block_addr);
        for (unsigned i = 0; i < e.count; ++i) {
            if (e.branches[i].byteOffset == byte_offset) {
                out = e.branches[i];
                found = true;
                break;
            }
        }
    } else {
        found = decodeOne(image, variableLength, block_addr, byte_offset, out);
    }
    if (found && injector && out.hasTarget)
        out.target = injector->corruptTarget(out.target);
    return found;
}

std::vector<PredecodedBranch>
Predecoder::predecodeWithFootprint(
    Addr block_addr, const std::vector<std::uint8_t> &footprint) const
{
    std::vector<PredecodedBranch> branches;
    for (std::uint8_t off : footprint) {
        PredecodedBranch b;
        if (off < kBlockBytes &&
            decodeOne(image, variableLength, block_addr, off, b)) {
            branches.push_back(b);
        }
    }
    perturb(branches);
    return branches;
}

std::vector<PredecodedBranch>
Predecoder::decodeAt(Addr block_addr, unsigned byte_offset) const
{
    std::vector<PredecodedBranch> branches;
    if (!variableLength) {
        // Serve DisTable replays from the clean block cache: the same
        // blocks flow through predecodeBlock() for BTB prefill, so the
        // entry is usually resident.  A non-branch (or misaligned)
        // offset simply finds no record, as before.
        if (byte_offset < kBlockBytes) {
            const CachedBlock &e = cachedBlock(block_addr);
            for (unsigned i = 0; i < e.count; ++i) {
                if (e.branches[i].byteOffset == byte_offset) {
                    branches.push_back(e.branches[i]);
                    break;
                }
            }
        }
        perturb(branches);
        return branches;
    }
    PredecodedBranch b;
    if (byte_offset < kBlockBytes &&
        decodeOne(image, variableLength, block_addr, byte_offset, b)) {
        branches.push_back(b);
    }
    perturb(branches);
    return branches;
}

} // namespace dcfb::isa
