# Empty compiler generated dependencies file for fig02_seq_miss_fraction.
# This may be replaced when dependencies are built.
