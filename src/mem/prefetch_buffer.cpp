#include "mem/prefetch_buffer.h"

namespace dcfb::mem {

void
PrefetchBuffer::insert(Addr block_addr)
{
    Addr key = blockAlign(block_addr);
    auto it = map.find(key);
    if (it != map.end()) {
        order.erase(it->second);
        order.push_front(key);
        it->second = order.begin();
        return;
    }
    if (map.size() >= cap) {
        map.erase(order.back());
        order.pop_back();
    }
    order.push_front(key);
    map[key] = order.begin();
}

bool
PrefetchBuffer::contains(Addr block_addr) const
{
    return map.count(blockAlign(block_addr)) != 0;
}

bool
PrefetchBuffer::extract(Addr block_addr)
{
    auto it = map.find(blockAlign(block_addr));
    if (it == map.end())
        return false;
    order.erase(it->second);
    map.erase(it);
    return true;
}

} // namespace dcfb::mem
