/**
 * @file
 * Figure 14 (+ Section VII.E): L1i cache lookups normalized to the
 * no-prefetcher baseline, and the RLU-size sweep showing 8 entries
 * suffice.  Paper: Confluence lowest; ours ~ Shotgun.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 14 - cache lookups, normalized to baseline",
                  "Confluence lowest; SN4L+Dis+BTB ~ Shotgun; RLU=8 enough");

    auto names = bench::allWorkloads();
    auto avg_lookups = [&](sim::Preset preset, unsigned rlu) {
        double sum = 0.0;
        for (const auto &name : names) {
            auto cfg = sim::makeConfig(workload::serverProfile(name),
                                       preset);
            if (rlu != 8)
                cfg.sn4l.rluEntries = rlu;
            auto res = sim::simulate(cfg, bench::windows());
            sum += static_cast<double>(res.stat("l1i.l1i_lookups"));
        }
        return sum / static_cast<double>(names.size());
    };

    double base = avg_lookups(sim::Preset::Baseline, 8);
    sim::Table table({"design", "lookups (norm.)"});
    table.addRow({"Baseline", "1.00"});
    table.addRow({"SN4L+Dis+BTB (no RLU)",
                  sim::Table::num(
                      avg_lookups(sim::Preset::SN4LDisBtb, 0) / base)});
    table.addRow({"SN4L+Dis+BTB (RLU=4)",
                  sim::Table::num(
                      avg_lookups(sim::Preset::SN4LDisBtb, 4) / base)});
    table.addRow({"SN4L+Dis+BTB (RLU=8)",
                  sim::Table::num(
                      avg_lookups(sim::Preset::SN4LDisBtb, 8) / base)});
    table.addRow({"SN4L+Dis+BTB (RLU=16)",
                  sim::Table::num(
                      avg_lookups(sim::Preset::SN4LDisBtb, 16) / base)});
    table.addRow({"Shotgun",
                  sim::Table::num(
                      avg_lookups(sim::Preset::Shotgun, 8) / base)});
    table.addRow({"Confluence",
                  sim::Table::num(
                      avg_lookups(sim::Preset::Confluence, 8) / base)});
    h.report(table, "Number of cache lookups, normalized to baseline");
    return 0;
}
