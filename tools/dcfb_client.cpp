/**
 * @file
 * dcfb-client: CLI for the experiment service daemon.
 *
 *   dcfb-client --socket PATH submit --workload NAME --preset NAME
 *               [--warm N --measure N] [--seed N] [--inject SPEC]
 *               [--deadline-ms N] [--wait]
 *   dcfb-client --socket PATH status JOB
 *   dcfb-client --socket PATH fetch JOB
 *   dcfb-client --socket PATH cancel JOB
 *   dcfb-client --socket PATH stats | ping | drain
 *   dcfb-client --socket PATH raw '<request json>'
 *
 * The reply document is printed to stdout; exit status is 0 when the
 * daemon replied "ok":true, 1 when it replied with an error, and 2 on
 * usage/connection problems.  `submit --wait` retries admission
 * rejects with the daemon's retry_after_ms hint and blocks until the
 * result is available.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "svc/client.h"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH COMMAND ...\n"
        "  submit --workload NAME --preset NAME [--warm N --measure N]\n"
        "         [--seed N] [--inject SPEC] [--deadline-ms N] [--wait]\n"
        "  status JOB | fetch JOB | cancel JOB\n"
        "  stats | ping | drain\n"
        "  raw '<request json>'\n",
        argv0);
    std::exit(2);
}

int
printReply(const dcfb::rt::Expected<dcfb::obs::JsonValue> &reply)
{
    if (!reply.ok()) {
        std::fprintf(stderr, "dcfb-client: %s\n",
                     reply.error().render().c_str());
        return 2;
    }
    std::printf("%s\n", reply.value().dump(2).c_str());
    const dcfb::obs::JsonValue *ok = reply.value().find("ok");
    bool succeeded = ok &&
        ok->kind() == dcfb::obs::JsonValue::Kind::Bool && ok->asBool();
    return succeeded ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dcfb;

    std::string socket_path;
    int i = 1;
    if (i + 1 < argc && std::strcmp(argv[i], "--socket") == 0) {
        socket_path = argv[i + 1];
        i += 2;
    }
    if (socket_path.empty() || i >= argc)
        usage(argv[0]);
    std::string command = argv[i++];

    svc::Client client;
    if (auto connected = client.connect(socket_path); !connected.ok()) {
        std::fprintf(stderr, "dcfb-client: %s\n",
                     connected.error().render().c_str());
        return 2;
    }

    if (command == "ping" || command == "stats" || command == "drain") {
        obs::JsonValue req = obs::JsonValue::object();
        req["op"] = command;
        return printReply(client.request(req));
    }

    if (command == "status" || command == "fetch" ||
        command == "cancel") {
        if (i >= argc)
            usage(argv[0]);
        obs::JsonValue req = obs::JsonValue::object();
        req["op"] = command;
        req["job"] = std::string(argv[i]);
        return printReply(client.request(req));
    }

    if (command == "raw") {
        if (i >= argc)
            usage(argv[0]);
        return printReply(client.requestLine(argv[i]));
    }

    if (command != "submit")
        usage(argv[0]);

    obs::JsonValue req = obs::JsonValue::object();
    req["op"] = "submit";
    bool wait = false;
    for (; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--workload")
            req["workload"] = std::string(next());
        else if (arg == "--preset")
            req["preset"] = std::string(next());
        else if (arg == "--warm")
            req["warm"] =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--measure")
            req["measure"] =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--seed")
            req["seed"] =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--inject")
            req["inject"] = std::string(next());
        else if (arg == "--deadline-ms")
            req["deadline_ms"] =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--wait")
            wait = true;
        else
            usage(argv[0]);
    }
    if (!req.find("workload") || !req.find("preset"))
        usage(argv[0]);

    if (wait)
        return printReply(client.submitAndWait(req));
    return printReply(client.request(req));
}
