#!/usr/bin/env python3
"""Regenerate the golden-result corpus under tests/golden/.

The corpus pins the simulator's RunResult for twelve (workload, preset)
cells (see tests/golden_cells.h); tests/test_golden.cpp asserts that
re-simulating each cell reproduces its committed JSON byte for byte.

Regeneration is deliberately guarded: it REFUSES to run over a dirty
git tree, so new goldens can only ever appear in a commit whose diff
shows exactly which counters changed -- accepting new results is a
reviewed decision, never a side effect of a local build.

Usage:
  scripts/update_golden.py [--build-dir build/release] [--force-build]
"""

import argparse
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent


def run(cmd, **kwargs):
    print("  $", " ".join(str(c) for c in cmd))
    return subprocess.run(cmd, check=True, cwd=REPO, **kwargs)


def dirty_paths():
    out = subprocess.run(
        ["git", "status", "--porcelain"],
        cwd=REPO, check=True, capture_output=True, text=True).stdout
    return [line for line in out.splitlines() if line.strip()]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build/release",
                    help="CMake build directory (default: build/release)")
    ap.add_argument("--force-build", action="store_true",
                    help="configure the build directory if it is missing")
    args = ap.parse_args()

    dirty = dirty_paths()
    if dirty:
        print("refusing to regenerate goldens over a dirty git tree:",
              file=sys.stderr)
        for line in dirty:
            print("  " + line, file=sys.stderr)
        print("commit or stash first, so the corpus diff stands alone.",
              file=sys.stderr)
        return 1

    build = REPO / args.build_dir
    if not (build / "CMakeCache.txt").exists():
        if not args.force_build:
            print(f"no build at {build}; run cmake there or pass "
                  "--force-build", file=sys.stderr)
            return 1
        run(["cmake", "-S", ".", "-B", str(build), "-G", "Ninja",
             "-DCMAKE_BUILD_TYPE=Release"])

    run(["cmake", "--build", str(build), "--target", "dcfb-golden"])
    run([str(build / "bin" / "dcfb-golden"), "tests/golden"])

    changed = dirty_paths()
    if changed:
        print("\ncorpus changed; review and commit:")
        for line in changed:
            print("  " + line)
    else:
        print("\ncorpus unchanged: results are bit-identical.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
