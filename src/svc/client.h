/**
 * @file
 * Client side of the dcfb-svc-v1 protocol: a thin blocking connection
 * to a dcfb-serve endpoint (Unix socket or TCP `host:port`) plus the
 * retry/backoff policy the daemon's backpressure replies ask for.
 *
 * `Client` owns one connected socket and exchanges one reply per
 * request line; replies are reassembled with svc::LineFramer, so
 * fragmentation over TCP is invisible.  `submitAndWait()` layers the full job lifecycle on
 * top: submit, honor `queue_full`/`draining` rejects by backing off
 * and retrying, then poll `fetch` until the job is terminal.  Both the
 * dcfb-client CLI and the in-process tests drive this class.
 *
 * Failure handling is governed by a `RetryPolicy`:
 *
 *   - Backoff sleeps are jittered by a factor uniform in [0.5, 1.5) so
 *     a fleet of clients released by the same daemon restart does not
 *     reconverge into a thundering herd.  Consecutive failures double
 *     the base delay up to `capMs`; the daemon's `retry_after_ms` hint,
 *     when present, replaces the base for that one sleep.
 *   - `budgetMs` caps the cumulative time spent sleeping on *failure*
 *     paths (admission rejects, transport errors).  Healthy `not_ready`
 *     polling while a job runs is not charged against the budget.
 *     0 means unbounded (the historical behavior).
 *   - Transport errors (daemon crash, socket reset) trigger a
 *     reconnect to the remembered socket path and an idempotent
 *     resubmit: the daemon dedupes by content fingerprint, so a retried
 *     submit can never double-run a simulation.
 *   - A terminal `unknown_job` fetch reply — the signature of a daemon
 *     that restarted without a journal, or recovered the job under a
 *     new id — is handled by resubmitting the original document.
 *   - `recvTimeoutMs` arms SO_RCVTIMEO so a swallowed reply (e.g. the
 *     `--svc-inject drop` fault) surfaces as a transport error instead
 *     of a hang.
 */

#ifndef DCFB_SVC_CLIENT_H
#define DCFB_SVC_CLIENT_H

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "obs/json.h"
#include "rt/error.h"
#include "svc/net.h"
#include "svc/protocol.h"

namespace dcfb::svc {

/** Backoff/budget knobs for Client::submitAndWait(). */
struct RetryPolicy
{
    /** Cumulative failure-retry budget in ms; 0 = unbounded. */
    std::uint64_t budgetMs = 0;
    /** Base backoff for submit rejects and transport errors. */
    std::uint64_t submitBackoffMs = 250;
    /** Base poll interval while a job is `not_ready`. */
    std::uint64_t pollMs = 100;
    /** Ceiling for the exponential failure backoff. */
    std::uint64_t capMs = 2000;
    /** SO_RCVTIMEO on the socket in ms; 0 = block indefinitely. */
    std::uint64_t recvTimeoutMs = 0;
    /** Jitter seed; 0 derives one from the process id so concurrent
     *  clients desynchronize by default. */
    std::uint64_t jitterSeed = 0;
};

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect to the daemon at @p endpoint — a Unix-socket path or a
     * TCP `host:port` (svc::isTcpEndpoint decides).  The endpoint is
     * remembered so failure handling can reconnect after a daemon
     * restart.
     */
    rt::Expected<void> connect(const std::string &endpoint);

    /**
     * connect(), retrying refused/timed-out attempts (ECONNREFUSED,
     * ETIMEDOUT, and ENOENT for a Unix socket not bound yet) with the
     * policy's jittered exponential backoff.  Fleet startup races the
     * coordinator against its workers; this absorbs the window where a
     * daemon's socket is not listening yet.  Bounded by the policy's
     * `budgetMs` (and @p max_retries); non-transient errors (a bad
     * host, a refused permission) fail immediately.
     */
    rt::Expected<void> connectWithRetry(const std::string &endpoint,
                                        unsigned max_retries = 40);

    bool connected() const { return fd >= 0; }
    void close();

    /** Install @p p; applies the receive timeout immediately when
     *  already connected. */
    void setRetryPolicy(const RetryPolicy &p);
    const RetryPolicy &retryPolicy() const { return policy; }

    /** One request line out, one reply document back. */
    rt::Expected<obs::JsonValue> request(const obs::JsonValue &doc);

    /** request() on a raw line (the CLI's passthrough mode). */
    rt::Expected<obs::JsonValue> requestLine(const std::string &line);

    /** Receive one more reply document without sending anything —
     *  streaming ops (the coordinator's `grid`) answer one request
     *  with many frames. */
    rt::Expected<obs::JsonValue> receive();

    /**
     * Submit @p doc (an `op:"submit"` document) and block until the job
     * is terminal, retrying admission rejects, transport errors, and
     * post-restart `unknown_job` replies per the RetryPolicy.  Returns
     * the `fetch` reply (carrying `result` on success) or a typed error
     * after @p max_retries consecutive failures or once the retry
     * budget is exhausted.
     */
    rt::Expected<obs::JsonValue> submitAndWait(const obs::JsonValue &doc,
                                               unsigned max_retries = 40);

  private:
    rt::Expected<void> sendAll(const std::string &text);
    rt::Expected<std::string> recvLine();
    void applyRecvTimeout();

    int fd = -1;
    LineFramer framer;      //!< reply-line reassembly (partial reads)
    std::string socketPath; //!< last connect() target, for reconnects
    int lastErrno = 0;      //!< errno of the last transport failure
    RetryPolicy policy;
    Rng jitter;             //!< backoff jitter stream
};

} // namespace dcfb::svc

#endif // DCFB_SVC_CLIENT_H
