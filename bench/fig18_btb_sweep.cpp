/**
 * @file
 * Figure 18: speedup of SN4L+Dis+BTB over Shotgun as the BTB budget
 * shrinks (emulating the larger instruction footprints of commercial
 * server workloads).  Paper: the gap grows as the BTB gets smaller.
 */

#include <cmath>

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 18 - ours vs. Shotgun with shrinking BTBs",
                  "the gap over Shotgun grows as BTB size decreases");

    sim::Table table({"BTB scale", "ours BTB", "Shotgun U-BTB",
                      "ours/Shotgun speedup"});
    for (unsigned div : {1u, 2u, 4u, 8u}) {
        double log_sum = 0.0;
        unsigned ours_btb = 2048 / div;
        unsigned sg_ubtb = 1536 / div;
        for (const auto &name : bench::allWorkloads()) {
            auto profile = workload::serverProfile(name);
            auto ours_cfg =
                sim::makeConfig(profile, sim::Preset::SN4LDisBtb);
            ours_cfg.btbEntries = ours_btb;
            auto sg_cfg = sim::makeConfig(profile, sim::Preset::Shotgun);
            sg_cfg.shotgunBtb.ubtbEntries = sg_ubtb;
            sg_cfg.shotgunBtb.cbtbEntries = std::max(128u / div, 16u);
            sg_cfg.shotgunBtb.ribEntries = std::max(512u / div, 32u);
            auto ours = sim::simulate(ours_cfg, bench::windows());
            auto sg = sim::simulate(sg_cfg, bench::windows());
            log_sum += std::log(ours.ipc() / sg.ipc());
        }
        double gmean = std::exp(log_sum / 7.0);
        table.addRow({"1/" + std::to_string(div),
                      std::to_string(ours_btb), std::to_string(sg_ubtb),
                      sim::Table::num(gmean, 3)});
    }
    h.report(table, "Speedup of SN4L+Dis+BTB over Shotgun, varying BTB size");
    return 0;
}
