#include "frontend/tage.h"

#include <bit>
#include <cassert>
#include <cmath>

namespace dcfb::frontend {

Tage::Tage(const TageConfig &config, exec::Arena *arena)
    : cfg(config), base(std::size_t{1} << config.baseEntriesLog2,
                        SatCounter(2, 2), exec::ArenaAlloc<SatCounter>(arena)),
      history(exec::ArenaAlloc<std::uint8_t>(arena)), useAltOnNa(4, 8),
      cPredictions(statSet.lazy("tage_predictions")),
      cCorrect(statSet.lazy("tage_correct")),
      cMispredict(statSet.lazy("tage_mispredict")),
      cAllocations(statSet.lazy("tage_allocations"))
{
    assert(cfg.numTables >= 2);
    assert(cfg.numTables <= kMaxTageTables);
    tables.resize(cfg.numTables,
                  exec::ArenaVector<TaggedEntry>(
                      exec::ArenaAlloc<TaggedEntry>(arena)));
    histLengths.resize(cfg.numTables);
    foldedIndex.resize(cfg.numTables);
    foldedTag0.resize(cfg.numTables);
    foldedTag1.resize(cfg.numTables);

    double ratio = std::pow(
        static_cast<double>(cfg.maxHistory) / cfg.minHistory,
        1.0 / (cfg.numTables - 1));
    double len = cfg.minHistory;
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        histLengths[t] = static_cast<unsigned>(len + 0.5);
        len *= ratio;
        tables[t].assign(std::size_t{1} << cfg.taggedEntriesLog2,
                         TaggedEntry{0, SatCounter(cfg.counterBits,
                                                   1u << (cfg.counterBits - 1)),
                                     0});
        foldedIndex[t] = {0, histLengths[t], cfg.taggedEntriesLog2};
        foldedTag0[t] = {0, histLengths[t], cfg.tagBits};
        foldedTag1[t] = {0, histLengths[t], cfg.tagBits - 1};
    }
    // Power-of-two ring so a push is one index decrement + mask instead
    // of shifting every element.
    std::size_t ring = std::bit_ceil(std::size_t{cfg.maxHistory} + 1);
    history.assign(ring, 0);
    histMask = ring - 1;
    histHead = 0;
}

std::uint32_t
Tage::baseIndex(Addr pc) const
{
    return static_cast<std::uint32_t>((pc >> 2) &
                                      (base.size() - 1));
}

std::uint32_t
Tage::taggedIndex(Addr pc, unsigned table) const
{
    std::uint32_t p = static_cast<std::uint32_t>(pc >> 2);
    std::uint32_t idx = p ^ (p >> (cfg.taggedEntriesLog2 - table)) ^
        foldedIndex[table].value;
    return idx & ((1u << cfg.taggedEntriesLog2) - 1);
}

std::uint16_t
Tage::taggedTag(Addr pc, unsigned table) const
{
    std::uint32_t p = static_cast<std::uint32_t>(pc >> 2);
    std::uint32_t tag = p ^ foldedTag0[table].value ^
        (foldedTag1[table].value << 1);
    return static_cast<std::uint16_t>(tag & ((1u << cfg.tagBits) - 1));
}

void
Tage::shiftHistory(bool bit)
{
    // The ring keeps the newest bit at histHead; folding reads the bit
    // that leaves each component's window before the push.
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        bool out = historyBit(histLengths[t] - 1);
        foldedIndex[t].update(bit, out);
        foldedTag0[t].update(bit, out);
        foldedTag1[t].update(bit, out);
    }
    histHead = (histHead - 1) & histMask;
    history[histHead] = bit ? 1 : 0;
}

Tage::Lookup
Tage::lookup(Addr pc)
{
    Lookup lk;
    for (unsigned t = 0; t < cfg.numTables; ++t) {
        lk.indices[t] = taggedIndex(pc, t);
        lk.tags[t] = taggedTag(pc, t);
    }
    // Longest-history matching component provides; next match is altpred.
    for (int t = static_cast<int>(cfg.numTables) - 1; t >= 0; --t) {
        const auto &e = tables[t][lk.indices[t]];
        if (e.tag == lk.tags[t]) {
            if (lk.provider < 0) {
                lk.provider = t;
                lk.providerPred = e.ctr.taken();
            } else if (lk.alt < 0) {
                lk.alt = t;
                lk.altPred = e.ctr.taken();
                break;
            }
        }
    }
    bool base_pred = base[baseIndex(pc)].taken();
    if (lk.alt < 0)
        lk.altPred = base_pred;
    if (lk.provider >= 0) {
        const auto &e = tables[lk.provider][lk.indices[lk.provider]];
        bool newly_alloc = e.useful == 0 && e.ctr.weak();
        lk.pred = (newly_alloc && useAltOnNa.taken()) ? lk.altPred
                                                      : lk.providerPred;
    } else {
        lk.pred = base_pred;
    }
    return lk;
}

bool
Tage::predict(Addr pc)
{
    last = lookup(pc);
    cPredictions.add();
    return last.pred;
}

void
Tage::update(Addr pc, bool taken)
{
    // Recompute in case predict() was not the immediately preceding call
    // for this PC (defensive; the fetch engine always pairs them).
    Lookup lk = lookup(pc);
    if (lk.pred == taken)
        cCorrect.add();
    else
        cMispredict.add();

    if (lk.provider >= 0) {
        auto &e = tables[lk.provider][lk.indices[lk.provider]];
        bool newly_alloc = e.useful == 0 && e.ctr.weak();
        if (newly_alloc && lk.providerPred != lk.altPred)
            useAltOnNa.update(lk.altPred == taken);
        e.ctr.update(taken);
        if (lk.providerPred != lk.altPred) {
            if (lk.providerPred == taken) {
                if (e.useful < ((1u << cfg.usefulBits) - 1))
                    ++e.useful;
            } else if (e.useful > 0) {
                --e.useful;
            }
        }
    } else {
        base[baseIndex(pc)].update(taken);
    }

    // Allocate on misprediction into a longer-history component.
    if (lk.pred != taken && lk.provider <
        static_cast<int>(cfg.numTables) - 1) {
        unsigned start = static_cast<unsigned>(lk.provider + 1);
        // Pseudo-random start to avoid ping-pong allocation.
        allocSeed = allocSeed * 6364136223846793005ull + 1442695040888963407ull;
        if (start < cfg.numTables - 1 && (allocSeed >> 60) & 1)
            ++start;
        bool allocated = false;
        for (unsigned t = start; t < cfg.numTables; ++t) {
            auto &e = tables[t][lk.indices[t]];
            if (e.useful == 0) {
                e.tag = lk.tags[t];
                e.ctr = SatCounter(cfg.counterBits,
                                   taken ? (1u << (cfg.counterBits - 1))
                                         : (1u << (cfg.counterBits - 1)) - 1);
                allocated = true;
                cAllocations.add();
                break;
            }
        }
        if (!allocated) {
            // Decay usefulness on the candidate entries.
            for (unsigned t = start; t < cfg.numTables; ++t) {
                auto &e = tables[t][lk.indices[t]];
                if (e.useful > 0)
                    --e.useful;
            }
        }
    }

    shiftHistory(taken);
}

void
Tage::updateHistoryUnconditional(Addr pc)
{
    // Unconditional transfers inject a path bit so that history reflects
    // call/return structure.
    shiftHistory((pc >> 4) & 1);
}

} // namespace dcfb::frontend
