file(REMOVE_RECURSE
  "CMakeFiles/fig13_timeliness.dir/fig13_timeliness.cpp.o"
  "CMakeFiles/fig13_timeliness.dir/fig13_timeliness.cpp.o.d"
  "fig13_timeliness"
  "fig13_timeliness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_timeliness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
