#include "workload/profiles.h"

#include <sstream>

namespace dcfb::workload {

std::string
profileKey(const WorkloadProfile &p)
{
    std::ostringstream key;
    // Shortest-round-trip would be ideal; 17 significant digits is the
    // portable equivalent for doubles (distinct knob values never alias).
    key.precision(17);
    key << p.name << '|' << p.numFunctions << '|' << p.minBlocks << '|'
        << p.maxBlocks << '|' << p.minInstrs << '|' << p.maxInstrs << '|'
        << p.condProb << '|' << p.callProb << '|' << p.jumpProb << '|'
        << p.coldGuardFrac << '|' << p.takenBias << '|' << p.loopProb
        << '|' << p.zipfSkew << '|' << p.callSkew << '|' << p.maxCallDepth
        << '|' << p.driverBlocks << '|' << p.loadFrac << '|' << p.storeFrac
        << '|' << p.dataFootprint << '|' << p.variableLength << '|'
        << p.seed;
    return key.str();
}

namespace {

/** Build one profile from the per-workload shape knobs. */
WorkloadProfile
makeProfile(const std::string &name, std::uint32_t functions, double skew,
            std::uint32_t min_blocks, std::uint32_t max_blocks,
            double cond, double call, double jump, std::uint64_t seed)
{
    WorkloadProfile p;
    p.name = name;
    p.numFunctions = functions;
    p.zipfSkew = skew;
    p.minBlocks = min_blocks;
    p.maxBlocks = max_blocks;
    p.condProb = cond;
    p.callProb = call;
    p.jumpProb = jump;
    p.seed = seed;
    return p;
}

} // namespace

std::vector<std::string>
serverWorkloadNames()
{
    return {"Media Streaming", "OLTP (DB A)", "OLTP (DB B)",
            "Web (Apache)",    "Web (Zeus)",  "Web Frontend",
            "Web Search"};
}

rt::Expected<WorkloadProfile>
tryServerProfile(const std::string &name, bool variable_length)
{
    WorkloadProfile p;
    if (name == "Media Streaming") {
        // Streaming server: very large i-footprint, long straight-line
        // codec/protocol paths -> the biggest prefetcher upside (Fig. 16).
        p = makeProfile(name, 3200, 0.66, 5, 16, 0.34, 0.16, 0.08, 11);
        p.callSkew = 0.68;
        p.minInstrs = 8;
        p.maxInstrs = 22;
    } else if (name == "OLTP (DB A)") {
        // Oracle TPC-C: the largest active footprint and the flattest
        // function popularity -> worst Shotgun footprint miss ratio
        // (Fig. 1: 31 %).
        p = makeProfile(name, 3400, 0.72, 4, 12, 0.44, 0.20, 0.08, 12);
        p.callSkew = 0.70;
    } else if (name == "OLTP (DB B)") {
        // DB2 TPC-C: big but with a hotter core loop than DB A.
        p = makeProfile(name, 1800, 0.82, 4, 12, 0.44, 0.18, 0.07, 13);
        p.callSkew = 0.82;
    } else if (name == "Web (Apache)") {
        p = makeProfile(name, 1700, 0.82, 3, 11, 0.46, 0.18, 0.08, 14);
        p.callSkew = 0.82;
    } else if (name == "Web (Zeus)") {
        p = makeProfile(name, 1500, 0.83, 3, 11, 0.44, 0.18, 0.08, 15);
        p.callSkew = 0.83;
    } else if (name == "Web Frontend") {
        // Nginx+PHP: smallest active footprint -> smallest speedup (7 %).
        p = makeProfile(name, 800, 0.92, 3, 9, 0.46, 0.16, 0.06, 16);
        p.callSkew = 0.90;
        p.dataFootprint = 4ull << 20;
    } else if (name == "Web Search") {
        // Nutch/Lucene: moderate footprint, data-heavy.
        p = makeProfile(name, 1100, 0.87, 4, 12, 0.42, 0.16, 0.06, 17);
        p.callSkew = 0.87;
        p.loadFrac = 0.30;
        p.dataFootprint = 16ull << 20;
    } else {
        std::string known;
        for (const auto &n : serverWorkloadNames()) {
            if (!known.empty())
                known += ", ";
            known += n;
        }
        return rt::Error(rt::ErrorKind::Workload,
                         "unknown workload profile")
            .with("requested", name)
            .with("known profiles", known);
    }
    p.variableLength = variable_length;
    return p;
}

WorkloadProfile
serverProfile(const std::string &name, bool variable_length)
{
    return std::move(tryServerProfile(name, variable_length).value());
}

std::vector<WorkloadProfile>
allServerProfiles(bool variable_length)
{
    std::vector<WorkloadProfile> out;
    for (const auto &name : serverWorkloadNames())
        out.push_back(serverProfile(name, variable_length));
    return out;
}

ProgramRef
ImageCache::get(const WorkloadProfile &profile)
{
    std::string key = profileKey(profile);
    std::unique_lock<std::mutex> lock(mutex);
    ++lookups;
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    ++misses;
    // Build under the lock: grids resolve images serially up front, so
    // serializing builds costs nothing and prevents duplicate work.
    auto program = std::make_shared<const Program>(buildProgram(profile));
    cache.emplace(std::move(key), program);
    return program;
}

ProgramRef
ImageCache::server(const std::string &name, bool variable_length)
{
    return get(serverProfile(name, variable_length));
}

std::size_t
ImageCache::built() const
{
    std::unique_lock<std::mutex> lock(mutex);
    return misses;
}

std::size_t
ImageCache::hits() const
{
    std::unique_lock<std::mutex> lock(mutex);
    return lookups - misses;
}

void
ImageCache::clear()
{
    std::unique_lock<std::mutex> lock(mutex);
    cache.clear();
}

ImageCache &
ImageCache::global()
{
    static ImageCache instance;
    return instance;
}

} // namespace dcfb::workload
