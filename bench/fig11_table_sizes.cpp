/**
 * @file
 * Figure 11: miss coverage of SN4L vs. SeqTable size and of SN4L+Dis
 * vs. DisTable size, each against the unlimited-table reference.
 * Paper: 16 K-entry SeqTable reaches 96 % of unlimited; 4 K-entry
 * DisTable reaches 97 % of its maximum.
 */

#include "bench_common.h"

namespace {

using namespace dcfb;

sim::SystemConfig
sweepConfig(const std::string &name, sim::Preset preset,
            std::size_t seq_entries, std::size_t dis_entries)
{
    auto cfg = sim::makeConfig(workload::serverProfile(name), preset);
    cfg.sn4l.seqTableEntries = seq_entries;
    cfg.sn4l.disTable.entries = dis_entries;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv, "Fig. 11 - miss coverage vs. metadata table size",
                  "16K SeqTable ~ 96% of unlimited; 4K DisTable ~ 97%");

    auto names = bench::sweepWorkloads();
    std::vector<sim::SystemConfig> base_cfgs;
    for (const auto &name : names) {
        base_cfgs.push_back(sim::makeConfig(workload::serverProfile(name),
                                            sim::Preset::Baseline));
    }
    auto base = bench::simulateAll("fig11 baselines", std::move(base_cfgs),
                                   bench::windows());
    std::map<std::string, std::uint64_t> base_misses;
    for (std::size_t i = 0; i < names.size(); ++i)
        base_misses[names[i]] = base[i].stat("l1i.l1i_misses");

    const std::vector<std::size_t> seq_sizes{256, 1024, 4096, 16384,
                                             65536, 0};
    std::vector<sim::SystemConfig> seq_cfgs;
    for (std::size_t entries : seq_sizes) {
        for (const auto &name : names)
            seq_cfgs.push_back(
                sweepConfig(name, sim::Preset::SN4L, entries, 4096));
    }
    auto seq_res = bench::simulateAll("fig11 SeqTable sweep",
                                      std::move(seq_cfgs), bench::windows());

    sim::Table seq({"SeqTable entries", "SN4L coverage (avg)"});
    std::size_t idx = 0;
    for (std::size_t entries : seq_sizes) {
        double sum = 0.0;
        for (const auto &name : names)
            sum += seq_res[idx++].coverage(base_misses[name]);
        seq.addRow({entries ? std::to_string(entries) : "unlimited",
                    sim::Table::pct(sum / names.size())});
    }
    h.report(seq, "SN4L miss coverage vs. SeqTable size");

    const std::vector<std::size_t> dis_sizes{64, 128, 256, 1024, 4096, 0};
    std::vector<sim::SystemConfig> dis_cfgs;
    for (std::size_t entries : dis_sizes) {
        for (const auto &name : names)
            dis_cfgs.push_back(
                sweepConfig(name, sim::Preset::SN4LDis, 16384, entries));
    }
    auto dis_res = bench::simulateAll("fig11 DisTable sweep",
                                      std::move(dis_cfgs), bench::windows());

    sim::Table dis({"DisTable entries", "SN4L+Dis coverage (avg)"});
    idx = 0;
    for (std::size_t entries : dis_sizes) {
        double sum = 0.0;
        for (const auto &name : names)
            sum += dis_res[idx++].coverage(base_misses[name]);
        dis.addRow({entries ? std::to_string(entries) : "unlimited",
                    sim::Table::pct(sum / names.size())});
    }
    h.report(dis, "SN4L+Dis miss coverage vs. DisTable size");
    return 0;
}
