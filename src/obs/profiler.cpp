/**
 * @file
 * Profiler globals: the enable flag and the mutex-guarded record log.
 */

#include "obs/profiler.h"

#include <algorithm>
#include <mutex>
#include <utility>

namespace dcfb::obs {

std::atomic<bool> Profiler::enabledFlag{false};

namespace {

std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

std::vector<ProfRecord> &
logRecords()
{
    static std::vector<ProfRecord> records;
    return records;
}

} // namespace

const char *
profPhaseName(ProfPhase phase)
{
    switch (phase) {
      case ProfPhase::Backend:
        return "backend";
      case ProfPhase::L1iTick:
        return "l1i_tick";
      case ProfPhase::Prefetcher:
        return "prefetcher";
      case ProfPhase::Dispatch:
        return "dispatch";
      case ProfPhase::Fetch:
        return "fetch";
      case ProfPhase::Integrity:
        return "integrity";
    }
    return "unknown";
}

void
Profiler::setEnabled(bool on)
{
    enabledFlag.store(on, std::memory_order_relaxed);
}

void
Profiler::push(ProfRecord record)
{
    std::lock_guard<std::mutex> lock(logMutex());
    logRecords().push_back(std::move(record));
}

std::vector<ProfRecord>
Profiler::drain()
{
    std::lock_guard<std::mutex> lock(logMutex());
    return std::exchange(logRecords(), {});
}

JsonValue
profJson(std::vector<ProfRecord> records)
{
    std::stable_sort(records.begin(), records.end(),
                     [](const ProfRecord &a, const ProfRecord &b) {
                         if (a.workload != b.workload)
                             return a.workload < b.workload;
                         return a.design < b.design;
                     });
    JsonValue cells = JsonValue::array();
    for (const auto &rec : records) {
        JsonValue p = JsonValue::object();
        p["workload"] = rec.workload;
        p["design"] = rec.design;
        p["cycles"] = rec.cycles;
        p["instructions"] = rec.instructions;
        p["setup_s"] = rec.setupSeconds;
        p["warm_s"] = rec.warmSeconds;
        p["measure_s"] = rec.measureSeconds;
        p["sim_s"] = rec.simSeconds();
        p["cycles_per_sec"] = rec.cyclesPerSecond();
        JsonValue phases = JsonValue::object();
        for (unsigned i = 0; i < kProfPhases; ++i)
            phases[profPhaseName(static_cast<ProfPhase>(i))] =
                rec.phaseSeconds[i];
        p["phase_s"] = std::move(phases);
        cells.push(std::move(p));
    }
    JsonValue prof = JsonValue::object();
    prof["schema"] = "dcfb-prof-v1";
    prof["cells"] = std::move(cells);
    return prof;
}

} // namespace dcfb::obs
