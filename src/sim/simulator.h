/**
 * @file
 * Simulation driver: warmup + measurement runs and metric extraction.
 *
 * Mirrors the SimFlex discipline of Section VI.C: run warm cycles to
 * heat the long-term structures, reset statistics, then measure.  All
 * derived metrics the paper reports (IPC, FSCR inputs, CMAL, coverage,
 * bandwidth) are computed here from the merged counters.
 */

#ifndef DCFB_SIM_SIMULATOR_H
#define DCFB_SIM_SIMULATOR_H

#include <cstdint>
#include <map>
#include <string>

#include "obs/registry.h"
#include "rt/error.h"
#include "sim/config.h"
#include "sim/system.h"

namespace dcfb::sim {

/** Results of one measured run. */
struct RunResult
{
    std::string workload;
    std::string design;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::map<std::string, std::uint64_t> stats;
    std::map<std::string, obs::HistogramSnapshot> hists;

    double ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }

    std::uint64_t
    stat(const std::string &name) const
    {
        auto it = stats.find(name);
        return it == stats.end() ? 0 : it->second;
    }

    /** Histogram lookup; nullptr when absent. */
    const obs::HistogramSnapshot *
    hist(const std::string &name) const
    {
        auto it = hists.find(name);
        return it == hists.end() ? nullptr : &it->second;
    }

    bool operator==(const RunResult &) const = default;

    double
    ratio(const std::string &num, const std::string &den) const
    {
        std::uint64_t d = stat(den);
        return d ? static_cast<double>(stat(num)) / static_cast<double>(d)
                 : 0.0;
    }

    /** L1i/BTB-induced frontend stall cycles (the FSCR denominator). */
    std::uint64_t
    frontendStalls() const
    {
        return stat("sim.stall_frontend");
    }

    /** Covered memory access latency (Figs. 4 and 13). */
    double
    cmal() const
    {
        return ratio("l1i.cmal_covered_cycles", "l1i.cmal_full_cycles");
    }

    /** Overall L1i miss coverage vs. a baseline's miss count. */
    double
    coverage(std::uint64_t baseline_misses) const
    {
        if (baseline_misses == 0)
            return 0.0;
        std::uint64_t mine = stat("l1i.l1i_misses");
        if (mine >= baseline_misses)
            return 0.0;
        return 1.0 -
            static_cast<double>(mine) / static_cast<double>(baseline_misses);
    }
};

/** Default run windows (cycles). */
struct RunWindows
{
    Cycle warm = 200000;
    Cycle measure = 200000;
};

/**
 * Build the system for @p config, warm it, measure it.
 *
 * Integrity checking (SystemConfig::integrity): registered invariants
 * are swept every sweepInterval cycles and the forward-progress watchdog
 * observes the retire/fetch counters at the same cadence.  A violation
 * or a tripped watchdog aborts the run with a typed rt::Error carrying
 * a "dcfb-snapshot-v1" machine-state snapshot in its context.
 */
rt::Expected<RunResult>
trySimulate(const SystemConfig &config,
            const RunWindows &windows = RunWindows{});

/** trySimulate() for legacy callers: raises rt::Exception on failure. */
RunResult simulate(const SystemConfig &config,
                   const RunWindows &windows = RunWindows{});

/** FSCR of @p design against @p baseline (Fig. 15). */
double fscr(const RunResult &design, const RunResult &baseline);

/** Speedup of @p design over @p baseline (Fig. 16). */
double speedup(const RunResult &design, const RunResult &baseline);

} // namespace dcfb::sim

#endif // DCFB_SIM_SIMULATOR_H
