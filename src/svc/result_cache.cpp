#include "svc/result_cache.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <memory>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

#include "sim/report.h"

namespace dcfb::svc {

namespace {

rt::Error
ioError(const std::string &message, const std::string &path)
{
    return rt::Error(rt::ErrorKind::Result, message)
        .with("path", path)
        .with("errno", std::strerror(errno));
}

/** Entry-invalid error (schema/fingerprint/parse problems). */
rt::Error
badEntry(const std::string &message, const std::string &path)
{
    return rt::Error(rt::ErrorKind::Result, message)
        .with("path", path)
        .with("reject", "1");
}

} // namespace

ResultCache::ResultCache(std::string dir) : directory(std::move(dir)) {}

rt::Expected<void>
ResultCache::open()
{
    if (directory.empty())
        return rt::Error(rt::ErrorKind::Config, "empty result-cache path");
    if (::mkdir(directory.c_str(), 0755) != 0 && errno != EEXIST)
        return ioError("cannot create result-cache directory", directory);
    struct stat st{};
    if (::stat(directory.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        return ioError("result-cache path is not a directory", directory);
    // Reap temp files stranded by a crash mid-put(): lookups already
    // ignore them, but without collection they accumulate forever.
    // Only put()'s own `<key>.json.tmp.<pid>` pattern is touched.
    if (DIR *handle = ::opendir(directory.c_str())) {
        std::uint64_t reaped = 0;
        while (struct dirent *entry = ::readdir(handle)) {
            std::string name = entry->d_name;
            if (name.find(".json.tmp.") != std::string::npos &&
                ::unlink((directory + "/" + name).c_str()) == 0) {
                ++reaped;
            }
        }
        ::closedir(handle);
        std::lock_guard<std::mutex> lock(mutex);
        counters.tmpReaped += reaped;
    }
    return {};
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return directory + "/" + key + ".json";
}

rt::Expected<sim::RunResult>
ResultCache::load(const std::string &key,
                  const obs::JsonValue &expect_fp) const
{
    std::string path = entryPath(key);
    std::ifstream in(path, std::ios::in | std::ios::binary);
    if (!in.is_open()) {
        return rt::Error(rt::ErrorKind::Result, "no cache entry")
            .with("path", path)
            .with("miss", "1");
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (!in.good() && !in.eof())
        return badEntry("cache entry unreadable", path);

    auto doc = obs::JsonValue::parse(text.str());
    if (!doc)
        return badEntry("cache entry is not valid JSON", path);
    const obs::JsonValue *schema = doc->find("schema");
    if (!schema || schema->asString() != kCacheSchema) {
        return badEntry("cache entry schema mismatch", path)
            .with("expected", kCacheSchema);
    }
    const obs::JsonValue *stored_key = doc->find("key");
    if (!stored_key || stored_key->asString() != key)
        return badEntry("cache entry key mismatch", path);
    // Full-fingerprint comparison: rejects both corruption and FNV
    // collisions (two configs that hash alike differ here).
    const obs::JsonValue *fp = doc->find("fingerprint");
    if (!fp || !(*fp == expect_fp))
        return badEntry("cache entry fingerprint mismatch", path);
    const obs::JsonValue *result = doc->find("result");
    if (!result)
        return badEntry("cache entry has no result", path);
    auto run = sim::runResultFromJson(*result);
    if (!run)
        return badEntry("cache entry result malformed", path);
    return std::move(*run);
}

std::optional<sim::RunResult>
ResultCache::get(const std::string &key, const obs::JsonValue &fp)
{
    auto loaded = load(key, fp);
    if (loaded.ok()) {
        std::lock_guard<std::mutex> lock(mutex);
        ++counters.hits;
        return std::move(loaded.value());
    }
    bool reject = false;
    for (const auto &kv : loaded.error().context)
        if (kv.first == "reject")
            reject = true;
    if (reject)
        ::unlink(entryPath(key).c_str());
    std::lock_guard<std::mutex> lock(mutex);
    ++counters.misses;
    if (reject)
        ++counters.rejects;
    return std::nullopt;
}

rt::Expected<void>
ResultCache::put(const std::string &key, const obs::JsonValue &fp,
                 const sim::RunResult &result)
{
    obs::JsonValue doc = obs::JsonValue::object();
    doc["schema"] = kCacheSchema;
    doc["key"] = key;
    doc["fingerprint"] = fp;
    doc["result"] = sim::toJson(result);

    std::string path = entryPath(key);
    // Same-directory temp file so the rename is atomic (same fs).  The
    // pid suffix keeps concurrent writers of the same key from racing
    // on one temp name; last rename wins with identical content.
    std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    if (inject && inject->truncateWrite()) {
        // A torn store: half the entry reaches the temp file and the
        // rename never happens -- exactly the debris a crash mid-put
        // leaves behind.  Lookups miss (no entry), the next open()
        // reaps the temp file, and the caller recomputes.
        std::string text = doc.dump(2);
        std::ofstream out(tmp, std::ios::out | std::ios::trunc |
                                   std::ios::binary);
        out << text.substr(0, text.size() / 2);
        return {};
    }
    {
        std::ofstream out(tmp, std::ios::out | std::ios::trunc |
                                   std::ios::binary);
        if (!out.is_open())
            return ioError("cannot create cache temp file", tmp);
        out << doc.dump(2) << '\n';
        out.flush();
        if (!out.good())
            return ioError("cache temp write failed", tmp);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        rt::Error err = ioError("cache entry rename failed", path);
        ::unlink(tmp.c_str());
        return err;
    }
    std::lock_guard<std::mutex> lock(mutex);
    ++counters.stores;
    return {};
}

ResultCacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

namespace {
std::unique_ptr<ResultCache> globalCache;
} // namespace

rt::Expected<void>
ResultCache::openGlobal(const std::string &dir)
{
    auto cache = std::make_unique<ResultCache>(dir);
    if (auto opened = cache->open(); !opened.ok())
        return opened.error();
    globalCache = std::move(cache);
    return {};
}

ResultCache *
ResultCache::global()
{
    return globalCache.get();
}

void
ResultCache::closeGlobal()
{
    globalCache.reset();
}

sim::RunResult
simulateCached(const sim::SystemConfig &config,
               const sim::RunWindows &windows)
{
    ResultCache *cache = ResultCache::global();
    if (!cache)
        return sim::simulate(config, windows);
    obs::JsonValue fp = fingerprint(config, windows);
    std::string key = fnv1aHex(fp.dump());
    if (auto hit = cache->get(key, fp))
        return std::move(*hit);
    sim::RunResult result = sim::simulate(config, windows);
    // A failed store degrades to "no cache", never fails the run.
    if (auto stored = cache->put(key, fp, result); !stored.ok())
        std::fprintf(stderr, "[svc] %s\n",
                     stored.error().render().c_str());
    return result;
}

} // namespace dcfb::svc
