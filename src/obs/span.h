/**
 * @file
 * End-to-end span tracer: RAII scopes with explicit trace / span /
 * parent IDs, exported as one Chrome trace-event (Perfetto-loadable)
 * timeline.
 *
 * This is the wall-clock complement to the miss-attribution tracer
 * (obs/trace.h, cycle domain) and the cell profiler (obs/profiler.h,
 * aggregate walls): a span is one *timed region of real execution* --
 * a client submit, the daemon's admission handling, a job's queue
 * wait, a pool worker running `sim::simulate`, one simulated window --
 * and the IDs stitch those regions into per-request trees even across
 * the dcfb-svc-v1 protocol (`trace_id` / `parent_span` on the wire).
 *
 * Recording model (DESIGN.md "Telemetry plane"):
 *
 *  - process-global sink, off by default; every instrumentation site
 *    guards on the inline enabled() check (one relaxed atomic load);
 *  - each thread appends completed spans to its own bounded buffer --
 *    a fixed-capacity array published with a single release store per
 *    span, so recording takes no lock and never blocks another thread;
 *  - buffers are owned by the sink (shared_ptr), so threads may exit
 *    before close(); overflow is counted, never reallocated;
 *  - close() merges every buffer, orders spans deterministically by
 *    (start, span id) and writes a Chrome trace-event array: one
 *    "thread" track per recording thread (pool workers name theirs),
 *    every span an "X" complete event whose args carry the trace /
 *    span / parent IDs as hex strings.
 *
 * Ambient context: SpanScope maintains a thread-local {trace, span}
 * pair, so nested scopes parent automatically and code that crosses a
 * thread (the service's dispatcher and workers) or a process (client
 * -> daemon) re-roots with the explicit-ID constructor.
 *
 * open()/close() must be called while no spans are being recorded
 * (tools open the sink before serving/simulating starts and close it
 * after shutdown) -- the same single-writer phase contract as
 * obs::Tracing.
 */

#ifndef DCFB_OBS_SPAN_H
#define DCFB_OBS_SPAN_H

#include <atomic>
#include <cstdint>
#include <string>

namespace dcfb::obs {

/** The thread's current ambient (trace, span) pair; 0 = none. */
struct SpanIds
{
    std::uint64_t trace = 0;
    std::uint64_t span = 0;
};

/** One completed span. */
struct SpanRecord
{
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
    std::uint64_t parentId = 0; //!< 0 = root of its tree
    std::uint64_t startUs = 0;  //!< monotonic, process-relative
    std::uint64_t endUs = 0;
    const char *name = "";      //!< static-storage span name
    std::string label;          //!< optional dynamic annotation
};

/**
 * The process-global span sink.
 */
class Spans
{
  public:
    struct Config
    {
        std::string path;
        std::size_t maxPerThread = 1u << 15; //!< spans per thread buffer
    };

    /** Open the sink (Chrome trace-event output at @p path).  Returns
     *  false and stays disabled when the file cannot be created. */
    static bool open(const std::string &path);
    static bool open(const Config &config);

    /** Merge every thread buffer and write the timeline.  No-op when
     *  the sink is closed. */
    static void close();

    /** One relaxed atomic load; every instrumentation site guards on
     *  this so the disabled cost is a single predicted branch. */
    static bool
    enabled()
    {
        return enabledFlag.load(std::memory_order_relaxed);
    }

    /** Fresh process-unique IDs (PID-salted so client and daemon spans
     *  written into one file cannot collide). */
    static std::uint64_t newTraceId();
    static std::uint64_t newSpanId();

    /** Monotonic microseconds since process start. */
    static std::uint64_t nowUs();

    /** The calling thread's ambient context (what a new SpanScope
     *  would parent under).  {0, 0} when none is active. */
    static SpanIds current();

    /** Name this thread's timeline track ("worker-3", "conn", ...).
     *  Cheap; callable before the sink opens. */
    static void setThreadName(std::string name);

    /**
     * Record one completed span with explicit IDs and timestamps.
     * Used where a span's endpoints live on different threads (the
     * service reconstructs a job's queue-wait span at dispatch time);
     * RAII call sites use SpanScope instead.
     */
    static void record(const char *name, std::uint64_t traceId,
                       std::uint64_t spanId, std::uint64_t parentId,
                       std::uint64_t startUs, std::uint64_t endUs,
                       std::string label = {});

    /** Spans buffered so far / dropped on a full thread buffer. */
    static std::uint64_t recorded();
    static std::uint64_t dropped();

  private:
    friend class SpanScope;
    struct State;
    static State *state;
    static std::atomic<bool> enabledFlag;
    static SpanIds &threadCurrent();
};

/**
 * RAII span: records [construction, destruction) and maintains the
 * thread's ambient context so nested scopes parent automatically.
 * Constructed-disabled when the sink is off (no clock read, no IDs).
 */
class SpanScope
{
  public:
    /** Child of the thread's ambient span (a new root trace when the
     *  thread has none). */
    explicit SpanScope(const char *name_, std::string label_ = {});

    /** Explicit parentage: re-root under @p traceId / @p parentId (IDs
     *  that crossed a thread or the protocol).  traceId 0 starts a new
     *  trace. */
    SpanScope(const char *name_, std::uint64_t traceId,
              std::uint64_t parentId, std::string label_ = {});

    ~SpanScope();

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    std::uint64_t traceId() const { return trace; }
    std::uint64_t spanId() const { return span; }

  private:
    void begin(std::uint64_t traceId, std::uint64_t parentId);

    bool active = false;
    const char *name = "";
    std::string label;
    std::uint64_t trace = 0;
    std::uint64_t span = 0;
    std::uint64_t parent = 0;
    std::uint64_t startUs = 0;
    SpanIds saved; //!< ambient context restored on destruction
};

} // namespace dcfb::obs

#endif // DCFB_OBS_SPAN_H
