/**
 * @file
 * Example: the variable-length-ISA flow of Section V.D end to end -
 * byte-offset DisTable entries, branch footprints constructed from the
 * retired stream, DV-LLC virtualization, and footprint-guided
 * pre-decoding feeding the BTB prefetch buffer.
 */

#include <cstdio>

#include "sim/report.h"
#include "sim/simulator.h"
#include "sim/system.h"
#include "workload/profiles.h"

int
main()
{
    using namespace dcfb;

    auto profile = workload::serverProfile("Web (Apache)", /*vl=*/true);
    auto cfg = sim::makeConfig(profile, sim::Preset::SN4LDisBtb);
    std::printf("VL-ISA mode: dvllc=%d fetchFootprints=%d "
                "byteOffsets=%d\n",
                cfg.llc.dvllc, cfg.l1i.fetchFootprints,
                cfg.sn4l.disTable.byteOffsets);

    auto res = sim::simulate(cfg, sim::RunWindows{150000, 150000});

    sim::Table table({"metric", "value"});
    table.addRow({"IPC", sim::Table::num(res.ipc())});
    table.addRow({"BF records (retired stream)",
                  std::to_string(res.stat("llc.bf_branches_recorded"))});
    table.addRow({"BF fetches with block",
                  std::to_string(res.stat("llc.bf_fetch_attempts"))});
    table.addRow({"BF fetch hits",
                  std::to_string(res.stat("llc.bf_fetch_hits"))});
    table.addRow({"uncovered BFs",
                  std::to_string(res.stat("llc.bf_fetch_uncovered"))});
    table.addRow({"BTB prefill blocks (footprint-guided)",
                  std::to_string(res.stat("pf.btb_prefill_blocks"))});
    table.addRow({"prefills blocked by missing BF",
                  std::to_string(res.stat("pf.btb_prefill_no_footprint"))});
    table.addRow({"DV-LLC holder sets (activations)",
                  std::to_string(res.stat("llc.dvllc_holder_activations"))});
    table.print("VL-ISA / DV-LLC metrics on Web (Apache)");
    return 0;
}
