#include "svc/coordinator.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>

#include "obs/span.h"
#include "svc/fingerprint.h"
#include "svc/protocol.h"
#include "workload/profiles.h"

namespace dcfb::svc {

namespace {

std::uint64_t
microsSince(std::chrono::steady_clock::time_point t0,
            std::chrono::steady_clock::time_point t1)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
}

const std::string *
stringMember(const obs::JsonValue &doc, const std::string &name)
{
    const obs::JsonValue *v = doc.find(name);
    if (!v || v->kind() != obs::JsonValue::Kind::String)
        return nullptr;
    return &v->asString();
}

std::optional<std::uint64_t>
uintMember(const obs::JsonValue &doc, const std::string &name)
{
    const obs::JsonValue *v = doc.find(name);
    if (!v || v->kind() != obs::JsonValue::Kind::Uint)
        return std::nullopt;
    return v->asUint();
}

obs::JsonValue
coordEvent(const std::string &event)
{
    obs::JsonValue ev = okReply();
    ev["schema"] = kCoordSchema;
    ev["event"] = event;
    return ev;
}

obs::JsonValue
coordError(const std::string &code, const std::string &message)
{
    obs::JsonValue ev = errorReply(code, message);
    ev["schema"] = kCoordSchema;
    ev["event"] = "error";
    return ev;
}

/** The fig16 design set: what a `grid` request means by default. */
std::vector<std::string>
defaultPresetNames()
{
    return {sim::presetName(sim::Preset::Baseline),
            sim::presetName(sim::Preset::NL),
            sim::presetName(sim::Preset::SN4LDisBtb),
            sim::presetName(sim::Preset::Shotgun),
            sim::presetName(sim::Preset::Confluence)};
}

} // namespace

Coordinator::Coordinator(CoordinatorConfig config) : cfg(std::move(config))
{
    cGrids = stats.counter("coord.grids");
    cGridFailures = stats.counter("coord.grid_failures");
    cCells = stats.counter("coord.cells_completed");
    cCellsCached = stats.counter("coord.cells_cached");
    cCellsSimulated = stats.counter("coord.cells_simulated");
    cRebalanced = stats.counter("coord.rebalanced");
    cWorkerDeaths = stats.counter("coord.worker_deaths");
    cCellRetries = stats.counter("coord.cell_retries");
    hGridUs = stats.histogram("coord.grid_us");
    hCellUs = stats.histogram("coord.cell_us");
}

Coordinator::~Coordinator()
{
    shutdown();
}

rt::Expected<void>
Coordinator::start()
{
    if (cfg.workers.empty()) {
        return rt::Error(rt::ErrorKind::Config,
                         "coordinator needs at least one worker");
    }
    std::map<std::string, bool> seen;
    for (const WorkerSpec &w : cfg.workers) {
        if (w.name.empty() || w.endpoint.empty()) {
            return rt::Error(rt::ErrorKind::Config,
                             "worker needs a name and an endpoint");
        }
        if (!seen.emplace(w.name, true).second) {
            return rt::Error(rt::ErrorKind::Config,
                             "duplicate worker name")
                .with("name", w.name);
        }
    }
    if (!cfg.socketPath.empty() || !cfg.listenAddr.empty()) {
        auto bound = listener.start(
            cfg.socketPath, cfg.listenAddr,
            [this](const std::string &line,
                   const Listener::WriteFn &write) {
                handleLine(line, [&](const obs::JsonValue &event) {
                    write(event.dump());
                });
            });
        if (!bound.ok())
            return bound.error();
    }
    started = true;
    return {};
}

void
Coordinator::requestDrain()
{
    drainFlag.store(true);
}

void
Coordinator::shutdown()
{
    if (!started)
        return;
    requestDrain();
    {
        std::unique_lock<std::mutex> lock(mutex);
        gridsSettled.wait(lock, [this] { return activeGrids == 0; });
    }
    listener.shutdown();
    started = false;
}

const WorkerSpec *
Coordinator::findWorker(const std::string &name) const
{
    for (const WorkerSpec &w : cfg.workers) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

// -- request handling -----------------------------------------------------

void
Coordinator::handleLine(const std::string &line, const EmitFn &emit)
{
    auto parsed = obs::JsonValue::parse(line);
    if (!parsed) {
        emit(coordError("bad_request", "request is not valid JSON"));
        return;
    }
    const std::string *op = stringMember(*parsed, "op");
    if (!op) {
        emit(coordError("bad_request", "request has no op"));
        return;
    }
    if (*op == "ping") {
        obs::JsonValue ev = coordEvent("pong");
        ev["op"] = "ping";
        ev["workers"] = std::uint64_t{cfg.workers.size()};
        emit(ev);
        return;
    }
    if (*op == "stats") {
        emit(fleetStats());
        return;
    }
    if (*op == "drain") {
        requestDrain();
        obs::JsonValue ev = coordEvent("drain");
        ev["op"] = "drain";
        ev["draining"] = true;
        emit(ev);
        return;
    }
    if (*op == "grid") {
        handleGrid(*parsed, emit);
        return;
    }
    emit(coordError("bad_request", "unknown op: " + *op));
}

void
Coordinator::handleGrid(const obs::JsonValue &req, const EmitFn &emit)
{
    auto t0 = std::chrono::steady_clock::now();
    if (drainFlag.load()) {
        emit(coordError("draining",
                        "coordinator is draining; no new grids"));
        return;
    }

    // -- parse the grid spec ---------------------------------------------
    std::vector<std::string> workloads;
    if (const obs::JsonValue *w = req.find("workloads")) {
        if (w->kind() != obs::JsonValue::Kind::Array) {
            emit(coordError("bad_request", "workloads must be an array"));
            return;
        }
        for (const obs::JsonValue &item : w->items()) {
            if (item.kind() != obs::JsonValue::Kind::String) {
                emit(coordError("bad_request",
                                "workloads must be strings"));
                return;
            }
            workloads.push_back(item.asString());
        }
    } else {
        workloads = workload::serverWorkloadNames();
    }
    std::vector<std::string> preset_names;
    if (const obs::JsonValue *p = req.find("presets")) {
        if (p->kind() != obs::JsonValue::Kind::Array) {
            emit(coordError("bad_request", "presets must be an array"));
            return;
        }
        for (const obs::JsonValue &item : p->items()) {
            if (item.kind() != obs::JsonValue::Kind::String) {
                emit(coordError("bad_request",
                                "presets must be strings"));
                return;
            }
            preset_names.push_back(item.asString());
        }
    } else {
        preset_names = defaultPresetNames();
    }
    if (workloads.empty() || preset_names.empty()) {
        emit(coordError("bad_request",
                        "grid needs at least one workload and preset"));
        return;
    }
    sim::RunWindows windows = cfg.defaultWindows;
    if (auto warm = uintMember(req, "warm"))
        windows.warm = *warm;
    if (auto measure = uintMember(req, "measure"))
        windows.measure = *measure;
    std::optional<std::uint64_t> seed = uintMember(req, "seed");
    std::uint64_t traceId = uintMember(req, "trace_id").value_or(0);
    std::uint64_t parentSpan = uintMember(req, "parent_span").value_or(0);

    // -- build the cells: every (workload, preset) with its key ----------
    // The fingerprint is computed here, coordinator-side, with the same
    // makeConfig path the workers use, so ring placement and the
    // workers' cache keys agree byte for byte.
    std::vector<Cell> cells;
    cells.reserve(workloads.size() * preset_names.size());
    for (const std::string &workload : workloads) {
        auto profile = workload::tryServerProfile(workload);
        if (!profile.ok()) {
            emit(coordError("bad_request",
                            "unknown workload: " + workload));
            return;
        }
        for (const std::string &preset_name : preset_names) {
            auto preset = presetFromName(preset_name);
            if (!preset.ok()) {
                emit(coordError("bad_request",
                                "unknown preset: " + preset_name));
                return;
            }
            sim::SystemConfig config =
                sim::makeConfig(profile.value(), preset.value());
            if (seed)
                config.runSeed = *seed;
            if (cfg.configHook)
                cfg.configHook(config);
            Cell cell;
            cell.index = cells.size();
            cell.workload = workload;
            cell.presetName = sim::presetName(preset.value());
            cell.key = cacheKey(config, windows);
            obs::JsonValue doc = obs::JsonValue::object();
            doc["op"] = "submit";
            doc["workload"] = workload;
            doc["preset"] = cell.presetName;
            // Windows ride along explicitly so the workers' default
            // windows can never skew the fingerprint.
            doc["warm"] = windows.warm;
            doc["measure"] = windows.measure;
            if (seed)
                doc["seed"] = *seed;
            cell.submitDoc = std::move(doc);
            cells.push_back(std::move(cell));
        }
    }

    std::string gridId;
    {
        std::lock_guard<std::mutex> lock(mutex);
        gridId = "grid-" + std::to_string(nextGridId++);
        ++activeGrids;
        cGrids.add();
    }
    std::optional<obs::SpanScope> gridSpan;
    if (obs::Spans::enabled()) {
        gridSpan.emplace("coord.grid", traceId, parentSpan, gridId);
        traceId = gridSpan->traceId();
        parentSpan = gridSpan->spanId();
    }

    {
        obs::JsonValue ev = coordEvent("accepted");
        ev["grid"] = gridId;
        ev["cells"] = std::uint64_t{cells.size()};
        obs::JsonValue names = obs::JsonValue::array();
        for (const WorkerSpec &w : cfg.workers)
            names.push(w.name);
        ev["workers"] = std::move(names);
        emit(ev);
    }

    // -- place and run, rebalancing as workers die -----------------------
    HashRing ring(cfg.vnodes);
    for (const WorkerSpec &w : cfg.workers)
        ring.add(w.name);

    std::vector<std::optional<CellResult>> results(cells.size());
    std::vector<Cell *> pending;
    pending.reserve(cells.size());
    for (Cell &cell : cells)
        pending.push_back(&cell);

    GridOutcome outcome;
    std::mutex emitMutex; // serializes frames from the shard threads
    std::string failure;

    auto finishGrid = [&](bool failed) {
        std::lock_guard<std::mutex> lock(mutex);
        if (failed)
            cGridFailures.add();
        hGridUs.sample(
            microsSince(t0, std::chrono::steady_clock::now()));
        --activeGrids;
        gridsSettled.notify_all();
    };

    while (!pending.empty()) {
        if (ring.empty()) {
            finishGrid(true);
            emit(coordError("no_workers",
                            "every worker died before the grid "
                            "finished"));
            return;
        }
        // A cell that keeps missing — its owners dying under it — is
        // capped so a flapping fleet cannot loop forever.
        for (Cell *cell : pending) {
            ++cell->attempts;
            if (cell->attempts > cfg.cellAttempts) {
                finishGrid(true);
                obs::JsonValue ev = coordError(
                    "cell_failed", "cell exceeded its attempt budget");
                ev["workload"] = cell->workload;
                ev["preset"] = cell->presetName;
                ev["attempts"] = std::uint64_t{cell->attempts - 1};
                emit(ev);
                return;
            }
            if (cell->attempts > 1) {
                std::lock_guard<std::mutex> lock(mutex);
                cCellRetries.add();
            }
        }

        // Shard the pending cells by ring ownership.
        std::map<std::string, std::vector<Cell *>> shards;
        for (Cell *cell : pending)
            shards[ring.owner(cell->key)].push_back(cell);

        // One thread per owner: each shard streams independently, so a
        // slow worker never blocks a fast one's cell events.
        std::vector<std::thread> threads;
        std::mutex deadMutex;
        std::vector<std::string> dead;
        threads.reserve(shards.size());
        for (auto &kv : shards) {
            const WorkerSpec *worker = findWorker(kv.first);
            std::vector<Cell *> *shard = &kv.second;
            threads.emplace_back([&, worker, shard] {
                std::string shardFailure;
                bool alive = worker &&
                    runShard(*worker, *shard, results, emitMutex, emit,
                             gridId, traceId, parentSpan,
                             &shardFailure);
                std::lock_guard<std::mutex> lock(deadMutex);
                if (!alive)
                    dead.push_back(worker ? worker->name : "?");
                if (!shardFailure.empty() && failure.empty())
                    failure = std::move(shardFailure);
            });
        }
        for (std::thread &t : threads)
            t.join();

        if (!failure.empty()) {
            // A cell failed terminally (the simulation itself errored):
            // retrying elsewhere would fail identically, so the grid
            // fails fast with the worker's error.
            finishGrid(true);
            emit(coordError("cell_failed", failure));
            return;
        }

        std::vector<Cell *> unfinished;
        for (Cell *cell : pending) {
            if (!results[cell->index])
                unfinished.push_back(cell);
        }
        for (const std::string &name : dead) {
            if (!ring.contains(name))
                continue;
            ring.remove(name);
            ++outcome.workerDeaths;
            std::lock_guard<std::mutex> lock(mutex);
            cWorkerDeaths.add();
        }
        if (!unfinished.empty() && !dead.empty()) {
            outcome.rebalanced += unfinished.size();
            std::lock_guard<std::mutex> lock(mutex);
            cRebalanced.add(unfinished.size());
        }
        pending = std::move(unfinished);
    }

    // -- merge: deterministic report, cells in request order -------------
    obs::JsonValue report = obs::JsonValue::object();
    report["schema"] = kGridReportSchema;
    obs::JsonValue w = obs::JsonValue::object();
    w["warm"] = windows.warm;
    w["measure"] = windows.measure;
    report["windows"] = std::move(w);
    if (seed)
        report["seed"] = *seed;
    obs::JsonValue wl = obs::JsonValue::array();
    for (const std::string &name : workloads)
        wl.push(name);
    report["workloads"] = std::move(wl);
    obs::JsonValue pr = obs::JsonValue::array();
    for (const std::string &name : preset_names)
        pr.push(name);
    report["presets"] = std::move(pr);
    obs::JsonValue cellsJson = obs::JsonValue::array();
    for (const Cell &cell : cells) {
        const CellResult &r = *results[cell.index];
        obs::JsonValue c = obs::JsonValue::object();
        c["workload"] = cell.workload;
        c["preset"] = cell.presetName;
        c["key"] = cell.key;
        c["result"] = r.result;
        cellsJson.push(std::move(c));
        if (r.cached)
            ++outcome.cached;
        else
            ++outcome.simulated;
    }
    report["cells"] = std::move(cellsJson);

    {
        std::lock_guard<std::mutex> lock(mutex);
        cCells.add(cells.size());
        cCellsCached.add(outcome.cached);
        cCellsSimulated.add(outcome.simulated);
    }
    finishGrid(false);

    obs::JsonValue ev = coordEvent("done");
    ev["grid"] = gridId;
    ev["cells"] = std::uint64_t{cells.size()};
    ev["cached"] = outcome.cached;
    ev["simulated"] = outcome.simulated;
    ev["rebalanced"] = outcome.rebalanced;
    ev["worker_deaths"] = outcome.workerDeaths;
    if (traceId)
        ev["trace_id"] = traceId;
    ev["report"] = std::move(report);
    emit(ev);
}

bool
Coordinator::runShard(const WorkerSpec &w,
                      const std::vector<Cell *> &cells,
                      std::vector<std::optional<CellResult>> &results,
                      std::mutex &emitMutex, const EmitFn &emit,
                      const std::string &gridId, std::uint64_t traceId,
                      std::uint64_t parentSpan, std::string *failure)
{
    obs::Spans::setThreadName("shard");
    std::optional<obs::SpanScope> shardSpan;
    if (obs::Spans::enabled())
        shardSpan.emplace("coord.shard", traceId, parentSpan, w.name);

    Client client;
    RetryPolicy rp;
    rp.budgetMs = cfg.connectBudgetMs;
    rp.recvTimeoutMs = cfg.recvTimeoutMs;
    rp.submitBackoffMs = 50;
    rp.capMs = 1000;
    // Distinct jitter streams per worker keep shard threads from
    // backing off in lockstep.
    if (cfg.jitterSeed)
        rp.jitterSeed = cfg.jitterSeed ^ fnv1a64(w.name);
    client.setRetryPolicy(rp);
    if (!client.connectWithRetry(w.endpoint).ok())
        return false;

    // Phase 1: submit the whole shard.  Submits return as soon as the
    // job is admitted, so the worker's pool runs its cells in parallel
    // while we move on to polling.
    struct Slot
    {
        Cell *cell;
        std::string job;
        std::chrono::steady_clock::time_point submittedAt;
    };
    std::vector<Slot> slots;
    slots.reserve(cells.size());
    for (Cell *cell : cells) {
        obs::JsonValue doc = cell->submitDoc;
        if (traceId) {
            doc["trace_id"] = traceId;
            doc["parent_span"] = parentSpan;
        }
        for (;;) {
            auto reply = client.request(doc);
            if (!reply.ok())
                return false; // transport death; shard re-places
            const obs::JsonValue &r = reply.value();
            const obs::JsonValue *ok = r.find("ok");
            if (ok && ok->kind() == obs::JsonValue::Kind::Bool &&
                ok->asBool()) {
                const std::string *job = stringMember(r, "job");
                if (!job) {
                    *failure = "submit reply from " + w.name +
                        " has no job id";
                    return true;
                }
                slots.push_back(
                    {cell, *job, std::chrono::steady_clock::now()});
                break;
            }
            const std::string *code = stringMember(r, "error");
            if (code && (*code == "queue_full" ||
                         *code == "journal_error")) {
                // Backpressure: honor the hint and resubmit.  The
                // shard rarely exceeds a worker's queue, but a shared
                // worker may be busy with someone else's cells.
                std::uint64_t ms = 50;
                if (auto hint = uintMember(r, "retry_after_ms"))
                    ms = *hint;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(ms));
                continue;
            }
            if (code && *code == "draining")
                return false; // the worker is going away: re-place
            *failure = "worker " + w.name + " rejected " +
                cell->workload + "/" + cell->presetName + ": " +
                (code ? *code : "unknown error");
            return true;
        }
    }

    // Phase 2: round-robin fetch until every slot is terminal.  One
    // pass polls each outstanding job once; the sleep between passes
    // keeps the poll rate bounded however large the shard.
    std::size_t remaining = slots.size();
    std::vector<bool> done(slots.size(), false);
    while (remaining > 0) {
        bool progressed = false;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (done[i])
                continue;
            obs::JsonValue fetch = obs::JsonValue::object();
            fetch["op"] = "fetch";
            fetch["job"] = slots[i].job;
            if (traceId) {
                fetch["trace_id"] = traceId;
                fetch["parent_span"] = parentSpan;
            }
            auto reply = client.request(fetch);
            if (!reply.ok())
                return false; // transport death mid-poll
            const obs::JsonValue &r = reply.value();
            const obs::JsonValue *ok = r.find("ok");
            if (ok && ok->kind() == obs::JsonValue::Kind::Bool &&
                ok->asBool()) {
                const obs::JsonValue *result = r.find("result");
                if (!result) {
                    *failure = "fetch reply from " + w.name +
                        " has no result";
                    return true;
                }
                Cell *cell = slots[i].cell;
                CellResult cr;
                cr.result = *result;
                cr.worker = w.name;
                if (const obs::JsonValue *cached = r.find("cached")) {
                    cr.cached =
                        cached->kind() == obs::JsonValue::Kind::Bool &&
                        cached->asBool();
                }
                bool cachedCell = cr.cached;
                // Distinct indices per shard: the results slot needs
                // no lock, only the counters and the event stream do.
                results[cell->index] = std::move(cr);
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    hCellUs.sample(microsSince(
                        slots[i].submittedAt,
                        std::chrono::steady_clock::now()));
                }
                obs::JsonValue ev = coordEvent("cell");
                ev["grid"] = gridId;
                ev["workload"] = cell->workload;
                ev["preset"] = cell->presetName;
                ev["key"] = cell->key;
                ev["worker"] = w.name;
                ev["cached"] = cachedCell;
                ev["attempts"] = std::uint64_t{cell->attempts};
                {
                    std::lock_guard<std::mutex> lock(emitMutex);
                    emit(ev);
                }
                done[i] = true;
                --remaining;
                progressed = true;
                continue;
            }
            const std::string *code = stringMember(r, "error");
            if (code && *code == "not_ready")
                continue; // queued or running; poll again next pass
            if (code && *code == "unknown_job") {
                // The worker restarted under us and lost the id.  Its
                // journal/cache may still answer a resubmit, but the
                // simplest correct move is to treat it as a death and
                // let the rebalance place the cell again (dedup by
                // fingerprint makes the retry idempotent).
                return false;
            }
            // Terminal failure (sim_error, cancelled, deadline...):
            // deterministic, so no other worker would do better.
            *failure = "cell " + slots[i].cell->workload + "/" +
                slots[i].cell->presetName + " failed on " + w.name +
                ": " + (code ? *code : "unknown error");
            return true;
        }
        if (remaining > 0 && !progressed) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(cfg.pollMs));
        }
    }
    return true;
}

// -- fleet stats ----------------------------------------------------------

obs::JsonValue
Coordinator::fleetStats()
{
    obs::JsonValue reply = coordEvent("stats");
    reply["op"] = "stats";
    {
        std::lock_guard<std::mutex> lock(mutex);
        reply["draining"] = drainFlag.load();
        reply["active_grids"] = activeGrids;
        obs::JsonValue counters = obs::JsonValue::object();
        for (const auto &kv : stats.counters())
            counters[kv.first] = kv.second;
        reply["counters"] = std::move(counters);
    }
    obs::JsonValue ring = obs::JsonValue::object();
    ring["vnodes"] = std::uint64_t{cfg.vnodes};
    obs::JsonValue names = obs::JsonValue::array();
    for (const WorkerSpec &w : cfg.workers)
        names.push(w.name);
    ring["workers"] = std::move(names);
    reply["ring"] = std::move(ring);

    // Live per-worker snapshots: one short-timeout probe each, so one
    // dead worker costs a bounded wait, not a hang.
    std::uint64_t fleetSims = 0;
    std::uint64_t fleetCacheHits = 0;
    obs::JsonValue workers = obs::JsonValue::array();
    for (const WorkerSpec &w : cfg.workers) {
        obs::JsonValue entry = obs::JsonValue::object();
        entry["name"] = w.name;
        entry["endpoint"] = w.endpoint;
        Client client;
        RetryPolicy rp;
        rp.recvTimeoutMs =
            cfg.recvTimeoutMs ? cfg.recvTimeoutMs : 2000;
        client.setRetryPolicy(rp);
        bool alive = false;
        if (client.connect(w.endpoint).ok()) {
            obs::JsonValue req = obs::JsonValue::object();
            req["op"] = "stats";
            if (auto statsReply = client.request(req);
                statsReply.ok()) {
                alive = true;
                const obs::JsonValue *counters =
                    statsReply.value().find("counters");
                if (counters) {
                    if (const obs::JsonValue *sims =
                            counters->find("svc.sims_executed")) {
                        fleetSims += sims->asUint();
                    }
                    if (const obs::JsonValue *hits =
                            counters->find("svc.cache_hits")) {
                        fleetCacheHits += hits->asUint();
                    }
                }
                entry["stats"] = std::move(statsReply.value());
            }
        }
        entry["alive"] = alive;
        workers.push(std::move(entry));
    }
    reply["workers"] = std::move(workers);
    obs::JsonValue fleet = obs::JsonValue::object();
    fleet["sims_executed"] = fleetSims;
    fleet["cache_hits"] = fleetCacheHits;
    reply["fleet"] = std::move(fleet);
    return reply;
}

} // namespace dcfb::svc
