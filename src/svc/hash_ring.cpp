#include "svc/hash_ring.h"

#include "svc/fingerprint.h"

namespace dcfb::svc {

namespace {

/**
 * Ring position for an arbitrary string.  FNV-1a alone is unusable
 * here: its final byte barely reaches the high bits, so the points for
 * "w1#0".."w1#63" (and the hex cache keys) cluster on one arc and the
 * map ordering — which IS the ring — degenerates.  A splitmix64-style
 * finalizer avalanches the full word; still fully deterministic.
 */
std::uint64_t
ringPoint(const std::string &text)
{
    std::uint64_t x = fnv1a64(text);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace

void
HashRing::add(const std::string &name)
{
    if (members.count(name))
        return;
    members.emplace(name, true);
    for (unsigned i = 0; i < vnodesPerNode; ++i) {
        std::uint64_t point =
            ringPoint(name + "#" + std::to_string(i));
        // Collisions between members are astronomically unlikely but
        // must still be deterministic: first-inserted keeps the point.
        ring.emplace(point, name);
    }
}

void
HashRing::remove(const std::string &name)
{
    if (!members.erase(name))
        return;
    for (auto it = ring.begin(); it != ring.end();) {
        if (it->second == name)
            it = ring.erase(it);
        else
            ++it;
    }
}

bool
HashRing::contains(const std::string &name) const
{
    return members.count(name) != 0;
}

std::vector<std::string>
HashRing::nodes() const
{
    std::vector<std::string> out;
    out.reserve(members.size());
    for (const auto &kv : members)
        out.push_back(kv.first);
    return out;
}

const std::string &
HashRing::owner(const std::string &key) const
{
    if (ring.empty())
        return none;
    auto it = ring.lower_bound(ringPoint(key));
    if (it == ring.end())
        it = ring.begin(); // wrap past the top of the ring
    return it->second;
}

} // namespace dcfb::svc
