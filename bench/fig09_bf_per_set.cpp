/**
 * @file
 * Figure 9: fraction of branch footprints left uncovered as a function
 * of the number of BFs stored per LLC set (DV-LLC).  Paper: 2 slots ->
 * ~2 % uncovered, 4 slots -> ~0.2 %.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 9 - uncovered BFs vs. BF slots per LLC set",
                  "2 slots ~2%, 3 ~0.4%, 4 ~0.2% uncovered");

    sim::Table table({"BF slots/set", "BF fetches", "uncovered",
                      "uncovered fraction"});
    for (unsigned slots : {1u, 2u, 3u, 4u}) {
        std::uint64_t fetches = 0, uncovered = 0;
        for (const auto &name : bench::sweepWorkloads()) {
            auto profile = workload::serverProfile(name, /*vl=*/true);
            auto cfg =
                sim::makeConfig(profile, sim::Preset::SN4LDisBtb);
            cfg.llc.bfSlotsPerSet = slots;
            // Use a 2 MB LLC so several instruction blocks share a set;
            // at 32 MB the per-set instruction population is < 1 and
            // slot pressure never materializes.
            cfg.llc.capacityBytes = 2ull << 20;
            auto res = sim::simulate(cfg, bench::windows());
            fetches += res.stat("llc.bf_fetch_attempts");
            uncovered += res.stat("llc.bf_fetch_uncovered");
        }
        double frac = fetches
            ? static_cast<double>(uncovered) / static_cast<double>(fetches)
            : 0.0;
        table.addRow({std::to_string(slots), std::to_string(fetches),
                      std::to_string(uncovered), sim::Table::pct(frac, 2)});
    }
    h.report(table, "Uncovered branch footprints per BF-slot budget "
                "(VL-ISA workloads)");
    return 0;
}
