#!/usr/bin/env python3
"""Chaos harness for dcfb-serve's crash-safety contract (DESIGN.md #12).

Runs the full fig16 grid (7 server workloads x 5 presets = 35 cells at
warm=2000/measure=3000) through the daemon four times:

  A. reference   -- clean run, journal off: the byte-level ground truth.
  B. kill/replay -- journal on; all 35 jobs submitted, SIGKILL lands
                    mid-grid, the daemon restarts on the same journal +
                    cache and every client blindly resubmits.
  C. torn tail   -- a fresh incarnation is SIGKILLed and the journal's
                    final record is truncated mid-line before restart,
                    modelling a crash inside append().
  D. resets      -- journal on plus `--svc-inject reset:...`: the daemon
                    slams connections shut after handling requests, and
                    the clients must reconnect + resubmit idempotently.

Pass criteria (any failure exits non-zero):
  - zero lost jobs: every cell fetches a terminal ok result in every
    round, no matter where the SIGKILL landed;
  - zero duplicate sims: round B's second incarnation executes exactly
    35 - (results already in the cache at the kill) simulations --
    finished work is served from the cache, unfinished work is replayed
    or resubmitted exactly once;
  - byte-identical results: every round's fetched RunResult documents
    equal round A's, so crash recovery is observably invisible;
  - the journal always parses: every surviving line carries a valid
    FNV-1a crc (reimplemented here, independent of the C++ code) and
    segment headers pin schema dcfb-journal-v1;
  - the truncated tail is repaired, reported in stats as
    journal.torn_tails_repaired, and costs at most that one record;
  - every incarnation that is asked to, drains on SIGTERM with exit 0
    and a final stats JSON document on stdout.

Stdlib only; no external dependencies.
"""

import argparse
import json
import os
import random
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

WORKLOADS = [
    "Media Streaming",
    "OLTP (DB A)",
    "OLTP (DB B)",
    "Web (Apache)",
    "Web (Zeus)",
    "Web Frontend",
    "Web Search",
]
PRESETS = ["Baseline", "NL", "SN4L+Dis+BTB", "Shotgun", "Confluence"]
WARM, MEASURE = 2000, 3000

JOURNAL_SCHEMA = "dcfb-journal-v1"


def fnv1a_hex(text):
    """FNV-1a 64-bit over the UTF-8 bytes, 16 lowercase hex chars.

    Independent reimplementation of src/svc/fingerprint.cpp so the
    harness validates journal checksums without trusting the C++ side.
    """
    h = 0xCBF29CE484222325
    for byte in text.encode():
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return f"{h:016x}"


def grid_specs(seed):
    return [(w, p, seed) for w in WORKLOADS for p in PRESETS]


class Client:
    """One NDJSON request/reply exchange per call, with line buffering."""

    def __init__(self, path, timeout=30.0):
        self.sock = None
        self.buf = b""
        deadline = time.monotonic() + timeout
        while True:
            try:
                s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                s.settimeout(timeout)
                s.connect(path)
                self.sock = s
                return
            except OSError:
                s.close()
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.02)

    def request_line(self, line):
        self.sock.sendall(line.encode() + b"\n")
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self.buf += chunk
        reply, self.buf = self.buf.split(b"\n", 1)
        return json.loads(reply)

    def request(self, doc):
        return self.request_line(json.dumps(doc))

    def close(self):
        if self.sock:
            self.sock.close()
            self.sock = None


def submit_doc(spec):
    return {
        "op": "submit",
        "workload": spec[0],
        "preset": spec[1],
        "seed": spec[2],
        "warm": WARM,
        "measure": MEASURE,
    }


def run_cell(path, spec, out, idx, rng_seed):
    """Drive one cell to a terminal result, absorbing every chaos mode.

    Connection resets, dropped replies and unknown_job are the daemon's
    documented failure surface; the client reconnects and resubmits --
    the journal's idempotency index guarantees that retries dedupe onto
    the same job, so blind resubmission is always safe.
    """
    rng = random.Random(rng_seed)
    c = None
    try:
        deadline = time.monotonic() + 600
        job = None
        while time.monotonic() < deadline:
            try:
                if c is None:
                    c = Client(path)
                if job is None:
                    reply = c.request(submit_doc(spec))
                    if reply.get("ok"):
                        job = reply["job"]
                        continue
                    if reply.get("error") in ("queue_full", "draining",
                                              "journal_error"):
                        time.sleep(reply.get("retry_after_ms", 50) /
                                   1000.0 * (0.5 + rng.random()))
                        continue
                    out[idx] = ("reject", reply)
                    return
                reply = c.request({"op": "fetch", "job": job})
                if reply.get("ok"):
                    out[idx] = ("done", reply["result"])
                    return
                if reply.get("error") == "not_ready":
                    time.sleep(reply.get("retry_after_ms", 50) / 1000.0)
                    continue
                if reply.get("error") == "unknown_job":
                    job = None  # lost to a crash: resubmit idempotently
                    continue
                out[idx] = ("failed", reply)
                return
            except (OSError, ConnectionError, ValueError):
                # Reset/dropped frame: reconnect, resubmit from scratch.
                if c is not None:
                    c.close()
                c = None
                job = None
                time.sleep(0.02 * (0.5 + rng.random()))
        out[idx] = ("timeout", None)
    except Exception as exc:  # noqa: BLE001 - chaos harness, record all
        out[idx] = ("exception", repr(exc))
    finally:
        if c is not None:
            c.close()


def run_grid(path, specs, rng_seed):
    """All cells concurrently; returns list of (state, result)."""
    out = [None] * len(specs)
    threads = [
        threading.Thread(target=run_cell,
                         args=(path, spec, out, i, rng_seed * 1000 + i))
        for i, spec in enumerate(specs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=700)
    return out


class Daemon:
    """One dcfb-serve incarnation with SIGTERM/SIGKILL helpers."""

    def __init__(self, serve, sock, extra):
        self.sock = sock
        cmd = [serve, "--socket", sock, "--warm", str(WARM),
               "--measure", str(MEASURE), "--retry-after-ms", "25"]
        cmd += extra
        self.proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                                     text=True)

    def wait_ready(self, timeout=60):
        deadline = time.monotonic() + timeout
        while not os.path.exists(self.sock):
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"daemon exited {self.proc.returncode} before ready")
            if time.monotonic() > deadline:
                raise RuntimeError("daemon failed to come up")
            time.sleep(0.05)
        ping = Client(self.sock)
        try:
            assert ping.request({"op": "ping"}).get("ok")
        finally:
            ping.close()

    def stats(self):
        c = Client(self.sock)
        try:
            return c.request({"op": "stats"})
        finally:
            c.close()

    def kill(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)
        if os.path.exists(self.sock):
            os.unlink(self.sock)  # SIGKILL skips the daemon's cleanup

    def drain(self, failures, label):
        """SIGTERM; require exit 0 and final stats JSON on stdout."""
        self.proc.send_signal(signal.SIGTERM)
        try:
            stdout, _ = self.proc.communicate(timeout=120)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.communicate()
            failures.append(f"{label}: no drain within 120s of SIGTERM")
            return None
        if self.proc.returncode != 0:
            failures.append(
                f"{label}: drain exit {self.proc.returncode}, expected 0")
        try:
            final = json.loads(stdout)
            assert "counters" in final
            return final
        except (ValueError, AssertionError):
            failures.append(
                f"{label}: final stats not valid JSON: {stdout[:200]!r}")
            return None


def check_results(label, specs, out, reference, failures):
    """Zero lost jobs + byte-identical results against the reference."""
    lost = [(spec, v) for spec, v in zip(specs, out)
            if not v or v[0] != "done"]
    if lost:
        failures.append(f"{label}: {len(lost)} lost jobs: {lost[:3]}")
        return
    for spec, v in zip(specs, out):
        blob = json.dumps(v[1], sort_keys=True)
        if reference is not None and reference[spec] != blob:
            failures.append(
                f"{label}: result for {spec} diverged from reference")


def validate_journal(journal_dir, failures, label,
                     allow_torn_tail=False):
    """Every surviving journal line must carry a valid crc.

    Returns the parsed records.  A torn final line (no trailing
    newline, or a half-written record) is tolerated only when
    @p allow_torn_tail -- i.e. right after a SIGKILL, before the next
    incarnation repairs it.
    """
    records = []
    names = sorted(n for n in os.listdir(journal_dir)
                   if n.startswith("journal-") and n.endswith(".ndjson"))
    if not names:
        failures.append(f"{label}: no journal segments in {journal_dir}")
        return records
    for seg_i, name in enumerate(names):
        with open(os.path.join(journal_dir, name), "rb") as fh:
            data = fh.read()
        body, _, tail = data.rpartition(b"\n")
        lines = body.split(b"\n") if body else []
        if tail:
            if allow_torn_tail and seg_i == len(names) - 1:
                print(f"chaos: {label}: torn tail in {name} "
                      f"({len(tail)} bytes), as injected", flush=True)
            else:
                failures.append(
                    f"{label}: {name} ends mid-record: {tail[:60]!r}")
        for line in lines:
            if not line:
                continue
            text = line.decode()
            key = ',"crc":"'
            pos = text.rfind(key)
            if pos < 0 or not text.endswith('"}'):
                failures.append(f"{label}: no crc suffix: {text[:60]!r}")
                continue
            crc = text[pos + len(key):-2]
            if fnv1a_hex(text[:pos] + "}") != crc:
                failures.append(f"{label}: bad crc: {text[:60]!r}")
                continue
            rec = json.loads(text)
            if rec.get("type") == "header":
                if rec.get("schema") != JOURNAL_SCHEMA:
                    failures.append(
                        f"{label}: bad schema {rec.get('schema')!r}")
            records.append(rec)
    return records


def cache_results(cache_dir):
    """Keys of completed results on disk (tmp files are not results)."""
    if not os.path.isdir(cache_dir):
        return set()
    return {n[:-5] for n in os.listdir(cache_dir)
            if n.endswith(".json")}


def counter(stats, name):
    return stats.get("counters", {}).get(name, 0)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--serve", required=True, help="path to dcfb-serve")
    ap.add_argument("--seed", type=int, default=7,
                    help="grid seed, also seeds the fault injectors")
    ap.add_argument("--kill-after", type=int, default=6,
                    help="SIGKILL once this many results are cached")
    ap.add_argument("--reset-rate", type=float, default=0.25)
    args = ap.parse_args()

    tmp = tempfile.mkdtemp(prefix="dcfb-chaos-")
    specs = grid_specs(args.seed)
    failures = []

    # ---- Round A: clean reference run (journal off) ---------------------
    print(f"chaos: round A (reference, {len(specs)} cells)", flush=True)
    sock = os.path.join(tmp, "a.sock")
    d = Daemon(args.serve, sock,
               ["--cache", os.path.join(tmp, "a-cache")])
    reference = None
    try:
        d.wait_ready()
        out = run_grid(sock, specs, args.seed)
        check_results("round A", specs, out, None, failures)
        if not failures:
            reference = {spec: json.dumps(v[1], sort_keys=True)
                         for spec, v in zip(specs, out)}
    finally:
        d.drain(failures, "round A")
    if reference is None:
        for f in failures:
            print("chaos FAIL:", f, file=sys.stderr)
        print("chaos: reference run failed; aborting", file=sys.stderr)
        return 1

    # ---- Round B: SIGKILL mid-grid, restart, replay ---------------------
    print("chaos: round B (SIGKILL mid-grid + journaled restart)",
          flush=True)
    sock = os.path.join(tmp, "b.sock")
    cache_dir = os.path.join(tmp, "b-cache")
    journal_dir = os.path.join(tmp, "b-journal")
    flags = ["--cache", cache_dir, "--journal", journal_dir,
             "--lease-ms", "30000"]
    d = Daemon(args.serve, sock, flags)
    d.wait_ready()
    submitter = Client(sock)
    for spec in specs:
        reply = submitter.request(submit_doc(spec))
        while not reply.get("ok"):
            if reply.get("error") not in ("queue_full", "journal_error"):
                failures.append(f"round B: submit rejected: {reply}")
                break
            time.sleep(reply.get("retry_after_ms", 50) / 1000.0)
            reply = submitter.request(submit_doc(spec))
    submitter.close()
    # Let part of the grid finish, then pull the plug.  The cache count
    # is only advisory here (results land while we poll); the
    # authoritative count is taken after the process is dead.
    deadline = time.monotonic() + 300
    while len(cache_results(cache_dir)) < args.kill_after:
        if time.monotonic() > deadline:
            failures.append("round B: grid never reached the kill point")
            break
        time.sleep(0.02)
    d.kill()
    done_at_kill = cache_results(cache_dir)
    print(f"chaos: round B: killed with {len(done_at_kill)}/"
          f"{len(specs)} results cached", flush=True)
    if not (0 < len(done_at_kill) < len(specs)):
        failures.append(
            f"round B: kill landed outside the grid "
            f"({len(done_at_kill)} of {len(specs)} done) -- tune "
            f"--kill-after")
    validate_journal(journal_dir, failures, "round B post-kill",
                     allow_torn_tail=True)

    d = Daemon(args.serve, sock, flags)
    d.wait_ready()
    out = run_grid(sock, specs, args.seed + 1)
    check_results("round B", specs, out, reference, failures)
    stats = d.stats()
    sims2 = counter(stats, "svc.sims_executed")
    expected = len(specs) - len(done_at_kill)
    if sims2 != expected:
        failures.append(
            f"round B: incarnation 2 ran {sims2} sims, expected "
            f"{expected} (= {len(specs)} - {len(done_at_kill)} cached "
            f"at kill): duplicate or lost work")
    recovered = (counter(stats, "svc.recovery.replayed") +
                 counter(stats, "svc.recovery.cache_hits"))
    if recovered == 0:
        failures.append("round B: restart recovered nothing from the "
                        "journal")
    if counter(stats, "svc.invariant_violations") != 0:
        failures.append(f"round B: invariant violations: {stats}")
    print(f"chaos: round B: sims={sims2} replayed="
          f"{counter(stats, 'svc.recovery.replayed')} cache_hits="
          f"{counter(stats, 'svc.recovery.cache_hits')} already_known="
          f"{counter(stats, 'svc.already_known')}", flush=True)
    final = d.drain(failures, "round B")
    if final is not None:
        journal_stats = final.get("journal", {})
        if journal_stats.get("records_recovered", 0) <= 0:
            failures.append(
                f"round B: drain stats report no recovered records: "
                f"{journal_stats}")
    validate_journal(journal_dir, failures, "round B post-drain")

    # ---- Round C: truncated journal tail --------------------------------
    print("chaos: round C (torn journal tail)", flush=True)
    sock = os.path.join(tmp, "c.sock")
    cache_dir = os.path.join(tmp, "c-cache")
    journal_dir = os.path.join(tmp, "c-journal")
    flags = ["--cache", cache_dir, "--journal", journal_dir]
    d = Daemon(args.serve, sock, flags)
    d.wait_ready()
    c = Client(sock)
    for spec in specs[:3]:
        reply = c.request(submit_doc(spec))
        if not reply.get("ok"):
            failures.append(f"round C: submit rejected: {reply}")
    c.close()
    d.kill()
    done_at_kill = cache_results(cache_dir)
    # Chop the final record mid-line: a crash inside append() leaves
    # exactly this shape on disk.
    seg = sorted(n for n in os.listdir(journal_dir)
                 if n.endswith(".ndjson"))[-1]
    seg_path = os.path.join(journal_dir, seg)
    with open(seg_path, "rb") as fh:
        data = fh.read()
    cut = data.rstrip(b"\n").rfind(b"\n")
    if cut < 0:
        failures.append("round C: journal too short to truncate")
    else:
        with open(seg_path, "wb") as fh:
            fh.write(data[:cut + 1 + (len(data) - cut - 1) // 2])
        d = Daemon(args.serve, sock, flags)
        d.wait_ready()
        out = run_grid(sock, specs[:3], args.seed + 2)
        check_results("round C", specs[:3], out, reference, failures)
        stats = d.stats()
        torn = stats.get("journal", {}).get("torn_tails_repaired", 0)
        if torn != 1:
            failures.append(
                f"round C: torn_tails_repaired={torn}, expected 1")
        # The truncated record is gone from the journal, but blind
        # resubmission covers it: work cached before the kill is never
        # re-simulated, everything else runs exactly once.
        sims = counter(stats, "svc.sims_executed")
        expected = 3 - len(done_at_kill)
        if sims != expected:
            failures.append(
                f"round C: {sims} sims, expected {expected} "
                f"(3 cells - {len(done_at_kill)} cached at kill)")
        d.drain(failures, "round C")
        validate_journal(journal_dir, failures, "round C post-drain")

    # ---- Round D: connection resets under --svc-inject ------------------
    print("chaos: round D (socket resets)", flush=True)
    sock = os.path.join(tmp, "d.sock")
    plan = f"reset:rate={args.reset_rate},seed={args.seed}"
    d = Daemon(args.serve, sock,
               ["--cache", os.path.join(tmp, "d-cache"),
                "--journal", os.path.join(tmp, "d-journal"),
                "--svc-inject", plan])
    d.wait_ready()
    out = run_grid(sock, specs, args.seed + 3)
    check_results("round D", specs, out, reference, failures)
    stats = None
    for _ in range(50):  # the stats request itself can be reset
        try:
            stats = d.stats()
            break
        except (OSError, ConnectionError, ValueError):
            time.sleep(0.05)
    if stats is None:
        failures.append("round D: could not fetch stats")
    else:
        resets = stats.get("svc_inject", {}).get("frames_reset", 0)
        if resets < 1:
            failures.append(
                f"round D: injector reset no frames under {plan}")
        sims = counter(stats, "svc.sims_executed")
        if sims != len(specs):
            failures.append(
                f"round D: {sims} sims for {len(specs)} unique cells "
                f"(idempotent resubmission broke dedup)")
        print(f"chaos: round D: frames_reset={resets} sims={sims} "
              f"already_known={counter(stats, 'svc.already_known')}",
              flush=True)
    d.drain(failures, "round D")

    if failures:
        for f in failures:
            print("chaos FAIL:", f, file=sys.stderr)
        return 1
    print("chaos PASS", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
