/**
 * @file
 * TAGE conditional branch direction predictor (Table III cites Seznec &
 * Michaud's partially-tagged geometric-history-length predictor).
 *
 * Implementation follows the canonical structure: a bimodal base table
 * plus N partially-tagged components indexed by hashes of geometrically
 * increasing global-history lengths, with folded-history registers for
 * constant-time index/tag computation, provider/altpred selection,
 * usefulness counters and the standard allocation policy on
 * mispredictions.
 */

#ifndef DCFB_FRONTEND_TAGE_H
#define DCFB_FRONTEND_TAGE_H

#include <array>
#include <cstdint>
#include <vector>

#include "common/sat_counter.h"
#include "common/stats.h"
#include "common/types.h"
#include "exec/arena.h"

namespace dcfb::frontend {

/** TAGE geometry. */
struct TageConfig
{
    unsigned numTables = 6;           //!< tagged components
    unsigned baseEntriesLog2 = 12;    //!< bimodal size (4 K)
    unsigned taggedEntriesLog2 = 10;  //!< per-component size (1 K)
    unsigned tagBits = 9;
    unsigned minHistory = 4;          //!< geometric series start
    unsigned maxHistory = 128;        //!< geometric series end
    unsigned counterBits = 3;
    unsigned usefulBits = 2;
};

/** Upper bound on TageConfig::numTables, so per-lookup bookkeeping can
 *  live in fixed arrays instead of heap vectors.  Real geometries use
 *  4-12 tagged components; the ctor asserts the bound. */
inline constexpr unsigned kMaxTageTables = 16;

/**
 * TAGE predictor.
 */
class Tage
{
  public:
    explicit Tage(const TageConfig &config = TageConfig{},
                  exec::Arena *arena = nullptr);

    /** Arena bytes this geometry's tables want (base + tagged + ring). */
    static std::size_t
    arenaBytes(const TageConfig &config = TageConfig{})
    {
        std::size_t bytes =
            (std::size_t{1} << config.baseEntriesLog2) * sizeof(SatCounter);
        bytes += std::size_t{config.numTables} *
            (std::size_t{1} << config.taggedEntriesLog2) *
            sizeof(TaggedEntry);
        bytes += std::size_t{config.maxHistory} * 2 + 64;
        return bytes;
    }

    /** Predict the direction of the conditional branch at @p pc. */
    bool predict(Addr pc);

    /**
     * Train with the resolved outcome and advance the global history.
     * Must be called once per conditional branch, after predict().
     */
    void update(Addr pc, bool taken);

    /** Advance history for a non-conditional control transfer (calls,
     *  jumps, returns shift path history too). */
    void updateHistoryUnconditional(Addr pc);

    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        SatCounter ctr;
        std::uint8_t useful = 0;
    };

    /** Circular-shift folded history register (Seznec's trick). */
    struct FoldedHistory
    {
        std::uint32_t value = 0;
        unsigned origLen = 0;   //!< history bits folded in
        unsigned compLen = 0;   //!< folded width

        void
        update(bool new_bit, bool out_bit)
        {
            value = (value << 1) | (new_bit ? 1u : 0u);
            // Bit leaving the history window folds out.
            value ^= (out_bit ? 1u : 0u) << (origLen % compLen);
            value ^= value >> compLen;
            value &= (1u << compLen) - 1;
        }
    };

    /** Per-component prediction bookkeeping from the last predict().
     *  Fixed arrays (not vectors): lookup() runs twice per conditional
     *  branch and must not allocate. */
    struct Lookup
    {
        int provider = -1;  //!< component index, -1 = bimodal
        int alt = -1;
        bool providerPred = false;
        bool altPred = false;
        bool pred = false;
        std::array<std::uint32_t, kMaxTageTables> indices{};
        std::array<std::uint16_t, kMaxTageTables> tags{};
    };

    std::uint32_t baseIndex(Addr pc) const;
    std::uint32_t taggedIndex(Addr pc, unsigned table) const;
    std::uint16_t taggedTag(Addr pc, unsigned table) const;
    void shiftHistory(bool bit);
    Lookup lookup(Addr pc);

    /** History bit @p i positions behind the newest bit (i = 0 is the
     *  newest).  The ring replaces an element-wise shifted vector<bool>:
     *  shiftHistory() used to be ~40% of whole-simulation runtime. */
    bool
    historyBit(unsigned i) const
    {
        return history[(histHead + i) & histMask] != 0;
    }

    TageConfig cfg;
    exec::ArenaVector<SatCounter> base;
    /** Tagged components: outer spine is tiny (heap); the per-component
     *  entry arrays live in the cell arena. */
    std::vector<exec::ArenaVector<TaggedEntry>> tables;
    std::vector<unsigned> histLengths;
    std::vector<FoldedHistory> foldedIndex;
    std::vector<FoldedHistory> foldedTag0;
    std::vector<FoldedHistory> foldedTag1;
    exec::ArenaVector<std::uint8_t> history; //!< global-history ring,
                                             //!< newest at histHead
    std::size_t histHead = 0;
    std::size_t histMask = 0;
    SatCounter useAltOnNa;       //!< use-alt-on-newly-allocated policy
    std::uint64_t allocSeed = 0x123456789abcdefull;
    Lookup last;
    StatSet statSet;
    obs::LazyCounter cPredictions;
    obs::LazyCounter cCorrect;
    obs::LazyCounter cMispredict;
    obs::LazyCounter cAllocations;
};

} // namespace dcfb::frontend

#endif // DCFB_FRONTEND_TAGE_H
