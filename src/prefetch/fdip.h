/**
 * @file
 * FDIP: fetch-directed instruction prefetching.
 *
 * Models the competitor design of "Fetch-Directed Instruction
 * Prefetching Revisited": a decoupled BPU runs ahead of fetch through
 * the FTQ (sim/decoupled.h, Kind::Fdip, driven by the conventional
 * 2 K-entry BTB), and every basic block appended to the FTQ feeds this
 * prefetcher, which enqueues the block's cache lines and issues a
 * bounded number of prefetches per cycle.  Lines the BPU only just ran
 * ahead to (FTQ occupancy at or below the prefetch-ahead distance) are
 * skipped — fetch is about to demand them anyway, so prefetching them
 * buys nothing and burns an L1i port.
 *
 * The candidate queue (FdipQueue) is deliberately a separate, plainly
 * constructible class: tests/test_differential.cpp cross-checks it
 * against a map/deque reference model over seeded random streams,
 * including non-power-of-two queue and filter sizes.
 */

#ifndef DCFB_PREFETCH_FDIP_H
#define DCFB_PREFETCH_FDIP_H

#include <bit>
#include <cstdint>
#include <vector>

#include "common/queue.h"
#include "common/stats.h"
#include "common/types.h"
#include "prefetch/prefetcher.h"

namespace dcfb::prefetch {

/** FDIP knobs (FTQ geometry + prefetch policy). */
struct FdipConfig
{
    unsigned ftqDepth = 48;      //!< FTQ entries (overrides fetch.ftqEntries)
    unsigned prefetchAhead = 2;  //!< skip blocks within this FTQ distance
    unsigned queueEntries = 24;  //!< candidate queue (deliberately non-pow2)
    unsigned issuesPerCycle = 2; //!< L1i prefetch port limit
    unsigned recentEntries = 12; //!< recently-enqueued dedup filter ring
};

/**
 * Bounded candidate queue with a recently-accepted dedup filter.
 *
 * Push outcomes are exact: a block found in the recent ring is a
 * duplicate (filtered, not queued again), a full queue drops, anything
 * else is accepted and recorded in the ring.  The ring only records
 * *accepted* pushes, so a dropped block may be retried by a later FTQ
 * append — the reference model in the differential tests mirrors this.
 */
class FdipQueue
{
  public:
    enum class Push { Accepted, Duplicate, Dropped };

    FdipQueue(unsigned entries, unsigned recent_entries,
              exec::Arena *arena = nullptr)
        : queue(entries ? entries : 1, arena),
          recent(recent_entries ? recent_entries : 1, kInvalidAddr)
    {}

    Push
    push(Addr block)
    {
        for (Addr r : recent) {
            if (r == block)
                return Push::Duplicate;
        }
        if (!queue.push(block))
            return Push::Dropped;
        recent[recentPos] = block;
        recentPos = (recentPos + 1) % recent.size();
        return Push::Accepted;
    }

    bool empty() const { return queue.empty(); }
    std::size_t size() const { return queue.size(); }
    Addr front() const { return queue.front(); }
    void pop() { queue.pop(); }

  private:
    BoundedQueue<Addr> queue;
    std::vector<Addr> recent; //!< ring of recently accepted blocks
    std::size_t recentPos = 0;
};

/**
 * The FTQ-driven prefetcher.  DecoupledFetchEngine (Kind::Fdip) calls
 * onFtqAppend for every pushed basic block; tick drains the candidate
 * queue through the L1i's prefetch port.
 */
class Fdip final : public InstrPrefetcher
{
  public:
    Fdip(mem::L1iCache &l1i_, const FdipConfig &config,
         exec::Arena *arena = nullptr)
        : l1i(l1i_), cfg(config),
          queue(config.queueEntries, config.recentEntries, arena),
          cEnqueued(statSet.lazy("fdip_enqueued")),
          cDuplicates(statSet.lazy("fdip_duplicates")),
          cDropped(statSet.lazy("fdip_dropped")),
          cAheadSkipped(statSet.lazy("fdip_ahead_skipped")),
          cIssued(statSet.lazy("fdip_issued")),
          cInCache(statSet.lazy("fdip_in_cache")),
          cInFlight(statSet.lazy("fdip_in_flight")),
          cNoMshr(statSet.lazy("fdip_no_mshr")),
          cFills(statSet.lazy("fdip_prefetch_fills")),
          cUseful(statSet.lazy("fdip_useful"))
    {
        hQueueOcc = statSet.histogram("fdip_queue_occ");
    }

    std::string name() const override { return "FDIP"; }

    /** Arena bytes the candidate queue ring wants. */
    static std::size_t
    arenaBytes(const FdipConfig &config)
    {
        return std::bit_ceil(
                   std::size_t{config.queueEntries ? config.queueEntries
                                                   : 1}) *
            sizeof(Addr);
    }

    /**
     * One basic block was appended to the FTQ: enqueue its cache lines
     * as prefetch candidates.  @p ftq_occupancy is the FTQ depth *after*
     * the push; at or below the prefetch-ahead distance the lines are
     * about to be demanded and are skipped.
     */
    void
    onFtqAppend(Addr first_block, Addr last_block,
                std::size_t ftq_occupancy)
    {
        if (ftq_occupancy <= cfg.prefetchAhead) {
            for (Addr b = first_block; b <= last_block; b += kBlockBytes)
                cAheadSkipped.add();
            return;
        }
        for (Addr b = first_block; b <= last_block; b += kBlockBytes) {
            switch (queue.push(b)) {
              case FdipQueue::Push::Accepted:
                cEnqueued.add();
                break;
              case FdipQueue::Push::Duplicate:
                cDuplicates.add();
                break;
              case FdipQueue::Push::Dropped:
                cDropped.add();
                break;
            }
        }
    }

    void
    tick(Cycle now) override
    {
        hQueueOcc.sample(queue.size());
        for (unsigned i = 0; i < cfg.issuesPerCycle && !queue.empty();
             ++i) {
            Addr block = queue.front();
            queue.pop();
            switch (l1i.prefetch(block, now)) {
              case mem::L1iCache::PfOutcome::Issued:
                cIssued.add();
                break;
              case mem::L1iCache::PfOutcome::InCache:
              case mem::L1iCache::PfOutcome::InBuffer:
                cInCache.add();
                break;
              case mem::L1iCache::PfOutcome::InFlight:
                cInFlight.add();
                break;
              case mem::L1iCache::PfOutcome::NoMshr:
                cNoMshr.add();
                break;
            }
        }
    }

    void
    onFill(Addr block_addr, bool was_prefetch,
           const mem::BranchFootprint *bf) override
    {
        (void)block_addr;
        (void)bf;
        if (was_prefetch)
            cFills.add();
    }

    void
    onPrefetchUsed(Addr block_addr) override
    {
        (void)block_addr;
        cUseful.add();
    }

    /** Candidate queue + dedup ring, in bits (Table II-style audit). */
    std::uint64_t
    storageBits() const override
    {
        return std::uint64_t{cfg.queueEntries + cfg.recentEntries} * 46;
    }

    std::size_t queueDepth() const { return queue.size(); }
    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }

  private:
    mem::L1iCache &l1i;
    FdipConfig cfg;
    FdipQueue queue;

    StatSet statSet;
    obs::Histogram hQueueOcc;
    obs::LazyCounter cEnqueued, cDuplicates, cDropped, cAheadSkipped,
        cIssued, cInCache, cInFlight, cNoMshr, cFills, cUseful;
};

} // namespace dcfb::prefetch

#endif // DCFB_PREFETCH_FDIP_H
