# Empty compiler generated dependencies file for fig11_table_sizes.
# This may be replaced when dependencies are built.
