/**
 * @file
 * Quickstart: build a server workload, run the baseline and the paper's
 * SN4L+Dis+BTB prefetcher, and print the headline numbers.
 *
 * Usage: quickstart [workload-name]
 */

#include <cstdio>
#include <string>

#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/profiles.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;

    std::string name = argc > 1 ? argv[1] : "Web (Apache)";
    auto profile = workload::serverProfile(name);
    std::printf("workload: %s  (code footprint: %zu KB)\n", name.c_str(),
                workload::buildProgram(profile).codeBytes() / 1024);

    sim::RunWindows windows;
    sim::Table table({"design", "IPC", "speedup", "L1i MPKI",
                      "frontend stalls", "FSCR"});

    auto base = sim::simulate(
        sim::makeConfig(profile, sim::Preset::Baseline), windows);
    for (auto preset :
         {sim::Preset::Baseline, sim::Preset::NL, sim::Preset::SN4L,
          sim::Preset::SN4LDisBtb, sim::Preset::PerfectL1i}) {
        auto res = preset == sim::Preset::Baseline
            ? base
            : sim::simulate(sim::makeConfig(profile, preset), windows);
        double mpki = res.instructions
            ? 1000.0 * static_cast<double>(res.stat("l1i.l1i_misses")) /
                static_cast<double>(res.instructions)
            : 0.0;
        table.addRow({res.design, sim::Table::num(res.ipc()),
                      sim::Table::num(sim::speedup(res, base), 3),
                      sim::Table::num(mpki, 1),
                      std::to_string(res.frontendStalls()),
                      sim::Table::pct(sim::fscr(res, base))});
    }
    table.print("quickstart: " + name);
    return 0;
}
