/**
 * @file
 * Minimal JSON document model: build, serialize, parse.
 *
 * The bench harnesses and the telemetry subsystem need a stable,
 * machine-readable output format without an external dependency.  This
 * is deliberately small: objects keep insertion order (stable schemas,
 * readable diffs), integers round-trip exactly as uint64, and the parser
 * accepts exactly the documents the serializer produces plus standard
 * JSON from CI tooling.
 */

#ifndef DCFB_OBS_JSON_H
#define DCFB_OBS_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dcfb::obs {

/**
 * One JSON value.  Numbers are stored as uint64 when integral and
 * non-negative (exact counter round-trips) and double otherwise.
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Uint, Double, String, Array, Object };

    JsonValue() : k(Kind::Null) {}
    JsonValue(bool v) : k(Kind::Bool), boolVal(v) {}
    JsonValue(std::uint64_t v) : k(Kind::Uint), uintVal(v) {}
    JsonValue(int v)
        : k(v >= 0 ? Kind::Uint : Kind::Double)
    {
        if (v >= 0)
            uintVal = static_cast<std::uint64_t>(v);
        else
            doubleVal = v;
    }
    JsonValue(double v) : k(Kind::Double), doubleVal(v) {}
    JsonValue(std::string v) : k(Kind::String), stringVal(std::move(v)) {}
    JsonValue(const char *v) : k(Kind::String), stringVal(v) {}

    static JsonValue
    array()
    {
        JsonValue v;
        v.k = Kind::Array;
        return v;
    }

    static JsonValue
    object()
    {
        JsonValue v;
        v.k = Kind::Object;
        return v;
    }

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }

    bool asBool() const { return boolVal; }
    std::uint64_t asUint() const { return uintVal; }

    /** Numeric read: Uint and Double both convert. */
    double
    asDouble() const
    {
        return k == Kind::Uint ? static_cast<double>(uintVal) : doubleVal;
    }

    const std::string &asString() const { return stringVal; }

    // -- Array access -----------------------------------------------------
    void
    push(JsonValue v)
    {
        arrayVal.push_back(std::move(v));
    }

    const std::vector<JsonValue> &items() const { return arrayVal; }
    std::size_t size() const { return arrayVal.size(); }

    // -- Object access (insertion-ordered) --------------------------------
    /** Find-or-insert member @p key. */
    JsonValue &operator[](const std::string &key);

    /** Member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;

    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return objectVal;
    }

    /** Serialize.  @p indent 0 renders compact single-line JSON;
     *  positive values pretty-print with that many spaces per level. */
    std::string dump(int indent = 0) const;

    /** Parse a complete JSON document; nullopt on any syntax error. */
    static std::optional<JsonValue> parse(std::string_view text);

    bool operator==(const JsonValue &) const = default;

    /** Escape @p s as a JSON string literal (with quotes). */
    static std::string quote(std::string_view s);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind k;
    bool boolVal = false;
    std::uint64_t uintVal = 0;
    double doubleVal = 0.0;
    std::string stringVal;
    std::vector<JsonValue> arrayVal;
    std::vector<std::pair<std::string, JsonValue>> objectVal;
};

} // namespace dcfb::obs

#endif // DCFB_OBS_JSON_H
