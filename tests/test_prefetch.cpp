/**
 * @file
 * Tests for the prefetcher components: SeqTable, DisTable tag policies,
 * RLU, BTB prefetch buffer, NXL, classic discontinuity, Confluence
 * stream replay, and the SN4L+Dis+BTB engine mechanics (selectivity,
 * metadata updates, proactive chains, depth bounds).
 */

#include <gtest/gtest.h>

#include "isa/predecoder.h"
#include "mem/l1i.h"
#include "mem/llc.h"
#include "mem/memory.h"
#include "noc/mesh.h"
#include "prefetch/btb_prefetch_buffer.h"
#include "prefetch/classic_discontinuity.h"
#include "prefetch/confluence.h"
#include "prefetch/dis_table.h"
#include "prefetch/nextline.h"
#include "prefetch/rlu.h"
#include "prefetch/seq_table.h"
#include "prefetch/sn4l_dis_btb.h"

namespace dcfb::prefetch {
namespace {

TEST(SeqTable, InitializedToPrefetch)
{
    SeqTable t(1024);
    EXPECT_TRUE(t.get(0x40000));
    EXPECT_TRUE(t.get(0x99999));
}

TEST(SeqTable, SetAndReset)
{
    SeqTable t(1024);
    t.set(0x40000, false);
    EXPECT_FALSE(t.get(0x40000));
    t.set(0x40000, true);
    EXPECT_TRUE(t.get(0x40000));
}

TEST(SeqTable, TaglessAliasing)
{
    SeqTable t(16); // tiny: blocks 16 apart alias
    t.set(0x0000, false);
    EXPECT_FALSE(t.get(Addr{16} * kBlockBytes)); // aliases entry 0
    EXPECT_GT(t.stats().get("seqtable_writes"), 0u);
}

TEST(SeqTable, ConflictCounting)
{
    SeqTable t(16);
    t.set(0x0000, false);
    t.set(Addr{16} * kBlockBytes, true); // different block, same entry
    EXPECT_EQ(t.stats().get("seqtable_conflicts"), 1u);
}

TEST(SeqTable, StatusOfNextFourPacking)
{
    SeqTable t(1024);
    Addr base = 0x40000;
    t.set(base + 1 * kBlockBytes, true);
    t.set(base + 2 * kBlockBytes, false);
    t.set(base + 3 * kBlockBytes, true);
    t.set(base + 4 * kBlockBytes, false);
    EXPECT_EQ(t.statusOfNextFour(base), 0b0101);
}

TEST(SeqTable, UnlimitedModeDedicatedEntries)
{
    SeqTable t(0);
    EXPECT_TRUE(t.unlimited());
    t.set(0x0000, false);
    EXPECT_FALSE(t.get(0x0000));
    EXPECT_TRUE(t.get(Addr{16} * kBlockBytes)); // no aliasing
}

TEST(SeqTable, StorageBits)
{
    EXPECT_EQ(SeqTable(16 * 1024).storageBits(), 16u * 1024); // 2 KB
}

TEST(DisTable, RecordAndLookup)
{
    DisTable t;
    t.record(0x40000, 9);
    auto hit = t.lookup(0x40000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 9);
    EXPECT_FALSE(t.lookup(0x41000).has_value());
}

TEST(DisTable, PartialTagRejectsMostAliases)
{
    DisTableConfig cfg;
    cfg.entries = 16;
    cfg.tagPolicy = DisTagPolicy::Partial4;
    DisTable t(cfg);
    t.record(0x0000, 3);
    // Aliases with different partial tags miss...
    EXPECT_FALSE(t.lookup(Addr{16} * kBlockBytes).has_value());
    // ...but an alias 16*16 entries away shares the 4-bit partial tag.
    EXPECT_TRUE(t.lookup(Addr{16 * 16} * kBlockBytes).has_value());
}

TEST(DisTable, TaglessAcceptsAllAliases)
{
    DisTableConfig cfg;
    cfg.entries = 16;
    cfg.tagPolicy = DisTagPolicy::Tagless;
    DisTable t(cfg);
    t.record(0x0000, 3);
    EXPECT_TRUE(t.lookup(Addr{16} * kBlockBytes).has_value());
}

TEST(DisTable, FullTagRejectsAllAliases)
{
    DisTableConfig cfg;
    cfg.entries = 16;
    cfg.tagPolicy = DisTagPolicy::Full;
    DisTable t(cfg);
    t.record(0x0000, 3);
    EXPECT_FALSE(t.lookup(Addr{16} * kBlockBytes).has_value());
    EXPECT_FALSE(t.lookup(Addr{16 * 16} * kBlockBytes).has_value());
    EXPECT_TRUE(t.lookup(0x0000).has_value());
}

TEST(DisTable, StorageBitsPerSectionVD)
{
    DisTableConfig fl;
    fl.entries = 4096;
    DisTableConfig vl = fl;
    vl.byteOffsets = true;
    // VL entries grow from 4+4 to 6+4 offset/tag bits (~20 % larger).
    EXPECT_GT(DisTable(vl).storageBits(), DisTable(fl).storageBits());
}

TEST(Rlu, FiltersRecentLookups)
{
    Rlu rlu(8);
    EXPECT_FALSE(rlu.contains(0x40000));
    rlu.touch(0x40000);
    EXPECT_TRUE(rlu.contains(0x40000));
}

TEST(Rlu, CapacityEight)
{
    Rlu rlu(8);
    for (unsigned i = 0; i < 9; ++i)
        rlu.touch(Addr{i} * kBlockBytes);
    EXPECT_FALSE(rlu.contains(0)); // oldest fell out
    EXPECT_TRUE(rlu.contains(Addr{8} * kBlockBytes));
}

TEST(Rlu, TouchIsIdempotent)
{
    Rlu rlu(2);
    rlu.touch(0x1000);
    rlu.touch(0x1000);
    rlu.touch(0x2000);
    EXPECT_TRUE(rlu.contains(0x1000)); // not duplicated then evicted
}

class BtbPbTest : public ::testing::Test
{
  protected:
    std::vector<isa::PredecodedBranch>
    twoBranches()
    {
        isa::PredecodedBranch a{12, isa::InstrKind::CondBranch, true,
                                0x41000, 0x4000c};
        isa::PredecodedBranch b{40, isa::InstrKind::Call, true, 0x42000,
                                0x40028};
        return {a, b};
    }
};

TEST_F(BtbPbTest, BlockInsertThenBranchProbe)
{
    BtbPrefetchBuffer pb(32, 2);
    pb.insertBlock(0x40000, twoBranches());
    const auto *hit = pb.findBranch(0x4000c);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->target, 0x41000u);
    EXPECT_EQ(pb.findBranch(0x40010), nullptr); // non-branch offset
    const auto *call = pb.findBranch(0x40028);
    ASSERT_NE(call, nullptr);
    EXPECT_EQ(call->kind, isa::InstrKind::Call);
}

TEST_F(BtbPbTest, CapacityBounded)
{
    BtbPrefetchBuffer pb(4, 2);
    for (unsigned i = 0; i < 8; ++i)
        pb.insertBlock(Addr{i} * kBlockBytes * 2, twoBranches());
    unsigned present = 0;
    for (unsigned i = 0; i < 8; ++i)
        present += pb.containsBlock(Addr{i} * kBlockBytes * 2);
    EXPECT_LE(present, 4u);
}

/** Shared fixture: an L1i over a quiet hierarchy. */
class PrefetchFixture : public ::testing::Test
{
  protected:
    PrefetchFixture()
        : mesh(quietMesh()), memory(mem::MemoryConfig{}),
          llc(smallLlc(), mesh, memory, 0), l1i(mem::L1iConfig{}, llc)
    {}

    static noc::MeshConfig
    quietMesh()
    {
        noc::MeshConfig c;
        c.bgUtilization = 0.0;
        return c;
    }

    static mem::LlcConfig
    smallLlc()
    {
        mem::LlcConfig c;
        c.capacityBytes = 1 << 20;
        return c;
    }

    void
    runTo(Cycle t)
    {
        l1i.tick(t);
    }

    noc::MeshModel mesh;
    mem::MemoryModel memory;
    mem::Llc llc;
    mem::L1iCache l1i;
};

class NextLineTest : public PrefetchFixture
{};

TEST_F(NextLineTest, PrefetchesNextBlocks)
{
    NextLinePrefetcher nl(l1i, 2);
    l1i.setListener(&nl);
    auto r = l1i.demandAccess(0x40000, 0);
    nl.tick(0);
    runTo(r.ready + 100000);
    EXPECT_TRUE(l1i.probe(0x40040));
    EXPECT_TRUE(l1i.probe(0x40080));
    EXPECT_FALSE(l1i.probe(0x400c0)); // depth 2 only
}

TEST_F(NextLineTest, DepthOneIsClassicNL)
{
    NextLinePrefetcher nl(l1i, 1);
    l1i.setListener(&nl);
    l1i.demandAccess(0x40000, 0);
    nl.tick(0);
    runTo(100000);
    EXPECT_TRUE(l1i.probe(0x40040));
    EXPECT_FALSE(l1i.probe(0x40080));
    EXPECT_EQ(nl.name(), "NL");
}

TEST_F(NextLineTest, N8LIssuesMore)
{
    NextLinePrefetcher n8(l1i, 8);
    l1i.setListener(&n8);
    l1i.demandAccess(0x40000, 0);
    n8.tick(0);
    runTo(100000);
    EXPECT_TRUE(l1i.probe(0x40000 + 8 * kBlockBytes));
}

class ClassicDisTest : public PrefetchFixture
{};

TEST_F(ClassicDisTest, LearnsDiscontinuity)
{
    ClassicDiscontinuity cd(l1i, 256, /*with_nl=*/false);
    l1i.setListener(&cd);
    // Teach: access A (miss), then far-away B (discontinuity miss).
    auto r1 = l1i.demandAccess(0x40000, 0);
    cd.tick(0);
    runTo(r1.ready);
    auto r2 = l1i.demandAccess(0x80000, r1.ready);
    cd.tick(r1.ready);
    runTo(r2.ready + 1);
    // Replay: new access to A prefetches B's block.
    l1i.demandAccess(0x40000, r2.ready + 1);
    cd.tick(r2.ready + 1);
    EXPECT_GT(cd.stats().get("cdis_recorded"), 0u);
    EXPECT_GT(cd.stats().get("cdis_replayed"), 0u);
}

class ConfluenceTest : public PrefetchFixture
{};

TEST_F(ConfluenceTest, ReplaysRecordedStream)
{
    ConfluencePrefetcher shift(l1i, ConfluenceConfig{});
    l1i.setListener(&shift);
    // Record a stream of blocks A, B, C, D (first pass, all misses).
    Addr blocks[] = {0x40000, 0x50000, 0x60000, 0x70000};
    Cycle t = 0;
    for (Addr b : blocks) {
        auto r = l1i.demandAccess(b, t);
        shift.tick(t);
        t = r.ready + 10;
        runTo(t);
    }
    // Evict nothing (large L1i) - so force the replay by accessing a
    // fresh alias of A after flushing: use a second pass where A misses.
    // Simpler: a new stream trigger via the index entry for A on miss.
    // Flush A from L1i by rebuilding the cache is overkill; instead
    // verify the index was built: a miss on A restarts the stream.
    EXPECT_GT(shift.stats().get("shift_recorded"), 3u);
}

TEST_F(ConfluenceTest, StreamPrefetchesFollowers)
{
    mem::L1iConfig tiny;
    tiny.capacityBytes = 8 * kBlockBytes; // force re-misses
    tiny.assoc = 1;
    mem::L1iCache small(tiny, llc);
    ConfluencePrefetcher shift(small, ConfluenceConfig{});
    small.setListener(&shift);

    auto walk = [&](Cycle start) {
        Cycle t = start;
        // Blocks that all map to different sets but exceed capacity.
        for (unsigned i = 0; i < 24; ++i) {
            Addr b = 0x40000 + Addr{i} * kBlockBytes * 8;
            auto r = small.demandAccess(b, t);
            shift.tick(t);
            t = (r.hit ? t : r.ready) + 5;
            small.tick(t);
        }
        return t;
    };
    Cycle t = walk(0);
    t = walk(t + 100);
    walk(t + 100);
    EXPECT_GT(shift.stats().get("shift_stream_starts"), 0u);
    EXPECT_GT(shift.stats().get("shift_issued"), 0u);
}

/** SN4L+Dis+BTB engine tests need a program image for pre-decoding. */
class Sn4lTest : public PrefetchFixture
{
  protected:
    Sn4lTest() : pd(image, false) {}

    /** Emit an ALU-filled block with an optional branch. */
    void
    makeBlock(Addr base, int branch_slot = -1, Addr target = 0)
    {
        for (unsigned slot = 0; slot < kInstrPerBlock; ++slot) {
            isa::DecodedInstr di{isa::InstrKind::Alu, false, kInvalidAddr};
            if (static_cast<int>(slot) == branch_slot)
                di = {isa::InstrKind::Jump, true, target};
            std::uint8_t buf[kInstrBytes];
            isa::writeWord(buf,
                           isa::encodeInstr(base + slot * kInstrBytes, di));
            image.write(base + slot * kInstrBytes, buf, kInstrBytes);
        }
    }

    Sn4lDisBtbConfig
    engineCfg()
    {
        Sn4lDisBtbConfig c;
        return c;
    }

    /** Drive ticks for a while. */
    void
    settle(Sn4lDisBtb &pf, Cycle from, Cycle to)
    {
        for (Cycle t = from; t < to; ++t) {
            l1i.tick(t);
            pf.tick(t);
        }
    }

    workload::ProgramImage image;
    isa::Predecoder pd;
};

TEST_F(Sn4lTest, PrefetchesUsefulNextFour)
{
    Sn4lDisBtb pf(l1i, pd, nullptr, engineCfg());
    l1i.setListener(&pf);
    for (unsigned i = 0; i < 6; ++i)
        makeBlock(0x40000 + Addr{i} * kBlockBytes);
    l1i.demandAccess(0x40000, 0);
    settle(pf, 0, 2000);
    // All four subsequent blocks prefetched (SeqTable initialized to 1).
    for (unsigned i = 1; i <= 4; ++i)
        EXPECT_TRUE(l1i.probe(0x40000 + Addr{i} * kBlockBytes)) << i;
}

TEST_F(Sn4lTest, SelectivitySuppressesUselessBlocks)
{
    auto cfg = engineCfg();
    cfg.proactive = false;
    Sn4lDisBtb pf(l1i, pd, nullptr, cfg);
    l1i.setListener(&pf);
    // Mark +2 as useless via the listener path: prefetched then evicted
    // without use is involved; here we reach into SeqTable semantics by
    // simulating the events.
    pf.onEvict(0x40000 + 2 * kBlockBytes, /*was_prefetch=*/true,
               /*demanded=*/false);
    l1i.demandAccess(0x40000, 0);
    settle(pf, 0, 2000);
    EXPECT_TRUE(l1i.probe(0x40000 + 1 * kBlockBytes));
    EXPECT_FALSE(l1i.probe(0x40000 + 2 * kBlockBytes));
    EXPECT_TRUE(l1i.probe(0x40000 + 3 * kBlockBytes));
}

TEST_F(Sn4lTest, DemandMissRearmsSeqTable)
{
    auto cfg = engineCfg();
    cfg.proactive = false;
    Sn4lDisBtb pf(l1i, pd, nullptr, cfg);
    l1i.setListener(&pf);
    Addr blk = 0x40000 + 2 * kBlockBytes;
    pf.onEvict(blk, true, false); // useless -> bit off
    pf.onDemandMiss(blk, true);   // miss -> bit on again
    l1i.demandAccess(0x40000, 0);
    settle(pf, 0, 2000);
    EXPECT_TRUE(l1i.probe(blk));
}

TEST_F(Sn4lTest, DisReplayPrefetchesBranchTarget)
{
    auto cfg = engineCfg();
    Sn4lDisBtb pf(l1i, pd, nullptr, cfg);
    l1i.setListener(&pf);
    Addr branch_block = 0x40000;
    Addr target = 0x90000;
    makeBlock(branch_block, /*branch_slot=*/9, target);
    makeBlock(target);

    // Teach Dis: fetch the branch, then miss on the target block.
    pf.onFetchInstr({branch_block + 9 * kInstrBytes, 4,
                     isa::InstrKind::Jump, true, target},
                    0);
    pf.onDemandMiss(target, /*sequential=*/false);
    EXPECT_TRUE(pf.disTable().lookup(branch_block).has_value());

    // Replay: a (pre)fetch of the branch block triggers decoding slot 9
    // and prefetching the target.
    l1i.demandAccess(branch_block, 10);
    settle(pf, 10, 3000);
    EXPECT_TRUE(l1i.probe(target));
}

TEST_F(Sn4lTest, BtbPrefillFromPredecodedBlocks)
{
    auto cfg = engineCfg();
    Sn4lDisBtb pf(l1i, pd, nullptr, cfg);
    l1i.setListener(&pf);
    Addr blk = 0x40000;
    makeBlock(blk, 5, 0x91000);
    l1i.demandAccess(blk, 0);
    settle(pf, 0, 2000);
    ASSERT_NE(pf.btbPrefetchBuffer(), nullptr);
    const auto *b = pf.btbPrefetchBuffer()->findBranch(blk + 5 * 4);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->target, 0x91000u);
}

TEST_F(Sn4lTest, ProactiveChainRespectsDepthLimit)
{
    auto cfg = engineCfg();
    cfg.chainDepthLimit = 2;
    cfg.seqDepth = 1; // keep the chain purely sequential
    cfg.sn1lTails = true;
    Sn4lDisBtb pf(l1i, pd, nullptr, cfg);
    l1i.setListener(&pf);
    for (unsigned i = 0; i < 12; ++i)
        makeBlock(0x40000 + Addr{i} * kBlockBytes);
    l1i.demandAccess(0x40000, 0);
    settle(pf, 0, 4000);
    // Depth limit 2: the trigger (depth 0) emits +1 (depth 1), which may
    // trigger +2 (depth 2); depth 2 triggers are rejected.
    EXPECT_TRUE(l1i.probe(0x40000 + 1 * kBlockBytes));
    EXPECT_TRUE(l1i.probe(0x40000 + 2 * kBlockBytes));
    EXPECT_FALSE(l1i.probe(0x40000 + 4 * kBlockBytes));
}

TEST_F(Sn4lTest, NamesFollowConfiguration)
{
    auto cfg = engineCfg();
    Sn4lDisBtb full(l1i, pd, nullptr, cfg);
    EXPECT_EQ(full.name(), "SN4L+Dis+BTB");
    cfg.enableBtbPrefetch = false;
    Sn4lDisBtb sd(l1i, pd, nullptr, cfg);
    EXPECT_EQ(sd.name(), "SN4L+Dis");
    cfg.enableDis = false;
    Sn4lDisBtb s(l1i, pd, nullptr, cfg);
    EXPECT_EQ(s.name(), "SN4L");
    cfg.selective = false;
    Sn4lDisBtb n(l1i, pd, nullptr, cfg);
    EXPECT_EQ(n.name(), "N4L");
}

TEST_F(Sn4lTest, StorageBudgetNearPaper)
{
    // Section VI.D: SeqTable 2 KB + DisTable 4 KB + 1 KB BTB prefetch
    // buffer + ~0.3 KB queues/RLU = 7.6 KB total (with the per-line
    // bits).  Allow a modest modeling margin.
    Sn4lDisBtb pf(l1i, pd, nullptr, engineCfg());
    double kb = static_cast<double>(pf.storageBits()) / 8.0 / 1024.0;
    EXPECT_GT(kb, 6.0);
    EXPECT_LT(kb, 9.5);
}

} // namespace
} // namespace dcfb::prefetch
