#!/usr/bin/env python3
"""Documentation consistency lint (the CI docs job).

Two checks, both over the committed tree (no build needed):

1. Markdown link check: every relative link target in README.md,
   DESIGN.md, EXPERIMENTS.md, ROADMAP.md, CHANGES.md and docs/*.md must
   exist on disk (fragments are stripped; http/https/mailto links are
   not fetched).

2. Schema registry check: the set of `dcfb-<kind>-v<N>` version strings
   appearing in src/, tools/, bench/ and scripts/ must equal the set of
   schemas registered in docs/SCHEMAS.md.  A schema added to the code
   without a registry row -- or a registry row whose string vanished
   from the code -- fails.  (tests/ is excluded: negative-case tests
   mention deliberately-invalid versions.)

Exit status: 0 clean, 1 with findings listed on stderr.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "ROADMAP.md",
    ROOT / "CHANGES.md",
    *sorted((ROOT / "docs").glob("*.md")),
]

CODE_DIRS = ["src", "tools", "bench", "scripts"]
CODE_SUFFIXES = {".h", ".cpp", ".py"}

LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
SCHEMA_RE = re.compile(r"dcfb-[a-z]+-v[0-9]+")


def check_links(errors):
    for doc in DOC_FILES:
        if not doc.exists():
            errors.append(f"{doc.relative_to(ROOT)}: file missing")
            continue
        text = doc.read_text(encoding="utf-8")
        # Fenced code blocks routinely show shell syntax like
        # [--flag](...)-free usage lines; strip them before linking.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for m in LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure in-page fragment
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                line = text[: m.start()].count("\n") + 1
                errors.append(
                    f"{doc.relative_to(ROOT)}:{line}: broken link "
                    f"-> {target}"
                )


def code_schemas():
    found = set()
    for d in CODE_DIRS:
        for path in (ROOT / d).rglob("*"):
            if path.suffix not in CODE_SUFFIXES or not path.is_file():
                continue
            found |= set(SCHEMA_RE.findall(
                path.read_text(encoding="utf-8", errors="replace")))
    return found


def registered_schemas():
    registry = ROOT / "docs" / "SCHEMAS.md"
    if not registry.exists():
        return None
    found = set()
    for line in registry.read_text(encoding="utf-8").splitlines():
        if line.startswith("|"):
            m = SCHEMA_RE.search(line)
            if m:
                found.add(m.group(0))
    return found


def check_schemas(errors):
    in_code = code_schemas()
    in_registry = registered_schemas()
    if in_registry is None:
        errors.append("docs/SCHEMAS.md: file missing")
        return
    for schema in sorted(in_code - in_registry):
        errors.append(
            f"docs/SCHEMAS.md: schema {schema} used in the code but "
            "not registered"
        )
    for schema in sorted(in_registry - in_code):
        errors.append(
            f"docs/SCHEMAS.md: schema {schema} registered but absent "
            "from src//tools//bench//scripts/"
        )


def main():
    errors = []
    check_links(errors)
    check_schemas(errors)
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        print(f"doc_lint: {len(errors)} finding(s)", file=sys.stderr)
        return 1
    print(f"doc_lint: {len(DOC_FILES)} documents, links and schema "
          "registry clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
