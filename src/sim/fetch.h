/**
 * @file
 * Fetch engines.
 *
 * Two frontend organizations are modeled:
 *
 *  - **CoupledFetchEngine**: the conventional frontend used by the
 *    baseline, the NXL family, SN4L+Dis+BTB and Confluence.  Fetch
 *    follows the predicted stream; on a BTB miss for a taken branch or a
 *    direction/target misprediction the frontend runs down the wrong
 *    path for the redirect penalty (issuing real wrong-path I-cache
 *    accesses) before resuming.
 *
 *  - **DecoupledFetchEngine** (sim/decoupled.h): the BTB-directed
 *    frontend of Boomerang and Shotgun, with a branch-prediction unit
 *    that runs ahead of fetch through the FTQ.
 *
 * Both deliver fetched instructions into a bounded fetch buffer that the
 * simulator's dispatch stage drains, and both expose a per-cycle stall
 * reason for the frontend-stall accounting behind FSCR (Fig. 15).
 */

#ifndef DCFB_SIM_FETCH_H
#define DCFB_SIM_FETCH_H

#include <cstdint>

#include "common/queue.h"
#include "common/stats.h"
#include "frontend/btb.h"
#include "frontend/ras.h"
#include "frontend/tage.h"
#include "mem/l1i.h"
#include "prefetch/prefetcher.h"
#include "sim/config.h"
#include "workload/trace.h"

namespace dcfb::sim {

/** Why the frontend failed to deliver instructions this cycle. */
enum class StallReason {
    None,
    ICacheMiss,
    BtbMissRedirect,
    MispredictRedirect,
    EmptyFtq,
    FetchPipe, //!< buffer momentarily empty (pipeline fill)
};

/** An instruction sitting in the fetch buffer. */
struct FetchedSlot
{
    workload::TraceEntry entry;
    Cycle ready = 0; //!< cycle it becomes visible to dispatch
};

/**
 * Common fetch-engine interface.
 */
class FetchEngine
{
  public:
    explicit FetchEngine(const FetchConfig &config)
        : cfg(config), fetchBuffer(config.fetchBufferEntries)
    {}
    virtual ~FetchEngine() = default;

    /** Produce instructions for cycle @p now. */
    virtual void cycle(Cycle now) = 0;

    /** Why nothing (more) was delivered as of @p now. */
    virtual StallReason stallReason(Cycle now) const = 0;

    BoundedQueue<FetchedSlot> &buffer() { return fetchBuffer; }
    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }

  protected:
    FetchConfig cfg;
    BoundedQueue<FetchedSlot> fetchBuffer; //!< ring: drained every cycle
    StatSet statSet;
};

/**
 * Conventional (coupled) frontend.
 */
class CoupledFetchEngine : public FetchEngine
{
  public:
    /**
     * @param config     fetch parameters (incl. perfect-frontend flags)
     * @param walker     retired-instruction source
     * @param l1i        instruction cache
     * @param btb        conventional BTB
     * @param tage       direction predictor
     * @param image      program image (wrong-path reconstruction)
     * @param prefetcher bound prefetcher (never null; NullPrefetcher ok)
     */
    CoupledFetchEngine(const FetchConfig &config,
                       workload::TraceWalker &walker, mem::L1iCache &l1i,
                       frontend::Btb &btb, frontend::Tage &tage,
                       const workload::ProgramImage &image,
                       prefetch::InstrPrefetcher &prefetcher);

    void cycle(Cycle now) override;
    StallReason stallReason(Cycle now) const override;

  private:
    /** Handle the branch just fetched; returns true when fetch must stop
     *  (taken branch or redirect). */
    bool handleBranch(const workload::TraceEntry &e, Cycle now);

    /** Begin a redirect window. */
    void redirect(Cycle now, Cycle penalty, Addr wrong_path_pc,
                  StallReason reason);

    /** Issue wrong-path fetches during a redirect window. */
    void wrongPathFetch(Cycle now);

    workload::TraceWalker &walker;
    mem::L1iCache &l1i;
    frontend::Btb &btb;
    frontend::Tage &tage;
    const workload::ProgramImage &image;
    prefetch::InstrPrefetcher &pf;
    frontend::ReturnAddressStack ras;

    // Typed handles for the per-cycle hot path.
    obs::Counter cFetched, cIcacheStallCycles, cBtbStallCycles,
        cMispredictStallCycles, cWrongPathBlocks;
    obs::Histogram hBufferOcc;
    // Lazily-bound handles for per-branch event sites (these must only
    // appear in results once they fire; see obs::LazyCounter).
    obs::LazyCounter cBtbRedirects, cMispredictRedirects, cBtbBufferFills,
        cBtbMissTaken, cBtbMissNotTaken, cCondMispredicts, cStaleTarget,
        cIndirectMispredicts, cRasMispredicts;

    static constexpr std::size_t kLookahead = 64;
    /** Trace lookahead window (ring; refilled to capacity each cycle). */
    BoundedQueue<workload::TraceEntry> look{kLookahead};
    Addr currentBlock = kInvalidAddr;      //!< last block fetch accessed

    bool blockedOnFill = false;
    Cycle fillReady = 0;

    Cycle redirectUntil = 0;
    StallReason redirectReason = StallReason::None;
    Addr wrongPathPc = kInvalidAddr;
    Addr wrongPathBlock = kInvalidAddr;

    void refill();
};

} // namespace dcfb::sim

#endif // DCFB_SIM_FETCH_H
