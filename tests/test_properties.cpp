/**
 * @file
 * Cross-module property tests (parameterized sweeps): cache invariants
 * under adversarial streams, TAGE vs. static predictors on synthetic
 * branch families, trace-walker structural invariants across every
 * profile and seed, DV-LLC holder invariants under mixed traffic, and
 * NoC monotonicity properties.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "frontend/tage.h"
#include "mem/cache.h"
#include "mem/llc.h"
#include "mem/memory.h"
#include "noc/mesh.h"
#include "sim/report.h"
#include "workload/profiles.h"
#include "workload/trace.h"

namespace dcfb {
namespace {

/** Cache LRU property: a block re-touched every k accesses survives in
 *  a set with associativity > k distinct conflicting blocks. */
class LruProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(LruProperty, HotBlockSurvivesColdConflicts)
{
    unsigned assoc = GetParam();
    mem::SetAssocCache<int> cache(4, assoc);
    Addr hot = 0; // set 0
    cache.insert(hot, 1);
    Rng rng(assoc);
    for (int i = 0; i < 2000; ++i) {
        // Touch hot, then insert assoc-1 distinct cold conflicts.
        ASSERT_NE(cache.lookup(hot), nullptr) << "iteration " << i;
        for (unsigned c = 0; c < assoc - 1; ++c) {
            Addr cold = (Addr{1} + rng.below(1000)) * 4 * kBlockBytes;
            cache.insert(cold, 0);
        }
    }
    EXPECT_TRUE(cache.contains(hot));
}

INSTANTIATE_TEST_SUITE_P(Assocs, LruProperty,
                         ::testing::Values(2, 4, 8, 16));

/** A cache never reports a block it did not insert. */
TEST(CacheProperties, NoPhantomHits)
{
    mem::SetAssocCache<int> cache(8, 4);
    std::set<Addr> inserted;
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        Addr a = rng.below(512) * kBlockBytes;
        if (rng.chance(0.4)) {
            cache.insert(a, 0);
            inserted.insert(blockAlign(a));
        } else if (cache.lookup(a, false)) {
            ASSERT_TRUE(inserted.count(blockAlign(a)));
        }
    }
}

/** TAGE beats a static always-taken predictor on biased branches of
 *  either polarity (sweep over bias). */
class TageBias : public ::testing::TestWithParam<int>
{};

TEST_P(TageBias, BeatsStaticPrediction)
{
    double bias = GetParam() / 100.0;
    frontend::Tage tage;
    Rng rng(GetParam());
    int tage_correct = 0, static_correct = 0, n = 6000;
    for (int i = 0; i < n; ++i) {
        Addr pc = 0x40000 + (i % 16) * 8;
        bool actual = rng.chance(bias);
        tage_correct += tage.predict(pc) == actual;
        static_correct += actual; // always-taken
        tage.update(pc, actual);
    }
    EXPECT_GE(tage_correct + n / 10, static_correct);
    // And always beats always-NOT-taken for taken-biased streams.
    if (bias > 0.5) {
        EXPECT_GT(tage_correct, n - static_correct);
    }
}

INSTANTIATE_TEST_SUITE_P(Biases, TageBias,
                         ::testing::Values(10, 30, 70, 90, 97));

/** Walker invariants hold for every profile and several seeds. */
class WalkerInvariants
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{};

TEST_P(WalkerInvariants, ConnectedAndBalanced)
{
    auto [profile_idx, seed] = GetParam();
    auto names = workload::serverWorkloadNames();
    auto profile = workload::serverProfile(names[profile_idx]);
    // Shrink for test speed, keeping the structure.
    profile.numFunctions = std::min(profile.numFunctions, 300u);
    auto program = workload::buildProgram(profile);
    workload::TraceWalker walker(program, seed);

    std::int64_t depth = 0;
    workload::TraceEntry prev = walker.next();
    for (int i = 0; i < 30000; ++i) {
        workload::TraceEntry e = walker.next();
        ASSERT_EQ(e.pc, prev.nextPc);
        if (e.kind == isa::InstrKind::Call ||
            e.kind == isa::InstrKind::IndirectCall) {
            ++depth;
        } else if (e.kind == isa::InstrKind::Return) {
            --depth;
        }
        ASSERT_GE(depth, 0);
        ASSERT_LE(depth, profile.maxCallDepth + 1);
        prev = e;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WalkerInvariants,
    ::testing::Combine(::testing::Values(0, 1, 3, 5),
                       ::testing::Values(1u, 7u, 99u)));

/** DV-LLC invariant: holder mode iff the set holds an instruction
 *  block, under randomized mixed instruction/data traffic. */
TEST(DvLlcProperty, HolderIffInstructionResident)
{
    noc::MeshConfig mc;
    mc.bgUtilization = 0.0;
    noc::MeshModel mesh(mc);
    mem::MemoryModel memory(mem::MemoryConfig{});
    mem::LlcConfig lc;
    lc.capacityBytes = 64 * 1024;
    lc.dvllc = true;
    mem::Llc llc(lc, mesh, memory, 0);

    Rng rng(12345);
    for (int i = 0; i < 4000; ++i) {
        Addr a = rng.below(2048) * kBlockBytes;
        llc.warmTouch(a, rng.chance(0.3));
    }
    // Recompute the invariant externally: for each set, holder mode
    // must equal "set contains an instruction block".  We can only see
    // holder count; check it is consistent with a probe-based count.
    std::size_t holders = llc.bfHolderSets();
    EXPECT_GT(holders, 0u);
    EXPECT_LE(holders, 64u); // 64 sets in this config
}

/** NoC: latency is monotone in hop distance and never below zero-load. */
TEST(MeshProperty, LatencyMonotoneInDistance)
{
    noc::MeshConfig mc;
    mc.bgUtilization = 0.0;
    noc::MeshModel mesh(mc);
    Cycle prev = 0;
    for (unsigned dst = 0; dst < 4; ++dst) {
        Cycle lat = mesh.traverse(0, dst, 100000 + dst * 1000, 1) -
            (100000 + dst * 1000);
        EXPECT_GE(lat, mesh.zeroLoadLatency(0, dst));
        if (dst > 0) {
            EXPECT_GT(lat, prev);
        }
        prev = lat;
    }
}

/** Memory bandwidth: n back-to-back same-channel accesses serialize. */
TEST(MemoryProperty, ChannelSerialization)
{
    mem::MemoryConfig mc;
    mem::MemoryModel memory(mc);
    Cycle last = 0;
    for (int i = 0; i < 16; ++i) {
        Cycle r = memory.access(Addr{static_cast<unsigned>(i)} *
                                    mc.channels * kBlockBytes,
                                1000);
        EXPECT_GE(r, last);
        if (i > 0) {
            EXPECT_EQ(r, last + mc.channelBusyPerBlock);
        }
        last = r;
    }
}

/** RunResult JSON round-trip: fromJson(parse(dump(toJson(r)))) == r for
 *  randomized results, including extreme counter values and stat/hist
 *  names that need JSON escaping.  This is the contract the persistent
 *  result cache and the service protocol rely on: a served or cached
 *  result is bit-identical to the simulated one. */
class RunResultRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RunResultRoundTrip, ExactThroughSerializeAndParse)
{
    Rng rng(GetParam());
    const std::string tricky[] = {
        "plain.name",
        "quote\"back\\slash",
        "tab\tnewline\nbell\x07",
        "utf8 \xc3\xa9\xc2\xb5",
        "spaces and /slashes/",
    };
    const std::uint64_t extremes[] = {
        0,
        1,
        0x7fffffffffffffffull,
        0x8000000000000000ull,
        ~std::uint64_t{0},
    };

    for (int trial = 0; trial < 20; ++trial) {
        sim::RunResult r;
        r.workload = tricky[rng.below(5)] + std::to_string(trial);
        r.design = tricky[rng.below(5)];
        r.cycles = rng.chance(0.3) ? extremes[rng.below(5)] : rng.next();
        r.instructions = rng.next();
        unsigned n_stats = static_cast<unsigned>(rng.below(8));
        for (unsigned s = 0; s < n_stats; ++s) {
            std::string name =
                tricky[rng.below(5)] + "." + std::to_string(s);
            r.stats[name] =
                rng.chance(0.4) ? extremes[rng.below(5)] : rng.next();
        }
        unsigned n_hists = static_cast<unsigned>(rng.below(4));
        for (unsigned h = 0; h < n_hists; ++h) {
            obs::HistogramSnapshot snap;
            unsigned n_buckets = static_cast<unsigned>(rng.below(6));
            for (unsigned b = 0; b < n_buckets; ++b) {
                snap.buckets.emplace_back(
                    b * 7 + static_cast<unsigned>(rng.below(7)),
                    rng.chance(0.3) ? extremes[rng.below(5)]
                                    : rng.below(1u << 20));
                snap.count += snap.buckets.back().second;
            }
            snap.sum = rng.next();
            snap.max = extremes[rng.below(5)];
            r.hists.emplace("hist." + std::to_string(h), std::move(snap));
        }

        // Full pipeline: document model -> text -> parser -> document
        // model -> RunResult.  Matches exactly what the result cache
        // writes and reads back.
        std::string text = sim::toJson(r).dump(2);
        auto parsed = obs::JsonValue::parse(text);
        ASSERT_TRUE(parsed.has_value()) << text;
        auto back = sim::runResultFromJson(*parsed);
        ASSERT_TRUE(back.has_value()) << text;
        EXPECT_EQ(*back, r) << text;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunResultRoundTrip,
                         ::testing::Values(1u, 42u, 20260806u));

} // namespace
} // namespace dcfb
