/**
 * @file
 * dcfb-docgen: renders docs/FLAGS.md from the flag tables in
 * src/cli/flag_docs.cpp — the same tables the binaries' own --help
 * output comes from.
 *
 *   dcfb-docgen                    print the document to stdout
 *   dcfb-docgen --out FILE         write FILE
 *   dcfb-docgen --check FILE       exit 1 unless FILE matches, with a
 *                                  regeneration hint (the CI docs job)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/flag_docs.h"

int
main(int argc, char **argv)
{
    std::string out_path;
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--check" && i + 1 < argc) {
            check_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out FILE | --check FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    const std::string doc = dcfb::cli::flagsMarkdown();

    if (!check_path.empty()) {
        std::ifstream in(check_path, std::ios::in | std::ios::binary);
        if (!in.is_open()) {
            std::fprintf(stderr, "dcfb-docgen: cannot open %s\n",
                         check_path.c_str());
            return 1;
        }
        std::ostringstream have;
        have << in.rdbuf();
        if (have.str() != doc) {
            std::fprintf(stderr,
                         "dcfb-docgen: %s is out of date with "
                         "src/cli/flag_docs.cpp\n"
                         "  regenerate: dcfb-docgen --out %s\n",
                         check_path.c_str(), check_path.c_str());
            return 1;
        }
        std::printf("dcfb-docgen: %s is in sync\n", check_path.c_str());
        return 0;
    }

    if (!out_path.empty()) {
        std::ofstream out(out_path,
                          std::ios::out | std::ios::trunc |
                              std::ios::binary);
        if (!out.is_open()) {
            std::fprintf(stderr, "dcfb-docgen: cannot open %s\n",
                         out_path.c_str());
            return 1;
        }
        out << doc;
        std::printf("dcfb-docgen: wrote %s\n", out_path.c_str());
        return 0;
    }

    std::fputs(doc.c_str(), stdout);
    return 0;
}
