#include "prefetch/confluence.h"

namespace dcfb::prefetch {

ConfluencePrefetcher::ConfluencePrefetcher(mem::L1iCache &l1i_,
                                           const ConfluenceConfig &config,
                                           exec::Arena *arena)
    : l1i(l1i_), cfg(config),
      history(config.historyEntries, kInvalidAddr,
              exec::ArenaAlloc<Addr>(arena)),
      index(config.indexEntries, exec::ArenaAlloc<IndexEntry>(arena)),
      cRecorded(statSet.lazy("shift_recorded")),
      cStreamFollows(statSet.lazy("shift_stream_follows")),
      cIndexMisses(statSet.lazy("shift_index_misses")),
      cStreamStarts(statSet.lazy("shift_stream_starts")),
      cStreamOverwritten(statSet.lazy("shift_stream_overwritten")),
      cIssued(statSet.lazy("shift_issued"))
{
}

std::size_t
ConfluencePrefetcher::arenaBytes(const ConfluenceConfig &config)
{
    return config.historyEntries * sizeof(Addr) +
        config.indexEntries * sizeof(IndexEntry) + 64;
}

std::uint64_t
ConfluencePrefetcher::storageBits() const
{
    // History: one block address (~52 bits) per entry; index: address tag
    // plus a pointer into the history.
    return history.size() * 52 + index.size() * (52 + 20);
}

void
ConfluencePrefetcher::onDemandAccess(Addr block_addr, bool hit)
{
    (void)hit;
    Addr block = blockAlign(block_addr);
    // Record the deduplicated demand-block stream.
    if (block != lastRecorded) {
        history[writePos % history.size()] = block;
        auto &ie = index[blockNumber(block) % index.size()];
        ie.prev = ie.blockAddr == block ? ie.position : kNoPosition;
        ie.blockAddr = block;
        ie.position = writePos;
        ++writePos;
        lastRecorded = block;
        cRecorded.add();
    }
    // Stream follow: if the access matches the next predicted block,
    // advance the cursor and top up the in-flight window from tick().
    if (streaming && streamPos < writePos) {
        Addr expected = history[streamPos % history.size()];
        if (expected == block) {
            ++streamPos;
            workPending = true;
            cStreamFollows.add();
        }
    }
}

void
ConfluencePrefetcher::onDemandMiss(Addr block_addr, bool sequential)
{
    (void)sequential;
    Addr block = blockAlign(block_addr);
    const auto &ie = index[blockNumber(block) % index.size()];
    // The miss's own access was just recorded at ie.position, so the
    // replayable occurrence is the previous one.
    std::uint64_t pos =
        (ie.blockAddr == block && ie.position + 1 == writePos &&
         lastRecorded == block)
        ? ie.prev
        : (ie.blockAddr == block ? ie.position : kNoPosition);
    if (pos == kNoPosition) {
        cIndexMisses.add();
        streaming = false;
        return;
    }
    // (Re)start the stream right after the trigger's recorded position.
    cStreamStarts.add();
    streaming = true;
    streamPos = pos + 1;
    issuedUpTo = pos;
    workPending = true;
}

void
ConfluencePrefetcher::issueAhead(Cycle now)
{
    if (!streaming)
        return;
    // Keep the window [streamPos, streamPos + degree) issued, bounded by
    // what has been recorded and not yet overwritten.
    std::uint64_t limit = streamPos + cfg.streamDegree;
    if (issuedUpTo + 1 + history.size() < writePos + 1) {
        // Our cursor was overwritten by newer history: abandon.
        streaming = false;
        cStreamOverwritten.add();
        return;
    }
    unsigned issued_now = 0;
    while (issuedUpTo + 1 < limit && issuedUpTo + 1 < writePos &&
           issued_now < cfg.lookahead) {
        ++issuedUpTo;
        Addr candidate = history[issuedUpTo % history.size()];
        if (candidate == kInvalidAddr)
            continue;
        auto out = l1i.prefetch(candidate, now);
        if (out == mem::L1iCache::PfOutcome::Issued)
            cIssued.add();
        ++issued_now;
    }
}

void
ConfluencePrefetcher::tick(Cycle now)
{
    if (!workPending)
        return;
    workPending = false;
    issueAhead(now);
}

} // namespace dcfb::prefetch
