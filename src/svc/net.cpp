#include "svc/net.h"

#include <cerrno>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/span.h"

namespace dcfb::svc {

namespace {

rt::Error
netError(const std::string &message)
{
    return rt::Error(rt::ErrorKind::Config, message)
        .with("errno", std::strerror(errno));
}

} // namespace

// -- LineFramer -----------------------------------------------------------

rt::Expected<void>
LineFramer::feed(const char *data, std::size_t len)
{
    buf.append(data, len);
    // The overflow check runs against the *unterminated* tail: a burst
    // holding many complete lines is fine however large, but a single
    // line growing past the cap with no newline in sight is a broken
    // or hostile peer.
    if (buf.size() > maxLine &&
        buf.find('\n', scan) == std::string::npos) {
        std::size_t size = buf.size();
        buf.clear();
        scan = 0;
        return rt::Error(rt::ErrorKind::Config,
                         "line exceeds the framing cap")
            .with("buffered", std::uint64_t{size})
            .with("max", std::uint64_t{maxLine});
    }
    return {};
}

std::optional<std::string>
LineFramer::next()
{
    // Resume scanning where the last call stopped: bytes before `scan`
    // are known newline-free, so a long line fed in small pieces is
    // scanned once, not once per piece.
    std::size_t nl = buf.find('\n', scan);
    if (nl == std::string::npos) {
        scan = buf.size();
        return std::nullopt;
    }
    std::string line = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    scan = 0;
    return line;
}

// -- endpoint helpers -----------------------------------------------------

bool
isTcpEndpoint(const std::string &endpoint)
{
    if (endpoint.find('/') != std::string::npos)
        return false;
    return endpoint.find(':') != std::string::npos;
}

rt::Expected<std::pair<std::string, std::string>>
splitHostPort(const std::string &endpoint)
{
    std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == endpoint.size()) {
        return rt::Error(rt::ErrorKind::Config,
                         "TCP endpoint is not host:port")
            .with("endpoint", endpoint);
    }
    return std::make_pair(endpoint.substr(0, colon),
                          endpoint.substr(colon + 1));
}

namespace {

rt::Expected<int>
tcpSocketFor(const std::string &endpoint, bool listening, int &fd_out,
             addrinfo **info_out)
{
    auto parts = splitHostPort(endpoint);
    if (!parts.ok())
        return parts.error();
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    if (listening)
        hints.ai_flags = AI_PASSIVE;
    addrinfo *info = nullptr;
    int rc = ::getaddrinfo(parts.value().first.c_str(),
                           parts.value().second.c_str(), &hints, &info);
    if (rc != 0) {
        // getaddrinfo does not set errno; pin it so callers that
        // classify transient failures by errno (Client::connectWithRetry)
        // never misread a stale ECONNREFUSED as "worth retrying".
        errno = EINVAL;
        return rt::Error(rt::ErrorKind::Config, "cannot resolve endpoint")
            .with("endpoint", endpoint)
            .with("gai", gai_strerror(rc));
    }
    int fd = ::socket(info->ai_family, info->ai_socktype,
                      info->ai_protocol);
    if (fd < 0) {
        rt::Error err = netError("cannot create TCP socket");
        ::freeaddrinfo(info);
        return err;
    }
    fd_out = fd;
    *info_out = info;
    return fd;
}

} // namespace

rt::Expected<int>
tcpListen(const std::string &endpoint, std::uint16_t *bound_port)
{
    int fd = -1;
    addrinfo *info = nullptr;
    if (auto made = tcpSocketFor(endpoint, true, fd, &info); !made.ok())
        return made.error();
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, info->ai_addr, info->ai_addrlen) != 0 ||
        ::listen(fd, 128) != 0) {
        rt::Error err =
            netError("cannot bind/listen").with("endpoint", endpoint);
        ::freeaddrinfo(info);
        ::close(fd);
        return err;
    }
    ::freeaddrinfo(info);
    if (bound_port) {
        // `--listen host:0` asks the kernel for an ephemeral port;
        // report back what it picked so callers can announce it.
        sockaddr_storage ss{};
        socklen_t len = sizeof(ss);
        *bound_port = 0;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&ss), &len) ==
            0) {
            if (ss.ss_family == AF_INET) {
                *bound_port = ntohs(
                    reinterpret_cast<sockaddr_in *>(&ss)->sin_port);
            } else if (ss.ss_family == AF_INET6) {
                *bound_port = ntohs(
                    reinterpret_cast<sockaddr_in6 *>(&ss)->sin6_port);
            }
        }
    }
    return fd;
}

rt::Expected<int>
tcpConnect(const std::string &endpoint)
{
    int fd = -1;
    addrinfo *info = nullptr;
    if (auto made = tcpSocketFor(endpoint, false, fd, &info); !made.ok())
        return made.error();
    if (::connect(fd, info->ai_addr, info->ai_addrlen) != 0) {
        int saved = errno;
        rt::Error err = netError("cannot connect to daemon")
                            .with("endpoint", endpoint);
        ::freeaddrinfo(info);
        ::close(fd);
        errno = saved; // callers classify transient failures by errno
        return err;
    }
    ::freeaddrinfo(info);
    // Request/reply with small frames: Nagle would hold every request
    // back ~40ms waiting for a payload that never comes.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

rt::Expected<int>
unixListen(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return netError("cannot create socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return rt::Error(rt::ErrorKind::Config, "socket path too long")
            .with("path", path)
            .with("max", std::uint64_t{sizeof(addr.sun_path) - 1});
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    // A stale socket file from a crashed daemon would fail the bind;
    // the path is daemon-owned, so reclaim it.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 128) != 0) {
        rt::Error err = netError("cannot bind/listen").with("path", path);
        ::close(fd);
        return err;
    }
    return fd;
}

rt::Expected<int>
unixConnect(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return netError("cannot create socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        errno = EINVAL; // not a transient failure; see tcpSocketFor
        return rt::Error(rt::ErrorKind::Config, "socket path too long")
            .with("path", path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        int saved = errno;
        rt::Error err =
            netError("cannot connect to daemon").with("path", path);
        ::close(fd);
        errno = saved; // callers classify transient failures by errno
        return err;
    }
    return fd;
}

// -- Listener -------------------------------------------------------------

Listener::~Listener()
{
    shutdown();
}

rt::Expected<void>
Listener::start(const std::string &unix_path,
                const std::string &tcp_endpoint, HandlerFn handler_fn)
{
    if (unix_path.empty() && tcp_endpoint.empty()) {
        return rt::Error(rt::ErrorKind::Config,
                         "listener needs a socket path or a TCP "
                         "endpoint");
    }
    handler = std::move(handler_fn);
    unixPath = unix_path;
    if (!unix_path.empty()) {
        auto bound = unixListen(unix_path);
        if (!bound.ok())
            return bound.error();
        unixFd = bound.value();
    }
    if (!tcp_endpoint.empty()) {
        auto bound = tcpListen(tcp_endpoint, &boundPort);
        if (!bound.ok()) {
            if (unixFd >= 0) {
                ::close(unixFd);
                unixFd = -1;
            }
            return bound.error();
        }
        tcpFd = bound.value();
    }
    started = true;
    acceptThread = std::thread([this] { acceptLoop(); });
    return {};
}

void
Listener::shutdown()
{
    if (!started)
        return;
    stopFlag.store(true);
    if (acceptThread.joinable())
        acceptThread.join();
    if (unixFd >= 0) {
        ::close(unixFd);
        unixFd = -1;
    }
    if (tcpFd >= 0) {
        ::close(tcpFd);
        tcpFd = -1;
    }
    {
        // Poke every open connection so its handler's recv() returns
        // now instead of waiting out the idle timeout.
        std::unique_lock<std::mutex> lock(mutex);
        for (int fd : connectionFds)
            ::shutdown(fd, SHUT_RDWR);
        connectionsIdle.wait(lock,
                             [this] { return activeConnections == 0; });
    }
    if (!unixPath.empty())
        ::unlink(unixPath.c_str());
    started = false;
}

void
Listener::acceptLoop()
{
    for (;;) {
        pollfd pfds[2];
        nfds_t n = 0;
        if (unixFd >= 0)
            pfds[n++] = {unixFd, POLLIN, 0};
        if (tcpFd >= 0)
            pfds[n++] = {tcpFd, POLLIN, 0};
        int rc = ::poll(pfds, n, 200);
        if (stopFlag.load())
            return;
        if (rc <= 0)
            continue;
        for (nfds_t i = 0; i < n; ++i) {
            if (!(pfds[i].revents & POLLIN))
                continue;
            int fd = ::accept(pfds[i].fd, nullptr, nullptr);
            if (fd < 0)
                continue;
            if (pfds[i].fd == tcpFd) {
                int one = 1;
                ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof(one));
            }
            // Idle connections are reaped so a dead client cannot pin
            // a handler thread past shutdown.
            timeval timeout{30, 0};
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                         sizeof(timeout));
            {
                std::lock_guard<std::mutex> lock(mutex);
                ++activeConnections;
                connectionFds.insert(fd);
            }
            std::thread([this, fd] { handleConnection(fd); }).detach();
        }
    }
}

void
Listener::handleConnection(int fd)
{
    obs::Spans::setThreadName("conn");
    WriteFn write = [fd](const std::string &frame) {
        std::string out = frame;
        out += '\n';
        std::size_t off = 0;
        while (off < out.size()) {
            ssize_t w = ::send(fd, out.data() + off, out.size() - off,
                               MSG_NOSIGNAL);
            if (w < 0 && errno == EINTR)
                continue;
            if (w <= 0)
                return false;
            off += static_cast<std::size_t>(w);
        }
        return true;
    };
    LineFramer framer;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break; // EOF, timeout or error: drop the connection
        if (!framer.feed(buf, static_cast<std::size_t>(n)).ok())
            break; // unterminated line past the cap: hostile peer
        while (auto line = framer.next()) {
            if (line->empty())
                continue;
            handler(*line, write);
        }
    }
    // Deregister before closing: shutdown() pokes registered fds and
    // must never touch one the kernel may have already reassigned.
    {
        std::lock_guard<std::mutex> lock(mutex);
        connectionFds.erase(fd);
        ::close(fd);
        --activeConnections;
        connectionsIdle.notify_all();
    }
}

} // namespace dcfb::svc
