/**
 * @file
 * dcfb-serve: the experiment service daemon.
 *
 *   dcfb-serve --socket /tmp/dcfb.sock [--listen HOST:PORT]
 *              [--jobs N] [--queue N]
 *              [--cache DIR] [--warm N --measure N]
 *              [--retry-after-ms N] [--metrics-interval-ms N]
 *              [--trace-spans FILE]
 *              [--journal DIR] [--journal-fsync always|rotate|never]
 *              [--journal-rotate N] [--lease-ms N] [--svc-inject SPEC]
 *
 * Listens on the Unix socket, the TCP endpoint (fleet workers behind a
 * dcfb-coord), or both; `--listen host:0` binds an ephemeral port and
 * announces the resolved one on stderr so scripts can discover it.
 *
 * Runs until SIGTERM/SIGINT, then drains gracefully: admission stops,
 * every queued and running job finishes and is flushed to the result
 * cache, a final stats snapshot is printed to stdout, and the process
 * exits 0.  EXPERIMENTS.md documents the request protocol.
 *
 * With --journal the daemon keeps a write-ahead job journal in DIR and
 * replays incomplete jobs after a crash (DESIGN.md section 12).
 * --lease-ms arms the in-flight lease watchdog; --svc-inject perturbs
 * reply frames and durable writes for chaos testing.
 *
 * The gauge sampler defaults to one sample per second (the `metrics`
 * request serves the ring); --metrics-interval-ms 0 disables it.  With
 * --trace-spans every request, queue wait and job run is recorded as a
 * span and the Chrome trace-event timeline is written at exit.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "cli/flag_docs.h"
#include "obs/span.h"
#include "svc/server.h"

namespace {

volatile std::sig_atomic_t stopRequested = 0;

void
onSignal(int)
{
    stopRequested = 1;
}

[[noreturn]] void
usage(const char *argv0)
{
    // Rendered from the same table as docs/FLAGS.md (src/cli/flag_docs.cpp).
    const auto &docs = dcfb::cli::allBinaryDocs();
    for (const auto &doc : docs) {
        if (doc.binary != "dcfb-serve")
            continue;
        std::fprintf(stderr, "usage: %s %s\n", argv0,
                     dcfb::cli::usageLine(doc).c_str());
        std::exit(2);
    }
    std::fprintf(stderr, "usage: %s --socket PATH ...\n", argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dcfb;

    svc::ServerConfig config;
    config.defaultWindows = sim::RunWindows{150000, 150000};
    config.metricsIntervalMs = 1000;
    std::string spanPath;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--socket")
            config.socketPath = next();
        else if (arg == "--listen")
            config.listenAddr = next();
        else if (arg == "--jobs")
            config.jobs = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--queue")
            config.queueCapacity =
                static_cast<std::size_t>(std::atoll(next()));
        else if (arg == "--cache")
            config.cacheDir = next();
        else if (arg == "--warm")
            config.defaultWindows.warm =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--measure")
            config.defaultWindows.measure =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--retry-after-ms")
            config.retryAfterMs =
                static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--metrics-interval-ms")
            config.metricsIntervalMs =
                static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--trace-spans")
            spanPath = next();
        else if (arg == "--journal")
            config.journalDir = next();
        else if (arg == "--journal-fsync") {
            auto policy = svc::parseFsyncPolicy(next());
            if (!policy.ok()) {
                std::fprintf(stderr, "dcfb-serve: %s\n",
                             policy.error().render().c_str());
                return 2;
            }
            config.journalFsync = policy.value();
        } else if (arg == "--journal-rotate")
            config.journalRotateEvery =
                static_cast<std::size_t>(std::atoll(next()));
        else if (arg == "--lease-ms")
            config.leaseMs =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--svc-inject") {
            auto plan = rt::parseSvcFaultPlan(next());
            if (!plan.ok()) {
                std::fprintf(stderr, "dcfb-serve: %s\n",
                             plan.error().render().c_str());
                return 2;
            }
            config.svcInjectPlan = plan.value();
        } else
            usage(argv[0]);
    }
    if (config.socketPath.empty() && config.listenAddr.empty())
        usage(argv[0]);

    if (!spanPath.empty() && !obs::Spans::open(spanPath)) {
        std::fprintf(stderr, "dcfb-serve: cannot open %s\n",
                     spanPath.c_str());
        return 1;
    }

    svc::Server server(config);
    if (auto started = server.start(); !started.ok()) {
        std::fprintf(stderr, "dcfb-serve: %s\n",
                     started.error().render().c_str());
        return 1;
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    if (!config.socketPath.empty())
        std::fprintf(stderr, "dcfb-serve: listening on %s\n",
                     config.socketPath.c_str());
    if (!config.listenAddr.empty())
        std::fprintf(stderr, "dcfb-serve: listening on tcp port %u\n",
                     server.tcpPort());

    while (!stopRequested)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::fprintf(stderr, "dcfb-serve: draining\n");
    server.requestDrain();
    server.awaitDrained();
    std::printf("%s\n", server.statsSnapshot().dump(2).c_str());
    server.shutdown();
    if (!spanPath.empty()) {
        obs::Spans::close();
        std::fprintf(stderr, "dcfb-serve: span timeline written to %s\n",
                     spanPath.c_str());
    }
    std::fprintf(stderr, "dcfb-serve: drained, exiting\n");
    return 0;
}
