#include "prefetch/sn4l_dis_btb.h"

#include <algorithm>
#include <bit>

#include "rt/faults.h"
#include "rt/invariants.h"

namespace dcfb::prefetch {

Sn4lDisBtb::Sn4lDisBtb(mem::L1iCache &l1i_,
                       const isa::Predecoder &predecoder,
                       frontend::Btb *btb_, const Sn4lDisBtbConfig &config,
                       exec::Arena *arena)
    : l1i(l1i_), pd(predecoder), btb(btb_), cfg(config),
      seq(config.seqTableEntries, arena), dis(config.disTable, arena),
      rluFilter(config.rluEntries, arena),
      btbPb(config.btbPbEntries, config.btbPbAssoc, arena),
      seqQueue(config.queueEntries, arena), disQueue(config.queueEntries, arena),
      rluQueue(config.queueEntries, arena)
{
    cLocalStatusHits = statSet.counter("local_status_hits");
    cLocalStatusFills = statSet.counter("local_status_fills");
    cSeqTableReads = statSet.counter("seqtable_reads");
    cSn4lFiltered = statSet.counter("sn4l_filtered");
    cSn4lCandidates = statSet.counter("sn4l_candidates");
    cRluFiltered = statSet.counter("rlu_filtered");
    cIssued = statSet.counter("issued");
    hChainDepth = statSet.histogram("chain_depth");
    hRluQueueOcc = statSet.histogram("rluq_occ");
    cSeqOverflow = statSet.lazy("seqqueue_overflow");
    cDisOverflow = statSet.lazy("disqueue_overflow");
    cRluOverflow = statSet.lazy("rluqueue_overflow");
    cMissStatusOff = statSet.lazy("miss_with_status_off");
    cDisRecorded = statSet.lazy("dis_recorded");
    cDisNotBranch = statSet.lazy("dis_replay_not_branch");
    cDisNoTarget = statSet.lazy("dis_replay_no_target");
    cDisCandidates = statSet.lazy("dis_candidates");
    cPrefillNoFootprint = statSet.lazy("btb_prefill_no_footprint");
    cPrefillBlocks = statSet.lazy("btb_prefill_blocks");
}

std::size_t
Sn4lDisBtb::arenaBytes(const Sn4lDisBtbConfig &config)
{
    // Tables plus the cache-array backing of the BTB prefetch buffer and
    // the three trigger rings (BoundedQueue rounds up to a power of two).
    std::size_t queue_slots = std::bit_ceil(
        std::size_t{config.queueEntries ? config.queueEntries : 1});
    return SeqTable::arenaBytes(config.seqTableEntries) +
        DisTable::arenaBytes(config.disTable) +
        config.rluEntries * sizeof(Addr) +
        mem::SetAssocCache<BufferedBlock>::storageBytes(
               config.btbPbEntries / config.btbPbAssoc, config.btbPbAssoc) +
        3 * queue_slots * (sizeof(Addr) + sizeof(unsigned)) + 256;
}

std::string
Sn4lDisBtb::name() const
{
    std::string n;
    if (cfg.seqDepth > 0)
        n = cfg.selective ? "SN4L" : "N4L";
    if (cfg.enableDis)
        n += n.empty() ? "Dis" : "+Dis";
    if (cfg.enableBtbPrefetch)
        n += "+BTB";
    return n;
}

std::uint64_t
Sn4lDisBtb::storageBits() const
{
    // SeqTable + DisTable + RLU + three 16-entry queues (block address +
    // 2-bit depth each) + BTB prefetch buffer + the 5 per-L1i-line bits
    // (4-bit local status + 1-bit prefetch flag) over 512 lines.
    std::uint64_t bits = seq.storageBits() + dis.storageBits() +
        rluFilter.storageBits() + 3ull * cfg.queueEntries * 54;
    if (cfg.enableBtbPrefetch)
        bits += btbPb.storageBits();
    bits += 512 * 5;
    return bits;
}

void
Sn4lDisBtb::pushTrigger(Addr block_addr, unsigned depth)
{
    if (depth >= cfg.chainDepthLimit)
        return;
    if (injector && injector->forceBackpressure())
        return; // injected back-pressure: the trigger is rejected
    if (!seqQueue.push({block_addr, depth}))
        cSeqOverflow.add();
    if (cfg.enableDis && !disQueue.push({block_addr, depth}))
        cDisOverflow.add();
}

void
Sn4lDisBtb::emitCandidate(Addr block_addr, unsigned depth)
{
    hChainDepth.sample(depth);
    if (injector && injector->forceBackpressure())
        return; // injected back-pressure: the candidate is rejected
    if (!rluQueue.push({block_addr, depth}))
        cRluOverflow.add();
}

void
Sn4lDisBtb::onDemandAccess(Addr block_addr, bool hit)
{
    (void)hit;
    // The demand stream counts as a lookup for RLU purposes, and every
    // demanded block starts a fresh depth-0 chain.
    rluFilter.touch(block_addr);
    pushTrigger(block_addr, 0);
}

void
Sn4lDisBtb::onDemandMiss(Addr block_addr, bool sequential)
{
    // SN4L metadata: a missed block would have been a useful prefetch.
    if (cfg.selective) {
        if (!seq.get(block_addr))
            cMissStatusOff.add(); // filter mispredicted
        seq.set(block_addr, true);
    }

    // Dis recording: decode the last two demanded instructions; if one
    // is a taken branch that landed in the missed block, record its
    // offset in the DisTable entry of the *branch's* block.
    if (!cfg.enableDis || sequential)
        return;
    for (int i = 0; i < 2; ++i) {
        if (!haveInstr[i])
            continue;
        const FetchedInstr &instr = lastInstr[i];
        if (!isa::isBranch(instr.kind) || !instr.taken)
            continue;
        if (!sameBlock(instr.target, block_addr))
            continue;
        std::uint8_t offset = dis.config().byteOffsets
            ? static_cast<std::uint8_t>(blockOffset(instr.pc))
            : static_cast<std::uint8_t>(instrSlot(instr.pc));
        dis.record(blockAlign(instr.pc), offset);
        cDisRecorded.add();
        break;
    }
}

void
Sn4lDisBtb::onFill(Addr block_addr, bool was_prefetch,
                   const mem::BranchFootprint *bf)
{
    (void)bf;
    (void)was_prefetch;
    // Copy the SeqTable status of the four subsequent blocks into the
    // line's local prefetch status (Section V.A, "Decreasing SeqTable
    // lookups").
    if (auto *meta = l1i.lineMeta(block_addr)) {
        meta->localStatus = seq.statusOfNextFour(block_addr);
        cLocalStatusFills.add();
    }
}

void
Sn4lDisBtb::onEvict(Addr block_addr, bool was_prefetch, bool demanded)
{
    if (cfg.selective && was_prefetch && !demanded)
        seq.set(block_addr, false);
}

void
Sn4lDisBtb::onPrefetchUsed(Addr block_addr)
{
    if (cfg.selective)
        seq.set(block_addr, true);
}

void
Sn4lDisBtb::onFetchInstr(const FetchedInstr &instr, Cycle now)
{
    (void)now;
    lastInstr[1] = lastInstr[0];
    haveInstr[1] = haveInstr[0];
    lastInstr[0] = instr;
    haveInstr[0] = true;
}

void
Sn4lDisBtb::processSeq(const Trigger &t)
{
    if (cfg.seqDepth == 0)
        return; // Dis-only ablation

    // SN1L beyond a discontinuity region (depth > 0) trades accuracy for
    // the timeliness the chain already provides (Section V.B).
    unsigned depth_limit =
        (t.depth > 0 && cfg.sn1lTails) ? 1 : cfg.seqDepth;
    // Read the status bits; when the block is resident this uses the
    // 4-bit local prefetch status, saving SeqTable reads.
    std::uint8_t status;
    if (auto *meta = l1i.lineMeta(t.blockAddr)) {
        status = meta->localStatus;
        cLocalStatusHits.add();
    } else {
        status = seq.statusOfNextFour(t.blockAddr);
        cSeqTableReads.add();
    }
    for (unsigned i = 1; i <= depth_limit; ++i) {
        bool useful = !cfg.selective || (status >> (i - 1)) & 1;
        if (!useful) {
            cSn4lFiltered.add();
            continue;
        }
        emitCandidate(t.blockAddr + Addr{i} * kBlockBytes, t.depth + 1);
        cSn4lCandidates.add();
    }
}

void
Sn4lDisBtb::processDis(const Trigger &t, Cycle now)
{
    (void)now;
    // Section V.C: the DisQueue head's block goes to the shared pre-
    // decoder, which extracts all its branches for the BTB prefetch
    // buffer while checking the DisTable offset below.
    if (cfg.enableBtbPrefetch)
        prefillBtb(t.blockAddr);
    auto offset = dis.lookup(t.blockAddr);
    if (!offset)
        return;
    unsigned byte_offset = dis.config().byteOffsets
        ? *offset
        : *offset * kInstrBytes;
    isa::PredecodedBranch br;
    if (!pd.decodeBranchAt(t.blockAddr, byte_offset, br)) {
        // Stale or aliased entry: the instruction there is not a branch.
        cDisNotBranch.add();
        return;
    }
    Addr target = kInvalidAddr;
    if (br.hasTarget) {
        target = br.target;
    } else if (btb) {
        // Indirect branch: consult the BTB (Section V.B "Replaying").
        if (const auto *e = btb->lookup(br.pc))
            target = e->target;
    }
    if (target == kInvalidAddr) {
        cDisNoTarget.add();
        return;
    }
    emitCandidate(blockAlign(target), t.depth + 1);
    cDisCandidates.add();
}

void
Sn4lDisBtb::prefillBtb(Addr block_addr)
{
    if (pd.isVariableLength()) {
        // VL-ISA: the pre-decoder needs the branch footprint fetched
        // with the block from the DV-LLC.
        const auto *bf = l1i.footprintFor(block_addr);
        if (!bf) {
            cPrefillNoFootprint.add();
            return;
        }
        auto branches = pd.predecodeWithFootprint(block_addr, bf->offsets);
        if (!branches.empty()) {
            btbPb.insertBlock(block_addr, branches);
            cPrefillBlocks.add();
        }
        return;
    }
    // FL-ISA hot path: a zero-copy span over the pre-decoder's block
    // cache (no per-call vector).
    auto branches = pd.predecodeBlockSpan(block_addr);
    if (!branches.empty()) {
        btbPb.insertBlock(block_addr, branches);
        cPrefillBlocks.add();
    }
}

void
Sn4lDisBtb::processRluQueue(Cycle now)
{
    // drainPerCycle bounds *cache lookups* (the two L1i ports); RLU
    // checks are single-cycle register compares and candidates filtered
    // by the RLU do not consume a port - that is the point of the RLU.
    hRluQueueOcc.sample(rluQueue.size());
    unsigned budget = cfg.drainPerCycle;
    while (budget > 0 && !rluQueue.empty()) {
        Trigger t = rluQueue.front();
        rluQueue.pop();
        if (rluFilter.contains(t.blockAddr)) {
            cRluFiltered.add();
            continue;
        }
        --budget;
        rluFilter.touch(t.blockAddr);
        // RLU miss: this block is a fresh trigger for further chains,
        // and the candidate proceeds to the cache lookup.
        if (cfg.proactive)
            pushTrigger(t.blockAddr, t.depth);
        auto outcome = l1i.prefetch(t.blockAddr, now);
        if (outcome == mem::L1iCache::PfOutcome::Issued)
            cIssued.add();
        // In non-proactive configurations the candidate never reaches
        // the DisQueue, so the RLU-miss path feeds the pre-decoder
        // directly (Section V.C: blocks missed in the RLU are sent to
        // the pre-decoder).
        if (cfg.enableBtbPrefetch && !cfg.proactive)
            prefillBtb(t.blockAddr);
    }
}

void
Sn4lDisBtb::registerInvariants(rt::InvariantRegistry &reg)
{
    // Both checks only walk queue entries, so they are gated on total
    // queue occupancy: drained queues make a sweep cost three size
    // reads, not three queue walks.
    auto queue_occupancy = [this] {
        return seqQueue.size() + disQueue.size() + rluQueue.size();
    };

    reg.add("pf.queue_bounds", queue_occupancy,
            [this](Cycle) -> std::optional<std::string> {
        if (seqQueue.size() > cfg.queueEntries ||
            disQueue.size() > cfg.queueEntries ||
            rluQueue.size() > cfg.queueEntries) {
            return "queue occupancy seq=" +
                std::to_string(seqQueue.size()) + " dis=" +
                std::to_string(disQueue.size()) + " rlu=" +
                std::to_string(rluQueue.size()) + " exceeds " +
                std::to_string(cfg.queueEntries) + " entries";
        }
        return std::nullopt;
    });

    // Trigger queues only accept depth < limit; candidates sit one step
    // deeper, so RLUQueue entries may reach exactly the limit.
    reg.add("pf.chain_depth", queue_occupancy,
            [this](Cycle) -> std::optional<std::string> {
        for (const auto &t : seqQueue) {
            if (t.depth >= cfg.chainDepthLimit) {
                return "SeqQueue trigger at depth " +
                    std::to_string(t.depth) + " >= limit " +
                    std::to_string(cfg.chainDepthLimit);
            }
        }
        for (const auto &t : disQueue) {
            if (t.depth >= cfg.chainDepthLimit) {
                return "DisQueue trigger at depth " +
                    std::to_string(t.depth) + " >= limit " +
                    std::to_string(cfg.chainDepthLimit);
            }
        }
        for (const auto &t : rluQueue) {
            if (t.depth > cfg.chainDepthLimit) {
                return "RLUQueue candidate at depth " +
                    std::to_string(t.depth) + " > limit " +
                    std::to_string(cfg.chainDepthLimit);
            }
        }
        return std::nullopt;
    });
}

void
Sn4lDisBtb::tick(Cycle now)
{
    // Two SeqQueue and two DisQueue triggers per cycle (metadata reads
    // against small direct-mapped tables), plus the RLU queue bounded by
    // the two L1i lookup ports.
    for (int i = 0; i < 2 && !seqQueue.empty(); ++i) {
        Trigger t = seqQueue.front();
        seqQueue.pop();
        processSeq(t);
    }
    for (int i = 0; i < 2 && cfg.enableDis && !disQueue.empty(); ++i) {
        Trigger t = disQueue.front();
        disQueue.pop();
        processDis(t, now);
    }
    processRluQueue(now);
}

} // namespace dcfb::prefetch
