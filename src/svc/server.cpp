#include "svc/server.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "exec/schedule.h"
#include "svc/net.h"
#include "obs/prometheus.h"
#include "obs/span.h"
#include "sim/report.h"
#include "workload/profiles.h"

namespace dcfb::svc {

namespace {

std::uint64_t
microsSince(std::chrono::steady_clock::time_point t0,
            std::chrono::steady_clock::time_point t1)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
}

/** Static-storage span names (SpanRecord keeps the pointer). */
const char *
opSpanName(Request::Op op)
{
    switch (op) {
      case Request::Op::Ping: return "svc.ping";
      case Request::Op::Submit: return "svc.submit";
      case Request::Op::Status: return "svc.status";
      case Request::Op::Fetch: return "svc.fetch";
      case Request::Op::Cancel: return "svc.cancel";
      case Request::Op::Stats: return "svc.stats";
      case Request::Op::Metrics: return "svc.metrics";
      case Request::Op::Drain: return "svc.drain";
    }
    return "svc.op";
}

} // namespace

Server::Server(ServerConfig config)
    : cfg(std::move(config)), svcInject(cfg.svcInjectPlan)
{
    cSubmitted = stats.counter("svc.submitted");
    cAdmitted = stats.counter("svc.admitted");
    cRejectedFull = stats.counter("svc.rejected_full");
    cRejectedDraining = stats.counter("svc.rejected_draining");
    cBadRequests = stats.counter("svc.bad_requests");
    cCoalesced = stats.counter("svc.coalesced");
    cCacheHits = stats.counter("svc.cache_hits");
    cSimsExecuted = stats.counter("svc.sims_executed");
    cCompleted = stats.counter("svc.completed");
    cFailed = stats.counter("svc.failed");
    cCancelled = stats.counter("svc.cancelled");
    cDeadlineExpired = stats.counter("svc.deadline_expired");
    cInvariantViolations = stats.counter("svc.invariant_violations");
    hQueueWaitUs = stats.histogram("svc.queue_wait_us");
    hRunUs = stats.histogram("svc.run_us");
    hRequestUs = stats.histogram("svc.request_latency_us");
    for (unsigned i = 0; i < kOpCount; ++i) {
        hOpLatencyUs[i] = stats.histogram(
            std::string("svc.op.") +
            opName(static_cast<Request::Op>(i)) + ".latency_us");
    }
    // Lazy: these intern a registry slot only on first increment, so
    // the stats/counters key set stays exactly PR 6's until a crash
    // -safety feature actually fires.
    cRecoveryReplayed = stats.lazyCounter("svc.recovery.replayed");
    cRecoveryCacheHits = stats.lazyCounter("svc.recovery.cache_hits");
    cRecoveryKeyMismatch = stats.lazyCounter("svc.recovery.key_mismatch");
    cAlreadyKnown = stats.lazyCounter("svc.already_known");
    cLeaseReclaimed = stats.lazyCounter("svc.lease.reclaimed");
    cLeaseExpiredFailed = stats.lazyCounter("svc.lease.expired_failed");
    cLeaseStaleCompletions =
        stats.lazyCounter("svc.lease.stale_completions");
    cTmpReaped = stats.lazyCounter("svc.cache.tmp_reaped");
    series.addSeries("queue_depth");
    series.addSeries("jobs_inflight");
    series.addSeries("cache_hit_rate");
    series.addSeries("pool_occupancy");
    series.addSeries("cells_per_sec");
}

Server::~Server()
{
    shutdown();
}

const char *
Server::stateName(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
      case JobState::Cancelled: return "cancelled";
    }
    return "?";
}

rt::Expected<void>
Server::start()
{
    if (!cfg.cacheDir.empty()) {
        cache = std::make_unique<ResultCache>(cfg.cacheDir);
        if (auto opened = cache->open(); !opened.ok())
            return opened.error();
        if (svcInject.active())
            cache->setInjector(&svcInject);
        if (std::uint64_t reaped = cache->stats().tmpReaped) {
            std::lock_guard<std::mutex> lock(mutex);
            cTmpReaped.add(reaped);
        }
    }
    if (!cfg.journalDir.empty()) {
        Journal::Config jc;
        jc.dir = cfg.journalDir;
        jc.fsync = cfg.journalFsync;
        jc.rotateEvery = cfg.journalRotateEvery;
        if (svcInject.active())
            jc.inject = &svcInject;
        journal = std::make_unique<Journal>(jc);
        // Replay before the socket opens: recovered jobs are queued (or
        // served from the cache) before any client can race them.
        if (auto recovered = recoverFromJournal(); !recovered.ok())
            return recovered.error();
    }
    unsigned workers = exec::resolveJobs(cfg.jobs);
    // A tight pool queue keeps the admission queue authoritative: at
    // most `workers` jobs buffer past it before submit() blocks the
    // dispatcher, so overload turns into queue_full rejects instead of
    // silently piling up inside the pool.
    pool = std::make_unique<exec::Pool>(workers, workers);

    if (cfg.socketPath.empty() && cfg.listenAddr.empty()) {
        return rt::Error(rt::ErrorKind::Config,
                         "daemon needs a socket path or a TCP listen "
                         "endpoint");
    }
    if (!cfg.socketPath.empty()) {
        auto bound = unixListen(cfg.socketPath);
        if (!bound.ok())
            return bound.error();
        listenFd = bound.value();
    }
    if (!cfg.listenAddr.empty()) {
        auto bound = tcpListen(cfg.listenAddr, &boundTcpPort);
        if (!bound.ok()) {
            if (listenFd >= 0) {
                ::close(listenFd);
                listenFd = -1;
            }
            return bound.error();
        }
        tcpListenFd = bound.value();
    }

    startedAt = std::chrono::steady_clock::now();
    started = true;
    acceptThread = std::thread([this] { acceptLoop(); });
    dispatchThread = std::thread([this] { dispatchLoop(); });
    if (cfg.metricsIntervalMs)
        metricsThread = std::thread([this] { metricsLoop(); });
    if (cfg.leaseMs)
        leaseThread = std::thread([this] { leaseLoop(); });
    return {};
}

void
Server::requestDrain()
{
    drainFlag.store(true);
    queueReady.notify_all();
    jobsSettled.notify_all();
}

void
Server::awaitDrained()
{
    std::unique_lock<std::mutex> lock(mutex);
    jobsSettled.wait(lock,
                     [this] { return queue.empty() && activeJobs == 0; });
}

void
Server::shutdown()
{
    if (!started)
        return;
    requestDrain();
    awaitDrained();
    stopFlag.store(true);
    queueReady.notify_all();
    metricsStop.notify_all();
    leaseStop.notify_all();
    if (metricsThread.joinable())
        metricsThread.join();
    if (leaseThread.joinable())
        leaseThread.join();
    if (dispatchThread.joinable())
        dispatchThread.join();
    // Closing the listen fds makes the accept loop's poll() return
    // with an error/POLLNVAL; the stop flag then exits the loop.
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    if (tcpListenFd >= 0) {
        ::close(tcpListenFd);
        tcpListenFd = -1;
    }
    if (acceptThread.joinable())
        acceptThread.join();
    {
        // Poke every open connection so its handler's recv() returns
        // now instead of waiting out the idle timeout; the fds are
        // closed by the handlers themselves.
        std::unique_lock<std::mutex> lock(mutex);
        for (int fd : connectionFds)
            ::shutdown(fd, SHUT_RDWR);
        connectionsIdle.wait(lock,
                             [this] { return activeConnections == 0; });
    }
    pool.reset(); // joins the workers; all tasks already finished
    if (!cfg.socketPath.empty())
        ::unlink(cfg.socketPath.c_str());
    started = false;
}

// -- request handling -----------------------------------------------------

obs::JsonValue
Server::handleLine(const std::string &line)
{
    auto t0 = std::chrono::steady_clock::now();
    obs::JsonValue reply;
    auto parsed = parseRequest(line);
    if (!parsed.ok()) {
        std::lock_guard<std::mutex> lock(mutex);
        cBadRequests.add();
        reply = errorReply(parsed.error());
        auto t1 = std::chrono::steady_clock::now();
        hRequestUs.sample(microsSince(t0, t1));
        return reply;
    }
    const Request &req = parsed.value();
    {
        // Daemon-side root of this request's span subtree; re-rooted
        // under the client's IDs when the request carried them.  The
        // scope also sets the thread's ambient context, so every span
        // the handler records parents under this op span.
        std::optional<obs::SpanScope> opSpan;
        if (obs::Spans::enabled())
            opSpan.emplace(opSpanName(req.op), req.traceId,
                           req.parentSpan);
        switch (req.op) {
          case Request::Op::Ping: {
            reply = okReply();
            reply["op"] = "ping";
            break;
          }
          case Request::Op::Submit:
            reply = handleSubmit(req.submit);
            break;
          case Request::Op::Status:
            reply = handleStatus(req.job);
            break;
          case Request::Op::Fetch:
            reply = handleFetch(req.job);
            break;
          case Request::Op::Cancel:
            reply = handleCancel(req.job);
            break;
          case Request::Op::Stats:
            reply = statsSnapshot();
            break;
          case Request::Op::Metrics:
            reply = metricsSnapshot();
            break;
          case Request::Op::Drain: {
            requestDrain();
            reply = okReply();
            reply["op"] = "drain";
            reply["draining"] = true;
            break;
          }
        }
    }
    if (req.traceId)
        reply["trace_id"] = req.traceId;
    auto t1 = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(mutex);
        std::uint64_t us = microsSince(t0, t1);
        hRequestUs.sample(us);
        hOpLatencyUs[static_cast<unsigned>(req.op)].sample(us);
    }
    return reply;
}

rt::Expected<void>
Server::checkQueueBoundLocked()
{
    // Journal replays and lease reclaims enter the queue without a
    // client to reject, so they ride above the admission bound until
    // dispatched; new submits are still held to `queueCapacity`.
    if (queue.size() <= cfg.queueCapacity + boundExempt)
        return {};
    cInvariantViolations.add();
    return rt::Error(rt::ErrorKind::Invariant,
                     "admission queue exceeded its bound")
        .with("depth", std::uint64_t{queue.size()})
        .with("capacity", std::uint64_t{cfg.queueCapacity})
        .with("bound_exempt", boundExempt);
}

// -- crash safety ---------------------------------------------------------

void
Server::journalAppendLocked(const JournalRecord &record)
{
    if (!journal)
        return;
    // Terminal records must never fail the transition they describe:
    // a lost terminal only costs a redundant (idempotent) replay at
    // the next restart.  Admit-side failures are handled by the caller
    // (handleSubmit rejects the submit instead).
    if (auto appended = journal->append(record); !appended.ok())
        std::fprintf(stderr, "[svc] %s\n",
                     appended.error().render().c_str());
}

void
Server::journalTerminalLocked(const Job &job)
{
    if (!journal)
        return;
    JournalRecord record;
    record.key = job.key;
    record.jobId = std::strtoull(job.id.c_str() + 4, nullptr, 10);
    switch (job.state) {
      case JobState::Done:
        record.type = JournalRecord::Type::Done;
        break;
      case JobState::Failed:
        record.type = JournalRecord::Type::Failed;
        record.errorCode = job.errorCode;
        record.errorText = job.errorText;
        break;
      case JobState::Cancelled:
        record.type = JournalRecord::Type::Cancelled;
        break;
      case JobState::Queued:
      case JobState::Running:
        return; // not terminal; nothing to record
    }
    journalAppendLocked(record);
}

rt::Expected<void>
Server::recoverFromJournal()
{
    std::optional<obs::SpanScope> recoverSpan;
    if (obs::Spans::enabled())
        recoverSpan.emplace("svc.recover", cfg.journalDir);
    auto opened = journal->open();
    if (!opened.ok())
        return opened.error();

    // open() returned every surviving record; its live-set tracking
    // already collapsed them, but replay wants admit order with
    // terminals applied, so scan again here.
    std::vector<JournalRecord> incomplete;
    for (JournalRecord &record : opened.value()) {
        auto match = std::find_if(incomplete.begin(), incomplete.end(),
                                  [&](const JournalRecord &admit) {
                                      return admit.key == record.key;
                                  });
        if (record.type == JournalRecord::Type::Admit) {
            if (match != incomplete.end())
                *match = std::move(record);
            else
                incomplete.push_back(std::move(record));
        } else if (match != incomplete.end()) {
            incomplete.erase(match);
        }
    }

    for (const JournalRecord &admit : incomplete) {
        // Replay through the live submit path: the stored spec is a
        // submit-shaped document, so parseRequest applies the exact
        // validation and config construction a client submit gets.
        auto parsed = parseRequest(admit.spec.dump());
        if (!parsed.ok() || parsed.value().op != Request::Op::Submit) {
            std::lock_guard<std::mutex> lock(mutex);
            cRecoveryKeyMismatch.add();
            std::fprintf(stderr,
                         "[svc] journal replay dropped %s (%s)\n",
                         admit.key.c_str(),
                         parsed.ok() ? "not a submit spec"
                                     : parsed.error().render().c_str());
            continue;
        }
        const SubmitSpec &spec = parsed.value().submit;
        sim::SystemConfig config = sim::makeConfig(
            workload::serverProfile(spec.workload), spec.preset);
        config.faults = spec.faults;
        if (spec.seed)
            config.runSeed = *spec.seed;
        if (cfg.configHook)
            cfg.configHook(config);
        sim::RunWindows windows =
            spec.hasWindows ? spec.windows : cfg.defaultWindows;
        obs::JsonValue fp = fingerprint(config, windows);
        std::string key = fnv1aHex(fp.dump());

        std::optional<sim::RunResult> hit;
        if (cache)
            hit = cache->get(key, fp);

        std::lock_guard<std::mutex> lock(mutex);
        if (key != admit.key) {
            // The config hook or fingerprint schema changed between
            // runs; the recomputed key is authoritative (it is what
            // the cache and dedup maps use from here on).  Retire the
            // stale admit with a terminal record: nothing will ever
            // complete under the old key, so without one it would stay
            // in the journal's live set forever and replay again on
            // every subsequent restart.
            cRecoveryKeyMismatch.add();
            JournalRecord retire;
            retire.type = JournalRecord::Type::Cancelled;
            retire.key = admit.key;
            retire.jobId = admit.jobId;
            journalAppendLocked(retire);
        }
        auto job = std::make_shared<Job>();
        job->id = "job-" + std::to_string(nextJobId++);
        job->key = key;
        job->label =
            spec.workload + "/" + sim::presetName(spec.preset);
        job->recovered = true;
        job->spec = submitSpecToJson(spec);
        job->submittedAt = std::chrono::steady_clock::now();
        jobs.emplace(job->id, job);
        byKey[key] = job;
        if (hit) {
            // The job finished before the crash but its terminal
            // record was lost (or never written): the cache has the
            // result, so it completes without re-simulating.
            job->state = JobState::Done;
            job->cached = true;
            job->result = std::move(*hit);
            cCacheHits.add();
            cCompleted.add();
            cRecoveryCacheHits.add();
            journalTerminalLocked(*job);
        } else {
            job->cfg = std::move(config);
            job->windows = windows;
            job->fp = std::move(fp);
            job->deadlineMs = spec.deadlineMs;
            job->boundExempt = true;
            ++boundExempt;
            inflight.emplace(key, job);
            queue.push_back(job);
            queuePeak = std::max(queuePeak, queue.size());
            cRecoveryReplayed.add();
            if (key != admit.key) {
                // Re-journal under the authoritative key so a second
                // crash replays against the right identity.
                JournalRecord readmit;
                readmit.type = JournalRecord::Type::Admit;
                readmit.key = key;
                readmit.jobId =
                    std::strtoull(job->id.c_str() + 4, nullptr, 10);
                readmit.label = job->label;
                readmit.spec = job->spec;
                journalAppendLocked(readmit);
            }
        }
    }
    return {};
}

void
Server::leaseLoop()
{
    obs::Spans::setThreadName("lease");
    // Two checks per lease period bounds reclaim latency at 1.5x the
    // lease without busy-polling.
    auto period = std::chrono::milliseconds(
        std::max<std::uint64_t>(1, cfg.leaseMs / 2));
    std::unique_lock<std::mutex> sleepLock(leaseMutex);
    while (!stopFlag.load()) {
        if (leaseStop.wait_for(sleepLock, period,
                               [this] { return stopFlag.load(); })) {
            return;
        }
        std::lock_guard<std::mutex> lock(mutex);
        auto now = std::chrono::steady_clock::now();
        for (auto &kv : jobs) {
            const std::shared_ptr<Job> &job = kv.second;
            if (job->state != JobState::Running ||
                job->leaseExpiry > now) {
                continue;
            }
            // The worker missed its lease: revoke this run (the
            // generation bump makes its eventual completion a stale
            // no-op) and either requeue or give up on the job.
            ++job->generation;
            ++job->reclaims;
            cLeaseReclaimed.add();
            if (job->reclaims > cfg.leaseMaxReclaims) {
                job->state = JobState::Failed;
                job->errorCode = "lease_expired";
                job->errorText =
                    "job exceeded its worker lease " +
                    std::to_string(job->reclaims) + " times";
                inflight.erase(job->key);
                cLeaseExpiredFailed.add();
                cFailed.add();
                journalTerminalLocked(*job);
                jobsSettled.notify_all();
            } else {
                job->state = JobState::Queued;
                if (!job->boundExempt) {
                    job->boundExempt = true;
                    ++boundExempt;
                }
                queue.push_back(job);
                queuePeak = std::max(queuePeak, queue.size());
                queueReady.notify_one();
            }
        }
    }
}

obs::JsonValue
Server::handleSubmit(const SubmitSpec &spec)
{
    // Config construction happens outside the lock: profile lookup and
    // makeConfig are cheap, and the only process-global they read (the
    // default fault plan) is set before serving starts.
    sim::SystemConfig config = sim::makeConfig(
        workload::serverProfile(spec.workload), spec.preset);
    config.faults = spec.faults;
    if (spec.seed)
        config.runSeed = *spec.seed;
    if (cfg.configHook)
        cfg.configHook(config);
    sim::RunWindows windows =
        spec.hasWindows ? spec.windows : cfg.defaultWindows;

    obs::JsonValue fp = fingerprint(config, windows);
    std::string key = fnv1aHex(fp.dump());
    std::string label =
        spec.workload + "/" + sim::presetName(spec.preset);

    // Cache probe before the lock: file I/O must not serialize
    // unrelated requests.
    std::optional<sim::RunResult> hit;
    if (cache) {
        std::optional<obs::SpanScope> probeSpan;
        if (obs::Spans::enabled())
            probeSpan.emplace("svc.cache_probe", label);
        hit = cache->get(key, fp);
    }

    std::lock_guard<std::mutex> lock(mutex);
    cSubmitted.add();
    if (drainFlag.load()) {
        cRejectedDraining.add();
        obs::JsonValue reply =
            errorReply("draining", "daemon is draining; no new jobs");
        return reply;
    }

    if (journal) {
        // The fingerprint key doubles as a client idempotency key: a
        // resubmit of work this daemon already finished (a lost reply,
        // a restarted client) is answered with the existing job, not
        // admitted again.  Failed/cancelled jobs fall through so a
        // deliberate retry re-runs them.
        if (auto it = byKey.find(key);
            it != byKey.end() && it->second->state == JobState::Done) {
            cAlreadyKnown.add();
            obs::JsonValue reply = okReply();
            reply["job"] = it->second->id;
            reply["key"] = key;
            reply["state"] = "done";
            reply["cached"] = it->second->cached;
            reply["already_known"] = true;
            if (it->second->recovered)
                reply["recovered"] = true;
            return reply;
        }
    }

    if (hit) {
        auto job = std::make_shared<Job>();
        job->id = "job-" + std::to_string(nextJobId++);
        job->key = key;
        job->label = label;
        job->state = JobState::Done;
        job->cached = true;
        job->result = std::move(*hit);
        job->submittedAt = std::chrono::steady_clock::now();
        jobs.emplace(job->id, job);
        if (journal)
            byKey[key] = job; // future resubmits short-circuit in memory
        cCacheHits.add();
        cCompleted.add();
        obs::JsonValue reply = okReply();
        reply["job"] = job->id;
        reply["key"] = key;
        reply["state"] = "done";
        reply["cached"] = true;
        return reply;
    }

    if (auto it = inflight.find(key); it != inflight.end()) {
        // Same fingerprint already queued or running: coalesce onto it
        // instead of simulating the same cell twice.
        cCoalesced.add();
        if (obs::Spans::enabled()) {
            // Zero-duration marker tying this request's trace to the
            // job it coalesced onto.
            obs::SpanIds cur = obs::Spans::current();
            std::uint64_t now = obs::Spans::nowUs();
            obs::Spans::record("svc.coalesced", cur.trace,
                               obs::Spans::newSpanId(), cur.span, now,
                               now, it->second->id);
        }
        obs::JsonValue reply = okReply();
        reply["job"] = it->second->id;
        reply["key"] = key;
        reply["state"] = stateName(it->second->state);
        reply["coalesced"] = true;
        if (it->second->recovered)
            reply["recovered"] = true;
        return reply;
    }

    if (queue.size() >= cfg.queueCapacity + boundExempt) {
        cRejectedFull.add();
        obs::JsonValue reply = errorReply(
            "queue_full", "admission queue is at capacity; retry later");
        reply["retry_after_ms"] = std::uint64_t{cfg.retryAfterMs};
        reply["queue_depth"] = std::uint64_t{queue.size()};
        reply["queue_capacity"] = std::uint64_t{cfg.queueCapacity};
        return reply;
    }

    auto job = std::make_shared<Job>();
    job->id = "job-" + std::to_string(nextJobId++);
    job->key = key;
    job->label = label;
    job->cfg = std::move(config);
    job->windows = windows;
    job->fp = std::move(fp);
    job->submittedAt = std::chrono::steady_clock::now();
    job->deadlineMs = spec.deadlineMs;
    if (obs::Spans::enabled()) {
        // The job outlives this request: stash the ambient IDs so the
        // queue-wait and run spans recorded later parent under this
        // submit's op span (and thus the client's trace, if any).
        obs::SpanIds cur = obs::Spans::current();
        job->traceId = cur.trace;
        job->parentSpan = cur.span;
        job->submitSpanUs = obs::Spans::nowUs();
    }
    if (journal) {
        // Write-ahead: the admit record must be durable before the
        // client hears "queued".  An append failure rejects the submit
        // -- admitting work the journal cannot replay would silently
        // reintroduce the lost-job window the journal exists to close.
        job->spec = submitSpecToJson(spec);
        JournalRecord record;
        record.type = JournalRecord::Type::Admit;
        record.key = key;
        record.jobId = std::strtoull(job->id.c_str() + 4, nullptr, 10);
        record.label = label;
        record.spec = job->spec;
        if (auto appended = journal->append(record); !appended.ok()) {
            std::fprintf(stderr, "[svc] %s\n",
                         appended.error().render().c_str());
            obs::JsonValue reply = errorReply(
                "journal_error",
                "could not persist the admission; submit rejected");
            reply["retry_after_ms"] = std::uint64_t{cfg.retryAfterMs};
            return reply;
        }
        byKey[key] = job;
    }
    jobs.emplace(job->id, job);
    inflight.emplace(key, job);
    queue.push_back(job);
    queuePeak = std::max(queuePeak, queue.size());
    cAdmitted.add();
    if (auto bound = checkQueueBoundLocked(); !bound.ok())
        return errorReply(bound.error());
    queueReady.notify_one();

    obs::JsonValue reply = okReply();
    reply["job"] = job->id;
    reply["key"] = key;
    reply["state"] = "queued";
    reply["queue_depth"] = std::uint64_t{queue.size()};
    return reply;
}

std::shared_ptr<Server::Job>
Server::findJob(const std::string &job_id)
{
    auto it = jobs.find(job_id);
    return it == jobs.end() ? nullptr : it->second;
}

obs::JsonValue
Server::handleStatus(const std::string &job_id)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto job = findJob(job_id);
    if (!job)
        return errorReply("unknown_job", "no such job: " + job_id);
    obs::JsonValue reply = okReply();
    reply["job"] = job->id;
    reply["label"] = job->label;
    reply["key"] = job->key;
    reply["state"] = stateName(job->state);
    reply["cached"] = job->cached;
    if (job->recovered)
        reply["recovered"] = true;
    if (job->state == JobState::Failed) {
        reply["error"] = job->errorCode;
        reply["message"] = job->errorText;
    }
    return reply;
}

obs::JsonValue
Server::handleFetch(const std::string &job_id)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto job = findJob(job_id);
    if (!job)
        return errorReply("unknown_job", "no such job: " + job_id);
    switch (job->state) {
      case JobState::Done: {
        obs::JsonValue reply = okReply();
        reply["job"] = job->id;
        reply["label"] = job->label;
        reply["key"] = job->key;
        reply["cached"] = job->cached;
        if (job->recovered)
            reply["recovered"] = true;
        reply["result"] = sim::toJson(*job->result);
        return reply;
      }
      case JobState::Failed: {
        obs::JsonValue reply = errorReply(
            job->errorCode.empty() ? "job_failed" : job->errorCode,
            job->errorText);
        reply["job"] = job->id;
        reply["state"] = "failed";
        return reply;
      }
      case JobState::Cancelled: {
        obs::JsonValue reply =
            errorReply("cancelled", "job was cancelled");
        reply["job"] = job->id;
        reply["state"] = "cancelled";
        return reply;
      }
      case JobState::Queued:
      case JobState::Running: {
        obs::JsonValue reply =
            errorReply("not_ready", "job has not finished");
        reply["job"] = job->id;
        reply["state"] = stateName(job->state);
        reply["retry_after_ms"] = std::uint64_t{cfg.retryAfterMs};
        return reply;
      }
    }
    return errorReply("internal_error", "unreachable");
}

obs::JsonValue
Server::handleCancel(const std::string &job_id)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto job = findJob(job_id);
    if (!job)
        return errorReply("unknown_job", "no such job: " + job_id);
    obs::JsonValue reply = okReply();
    reply["job"] = job->id;
    if (job->state == JobState::Queued) {
        // The dispatcher skips non-queued jobs when it pops them.
        job->state = JobState::Cancelled;
        inflight.erase(job->key);
        cCancelled.add();
        journalTerminalLocked(*job);
        jobsSettled.notify_all();
    }
    reply["state"] = stateName(job->state);
    return reply;
}

obs::JsonValue
Server::statsSnapshot()
{
    std::lock_guard<std::mutex> lock(mutex);
    obs::JsonValue reply = okReply();
    reply["op"] = "stats";
    reply["uptime_ms"] = microsSince(startedAt,
                                     std::chrono::steady_clock::now()) /
        1000;
    reply["draining"] = drainFlag.load();
    reply["workers"] =
        std::uint64_t{pool ? pool->workers() : 0};
    reply["queue_depth"] = std::uint64_t{queue.size()};
    reply["queue_peak"] = std::uint64_t{queuePeak};
    reply["queue_capacity"] = std::uint64_t{cfg.queueCapacity};
    reply["active_jobs"] = activeJobs;

    obs::JsonValue by_state = obs::JsonValue::object();
    std::map<std::string, std::uint64_t> tally;
    std::uint64_t longest_running_ms = 0;
    auto now = std::chrono::steady_clock::now();
    for (const auto &kv : jobs) {
        ++tally[stateName(kv.second->state)];
        if (kv.second->state == JobState::Running) {
            longest_running_ms =
                std::max(longest_running_ms,
                         microsSince(kv.second->startedAt, now) / 1000);
        }
    }
    for (const auto &kv : tally)
        by_state[kv.first] = kv.second;
    reply["jobs"] = std::move(by_state);
    reply["longest_running_ms"] = longest_running_ms;

    obs::JsonValue counters = obs::JsonValue::object();
    for (const auto &kv : stats.counters())
        counters[kv.first] = kv.second;
    reply["counters"] = std::move(counters);

    obs::JsonValue hists = obs::JsonValue::object();
    for (const auto &kv : stats.histograms()) {
        obs::JsonValue h = obs::JsonValue::object();
        h["count"] = kv.second.count;
        h["mean"] = kv.second.mean();
        h["max"] = kv.second.max;
        // Cumulative buckets (Prometheus-style): each entry counts the
        // samples <= its upper edge, so the list is monotone and its
        // last entry equals `count`.
        obs::JsonValue buckets = obs::JsonValue::array();
        std::uint64_t cumulative = 0;
        for (const auto &bc : kv.second.buckets) {
            cumulative += bc.second;
            obs::JsonValue b = obs::JsonValue::object();
            b["le"] = obs::histBucketHigh(bc.first);
            b["count"] = cumulative;
            buckets.push(std::move(b));
        }
        h["buckets"] = std::move(buckets);
        hists[kv.first] = std::move(h);
    }
    reply["hists"] = std::move(hists);

    if (cache) {
        ResultCacheStats cs = cache->stats();
        obs::JsonValue c = obs::JsonValue::object();
        c["dir"] = cache->dir();
        c["hits"] = cs.hits;
        c["misses"] = cs.misses;
        c["stores"] = cs.stores;
        c["rejects"] = cs.rejects;
        c["tmp_reaped"] = cs.tmpReaped;
        reply["cache"] = std::move(c);
    }
    if (journal) {
        JournalStats js = journal->stats();
        obs::JsonValue j = obs::JsonValue::object();
        j["dir"] = journal->dir();
        j["fsync"] = fsyncPolicyName(cfg.journalFsync);
        j["records_appended"] = js.recordsAppended;
        j["records_recovered"] = js.recordsRecovered;
        j["torn_tails_repaired"] = js.tornTailsRepaired;
        j["checksum_rejects"] = js.checksumRejects;
        j["rotations"] = js.rotations;
        j["fsyncs"] = js.fsyncs;
        j["live_records"] = js.liveRecords;
        j["segment"] = js.segmentIndex;
        reply["journal"] = std::move(j);
    }
    if (svcInject.active()) {
        rt::SvcFaultInjector::Counters fc = svcInject.counters();
        obs::JsonValue f = obs::JsonValue::object();
        f["plan"] = rt::svcFaultPlanSpec(svcInject.planRef());
        f["frames_dropped"] = fc.framesDropped;
        f["frames_delayed"] = fc.framesDelayed;
        f["frames_reset"] = fc.framesReset;
        f["writes_truncated"] = fc.writesTruncated;
        reply["svc_inject"] = std::move(f);
    }
    return reply;
}

// -- metrics plane --------------------------------------------------------

Server::GaugeSample
Server::sampleGaugesLocked()
{
    GaugeSample g;
    g.queueDepth = static_cast<double>(queue.size());
    g.jobsInflight = static_cast<double>(queue.size() + activeJobs);
    if (cache) {
        ResultCacheStats cs = cache->stats();
        std::uint64_t lookups = cs.hits + cs.misses;
        g.cacheHitRate = lookups
            ? static_cast<double>(cs.hits) / static_cast<double>(lookups)
            : 0.0;
    }
    // Rate gauges are deltas against the previous sample so the live
    // view shows current load, not a lifetime average.
    double uptime = static_cast<double>(microsSince(
                        startedAt, std::chrono::steady_clock::now())) /
        1e6;
    double dt = uptime - prevUptimeSeconds;
    if (pool && dt > 0.0) {
        double busy = pool->busySeconds();
        g.poolOccupancy = (busy - prevBusySeconds) /
            (dt * static_cast<double>(pool->workers()));
        g.poolOccupancy = std::max(0.0, std::min(1.0, g.poolOccupancy));
        prevBusySeconds = busy;
    }
    std::uint64_t sims = cSimsExecuted.value();
    if (dt > 0.0) {
        g.cellsPerSec =
            static_cast<double>(sims - prevSimsExecuted) / dt;
        prevSimsExecuted = sims;
        prevUptimeSeconds = uptime;
    }
    return g;
}

obs::JsonValue
Server::metricsSnapshot()
{
    std::lock_guard<std::mutex> lock(mutex);
    GaugeSample g = sampleGaugesLocked();

    std::string body;
    body.reserve(4096);
    for (const auto &kv : stats.counters())
        obs::promCounter(body, "dcfb_" + obs::promName(kv.first) + "_total",
                         kv.second);
    for (const auto &kv : stats.histograms())
        obs::promHistogram(body, "dcfb_" + obs::promName(kv.first),
                           kv.second);
    obs::promGauge(body, "dcfb_queue_depth", g.queueDepth);
    obs::promGauge(body, "dcfb_jobs_inflight", g.jobsInflight);
    obs::promGauge(body, "dcfb_queue_capacity",
                   static_cast<double>(cfg.queueCapacity));
    obs::promGauge(body, "dcfb_workers",
                   pool ? static_cast<double>(pool->workers()) : 0.0);
    obs::promGauge(body, "dcfb_draining", drainFlag.load() ? 1.0 : 0.0);
    obs::promGauge(body, "dcfb_uptime_seconds",
                   static_cast<double>(microsSince(
                       startedAt, std::chrono::steady_clock::now())) /
                       1e6);
    obs::promGauge(body, "dcfb_cache_hit_rate", g.cacheHitRate);
    obs::promGauge(body, "dcfb_pool_occupancy", g.poolOccupancy);
    obs::promGauge(body, "dcfb_cells_per_second", g.cellsPerSec);
    if (journal) {
        JournalStats js = journal->stats();
        obs::promCounter(body, "dcfb_journal_records_appended_total",
                         js.recordsAppended);
        obs::promCounter(body, "dcfb_journal_torn_tails_repaired_total",
                         js.tornTailsRepaired);
        obs::promCounter(body, "dcfb_journal_checksum_rejects_total",
                         js.checksumRejects);
        obs::promCounter(body, "dcfb_journal_rotations_total",
                         js.rotations);
        obs::promCounter(body, "dcfb_journal_fsyncs_total", js.fsyncs);
        obs::promGauge(body, "dcfb_journal_live_records",
                       static_cast<double>(js.liveRecords));
        obs::promGauge(body, "dcfb_journal_segment",
                       static_cast<double>(js.segmentIndex));
        obs::promInfo(body, "dcfb_journal_info",
                      {{"dir", cfg.journalDir},
                       {"fsync", fsyncPolicyName(cfg.journalFsync)}});
    }
    if (svcInject.active()) {
        rt::SvcFaultInjector::Counters fc = svcInject.counters();
        obs::promCounter(body, "dcfb_svc_inject_frames_dropped_total",
                         fc.framesDropped);
        obs::promCounter(body, "dcfb_svc_inject_frames_delayed_total",
                         fc.framesDelayed);
        obs::promCounter(body, "dcfb_svc_inject_frames_reset_total",
                         fc.framesReset);
        obs::promCounter(body, "dcfb_svc_inject_writes_truncated_total",
                         fc.writesTruncated);
        std::string plan = rt::svcFaultPlanSpec(svcInject.planRef());
        obs::promInfo(body, "dcfb_svc_inject_info", {{"plan", plan}});
    }

    obs::JsonValue reply = okReply();
    reply["op"] = "metrics";
    reply["content_type"] = "text/plain; version=0.0.4";
    reply["body"] = std::move(body);
    reply["series"] = series.toJson();
    return reply;
}

void
Server::metricsLoop()
{
    obs::Spans::setThreadName("metrics");
    std::unique_lock<std::mutex> sleepLock(metricsMutex);
    while (!stopFlag.load()) {
        GaugeSample g;
        std::uint64_t t_ms;
        {
            std::lock_guard<std::mutex> lock(mutex);
            g = sampleGaugesLocked();
            t_ms = microsSince(startedAt,
                               std::chrono::steady_clock::now()) /
                1000;
        }
        series.push(t_ms, {g.queueDepth, g.jobsInflight, g.cacheHitRate,
                           g.poolOccupancy, g.cellsPerSec});
        metricsStop.wait_for(
            sleepLock, std::chrono::milliseconds(cfg.metricsIntervalMs),
            [this] { return stopFlag.load(); });
    }
}

// -- job execution --------------------------------------------------------

void
Server::dispatchLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex);
            queueReady.wait(lock, [this] {
                return stopFlag.load() || !queue.empty();
            });
            if (stopFlag.load() && queue.empty())
                return;
            job = queue.front();
            queue.pop_front();
            if (job->boundExempt) {
                // The replayed/reclaimed job left the queue; the
                // admission bound reclaims its headroom.
                job->boundExempt = false;
                --boundExempt;
            }
            if (job->state != JobState::Queued) {
                // Cancelled while queued; it is already terminal.
                jobsSettled.notify_all();
                continue;
            }
            auto now = std::chrono::steady_clock::now();
            if (job->deadlineMs &&
                microsSince(job->submittedAt, now) / 1000 >
                    job->deadlineMs) {
                job->state = JobState::Failed;
                job->errorCode = "deadline_exceeded";
                job->errorText = "job spent longer than deadline_ms "
                                 "in the queue";
                inflight.erase(job->key);
                cDeadlineExpired.add();
                cFailed.add();
                journalTerminalLocked(*job);
                jobsSettled.notify_all();
                continue;
            }
            job->state = JobState::Running;
            job->startedAt = now;
            if (cfg.leaseMs) {
                job->leaseExpiry =
                    now + std::chrono::milliseconds(cfg.leaseMs);
            }
            hQueueWaitUs.sample(microsSince(job->submittedAt, now));
            ++activeJobs;
        }
        if (job->traceId && obs::Spans::enabled()) {
            // Retroactive span covering the time the job sat in the
            // admission queue (recorded here because only now do we
            // know when the wait ended).
            obs::Spans::record("svc.queue_wait", job->traceId,
                               obs::Spans::newSpanId(), job->parentSpan,
                               job->submitSpanUs, obs::Spans::nowUs(),
                               job->label);
        }
        // submit() blocks while the pool's own queue is full; only this
        // thread submits, so admission keeps absorbing meanwhile.
        pool->submit([this, job] { runJob(job); });
    }
}

void
Server::runJob(const std::shared_ptr<Job> &job)
{
    std::uint64_t gen;
    // This run's private payload.  A lease reclaim can re-dispatch the
    // same Job while a stale worker is still simulating, so two runs
    // may be live at once; each gets its own copy of the config,
    // windows and fingerprint (taken under the mutex) and never reads
    // the shared Job's mutable fields again until the terminal
    // transition, which re-takes the mutex and is generation-gated.
    sim::SystemConfig runCfg;
    sim::RunWindows runWindows;
    obs::JsonValue runFp;
    {
        std::lock_guard<std::mutex> lock(mutex);
        gen = job->generation;
        if (job->state != JobState::Running) {
            // The lease watchdog reclaimed the job while it sat in the
            // pool's buffer; another worker (or the fail path) owns it
            // now.  This run never happened.
            cLeaseStaleCompletions.add();
            --activeJobs;
            jobsSettled.notify_all();
            return;
        }
        // Re-check the deadline now that a worker is actually free:
        // time buffered inside the pool counts against it too.
        auto now = std::chrono::steady_clock::now();
        if (job->deadlineMs &&
            microsSince(job->submittedAt, now) / 1000 > job->deadlineMs) {
            job->state = JobState::Failed;
            job->errorCode = "deadline_exceeded";
            job->errorText =
                "job waited longer than deadline_ms before a worker "
                "was available";
            inflight.erase(job->key);
            cDeadlineExpired.add();
            cFailed.add();
            journalTerminalLocked(*job);
            --activeJobs;
            jobsSettled.notify_all();
            return;
        }
        if (cfg.leaseMs) {
            job->leaseExpiry = now +
                std::chrono::milliseconds(cfg.leaseMs);
        }
        runCfg = job->cfg;
        runWindows = job->windows;
        runFp = job->fp;
    }
    // The lease is renewed at the phase boundaries this worker crosses
    // and, via the integrity heartbeat below, at the simulator's sweep
    // cadence inside the run itself -- so a slow-but-healthy simulation
    // keeps its lease and only a worker genuinely wedged (no forward
    // progress at all) stops renewing and is reclaimed.
    auto renewLease = [&] {
        if (!cfg.leaseMs)
            return;
        std::lock_guard<std::mutex> lock(mutex);
        if (job->generation == gen) {
            job->leaseExpiry = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(cfg.leaseMs);
        }
    };
    if (cfg.runHook)
        cfg.runHook(job->label);
    renewLease();
    rt::Expected<sim::RunResult> outcome =
        rt::Error(rt::ErrorKind::Result, "job did not run");
    // Worker-side span; re-rooted under the submit op span stashed in
    // the job so the whole chain shares the client's trace id.  The
    // scope is ambient, so sim::simulate's phase spans nest under it.
    std::optional<obs::SpanScope> runSpan;
    if (obs::Spans::enabled())
        runSpan.emplace("svc.run", job->traceId, job->parentSpan,
                        job->label);
    try {
        // Image resolution happens here, not at admission: building a
        // multi-MB program is the expensive part, and the shared
        // ImageCache hands every job of a workload the same immutable
        // Program.  Resolved on the run's private copy -- a stale run
        // mutating the shared Job's config would race a reclaimed
        // re-run of the same job.
        if (!runCfg.program) {
            runCfg.program =
                workload::ImageCache::global().get(runCfg.profile);
            renewLease(); // a cold image build can outlast a lease
        }
        // Mid-simulation liveness: the simulator calls this at its
        // integrity sweep cadence (functional warmup included), so the
        // lease stays renewed for as long as the run makes progress.
        if (cfg.leaseMs)
            runCfg.integrity.heartbeat = renewLease;
        outcome = sim::trySimulate(runCfg, runWindows);
    } catch (const rt::Exception &e) {
        outcome = e.error();
    } catch (const std::exception &e) {
        outcome = rt::Error(rt::ErrorKind::Result, e.what());
    }
    renewLease(); // the cache store below can be slow (fsync, faults)

    if (outcome.ok() && cache) {
        std::optional<obs::SpanScope> putSpan;
        if (obs::Spans::enabled())
            putSpan.emplace("svc.cache_put", job->label);
        if (auto stored = cache->put(job->key, runFp, outcome.value());
            !stored.ok()) {
            std::fprintf(stderr, "[svc] %s\n",
                         stored.error().render().c_str());
        }
    }

    std::lock_guard<std::mutex> lock(mutex);
    if (job->generation != gen) {
        // The watchdog reclaimed this job while we simulated (and a
        // newer run -- or the lease-expired fail path -- owns its
        // terminal state).  Drop this completion; the cache store
        // above was idempotent, so no work is wasted twice.
        cLeaseStaleCompletions.add();
        cSimsExecuted.add();
        --activeJobs;
        jobsSettled.notify_all();
        return;
    }
    auto now = std::chrono::steady_clock::now();
    hRunUs.sample(microsSince(job->startedAt, now));
    cSimsExecuted.add();
    if (outcome.ok()) {
        job->result = std::move(outcome.value());
        job->state = JobState::Done;
        cCompleted.add();
    } else {
        job->state = JobState::Failed;
        job->errorCode = "sim_error";
        job->errorText = outcome.error().render();
        cFailed.add();
    }
    // The terminal record follows the cache store, so a journal that
    // says "done" implies the result is already on disk -- recovery
    // can trust a done-marked job to cache-hit.
    journalTerminalLocked(*job);
    inflight.erase(job->key);
    --activeJobs;
    jobsSettled.notify_all();
}

// -- socket plumbing ------------------------------------------------------

void
Server::acceptLoop()
{
    // One poll over both transports: the Unix socket keeps its
    // single-host latency, the TCP listener serves the fleet, and
    // every accepted connection lands in the same handleConnection --
    // so admission control, journaling and the svc fault plane behave
    // identically whichever way a request arrived.
    for (;;) {
        pollfd pfds[2];
        nfds_t n = 0;
        if (listenFd >= 0)
            pfds[n++] = {listenFd, POLLIN, 0};
        if (tcpListenFd >= 0)
            pfds[n++] = {tcpListenFd, POLLIN, 0};
        int rc = ::poll(pfds, n, 200);
        if (stopFlag.load())
            return;
        if (rc <= 0)
            continue;
        for (nfds_t i = 0; i < n; ++i) {
            if (!(pfds[i].revents & POLLIN))
                continue;
            int fd = ::accept(pfds[i].fd, nullptr, nullptr);
            if (fd < 0)
                continue;
            if (pfds[i].fd == tcpListenFd) {
                // Request/reply protocol: Nagle would stall replies.
                int one = 1;
                ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof(one));
            }
            // Idle connections are reaped so a dead client cannot pin
            // a handler thread past shutdown.
            timeval timeout{10, 0};
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                         sizeof(timeout));
            {
                std::lock_guard<std::mutex> lock(mutex);
                ++activeConnections;
                connectionFds.insert(fd);
            }
            std::thread([this, fd] { handleConnection(fd); }).detach();
        }
    }
}

void
Server::handleConnection(int fd)
{
    obs::Spans::setThreadName("conn");
    // LineFramer reassembles lines however recv() fragments them --
    // over TCP a request routinely arrives in several pieces -- and
    // caps an unterminated line so a peer streaming garbage cannot
    // grow the buffer unbounded.
    LineFramer framer;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break; // EOF, timeout or error: drop the connection
        if (!framer.feed(buf, static_cast<std::size_t>(n)).ok())
            break; // unterminated line past the framing cap
        bool closed = false;
        while (auto framed = framer.next()) {
            std::string line = std::move(*framed);
            if (line.empty())
                continue;
            std::string out = handleLine(line).dump();
            out += '\n';
            if (svcInject.active()) {
                // The request WAS handled (state changed, journal
                // written); only the reply frame is perturbed -- the
                // exact failure mode a crashed connection produces,
                // which clients must absorb by reconnecting and
                // resubmitting idempotently.
                if (svcInject.resetFrame()) {
                    closed = true; // close mid-request, no reply
                    break;
                }
                if (svcInject.dropFrame())
                    continue; // swallow the reply; client times out
                if (std::uint64_t ms = svcInject.frameDelayMs()) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(ms));
                }
            }
            std::size_t off = 0;
            while (off < out.size()) {
                ssize_t w = ::send(fd, out.data() + off,
                                   out.size() - off, MSG_NOSIGNAL);
                if (w < 0 && errno == EINTR)
                    continue;
                if (w <= 0) {
                    closed = true;
                    break;
                }
                off += static_cast<std::size_t>(w);
            }
            if (closed)
                break;
        }
        if (closed)
            break;
    }
    // Deregister before closing: shutdown() pokes registered fds and
    // must never touch one the kernel may have already reassigned.
    {
        std::lock_guard<std::mutex> lock(mutex);
        connectionFds.erase(fd);
        ::close(fd);
        --activeConnections;
        connectionsIdle.notify_all();
    }
}

} // namespace dcfb::svc
