/**
 * @file
 * Figure 11: miss coverage of SN4L vs. SeqTable size and of SN4L+Dis
 * vs. DisTable size, each against the unlimited-table reference.
 * Paper: 16 K-entry SeqTable reaches 96 % of unlimited; 4 K-entry
 * DisTable reaches 97 % of its maximum.
 */

#include "bench_common.h"

namespace {

using namespace dcfb;

double
coverageFor(const std::string &name, sim::Preset preset,
            std::size_t seq_entries, std::size_t dis_entries,
            std::uint64_t base_misses)
{
    auto cfg = sim::makeConfig(workload::serverProfile(name), preset);
    cfg.sn4l.seqTableEntries = seq_entries;
    cfg.sn4l.disTable.entries = dis_entries;
    auto res = sim::simulate(cfg, bench::windows());
    return res.coverage(base_misses);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv, "Fig. 11 - miss coverage vs. metadata table size",
                  "16K SeqTable ~ 96% of unlimited; 4K DisTable ~ 97%");

    auto names = bench::sweepWorkloads();
    std::map<std::string, std::uint64_t> base_misses;
    for (const auto &name : names) {
        auto res = sim::simulate(
            sim::makeConfig(workload::serverProfile(name),
                            sim::Preset::Baseline),
            bench::windows());
        base_misses[name] = res.stat("l1i.l1i_misses");
    }

    sim::Table seq({"SeqTable entries", "SN4L coverage (avg)"});
    for (std::size_t entries : {256u, 1024u, 4096u, 16384u, 65536u, 0u}) {
        double sum = 0.0;
        for (const auto &name : names) {
            sum += coverageFor(name, sim::Preset::SN4L, entries, 4096,
                               base_misses[name]);
        }
        seq.addRow({entries ? std::to_string(entries) : "unlimited",
                    sim::Table::pct(sum / names.size())});
    }
    h.report(seq, "SN4L miss coverage vs. SeqTable size");

    sim::Table dis({"DisTable entries", "SN4L+Dis coverage (avg)"});
    for (std::size_t entries : {64u, 128u, 256u, 1024u, 4096u, 0u}) {
        double sum = 0.0;
        for (const auto &name : names) {
            sum += coverageFor(name, sim::Preset::SN4LDis, 16384, entries,
                               base_misses[name]);
        }
        dis.addRow({entries ? std::to_string(entries) : "unlimited",
                    sim::Table::pct(sum / names.size())});
    }
    h.report(dis, "SN4L+Dis miss coverage vs. DisTable size");
    return 0;
}
