#include "rt/watchdog.h"

namespace dcfb::rt {

void
Watchdog::rearm(Cycle now, std::uint64_t retired, std::uint64_t fetched)
{
    armed = true;
    lastRetired = retired;
    lastFetched = fetched;
    retireProgressCycle = now;
    fetchProgressCycle = now;
}

std::optional<Error>
Watchdog::observe(Cycle now, std::uint64_t retired, std::uint64_t fetched)
{
    if (!armed) {
        rearm(now, retired, fetched);
        return std::nullopt;
    }
    if (retired != lastRetired) {
        lastRetired = retired;
        retireProgressCycle = now;
    }
    if (fetched != lastFetched) {
        lastFetched = fetched;
        fetchProgressCycle = now;
    }
    Cycle retire_stall = now - retireProgressCycle;
    Cycle fetch_stall = now - fetchProgressCycle;
    if (retire_stall <= window && fetch_stall <= window)
        return std::nullopt;
    const bool no_retire = retire_stall > window;
    Error err(ErrorKind::Watchdog,
              no_retire ? "no instructions retired within the watchdog "
                          "window: machine is wedged"
                        : "no instructions fetched within the watchdog "
                          "window: frontend is wedged");
    if (!cell.empty())
        err.with("cell", cell);
    err.with("cycle", now)
        .with("window_cycles", window)
        .with("cycles_since_retire", retire_stall)
        .with("cycles_since_fetch", fetch_stall)
        .with("retired_total", retired)
        .with("fetched_total", fetched);
    return err;
}

} // namespace dcfb::rt
