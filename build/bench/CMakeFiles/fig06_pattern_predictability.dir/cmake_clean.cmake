file(REMOVE_RECURSE
  "CMakeFiles/fig06_pattern_predictability.dir/fig06_pattern_predictability.cpp.o"
  "CMakeFiles/fig06_pattern_predictability.dir/fig06_pattern_predictability.cpp.o.d"
  "fig06_pattern_predictability"
  "fig06_pattern_predictability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_pattern_predictability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
