# Empty compiler generated dependencies file for fig07_disc_predictability.
# This may be replaced when dependencies are built.
