#include "workload/image.h"

#include <algorithm>
#include <cstring>

namespace dcfb::workload {

void
ProgramImage::write(Addr addr, const std::uint8_t *data, std::size_t n)
{
    while (n > 0) {
        Addr bn = blockNumber(addr);
        unsigned off = blockOffset(addr);
        std::size_t chunk = std::min<std::size_t>(n, kBlockBytes - off);
        auto &blk = blocks[bn]; // zero-initialized std::array on insert
        std::memcpy(blk.data() + off, data, chunk);
        addr += chunk;
        data += chunk;
        n -= chunk;
    }
}

unsigned
ProgramImage::read(Addr addr, std::uint8_t *out, unsigned n) const
{
    unsigned done = 0;
    while (done < n) {
        auto it = blocks.find(blockNumber(addr));
        if (it == blocks.end())
            break;
        unsigned off = blockOffset(addr);
        unsigned chunk = std::min(n - done, kBlockBytes - off);
        std::memcpy(out + done, it->second.data() + off, chunk);
        addr += chunk;
        done += chunk;
    }
    return done;
}

const ProgramImage::Block *
ProgramImage::block(Addr addr) const
{
    auto it = blocks.find(blockNumber(addr));
    return it == blocks.end() ? nullptr : &it->second;
}

} // namespace dcfb::workload
