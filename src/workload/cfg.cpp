#include "workload/cfg.h"

#include <algorithm>
#include <cassert>

#include "isa/vl_encoding.h"

namespace dcfb::workload {

using isa::InstrKind;

namespace {

/** Assign call-graph levels: driver = 0, workers span 1..maxCallDepth. */
std::uint32_t
workerLevel(std::uint32_t worker_idx, std::uint32_t num_workers,
            std::uint32_t max_depth)
{
    if (max_depth <= 1 || num_workers == 0)
        return 1;
    return 1 + (worker_idx * max_depth) / (num_workers + 1);
}

/** Draw a body-instruction kind from the load/store/ALU mix. */
InstrKind
drawBodyKind(Rng &rng, const WorkloadProfile &p)
{
    double u = rng.uniform();
    if (u < p.loadFrac)
        return InstrKind::Load;
    if (u < p.loadFrac + p.storeFrac)
        return InstrKind::Store;
    return InstrKind::Alu;
}

/** Draw a variable-length size for a body instruction (x86-like mix). */
std::uint8_t
drawVlBodyLen(Rng &rng)
{
    // Weighted toward short instructions: mean ~4.2 bytes.
    static const std::uint8_t table[] = {2, 2, 3, 3, 3, 4, 4, 5, 6, 7, 8, 11};
    return table[rng.below(sizeof(table))];
}

/** Instruction byte length given the configured ISA flavour. */
std::uint8_t
lenFor(const WorkloadProfile &p, Rng &rng, InstrKind kind, bool terminator)
{
    if (!p.variableLength)
        return kInstrBytes;
    if (!terminator)
        return drawVlBodyLen(rng);
    switch (kind) {
      case InstrKind::CondBranch:
      case InstrKind::Jump:
      case InstrKind::Call:
        return static_cast<std::uint8_t>(isa::kVlMinBranchLength +
                                         rng.below(3)); // 5..7 bytes
      case InstrKind::Return:
      case InstrKind::IndirectCall:
        return static_cast<std::uint8_t>(2 + rng.below(2)); // 2..3 bytes
      default:
        return drawVlBodyLen(rng);
    }
}

/** The InstrKind emitted for a terminator class. */
InstrKind
kindFor(TermKind term, InstrKind fallthrough_kind)
{
    switch (term) {
      case TermKind::Cond: return InstrKind::CondBranch;
      case TermKind::Jump: return InstrKind::Jump;
      case TermKind::Call: return InstrKind::Call;
      case TermKind::IndirectCall: return InstrKind::IndirectCall;
      case TermKind::Return: return InstrKind::Return;
      case TermKind::FallThrough: return fallthrough_kind;
    }
    return fallthrough_kind;
}

/** First/last function index at each call-graph level (contiguous). */
struct LevelRanges
{
    std::vector<std::uint32_t> lo, hi; //!< indexed by level; 0 = empty

    /**
     * Range of candidate callees for a caller at @p level.  Function
     * levels are monotonic in the index, so "any deeper function" is the
     * contiguous tail starting at the first non-empty deeper level.
     */
    std::pair<std::uint32_t, std::uint32_t>
    calleesAbove(std::uint32_t level) const
    {
        std::uint32_t last = 0;
        for (std::uint32_t h : hi)
            last = std::max(last, h);
        for (std::uint32_t l = level + 1; l < lo.size(); ++l) {
            if (lo[l] != 0)
                return {lo[l], last};
        }
        return {0, 0};
    }
};

/** Structural pass: choose block counts, sizes and terminators. */
void
buildFunctionStructure(Function &fn, bool is_driver,
                       const WorkloadProfile &p, Rng &rng,
                       const LevelRanges &ranges)
{
    std::uint32_t nblocks = is_driver
        ? std::max<std::uint32_t>(p.driverBlocks, 2)
        : static_cast<std::uint32_t>(rng.range(p.minBlocks, p.maxBlocks));
    fn.blocks.resize(nblocks);

    // Body sizes and kinds first (terminator slot patched below).
    for (auto &bb : fn.blocks) {
        auto n = static_cast<std::uint32_t>(
            is_driver ? rng.range(3, 6) : rng.range(p.minInstrs, p.maxInstrs));
        bb.kinds.resize(n);
        for (auto &k : bb.kinds)
            k = drawBodyKind(rng, p);
    }

    // Terminator pass.
    for (std::uint32_t i = 0; i < nblocks; ++i) {
        BasicBlock &bb = fn.blocks[i];
        if (is_driver) {
            // Dispatch loop: every block indirect-calls a worker; the last
            // block jumps back to the top.
            if (i + 1 == nblocks) {
                bb.term = TermKind::Jump;
                bb.targetBlock = 0;
            } else {
                bb.term = TermKind::IndirectCall;
            }
            continue;
        }
        if (i + 1 == nblocks) {
            bb.term = TermKind::Return;
            continue;
        }
        if (bb.cold) {
            // Cold blocks rejoin the hot path immediately.
            bb.term = TermKind::FallThrough;
            continue;
        }
        double u = rng.uniform();
        bool can_skip = i + 2 < nblocks && !fn.blocks[i + 1].cold;
        if (u < p.callProb) {
            // Static call: callee must have a strictly higher level.  The
            // level partition makes candidates a contiguous index range.
            auto [lo, hi] = ranges.calleesAbove(fn.level);
            if (lo != 0) {
                bb.term = TermKind::Call;
                // Skewed callee choice: hot functions call hot helpers,
                // concentrating the active footprint like real server
                // software (flat choice would make the whole binary hot).
                bb.callee = static_cast<std::uint32_t>(
                    lo + rng.zipf(hi - lo + 1, p.callSkew));
                continue;
            }
            // Deepest level: fall through instead.
            bb.term = TermKind::FallThrough;
            continue;
        }
        if (u < p.callProb + p.condProb) {
            bb.term = TermKind::Cond;
            double v = rng.uniform();
            if (v < p.loopProb && i > 0) {
                // Loop back a few blocks.
                bb.targetBlock = static_cast<std::uint32_t>(
                    rng.range(i >= 3 ? i - 3 : 0, i));
                // Loops iterate several times before exiting, so the
                // back edge is mostly taken (stable patterns, Fig. 6).
                bb.takenProb = 0.8;
            } else if (can_skip && v < p.loopProb + p.coldGuardFrac) {
                // Guard over a rarely-executed region (catch/error path).
                bb.targetBlock = i + 2;
                bb.takenProb = 0.97;
                fn.blocks[i + 1].cold = true;
            } else if (can_skip) {
                // if/else: skip the next block with a biased direction.
                bb.targetBlock = i + 2;
                bb.takenProb =
                    rng.chance(0.5) ? p.takenBias : 1.0 - p.takenBias;
            } else {
                // No room to skip: loop back to self-start (tight loop).
                bb.targetBlock = i;
                bb.takenProb = 0.6;
            }
            continue;
        }
        if (u < p.callProb + p.condProb + p.jumpProb && can_skip) {
            // try/catch shape: jump over a never-executed handler.
            bb.term = TermKind::Jump;
            bb.targetBlock = i + 2;
            fn.blocks[i + 1].cold = true;
            continue;
        }
        bb.term = TermKind::FallThrough;
    }

    // Emit terminator instruction kinds and lengths.
    for (auto &bb : fn.blocks) {
        InstrKind body_last = bb.kinds.back();
        bb.kinds.back() = kindFor(bb.term, body_last);
        bb.lens.resize(bb.kinds.size());
        for (std::size_t j = 0; j < bb.kinds.size(); ++j) {
            bool is_term = j + 1 == bb.kinds.size() &&
                bb.term != TermKind::FallThrough;
            bb.lens[j] = lenFor(p, rng, bb.kinds[j], is_term);
        }
    }
}

/** Layout pass: assign PCs; functions are 64-byte aligned. */
Addr
layoutFunction(Function &fn, Addr cursor)
{
    cursor = (cursor + kBlockBytes - 1) & ~Addr{kBlockBytes - 1};
    fn.entry = cursor;
    for (auto &bb : fn.blocks) {
        bb.start = cursor;
        bb.pcs.resize(bb.kinds.size());
        for (std::size_t j = 0; j < bb.kinds.size(); ++j) {
            bb.pcs[j] = cursor;
            cursor += bb.lens[j];
        }
    }
    return cursor;
}

/** Encode pass: write real bytes so pre-decoders can work. */
void
encodeFunction(const Function &fn, const Program &prog, bool vl,
               ProgramImage &image, Rng &rng)
{
    std::vector<std::uint8_t> bytes;
    for (const auto &bb : fn.blocks) {
        for (std::size_t j = 0; j < bb.kinds.size(); ++j) {
            InstrKind kind = bb.kinds[j];
            bool is_term = j + 1 == bb.kinds.size();
            Addr target = kInvalidAddr;
            bool has_target = false;
            if (is_term && isa::hasEncodedTarget(kind)) {
                has_target = true;
                if (bb.term == TermKind::Call)
                    target = prog.functions[bb.callee].entry;
                else
                    target = fn.blocks[bb.targetBlock].start;
            }
            if (!vl) {
                isa::DecodedInstr di{kind, has_target, target};
                std::uint32_t word = isa::encodeInstr(bb.pcs[j], di);
                std::uint8_t buf[kInstrBytes];
                isa::writeWord(buf, word);
                image.write(bb.pcs[j], buf, kInstrBytes);
            } else {
                isa::VlDecodedInstr di;
                di.kind = kind;
                di.length = bb.lens[j];
                di.hasTarget = has_target;
                di.target = target;
                bytes.clear();
                isa::vlEncodeInstr(bb.pcs[j], di, bytes);
                image.write(bb.pcs[j], bytes.data(), bytes.size());
            }
        }
    }
    (void)rng;
}

} // namespace

Program
buildProgram(const WorkloadProfile &profile)
{
    Program prog;
    prog.profile = profile;
    prog.codeBase = 0x40000;
    prog.dataBase = 0x40000000ull;

    Rng rng(profile.seed);

    // Create the function shells with levels so static call edges can be
    // chosen during the structure pass.
    prog.functions.resize(profile.numFunctions + 1);
    prog.functions[0].level = 0;
    for (std::uint32_t f = 1; f < prog.functions.size(); ++f) {
        prog.functions[f].level =
            workerLevel(f - 1, profile.numFunctions, profile.maxCallDepth);
    }

    LevelRanges ranges;
    ranges.lo.assign(profile.maxCallDepth + 2, 0);
    ranges.hi.assign(profile.maxCallDepth + 2, 0);
    for (std::uint32_t f = 1; f < prog.functions.size(); ++f) {
        std::uint32_t l = prog.functions[f].level;
        if (l < ranges.lo.size()) {
            if (ranges.lo[l] == 0)
                ranges.lo[l] = f;
            ranges.hi[l] = f;
        }
    }

    for (std::uint32_t f = 0; f < prog.functions.size(); ++f) {
        buildFunctionStructure(prog.functions[f], f == 0, profile, rng,
                               ranges);
    }

    Addr cursor = prog.codeBase;
    for (auto &fn : prog.functions)
        cursor = layoutFunction(fn, cursor);
    prog.codeEnd = cursor;

    for (const auto &fn : prog.functions) {
        encodeFunction(fn, prog, profile.variableLength, prog.image, rng);
    }

    // Driver dispatch targets: level-1 workers (the hot entry points).
    for (std::uint32_t f = 1; f < prog.functions.size(); ++f) {
        if (prog.functions[f].level == 1)
            prog.driverTargets.push_back(f);
    }
    assert(!prog.driverTargets.empty());
    return prog;
}

} // namespace dcfb::workload
