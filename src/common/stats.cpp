#include "common/stats.h"

#include <sstream>

namespace dcfb {

void
StatSet::reset()
{
    registry.reset();
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &kv : registry.counters())
        os << kv.first << " = " << kv.second << '\n';
    return os.str();
}

} // namespace dcfb
