file(REMOVE_RECURSE
  "CMakeFiles/fig11_table_sizes.dir/fig11_table_sizes.cpp.o"
  "CMakeFiles/fig11_table_sizes.dir/fig11_table_sizes.cpp.o.d"
  "fig11_table_sizes"
  "fig11_table_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_table_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
