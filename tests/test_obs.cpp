/**
 * @file
 * Tests for the observability subsystem: stat-registry ID interning,
 * log2 histogram bucket edges, JSON round-trips (parser, RunResult),
 * trace on/off parity of the final counters, span timelines, the
 * Prometheus renderer, the time-series ring, and the dcfb-prof-v1
 * profile schema.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "exec/schedule.h"
#include "obs/json.h"
#include "obs/profiler.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/profiles.h"

namespace dcfb {
namespace {

// ---------------------------------------------------------------- registry

TEST(StatRegistry, CounterInterningIsStable)
{
    obs::StatRegistry reg;
    obs::Counter a = reg.counter("alpha");
    obs::Counter b = reg.counter("beta");
    // Re-registering the same name must return the same slot.
    obs::Counter a2 = reg.counter("alpha");
    a.add(3);
    a2.add(4);
    b.add(1);
    EXPECT_EQ(reg.get("alpha"), 7u);
    EXPECT_EQ(reg.get("beta"), 1u);
    EXPECT_EQ(reg.counterIndex("alpha"), reg.counterIndex("alpha"));
    EXPECT_NE(reg.counterIndex("alpha"), reg.counterIndex("beta"));
}

TEST(StatRegistry, HandlesSurviveRegistryGrowth)
{
    obs::StatRegistry reg;
    obs::Counter first = reg.counter("first");
    // Force many registrations; the early handle must stay valid (the
    // registry's slots live in a deque, so addresses never move).
    for (int i = 0; i < 1000; ++i)
        reg.counter("c" + std::to_string(i)).add(1);
    first.add(5);
    EXPECT_EQ(reg.get("first"), 5u);
    EXPECT_EQ(reg.get("c999"), 1u);
}

TEST(StatRegistry, DefaultCounterDiscards)
{
    obs::Counter c;  // not registered anywhere
    c.add(42);       // must not crash; value goes to the discard slot
    obs::StatRegistry reg;
    EXPECT_EQ(reg.counters().size(), 0u);
}

TEST(StatRegistry, ResetZeroesCountersAndHistograms)
{
    obs::StatRegistry reg;
    obs::Counter c = reg.counter("n");
    obs::Histogram h = reg.histogram("h");
    c.add(9);
    h.sample(16);
    reg.reset();
    EXPECT_EQ(reg.get("n"), 0u);
    auto snap = reg.histograms().at("h");
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.sum, 0u);
}

// --------------------------------------------------------------- histogram

TEST(Histogram, Log2BucketEdges)
{
    // Bucket 0 holds only value 0; bucket i (i >= 1) holds
    // [2^(i-1), 2^i - 1].
    EXPECT_EQ(obs::histBucket(0), 0u);
    EXPECT_EQ(obs::histBucket(1), 1u);
    EXPECT_EQ(obs::histBucket(2), 2u);
    EXPECT_EQ(obs::histBucket(3), 2u);
    EXPECT_EQ(obs::histBucket(4), 3u);
    for (unsigned k = 1; k < 63; ++k) {
        std::uint64_t pow = 1ull << k;
        EXPECT_EQ(obs::histBucket(pow), k + 1) << "2^" << k;
        EXPECT_EQ(obs::histBucket(pow - 1), k) << "2^" << k << "-1";
        EXPECT_EQ(obs::histBucket(pow + 1), k + 1) << "2^" << k << "+1";
    }
    EXPECT_EQ(obs::histBucket(~0ull), 64u);

    // Bounds are consistent with the bucket function.
    for (unsigned i = 0; i < obs::kHistBuckets; ++i) {
        EXPECT_EQ(obs::histBucket(obs::histBucketLow(i)), i);
        EXPECT_EQ(obs::histBucket(obs::histBucketHigh(i)), i);
    }
}

TEST(Histogram, SnapshotStatsAndMerge)
{
    obs::StatRegistry reg;
    obs::Histogram h = reg.histogram("lat");
    h.sample(0);
    h.sample(1);
    h.sample(7);
    auto snap = reg.histograms().at("lat");
    EXPECT_EQ(snap.count, 3u);
    EXPECT_EQ(snap.sum, 8u);
    EXPECT_EQ(snap.max, 7u);
    EXPECT_DOUBLE_EQ(snap.mean(), 8.0 / 3.0);

    obs::HistogramSnapshot merged;
    merged.merge(snap);
    merged.merge(snap);
    EXPECT_EQ(merged.count, 6u);
    EXPECT_EQ(merged.sum, 16u);
    EXPECT_EQ(merged.max, 7u);
}

// -------------------------------------------------------------------- json

TEST(Json, ParseRoundTripsBasicDocument)
{
    const char *text =
        R"({"a": 1, "b": [true, null, "x\n\"y\""], "c": {"d": 2.5}})";
    auto parsed = obs::JsonValue::parse(text);
    ASSERT_TRUE(parsed.has_value());
    auto reparsed = obs::JsonValue::parse(parsed->dump());
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(*parsed, *reparsed);
    EXPECT_EQ(parsed->find("a")->asUint(), 1u);
    EXPECT_EQ(parsed->find("b")->items().size(), 3u);
}

TEST(Json, Uint64RoundTripsExactly)
{
    obs::JsonValue v = obs::JsonValue::object();
    v["big"] = std::uint64_t{18446744073709551615ull};
    auto parsed = obs::JsonValue::parse(v.dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("big")->asUint(), 18446744073709551615ull);
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_FALSE(obs::JsonValue::parse("{").has_value());
    EXPECT_FALSE(obs::JsonValue::parse("[1,]").has_value());
    EXPECT_FALSE(obs::JsonValue::parse("\"unterminated").has_value());
    EXPECT_FALSE(obs::JsonValue::parse("{\"a\":1} trailing").has_value());
}

TEST(Json, RunResultRoundTrips)
{
    sim::RunResult res;
    res.workload = "Web (Apache)";
    res.design = "SN4L+Dis+BTB";
    res.cycles = 60000;
    res.instructions = 54321;
    res.stats["l1i.l1i_misses"] = 1234;
    res.stats["sim.stall_frontend"] = 999;
    obs::HistogramSnapshot snap;
    snap.count = 3;
    snap.sum = 8;
    snap.max = 7;
    snap.buckets = {{0, 1}, {1, 1}, {3, 1}};
    res.hists["l1i.miss_latency"] = snap;

    auto json = sim::toJson(res);
    auto parsed = obs::JsonValue::parse(json.dump(2));
    ASSERT_TRUE(parsed.has_value());
    auto back = sim::runResultFromJson(*parsed);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, res);
}

TEST(Json, TableJsonMatchesTextCells)
{
    sim::Table table({"workload", "metric"});
    table.addRow({"Web (Apache)", sim::Table::pct(0.123456)});
    auto json = table.toJson("t");
    const auto &rows = json.find("rows")->items();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].find("metric")->asString(), "12.3%");
}

// ------------------------------------------------------------------- trace

sim::SystemConfig
traceTestConfig()
{
    auto cfg = sim::makeConfig(workload::serverProfile("Web (Apache)"),
                               sim::Preset::SN4LDisBtb);
    cfg.functionalWarmInstrs = 200000;
    return cfg;
}

TEST(Trace, OnOffParityOfFinalCounters)
{
    sim::RunWindows windows{20000, 30000};

    ASSERT_FALSE(obs::Tracing::sinkOpen());
    auto off = sim::simulate(traceTestConfig(), windows);

    std::string path = ::testing::TempDir() + "dcfb_trace_parity.jsonl";
    ASSERT_TRUE(obs::Tracing::open(path));
    auto on = sim::simulate(traceTestConfig(), windows);
    obs::Tracing::close();
    ASSERT_FALSE(obs::Tracing::sinkOpen());

    // Tracing must be purely observational: identical counters,
    // histograms, and derived metrics with the sink on or off.
    EXPECT_EQ(on, off);

    // The stream itself must be valid JSONL with the expected fields.
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::size_t records = 0, misses = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        auto v = obs::JsonValue::parse(line);
        ASSERT_TRUE(v.has_value()) << line;
        ++records;
        if (const auto *cls = v->find("class")) {
            ++misses;
            std::string c = cls->asString();
            EXPECT_TRUE(c == "seq" || c == "disc" || c == "btb" || c == "-")
                << c;
            ASSERT_NE(v->find("outcome"), nullptr);
            ASSERT_NE(v->find("cycle"), nullptr);
        }
    }
    EXPECT_GT(records, 0u);
    EXPECT_GT(misses, 0u);
    std::remove(path.c_str());
}

TEST(Trace, ChromeFormatIsValidJson)
{
    std::string path = ::testing::TempDir() + "dcfb_trace_chrome.json";
    ASSERT_TRUE(obs::Tracing::open(path));
    auto res = sim::simulate(traceTestConfig(), sim::RunWindows{5000, 10000});
    obs::Tracing::close();
    EXPECT_GT(res.instructions, 0u);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream buf;
    buf << in.rdbuf();
    auto v = obs::JsonValue::parse(buf.str());
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->kind(), obs::JsonValue::Kind::Array);
    EXPECT_GT(v->items().size(), 0u);
    std::remove(path.c_str());
}

TEST(Trace, BoundedStreamCountsDrops)
{
    std::string path = ::testing::TempDir() + "dcfb_trace_bounded.jsonl";
    obs::Tracing::Config cfg;
    cfg.path = path;
    cfg.maxEvents = 10;
    ASSERT_TRUE(obs::Tracing::open(cfg));
    sim::simulate(traceTestConfig(), sim::RunWindows{5000, 10000});
    EXPECT_LE(obs::Tracing::emitted(), 10u);
    EXPECT_GT(obs::Tracing::dropped(), 0u);
    obs::Tracing::close();
    std::remove(path.c_str());
}

// ------------------------------------------------------------------- spans

TEST(Spans, DisabledSinkIsNoOp)
{
    ASSERT_FALSE(obs::Spans::enabled());
    {
        obs::SpanScope outer("test.outer");
        obs::SpanScope inner("test.inner", "label");
        // Disabled scopes mint no IDs and set no ambient context.
        EXPECT_EQ(outer.spanId(), 0u);
        EXPECT_EQ(inner.spanId(), 0u);
        EXPECT_EQ(obs::Spans::current().trace, 0u);
    }
    EXPECT_EQ(obs::Spans::recorded(), 0u);
}

TEST(Spans, ScopesNestAndExportChromeTimeline)
{
    std::string path = ::testing::TempDir() + "dcfb_spans_nest.json";
    ASSERT_TRUE(obs::Spans::open(path));
    ASSERT_TRUE(obs::Spans::enabled());

    std::uint64_t outer_trace = 0;
    std::uint64_t outer_span = 0;
    {
        obs::SpanScope outer("test.outer", "cell-0");
        outer_trace = outer.traceId();
        outer_span = outer.spanId();
        ASSERT_NE(outer_trace, 0u);
        // Ambient context is the live scope.
        EXPECT_EQ(obs::Spans::current().trace, outer_trace);
        EXPECT_EQ(obs::Spans::current().span, outer_span);
        {
            obs::SpanScope inner("test.inner");
            // Nested scope joins the ambient trace.
            EXPECT_EQ(inner.traceId(), outer_trace);
            EXPECT_NE(inner.spanId(), outer_span);
        }
        // Inner scope restored the ambient pair on destruction.
        EXPECT_EQ(obs::Spans::current().span, outer_span);
    }
    EXPECT_EQ(obs::Spans::current().trace, 0u);

    // A second thread re-rooted under the outer IDs lands in the same
    // trace on its own track (the cross-thread stitching pattern).
    std::thread worker([&] {
        obs::Spans::setThreadName("test-worker");
        obs::SpanScope cross("test.cross", outer_trace, outer_span);
        EXPECT_EQ(cross.traceId(), outer_trace);
    });
    worker.join();

    EXPECT_EQ(obs::Spans::recorded(), 3u);
    EXPECT_EQ(obs::Spans::dropped(), 0u);
    obs::Spans::close();
    ASSERT_FALSE(obs::Spans::enabled());

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream buf;
    buf << in.rdbuf();
    auto doc = obs::JsonValue::parse(buf.str());
    ASSERT_TRUE(doc.has_value());
    ASSERT_EQ(doc->kind(), obs::JsonValue::Kind::Array);

    // Index the "X" events by span ID and verify every parent resolves
    // (no orphans) and the cross-thread span is on a named track.
    std::map<std::string, const obs::JsonValue *> by_span;
    std::set<std::string> thread_names;
    for (const auto &ev : doc->items()) {
        const obs::JsonValue *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->asString() == "M" &&
            ev.find("name")->asString() == "thread_name") {
            thread_names.insert(
                ev.find("args")->find("name")->asString());
        }
        if (ph->asString() != "X")
            continue;
        by_span[ev.find("args")->find("span")->asString()] = &ev;
    }
    EXPECT_EQ(by_span.size(), 3u);
    EXPECT_TRUE(thread_names.count("test-worker"));
    for (const auto &kv : by_span) {
        const obs::JsonValue *parent = kv.second->find("args")->find(
            "parent");
        if (parent)
            EXPECT_TRUE(by_span.count(parent->asString()))
                << "orphaned parent " << parent->asString();
    }
    std::remove(path.c_str());
}

TEST(Spans, BoundedBufferCountsDrops)
{
    std::string path = ::testing::TempDir() + "dcfb_spans_bounded.json";
    obs::Spans::Config cfg;
    cfg.path = path;
    cfg.maxPerThread = 4;
    ASSERT_TRUE(obs::Spans::open(cfg));
    for (int i = 0; i < 10; ++i)
        obs::SpanScope scope("test.burst");
    EXPECT_EQ(obs::Spans::recorded(), 4u);
    EXPECT_EQ(obs::Spans::dropped(), 6u);
    obs::Spans::close();
    std::remove(path.c_str());
}

// -------------------------------------------------------------- prometheus

TEST(Prometheus, NameSanitization)
{
    EXPECT_EQ(obs::promName("svc.op.submit.latency_us"),
              "svc_op_submit_latency_us");
    EXPECT_EQ(obs::promName("already_fine:ok"), "already_fine:ok");
    EXPECT_EQ(obs::promName("9starts_with_digit"), "_9starts_with_digit");
    EXPECT_EQ(obs::promName(""), "_");
}

TEST(Prometheus, CounterAndGaugeRender)
{
    std::string out;
    obs::promCounter(out, "dcfb_svc_submitted_total", 42);
    obs::promGauge(out, "dcfb_queue_depth", 3.5);
    EXPECT_NE(out.find("# TYPE dcfb_svc_submitted_total counter\n"),
              std::string::npos);
    EXPECT_NE(out.find("dcfb_svc_submitted_total 42\n"),
              std::string::npos);
    EXPECT_NE(out.find("# TYPE dcfb_queue_depth gauge\n"),
              std::string::npos);
    EXPECT_NE(out.find("dcfb_queue_depth 3.5\n"), std::string::npos);
}

TEST(Prometheus, HistogramBucketsAreCumulativeAndEndAtInf)
{
    obs::StatRegistry reg;
    obs::Histogram h = reg.histogram("lat");
    for (std::uint64_t v : {0ull, 1ull, 5ull, 9ull, 1000ull})
        h.sample(v);
    auto snap = reg.histograms().at("lat");

    std::string out;
    obs::promHistogram(out, "dcfb_lat", snap);
    EXPECT_NE(out.find("# TYPE dcfb_lat histogram\n"), std::string::npos);
    EXPECT_NE(out.find("dcfb_lat_bucket{le=\"+Inf\"} 5\n"),
              std::string::npos);
    EXPECT_NE(out.find("dcfb_lat_sum 1015\n"), std::string::npos);
    EXPECT_NE(out.find("dcfb_lat_count 5\n"), std::string::npos);

    // Bucket samples must be cumulative: monotone non-decreasing in
    // line order, with the last finite bucket equal to the count.
    std::uint64_t prev = 0;
    std::uint64_t last = 0;
    std::size_t pos = 0;
    while ((pos = out.find("dcfb_lat_bucket{le=\"", pos)) !=
           std::string::npos) {
        std::size_t sp = out.find("} ", pos);
        ASSERT_NE(sp, std::string::npos);
        std::uint64_t v = std::strtoull(out.c_str() + sp + 2, nullptr, 10);
        EXPECT_GE(v, prev);
        prev = v;
        last = v;
        pos = sp;
    }
    EXPECT_EQ(last, snap.count);
}

// -------------------------------------------------------------- timeseries

TEST(Timeseries, RingEvictsOldestAndSerializes)
{
    obs::Timeseries ts(4);
    EXPECT_EQ(ts.addSeries("a"), 0u);
    EXPECT_EQ(ts.addSeries("b"), 1u);
    for (std::uint64_t i = 0; i < 6; ++i)
        ts.push(i * 100, {static_cast<double>(i)});
    EXPECT_EQ(ts.size(), 4u);

    auto samples = ts.snapshot();
    ASSERT_EQ(samples.size(), 4u);
    // Oldest two evicted; order is arrival order.
    EXPECT_EQ(samples.front().tMs, 200u);
    EXPECT_EQ(samples.back().tMs, 500u);
    // Missing trailing values read as zero.
    ASSERT_EQ(samples.front().values.size(), 2u);
    EXPECT_EQ(samples.front().values[1], 0.0);

    obs::JsonValue doc = ts.toJson();
    ASSERT_EQ(doc.find("names")->items().size(), 2u);
    ASSERT_EQ(doc.find("samples")->items().size(), 4u);
    EXPECT_EQ(doc.find("samples")->items()[0].find("t_ms")->asUint(),
              200u);
}

// ---------------------------------------------------------------- profiler

TEST(Profiler, ProfJsonSchemaStableUnderJobs4)
{
    obs::Profiler::drain(); // discard records from earlier tests
    obs::Profiler::setEnabled(true);

    // Four cells run on four workers; the JSON section must come out
    // sorted and schema-complete regardless of completion order.
    struct CellSpec
    {
        const char *workload;
        sim::Preset preset;
    };
    const CellSpec cells[] = {
        {"Web (Apache)", sim::Preset::Baseline},
        {"Web (Apache)", sim::Preset::SN4L},
        {"Web Frontend", sim::Preset::Baseline},
        {"Web Frontend", sim::Preset::SN4L},
    };
    exec::parallelFor(4, 4, [&](std::size_t i) {
        auto cfg = sim::makeConfig(
            workload::serverProfile(cells[i].workload), cells[i].preset);
        cfg.functionalWarmInstrs = 40000;
        sim::simulate(cfg, sim::RunWindows{4000, 6000});
    });
    obs::Profiler::setEnabled(false);

    obs::JsonValue prof = obs::profJson(obs::Profiler::drain());
    EXPECT_EQ(prof.find("schema")->asString(), "dcfb-prof-v1");
    const auto &rows = prof.find("cells")->items();
    ASSERT_EQ(rows.size(), 4u);

    std::string prev_key;
    for (const auto &cell : rows) {
        for (const char *key :
             {"workload", "design", "cycles", "instructions", "setup_s",
              "warm_s", "measure_s", "sim_s", "cycles_per_sec",
              "phase_s"}) {
            EXPECT_NE(cell.find(key), nullptr) << "missing " << key;
        }
        // Deterministic order: sorted by (workload, design).
        std::string key = cell.find("workload")->asString() + "\x01" +
            cell.find("design")->asString();
        EXPECT_GE(key, prev_key);
        prev_key = key;

        // Phase attribution must roughly tile the simulated walls: the
        // phases cover the warm+measure cycle loops, so their sum is
        // positive and bounded by the total simulation wall.
        double phase_sum = 0.0;
        for (const auto &kv : cell.find("phase_s")->members())
            phase_sum += kv.second.asDouble();
        double sim_s = cell.find("sim_s")->asDouble();
        EXPECT_GT(phase_sum, 0.0);
        EXPECT_LE(phase_sum, sim_s * 1.5 + 1e-3);
    }
}

} // namespace
} // namespace dcfb
