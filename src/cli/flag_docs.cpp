#include "cli/flag_docs.h"

#include <sstream>

#include "svc/client.h"
#include "svc/coordinator.h"
#include "svc/server.h"

namespace dcfb::cli {

namespace {

std::string
num(std::uint64_t v)
{
    return std::to_string(v);
}

/** The tables are built once; defaults that exist as struct initializers
 *  (ServerConfig, RetryPolicy) are rendered from a default-constructed
 *  instance so this file cannot drift from the code. */
std::vector<BinaryDoc>
buildDocs()
{
    std::vector<BinaryDoc> docs;

    // -- shared bench harness --------------------------------------------
    BinaryDoc bench;
    bench.binary = "bench harnesses";
    bench.synopsis =
        "fig01_footprint_miss … fig19_competitors, tab01_empty_ftq, "
        "tab02_storage, sec7j_dvllc [flags]";
    bench.description =
        "Every per-figure bench binary routes its arguments through "
        "`bench::Harness` (bench/bench_common.h) and accepts the same "
        "flag set.  With no flags a bench prints its text tables and is "
        "bit-identical to the historical serial runner.";
    bench.flags = {
        {"--json", "<file>", "",
         "also write every reported table plus recorded scalars as one "
         "dcfb-bench-v1 JSON document", false},
        {"--trace", "<file>", "",
         "stream miss-attribution events from every simulated run "
         "(*.jsonl -> JSONL, else Chrome trace-event format)", false},
        {"--trace-spans", "<file>", "",
         "write a span timeline (Chrome trace-event JSON) of the whole "
         "process: one exec.cell span per simulated cell", false},
        {"--inject", "<spec>", "off",
         "seeded fault injection applied to every run, e.g. "
         "drop:rate=0.5,seed=3 (README \"Robustness\")", false},
        {"--jobs", "<n>|auto", "auto",
         "worker threads for experiment sweeps (auto = one per hardware "
         "thread; --jobs 1 reproduces the serial runner bit for bit)",
         false},
        {"--cache", "<dir>", "off",
         "persistent content-addressed result cache; cells already "
         "computed under <dir> are served from it", false},
        {"--profile", "", "off",
         "time every simulated cell (setup/warm/measure wall split plus "
         "per-phase cycle-loop attribution) and emit the records as the "
         "JSON document's \"prof\" section", false},
        {"--generic-step", "", "off",
         "force the generic (virtual-dispatch) System::step path instead "
         "of the preset-specialized one; results are bit-identical "
         "(DESIGN.md section 14), this is a debugging escape hatch",
         false},
    };
    docs.push_back(std::move(bench));

    // -- dcfb-serve ------------------------------------------------------
    svc::ServerConfig sc;
    BinaryDoc serve;
    serve.binary = "dcfb-serve";
    serve.synopsis =
        "dcfb-serve --socket PATH and/or --listen HOST:PORT [flags]";
    serve.description =
        "The experiment service daemon (DESIGN.md section 9).  Listens "
        "on a Unix socket, a TCP endpoint (fleet workers behind a "
        "dcfb-coord, DESIGN.md section 15), or both; at least one is "
        "required.  Runs until SIGTERM/SIGINT, then drains gracefully.  "
        "EXPERIMENTS.md documents the request protocol.";
    serve.flags = {
        {"--socket", "PATH", "off", "Unix-domain socket to bind", false},
        {"--listen", "HOST:PORT", "off",
         "TCP endpoint to bind as well/instead; port 0 picks an "
         "ephemeral port, announced on stderr as \"listening on tcp "
         "port N\"", false},
        {"--jobs", "N", "auto",
         "simulation worker threads (0 or absent = one per hardware "
         "thread)", false},
        {"--queue", "N", num(sc.queueCapacity),
         "admission bound: jobs queued before submits are rejected with "
         "a retry hint", false},
        {"--cache", "DIR", "off",
         "persistent result cache shared with the bench --cache flag",
         false},
        {"--warm", "N", "150000",
         "default warmup cycles when a submit names none", false},
        {"--measure", "N", "150000",
         "default measured cycles when a submit names none", false},
        {"--retry-after-ms", "N", num(sc.retryAfterMs),
         "backpressure hint returned with admission rejects", false},
        {"--metrics-interval-ms", "N", "1000",
         "gauge sampler period for the metrics ring (0 disables it)",
         false},
        {"--trace-spans", "FILE", "",
         "record every request, queue wait and job run as spans; the "
         "Chrome trace-event timeline is written at exit", false},
        {"--journal", "DIR", "off",
         "keep a write-ahead job journal in DIR and replay incomplete "
         "jobs after a crash (DESIGN.md section 12)", false},
        {"--journal-fsync", "always|rotate|never", "always",
         "journal durability policy", false},
        {"--journal-rotate", "N", num(sc.journalRotateEvery),
         "journal appends per segment before rotation", false},
        {"--lease-ms", "N", num(sc.leaseMs),
         "in-flight lease watchdog period (0 = off); a wedged worker's "
         "job is reclaimed and requeued", false},
        {"--svc-inject", "SPEC", "off",
         "perturb reply frames and durable writes for chaos testing",
         false},
    };
    docs.push_back(std::move(serve));

    // -- dcfb-coord ------------------------------------------------------
    svc::CoordinatorConfig cc;
    BinaryDoc coord;
    coord.binary = "dcfb-coord";
    coord.synopsis =
        "dcfb-coord --worker NAME=ENDPOINT [--worker ...] "
        "--socket PATH and/or --listen HOST:PORT [flags]";
    coord.description =
        "The fleet coordinator (DESIGN.md section 15): shards "
        "experiment grids across N dcfb-serve workers on a "
        "consistent-hash ring keyed by result-cache fingerprints, "
        "streams per-cell dcfb-coord-v1 events and merges a "
        "deterministic dcfb-grid-v1 report.  Repeat cells route to the "
        "worker whose cache holds them, so a warm fleet answers a grid "
        "with zero simulations.  Runs until SIGTERM/SIGINT, then "
        "drains: running grids finish, fleet stats print to stdout, "
        "exit 0.";
    coord.flags = {
        {"--worker", "NAME=ENDPOINT", "",
         "one worker daemon (repeatable; at least one).  NAME is the "
         "stable ring identity, ENDPOINT a Unix-socket path or TCP "
         "host:port; a bare ENDPOINT doubles as the name", true},
        {"--socket", "PATH", "off",
         "Unix-domain socket to serve clients on", false},
        {"--listen", "HOST:PORT", "off",
         "TCP endpoint to serve clients on; port 0 picks an ephemeral "
         "port, announced on stderr", false},
        {"--vnodes", "N", num(cc.vnodes),
         "virtual nodes per worker on the hash ring (more = smoother "
         "spread, slower ring edits)", false},
        {"--warm", "N", "150000",
         "default warmup cycles when a grid names none", false},
        {"--measure", "N", "150000",
         "default measured cycles when a grid names none", false},
        {"--connect-budget-ms", "N", num(cc.connectBudgetMs),
         "retry budget for each worker connection (jittered backoff on "
         "ECONNREFUSED/timeouts)", false},
        {"--recv-timeout-ms", "N", num(cc.recvTimeoutMs),
         "per-reply wait before a worker is declared dead and its "
         "cells are rebalanced", false},
        {"--poll-ms", "N", num(cc.pollMs),
         "fetch poll interval while a shard's cells simulate", false},
        {"--cell-attempts", "N", num(cc.cellAttempts),
         "placements per cell before the grid fails with a typed "
         "error", false},
        {"--trace-spans", "FILE", "",
         "record grid handling as spans; the Chrome trace-event "
         "timeline is written at exit", false},
    };
    docs.push_back(std::move(coord));

    // -- dcfb-client -----------------------------------------------------
    svc::RetryPolicy rp;
    BinaryDoc clientGlobal;
    clientGlobal.binary = "dcfb-client (global flags)";
    clientGlobal.synopsis =
        "dcfb-client --endpoint PATH|HOST:PORT [global flags] COMMAND ...";
    clientGlobal.description =
        "CLI for the experiment daemon (and, for the grid command, the "
        "fleet coordinator).  Commands: submit, grid, status JOB, "
        "fetch JOB, cancel JOB, stats, ping, drain, metrics, raw "
        "'<request json>'.  The reply document is printed to stdout; "
        "exit status is 0 on \"ok\":true, 1 on a daemon error, 2 on "
        "usage/connection problems.";
    clientGlobal.flags = {
        {"--endpoint", "PATH|HOST:PORT", "",
         "daemon to connect to: a Unix-socket path (anything with a "
         "'/' or without a ':') or a TCP host:port", true},
        {"--socket", "PATH|HOST:PORT", "",
         "alias of --endpoint (predates the TCP transport)", false},
        {"--trace-spans", "FILE", "",
         "record the client side of the request as spans and send the "
         "IDs along, so the daemon's timeline stitches through this "
         "invocation", false},
        {"--retry-budget-ms", "N", num(rp.budgetMs),
         "cumulative cap on time `submit --wait` spends sleeping on "
         "failures (0 = unbounded)", false},
        {"--recv-timeout-ms", "N", num(rp.recvTimeoutMs),
         "bound each reply wait so a dropped frame surfaces as a "
         "retryable error instead of a hang (0 = block indefinitely)",
         false},
    };
    docs.push_back(std::move(clientGlobal));

    BinaryDoc submit;
    submit.binary = "dcfb-client submit";
    submit.synopsis =
        "dcfb-client --socket PATH submit --workload NAME --preset NAME "
        "[flags]";
    submit.description = "Submit one simulation job to the daemon.";
    submit.flags = {
        {"--workload", "NAME", "", "server workload name", true},
        {"--preset", "NAME", "", "design preset name", true},
        {"--warm", "N", "daemon default", "warmup cycles", false},
        {"--measure", "N", "daemon default", "measured cycles", false},
        {"--seed", "N", "42", "trace-walk seed (\"checkpoint\")", false},
        {"--inject", "SPEC", "off", "seeded fault-injection spec", false},
        {"--deadline-ms", "N", "none",
         "cancel the job if it has not finished in N ms", false},
        {"--wait", "", "off",
         "retry admission rejects with the daemon's retry_after_ms hint "
         "and block until the result is available", false},
    };
    docs.push_back(std::move(submit));

    BinaryDoc grid;
    grid.binary = "dcfb-client grid";
    grid.synopsis =
        "dcfb-client --endpoint HOST:PORT|PATH grid [flags]";
    grid.description =
        "Run an experiment grid through a dcfb-coord coordinator: the "
        "streamed per-cell events go to stderr as progress, the merged "
        "dcfb-grid-v1 report to stdout (or --out).  With no flags the "
        "full fig16 grid (every server workload x every preset) is "
        "requested.";
    grid.flags = {
        {"--workloads", "A,B,...", "all server workloads",
         "comma-separated workload names", false},
        {"--presets", "A,B,...", "all presets",
         "comma-separated preset names", false},
        {"--warm", "N", "coordinator default", "warmup cycles", false},
        {"--measure", "N", "coordinator default", "measured cycles",
         false},
        {"--seed", "N", "42", "trace-walk seed for every cell", false},
        {"--out", "FILE", "stdout",
         "write the merged report to FILE instead of stdout", false},
    };
    docs.push_back(std::move(grid));

    BinaryDoc metrics;
    metrics.binary = "dcfb-client metrics";
    metrics.synopsis =
        "dcfb-client --socket PATH metrics [--watch] [--interval-ms N]";
    metrics.description =
        "Print the daemon's Prometheus exposition body as text.";
    metrics.flags = {
        {"--watch", "", "off",
         "redraw the exposition every interval until interrupted, as a "
         "live top-style view", false},
        {"--interval-ms", "N", "1000", "redraw period under --watch",
         false},
    };
    docs.push_back(std::move(metrics));

    // -- dcfb-golden -----------------------------------------------------
    BinaryDoc golden;
    golden.binary = "dcfb-golden";
    golden.synopsis = "dcfb-golden [OUTDIR]";
    golden.description =
        "Golden-corpus generator: simulates every cell in "
        "tests/golden_cells.h and writes one RunResult JSON per cell.  "
        "Run through scripts/update_golden.py, which refuses to "
        "regenerate over a dirty git tree or a foreign machine context.";
    golden.flags = {
        {"OUTDIR", "", "tests/golden", "output directory", false},
    };
    docs.push_back(std::move(golden));

    return docs;
}

} // namespace

const std::vector<BinaryDoc> &
allBinaryDocs()
{
    static const std::vector<BinaryDoc> docs = buildDocs();
    return docs;
}

const BinaryDoc &
benchHarnessDocs()
{
    return allBinaryDocs().front();
}

std::string
usageLine(const BinaryDoc &doc)
{
    std::ostringstream out;
    bool first = true;
    for (const auto &f : doc.flags) {
        if (!first)
            out << ' ';
        first = false;
        if (!f.required)
            out << '[';
        out << f.name;
        if (!f.arg.empty())
            out << ' ' << f.arg;
        if (!f.required)
            out << ']';
    }
    return out.str();
}

namespace {

/** Escape '|' so metavariables like `<n>|auto` survive table cells. */
std::string
cell(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '|')
            out += "\\|";
        else
            out += c;
    }
    return out;
}

} // namespace

std::string
flagsMarkdown()
{
    std::ostringstream out;
    out << "# Command-line reference\n"
        << "\n"
        << "<!-- Generated by dcfb-docgen; do not edit by hand.\n"
        << "     Regenerate: build/bin/dcfb-docgen --out docs/FLAGS.md\n"
        << "     CI checks:  build/bin/dcfb-docgen --check docs/FLAGS.md "
           "-->\n"
        << "\n"
        << "Every flag of every user-facing binary, rendered from the "
           "tables in\n"
        << "`src/cli/flag_docs.cpp` — the same tables the binaries' own "
           "`--help`\n"
        << "output comes from.  See `docs/SCHEMAS.md` for the JSON "
           "documents the\n"
        << "`--json` flags emit.\n";
    for (const auto &doc : allBinaryDocs()) {
        out << "\n## " << doc.binary << "\n\n"
            << "```\n" << doc.synopsis << "\n```\n\n"
            << doc.description << "\n\n"
            << "| Flag | Argument | Default | Description |\n"
            << "|---|---|---|---|\n";
        for (const auto &f : doc.flags) {
            std::string name = f.name;
            if (f.required)
                name += " (required)";
            out << "| `" << cell(name) << "` | "
                << (f.arg.empty() ? "—" : "`" + cell(f.arg) + "`")
                << " | "
                << (f.def.empty() ? "—" : "`" + cell(f.def) + "`")
                << " | " << cell(f.help) << " |\n";
        }
    }
    return out.str();
}

} // namespace dcfb::cli
