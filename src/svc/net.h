/**
 * @file
 * Transport plumbing shared by the service daemon, the client and the
 * coordinator: length-robust NDJSON line framing and the Unix/TCP
 * endpoint helpers behind `--listen` / `--endpoint`.
 *
 * Framing.  The dcfb-svc-v1 and dcfb-coord-v1 protocols are one JSON
 * document per '\n'-terminated line, but TCP gives no alignment
 * guarantees: a recv() may return one byte of a line or three lines
 * and a half.  `LineFramer` owns the reassembly — feed() appends raw
 * bytes, next() pops complete lines — with a tracked scan offset so a
 * line arriving one byte at a time costs O(n), not O(n^2) rescans, and
 * a hard cap on the unterminated-line length so a peer streaming
 * garbage without a newline cannot grow the buffer unbounded.  Lines
 * well past 64 KiB (a grid report) reassemble fine; the cap defaults
 * to 64 MiB.
 *
 * Endpoints.  One string names either transport: anything containing a
 * '/' (or lacking a ':') is a Unix-socket path, `host:port` is TCP.
 * `dcfb-serve --listen 127.0.0.1:0` binds an ephemeral port;
 * tcpListen() reports the resolved port back so scripts and tests can
 * discover it (the daemon prints it on stderr).  TCP sockets get
 * TCP_NODELAY — the protocol is strictly request/reply and Nagle would
 * add 40 ms stalls to every round-trip.
 *
 * `Listener` is the small accept-loop harness the coordinator builds
 * on (the Server keeps its own richer loop): it binds a Unix and/or a
 * TCP endpoint, runs one thread per connection, frames lines with
 * LineFramer and hands each to a handler that may write any number of
 * reply frames — which is what lets the coordinator stream per-cell
 * grid events over a single connection.
 */

#ifndef DCFB_SVC_NET_H
#define DCFB_SVC_NET_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>

#include "rt/error.h"

namespace dcfb::svc {

/** Reassembles '\n'-delimited lines from arbitrarily-split reads. */
class LineFramer
{
  public:
    /** Default cap on one unterminated line (64 MiB). */
    static constexpr std::size_t kDefaultMaxLine = 64u << 20;

    explicit LineFramer(std::size_t max_line = kDefaultMaxLine)
        : maxLine(max_line)
    {
    }

    /** Append @p len raw bytes; fails when the (still unterminated)
     *  current line would exceed the cap. */
    rt::Expected<void> feed(const char *data, std::size_t len);

    /** Pop the next complete line (newline stripped), if any. */
    std::optional<std::string> next();

    /** Bytes buffered past the last complete line. */
    std::size_t buffered() const { return buf.size(); }

    /** Drop buffered bytes (a reconnect invalidates half a line). */
    void reset()
    {
        buf.clear();
        scan = 0;
    }

  private:
    std::string buf;
    std::size_t scan = 0; //!< no '\n' in buf[0, scan)
    std::size_t maxLine;
};

/** True when @p endpoint names a TCP `host:port`, false for a
 *  Unix-socket path.  A '/' anywhere (or no ':') means a path, so
 *  relative socket paths like `dcfb.sock` keep working. */
bool isTcpEndpoint(const std::string &endpoint);

/** Split a TCP endpoint into host and port (both non-empty). */
rt::Expected<std::pair<std::string, std::string>>
splitHostPort(const std::string &endpoint);

/** Bind + listen on TCP @p endpoint (`host:port`; port 0 = ephemeral).
 *  Returns the listening fd; @p bound_port receives the resolved
 *  port. */
rt::Expected<int> tcpListen(const std::string &endpoint,
                            std::uint16_t *bound_port);

/** Connect to TCP @p endpoint; returns the connected fd (NODELAY on). */
rt::Expected<int> tcpConnect(const std::string &endpoint);

/** Bind + listen on Unix-socket @p path (unlinks a stale file). */
rt::Expected<int> unixListen(const std::string &path);

/** Connect to Unix-socket @p path. */
rt::Expected<int> unixConnect(const std::string &path);

/**
 * Minimal line-oriented socket server: one accept loop over an
 * optional Unix and an optional TCP listening socket, one detached
 * thread per connection.  The handler receives each complete request
 * line plus a `write` callback that sends one reply frame (the
 * trailing '\n' is appended); it may call `write` any number of times
 * per line — zero (swallow), one (request/reply) or many (streaming).
 */
class Listener
{
  public:
    using WriteFn = std::function<bool(const std::string &frame)>;
    using HandlerFn =
        std::function<void(const std::string &line, const WriteFn &write)>;

    Listener() = default;
    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /** Bind @p unix_path and/or @p tcp_endpoint (either may be empty,
     *  not both) and start accepting. */
    rt::Expected<void> start(const std::string &unix_path,
                             const std::string &tcp_endpoint,
                             HandlerFn handler);

    /** Stop accepting, wait for in-flight connections, close+unlink. */
    void shutdown();

    /** Resolved TCP port (0 when no TCP endpoint was bound). */
    std::uint16_t tcpPort() const { return boundPort; }

  private:
    void acceptLoop();
    void handleConnection(int fd);

    HandlerFn handler;
    std::string unixPath;
    int unixFd = -1;
    int tcpFd = -1;
    std::uint16_t boundPort = 0;
    std::thread acceptThread;
    std::atomic<bool> stopFlag{false};
    std::mutex mutex;
    std::condition_variable connectionsIdle;
    std::uint64_t activeConnections = 0;
    std::set<int> connectionFds; //!< open handler sockets
    bool started = false;
};

} // namespace dcfb::svc

#endif // DCFB_SVC_NET_H
