/**
 * @file
 * Tests for the frontend substrate: TAGE learning behaviour, RAS,
 * conventional/basic-block/Shotgun BTBs, FTQ, and the backend model.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/backend.h"
#include "frontend/bb_btb.h"
#include "frontend/btb.h"
#include "frontend/ftq.h"
#include "frontend/ras.h"
#include "frontend/shotgun_btb.h"
#include "frontend/tage.h"

namespace dcfb::frontend {
namespace {

TEST(Tage, LearnsAlwaysTaken)
{
    Tage tage;
    Addr pc = 0x40010;
    for (int i = 0; i < 64; ++i) {
        tage.predict(pc);
        tage.update(pc, true);
    }
    EXPECT_TRUE(tage.predict(pc));
}

TEST(Tage, LearnsAlwaysNotTaken)
{
    Tage tage;
    Addr pc = 0x40020;
    for (int i = 0; i < 64; ++i) {
        tage.predict(pc);
        tage.update(pc, false);
    }
    EXPECT_FALSE(tage.predict(pc));
}

TEST(Tage, LearnsAlternatingViaHistory)
{
    // A strict alternation is trivially history-predictable: after
    // warmup TAGE must do far better than 50 %.
    Tage tage;
    Addr pc = 0x40030;
    bool outcome = false;
    for (int i = 0; i < 512; ++i) {
        tage.predict(pc);
        tage.update(pc, outcome);
        outcome = !outcome;
    }
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        bool p = tage.predict(pc);
        correct += p == outcome;
        tage.update(pc, outcome);
        outcome = !outcome;
    }
    EXPECT_GT(correct, 180);
}

TEST(Tage, LearnsShortPeriodicPattern)
{
    Tage tage;
    Addr pc = 0x40040;
    auto pattern = [](int i) { return i % 5 != 0; }; // TTTTN repeating
    for (int i = 0; i < 2000; ++i) {
        tage.predict(pc);
        tage.update(pc, pattern(i));
    }
    int correct = 0;
    for (int i = 2000; i < 2400; ++i) {
        correct += tage.predict(pc) == pattern(i);
        tage.update(pc, pattern(i));
    }
    EXPECT_GT(correct, 360); // > 90 %
}

TEST(Tage, BiasedBranchAccuracyBeatsBias)
{
    // 90 %-taken random branch: accuracy should approach 90 %.
    Tage tage;
    Rng rng(5);
    Addr pc = 0x40050;
    int correct = 0, n = 4000;
    for (int i = 0; i < n; ++i) {
        bool actual = rng.chance(0.9);
        correct += tage.predict(pc) == actual;
        tage.update(pc, actual);
    }
    EXPECT_GT(correct, n * 80 / 100);
}

TEST(Tage, TracksManyBranches)
{
    Tage tage;
    // 64 branches with alternating fixed biases.
    for (int round = 0; round < 40; ++round) {
        for (int b = 0; b < 64; ++b) {
            Addr pc = 0x50000 + Addr{static_cast<unsigned>(b)} * 8;
            bool dir = (b & 1) != 0;
            tage.predict(pc);
            tage.update(pc, dir);
        }
    }
    int correct = 0;
    for (int b = 0; b < 64; ++b) {
        Addr pc = 0x50000 + Addr{static_cast<unsigned>(b)} * 8;
        correct += tage.predict(pc) == ((b & 1) != 0);
        tage.update(pc, (b & 1) != 0);
    }
    EXPECT_GT(correct, 58);
}

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(4);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), kInvalidAddr);
}

TEST(Ras, OverflowClobbersOldest)
{
    ReturnAddressStack ras(2);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300); // clobbers 0x100
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    // 0x100 was overwritten; the stack wrapped.
    EXPECT_EQ(ras.size(), 0u);
}

TEST(Ras, PeekDoesNotPop)
{
    ReturnAddressStack ras(4);
    ras.push(0xabc);
    EXPECT_EQ(ras.peek(), 0xabcu);
    EXPECT_EQ(ras.size(), 1u);
}

TEST(Btb, MissThenHitAfterUpdate)
{
    Btb btb(2048, 4);
    EXPECT_EQ(btb.lookup(0x40000), nullptr);
    btb.update(0x40000, 0x41000, isa::InstrKind::Jump);
    const BtbEntry *e = btb.lookup(0x40000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->target, 0x41000u);
    EXPECT_EQ(e->kind, isa::InstrKind::Jump);
    EXPECT_EQ(btb.stats().get("btb_misses"), 1u);
    EXPECT_EQ(btb.stats().get("btb_hits"), 1u);
}

TEST(Btb, CapacityEviction)
{
    Btb btb(64, 4); // 16 sets
    // Fill one set (same set index, different tags) beyond capacity.
    for (unsigned i = 0; i < 8; ++i)
        btb.update(0x40000 + Addr{i} * 64 * 4, 0x1000, isa::InstrKind::Call);
    unsigned present = 0;
    for (unsigned i = 0; i < 8; ++i)
        present += btb.contains(0x40000 + Addr{i} * 64 * 4);
    EXPECT_LE(present, 4u);
}

TEST(Btb, DistinctInstructionAddressesDistinctEntries)
{
    Btb btb(2048, 4);
    btb.update(0x40000, 0x1, isa::InstrKind::Jump);
    btb.update(0x40004, 0x2, isa::InstrKind::Call);
    EXPECT_EQ(btb.lookup(0x40000)->target, 0x1u);
    EXPECT_EQ(btb.lookup(0x40004)->target, 0x2u);
}

TEST(BbBtb, RoundTrip)
{
    BbBtb bb(2048, 4);
    BbBtbEntry e;
    e.sizeBytes = 40;
    e.branchOffset = 36;
    e.kind = isa::InstrKind::CondBranch;
    e.target = 0x42000;
    bb.update(0x40000, e);
    const BbBtbEntry *got = bb.lookup(0x40000);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->sizeBytes, 40u);
    EXPECT_EQ(got->target, 0x42000u);
    EXPECT_EQ(bb.lookup(0x99999), nullptr);
}

TEST(ShotgunBtb, UBtbFootprintLifecycle)
{
    ShotgunBtb sg;
    // Retired-stream install: entry present, footprint valid once set.
    auto &e = sg.updateU(0x40000, 0x50000, isa::InstrKind::Call,
                         /*from_prefill=*/false);
    e.callFootprint = 0b101;
    e.callFpValid = true;
    UBtbEntry *hit = sg.lookupU(0x40000);
    ASSERT_NE(hit, nullptr);
    EXPECT_TRUE(hit->callFpValid);
    EXPECT_EQ(sg.stats().get("ubtb_footprint_misses"), 0u);
}

TEST(ShotgunBtb, PrefillRestoresTargetNotFootprint)
{
    ShotgunBtb sg;
    auto &e = sg.updateU(0x40000, 0x50000, isa::InstrKind::Jump,
                         /*from_prefill=*/true);
    EXPECT_FALSE(e.callFpValid);
    sg.lookupU(0x40000);
    // A lookup that hits but has no footprint is a footprint miss
    // (Fig. 1's metric).
    EXPECT_EQ(sg.stats().get("ubtb_hits"), 1u);
    EXPECT_EQ(sg.stats().get("ubtb_footprint_misses"), 1u);
}

TEST(ShotgunBtb, UBtbMissCountsFootprintMiss)
{
    ShotgunBtb sg;
    EXPECT_EQ(sg.lookupU(0x123456 & ~3ull), nullptr);
    EXPECT_EQ(sg.stats().get("ubtb_misses"), 1u);
    EXPECT_EQ(sg.stats().get("ubtb_footprint_misses"), 1u);
}

TEST(ShotgunBtb, CBtbAndRib)
{
    ShotgunBtb sg;
    EXPECT_EQ(sg.lookupC(0x40010), nullptr);
    sg.updateC(0x40010, 0x40400);
    ASSERT_NE(sg.lookupC(0x40010), nullptr);
    EXPECT_EQ(sg.lookupC(0x40010)->target, 0x40400u);

    EXPECT_FALSE(sg.lookupRib(0x40020));
    sg.updateRib(0x40020);
    EXPECT_TRUE(sg.lookupRib(0x40020));
}

TEST(ShotgunBtb, CBtbIsTiny)
{
    ShotgunBtb sg;
    // 128-entry C-BTB: 256 distinct conditionals cannot all fit.
    for (unsigned i = 0; i < 256; ++i)
        sg.updateC(0x40000 + Addr{i} * 4, 0x1000);
    unsigned present = 0;
    for (unsigned i = 0; i < 256; ++i)
        present += sg.containsC(0x40000 + Addr{i} * 4);
    EXPECT_LE(present, 128u);
}

TEST(Ftq, BoundedTo32)
{
    Ftq ftq(32);
    for (std::uint64_t i = 0; i < 32; ++i)
        EXPECT_TRUE(ftq.push(FtqEntry{i, i + 1, 0x40000}));
    EXPECT_FALSE(ftq.push(FtqEntry{99, 100, 0}));
    EXPECT_EQ(ftq.front().traceBegin, 0u);
}

} // namespace
} // namespace dcfb::frontend

namespace dcfb::core {
namespace {

TEST(Backend, DispatchWidthLimit)
{
    Backend be;
    be.beginCycle(0);
    int dispatched = 0;
    while (be.canDispatch()) {
        be.dispatch(isa::InstrKind::Alu, 0, 0);
        ++dispatched;
    }
    EXPECT_EQ(dispatched, 3);
}

TEST(Backend, RetiresInOrderAtWidth)
{
    Backend be;
    Cycle t = 0;
    // Fill 9 instructions over 3 cycles.
    for (int c = 0; c < 3; ++c) {
        be.beginCycle(t);
        while (be.canDispatch())
            be.dispatch(isa::InstrKind::Alu, t, 0);
        ++t;
    }
    EXPECT_EQ(be.robOccupancy(), 9u);
    // Let the pipeline drain: 12 + 1 latency.
    for (; t < 40; ++t)
        be.beginCycle(t);
    EXPECT_EQ(be.retired(), 9u);
    EXPECT_TRUE(be.robEmpty());
}

TEST(Backend, RobFillsUnderLongLoad)
{
    Backend be;
    be.beginCycle(0);
    be.dispatch(isa::InstrKind::Load, 0, 100000); // long-latency load
    Cycle t = 1;
    // Keep dispatching ALUs; the ROB must clog at 128 because the load
    // retires first in order.
    while (t < 2000) {
        be.beginCycle(t);
        while (be.canDispatch())
            be.dispatch(isa::InstrKind::Alu, t, 0);
        ++t;
    }
    EXPECT_EQ(be.robOccupancy(), 128u);
    EXPECT_EQ(be.retired(), 0u);
    EXPECT_GT(be.stats().get("rob_full_cycles"), 0u);
}

TEST(Backend, LoadLatencyDelaysRetire)
{
    Backend be;
    be.beginCycle(0);
    be.dispatch(isa::InstrKind::Load, 0, 50);
    for (Cycle t = 1; t <= 49; ++t) {
        be.beginCycle(t);
        EXPECT_EQ(be.retired(), 0u);
    }
    be.beginCycle(50);
    EXPECT_EQ(be.retired(), 1u);
}

} // namespace
} // namespace dcfb::core
