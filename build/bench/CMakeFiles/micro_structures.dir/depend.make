# Empty dependencies file for micro_structures.
# This may be replaced when dependencies are built.
