#include "isa/encoding.h"

#include <cassert>

namespace dcfb::isa {

std::uint32_t
readWord(const std::uint8_t *bytes)
{
    return static_cast<std::uint32_t>(bytes[0]) |
        (static_cast<std::uint32_t>(bytes[1]) << 8) |
        (static_cast<std::uint32_t>(bytes[2]) << 16) |
        (static_cast<std::uint32_t>(bytes[3]) << 24);
}

void
writeWord(std::uint8_t *bytes, std::uint32_t word)
{
    bytes[0] = static_cast<std::uint8_t>(word);
    bytes[1] = static_cast<std::uint8_t>(word >> 8);
    bytes[2] = static_cast<std::uint8_t>(word >> 16);
    bytes[3] = static_cast<std::uint8_t>(word >> 24);
}

std::uint32_t
encodeInstr(Addr pc, const DecodedInstr &instr)
{
    std::uint32_t word = static_cast<std::uint32_t>(instr.kind) & 0xf;
    if (instr.hasTarget) {
        assert(hasEncodedTarget(instr.kind));
        assert(instr.target % kInstrBytes == 0 && pc % kInstrBytes == 0);
        std::int64_t delta =
            (static_cast<std::int64_t>(instr.target) -
             static_cast<std::int64_t>(pc)) / kInstrBytes;
        assert(delta >= -(1 << 23) && delta < (1 << 23));
        word |= static_cast<std::uint32_t>(delta & 0xffffff) << 8;
    }
    return word;
}

DecodedInstr
decodeInstr(Addr pc, std::uint32_t word)
{
    DecodedInstr instr;
    instr.kind = static_cast<InstrKind>(word & 0xf);
    if (hasEncodedTarget(instr.kind)) {
        // Sign-extend the 24-bit instruction-word offset.
        std::int32_t delta = static_cast<std::int32_t>(word) >> 8;
        instr.hasTarget = true;
        instr.target = static_cast<Addr>(
            static_cast<std::int64_t>(pc) +
            static_cast<std::int64_t>(delta) * kInstrBytes);
    }
    return instr;
}

} // namespace dcfb::isa
