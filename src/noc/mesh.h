/**
 * @file
 * 4x4 mesh network-on-chip contention model (Table III).
 *
 * Each hop is a 2-stage speculative router pipeline plus a 1-cycle link
 * traversal (3 cycles at zero load).  Links are modeled with per-link
 * booking: a flit occupies its link for one cycle, so bursts of requests
 * (e.g. an over-aggressive N8L prefetcher, Fig. 5) queue up behind each
 * other.  The other 15 tiles inject background traffic modeled as random
 * extra link occupancy with a configurable utilization, which sets the
 * base LLC round-trip latency and amplifies self-induced queueing.
 */

#ifndef DCFB_NOC_MESH_H
#define DCFB_NOC_MESH_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace dcfb::noc {

/** Mesh configuration. */
struct MeshConfig
{
    unsigned dim = 4;            //!< dim x dim tiles
    unsigned routerCycles = 2;   //!< router pipeline depth
    unsigned linkCycles = 1;     //!< link traversal
    double bgUtilization = 0.20; //!< background load per link (0..1)
    std::uint64_t seed = 99;
};

/**
 * Latency/contention model of a 2D mesh with XY routing.
 */
class MeshModel
{
  public:
    explicit MeshModel(const MeshConfig &config);

    /**
     * Deliver a packet of @p flits flits from tile @p src to tile @p dst,
     * injected at cycle @p now.  Returns the arrival cycle at @p dst and
     * books link occupancy along the route.
     */
    Cycle traverse(unsigned src, unsigned dst, Cycle now, unsigned flits);

    /** Zero-load latency between two tiles (tests, reporting). */
    Cycle zeroLoadLatency(unsigned src, unsigned dst) const;

    /** Manhattan hop count between two tiles. */
    unsigned hops(unsigned src, unsigned dst) const;

    unsigned numTiles() const { return cfg.dim * cfg.dim; }
    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }

  private:
    /** Directions for link indexing. */
    enum Dir { East, West, North, South, NumDirs };

    /** Link bookkeeping: the first cycle the link is free again. */
    std::size_t linkIndex(unsigned tile, Dir dir) const;

    /** Cross one link at or after @p at; returns cycle the tail flit is
     *  across.  Applies background-traffic slowdown. */
    Cycle crossLink(std::size_t link, Cycle at, unsigned flits);

    MeshConfig cfg;
    std::vector<Cycle> linkFree;
    Rng rng;
    StatSet statSet;
};

} // namespace dcfb::noc

#endif // DCFB_NOC_MESH_H
