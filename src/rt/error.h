/**
 * @file
 * Structured runtime errors for the simulation integrity layer.
 *
 * Input loading (config parsing, profile lookup, CFG/trace construction)
 * and the integrity machinery (invariant sweeps, the forward-progress
 * watchdog) report failures as rt::Error: a typed kind, a one-line
 * message, and ordered key/value context that renders into a precise
 * multi-line diagnostic.  Expected<T> carries either a value or an Error
 * through checked call paths; the legacy throwing entry points wrap the
 * checked ones and raise rt::Exception, so a malformed input dies with a
 * diagnostic instead of UB or a bare std::out_of_range.
 */

#ifndef DCFB_RT_ERROR_H
#define DCFB_RT_ERROR_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace dcfb::rt {

/** Failure classes the integrity layer distinguishes. */
enum class ErrorKind : std::uint8_t {
    Config,    //!< malformed configuration / CLI spec (e.g. --inject)
    Workload,  //!< unknown profile or malformed CFG/trace input
    Result,    //!< missing experiment result lookup
    Invariant, //!< a registered structural invariant was violated
    Watchdog,  //!< forward-progress watchdog tripped
    Fault,     //!< fault-injection plan error
};

const char *errorKindName(ErrorKind kind);

/**
 * One structured error: kind + message + ordered context pairs.
 */
struct Error
{
    ErrorKind kind = ErrorKind::Config;
    std::string message;
    std::vector<std::pair<std::string, std::string>> context;

    Error() = default;
    Error(ErrorKind kind_, std::string message_)
        : kind(kind_), message(std::move(message_))
    {
    }

    /** Append a context pair (builder style). */
    Error &&
    with(std::string key, std::string value) &&
    {
        context.emplace_back(std::move(key), std::move(value));
        return std::move(*this);
    }

    Error &
    with(std::string key, std::string value) &
    {
        context.emplace_back(std::move(key), std::move(value));
        return *this;
    }

    /** Numeric convenience overload. */
    Error &&
    with(std::string key, std::uint64_t value) &&
    {
        return std::move(*this).with(std::move(key),
                                     std::to_string(value));
    }

    Error &
    with(std::string key, std::uint64_t value) &
    {
        return with(std::move(key), std::to_string(value));
    }

    /** Multi-line human-readable diagnostic. */
    std::string render() const;
};

/**
 * Exception carrying an rt::Error; what() renders the full diagnostic.
 */
class Exception : public std::runtime_error
{
  public:
    explicit Exception(Error error)
        : std::runtime_error(error.render()), err(std::move(error))
    {
    }

    const Error &error() const { return err; }

  private:
    Error err;
};

/** Throw @p error as an rt::Exception. */
[[noreturn]] inline void
raise(Error error)
{
    throw Exception(std::move(error));
}

/**
 * Value-or-Error result of a checked operation.  value() on an error
 * raises the carried Error (a diagnostic, never UB).
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : store(std::move(value)) {}
    Expected(Error error) : store(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(store); }
    explicit operator bool() const { return ok(); }

    T &
    value()
    {
        if (!ok())
            raise(Error(std::get<Error>(store)));
        return std::get<T>(store);
    }

    const T &
    value() const
    {
        if (!ok())
            raise(Error(std::get<Error>(store)));
        return std::get<T>(store);
    }

    const Error &error() const { return std::get<Error>(store); }

  private:
    std::variant<T, Error> store;
};

/** Expected<void>: success or an Error. */
template <>
class Expected<void>
{
  public:
    Expected() = default;
    Expected(Error error) : err(std::move(error)), failed(true) {}

    bool ok() const { return !failed; }
    explicit operator bool() const { return ok(); }

    void
    value() const
    {
        if (failed)
            raise(Error(err));
    }

    const Error &error() const { return err; }

  private:
    Error err;
    bool failed = false;
};

} // namespace dcfb::rt

#endif // DCFB_RT_ERROR_H
