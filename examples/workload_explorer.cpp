/**
 * @file
 * Workload characterization: footprint, L1i MPKI, sequential-miss
 * fraction, BTB behaviour and stall breakdown for a profile — with
 * optional knob overrides for tuning experiments.
 *
 * Usage: workload_explorer [workload] [numFunctions zipfSkew callSkew]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/simulator.h"
#include "workload/profiles.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;

    std::string name = argc > 1 ? argv[1] : "Web (Apache)";
    auto profile = workload::serverProfile(name);
    if (argc > 4) {
        profile.numFunctions =
            static_cast<std::uint32_t>(std::atoi(argv[2]));
        profile.zipfSkew = std::atof(argv[3]);
        profile.callSkew = std::atof(argv[4]);
    }

    auto program = workload::buildProgram(profile);
    std::printf("%-16s funcs=%u zipf=%.2f call=%.2f code=%zuKB\n",
                name.c_str(), profile.numFunctions, profile.zipfSkew,
                profile.callSkew, program.codeBytes() / 1024);

    auto cfg = sim::makeConfig(profile, sim::Preset::Baseline);
    auto res = sim::simulate(cfg);

    double instrs = static_cast<double>(res.instructions);
    double mpki = 1000.0 * static_cast<double>(res.stat("l1i.l1i_misses")) /
        instrs;
    double btb_mpki = 1000.0 *
        static_cast<double>(res.stat("btb.btb_misses")) / instrs;
    double seq_frac = res.ratio("l1i.l1i_seq_misses", "l1i.l1i_misses");
    std::printf("  ipc=%.3f  L1i MPKI=%.1f  seqFrac=%.0f%%  BTB MPKI=%.1f\n",
                res.ipc(), mpki, seq_frac * 100, btb_mpki);
    std::printf("  stalls: icache=%.0f%% btb=%.0f%% mispred=%.0f%% "
                "backend=%.0f%%\n",
                100.0 * res.stat("sim.stall_icache") / res.cycles,
                100.0 * res.stat("sim.stall_btb") / res.cycles,
                100.0 * res.stat("sim.stall_mispredict") / res.cycles,
                100.0 * res.stat("sim.stall_backend") / res.cycles);
    return 0;
}
