/**
 * @file
 * Microbenchmarks (google-benchmark) of the hot data structures: the
 * prefetcher's metadata tables, the TAGE predictor, the generic cache,
 * and the pre-decoder.  These bound the simulator's own throughput and
 * document the cost of each lookup the paper's Table II argues about.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "frontend/btb.h"
#include "frontend/tage.h"
#include "isa/encoding.h"
#include "isa/predecoder.h"
#include "mem/cache.h"
#include "prefetch/dis_table.h"
#include "prefetch/rlu.h"
#include "prefetch/seq_table.h"
#include "workload/image.h"

namespace {

using namespace dcfb;

void
BM_SeqTableLookup(benchmark::State &state)
{
    prefetch::SeqTable table(16 * 1024);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.statusOfNextFour(rng.below(1 << 20) * kBlockBytes));
    }
}
BENCHMARK(BM_SeqTableLookup);

void
BM_DisTableLookup(benchmark::State &state)
{
    prefetch::DisTable table;
    Rng rng(2);
    for (unsigned i = 0; i < 4096; ++i)
        table.record(rng.below(1 << 20) * kBlockBytes, 9);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.lookup(rng.below(1 << 20) * kBlockBytes));
    }
}
BENCHMARK(BM_DisTableLookup);

void
BM_RluCheck(benchmark::State &state)
{
    prefetch::Rlu rlu(static_cast<std::size_t>(state.range(0)));
    Rng rng(3);
    for (unsigned i = 0; i < 8; ++i)
        rlu.touch(rng.below(256) * kBlockBytes);
    for (auto _ : state)
        benchmark::DoNotOptimize(rlu.contains(rng.below(256) * kBlockBytes));
}
BENCHMARK(BM_RluCheck)->Arg(8)->Arg(16);

void
BM_TagePredictUpdate(benchmark::State &state)
{
    frontend::Tage tage;
    Rng rng(4);
    Addr pc = 0x40000;
    for (auto _ : state) {
        bool taken = rng.chance(0.7);
        benchmark::DoNotOptimize(tage.predict(pc));
        tage.update(pc, taken);
        pc = 0x40000 + (rng.below(1024) << 2);
    }
}
BENCHMARK(BM_TagePredictUpdate);

void
BM_CacheLookup(benchmark::State &state)
{
    auto cache = mem::SetAssocCache<int>::fromBytes(32 * 1024, 8);
    Rng rng(5);
    for (unsigned i = 0; i < 512; ++i)
        cache.insert(rng.below(4096) * kBlockBytes, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.lookup(rng.below(4096) * kBlockBytes, false));
    }
}
BENCHMARK(BM_CacheLookup);

void
BM_BtbLookup(benchmark::State &state)
{
    frontend::Btb btb(static_cast<unsigned>(state.range(0)), 4);
    Rng rng(6);
    for (unsigned i = 0; i < 2048; ++i) {
        btb.update(0x40000 + rng.below(1 << 16) * 4, 0x50000,
                   isa::InstrKind::Jump);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(btb.lookup(0x40000 + rng.below(1 << 16) * 4));
}
BENCHMARK(BM_BtbLookup)->Arg(2048)->Arg(16384);

void
BM_PredecodeBlock(benchmark::State &state)
{
    workload::ProgramImage image;
    for (unsigned slot = 0; slot < kInstrPerBlock; ++slot) {
        Addr pc = 0x40000 + slot * kInstrBytes;
        isa::DecodedInstr di{slot % 5 == 4 ? isa::InstrKind::CondBranch
                                           : isa::InstrKind::Alu,
                             slot % 5 == 4, 0x41000};
        std::uint8_t buf[kInstrBytes];
        isa::writeWord(buf, isa::encodeInstr(pc, di));
        image.write(pc, buf, kInstrBytes);
    }
    isa::Predecoder pd(image, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(pd.predecodeBlock(0x40000));
}
BENCHMARK(BM_PredecodeBlock);

} // namespace

BENCHMARK_MAIN();
