/**
 * @file
 * Tests for the synthetic fixed- and variable-length encodings and the
 * block pre-decoder, including the round-trip property decode(encode(x))
 * == x on randomized instructions.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "isa/encoding.h"
#include "isa/predecoder.h"
#include "isa/vl_encoding.h"
#include "workload/image.h"

namespace dcfb::isa {
namespace {

TEST(Encoding, BranchPredicates)
{
    EXPECT_FALSE(isBranch(InstrKind::Alu));
    EXPECT_FALSE(isBranch(InstrKind::Load));
    EXPECT_FALSE(isBranch(InstrKind::Store));
    EXPECT_TRUE(isBranch(InstrKind::CondBranch));
    EXPECT_TRUE(isBranch(InstrKind::Jump));
    EXPECT_TRUE(isBranch(InstrKind::Call));
    EXPECT_TRUE(isBranch(InstrKind::Return));
    EXPECT_TRUE(isBranch(InstrKind::IndirectCall));

    EXPECT_TRUE(hasEncodedTarget(InstrKind::CondBranch));
    EXPECT_TRUE(hasEncodedTarget(InstrKind::Jump));
    EXPECT_TRUE(hasEncodedTarget(InstrKind::Call));
    EXPECT_FALSE(hasEncodedTarget(InstrKind::Return));
    EXPECT_FALSE(hasEncodedTarget(InstrKind::IndirectCall));

    EXPECT_FALSE(isUnconditional(InstrKind::CondBranch));
    EXPECT_TRUE(isUnconditional(InstrKind::Jump));
    EXPECT_TRUE(isUnconditional(InstrKind::Return));
    EXPECT_FALSE(isUnconditional(InstrKind::Alu));
}

TEST(Encoding, RoundTripForwardBranch)
{
    Addr pc = 0x40000;
    DecodedInstr in{InstrKind::CondBranch, true, 0x40080};
    auto word = encodeInstr(pc, in);
    auto out = decodeInstr(pc, word);
    EXPECT_EQ(out.kind, InstrKind::CondBranch);
    EXPECT_TRUE(out.hasTarget);
    EXPECT_EQ(out.target, 0x40080u);
}

TEST(Encoding, RoundTripBackwardBranch)
{
    Addr pc = 0x40100;
    DecodedInstr in{InstrKind::Jump, true, 0x40000};
    auto out = decodeInstr(pc, encodeInstr(pc, in));
    EXPECT_EQ(out.kind, InstrKind::Jump);
    EXPECT_EQ(out.target, 0x40000u);
}

TEST(Encoding, NonBranchHasNoTarget)
{
    Addr pc = 0x40000;
    DecodedInstr in{InstrKind::Load, false, kInvalidAddr};
    auto out = decodeInstr(pc, encodeInstr(pc, in));
    EXPECT_EQ(out.kind, InstrKind::Load);
    EXPECT_FALSE(out.hasTarget);
}

TEST(Encoding, WordReadWriteLittleEndian)
{
    std::uint8_t buf[4];
    writeWord(buf, 0x12345678);
    EXPECT_EQ(buf[0], 0x78);
    EXPECT_EQ(buf[3], 0x12);
    EXPECT_EQ(readWord(buf), 0x12345678u);
}

/** Property: random direct branches round-trip across a wide PC range. */
class EncodingRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(EncodingRoundTrip, RandomizedBranches)
{
    dcfb::Rng rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        Addr pc = 0x40000 + rng.below(1 << 20) * kInstrBytes;
        std::int64_t delta =
            static_cast<std::int64_t>(rng.below(1 << 18)) - (1 << 17);
        Addr target = static_cast<Addr>(
            static_cast<std::int64_t>(pc) + delta * kInstrBytes);
        static const InstrKind kinds[] = {InstrKind::CondBranch,
                                          InstrKind::Jump, InstrKind::Call};
        DecodedInstr in{kinds[rng.below(3)], true, target};
        auto out = decodeInstr(pc, encodeInstr(pc, in));
        ASSERT_EQ(out.kind, in.kind);
        ASSERT_EQ(out.target, in.target);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(VlEncoding, RoundTripBranch)
{
    std::vector<std::uint8_t> bytes;
    Addr pc = 0x50003;
    VlDecodedInstr in;
    in.kind = InstrKind::CondBranch;
    in.length = 6;
    in.hasTarget = true;
    in.target = 0x4f000;
    vlEncodeInstr(pc, in, bytes);
    ASSERT_EQ(bytes.size(), 6u);
    auto out = vlDecodeInstr(pc, bytes.data(),
                             static_cast<unsigned>(bytes.size()));
    EXPECT_EQ(out.kind, InstrKind::CondBranch);
    EXPECT_EQ(out.length, 6u);
    EXPECT_TRUE(out.hasTarget);
    EXPECT_EQ(out.target, 0x4f000u);
}

TEST(VlEncoding, RoundTripBodyLengths)
{
    for (unsigned len = kVlMinLength; len <= kVlMaxLength; ++len) {
        std::vector<std::uint8_t> bytes;
        VlDecodedInstr in;
        in.kind = InstrKind::Alu;
        in.length = len;
        vlEncodeInstr(0x60000, in, bytes);
        ASSERT_EQ(bytes.size(), len);
        auto out = vlDecodeInstr(0x60000, bytes.data(), len);
        EXPECT_EQ(out.length, len);
        EXPECT_EQ(out.kind, InstrKind::Alu);
    }
}

TEST(VlEncoding, TruncatedBranchFailsToDecode)
{
    std::vector<std::uint8_t> bytes;
    VlDecodedInstr in;
    in.kind = InstrKind::Jump;
    in.length = 6;
    in.hasTarget = true;
    in.target = 0x60010;
    vlEncodeInstr(0x60000, in, bytes);
    auto out = vlDecodeInstr(0x60000, bytes.data(), 3); // too few bytes
    EXPECT_EQ(out.length, 0u);
}

TEST(VlEncoding, FillerByteIsMalformedBoundary)
{
    // Decoding from a filler byte must not look like a valid instruction
    // most of the time; our filler encodes length 0xa..0xf with kinds
    // >= 10, i.e. length is in range but the kind is out of the enum.
    std::vector<std::uint8_t> bytes;
    VlDecodedInstr in;
    in.kind = InstrKind::Alu;
    in.length = 8;
    vlEncodeInstr(0x60000, in, bytes);
    auto out = vlDecodeInstr(0x60001, bytes.data() + 1, 7);
    // Filler 0xa1 decodes to kind 10 (invalid enum) - it must at least not
    // decode to a branch with a target.
    EXPECT_FALSE(out.hasTarget);
}

class PredecoderTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Lay out a block at 0x40000 with branches in slots 3 and 9.
        Addr base = 0x40000;
        for (unsigned slot = 0; slot < kInstrPerBlock; ++slot) {
            Addr pc = base + slot * kInstrBytes;
            DecodedInstr di{InstrKind::Alu, false, kInvalidAddr};
            if (slot == 3)
                di = {InstrKind::CondBranch, true, 0x40400};
            if (slot == 9)
                di = {InstrKind::Call, true, 0x41000};
            if (slot == 15)
                di = {InstrKind::Return, false, kInvalidAddr};
            std::uint8_t buf[kInstrBytes];
            writeWord(buf, encodeInstr(pc, di));
            image.write(pc, buf, kInstrBytes);
        }
    }

    workload::ProgramImage image;
};

TEST_F(PredecoderTest, FixedLengthFindsAllBranches)
{
    Predecoder pd(image, false);
    auto branches = pd.predecodeBlock(0x40000);
    ASSERT_EQ(branches.size(), 3u);
    EXPECT_EQ(branches[0].byteOffset, 12u);
    EXPECT_EQ(branches[0].kind, InstrKind::CondBranch);
    EXPECT_EQ(branches[0].target, 0x40400u);
    EXPECT_EQ(branches[1].byteOffset, 36u);
    EXPECT_EQ(branches[1].kind, InstrKind::Call);
    EXPECT_EQ(branches[1].target, 0x41000u);
    EXPECT_EQ(branches[2].kind, InstrKind::Return);
    EXPECT_FALSE(branches[2].hasTarget);
}

TEST_F(PredecoderTest, DecodeAtBranchOffset)
{
    Predecoder pd(image, false);
    auto hit = pd.decodeAt(0x40000, 12);
    ASSERT_EQ(hit.size(), 1u);
    EXPECT_EQ(hit[0].target, 0x40400u);
}

TEST_F(PredecoderTest, DecodeAtNonBranchOffsetIsEmpty)
{
    Predecoder pd(image, false);
    EXPECT_TRUE(pd.decodeAt(0x40000, 0).empty());
    EXPECT_TRUE(pd.decodeAt(0x40000, 13).empty()); // misaligned
}

TEST_F(PredecoderTest, UnmappedBlockIsEmpty)
{
    Predecoder pd(image, false);
    EXPECT_TRUE(pd.predecodeBlock(0x99000).empty());
}

TEST(PredecoderVl, FootprintGuidedDecode)
{
    workload::ProgramImage image;
    // Hand-assemble a VL block: ALU(3) at 0, Jump(6) at 3, ALU(4) at 9.
    std::vector<std::uint8_t> bytes;
    VlDecodedInstr alu3{InstrKind::Alu, 3, false, kInvalidAddr};
    vlEncodeInstr(0x70000, alu3, bytes);
    VlDecodedInstr jmp{InstrKind::Jump, 6, true, 0x70040};
    vlEncodeInstr(0x70003, jmp, bytes);
    VlDecodedInstr alu4{InstrKind::Alu, 4, false, kInvalidAddr};
    vlEncodeInstr(0x70009, alu4, bytes);
    image.write(0x70000, bytes.data(), bytes.size());

    Predecoder pd(image, true);
    // Without a footprint, a VL block cannot be pre-decoded.
    EXPECT_TRUE(pd.predecodeBlock(0x70000).empty());
    // With the footprint, exactly the branch is found.
    auto branches = pd.predecodeWithFootprint(0x70000, {3});
    ASSERT_EQ(branches.size(), 1u);
    EXPECT_EQ(branches[0].kind, InstrKind::Jump);
    EXPECT_EQ(branches[0].target, 0x70040u);
    // A footprint entry pointing at a non-branch yields nothing.
    EXPECT_TRUE(pd.predecodeWithFootprint(0x70000, {0}).empty());
}

TEST(PredecoderVl, StraddlingInstruction)
{
    workload::ProgramImage image;
    // Branch starting 2 bytes before a block boundary.
    Addr pc = 0x7003e;
    std::vector<std::uint8_t> bytes;
    VlDecodedInstr jmp{InstrKind::Call, 7, true, 0x70100};
    vlEncodeInstr(pc, jmp, bytes);
    image.write(pc, bytes.data(), bytes.size());

    Predecoder pd(image, true);
    auto branches = pd.decodeAt(0x70000, 0x3e);
    ASSERT_EQ(branches.size(), 1u);
    EXPECT_EQ(branches[0].kind, InstrKind::Call);
    EXPECT_EQ(branches[0].target, 0x70100u);
}

} // namespace
} // namespace dcfb::isa
