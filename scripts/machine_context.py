"""Machine context shared by perf_baseline.py and update_golden.py.

Absolute simulator throughput is machine-sensitive, so every
dcfb-perf-v1 document records where it was measured: CPU model, core
count and the cpufreq governor.  perf_baseline.py stamps this into the
report's meta section; update_golden.py refuses to re-baseline when the
current machine does not match the committed context (without --force),
so a laptop run cannot silently replace numbers measured on the
reference runner.
"""

import os
import pathlib


def cpu_model():
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return "unknown"


def governor():
    path = pathlib.Path(
        "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor")
    try:
        return path.read_text(encoding="utf-8").strip()
    except OSError:
        return "unknown"


def collect():
    """The machine-context dict recorded in dcfb-perf-v1 meta."""
    return {
        "cpu_model": cpu_model(),
        "cores": os.cpu_count() or 0,
        "governor": governor(),
    }


def diff(recorded, current=None):
    """List of human-readable mismatches between two contexts."""
    if not recorded:
        return []
    if current is None:
        current = collect()
    mismatches = []
    for key in ("cpu_model", "cores", "governor"):
        want, have = recorded.get(key), current.get(key)
        if want is not None and want != have:
            mismatches.append(f"{key}: recorded {want!r}, this machine "
                              f"{have!r}")
    return mismatches
