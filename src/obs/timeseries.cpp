#include "obs/timeseries.h"

namespace dcfb::obs {

Timeseries::Timeseries(std::size_t capacity_)
    : cap(capacity_ ? capacity_ : 1)
{
    ring.resize(cap);
}

std::size_t
Timeseries::addSeries(std::string name)
{
    std::lock_guard<std::mutex> lock(mutex);
    columns.push_back(std::move(name));
    return columns.size() - 1;
}

std::vector<std::string>
Timeseries::names() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return columns;
}

void
Timeseries::push(std::uint64_t t_ms, std::vector<double> values)
{
    std::lock_guard<std::mutex> lock(mutex);
    values.resize(columns.size(), 0.0);
    ring[head] = Sample{t_ms, std::move(values)};
    head = (head + 1) % cap;
    if (count < cap)
        ++count;
}

std::vector<Timeseries::Sample>
Timeseries::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<Sample> out;
    out.reserve(count);
    std::size_t start = (head + cap - count) % cap;
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(ring[(start + i) % cap]);
    return out;
}

std::size_t
Timeseries::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return count;
}

JsonValue
Timeseries::toJson() const
{
    JsonValue doc = JsonValue::object();
    JsonValue names_json = JsonValue::array();
    for (const auto &name : names())
        names_json.push(name);
    doc["names"] = std::move(names_json);
    JsonValue samples = JsonValue::array();
    for (const auto &sample : snapshot()) {
        JsonValue s = JsonValue::object();
        s["t_ms"] = sample.tMs;
        JsonValue v = JsonValue::array();
        for (double value : sample.values)
            v.push(value);
        s["v"] = std::move(v);
        samples.push(std::move(s));
    }
    doc["samples"] = std::move(samples);
    return doc;
}

} // namespace dcfb::obs
