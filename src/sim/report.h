/**
 * @file
 * Plain-text table rendering for the bench harnesses.
 *
 * Every bench prints the same rows/series the paper's figures report;
 * these helpers keep the formatting consistent and aligned.
 */

#ifndef DCFB_SIM_REPORT_H
#define DCFB_SIM_REPORT_H

#include <string>
#include <vector>

namespace dcfb::sim {

/**
 * Column-aligned text table.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row (must match the header's column count). */
    void addRow(std::vector<std::string> row);

    /** Convenience: formatted numeric cells. */
    static std::string pct(double fraction, int decimals = 1);
    static std::string num(double value, int decimals = 2);

    /** Render with padded columns. */
    std::string render() const;

    /** Render and print to stdout with a title line. */
    void print(const std::string &title) const;

  private:
    std::vector<std::vector<std::string>> rows;
};

} // namespace dcfb::sim

#endif // DCFB_SIM_REPORT_H
