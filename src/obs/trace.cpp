#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <vector>

#include "obs/json.h"

namespace dcfb::obs {

const char *
missClassName(MissClass cls)
{
    switch (cls) {
      case MissClass::Sequential:
        return "seq";
      case MissClass::Discontinuity:
        return "disc";
      case MissClass::Btb:
        return "btb";
      case MissClass::None:
        return "-";
    }
    return "?";
}

const char *
missOutcomeName(MissOutcome outcome)
{
    switch (outcome) {
      case MissOutcome::Covered:
        return "covered";
      case MissOutcome::Late:
        return "late";
      case MissOutcome::Uncovered:
        return "uncovered";
      case MissOutcome::Wasted:
        return "wasted";
    }
    return "?";
}

TraceFormat
traceFormatForPath(const std::string &path)
{
    return path.ends_with(".jsonl") ? TraceFormat::Jsonl
                                    : TraceFormat::ChromeTrace;
}

namespace {

/** One buffered attribution event (formatted only at close()). */
struct TraceEvent
{
    Cycle cycle = 0;
    Addr addr = 0;
    const char *unit = "";
    MissClass cls = MissClass::None;
    MissOutcome outcome = MissOutcome::Uncovered;
};

/** One run's buffered stream.  Thread-local while recording (a run
 *  executes entirely on one worker); moved into the sink at endRun. */
struct RunBuf
{
    std::string workload;
    std::string design;
    std::vector<TraceEvent> events;
    std::uint64_t droppedEvents = 0;
};

thread_local RunBuf *tlRun = nullptr;

std::atomic<std::uint64_t> gEmitted{0};
std::atomic<std::uint64_t> gDropped{0};

} // namespace

struct Tracing::State
{
    Config cfg;
    std::mutex mutex;
    std::vector<RunBuf> completed; //!< finished runs, arrival order
};

Tracing::State *Tracing::state = nullptr;
thread_local bool Tracing::tlRunActive = false;

bool
Tracing::open(const std::string &path)
{
    Config cfg;
    cfg.path = path;
    cfg.format = traceFormatForPath(path);
    return open(cfg);
}

bool
Tracing::open(const Config &config)
{
    close();
    // Probe writability up front so a bad path fails at the CLI
    // instead of after the full sweep has run.
    {
        std::ofstream probe(config.path,
                            std::ios::out | std::ios::trunc);
        if (!probe.is_open()) {
            std::fprintf(stderr, "[obs] cannot open trace file %s\n",
                         config.path.c_str());
            return false;
        }
    }
    auto *s = new State;
    s->cfg = config;
    if (s->cfg.maxEvents == 0)
        s->cfg.maxEvents = 1;
    gEmitted.store(0, std::memory_order_relaxed);
    gDropped.store(0, std::memory_order_relaxed);
    state = s;
    tlRunActive = false;
    return true;
}

void
Tracing::beginRun(const std::string &workload, const std::string &design)
{
    if (!state)
        return;
    delete tlRun; // a run that never ended (failed cell): discard it
    tlRun = new RunBuf;
    tlRun->workload = workload;
    tlRun->design = design;
    tlRunActive = true;
}

void
Tracing::endRun()
{
    tlRunActive = false;
    if (!tlRun)
        return;
    RunBuf *run = tlRun;
    tlRun = nullptr;
    if (State *s = state) {
        std::lock_guard<std::mutex> lock(s->mutex);
        s->completed.push_back(std::move(*run));
    }
    delete run;
}

void
Tracing::record(const char *unit, Cycle cycle, Addr addr, MissClass cls,
                MissOutcome outcome)
{
    if (!enabled())
        return;
    RunBuf *run = tlRun;
    if (run->events.size() >= state->cfg.maxEvents) {
        ++run->droppedEvents;
        gDropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    run->events.push_back(TraceEvent{cycle, addr, unit, cls, outcome});
    gEmitted.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
Tracing::emitted()
{
    return gEmitted.load(std::memory_order_relaxed);
}

std::uint64_t
Tracing::dropped()
{
    return gDropped.load(std::memory_order_relaxed);
}

void
Tracing::close()
{
    if (!state)
        return;
    State *s = state;
    state = nullptr;
    tlRunActive = false;
    delete tlRun;
    tlRun = nullptr;

    // Deterministic file order regardless of worker interleaving:
    // runs sorted by (workload, design) label -- stable, so repeated
    // labels keep arrival order under --jobs 1 -- and events within a
    // run are already in cycle order (each run records serially).
    std::vector<RunBuf> runs;
    {
        std::lock_guard<std::mutex> lock(s->mutex);
        runs = std::move(s->completed);
    }
    std::stable_sort(runs.begin(), runs.end(),
                     [](const RunBuf &a, const RunBuf &b) {
                         if (a.workload != b.workload)
                             return a.workload < b.workload;
                         return a.design < b.design;
                     });

    std::ofstream out(s->cfg.path, std::ios::out | std::ios::trunc);
    if (!out.is_open()) {
        std::fprintf(stderr, "[obs] cannot open trace file %s\n",
                     s->cfg.path.c_str());
        delete s;
        return;
    }

    const bool jsonl = s->cfg.format == TraceFormat::Jsonl;
    bool firstChromeRecord = true;
    auto emit = [&](const JsonValue &record) {
        if (jsonl) {
            out << record.dump() << '\n';
        } else {
            out << (firstChromeRecord ? "\n" : ",\n") << record.dump();
            firstChromeRecord = false;
        }
    };
    if (!jsonl)
        out << "[";

    std::uint64_t written = 0;
    std::uint64_t droppedEvents = 0;
    std::uint64_t runIndex = 0;
    char addrBuf[24];
    for (const RunBuf &run : runs) {
        ++runIndex;
        droppedEvents += run.droppedEvents;
        JsonValue head = JsonValue::object();
        if (jsonl) {
            head["type"] = "run";
            head["run"] = runIndex;
            head["workload"] = run.workload;
            head["design"] = run.design;
        } else {
            // Chrome metadata event naming the per-run "process".
            head["name"] = "process_name";
            head["ph"] = "M";
            head["pid"] = runIndex;
            head["tid"] = std::uint64_t{0};
            JsonValue args = JsonValue::object();
            args["name"] = run.workload + " / " + run.design;
            head["args"] = std::move(args);
        }
        emit(head);

        for (const TraceEvent &ev : run.events) {
            ++written;
            std::snprintf(addrBuf, sizeof(addrBuf), "0x%llx",
                          static_cast<unsigned long long>(ev.addr));
            JsonValue rec = JsonValue::object();
            if (jsonl) {
                rec["type"] = "miss";
                rec["run"] = runIndex;
                rec["cycle"] = ev.cycle;
                rec["unit"] = ev.unit;
                rec["addr"] = addrBuf;
                rec["class"] = missClassName(ev.cls);
                rec["outcome"] = missOutcomeName(ev.outcome);
            } else {
                rec["name"] = std::string(ev.unit) + "." +
                    missOutcomeName(ev.outcome);
                rec["ph"] = "i";
                rec["ts"] = ev.cycle;
                rec["pid"] = runIndex;
                rec["tid"] = std::uint64_t{0};
                rec["s"] = "t";
                JsonValue args = JsonValue::object();
                args["addr"] = addrBuf;
                args["class"] = missClassName(ev.cls);
                args["outcome"] = missOutcomeName(ev.outcome);
                rec["args"] = std::move(args);
            }
            emit(rec);
        }
    }

    // Closing summary record: how complete is the stream?
    JsonValue summary = JsonValue::object();
    if (jsonl) {
        summary["type"] = "summary";
        summary["runs"] = runIndex;
        summary["events"] = written;
        summary["dropped"] = droppedEvents;
        emit(summary);
    } else {
        summary["name"] = "trace_summary";
        summary["ph"] = "i";
        summary["ts"] = std::uint64_t{0};
        summary["pid"] = runIndex;
        summary["tid"] = std::uint64_t{0};
        summary["s"] = "g";
        JsonValue args = JsonValue::object();
        args["runs"] = runIndex;
        args["events"] = written;
        args["dropped"] = droppedEvents;
        summary["args"] = std::move(args);
        emit(summary);
        out << "\n]\n";
    }
    out.close();
    delete s;
}

} // namespace dcfb::obs
