/**
 * @file
 * Prometheus text-exposition rendering (format 0.0.4) for the metrics
 * plane: registry counters become `counter` samples, derived values
 * become `gauge`s, and the log2 histograms render as cumulative
 * `histogram` buckets whose `le` edges are the histBucketHigh() bounds
 * of the non-empty buckets (plus the mandatory `+Inf`).
 *
 * Rendering is append-only into a caller-owned string so one exposition
 * body is a single allocation-friendly pass; dcfb-serve's `metrics` op
 * and the unit tests are the consumers.  Dotted registry names
 * ("svc.queue_wait_us") are sanitized to the Prometheus charset by
 * promName() ("svc_queue_wait_us"); callers add the `dcfb_` namespace
 * prefix and the conventional `_total` counter suffix.
 */

#ifndef DCFB_OBS_PROMETHEUS_H
#define DCFB_OBS_PROMETHEUS_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>

#include "obs/registry.h"

namespace dcfb::obs {

/** Sanitize @p raw to the Prometheus metric-name charset
 *  [a-zA-Z0-9_:]; every other character becomes '_'. */
std::string promName(std::string_view raw);

/** Append one `counter` metric (TYPE line + sample). */
void promCounter(std::string &out, const std::string &name,
                 std::uint64_t value);

/** Append one `gauge` metric (TYPE line + sample). */
void promGauge(std::string &out, const std::string &name, double value);

/** Append one `histogram` metric: cumulative `_bucket{le=...}` samples
 *  over the snapshot's non-empty log2 buckets, then `+Inf`, `_sum` and
 *  `_count`. */
void promHistogram(std::string &out, const std::string &name,
                   const HistogramSnapshot &snap);

/** Append one info-style gauge: a constant `1` sample whose labels
 *  carry configuration strings (the `foo_info{key="value"} 1` idiom —
 *  e.g. the journal fsync policy or the active fault-injection plan).
 *  Label values are escaped per the exposition format (backslash,
 *  double quote, newline). */
void promInfo(std::string &out, const std::string &name,
              std::initializer_list<std::pair<std::string_view,
                                              std::string_view>> labels);

} // namespace dcfb::obs

#endif // DCFB_OBS_PROMETHEUS_H
