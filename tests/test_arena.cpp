/**
 * @file
 * Unit tests for the per-cell bump arena (exec/arena.h): alignment,
 * reset-reuse, exhaustion fallback, the std-allocator adapter, and the
 * System-level sizing contract (DESIGN.md section 14) — a cell built
 * from estimateArenaBytes() must not overflow its slab.
 */

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "exec/arena.h"
#include "sim/system.h"
#include "workload/profiles.h"

namespace dcfb::exec {
namespace {

TEST(Arena, AlignmentRespected)
{
    Arena arena(4096);
    // A misaligning 1-byte allocation first, then aligned requests.
    arena.allocate(1, 1);
    for (std::size_t align : {std::size_t{8}, std::size_t{64},
                              std::size_t{256}}) {
        void *p = arena.allocate(align, align);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
            << "align " << align;
        EXPECT_TRUE(arena.contains(p));
    }
    EXPECT_EQ(arena.stats().overflowAllocs, 0u);
}

TEST(Arena, ExhaustionFallsBackToHeap)
{
    Arena arena(128);
    void *inside = arena.allocate(96, 8);
    ASSERT_TRUE(arena.contains(inside));
    // Does not fit the remaining slab: served from the heap, counted,
    // and still perfectly usable.
    void *overflow = arena.allocate(256, 8);
    ASSERT_NE(overflow, nullptr);
    EXPECT_FALSE(arena.contains(overflow));
    std::memset(overflow, 0xab, 256);
    const Arena::Stats &s = arena.stats();
    EXPECT_EQ(s.allocs, 1u);
    EXPECT_EQ(s.overflowAllocs, 1u);
    EXPECT_EQ(s.overflowBytes, 256u);
    // Individual release of an overflow block returns it to the heap;
    // slab blocks are no-ops (the slab frees as one).
    arena.deallocate(overflow);
    arena.deallocate(inside);
    EXPECT_EQ(arena.stats().slabBytes, 128u);
}

TEST(Arena, ZeroSlabIsHeapOnly)
{
    Arena arena(0);
    void *p = arena.allocate(64, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_FALSE(arena.contains(p));
    EXPECT_EQ(arena.stats().overflowAllocs, 1u);
    arena.deallocate(p);
}

TEST(Arena, ResetRewindsAndReusesTheSlab)
{
    Arena arena(1024);
    void *first = arena.allocate(512, 8);
    arena.allocate(600, 8); // overflow
    EXPECT_EQ(arena.stats().overflowAllocs, 1u);
    arena.reset();
    const Arena::Stats &s = arena.stats();
    EXPECT_EQ(s.usedBytes, 0u);
    EXPECT_EQ(s.allocs, 0u);
    EXPECT_EQ(s.overflowAllocs, 0u);
    EXPECT_EQ(s.overflowBytes, 0u);
    // The bump pointer rewound: the next allocation reuses the slab
    // from the start.
    void *again = arena.allocate(512, 8);
    EXPECT_EQ(again, first);
    EXPECT_TRUE(arena.contains(again));
}

TEST(ArenaAlloc, NullArenaBehavesAsHeap)
{
    ArenaVector<int> v{ArenaAlloc<int>(nullptr)};
    for (int i = 0; i < 1000; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 1000u);
    EXPECT_EQ(v[999], 999);
}

TEST(ArenaAlloc, VectorStorageLandsInTheSlab)
{
    Arena arena(64 * 1024);
    ArenaVector<std::uint64_t> v{ArenaAlloc<std::uint64_t>(&arena)};
    v.resize(1024, 7);
    EXPECT_TRUE(arena.contains(v.data()));
    EXPECT_EQ(v[1023], 7u);
    // Growth beyond the slab falls back to the heap without losing
    // contents.
    v.resize(32 * 1024, 9);
    EXPECT_EQ(v[0], 7u);
    EXPECT_EQ(v[32 * 1024 - 1], 9u);
}

/** The sizing contract: a full System built from estimateArenaBytes()
 *  places all of its construction-time tables inside the slab. */
TEST(Arena, SystemEstimateCoversConstruction)
{
    auto profile = workload::serverProfile("Web (Apache)");
    profile.numFunctions = 24;
    profile.dataFootprint = 1ull << 20;
    for (auto preset : {sim::Preset::Baseline, sim::Preset::SN4LDisBtb,
                        sim::Preset::Confluence, sim::Preset::Shotgun}) {
        sim::SystemConfig cfg = sim::makeConfig(profile, preset);
        cfg.functionalWarmInstrs = 0;
        sim::System system(cfg);
        const Arena::Stats &s = system.arena.stats();
        EXPECT_EQ(s.overflowAllocs, 0u)
            << sim::presetName(preset) << ": " << s.overflowBytes
            << " bytes overflowed a " << s.slabBytes << "-byte slab";
        EXPECT_GT(s.usedBytes, 0u);
        EXPECT_LE(s.usedBytes, s.slabBytes);
    }
}

} // namespace
} // namespace dcfb::exec
