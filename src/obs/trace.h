/**
 * @file
 * Miss-attribution tracer.
 *
 * Every L1i and BTB miss the simulator observes can be tagged with the
 * paper's taxonomy class (sequential / discontinuity / BTB) and its
 * prefetch outcome (covered / late / uncovered / wasted) and streamed to
 * a bounded JSONL or Chrome trace-event file.
 *
 * The tracer is process-global and off by default.  Instrumentation
 * sites guard with the inline Tracing::enabled() check -- a single
 * pointer compare -- so the disabled cost is effectively zero; all
 * formatting and I/O live out of line and only run when a sink is open
 * AND a run is active (Tracing::beginRun), which keeps warmup windows
 * out of the stream.
 *
 * Output format is chosen from the file extension: "*.jsonl" emits one
 * JSON object per line; anything else emits a Chrome trace-event array
 * loadable in chrome://tracing / Perfetto (instant events, ts = cycle).
 * The stream is bounded (default 1 M events); overflow increments a
 * dropped-event count reported in the closing summary record.
 */

#ifndef DCFB_OBS_TRACE_H
#define DCFB_OBS_TRACE_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace dcfb::obs {

/** Paper taxonomy of frontend misses (Section II). */
enum class MissClass : std::uint8_t {
    Sequential,    //!< spatially next to the previous demanded block
    Discontinuity, //!< control transfer into a non-resident block
    Btb,           //!< the frontend did not know the branch
    None,          //!< not a miss (e.g. a wasted-prefetch event)
};

/** Prefetch outcome attributed to the event. */
enum class MissOutcome : std::uint8_t {
    Covered,   //!< prefetch fully hid the fill (or avoided the BTB miss)
    Late,      //!< prefetch in flight: latency partially hidden
    Uncovered, //!< no prefetch; full penalty paid
    Wasted,    //!< prefetched block evicted without any demand use
};

const char *missClassName(MissClass cls);
const char *missOutcomeName(MissOutcome outcome);

enum class TraceFormat : std::uint8_t { Jsonl, ChromeTrace };

/** Format implied by @p path ("*.jsonl" -> Jsonl, else ChromeTrace). */
TraceFormat traceFormatForPath(const std::string &path);

/**
 * Process-global trace sink.
 */
class Tracing
{
  public:
    struct Config
    {
        std::string path;
        TraceFormat format = TraceFormat::Jsonl;
        std::uint64_t maxEvents = 1u << 20;
    };

    /** Open a sink at @p path, format inferred from the extension.
     *  Returns false (and stays disabled) when the file cannot be
     *  created. */
    static bool open(const std::string &path);
    static bool open(const Config &config);

    /** Flush the closing summary record and disable tracing. */
    static void close();

    /** True while a sink is open and a run is active.  Inline so
     *  instrumentation sites pay one pointer compare when disabled. */
    static bool
    enabled()
    {
        return state != nullptr && runActive;
    }

    /** True while a sink is open (independent of run state). */
    static bool
    sinkOpen()
    {
        return state != nullptr;
    }

    /** Mark the start of a measured run; emits a run-metadata record and
     *  enables event recording. */
    static void beginRun(const std::string &workload,
                         const std::string &design);

    /** Mark the end of the measured run; disables event recording. */
    static void endRun();

    /**
     * Record one attribution event.
     * @param unit  emitting component ("l1i" or "btb")
     * @param cycle simulation cycle of the event
     * @param addr  block or branch address
     */
    static void record(const char *unit, Cycle cycle, Addr addr,
                       MissClass cls, MissOutcome outcome);

    /** Events written so far (excludes dropped). */
    static std::uint64_t emitted();

    /** Events dropped after the bound was hit. */
    static std::uint64_t dropped();

  private:
    struct State;
    static State *state;
    static bool runActive;
};

} // namespace dcfb::obs

#endif // DCFB_OBS_TRACE_H
