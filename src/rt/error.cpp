#include "rt/error.h"

namespace dcfb::rt {

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Config: return "config";
      case ErrorKind::Workload: return "workload";
      case ErrorKind::Result: return "result";
      case ErrorKind::Invariant: return "invariant";
      case ErrorKind::Watchdog: return "watchdog";
      case ErrorKind::Fault: return "fault";
    }
    return "?";
}

std::string
Error::render() const
{
    std::string out = "[rt:";
    out += errorKindName(kind);
    out += "] ";
    out += message;
    for (const auto &kv : context) {
        out += "\n  ";
        out += kv.first;
        out += ": ";
        out += kv.second;
    }
    return out;
}

} // namespace dcfb::rt
