/**
 * @file
 * Invariant checker: a registration API for structural conservation
 * checks swept periodically by the simulation loop.
 *
 * Components expose their invariants by registering named check
 * callbacks (every L1i miss eventually resolves, MSHR alloc/free
 * balance, FTQ ordering, SeqTable/prefetch-flag consistency, queue
 * occupancy bounds, ...).  A callback returns std::nullopt when the
 * invariant holds and a violation detail string otherwise; it must be
 * read-only -- sweeps run inside measured windows and must not perturb
 * statistics or machine state.
 *
 * Cost model:
 *  - compiled out (DCFB_RT_INVARIANTS=0): add()/sweep() collapse to
 *    empty inlines, zero code and data;
 *  - disabled at runtime (setEnabled(false)): sweep() is one branch;
 *  - enabled: checks run every sweepInterval cycles (IntegrityConfig),
 *    off the per-cycle hot path.
 */

#ifndef DCFB_RT_INVARIANTS_H
#define DCFB_RT_INVARIANTS_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "rt/error.h"

#ifndef DCFB_RT_INVARIANTS
#define DCFB_RT_INVARIANTS 1
#endif

namespace dcfb::rt {

/** Integrity-layer knobs carried in SystemConfig. */
struct IntegrityConfig
{
    bool invariants = true;      //!< run registered invariant sweeps
    Cycle sweepInterval = 8192;  //!< cycles between sweeps
    bool watchdog = true;        //!< forward-progress watchdog
    Cycle watchdogWindow = 50000; //!< no-retire/no-fetch trip threshold
    /** Upper bound on how long one L1i miss may stay unresolved before
     *  the "every miss eventually resolves" invariant flags a leak.
     *  Must exceed the worst-case memory round trip plus any injected
     *  response delay. */
    Cycle missResolutionBound = 20000;
};

/** One invariant violation found by a sweep. */
struct Violation
{
    std::string invariant; //!< registered name ("l1i.mshr_balance", ...)
    std::string detail;    //!< what was observed
};

/**
 * Named read-only checks, swept on demand.
 */
class InvariantRegistry
{
  public:
    /** Pass -> nullopt; violation -> detail string. Must be read-only. */
    using Check = std::function<std::optional<std::string>(Cycle now)>;

#if DCFB_RT_INVARIANTS
    /** Register invariant @p name. */
    void
    add(std::string name, Check check)
    {
        checks.emplace_back(std::move(name), std::move(check));
    }

    void setEnabled(bool on) { enabledFlag = on; }
    bool enabled() const { return enabledFlag; }
    std::size_t size() const { return checks.size(); }

    /** Run every check; empty result means all invariants hold.  One
     *  branch and an immediate return when disabled. */
    std::vector<Violation> sweep(Cycle now) const;

    /** sweep() folded into an Expected: an ErrorKind::Invariant error
     *  listing every violation, or success. */
    Expected<void> check(Cycle now) const;

  private:
    std::vector<std::pair<std::string, Check>> checks;
    bool enabledFlag = true;
#else
    void add(std::string, Check) {}
    void setEnabled(bool) {}
    bool enabled() const { return false; }
    std::size_t size() const { return 0; }
    std::vector<Violation> sweep(Cycle) const { return {}; }
    Expected<void> check(Cycle) const { return {}; }
#endif
};

} // namespace dcfb::rt

#endif // DCFB_RT_INVARIANTS_H
