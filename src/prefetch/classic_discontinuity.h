/**
 * @file
 * Conventional discontinuity prefetcher (Spracklen et al., HPCA'05 —
 * reference [17] of the paper).
 *
 * The straightforward implementation the paper contrasts Dis against: a
 * table that records, per trigger block, the full *address* of the
 * discontinuous block that followed it, and prefetches that address on
 * the next access to the trigger.  Storing whole addresses is what makes
 * it cost "tens of kilobytes" (Section V.B); Dis replaces the address
 * with a branch offset plus pre-decoding.
 */

#ifndef DCFB_PREFETCH_CLASSIC_DISCONTINUITY_H
#define DCFB_PREFETCH_CLASSIC_DISCONTINUITY_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "prefetch/prefetcher.h"

namespace dcfb::prefetch {

/**
 * Address-table discontinuity prefetcher, optionally with a next-line
 * companion (the HPCA'05 deployment pairs it with a sequential one).
 */
class ClassicDiscontinuity : public InstrPrefetcher
{
  public:
    /**
     * @param l1i_     cache to prefetch into
     * @param entries_ direct-mapped table size
     * @param with_nl  also prefetch the next line on every access
     */
    ClassicDiscontinuity(mem::L1iCache &l1i_, std::size_t entries_ = 4096,
                         bool with_nl = true)
        : l1i(l1i_), table(entries_), withNl(with_nl)
    {}

    std::string name() const override { return "ClassicDis"; }

    void
    onDemandAccess(Addr block_addr, bool hit) override
    {
        (void)hit;
        pending = blockAlign(block_addr);
        havePending = true;
    }

    void
    onDemandMiss(Addr block_addr, bool sequential) override
    {
        // Record the discontinuity under the previous demand block.
        if (!sequential && lastBlock != kInvalidAddr &&
            !sameBlock(lastBlock, block_addr)) {
            Entry &e = table[index(lastBlock)];
            e.trigger = lastBlock;
            e.target = blockAlign(block_addr);
            statSet.add("cdis_recorded");
        }
        lastBlock = blockAlign(block_addr);
    }

    void
    tick(Cycle now) override
    {
        if (!havePending)
            return;
        havePending = false;
        lastBlock = pending;
        const Entry &e = table[index(pending)];
        if (e.trigger == pending && e.target != kInvalidAddr) {
            statSet.add("cdis_replayed");
            if (l1i.prefetch(e.target, now) ==
                mem::L1iCache::PfOutcome::Issued) {
                statSet.add("cdis_issued");
            }
        }
        if (withNl)
            l1i.prefetch(pending + kBlockBytes, now);
    }

    /** Full target addresses: the storage cost Dis eliminates. */
    std::uint64_t
    storageBits() const override
    {
        return table.size() * (52 + 52);
    }

    const StatSet &stats() const { return statSet; }

  private:
    struct Entry
    {
        Addr trigger = kInvalidAddr;
        Addr target = kInvalidAddr;
    };

    std::size_t
    index(Addr block_addr) const
    {
        return static_cast<std::size_t>(blockNumber(block_addr)) %
            table.size();
    }

    mem::L1iCache &l1i;
    std::vector<Entry> table;
    bool withNl;
    Addr lastBlock = kInvalidAddr;
    Addr pending = 0;
    bool havePending = false;
    StatSet statSet;
};

} // namespace dcfb::prefetch

#endif // DCFB_PREFETCH_CLASSIC_DISCONTINUITY_H
