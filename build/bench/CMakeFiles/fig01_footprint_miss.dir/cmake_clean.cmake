file(REMOVE_RECURSE
  "CMakeFiles/fig01_footprint_miss.dir/fig01_footprint_miss.cpp.o"
  "CMakeFiles/fig01_footprint_miss.dir/fig01_footprint_miss.cpp.o.d"
  "fig01_footprint_miss"
  "fig01_footprint_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_footprint_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
