/**
 * @file
 * Tests for the program image, CFG builder, trace walker and profiles:
 * determinism, structural invariants (every control transfer lands on a
 * basic-block head, calls and returns balance), and encoding consistency
 * (the image bytes decode to what the walker retires).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "isa/predecoder.h"
#include "isa/vl_encoding.h"
#include "workload/cfg.h"
#include "workload/image.h"
#include "workload/profiles.h"
#include "workload/trace.h"

namespace dcfb::workload {
namespace {

WorkloadProfile
tinyProfile(bool vl = false)
{
    WorkloadProfile p;
    p.name = "tiny";
    p.numFunctions = 24;
    p.minBlocks = 2;
    p.maxBlocks = 6;
    p.minInstrs = 3;
    p.maxInstrs = 8;
    p.variableLength = vl;
    p.seed = 123;
    return p;
}

TEST(ProgramImage, WriteReadRoundTrip)
{
    ProgramImage img;
    std::uint8_t data[100];
    for (int i = 0; i < 100; ++i)
        data[i] = static_cast<std::uint8_t>(i);
    img.write(0x1010, data, 100); // crosses two block boundaries

    std::uint8_t out[100] = {};
    EXPECT_EQ(img.read(0x1010, out, 100), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(out[i], data[i]);
}

TEST(ProgramImage, ReadStopsAtUnmapped)
{
    ProgramImage img;
    std::uint8_t b = 0xff;
    img.write(0x1000, &b, 1);
    std::uint8_t out[128];
    // Block 0x1000 mapped (zero-filled beyond our byte), 0x1040 is not.
    EXPECT_EQ(img.read(0x1000, out, 128), 64u);
}

TEST(ProgramImage, BlockLookup)
{
    ProgramImage img;
    std::uint8_t b = 1;
    img.write(0x2000, &b, 1);
    EXPECT_NE(img.block(0x203f), nullptr);
    EXPECT_EQ(img.block(0x2040), nullptr);
    EXPECT_TRUE(img.contains(0x2001));
    EXPECT_EQ(img.numBlocks(), 1u);
}

TEST(CfgBuilder, DeterministicForSeed)
{
    Program a = buildProgram(tinyProfile());
    Program b = buildProgram(tinyProfile());
    ASSERT_EQ(a.functions.size(), b.functions.size());
    EXPECT_EQ(a.codeEnd, b.codeEnd);
    for (std::size_t f = 0; f < a.functions.size(); ++f) {
        ASSERT_EQ(a.functions[f].blocks.size(), b.functions[f].blocks.size());
        EXPECT_EQ(a.functions[f].entry, b.functions[f].entry);
    }
}

TEST(CfgBuilder, FunctionsAreBlockAligned)
{
    Program prog = buildProgram(tinyProfile());
    for (const auto &fn : prog.functions)
        EXPECT_EQ(fn.entry % kBlockBytes, 0u);
}

TEST(CfgBuilder, LayoutIsContiguousAndOrdered)
{
    Program prog = buildProgram(tinyProfile());
    Addr prev_end = prog.codeBase;
    for (const auto &fn : prog.functions) {
        EXPECT_GE(fn.entry, prev_end);
        Addr cursor = fn.entry;
        for (const auto &bb : fn.blocks) {
            EXPECT_EQ(bb.start, cursor);
            for (std::size_t j = 0; j < bb.numInstrs(); ++j) {
                EXPECT_EQ(bb.pcs[j], cursor);
                cursor += bb.lens[j];
            }
        }
        prev_end = cursor;
    }
    EXPECT_EQ(prev_end, prog.codeEnd);
}

TEST(CfgBuilder, TerminatorTargetsAreValid)
{
    Program prog = buildProgram(tinyProfile());
    for (const auto &fn : prog.functions) {
        for (std::size_t i = 0; i < fn.blocks.size(); ++i) {
            const auto &bb = fn.blocks[i];
            switch (bb.term) {
              case TermKind::Cond:
              case TermKind::Jump:
                EXPECT_LT(bb.targetBlock, fn.blocks.size());
                break;
              case TermKind::Call:
                ASSERT_LT(bb.callee, prog.functions.size());
                EXPECT_GT(prog.functions[bb.callee].level, fn.level);
                EXPECT_LT(i + 1, fn.blocks.size()); // return site exists
                break;
              case TermKind::IndirectCall:
                EXPECT_LT(i + 1, fn.blocks.size());
                break;
              case TermKind::Return:
                EXPECT_EQ(i + 1, fn.blocks.size());
                break;
              case TermKind::FallThrough:
                if (&fn != &prog.functions[0]) {
                    EXPECT_LT(i + 1, fn.blocks.size());
                }
                break;
            }
        }
    }
}

TEST(CfgBuilder, LastWorkerBlockReturns)
{
    Program prog = buildProgram(tinyProfile());
    for (std::size_t f = 1; f < prog.functions.size(); ++f)
        EXPECT_EQ(prog.functions[f].blocks.back().term, TermKind::Return);
}

TEST(CfgBuilder, DriverLoops)
{
    Program prog = buildProgram(tinyProfile());
    const auto &driver = prog.functions[0];
    EXPECT_EQ(driver.blocks.back().term, TermKind::Jump);
    EXPECT_EQ(driver.blocks.back().targetBlock, 0u);
    for (std::size_t i = 0; i + 1 < driver.blocks.size(); ++i)
        EXPECT_EQ(driver.blocks[i].term, TermKind::IndirectCall);
}

TEST(CfgBuilder, ImageCoversAllCode)
{
    Program prog = buildProgram(tinyProfile());
    for (const auto &fn : prog.functions) {
        for (const auto &bb : fn.blocks) {
            EXPECT_TRUE(prog.image.contains(bb.start));
            EXPECT_TRUE(prog.image.contains(bb.endPc() - 1));
        }
    }
}

TEST(CfgBuilder, EncodedTerminatorsDecodeToThemselves)
{
    Program prog = buildProgram(tinyProfile());
    isa::Predecoder pd(prog.image, false);
    for (const auto &fn : prog.functions) {
        for (const auto &bb : fn.blocks) {
            if (bb.term != TermKind::Cond && bb.term != TermKind::Jump &&
                bb.term != TermKind::Call) {
                continue;
            }
            Addr pc = bb.termPc();
            auto hits = pd.decodeAt(blockAlign(pc), blockOffset(pc));
            ASSERT_EQ(hits.size(), 1u);
            EXPECT_TRUE(hits[0].hasTarget);
            Addr expect = bb.term == TermKind::Call
                ? prog.functions[bb.callee].entry
                : fn.blocks[bb.targetBlock].start;
            EXPECT_EQ(hits[0].target, expect);
        }
    }
}

TEST(CfgBuilder, VariableLengthImageDecodes)
{
    Program prog = buildProgram(tinyProfile(true));
    isa::Predecoder pd(prog.image, true);
    int checked = 0;
    for (const auto &fn : prog.functions) {
        for (const auto &bb : fn.blocks) {
            if (bb.term != TermKind::Cond && bb.term != TermKind::Jump)
                continue;
            Addr pc = bb.termPc();
            auto hits = pd.decodeAt(blockAlign(pc), blockOffset(pc));
            ASSERT_EQ(hits.size(), 1u) << "pc=" << std::hex << pc;
            EXPECT_EQ(hits[0].target, fn.blocks[bb.targetBlock].start);
            ++checked;
        }
    }
    EXPECT_GT(checked, 5);
}

TEST(TraceWalker, DeterministicForSeed)
{
    Program prog = buildProgram(tinyProfile());
    TraceWalker a(prog, 7), b(prog, 7);
    for (int i = 0; i < 5000; ++i) {
        TraceEntry ea = a.next(), eb = b.next();
        ASSERT_EQ(ea.pc, eb.pc);
        ASSERT_EQ(ea.nextPc, eb.nextPc);
        ASSERT_EQ(ea.taken, eb.taken);
    }
}

TEST(TraceWalker, StreamIsConnected)
{
    Program prog = buildProgram(tinyProfile());
    TraceWalker w(prog, 11);
    TraceEntry prev = w.next();
    for (int i = 0; i < 20000; ++i) {
        TraceEntry e = w.next();
        ASSERT_EQ(e.pc, prev.nextPc) << "disconnected at step " << i;
        prev = e;
    }
}

TEST(TraceWalker, TransfersLandOnBlockHeads)
{
    Program prog = buildProgram(tinyProfile());
    std::set<Addr> heads;
    for (const auto &fn : prog.functions)
        for (const auto &bb : fn.blocks)
            heads.insert(bb.start);

    TraceWalker w(prog, 13);
    for (int i = 0; i < 20000; ++i) {
        TraceEntry e = w.next();
        if (e.isBranch() && e.taken) {
            ASSERT_TRUE(heads.count(e.nextPc)) << std::hex << e.nextPc;
        }
    }
}

TEST(TraceWalker, CallsAndReturnsBalance)
{
    Program prog = buildProgram(tinyProfile());
    TraceWalker w(prog, 17);
    std::int64_t depth = 0;
    std::int64_t max_depth = 0;
    for (int i = 0; i < 50000; ++i) {
        TraceEntry e = w.next();
        if (e.kind == isa::InstrKind::Call ||
            e.kind == isa::InstrKind::IndirectCall) {
            ++depth;
        } else if (e.kind == isa::InstrKind::Return) {
            --depth;
        }
        ASSERT_GE(depth, 0);
        max_depth = std::max(max_depth, depth);
    }
    EXPECT_GT(max_depth, 0);
    EXPECT_LE(max_depth, tinyProfile().maxCallDepth + 1);
}

TEST(TraceWalker, ReturnsGoToCallSiteSuccessor)
{
    Program prog = buildProgram(tinyProfile());
    TraceWalker w(prog, 19);
    std::vector<Addr> expected_returns;
    for (int i = 0; i < 50000; ++i) {
        TraceEntry e = w.next();
        if (e.kind == isa::InstrKind::Call ||
            e.kind == isa::InstrKind::IndirectCall) {
            // The matching return must land at the head of the block after
            // the call block.  Compute it from the CFG.
            expected_returns.push_back(kInvalidAddr); // placeholder depth
        } else if (e.kind == isa::InstrKind::Return) {
            ASSERT_FALSE(expected_returns.empty());
            expected_returns.pop_back();
            // The return target is a block head (checked in the block-head
            // test); here we check it is in the same function region as
            // some caller, i.e. code space.
            EXPECT_GE(e.nextPc, prog.codeBase);
            EXPECT_LT(e.nextPc, prog.codeEnd);
        }
    }
}

TEST(TraceWalker, DataAddressesOnlyOnMemoryOps)
{
    Program prog = buildProgram(tinyProfile());
    TraceWalker w(prog, 23);
    int mem_ops = 0;
    for (int i = 0; i < 20000; ++i) {
        TraceEntry e = w.next();
        bool is_mem = e.kind == isa::InstrKind::Load ||
            e.kind == isa::InstrKind::Store;
        EXPECT_EQ(e.dataAddr != kInvalidAddr, is_mem);
        if (is_mem) {
            ++mem_ops;
            EXPECT_GE(e.dataAddr, prog.dataBase);
        }
    }
    EXPECT_GT(mem_ops, 1000);
}

TEST(TraceWalker, ColdBlocksAreRare)
{
    Program prog = buildProgram(tinyProfile());
    std::map<Addr, bool> head_is_cold;
    std::map<Addr, const BasicBlock *> by_head;
    for (const auto &fn : prog.functions) {
        for (const auto &bb : fn.blocks) {
            head_is_cold[bb.start] = bb.cold;
            by_head[bb.start] = &bb;
        }
    }
    TraceWalker w(prog, 29);
    std::uint64_t cold = 0, total = 0;
    for (int i = 0; i < 100000; ++i) {
        TraceEntry e = w.next();
        auto it = head_is_cold.find(e.pc);
        if (it != head_is_cold.end()) {
            ++total;
            cold += it->second;
        }
    }
    ASSERT_GT(total, 0u);
    EXPECT_LT(static_cast<double>(cold) / total, 0.10);
}

TEST(Profiles, AllSevenExist)
{
    auto names = serverWorkloadNames();
    ASSERT_EQ(names.size(), 7u);
    for (const auto &n : names) {
        WorkloadProfile p = serverProfile(n);
        EXPECT_EQ(p.name, n);
        EXPECT_GT(p.numFunctions, 0u);
    }
    EXPECT_THROW(serverProfile("nope"), rt::Exception);
    auto missing = tryServerProfile("nope");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().kind, rt::ErrorKind::Workload);
    // The diagnostic must name every known profile.
    std::string rendered = missing.error().render();
    for (const auto &n : serverWorkloadNames())
        EXPECT_NE(rendered.find(n), std::string::npos) << n;
}

TEST(Profiles, FootprintOrdering)
{
    // OLTP DB A must have the largest code footprint; Web Frontend the
    // smallest (drives Fig. 1 / Fig. 16 shapes).
    Program dba = buildProgram(serverProfile("OLTP (DB A)"));
    Program wf = buildProgram(serverProfile("Web Frontend"));
    EXPECT_GT(dba.codeBytes(), 2 * wf.codeBytes());
}

TEST(Profiles, AllProfilesBuildAndWalk)
{
    for (const auto &p : allServerProfiles()) {
        Program prog = buildProgram(p);
        EXPECT_GT(prog.codeBytes(), 100u * 1024);
        TraceWalker w(prog, 1);
        for (int i = 0; i < 2000; ++i)
            w.next();
        EXPECT_EQ(w.retired(), 2000u);
    }
}

} // namespace
} // namespace dcfb::workload
