/**
 * @file
 * Diagnostic example: run one (workload, design) pair and dump every
 * counter the simulator collects.  Useful for understanding where
 * cycles go and how the prefetcher behaves.
 *
 * Usage: inspect_run [workload] [design]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/simulator.h"
#include "workload/profiles.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;

    std::string name = argc > 1 ? argv[1] : "Web (Apache)";
    std::string design = argc > 2 ? argv[2] : "SN4L+Dis+BTB";

    sim::Preset preset = sim::Preset::Baseline;
    for (int p = 0; p <= static_cast<int>(sim::Preset::PerfectL1iBtb);
         ++p) {
        if (sim::presetName(static_cast<sim::Preset>(p)) == design)
            preset = static_cast<sim::Preset>(p);
    }

    auto profile = workload::serverProfile(name);
    sim::RunWindows windows;
    if (argc > 4) {
        windows.warm = static_cast<dcfb::Cycle>(std::atoll(argv[3]));
        windows.measure = static_cast<dcfb::Cycle>(std::atoll(argv[4]));
    }
    auto res = sim::simulate(sim::makeConfig(profile, preset), windows);

    std::printf("workload=%s design=%s cycles=%llu instrs=%llu ipc=%.3f\n",
                res.workload.c_str(), res.design.c_str(),
                static_cast<unsigned long long>(res.cycles),
                static_cast<unsigned long long>(res.instructions),
                res.ipc());
    for (const auto &kv : res.stats) {
        std::printf("  %-40s %llu\n", kv.first.c_str(),
                    static_cast<unsigned long long>(kv.second));
    }
    return 0;
}
