/**
 * @file
 * dcfb-client: CLI for the experiment service daemon.
 *
 *   dcfb-client --socket PATH [--retry-budget-ms N]
 *               [--recv-timeout-ms N]
 *               submit --workload NAME --preset NAME
 *               [--warm N --measure N] [--seed N] [--inject SPEC]
 *               [--deadline-ms N] [--wait]
 *   dcfb-client --socket PATH status JOB
 *   dcfb-client --socket PATH fetch JOB
 *   dcfb-client --socket PATH cancel JOB
 *   dcfb-client --socket PATH stats | ping | drain
 *   dcfb-client --socket PATH metrics [--watch] [--interval-ms N]
 *   dcfb-client --socket PATH raw '<request json>'
 *   dcfb-client --endpoint HOST:PORT grid [--workloads A,B,...]
 *               [--presets A,B,...] [--warm N --measure N] [--seed N]
 *               [--out FILE]
 *
 * --endpoint HOST:PORT targets a TCP daemon (dcfb-serve --listen, or a
 * dcfb-coord); --socket and --endpoint are interchangeable — both name
 * where to connect, and every command works over either transport.
 *
 * `grid` speaks the coordinator's dcfb-coord-v1 protocol: it fans a
 * whole ExperimentGrid out to the fleet, streams per-cell progress to
 * stderr as results land, and writes the merged dcfb-grid-v1 report
 * (byte-identical regardless of fleet size or cache warmth) to stdout
 * or --out FILE.  Workloads default to all seven; presets default to
 * the fig16 design set.
 *
 * A global --trace-spans FILE flag (before the command) records the
 * client side of the request as spans and sends the IDs along, so the
 * daemon's timeline stitches through this invocation.
 *
 * The reply document is printed to stdout; exit status is 0 when the
 * daemon replied "ok":true, 1 when it replied with an error, and 2 on
 * usage/connection problems.  `submit --wait` retries admission
 * rejects with the daemon's retry_after_ms hint and blocks until the
 * result is available.  The global --retry-budget-ms flag caps the
 * cumulative time `--wait` spends sleeping on failures (rejects,
 * reconnects); --recv-timeout-ms bounds each reply wait so a dropped
 * frame surfaces as a retryable error instead of a hang.  `metrics`
 * prints the daemon's Prometheus exposition body as text; --watch
 * redraws it every --interval-ms (default 1000) until interrupted, as
 * a live top-style view.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "cli/flag_docs.h"
#include "obs/span.h"
#include "svc/client.h"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    // Global and submit flag lists render from the same tables as
    // docs/FLAGS.md (src/cli/flag_docs.cpp).
    std::string global_flags = "[flags]";
    std::string submit_flags;
    std::string grid_flags;
    for (const auto &doc : dcfb::cli::allBinaryDocs()) {
        if (doc.binary == "dcfb-client (global flags)")
            global_flags = dcfb::cli::usageLine(doc);
        else if (doc.binary == "dcfb-client submit")
            submit_flags = dcfb::cli::usageLine(doc);
        else if (doc.binary == "dcfb-client grid")
            grid_flags = dcfb::cli::usageLine(doc);
    }
    std::fprintf(stderr,
                 "usage: %s %s COMMAND ...\n"
                 "  submit %s\n"
                 "  grid %s\n"
                 "  status JOB | fetch JOB | cancel JOB\n"
                 "  stats | ping | drain\n"
                 "  metrics [--watch] [--interval-ms N]\n"
                 "  raw '<request json>'\n",
                 argv0, global_flags.c_str(), submit_flags.c_str(),
                 grid_flags.c_str());
    std::exit(2);
}

int
printReply(const dcfb::rt::Expected<dcfb::obs::JsonValue> &reply)
{
    if (!reply.ok()) {
        std::fprintf(stderr, "dcfb-client: %s\n",
                     reply.error().render().c_str());
        return 2;
    }
    std::printf("%s\n", reply.value().dump(2).c_str());
    const dcfb::obs::JsonValue *ok = reply.value().find("ok");
    bool succeeded = ok &&
        ok->kind() == dcfb::obs::JsonValue::Kind::Bool && ok->asBool();
    return succeeded ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dcfb;

    std::string socket_path;
    std::string span_path;
    svc::RetryPolicy retry_policy;
    int i = 1;
    while (i + 1 < argc) {
        if (std::strcmp(argv[i], "--socket") == 0 ||
            std::strcmp(argv[i], "--endpoint") == 0) {
            socket_path = argv[i + 1];
            i += 2;
        } else if (std::strcmp(argv[i], "--trace-spans") == 0) {
            span_path = argv[i + 1];
            i += 2;
        } else if (std::strcmp(argv[i], "--retry-budget-ms") == 0) {
            retry_policy.budgetMs =
                static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
            i += 2;
        } else if (std::strcmp(argv[i], "--recv-timeout-ms") == 0) {
            retry_policy.recvTimeoutMs =
                static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
            i += 2;
        } else {
            break;
        }
    }
    if (socket_path.empty() || i >= argc)
        usage(argv[0]);
    std::string command = argv[i++];

    // RAII so every exit path below flushes the timeline.
    struct SpanGuard
    {
        bool open = false;
        ~SpanGuard()
        {
            if (open)
                dcfb::obs::Spans::close();
        }
    } span_guard;
    if (!span_path.empty()) {
        if (!obs::Spans::open(span_path)) {
            std::fprintf(stderr, "dcfb-client: cannot open %s\n",
                         span_path.c_str());
            return 2;
        }
        span_guard.open = true;
    }

    svc::Client client;
    client.setRetryPolicy(retry_policy);
    if (auto connected = client.connect(socket_path); !connected.ok()) {
        std::fprintf(stderr, "dcfb-client: %s\n",
                     connected.error().render().c_str());
        return 2;
    }

    if (command == "ping" || command == "stats" || command == "drain") {
        obs::JsonValue req = obs::JsonValue::object();
        req["op"] = command;
        return printReply(client.request(req));
    }

    if (command == "status" || command == "fetch" ||
        command == "cancel") {
        if (i >= argc)
            usage(argv[0]);
        obs::JsonValue req = obs::JsonValue::object();
        req["op"] = command;
        req["job"] = std::string(argv[i]);
        return printReply(client.request(req));
    }

    if (command == "raw") {
        if (i >= argc)
            usage(argv[0]);
        return printReply(client.requestLine(argv[i]));
    }

    if (command == "metrics") {
        bool watch = false;
        unsigned interval_ms = 1000;
        for (; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--watch") {
                watch = true;
            } else if (arg == "--interval-ms" && i + 1 < argc) {
                interval_ms = static_cast<unsigned>(std::atoi(argv[++i]));
            } else {
                usage(argv[0]);
            }
        }
        obs::JsonValue req = obs::JsonValue::object();
        req["op"] = "metrics";
        for (;;) {
            auto reply = client.request(req);
            if (!reply.ok()) {
                std::fprintf(stderr, "dcfb-client: %s\n",
                             reply.error().render().c_str());
                return 2;
            }
            const obs::JsonValue *body = reply.value().find("body");
            if (!body ||
                body->kind() != obs::JsonValue::Kind::String) {
                std::fprintf(stderr,
                             "dcfb-client: metrics reply has no body\n");
                return 1;
            }
            if (watch)
                std::printf("\x1b[H\x1b[2J"); // home + clear
            std::fputs(body->asString().c_str(), stdout);
            std::fflush(stdout);
            if (!watch)
                return 0;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(interval_ms ? interval_ms
                                                      : 1000));
        }
    }

    if (command == "grid") {
        obs::JsonValue greq = obs::JsonValue::object();
        greq["op"] = "grid";
        std::string out_path;
        for (; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> const char * {
                if (i + 1 >= argc)
                    usage(argv[0]);
                return argv[++i];
            };
            auto csvList = [&](const char *text) {
                obs::JsonValue list = obs::JsonValue::array();
                std::string item;
                for (const char *p = text;; ++p) {
                    if (*p == ',' || *p == '\0') {
                        if (!item.empty())
                            list.push(obs::JsonValue(item));
                        item.clear();
                        if (*p == '\0')
                            break;
                    } else {
                        item.push_back(*p);
                    }
                }
                return list;
            };
            if (arg == "--workloads")
                greq["workloads"] = csvList(next());
            else if (arg == "--presets")
                greq["presets"] = csvList(next());
            else if (arg == "--warm")
                greq["warm"] =
                    static_cast<std::uint64_t>(std::atoll(next()));
            else if (arg == "--measure")
                greq["measure"] =
                    static_cast<std::uint64_t>(std::atoll(next()));
            else if (arg == "--seed")
                greq["seed"] =
                    static_cast<std::uint64_t>(std::atoll(next()));
            else if (arg == "--out")
                out_path = next();
            else
                usage(argv[0]);
        }
        std::optional<obs::SpanScope> span;
        if (obs::Spans::enabled()) {
            span.emplace("client.grid", std::string());
            greq["trace_id"] = span->traceId();
            greq["parent_span"] = span->spanId();
        }
        if (auto sent = client.request(greq); !sent.ok()) {
            std::fprintf(stderr, "dcfb-client: %s\n",
                         sent.error().render().c_str());
            return 2;
        } else {
            // request() already consumed the first frame; fall through
            // to the event loop with it.
            obs::JsonValue event = sent.value();
            for (;;) {
                const obs::JsonValue *kind = event.find("event");
                std::string name = kind &&
                        kind->kind() == obs::JsonValue::Kind::String
                    ? kind->asString()
                    : std::string();
                if (name == "done") {
                    const obs::JsonValue *report = event.find("report");
                    std::string text =
                        report ? report->dump(2) : event.dump(2);
                    if (out_path.empty()) {
                        std::printf("%s\n", text.c_str());
                    } else {
                        std::FILE *f =
                            std::fopen(out_path.c_str(), "w");
                        if (!f) {
                            std::fprintf(stderr,
                                         "dcfb-client: cannot open %s\n",
                                         out_path.c_str());
                            return 2;
                        }
                        std::fprintf(f, "%s\n", text.c_str());
                        std::fclose(f);
                    }
                    obs::JsonValue summary = obs::JsonValue::object();
                    for (const auto &[key, value] : event.members())
                        if (key != "report")
                            summary[key] = value;
                    std::fprintf(stderr, "dcfb-client: %s\n",
                                 summary.dump().c_str());
                    return 0;
                }
                if (name == "error" || !event.find("ok") ||
                    (event.find("ok")->kind() ==
                         obs::JsonValue::Kind::Bool &&
                     !event.find("ok")->asBool())) {
                    std::fprintf(stderr, "dcfb-client: %s\n",
                                 event.dump().c_str());
                    return 1;
                }
                // Progress frames (accepted, cell) stream to stderr.
                std::fprintf(stderr, "dcfb-client: %s\n",
                             event.dump().c_str());
                auto frame = client.receive();
                if (!frame.ok()) {
                    std::fprintf(stderr, "dcfb-client: %s\n",
                                 frame.error().render().c_str());
                    return 2;
                }
                event = std::move(frame.value());
            }
        }
    }

    if (command != "submit")
        usage(argv[0]);

    obs::JsonValue req = obs::JsonValue::object();
    req["op"] = "submit";
    bool wait = false;
    for (; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--workload")
            req["workload"] = std::string(next());
        else if (arg == "--preset")
            req["preset"] = std::string(next());
        else if (arg == "--warm")
            req["warm"] =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--measure")
            req["measure"] =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--seed")
            req["seed"] =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--inject")
            req["inject"] = std::string(next());
        else if (arg == "--deadline-ms")
            req["deadline_ms"] =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--wait")
            wait = true;
        else
            usage(argv[0]);
    }
    if (!req.find("workload") || !req.find("preset"))
        usage(argv[0]);

    if (wait)
        return printReply(client.submitAndWait(req));
    return printReply(client.request(req));
}
