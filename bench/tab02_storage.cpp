/**
 * @file
 * Table II: storage and complexity comparison of SN4L+Dis+BTB, Shotgun
 * and Confluence.  Storage is audited from the actual configured
 * structures rather than restated.
 */

#include "bench_common.h"

#include "frontend/shotgun_btb.h"
#include "isa/predecoder.h"
#include "mem/l1d.h"
#include "prefetch/confluence.h"
#include "prefetch/sn4l_dis_btb.h"
#include "sim/system.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Table II - storage/complexity comparison",
                  "ours 7.6KB; Shotgun 6KB; Confluence ~200KB in LLC");

    // Audit our proposal from a live instance.
    auto profile = workload::serverProfile("Web Frontend");
    sim::SystemConfig cfg =
        sim::makeConfig(profile, sim::Preset::SN4LDisBtb);
    cfg.functionalWarmInstrs = 0;
    sim::System system(cfg);
    auto *ours = dynamic_cast<prefetch::Sn4lDisBtb *>(
        system.prefetcher.get());
    double ours_kb =
        static_cast<double>(ours->storageBits()) / 8.0 / 1024.0;

    // Shotgun: extra BTB segments (basic-block length + 2x8-bit
    // footprints + validity per U-BTB entry) + 64-entry L1i prefetch
    // buffer + 32-entry BTB prefetch buffer.
    frontend::ShotgunBtbConfig sg;
    double sg_bits = sg.ubtbEntries * (8 + 8 + 8 + 2) + 64 * (52 + 512) / 8.0
        + 32 * 96;
    double sg_kb = sg_bits / 8.0 / 1024.0;

    // Confluence/SHIFT metadata (history + index), normally virtualized
    // in the LLC.
    prefetch::ConfluenceConfig cc;
    mem::LlcConfig llc_cfg;
    noc::MeshConfig mesh_cfg;
    noc::MeshModel mesh(mesh_cfg);
    mem::MemoryModel memory(mem::MemoryConfig{});
    mem::Llc llc(llc_cfg, mesh, memory, 0);
    mem::L1iCache l1i(mem::L1iConfig{}, llc);
    prefetch::ConfluencePrefetcher conf(l1i, cc);
    double conf_kb =
        static_cast<double>(conf.storageBits()) / 8.0 / 1024.0;

    sim::Table table({"", "SN4L+Dis+BTB", "Shotgun", "Confluence"});
    table.addRow({"Storage overhead",
                  sim::Table::num(ours_kb, 1) + " KB",
                  sim::Table::num(sg_kb, 1) + " KB",
                  sim::Table::num(conf_kb, 0) + " KB (in LLC)"});
    table.addRow({"BTB modification", "No", "Yes (split U/C/RIB)",
                  "Yes (AirBTB / 16K)"});
    table.addRow({"Instr. prefetch buffer", "No", "Yes (64)", "No"});
    table.addRow({"Scalability (2x metadata)", "+6 KB", "+~20 KB (U-BTB)",
                  "-"});
    table.addRow({"Search complexity", "Low (direct-mapped)",
                  "High (3 BTBs + FA buffers)", "High (LLC indirection)"});
    table.addRow({"Modular", "Yes", "No", "No"});
    table.addRow({"Handles huge footprints", "Yes", "No", "Yes"});
    h.report(table, "SN4L+Dis+BTB and prior work");
    return 0;
}
