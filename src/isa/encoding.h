/**
 * @file
 * Synthetic fixed-length ISA encoding.
 *
 * The paper evaluates on UltraSPARC III (fixed 4-byte instructions).  We
 * define a synthetic 4-byte RISC encoding that a pre-decoder can actually
 * decode from raw block bytes, because pre-decoding is load-bearing for
 * the Dis prefetcher, the BTB prefetcher, Boomerang, and Shotgun: targets
 * of direct branches are *not* stored in prefetcher metadata, they are
 * recovered from the instruction bytes.
 *
 * Word layout (little-endian 32-bit):
 *   bits [3:0]   instruction kind (InstrKind)
 *   bits [31:8]  signed 24-bit target offset in instruction words,
 *                relative to this instruction's PC (direct branches only)
 */

#ifndef DCFB_ISA_ENCODING_H
#define DCFB_ISA_ENCODING_H

#include <cstdint>

#include "common/types.h"

namespace dcfb::isa {

/** Instruction classes of the synthetic ISA. */
enum class InstrKind : std::uint8_t {
    Alu = 0,          //!< register-to-register arithmetic
    Load = 1,         //!< memory read
    Store = 2,        //!< memory write
    CondBranch = 3,   //!< conditional direct branch
    Jump = 4,         //!< unconditional direct branch
    Call = 5,         //!< direct call (pushes return address)
    Return = 6,       //!< return (pops return address)
    IndirectCall = 7, //!< call through a register (target not encoded)
};

/** True for every control-flow-transfer kind. */
constexpr bool
isBranch(InstrKind kind)
{
    return kind >= InstrKind::CondBranch;
}

/** True when the target is recoverable from the instruction bytes. */
constexpr bool
hasEncodedTarget(InstrKind kind)
{
    return kind == InstrKind::CondBranch || kind == InstrKind::Jump ||
        kind == InstrKind::Call;
}

/** True for branches that are always taken when executed. */
constexpr bool
isUnconditional(InstrKind kind)
{
    return isBranch(kind) && kind != InstrKind::CondBranch;
}

/** A decoded fixed-length instruction. */
struct DecodedInstr
{
    InstrKind kind = InstrKind::Alu;
    bool hasTarget = false; //!< target field below is valid
    Addr target = kInvalidAddr;
};

/**
 * Encode @p instr located at @p pc into a 4-byte word.
 *
 * @pre For direct branches the target must be 4-byte aligned and within
 *      +/- 2^23 instruction words of @p pc.
 */
std::uint32_t encodeInstr(Addr pc, const DecodedInstr &instr);

/** Decode the 4-byte word @p word located at @p pc. */
DecodedInstr decodeInstr(Addr pc, std::uint32_t word);

/** Read a 32-bit little-endian word from @p bytes. */
std::uint32_t readWord(const std::uint8_t *bytes);

/** Write a 32-bit little-endian word to @p bytes. */
void writeWord(std::uint8_t *bytes, std::uint32_t word);

} // namespace dcfb::isa

#endif // DCFB_ISA_ENCODING_H
