/**
 * @file
 * Fixed-capacity FIFO queue.
 *
 * The paper's prefetch engine uses several small bounded queues (SeqQueue,
 * DisQueue, RLUQueue, the prefetch queue in front of the L1i ports).  This
 * container enforces the capacity: pushes beyond capacity are rejected so
 * the hardware limit is modeled, not papered over.
 *
 * Storage is a power-of-two ring sized once at construction -- these
 * queues are pushed/popped every simulated cycle, and the previous
 * std::deque backing paid node allocations on the hot path.
 */

#ifndef DCFB_COMMON_QUEUE_H
#define DCFB_COMMON_QUEUE_H

#include <bit>
#include <cassert>
#include <cstddef>
#include <iterator>
#include <type_traits>
#include <vector>

#include "exec/arena.h"

namespace dcfb {

/**
 * Bounded FIFO with explicit overflow signaling.
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity, exec::Arena *arena = nullptr)
        : cap(capacity), ring(std::bit_ceil(capacity ? capacity : 1),
                              exec::ArenaAlloc<T>(arena)),
          mask(ring.size() - 1)
    {
    }

    /** Append @p value; returns false (dropping it) when full. */
    bool
    push(const T &value)
    {
        if (count >= cap)
            return false;
        ring[(head + count) & mask] = value;
        ++count;
        return true;
    }

    /** Front element; queue must be non-empty. */
    const T &
    front() const
    {
        assert(count > 0);
        return ring[head];
    }

    /** Remove the front element; queue must be non-empty. */
    void
    pop()
    {
        assert(count > 0);
        // Drop owning payloads (strings, vectors) eagerly; trivial
        // elements are left in place -- the next push overwrites them.
        if constexpr (!std::is_trivially_destructible_v<T>)
            ring[head] = T{};
        head = (head + 1) & mask;
        --count;
    }

    bool empty() const { return count == 0; }
    bool full() const { return count >= cap; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return cap; }

    void
    clear()
    {
        while (count > 0)
            pop();
    }

    /** Forward const iterator, oldest to newest (draining logic,
     *  invariant sweeps and tests iterate queues in FIFO order). */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = const T *;
        using reference = const T &;

        const_iterator() = default;

        reference
        operator*() const
        {
            return q->ring[(q->head + pos) & q->mask];
        }

        pointer operator->() const { return &**this; }

        const_iterator &
        operator++()
        {
            ++pos;
            return *this;
        }

        const_iterator
        operator++(int)
        {
            const_iterator tmp = *this;
            ++pos;
            return tmp;
        }

        bool
        operator==(const const_iterator &other) const
        {
            return pos == other.pos;
        }

      private:
        friend class BoundedQueue;
        const_iterator(const BoundedQueue *queue, std::size_t position)
            : q(queue), pos(position)
        {
        }

        const BoundedQueue *q = nullptr;
        std::size_t pos = 0;
    };

    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, count); }

  private:
    std::size_t cap;
    exec::ArenaVector<T> ring;
    std::size_t mask;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace dcfb

#endif // DCFB_COMMON_QUEUE_H
