/**
 * @file
 * Golden-corpus generator: simulates every cell in
 * `tests/golden_cells.h` and writes one RunResult JSON per cell into
 * the output directory (default `tests/golden/`).
 *
 * Run through `scripts/update_golden.py`, which refuses to regenerate
 * over a dirty git tree -- the corpus must only ever change in a commit
 * that consciously accepts new results (see DESIGN.md section 10).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "../tests/golden_cells.h"
#include "sim/report.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    std::string dir = argc > 1 ? argv[1] : "tests/golden";
    const auto cells = golden::cells();
    std::printf("writing %zu golden cells to %s/\n", cells.size(),
                dir.c_str());
    for (const auto &cell : cells) {
        auto t0 = std::chrono::steady_clock::now();
        sim::RunResult result =
            sim::simulate(golden::config(cell), golden::windows());
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        std::string path = dir + "/" + golden::fileName(cell);
        std::ofstream out(path, std::ios::out | std::ios::trunc);
        if (!out.is_open()) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
            return 1;
        }
        out << sim::toJson(result).dump(2) << '\n';
        std::printf("  %-44s cycles=%-8llu %.2fs\n",
                    golden::fileName(cell).c_str(),
                    static_cast<unsigned long long>(result.cycles), secs);
    }
    return 0;
}
