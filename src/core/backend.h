/**
 * @file
 * Simplified out-of-order backend (Table III): 3-wide dispatch and
 * retirement, 128-entry ROB, 12 backend pipeline stages.
 *
 * The backend exists to convert instruction-supply gaps into cycles, so
 * the model is deliberately latency-oriented: dispatched instructions
 * enter the ROB with a completion cycle (ALU ops after a fixed latency,
 * loads when the L1d/LLC round trip finishes) and retire in order.  It
 * applies backpressure (ROB full) and exposes the dispatch-starvation
 * signal the frontend-stall accounting needs.
 */

#ifndef DCFB_CORE_BACKEND_H
#define DCFB_CORE_BACKEND_H

#include <bit>
#include <cstdint>

#include "common/stats.h"
#include "common/types.h"
#include "exec/arena.h"
#include "isa/encoding.h"

namespace dcfb::core {

/** Backend configuration. */
struct BackendConfig
{
    unsigned dispatchWidth = 3;
    unsigned retireWidth = 3;
    unsigned robEntries = 128;
    unsigned pipelineDepth = 12; //!< dispatch-to-writeback depth
    Cycle aluLatency = 1;
};

/**
 * ROB-based retirement model.
 */
class Backend
{
  public:
    explicit Backend(const BackendConfig &config = BackendConfig{},
                     exec::Arena *arena = nullptr)
        : cfg(config),
          rob(std::bit_ceil(std::size_t{config.robEntries ? config.robEntries
                                                          : 1}),
              exec::ArenaAlloc<Cycle>(arena)),
          robMask(rob.size() - 1),
          cDispatched(statSet.lazy("dispatched")),
          cRobFullCycles(statSet.lazy("rob_full_cycles")),
          cSquashes(statSet.lazy("squashes"))
    {}

    /** Can another instruction be dispatched this cycle? */
    bool
    canDispatch() const
    {
        return robCount < cfg.robEntries &&
            dispatchedThisCycle < cfg.dispatchWidth;
    }

    /**
     * Dispatch one instruction at cycle @p now.  @p data_ready is the
     * completion cycle of its memory access (loads/stores), or 0 for
     * non-memory instructions.
     */
    void
    dispatch(isa::InstrKind kind, Cycle now, Cycle data_ready)
    {
        Cycle complete = now + cfg.pipelineDepth + cfg.aluLatency;
        if (kind == isa::InstrKind::Load && data_ready > 0)
            complete = std::max(complete, data_ready);
        // Stores complete at writeback; the store buffer hides the miss.
        rob[(robHead + robCount) & robMask] = complete;
        ++robCount;
        ++dispatchedThisCycle;
        cDispatched.add();
    }

    /**
     * Advance one cycle: retire completed instructions in order.  Call
     * once per cycle *before* dispatching into the new cycle.
     */
    void
    beginCycle(Cycle now)
    {
        dispatchedThisCycle = 0;
        unsigned retired_now = 0;
        while (robCount > 0 && retired_now < cfg.retireWidth &&
               rob[robHead] <= now) {
            robHead = (robHead + 1) & robMask;
            --robCount;
            ++retired_now;
            ++retiredTotal;
        }
        if (robCount >= cfg.robEntries)
            cRobFullCycles.add();
    }

    bool robFull() const { return robCount >= cfg.robEntries; }
    bool robEmpty() const { return robCount == 0; }
    std::size_t robOccupancy() const { return robCount; }
    std::uint64_t retired() const { return retiredTotal; }

    /** Squash everything younger than retirement (pipeline flush). */
    void
    squash()
    {
        cSquashes.add();
    }

    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }
    const BackendConfig &config() const { return cfg; }

  private:
    BackendConfig cfg;
    /** In-order completion cycles as a fixed pow2 ring: the ROB is
     *  bounded by robEntries, so the previous std::deque's node churn
     *  bought nothing. */
    exec::ArenaVector<Cycle> rob;
    std::size_t robMask;
    std::size_t robHead = 0;
    std::size_t robCount = 0;
    unsigned dispatchedThisCycle = 0;
    std::uint64_t retiredTotal = 0;
    StatSet statSet;
    // Lazily-bound handles preserving key-presence semantics of the
    // previous string-keyed adds (dispatched fired per instruction --
    // a string hash on the hottest path in the simulator).
    obs::LazyCounter cDispatched;
    obs::LazyCounter cRobFullCycles;
    obs::LazyCounter cSquashes;
};

} // namespace dcfb::core

#endif // DCFB_CORE_BACKEND_H
