#include "rt/invariants.h"

#if DCFB_RT_INVARIANTS

namespace dcfb::rt {

std::vector<Violation>
InvariantRegistry::sweep(Cycle now) const
{
    std::vector<Violation> out;
    if (!enabledFlag)
        return out;
    for (const auto &entry : checks) {
        if (entry.gate && entry.gate() == 0) {
            ++skipCount;
            continue;
        }
        ++runCount;
        if (auto detail = entry.check(now))
            out.push_back({entry.name, std::move(*detail)});
    }
    return out;
}

Expected<void>
InvariantRegistry::check(Cycle now) const
{
    auto violations = sweep(now);
    if (violations.empty())
        return {};
    Error err(ErrorKind::Invariant,
              std::to_string(violations.size()) +
                  " invariant violation(s) at cycle " + std::to_string(now));
    for (const auto &v : violations)
        err.with(v.invariant, v.detail);
    return err;
}

} // namespace dcfb::rt

#endif // DCFB_RT_INVARIANTS
