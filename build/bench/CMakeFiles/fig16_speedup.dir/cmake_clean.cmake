file(REMOVE_RECURSE
  "CMakeFiles/fig16_speedup.dir/fig16_speedup.cpp.o"
  "CMakeFiles/fig16_speedup.dir/fig16_speedup.cpp.o.d"
  "fig16_speedup"
  "fig16_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
