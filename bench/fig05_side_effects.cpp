/**
 * @file
 * Figure 5: side effects of useless sequential prefetches - average LLC
 * access latency and L1i external bandwidth usage of NXL prefetchers,
 * normalized to the no-prefetcher baseline (with a 64-entry prefetch
 * buffer protecting the L1i from pollution).  Paper: N8L inflates LLC
 * latency by 28 % and external bandwidth by 7.2x.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 5 - useless-prefetch side effects",
                  "N8L: LLC latency +28%, L1i ext. bandwidth 7.2x");

    auto names = bench::allWorkloads();
    auto run_avg = [&](sim::Preset preset, double &llc_lat, double &bw) {
        llc_lat = 0.0;
        bw = 0.0;
        for (const auto &name : names) {
            auto res = sim::simulate(
                sim::makeConfig(workload::serverProfile(name), preset),
                bench::windows());
            llc_lat += res.ratio("llc.llc_latency_sum", "llc.llc_accesses");
            bw += static_cast<double>(
                res.stat("l1i.l1i_external_requests"));
        }
        llc_lat /= static_cast<double>(names.size());
        bw /= static_cast<double>(names.size());
    };

    double base_lat = 0.0, base_bw = 0.0;
    run_avg(sim::Preset::Baseline, base_lat, base_bw);

    sim::Table table({"design", "LLC latency (norm.)",
                      "L1i ext. bandwidth (norm.)"});
    table.addRow({"Baseline", "1.00", "1.00"});
    for (auto preset : {sim::Preset::NL, sim::Preset::N2L,
                        sim::Preset::N4L, sim::Preset::N8L}) {
        double lat = 0.0, bw = 0.0;
        run_avg(preset, lat, bw);
        table.addRow({sim::presetName(preset),
                      sim::Table::num(lat / base_lat),
                      sim::Table::num(bw / base_bw)});
    }
    h.report(table, "LLC latency and L1i external bandwidth (normalized)");
    return 0;
}
