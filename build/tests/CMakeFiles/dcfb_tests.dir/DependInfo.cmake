
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/dcfb_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/dcfb_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_fetch.cpp" "tests/CMakeFiles/dcfb_tests.dir/test_fetch.cpp.o" "gcc" "tests/CMakeFiles/dcfb_tests.dir/test_fetch.cpp.o.d"
  "/root/repo/tests/test_frontend.cpp" "tests/CMakeFiles/dcfb_tests.dir/test_frontend.cpp.o" "gcc" "tests/CMakeFiles/dcfb_tests.dir/test_frontend.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/dcfb_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/dcfb_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_mem.cpp" "tests/CMakeFiles/dcfb_tests.dir/test_mem.cpp.o" "gcc" "tests/CMakeFiles/dcfb_tests.dir/test_mem.cpp.o.d"
  "/root/repo/tests/test_prefetch.cpp" "tests/CMakeFiles/dcfb_tests.dir/test_prefetch.cpp.o" "gcc" "tests/CMakeFiles/dcfb_tests.dir/test_prefetch.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/dcfb_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/dcfb_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/dcfb_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/dcfb_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/dcfb_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/dcfb_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dcfb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
