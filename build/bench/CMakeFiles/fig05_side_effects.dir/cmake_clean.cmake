file(REMOVE_RECURSE
  "CMakeFiles/fig05_side_effects.dir/fig05_side_effects.cpp.o"
  "CMakeFiles/fig05_side_effects.dir/fig05_side_effects.cpp.o.d"
  "fig05_side_effects"
  "fig05_side_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_side_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
