# Empty compiler generated dependencies file for fig03_nl_seq_coverage.
# This may be replaced when dependencies are built.
