/**
 * @file
 * Figure 17: performance breakdown of SN4L+Dis+BTB and comparison to a
 * perfect frontend.  Paper: N4L < SN4L (13 %) < SN4L+Dis (15 %) <
 * SN4L+Dis+BTB (19 %) ~ Perfect L1i < Perfect L1i + BTBinf (29 %).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 17 - performance breakdown vs. perfect frontend",
                  "N4L < SN4L 13% < +Dis 15% < +BTB 19% <= PerfectL1i; "
                  "PerfectL1i+BTBinf 29%");

    std::vector<sim::Preset> designs = {
        sim::Preset::N4LPlain, sim::Preset::SN4L, sim::Preset::SN4LDis,
        sim::Preset::SN4LDisBtb, sim::Preset::PerfectL1i,
        sim::Preset::PerfectL1iBtb};
    std::vector<sim::Preset> all = designs;
    all.push_back(sim::Preset::Baseline);
    sim::ExperimentGrid grid(all, bench::windows());
    grid.run();

    sim::Table table({"design", "speedup (geomean)"});
    for (auto d : designs) {
        table.addRow({sim::presetName(d),
                      sim::Table::num(
                          grid.gmeanSpeedup(d, sim::Preset::Baseline), 3)});
    }
    h.report(table, "Performance breakdown of SN4L+Dis+BTB");
    return 0;
}
