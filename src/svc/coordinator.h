/**
 * @file
 * The fleet coordinator (dcfb-coord): shards experiment grids across N
 * dcfb-serve worker daemons and reassembles the results into one
 * deterministic report (DESIGN.md section 15).
 *
 * Topology.  The coordinator is the only process clients talk to; it
 * holds one dcfb-svc-v1 client connection per worker (Unix socket or
 * TCP).  Grid cells are placed on a consistent-hash ring keyed by the
 * cell's content-addressed ResultCache fingerprint — the same key the
 * workers' caches store results under.  Placement is therefore stable
 * across grids, coordinators and restarts: a repeat cell lands on the
 * worker whose cache already holds its result, so a warm fleet answers
 * a whole grid with zero simulations (the federated cache).
 *
 * Protocol (`dcfb-coord-v1`, NDJSON like the service protocol):
 *
 *   {"op":"ping"}                      one reply
 *   {"op":"stats"}                     fleet stats: coordinator
 *                                      counters + ring + live per-
 *                                      worker stats snapshots
 *   {"op":"drain"}                     stop admitting grids
 *   {"op":"grid","workloads":[...],"presets":[...],
 *    "warm":N,"measure":N,"seed":S}    STREAMED reply: one "accepted"
 *                                      event, one "cell" event per
 *                                      finished cell as it lands, one
 *                                      final "done" event carrying the
 *                                      merged report
 *
 * Every event carries `"schema":"dcfb-coord-v1"` and `"event"`; the
 * merged report inside "done" is its own `dcfb-grid-v1` document and
 * contains only deterministic content (cells in request order, each
 * with its fingerprint key and RunResult JSON) — no worker names,
 * cache flags or timings — so a 3-worker fleet, a 1-worker fleet and
 * a warm repeat all produce byte-identical reports.
 *
 * Failure handling.  Submits and fetches ride the svc::Client retry
 * machinery (jittered backoff, reconnect, idempotent resubmit).  A
 * worker that dies mid-grid (connection reset, reply timeout) is
 * removed from the ring and its unfinished cells are re-placed on the
 * survivors — re-placement only moves the dead worker's shard, and
 * each retried submit dedupes by fingerprint on the new owner, so a
 * rebalance never double-runs a cell that already completed.  Cells
 * have a bounded attempt count; an empty ring or an exhausted cell
 * fails the grid with a typed error event.
 */

#ifndef DCFB_SVC_COORDINATOR_H
#define DCFB_SVC_COORDINATOR_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "rt/error.h"
#include "sim/config.h"
#include "sim/simulator.h"
#include "svc/client.h"
#include "svc/hash_ring.h"
#include "svc/net.h"

namespace dcfb::svc {

/** Coordinator protocol schema tag, carried by every event. */
inline constexpr const char *kCoordSchema = "dcfb-coord-v1";

/** Schema of the merged grid report inside the "done" event. */
inline constexpr const char *kGridReportSchema = "dcfb-grid-v1";

/** One worker daemon the coordinator shards onto. */
struct WorkerSpec
{
    std::string name;     //!< ring identity (stable across restarts)
    std::string endpoint; //!< Unix-socket path or TCP host:port
};

/** Coordinator configuration (CLI flags of dcfb-coord map 1:1). */
struct CoordinatorConfig
{
    std::string socketPath;        //!< Unix-domain socket ("" = none)
    std::string listenAddr;        //!< TCP host:port ("" = none)
    std::vector<WorkerSpec> workers;
    unsigned vnodes = HashRing::kDefaultVnodes;
    sim::RunWindows defaultWindows; //!< when a grid names none
    std::uint64_t connectBudgetMs = 10000; //!< worker connect retries
    std::uint64_t recvTimeoutMs = 5000; //!< per-reply wait (death bound)
    std::uint64_t pollMs = 25;     //!< fetch poll interval per pass
    unsigned cellAttempts = 3;     //!< placements per cell before failing
    std::uint64_t jitterSeed = 0;  //!< backoff jitter (0 = per-pid)

    /** Optional per-config tweak applied before fingerprinting.  MUST
     *  match the workers' --config hook (tests shrink workloads on
     *  both sides); keys are computed independently on each side and
     *  federation relies on them agreeing. */
    std::function<void(sim::SystemConfig &)> configHook;
};

class Coordinator
{
  public:
    explicit Coordinator(CoordinatorConfig config);
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /** Validate the fleet and start the listener (when configured). */
    rt::Expected<void> start();

    /** Stop admitting grids; running grids finish. */
    void requestDrain();

    /** Full shutdown: drain, wait for running grids, close sockets. */
    void shutdown();

    bool draining() const { return drainFlag.load(); }

    /** Resolved TCP port (0 when no `listenAddr` was bound). */
    std::uint16_t tcpPort() const { return listener.tcpPort(); }

    /** Event sink for one request: called once per reply frame. */
    using EmitFn = std::function<void(const obs::JsonValue &event)>;

    /** One request line -> one or more emitted events (the socket
     *  handler and in-process tests share this entry point). */
    void handleLine(const std::string &line, const EmitFn &emit);

    /** The `stats` reply (fleet-stats op). */
    obs::JsonValue fleetStats();

  private:
    /** One grid cell: a (workload, preset) pair with its precomputed
     *  fingerprint key and submit document. */
    struct Cell
    {
        std::size_t index = 0;      //!< position in the merged report
        std::string workload;
        std::string presetName;
        std::string key;            //!< content-addressed cache key
        obs::JsonValue submitDoc;   //!< dcfb-svc-v1 submit request
        unsigned attempts = 0;      //!< placements so far
    };

    /** Per-cell completion as reported by a worker. */
    struct CellResult
    {
        obs::JsonValue result;      //!< RunResult JSON from the fetch
        bool cached = false;
        std::string worker;
    };

    struct GridOutcome
    {
        std::uint64_t cached = 0;
        std::uint64_t simulated = 0;
        std::uint64_t rebalanced = 0;
        std::uint64_t workerDeaths = 0;
    };

    void handleGrid(const obs::JsonValue &req, const EmitFn &emit);

    /** Run @p cells against worker @p w; completed cells land in
     *  @p results (mutex-guarded) with a streamed "cell" event each.
     *  Returns false when the worker died (unfinished cells stay
     *  un-filled and are re-placed by the caller). */
    bool runShard(const WorkerSpec &w, const std::vector<Cell *> &cells,
                  std::vector<std::optional<CellResult>> &results,
                  std::mutex &emitMutex, const EmitFn &emit,
                  const std::string &gridId, std::uint64_t traceId,
                  std::uint64_t parentSpan, std::string *failure);

    const WorkerSpec *findWorker(const std::string &name) const;

    CoordinatorConfig cfg;
    Listener listener;
    std::atomic<bool> drainFlag{false};

    mutable std::mutex mutex;             //!< stats + grid bookkeeping
    std::condition_variable gridsSettled;
    std::uint64_t activeGrids = 0;
    std::uint64_t nextGridId = 0;

    obs::StatRegistry stats;              //!< guarded by `mutex`
    obs::Counter cGrids, cGridFailures, cCells, cCellsCached,
        cCellsSimulated, cRebalanced, cWorkerDeaths, cCellRetries;
    obs::Histogram hGridUs, hCellUs;
    bool started = false;
};

} // namespace dcfb::svc

#endif // DCFB_SVC_COORDINATOR_H
