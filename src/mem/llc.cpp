#include "mem/llc.h"

#include <algorithm>
#include <cassert>

namespace dcfb::mem {

Llc::Llc(const LlcConfig &config, noc::MeshModel &mesh_, MemoryModel &mem_,
         unsigned core_tile, exec::Arena *arena)
    : cfg(config), mesh(mesh_), memory(mem_), coreTile(core_tile),
      array(SetAssocCache<LineMeta>::fromBytes(config.capacityBytes,
                                               config.assoc, arena)),
      bfSets(array.sets(), exec::ArenaAlloc<BfSet>(arena))
{
    assert(core_tile < mesh.numTiles());
    assert(cfg.banks <= mesh.numTiles());
    assert(!cfg.dvllc || cfg.assoc >= 2);
}

unsigned
Llc::effectiveWays(unsigned set_index) const
{
    if (cfg.dvllc && bfSets[set_index].holder)
        return cfg.assoc - 1;
    return cfg.assoc;
}

void
Llc::updateHolderMode(unsigned set_index)
{
    if (!cfg.dvllc)
        return;
    BfSet &bfs = bfSets[set_index];
    bool has_instr = false;
    for (const auto &line : array.set(set_index)) {
        if (line.valid && line.meta.isInstruction) {
            has_instr = true;
            break;
        }
    }
    if (has_instr && !bfs.holder) {
        // The LRU way flips to BF-holder: its resident block (if any) is
        // evicted.  We model the holder as the last way of the set.
        bfs.holder = true;
        auto set = array.set(set_index);
        auto &last = set[cfg.assoc - 1];
        if (last.valid) {
            // The block resident in the would-be holder way is moved into
            // the LRU way of the remaining ways (displacing that block);
            // this keeps the just-inserted instruction block alive when
            // it happened to land in the last way.
            auto *victim = array.lruWay(set_index, cfg.assoc - 1);
            if (victim->valid)
                statSet.add("dvllc_blocks_displaced");
            *victim = last;
            last.valid = false;
        }
        statSet.add("dvllc_holder_activations");
    } else if (!has_instr && bfs.holder) {
        bfs.holder = false;
        bfs.slots.clear();
        statSet.add("dvllc_holder_deactivations");
    } else if (bfs.holder) {
        // Drop BF slots whose block left the set.
        std::erase_if(bfs.slots, [&](const BfSet::Slot &s) {
            const auto *line = array.lookup(s.blockAddr);
            return line == nullptr;
        });
    }
}

Llc::BfSet::Slot *
Llc::bfSlot(Addr block_addr, bool allocate)
{
    unsigned si = array.setIndex(block_addr);
    BfSet &bfs = bfSets[si];
    for (auto &slot : bfs.slots) {
        if (slot.blockAddr == blockAlign(block_addr)) {
            slot.lastUse = ++bfTick;
            return &slot;
        }
    }
    if (!allocate || !bfs.holder)
        return nullptr;
    if (bfs.slots.size() < cfg.bfSlotsPerSet) {
        bfs.slots.push_back({blockAlign(block_addr), {}, ++bfTick});
        return &bfs.slots.back();
    }
    // Replace the LRU slot.
    auto victim = std::min_element(
        bfs.slots.begin(), bfs.slots.end(),
        [](const BfSet::Slot &a, const BfSet::Slot &b) {
            return a.lastUse < b.lastUse;
        });
    statSet.add("dvllc_bf_replacements");
    victim->blockAddr = blockAlign(block_addr);
    victim->bf.offsets.clear();
    victim->lastUse = ++bfTick;
    return &*victim;
}

void
Llc::recordBranchOffset(Addr block_addr, std::uint8_t byte_offset)
{
    statSet.add("bf_record_attempts");
    if (!cfg.dvllc) {
        return;
    }
    // Footprints can only be constructed for blocks whose set is in
    // holder mode (i.e. the block is instruction-tagged and resident).
    BfSet::Slot *slot = bfSlot(block_addr, true);
    if (!slot) {
        statSet.add("bf_record_no_holder");
        return;
    }
    auto &offs = slot->bf.offsets;
    if (std::find(offs.begin(), offs.end(), byte_offset) != offs.end())
        return;
    if (offs.size() >= cfg.branchesPerBf) {
        statSet.add("bf_branches_uncovered");
        return;
    }
    offs.push_back(byte_offset);
    statSet.add("bf_branches_recorded");
}

const BranchFootprint *
Llc::findFootprint(Addr block_addr) const
{
    unsigned si = array.setIndex(block_addr);
    for (const auto &slot : bfSets[si].slots) {
        if (slot.blockAddr == blockAlign(block_addr))
            return &slot.bf;
    }
    return nullptr;
}

std::size_t
Llc::bfHolderSets() const
{
    std::size_t n = 0;
    for (const auto &s : bfSets)
        n += s.holder;
    return n;
}

void
Llc::warmTouch(Addr addr, bool is_instruction)
{
    unsigned si = array.setIndex(addr);
    if (auto *line = array.lookup(addr)) {
        line->meta.isInstruction |= is_instruction;
    } else {
        array.insert(addr, LineMeta{is_instruction},
                     cfg.dvllc ? effectiveWays(si) : 0);
    }
    if (is_instruction)
        updateHolderMode(si);
}

Llc::AccessResult
Llc::access(Addr addr, Cycle now, bool is_instruction, bool want_bf)
{
    AccessResult res;
    statSet.add("llc_accesses");
    statSet.add(is_instruction ? "llc_instr_accesses" : "llc_data_accesses");

    unsigned bank = static_cast<unsigned>(blockNumber(addr) % cfg.banks);
    Cycle req_arrive =
        mesh.traverse(coreTile, bank, now, cfg.requestFlits);
    Cycle data_ready;

    unsigned si = array.setIndex(addr);
    if (auto *line = array.lookup(addr)) {
        res.hit = true;
        statSet.add("llc_hits");
        statSet.add(is_instruction ? "llc_instr_hits" : "llc_data_hits");
        line->meta.isInstruction |= is_instruction;
        data_ready = req_arrive + cfg.accessLatency;
        if (is_instruction)
            updateHolderMode(si);
    } else {
        statSet.add("llc_misses");
        Cycle mem_ready =
            memory.access(addr, req_arrive + cfg.accessLatency);
        auto evicted = array.insert(addr, LineMeta{is_instruction},
                                    cfg.dvllc ? effectiveWays(si) : 0);
        if (evicted.valid)
            statSet.add("llc_evictions");
        updateHolderMode(si);
        data_ready = mem_ready;
    }

    if (want_bf && is_instruction && cfg.dvllc) {
        statSet.add("bf_fetch_attempts");
        if (const BranchFootprint *bf = findFootprint(addr)) {
            res.bfValid = true;
            res.bf = *bf;
            statSet.add("bf_fetch_hits");
        } else {
            statSet.add("bf_fetch_uncovered");
        }
    }

    res.ready = mesh.traverse(bank, coreTile, data_ready, cfg.replyFlits);
    statSet.add("llc_latency_sum", res.ready - now);
    return res;
}

} // namespace dcfb::mem
