#include "mem/l1i.h"

#include <algorithm>
#include <cassert>

namespace dcfb::mem {

L1iCache::L1iCache(const L1iConfig &config, Llc &llc_)
    : cfg(config), llc(llc_),
      array(SetAssocCache<L1iMeta>::fromBytes(config.capacityBytes,
                                              config.assoc)),
      buffer(config.prefetchBufferEntries)
{
}

L1iCache::MshrEntry *
L1iCache::findMshr(Addr block_addr)
{
    Addr key = blockAlign(block_addr);
    for (auto &e : mshrs) {
        if (e.blockAddr == key)
            return &e;
    }
    return nullptr;
}

const L1iCache::MshrEntry *
L1iCache::findMshr(Addr block_addr) const
{
    Addr key = blockAlign(block_addr);
    for (const auto &e : mshrs) {
        if (e.blockAddr == key)
            return &e;
    }
    return nullptr;
}

L1iCache::MshrEntry &
L1iCache::issueFill(Addr block_addr, Cycle now, bool is_prefetch)
{
    statSet.add("l1i_external_requests");
    auto res = llc.access(blockAlign(block_addr), now, true,
                          cfg.fetchFootprints);
    MshrEntry entry;
    entry.blockAddr = blockAlign(block_addr);
    entry.issued = now;
    entry.ready = res.ready;
    entry.isPrefetch = is_prefetch;
    entry.bfValid = res.bfValid;
    entry.bf = res.bf;
    mshrs.push_back(std::move(entry));
    return mshrs.back();
}

void
L1iCache::notePrefetchedLineUse(Addr block_addr, L1iMeta &meta)
{
    // First demand use of a prefetched line: the prefetch fully covered
    // the fill latency (CMAL numerator == denominator), the prefetch was
    // useful, and per Section V.A the prefetch flag is reset.
    statSet.add("pf_useful");
    statSet.add("cmal_covered_cycles", meta.fillLatency);
    statSet.add("cmal_full_cycles", meta.fillLatency);
    meta.prefetched = false;
    meta.demanded = true;
    if (listener)
        listener->onPrefetchUsed(blockAlign(block_addr));
    if (observer)
        observer->onPrefetchUsed(blockAlign(block_addr));
}

L1iCache::DemandResult
L1iCache::demandAccess(Addr addr, Cycle now, bool wrong_path)
{
    Addr block = blockAlign(addr);
    DemandResult res;
    statSet.add("l1i_lookups");
    statSet.add(wrong_path ? "l1i_wp_accesses" : "l1i_accesses");

    bool sequential = lastDemandBlock != kInvalidAddr &&
        blockNumber(block) == blockNumber(lastDemandBlock) + 1;

    if (auto *line = array.lookup(block)) {
        res.hit = true;
        res.ready = now;
        if (!wrong_path)
            statSet.add("l1i_hits");
        if (line->meta.prefetched && !line->meta.demanded)
            notePrefetchedLineUse(block, line->meta);
        line->meta.demanded = true;
        if (listener)
            listener->onDemandAccess(block, true);
        if (observer)
            observer->onDemandAccess(block, true);
        if (!wrong_path)
            lastDemandBlock = block;
        return res;
    }

    if (cfg.usePrefetchBuffer && buffer.extract(block)) {
        // Move the block from the prefetch buffer into the cache proper.
        res.hit = true;
        res.fromPrefetchBuffer = true;
        res.ready = now;
        if (!wrong_path) {
            statSet.add("l1i_hits");
            statSet.add("l1i_pf_buffer_hits");
        }
        Cycle fill_latency = 0;
        if (auto it = bufferFillLatency.find(block);
            it != bufferFillLatency.end()) {
            fill_latency = it->second;
            bufferFillLatency.erase(it);
        }
        statSet.add("pf_useful");
        statSet.add("cmal_covered_cycles", fill_latency);
        statSet.add("cmal_full_cycles", fill_latency);
        L1iMeta meta;
        meta.demanded = true;
        meta.fillLatency = fill_latency;
        auto ev = array.insert(block, meta);
        if (ev.valid) {
            statSet.add("l1i_evictions");
            if (ev.meta.prefetched && !ev.meta.demanded)
                statSet.add("pf_useless");
            if (listener) {
                listener->onEvict(ev.blockAddr, ev.meta.prefetched,
                                  ev.meta.demanded);
            }
            if (observer) {
                observer->onEvict(ev.blockAddr, ev.meta.prefetched,
                                  ev.meta.demanded);
            }
        }
        if (listener) {
            listener->onPrefetchUsed(block);
            listener->onDemandAccess(block, true);
        }
        if (observer) {
            observer->onPrefetchUsed(block);
            observer->onDemandAccess(block, true);
        }
        if (!wrong_path)
            lastDemandBlock = block;
        return res;
    }

    // Miss path.
    if (!wrong_path) {
        statSet.add("l1i_misses");
        statSet.add(sequential ? "l1i_seq_misses" : "l1i_disc_misses");
    } else {
        statSet.add("l1i_wp_misses");
    }
    if (listener) {
        listener->onDemandAccess(block, false);
        listener->onDemandMiss(block, sequential);
    }
    if (observer) {
        observer->onDemandAccess(block, false);
        observer->onDemandMiss(block, sequential);
    }

    if (MshrEntry *entry = findMshr(block)) {
        res.hitInFlight = true;
        res.ready = entry->ready;
        if (entry->isPrefetch && !entry->demanded && !wrong_path) {
            // Late prefetch: covers only the cycles elapsed since issue.
            statSet.add("pf_late");
            statSet.add("pf_useful");
            statSet.add("cmal_covered_cycles", now - entry->issued);
            statSet.add("cmal_full_cycles", entry->ready - entry->issued);
        }
        if (!wrong_path) {
            entry->demanded = true;
            entry->demandCycle = now;
        }
        if (!wrong_path)
            lastDemandBlock = block;
        return res;
    }

    if (mshrs.size() >= cfg.mshrs)
        statSet.add("l1i_mshr_pressure"); // demand always gets a slot
    MshrEntry &entry = issueFill(block, now, false);
    entry.demanded = !wrong_path;
    entry.demandCycle = now;
    res.ready = entry.ready;
    if (!wrong_path) {
        statSet.add("demand_miss_cycles", entry.ready - now);
        lastDemandBlock = block;
    }
    return res;
}

L1iCache::PfOutcome
L1iCache::prefetch(Addr addr, Cycle now)
{
    Addr block = blockAlign(addr);
    statSet.add("l1i_lookups");
    statSet.add("pf_attempts");

    if (array.lookup(block, false))
        return PfOutcome::InCache;
    if (cfg.usePrefetchBuffer && buffer.contains(block))
        return PfOutcome::InBuffer;
    if (findMshr(block))
        return PfOutcome::InFlight;
    if (mshrs.size() >= cfg.mshrs) {
        statSet.add("pf_dropped_mshr");
        return PfOutcome::NoMshr;
    }
    issueFill(block, now, true);
    statSet.add("pf_issued");
    return PfOutcome::Issued;
}

void
L1iCache::installFill(const MshrEntry &entry)
{
    if (entry.bfValid)
        footprints[entry.blockAddr] = entry.bf;

    if (cfg.usePrefetchBuffer && entry.isPrefetch && !entry.demanded) {
        buffer.insert(entry.blockAddr);
        bufferFillLatency[entry.blockAddr] = entry.ready - entry.issued;
        if (listener) {
            listener->onFill(entry.blockAddr, true,
                             entry.bfValid ? &entry.bf : nullptr);
        }
        if (observer) {
            observer->onFill(entry.blockAddr, true,
                             entry.bfValid ? &entry.bf : nullptr);
        }
        return;
    }

    L1iMeta meta;
    meta.prefetched = entry.isPrefetch && !entry.demanded;
    meta.demanded = entry.demanded;
    meta.fillLatency = entry.ready - entry.issued;
    auto ev = array.insert(entry.blockAddr, meta);
    if (ev.valid) {
        statSet.add("l1i_evictions");
        if (ev.meta.prefetched && !ev.meta.demanded)
            statSet.add("pf_useless");
        if (listener) {
            listener->onEvict(ev.blockAddr, ev.meta.prefetched,
                              ev.meta.demanded);
        }
        if (observer) {
            observer->onEvict(ev.blockAddr, ev.meta.prefetched,
                              ev.meta.demanded);
        }
    }
    if (listener) {
        listener->onFill(entry.blockAddr, entry.isPrefetch,
                         entry.bfValid ? &entry.bf : nullptr);
    }
    if (observer) {
        observer->onFill(entry.blockAddr, entry.isPrefetch,
                         entry.bfValid ? &entry.bf : nullptr);
    }
}

void
L1iCache::tick(Cycle now)
{
    for (std::size_t i = 0; i < mshrs.size();) {
        if (mshrs[i].ready <= now) {
            MshrEntry done = std::move(mshrs[i]);
            mshrs.erase(mshrs.begin() + static_cast<std::ptrdiff_t>(i));
            installFill(done);
        } else {
            ++i;
        }
    }
}

void
L1iCache::warmInsert(Addr addr)
{
    Addr block = blockAlign(addr);
    if (auto *line = array.lookup(block)) {
        line->meta.demanded = true;
        return;
    }
    L1iMeta meta;
    meta.demanded = true;
    array.insert(block, meta);
    lastDemandBlock = block;
}

bool
L1iCache::lookup(Addr addr)
{
    statSet.add("l1i_lookups");
    return probe(addr);
}

bool
L1iCache::probe(Addr addr) const
{
    if (array.lookup(addr))
        return true;
    return cfg.usePrefetchBuffer && buffer.contains(addr);
}

bool
L1iCache::inFlight(Addr addr) const
{
    return findMshr(addr) != nullptr;
}

Cycle
L1iCache::fillReadyCycle(Addr addr) const
{
    const MshrEntry *entry = findMshr(addr);
    return entry ? entry->ready : 0;
}

L1iMeta *
L1iCache::lineMeta(Addr addr)
{
    auto *line = array.lookup(addr, false);
    return line ? &line->meta : nullptr;
}

const BranchFootprint *
L1iCache::footprintFor(Addr addr) const
{
    auto it = footprints.find(blockAlign(addr));
    return it == footprints.end() ? nullptr : &it->second;
}

} // namespace dcfb::mem
