#include "mem/l1i.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"
#include "rt/faults.h"
#include "rt/invariants.h"

namespace dcfb::mem {

namespace {

inline obs::MissClass
missClassOf(bool sequential)
{
    return sequential ? obs::MissClass::Sequential
                      : obs::MissClass::Discontinuity;
}

} // namespace

L1iCache::L1iCache(const L1iConfig &config, Llc &llc_, exec::Arena *arena)
    : cfg(config), llc(llc_),
      array(SetAssocCache<L1iMeta>::fromBytes(config.capacityBytes,
                                              config.assoc, arena)),
      buffer(config.prefetchBufferEntries),
      mshrs(exec::ArenaAlloc<MshrEntry>(arena))
{
    // The MSHR file is bounded by cfg.mshrs; reserving it keeps the
    // entries inside the slab (growth would abandon the old block).
    mshrs.reserve(cfg.mshrs);
    cLookups = statSet.counter("l1i_lookups");
    cAccesses = statSet.counter("l1i_accesses");
    cWpAccesses = statSet.counter("l1i_wp_accesses");
    cHits = statSet.counter("l1i_hits");
    cPfBufferHits = statSet.counter("l1i_pf_buffer_hits");
    cMisses = statSet.counter("l1i_misses");
    cSeqMisses = statSet.counter("l1i_seq_misses");
    cDiscMisses = statSet.counter("l1i_disc_misses");
    cWpMisses = statSet.counter("l1i_wp_misses");
    cEvictions = statSet.counter("l1i_evictions");
    cExternalRequests = statSet.counter("l1i_external_requests");
    cPfAttempts = statSet.counter("pf_attempts");
    cPfIssued = statSet.counter("pf_issued");
    cPfUseful = statSet.counter("pf_useful");
    cPfLate = statSet.counter("pf_late");
    cPfUseless = statSet.counter("pf_useless");
    cPfDroppedMshr = statSet.counter("pf_dropped_mshr");
    cMshrPressure = statSet.counter("l1i_mshr_pressure");
    cCmalCovered = statSet.counter("cmal_covered_cycles");
    cCmalFull = statSet.counter("cmal_full_cycles");
    cDemandMissCycles = statSet.counter("demand_miss_cycles");
    hMissLatency = statSet.histogram("miss_latency");
    hPfToUse = statSet.histogram("pf_to_use_distance");
    hMshrOccupancy = statSet.histogram("mshr_occupancy");
}

L1iCache::MshrEntry *
L1iCache::findMshr(Addr block_addr)
{
    Addr key = blockAlign(block_addr);
    for (auto &e : mshrs) {
        if (e.blockAddr == key)
            return &e;
    }
    return nullptr;
}

const L1iCache::MshrEntry *
L1iCache::findMshr(Addr block_addr) const
{
    Addr key = blockAlign(block_addr);
    for (const auto &e : mshrs) {
        if (e.blockAddr == key)
            return &e;
    }
    return nullptr;
}

L1iCache::MshrEntry &
L1iCache::issueFill(Addr block_addr, Cycle now, bool is_prefetch)
{
    cExternalRequests.add();
    hMshrOccupancy.sample(mshrs.size());
    auto res = llc.access(blockAlign(block_addr), now, true,
                          cfg.fetchFootprints);
    MshrEntry entry;
    entry.blockAddr = blockAlign(block_addr);
    entry.issued = now;
    entry.ready = res.ready;
    if (injector)
        entry.ready += injector->responseDelay();
    entry.isPrefetch = is_prefetch;
    entry.bfValid = res.bfValid;
    entry.bf = res.bf;
    mshrs.push_back(std::move(entry));
    return mshrs.back();
}

void
L1iCache::notePrefetchedLineUse(Addr block_addr, L1iMeta &meta, Cycle now,
                                bool sequential)
{
    // First demand use of a prefetched line: the prefetch fully covered
    // the fill latency (CMAL numerator == denominator), the prefetch was
    // useful, and per Section V.A the prefetch flag is reset.
    cPfUseful.add();
    cCmalCovered.add(meta.fillLatency);
    cCmalFull.add(meta.fillLatency);
    hPfToUse.sample(now >= meta.filledAt ? now - meta.filledAt : 0);
    if (obs::Tracing::enabled()) {
        obs::Tracing::record("l1i", now, blockAlign(block_addr),
                             missClassOf(sequential),
                             obs::MissOutcome::Covered);
    }
    meta.prefetched = false;
    meta.demanded = true;
    if (listener)
        listener->onPrefetchUsed(blockAlign(block_addr));
    if (observer)
        observer->onPrefetchUsed(blockAlign(block_addr));
}

void
L1iCache::noteEviction(Addr block_addr, const L1iMeta &meta, Cycle now)
{
    cEvictions.add();
    if (meta.prefetched && !meta.demanded) {
        cPfUseless.add();
        if (obs::Tracing::enabled()) {
            obs::Tracing::record("l1i", now, block_addr,
                                 obs::MissClass::None,
                                 obs::MissOutcome::Wasted);
        }
    }
    if (listener)
        listener->onEvict(block_addr, meta.prefetched, meta.demanded);
    if (observer)
        observer->onEvict(block_addr, meta.prefetched, meta.demanded);
}

L1iCache::DemandResult
L1iCache::demandAccess(Addr addr, Cycle now, bool wrong_path)
{
    Addr block = blockAlign(addr);
    DemandResult res;
    cLookups.add();
    (wrong_path ? cWpAccesses : cAccesses).add();

    bool sequential = lastDemandBlock != kInvalidAddr &&
        blockNumber(block) == blockNumber(lastDemandBlock) + 1;

    if (auto *line = array.lookup(block)) {
        res.hit = true;
        res.ready = now;
        if (!wrong_path)
            cHits.add();
        if (line->meta.prefetched && !line->meta.demanded)
            notePrefetchedLineUse(block, line->meta, now, sequential);
        line->meta.demanded = true;
        if (listener)
            listener->onDemandAccess(block, true);
        if (observer)
            observer->onDemandAccess(block, true);
        if (!wrong_path)
            lastDemandBlock = block;
        return res;
    }

    if (cfg.usePrefetchBuffer && buffer.extract(block)) {
        // Move the block from the prefetch buffer into the cache proper.
        res.hit = true;
        res.fromPrefetchBuffer = true;
        res.ready = now;
        if (!wrong_path) {
            cHits.add();
            cPfBufferHits.add();
        }
        BufferFill fill;
        if (auto it = bufferFillLatency.find(block);
            it != bufferFillLatency.end()) {
            fill = it->second;
            bufferFillLatency.erase(it);
        }
        cPfUseful.add();
        cCmalCovered.add(fill.latency);
        cCmalFull.add(fill.latency);
        hPfToUse.sample(now >= fill.filledAt ? now - fill.filledAt : 0);
        if (obs::Tracing::enabled()) {
            obs::Tracing::record("l1i", now, block, missClassOf(sequential),
                                 obs::MissOutcome::Covered);
        }
        L1iMeta meta;
        meta.demanded = true;
        meta.fillLatency = fill.latency;
        meta.filledAt = fill.filledAt;
        auto ev = array.insert(block, meta);
        if (ev.valid)
            noteEviction(ev.blockAddr, ev.meta, now);
        if (listener) {
            listener->onPrefetchUsed(block);
            listener->onDemandAccess(block, true);
        }
        if (observer) {
            observer->onPrefetchUsed(block);
            observer->onDemandAccess(block, true);
        }
        if (!wrong_path)
            lastDemandBlock = block;
        return res;
    }

    // Miss path.
    if (!wrong_path) {
        cMisses.add();
        (sequential ? cSeqMisses : cDiscMisses).add();
    } else {
        cWpMisses.add();
    }
    if (listener) {
        listener->onDemandAccess(block, false);
        listener->onDemandMiss(block, sequential);
    }
    if (observer) {
        observer->onDemandAccess(block, false);
        observer->onDemandMiss(block, sequential);
    }

    if (MshrEntry *entry = findMshr(block)) {
        res.hitInFlight = true;
        res.ready = entry->ready;
        bool late_prefetch =
            entry->isPrefetch && !entry->demanded && !wrong_path;
        if (late_prefetch) {
            // Late prefetch: covers only the cycles elapsed since issue.
            cPfLate.add();
            cPfUseful.add();
            cCmalCovered.add(now - entry->issued);
            cCmalFull.add(entry->ready - entry->issued);
        }
        if (!wrong_path) {
            hMissLatency.sample(entry->ready > now ? entry->ready - now
                                                   : 0);
            if (obs::Tracing::enabled()) {
                obs::Tracing::record("l1i", now, block,
                                     missClassOf(sequential),
                                     late_prefetch
                                         ? obs::MissOutcome::Late
                                         : obs::MissOutcome::Uncovered);
            }
            entry->demanded = true;
            entry->demandCycle = now;
            lastDemandBlock = block;
        }
        return res;
    }

    if (mshrs.size() >= cfg.mshrs)
        cMshrPressure.add(); // demand always gets a slot
    MshrEntry &entry = issueFill(block, now, false);
    entry.demanded = !wrong_path;
    entry.demandCycle = now;
    res.ready = entry.ready;
    if (!wrong_path) {
        cDemandMissCycles.add(entry.ready - now);
        hMissLatency.sample(entry.ready - now);
        if (obs::Tracing::enabled()) {
            obs::Tracing::record("l1i", now, block, missClassOf(sequential),
                                 obs::MissOutcome::Uncovered);
        }
        lastDemandBlock = block;
    }
    return res;
}

L1iCache::PfOutcome
L1iCache::prefetch(Addr addr, Cycle now)
{
    Addr block = blockAlign(addr);
    cLookups.add();
    cPfAttempts.add();

    if (array.lookup(block, false))
        return PfOutcome::InCache;
    if (cfg.usePrefetchBuffer && buffer.contains(block))
        return PfOutcome::InBuffer;
    if (findMshr(block))
        return PfOutcome::InFlight;
    if (mshrs.size() >= cfg.mshrs) {
        cPfDroppedMshr.add();
        return PfOutcome::NoMshr;
    }
    issueFill(block, now, true);
    cPfIssued.add();
    return PfOutcome::Issued;
}

void
L1iCache::installFill(const MshrEntry &entry)
{
    if (entry.bfValid)
        footprints[entry.blockAddr] = entry.bf;

    if (cfg.usePrefetchBuffer && entry.isPrefetch && !entry.demanded) {
        buffer.insert(entry.blockAddr);
        bufferFillLatency[entry.blockAddr] =
            BufferFill{entry.ready - entry.issued, entry.ready};
        if (listener) {
            listener->onFill(entry.blockAddr, true,
                             entry.bfValid ? &entry.bf : nullptr);
        }
        if (observer) {
            observer->onFill(entry.blockAddr, true,
                             entry.bfValid ? &entry.bf : nullptr);
        }
        return;
    }

    L1iMeta meta;
    meta.prefetched = entry.isPrefetch && !entry.demanded;
    meta.demanded = entry.demanded;
    meta.fillLatency = entry.ready - entry.issued;
    meta.filledAt = entry.ready;
    auto ev = array.insert(entry.blockAddr, meta);
    if (ev.valid)
        noteEviction(ev.blockAddr, ev.meta, entry.ready);
    if (listener) {
        listener->onFill(entry.blockAddr, entry.isPrefetch,
                         entry.bfValid ? &entry.bf : nullptr);
    }
    if (observer) {
        observer->onFill(entry.blockAddr, entry.isPrefetch,
                         entry.bfValid ? &entry.bf : nullptr);
    }
}

void
L1iCache::tick(Cycle now)
{
    for (std::size_t i = 0; i < mshrs.size();) {
        if (mshrs[i].ready <= now) {
            MshrEntry done = std::move(mshrs[i]);
            mshrs.erase(mshrs.begin() + static_cast<std::ptrdiff_t>(i));
            // Drop faults discard completed prefetch responses: the MSHR
            // is freed but the block never arrives.  Demand responses
            // (including demand-merged prefetches) always deliver -- a
            // dropped demand would wedge fetch forever.
            if (injector && done.isPrefetch && !done.demanded &&
                injector->dropPrefetchResponse()) {
                continue;
            }
            installFill(done);
        } else {
            ++i;
        }
    }
}

void
L1iCache::warmInsert(Addr addr)
{
    Addr block = blockAlign(addr);
    if (auto *line = array.lookup(block)) {
        line->meta.demanded = true;
        return;
    }
    L1iMeta meta;
    meta.demanded = true;
    array.insert(block, meta);
    lastDemandBlock = block;
}

bool
L1iCache::lookup(Addr addr)
{
    cLookups.add();
    return probe(addr);
}

bool
L1iCache::probe(Addr addr) const
{
    if (array.lookup(addr))
        return true;
    return cfg.usePrefetchBuffer && buffer.contains(addr);
}

bool
L1iCache::inFlight(Addr addr) const
{
    return findMshr(addr) != nullptr;
}

Cycle
L1iCache::fillReadyCycle(Addr addr) const
{
    const MshrEntry *entry = findMshr(addr);
    return entry ? entry->ready : 0;
}

L1iMeta *
L1iCache::lineMeta(Addr addr)
{
    auto *line = array.lookup(addr, false);
    return line ? &line->meta : nullptr;
}

const BranchFootprint *
L1iCache::footprintFor(Addr addr) const
{
    auto it = footprints.find(blockAlign(addr));
    return it == footprints.end() ? nullptr : &it->second;
}

std::vector<L1iCache::MshrView>
L1iCache::mshrState() const
{
    std::vector<MshrView> out;
    out.reserve(mshrs.size());
    for (const auto &e : mshrs) {
        out.push_back(
            {e.blockAddr, e.issued, e.ready, e.isPrefetch, e.demanded});
    }
    return out;
}

void
L1iCache::registerInvariants(rt::InvariantRegistry &reg,
                             Cycle miss_resolution_bound)
{
    // The MSHR walks are gated on occupancy: an idle file (the common
    // case between miss bursts) costs one size read per sweep instead
    // of a full -- for mshr_unique, quadratic -- walk.
    auto mshr_occupancy = [this] { return mshrs.size(); };

    reg.add("l1i.mshr_unique", mshr_occupancy,
            [this](Cycle) -> std::optional<std::string> {
        for (std::size_t i = 0; i < mshrs.size(); ++i) {
            for (std::size_t j = i + 1; j < mshrs.size(); ++j) {
                if (mshrs[i].blockAddr == mshrs[j].blockAddr) {
                    return "two MSHRs track block " +
                        std::to_string(mshrs[i].blockAddr);
                }
            }
        }
        return std::nullopt;
    });

    // Prefetches are only granted an MSHR while the file has a free
    // slot, so at most cfg.mshrs prefetch entries can ever be live
    // (demand misses may overcommit the file by design).
    reg.add("l1i.mshr_prefetch_bound", mshr_occupancy,
            [this](Cycle) -> std::optional<std::string> {
        std::size_t pf = 0;
        for (const auto &e : mshrs)
            pf += e.isPrefetch;
        if (pf > cfg.mshrs) {
            return std::to_string(pf) + " prefetch MSHRs live, file has " +
                std::to_string(cfg.mshrs) + " entries";
        }
        return std::nullopt;
    });

    reg.add("l1i.miss_resolution", mshr_occupancy,
            [this, miss_resolution_bound](
                Cycle now) -> std::optional<std::string> {
        if (miss_resolution_bound == 0)
            return std::nullopt;
        for (const auto &e : mshrs) {
            if (now > e.issued && now - e.issued > miss_resolution_bound) {
                return "block " + std::to_string(e.blockAddr) +
                    " unresolved for " + std::to_string(now - e.issued) +
                    " cycles (issued " + std::to_string(e.issued) +
                    ", ready " + std::to_string(e.ready) + ")";
            }
        }
        return std::nullopt;
    });

    // SN4L metadata consistency: the prefetch flag clears on first
    // demand use, so prefetched && demanded can never coexist, and the
    // local prefetch status is a 4-bit field.
    reg.add("l1i.line_meta",
            [this](Cycle) -> std::optional<std::string> {
        for (unsigned s = 0; s < array.sets(); ++s) {
            for (const auto &line : array.set(s)) {
                if (!line.valid)
                    continue;
                if (line.meta.prefetched && line.meta.demanded) {
                    return "block " + std::to_string(line.blockAddr) +
                        " is both prefetched and demanded";
                }
                if (line.meta.localStatus > 0xf) {
                    return "block " + std::to_string(line.blockAddr) +
                        " local status 0x" +
                        std::to_string(line.meta.localStatus) +
                        " exceeds 4 bits";
                }
            }
        }
        return std::nullopt;
    });

    // Demand-access conservation: every correct-path access is either a
    // hit or a miss, with nothing double-counted or lost.
    reg.add("l1i.access_conservation",
            [this](Cycle) -> std::optional<std::string> {
        std::uint64_t accesses = statSet.get("l1i_accesses");
        std::uint64_t hits = statSet.get("l1i_hits");
        std::uint64_t misses = statSet.get("l1i_misses");
        if (accesses != hits + misses) {
            return std::to_string(accesses) + " accesses != " +
                std::to_string(hits) + " hits + " +
                std::to_string(misses) + " misses";
        }
        return std::nullopt;
    });
}

} // namespace dcfb::mem
