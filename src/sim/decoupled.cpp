#include "sim/decoupled.h"

#include <algorithm>
#include <bit>

#include "obs/trace.h"
#include "prefetch/fdip.h"
#include "rt/invariants.h"

namespace dcfb::sim {

using isa::InstrKind;
using workload::TraceEntry;

namespace {
constexpr std::uint64_t kMaxBbScan = 48; //!< BB length bound (instrs)
constexpr std::size_t kRecStackBound = 64;
} // namespace

DecoupledFetchEngine::DecoupledFetchEngine(
    const FetchConfig &config, Kind kind_, workload::TraceWalker &walker_,
    mem::L1iCache &l1i_, frontend::Tage &tage_,
    const isa::Predecoder &predecoder, unsigned boomerang_btb_entries,
    const frontend::ShotgunBtbConfig &shotgun_cfg,
    frontend::Btb *conv_btb, prefetch::Fdip *fdip_, exec::Arena *arena)
    : FetchEngine(config, arena), kind(kind_), walker(walker_), l1i(l1i_),
      tage(tage_), pd(predecoder), bbtb(boomerang_btb_entries, 4),
      sgBtb(shotgun_cfg), btbPb(32, 32, arena), convBtb(conv_btb),
      fdip(fdip_), ftq(config.ftqEntries)
{
    cFetched = statSet.counter("fe_fetched");
    cIcacheStallCycles = statSet.counter("fe_icache_stall_cycles");
    cEmptyFtqStallCycles = statSet.counter("fe_empty_ftq_stall_cycles");
    cBpuStallCycles = statSet.counter("bpu_stall_cycles");
    cFtqPushes = statSet.counter("ftq_pushes");
    hFtqOcc = statSet.histogram("ftq_occ");
    hBufferOcc = statSet.histogram("fetch_buffer_occ");
    cReactiveFills = statSet.lazy("bpu_reactive_fills");
    cSgPrefillBlocks = statSet.lazy("sg_prefill_blocks");
    cBoomerangPrefillEntries = statSet.lazy("boomerang_prefill_entries");
    cSgFootprintPrefetches = statSet.lazy("sg_footprint_prefetches");
    cSgCbtbFills = statSet.lazy("sg_cbtb_buffer_fills");
    cSgRegionSkipped = statSet.lazy("sg_region_prefetch_skipped");
    cBpuTargetMispredicts = statSet.lazy("bpu_target_mispredicts");
    cBpuMispredicts = statSet.lazy("bpu_mispredicts");
    cBpuRasMispredicts = statSet.lazy("bpu_ras_mispredicts");
    cSquashes = statSet.lazy("fe_squashes");
    cWrongPathPrefetches = statSet.lazy("bpu_wrong_path_prefetches");
    cBbBtbMisses = statSet.lazy("boomerang_bbbtb_miss");
    cCbtbMisses = statSet.lazy("sg_cbtb_miss");
    cUbtbMisses = statSet.lazy("sg_ubtb_miss");
    cRibMisses = statSet.lazy("sg_rib_miss");
    cFdipBtbMisses = statSet.lazy("fdip_btb_miss");

    // Pre-size the lookahead ring past the common BPU/fetch separation
    // (FTQ depth x BB-scan bound) so growth is exceptional.
    std::size_t want = std::bit_ceil(
        std::size_t{config.ftqEntries + 2} * kMaxBbScan);
    look.resize(want);
    lookMask = want - 1;
}

void
DecoupledFetchEngine::extendLook(std::uint64_t idx)
{
    while (idx >= lookEnd) {
        if (lookEnd - lookBase == look.size()) {
            // Grow 2x, re-placing the window by absolute index.
            std::vector<TraceEntry> bigger(look.size() * 2);
            std::size_t bigger_mask = bigger.size() - 1;
            for (std::uint64_t i = lookBase; i < lookEnd; ++i)
                bigger[i & bigger_mask] = look[i & lookMask];
            look.swap(bigger);
            lookMask = bigger_mask;
        }
        look[lookEnd & lookMask] = walker.next();
        ++lookEnd;
    }
}

const TraceEntry &
DecoupledFetchEngine::entryAt(std::uint64_t idx)
{
    if (idx >= lookEnd) [[unlikely]]
        extendLook(idx);
    return look[idx & lookMask];
}

std::uint64_t
DecoupledFetchEngine::scanTerminator(std::uint64_t idx)
{
    for (std::uint64_t i = idx; i < idx + kMaxBbScan; ++i) {
        if (entryAt(i).isBranch())
            return i;
    }
    return idx + kMaxBbScan - 1; // giant straight-line region
}

void
DecoupledFetchEngine::reactiveStall(Addr addr, Cycle now,
                                    obs::LazyCounter &stat)
{
    stat.add();
    if (obs::Tracing::enabled()) {
        obs::Tracing::record("btb", now, addr, obs::MissClass::Btb,
                             obs::MissOutcome::Uncovered);
    }
    Addr block = blockAlign(addr);
    Cycle ready;
    if (l1i.probe(block)) {
        ready = now + cfg.predecodeLatency;
    } else {
        l1i.prefetch(block, now);
        Cycle fill = l1i.fillReadyCycle(block);
        ready = (fill ? fill : now + 1) + cfg.predecodeLatency;
    }
    bpuStalledUntil = std::max(bpuStalledUntil, ready);
    cReactiveFills.add();
}

void
DecoupledFetchEngine::prefillFromBlock(Addr block_addr)
{
    auto branches = pd.predecodeBlock(block_addr);
    if (branches.empty())
        return;
    btbPb.insertBlock(block_addr, branches);
    cSgPrefillBlocks.add();
}

void
DecoupledFetchEngine::boomerangPrefill(Addr block_addr)
{
    // Reconstruct basic-block entries from a pre-decoded block: each
    // branch terminates a BB; the BB is assumed to start right after the
    // previous branch in the block (or at the block head).  BBs that
    // straddle into this block from a predecessor are missed - a real
    // Boomerang pre-decoder has the same blind spot without FTQ context.
    auto branches = pd.predecodeBlock(block_addr);
    Addr bb_start = blockAlign(block_addr);
    for (const auto &b : branches) {
        frontend::BbBtbEntry entry;
        Addr branch_pc = blockAlign(block_addr) + b.byteOffset;
        entry.sizeBytes =
            static_cast<std::uint16_t>(branch_pc + kInstrBytes - bb_start);
        entry.branchOffset =
            static_cast<std::uint16_t>(branch_pc - bb_start);
        entry.kind = b.kind;
        entry.target = b.hasTarget ? b.target : kInvalidAddr;
        bbtb.update(bb_start, entry);
        cBoomerangPrefillEntries.add();
        bb_start = branch_pc + kInstrBytes;
    }
}

void
DecoupledFetchEngine::onFill(Addr block_addr, bool was_prefetch,
                             const mem::BranchFootprint *bf)
{
    (void)bf;
    if (!was_prefetch)
        return;
    // Proactive BTB prefill from prefetched blocks (both BTB-directed
    // baselines pre-decode prefetched blocks to prime their BTB state).
    // FDIP deliberately has no such path: its fills feed the prefetcher's
    // own accounting (the Fdip unit is the L1i listener), and BTB misses
    // keep stalling the BPU — that gap is what the comparison measures.
    if (kind == Kind::Fdip)
        return;
    if (kind == Kind::Boomerang)
        boomerangPrefill(block_addr);
    else
        prefillFromBlock(block_addr);
}

void
DecoupledFetchEngine::footprintPrefetch(Addr anchor_block,
                                        std::uint8_t bits, Cycle now)
{
    for (unsigned i = 0; i < frontend::kFootprintBlocks; ++i) {
        if (!((bits >> i) & 1))
            continue;
        Addr block = anchor_block + Addr{i} * kBlockBytes;
        auto out = l1i.prefetch(block, now);
        cSgFootprintPrefetches.add();
        if (out == mem::L1iCache::PfOutcome::InCache)
            prefillFromBlock(block); // already here: prefill immediately
        // Blocks still in flight prefill via onFill when they arrive.
    }
}

bool
DecoupledFetchEngine::boomerangLookup(Addr bb_start, std::uint64_t term_idx,
                                      Cycle now)
{
    if (cfg.perfectBtb)
        return true;
    const auto *entry = bbtb.lookup(bb_start);
    if (entry) {
        const TraceEntry &term = entryAt(term_idx);
        if (term.taken && entry->target != kInvalidAddr &&
            entry->target != term.target) {
            // Stale stored target (indirect call): the BPU ran down the
            // wrong path until the execute-stage redirect.
            targetMispredict = true;
            wrongPathTarget = entry->target;
            frontend::BbBtbEntry fixed = *entry;
            fixed.target = term.target;
            bbtb.update(bb_start, fixed);
        }
        return true;
    }
    // Reactive fill: fetch + pre-decode the block holding the BB, then
    // install the discovered entry (modeled with the trace oracle, which
    // is what a correct pre-decode reconstructs).
    reactiveStall(bb_start, now, cBbBtbMisses);
    const TraceEntry &term = entryAt(term_idx);
    frontend::BbBtbEntry fresh;
    fresh.sizeBytes = static_cast<std::uint16_t>(
        std::min<std::uint64_t>(term.pc + term.len - bb_start, 0xffff));
    fresh.branchOffset = static_cast<std::uint16_t>(
        std::min<std::uint64_t>(term.pc - bb_start, 0xffff));
    fresh.kind = term.kind;
    fresh.target = term.target;
    bbtb.update(bb_start, fresh);
    return false;
}

bool
DecoupledFetchEngine::shotgunLookup(Addr bb_start, std::uint64_t term_idx,
                                    Cycle now)
{
    (void)bb_start; // Shotgun keys on the terminator, not the BB start
    if (cfg.perfectBtb)
        return true;
    const TraceEntry &term = entryAt(term_idx);
    switch (term.kind) {
      case InstrKind::CondBranch: {
        if (sgBtb.lookupC(term.pc))
            return true;
        // The 32-entry prefill buffer backs the tiny C-BTB.
        if (const auto *b = btbPb.findBranch(term.pc)) {
            sgBtb.updateC(term.pc, b->hasTarget ? b->target : term.target);
            cSgCbtbFills.add();
            if (obs::Tracing::enabled()) {
                obs::Tracing::record("btb", now, term.pc,
                                     obs::MissClass::Btb,
                                     obs::MissOutcome::Covered);
            }
            return true;
        }
        reactiveStall(term.pc, now, cCbtbMisses);
        sgBtb.updateC(term.pc, term.target);
        prefillFromBlock(blockAlign(term.pc));
        return false;
      }
      case InstrKind::Jump:
      case InstrKind::Call:
      case InstrKind::IndirectCall: {
        frontend::UBtbEntry *ue = sgBtb.lookupU(term.pc);
        if (!ue) {
            // U-BTB miss: reactive prefill restores the target but NOT
            // the footprints (Section III).
            reactiveStall(term.pc, now, cUbtbMisses);
            sgBtb.updateU(term.pc, term.target, term.kind,
                          /*from_prefill=*/true);
            return false;
        }
        if (term.taken && ue->target != term.target) {
            // Stale/indirect target: the BPU followed the stored target
            // down the wrong path; charged as a mispredict in bpuStep.
            targetMispredict = true;
            wrongPathTarget = ue->target;
            ue->target = term.target;
        }
        if (ue->callFpValid) {
            footprintPrefetch(blockAlign(term.target), ue->callFootprint,
                              now);
        } else {
            cSgRegionSkipped.add();
        }
        return true;
      }
      case InstrKind::Return: {
        if (!sgBtb.lookupRib(term.pc)) {
            reactiveStall(term.pc, now, cRibMisses);
            sgBtb.updateRib(term.pc);
            return false;
        }
        // Return footprint: prefetch around the return site using the
        // matching call's U-BTB entry.
        if (!recStack.empty()) {
            const CallRecord &top = recStack.back();
            if (frontend::UBtbEntry *ce = sgBtb.findU(top.callPc)) {
                if (ce->retFpValid) {
                    footprintPrefetch(blockAlign(term.target),
                                      ce->retFootprint, now);
                }
            }
        }
        return true;
      }
      default:
        return true;
    }
}

bool
DecoupledFetchEngine::fdipLookup(Addr bb_start, std::uint64_t term_idx,
                                 Cycle now)
{
    (void)bb_start; // FDIP's BPU keys the conventional BTB by branch PC
    if (cfg.perfectBtb)
        return true;
    const TraceEntry &term = entryAt(term_idx);
    if (!term.isBranch())
        return true; // straight-line region: nothing to look up
    if (const frontend::BtbEntry *entry = convBtb->lookup(term.pc)) {
        if (term.taken && entry->target != kInvalidAddr &&
            entry->target != term.target) {
            // Stale stored target: the BPU ran down the stored path
            // until the execute-stage redirect (charged in bpuStep).
            targetMispredict = true;
            wrongPathTarget = entry->target;
            convBtb->update(term.pc, term.target, term.kind);
        }
        return true;
    }
    if (term.taken) {
        // The BPU does not know this is a branch: it runs ahead down
        // the fall-through path until decode discovers the branch, then
        // refills reactively like the other decoupled designs.
        reactiveStall(term.pc, now, cFdipBtbMisses);
        convBtb->update(term.pc, term.target, term.kind);
        return false;
    }
    // Fall-through fetch is accidentally correct for a not-taken
    // conditional; install the entry and keep running ahead.
    convBtb->update(term.pc, term.target, term.kind);
    return true;
}

void
DecoupledFetchEngine::bpuStep(Cycle now)
{
    hFtqOcc.sample(ftq.size());
    if (now < bpuStalledUntil) {
        cBpuStallCycles.add();
        return;
    }
    if (ftq.full())
        return;

    Addr bb_start = entryAt(bpuIdx).pc;
    std::uint64_t term_idx = scanTerminator(bpuIdx);
    const TraceEntry term = entryAt(term_idx);

    targetMispredict = false;
    wrongPathTarget = kInvalidAddr;
    bool ok;
    switch (kind) {
      case Kind::Boomerang:
        ok = boomerangLookup(bb_start, term_idx, now);
        break;
      case Kind::Shotgun:
        ok = shotgunLookup(bb_start, term_idx, now);
        break;
      default:
        ok = fdipLookup(bb_start, term_idx, now);
        break;
    }
    if (!ok)
        return; // BPU stalled on a reactive prefill

    // Direction prediction / RAS at the BPU.  On a misprediction the
    // BPU stalls for the redirect penalty: everything it would have
    // discovered in that window is wrong-path work.  FTQ contents are
    // all older than the branch and legitimately survive the squash -
    // that latency-hiding is the decoupled frontend's genuine benefit.
    bool mispredicted = targetMispredict;
    if (targetMispredict)
        cBpuTargetMispredicts.add();
    if (term.isBranch()) {
        if (term.kind == InstrKind::CondBranch) {
            bool pred = tage.predict(term.pc);
            tage.update(term.pc, term.taken);
            if (pred != term.taken) {
                cBpuMispredicts.add();
                mispredicted = true;
            }
        } else {
            tage.updateHistoryUnconditional(term.pc);
            if (term.kind == InstrKind::Call ||
                term.kind == InstrKind::IndirectCall) {
                ras.push(term.pc + term.len);
            } else if (term.kind == InstrKind::Return) {
                Addr predicted = ras.pop();
                if (predicted != term.target) {
                    cBpuRasMispredicts.add();
                    mispredicted = true;
                }
            }
        }
    }

    ftq.push(frontend::FtqEntry{bpuIdx, term_idx + 1, bb_start});
    cFtqPushes.add();

    // Instruction prefetch from the FTQ contents: this is Boomerang's
    // L1i prefetcher.  Shotgun deliberately does NOT get this path -
    // its instruction prefetching is driven by the U-BTB footprints
    // (Section III), which is exactly why footprint misses hurt it.
    if (!cfg.perfectL1i && kind == Kind::Boomerang) {
        Addr first = blockAlign(bb_start);
        Addr last = blockAlign(term.pc + term.len - 1);
        for (Addr b = first; b <= last; b += kBlockBytes)
            l1i.prefetch(b, now);
    }
    // FDIP routes the same FTQ contents through its candidate queue
    // (bounded, deduplicated, port-limited) instead of prefetching
    // unconditionally — that queue discipline is the design under test.
    if (!cfg.perfectL1i && kind == Kind::Fdip) {
        fdip->onFtqAppend(blockAlign(bb_start),
                          blockAlign(term.pc + term.len - 1), ftq.size());
    }
    bpuIdx = term_idx + 1;

    if (mispredicted) {
        bpuStalledUntil = now + cfg.execRedirectPenalty;
        cSquashes.add();
        // Wrong-path exploration until the redirect: the BPU's prefetch
        // machinery runs down the bogus path, wasting bandwidth and
        // polluting the cache - same cost the coupled frontend pays.
        if (!cfg.perfectL1i) {
            Addr wrong = wrongPathTarget != kInvalidAddr
                ? wrongPathTarget
                : term.pc + term.len;
            l1i.prefetch(blockAlign(wrong), now);
            l1i.prefetch(blockAlign(wrong) + kBlockBytes, now);
            cWrongPathPrefetches.add(2);
        }
    }
}

void
DecoupledFetchEngine::recordFetched(const TraceEntry &e)
{
    if (kind != Kind::Shotgun)
        return;
    Addr bn = blockNumber(e.pc);

    // Call-footprint accumulation for the innermost active call.
    if (!recStack.empty()) {
        CallRecord &top = recStack.back();
        if (bn >= top.targetBlock &&
            bn < top.targetBlock + frontend::kFootprintBlocks) {
            top.fp |= static_cast<std::uint8_t>(
                1u << (bn - top.targetBlock));
        }
    }
    // Return-footprint windows.
    for (auto &r : retRecords) {
        if (bn >= r.retBlock &&
            bn < r.retBlock + frontend::kFootprintBlocks) {
            r.fp |= static_cast<std::uint8_t>(1u << (bn - r.retBlock));
        }
        --r.remaining;
    }
    std::erase_if(retRecords, [&](RetRecord &r) {
        if (r.remaining != 0)
            return false;
        if (frontend::UBtbEntry *e2 = sgBtb.findU(r.callPc)) {
            e2->retFootprint = r.fp;
            e2->retFpValid = true;
        }
        return true;
    });

    if (e.kind == InstrKind::Call || e.kind == InstrKind::IndirectCall) {
        if (recStack.size() >= kRecStackBound)
            recStack.erase(recStack.begin());
        recStack.push_back({e.pc, blockNumber(e.target), 0});
    } else if (e.kind == InstrKind::Return && !recStack.empty()) {
        CallRecord done = recStack.back();
        recStack.pop_back();
        // Commit the call footprint to the retired-stream U-BTB entry.
        if (frontend::UBtbEntry *ce = sgBtb.findU(done.callPc)) {
            ce->callFootprint = done.fp;
            ce->callFpValid = true;
        } else {
            // The retired stream (re)installs the entry with footprints.
            auto &fresh = sgBtb.updateU(done.callPc, e.pc, InstrKind::Call,
                                        /*from_prefill=*/false);
            fresh.callFootprint = done.fp;
            fresh.callFpValid = true;
        }
        retRecords.push_back({done.callPc, blockNumber(e.target), 0, 32});
    }
}

void
DecoupledFetchEngine::fetchStep(Cycle now)
{
    hBufferOcc.sample(fetchBuffer.size());
    if (blockedOnFill) {
        if (now < fillReady) {
            cIcacheStallCycles.add();
            return;
        }
        blockedOnFill = false;
    }

    unsigned budget = cfg.fetchWidth;
    lastCycleEmptyFtq = false;
    while (budget > 0 && fetchBuffer.size() < cfg.fetchBufferEntries) {
        if (ftq.empty()) {
            if (budget == cfg.fetchWidth) {
                lastCycleEmptyFtq = true;
                cEmptyFtqStallCycles.add();
            }
            break;
        }
        frontend::FtqEntry cur = ftq.front();
        const TraceEntry e = entryAt(fetchIdx);

        Addr first = blockAlign(e.pc);
        Addr last = blockAlign(e.pc + e.len - 1);
        bool missed = false;
        for (Addr block = first; block <= last; block += kBlockBytes) {
            if (block == currentBlock)
                continue;
            if (cfg.perfectL1i) {
                currentBlock = block;
                continue;
            }
            auto res = l1i.demandAccess(block, now);
            currentBlock = block;
            if (!res.hit) {
                blockedOnFill = true;
                fillReady = res.ready;
                cIcacheStallCycles.add();
                missed = true;
                break;
            }
        }
        if (missed)
            return;

        fetchBuffer.push({e, now + cfg.frontendStages});
        recordFetched(e);
        ++fetchIdx;
        --budget;
        cFetched.add();
        if (fetchIdx >= cur.traceEnd)
            ftq.pop();
        if (e.isBranch() && e.taken)
            break;
    }

    // Trim consumed lookahead (just advances the ring's window base).
    if (fetchIdx > lookBase)
        lookBase = std::min(fetchIdx, lookEnd);
}

void
DecoupledFetchEngine::cycle(Cycle now)
{
    fetchStep(now);
    bpuStep(now);
}

void
DecoupledFetchEngine::registerInvariants(rt::InvariantRegistry &reg)
{
    // The BPU discovers contiguous basic blocks, so FTQ entries must be
    // well-formed ranges, strictly ordered and contiguous, with the
    // fetch cursor inside the head entry.
    reg.add("fe.ftq_ordering", [this] { return ftq.size(); },
            [this](Cycle) -> std::optional<std::string> {
        std::uint64_t prev_end = 0;
        bool first = true;
        for (const auto &e : ftq) {
            if (e.traceBegin >= e.traceEnd) {
                return "FTQ entry [" + std::to_string(e.traceBegin) +
                    ", " + std::to_string(e.traceEnd) + ") is empty";
            }
            if (!first && e.traceBegin != prev_end) {
                return "FTQ entry starts at " +
                    std::to_string(e.traceBegin) +
                    ", predecessor ended at " + std::to_string(prev_end);
            }
            prev_end = e.traceEnd;
            first = false;
        }
        if (!ftq.empty()) {
            const auto &head = ftq.front();
            if (fetchIdx < head.traceBegin || fetchIdx >= head.traceEnd) {
                return "fetch index " + std::to_string(fetchIdx) +
                    " outside FTQ head [" +
                    std::to_string(head.traceBegin) + ", " +
                    std::to_string(head.traceEnd) + ")";
            }
        }
        return std::nullopt;
    });

    reg.add("fe.lookahead_order",
            [this](Cycle) -> std::optional<std::string> {
        if (lookBase > fetchIdx || fetchIdx > bpuIdx) {
            return "cursor order violated: lookBase=" +
                std::to_string(lookBase) + " fetchIdx=" +
                std::to_string(fetchIdx) + " bpuIdx=" +
                std::to_string(bpuIdx);
        }
        return std::nullopt;
    });

    reg.add("fe.fetch_buffer_bound",
            [this](Cycle) -> std::optional<std::string> {
        if (fetchBuffer.size() > cfg.fetchBufferEntries) {
            return std::to_string(fetchBuffer.size()) +
                " fetch-buffer entries exceed the " +
                std::to_string(cfg.fetchBufferEntries) + "-entry bound";
        }
        return std::nullopt;
    });
}

StallReason
DecoupledFetchEngine::stallReason(Cycle now) const
{
    if (blockedOnFill && now < fillReady)
        return StallReason::ICacheMiss;
    if (lastCycleEmptyFtq)
        return StallReason::EmptyFtq;
    return StallReason::FetchPipe;
}

} // namespace dcfb::sim
