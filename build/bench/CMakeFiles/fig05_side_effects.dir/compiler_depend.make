# Empty compiler generated dependencies file for fig05_side_effects.
# This may be replaced when dependencies are built.
