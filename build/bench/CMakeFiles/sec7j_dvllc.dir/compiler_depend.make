# Empty compiler generated dependencies file for sec7j_dvllc.
# This may be replaced when dependencies are built.
