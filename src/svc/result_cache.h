/**
 * @file
 * Persistent, content-addressed store of RunResults.
 *
 * Every entry is one JSON file `<key>.json` under the cache directory,
 * where `<key>` is the FNV-1a hash of the run's canonical fingerprint
 * (svc/fingerprint.h).  Entries are the same RunResult cells the
 * `dcfb-bench-v1` reports carry, wrapped with the fingerprint that
 * produced them:
 *
 *     {"schema": "dcfb-cache-v2", "key": "<hex>",
 *      "fingerprint": {...}, "result": {...RunResult...}}
 *
 * Durability rules:
 *  - writes are atomic: the entry is written to a same-directory temp
 *    file and rename(2)d into place, so a crash mid-write leaves at
 *    worst a stray `*.tmp.*` file that lookups ignore; open() reaps
 *    such leftovers (counted as `tmp_reaped`) so crash debris never
 *    accumulates;
 *  - loads are fully validated (parse, schema, key, stored fingerprint
 *    == expected fingerprint) and report failures as typed rt::Errors;
 *    `get()` treats any invalid entry as a miss, unlinks it, and lets
 *    the caller recompute — corruption can cost time, never wrong
 *    results;
 *  - the stored-fingerprint comparison also guards against hash
 *    collisions: a colliding entry is detected and recomputed rather
 *    than served.
 *
 * Thread safety: get()/put() may be called concurrently from experiment
 * workers.  File operations are naturally safe (atomic rename, whole
 * -file reads); the hit/miss/store/reject counters are guarded by a
 * mutex.
 */

#ifndef DCFB_SVC_RESULT_CACHE_H
#define DCFB_SVC_RESULT_CACHE_H

#include <mutex>
#include <optional>
#include <string>

#include "rt/error.h"
#include "rt/faults.h"
#include "sim/simulator.h"
#include "svc/fingerprint.h"

namespace dcfb::svc {

/** Counter snapshot for reports and the `stats` service request. */
struct ResultCacheStats
{
    std::uint64_t hits = 0;     //!< lookups served from disk
    std::uint64_t misses = 0;   //!< lookups with no entry on disk
    std::uint64_t stores = 0;   //!< entries written
    std::uint64_t rejects = 0;  //!< invalid/corrupt/colliding entries dropped
    std::uint64_t tmpReaped = 0; //!< stray temp files removed at open()
};

class ResultCache
{
  public:
    /** Bind to @p dir (created on open()). */
    explicit ResultCache(std::string dir);

    /** Create the directory if needed; error when uncreatable. */
    rt::Expected<void> open();

    const std::string &dir() const { return directory; }

    /** Filesystem path of @p key's entry. */
    std::string entryPath(const std::string &key) const;

    /**
     * Validated load of @p key's entry.  Errors distinguish a plain
     * miss (ErrorKind::Result, context miss=1) from a rejected entry
     * (unreadable / unparsable / wrong schema / fingerprint mismatch).
     * Pure read: no counters, no unlink — the seam the crash-safety
     * tests probe.
     */
    rt::Expected<sim::RunResult>
    load(const std::string &key, const obs::JsonValue &expect_fp) const;

    /**
     * Cache read with the production policy: a valid entry is a hit;
     * a missing entry is a miss; an invalid entry is counted as a
     * reject, unlinked, and reported as a miss so the caller
     * recomputes.
     */
    std::optional<sim::RunResult>
    get(const std::string &key, const obs::JsonValue &fp);

    /** Atomically persist @p result under @p key. */
    rt::Expected<void> put(const std::string &key, const obs::JsonValue &fp,
                           const sim::RunResult &result);

    ResultCacheStats stats() const;

    /** Hook the service fault plane into put(): a `truncate` draw tears
     *  the store short (partial temp file, no rename) so crash-recovery
     *  paths can be exercised deterministically.  Not owned. */
    void setInjector(rt::SvcFaultInjector *injector) { inject = injector; }

    // -- process-global instance (the `--cache` flag) ---------------------
    /** Open @p dir as the process-wide cache; replaces any prior one. */
    static rt::Expected<void> openGlobal(const std::string &dir);

    /** The process-wide cache; nullptr when `--cache` is off. */
    static ResultCache *global();

    /** Drop the process-wide cache (tests). */
    static void closeGlobal();

  private:
    std::string directory;
    mutable std::mutex mutex;
    ResultCacheStats counters;
    rt::SvcFaultInjector *inject = nullptr;
};

/**
 * simulate() through the process-wide result cache: on a hit the stored
 * RunResult is returned without simulating; on a miss the cell is
 * simulated and the result persisted.  With no global cache open this
 * is exactly sim::simulate() — the `--cache`-off path stays bit-
 * identical to the direct runner (enforced by tests/test_svc.cpp).
 */
sim::RunResult simulateCached(const sim::SystemConfig &config,
                              const sim::RunWindows &windows);

} // namespace dcfb::svc

#endif // DCFB_SVC_RESULT_CACHE_H
