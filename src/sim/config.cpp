#include "sim/config.h"

namespace dcfb::sim {

namespace {
rt::FaultPlan gDefaultFaultPlan; // inactive unless --inject installs one
bool gDefaultGenericStep = false; // set by --generic-step
} // namespace

void
setDefaultGenericStep(bool generic)
{
    gDefaultGenericStep = generic;
}

bool
defaultGenericStep()
{
    return gDefaultGenericStep;
}

void
setDefaultFaultPlan(const rt::FaultPlan &plan)
{
    gDefaultFaultPlan = plan;
}

const rt::FaultPlan &
defaultFaultPlan()
{
    return gDefaultFaultPlan;
}

std::string
presetName(Preset preset)
{
    switch (preset) {
      case Preset::Baseline: return "Baseline";
      case Preset::NL: return "NL";
      case Preset::N2L: return "N2L";
      case Preset::N4L: return "N4L";
      case Preset::N8L: return "N8L";
      case Preset::N4LPlain: return "N4L(engine)";
      case Preset::SN4L: return "SN4L";
      case Preset::DisOnly: return "Dis";
      case Preset::SN4LDis: return "SN4L+Dis";
      case Preset::SN4LDisBtb: return "SN4L+Dis+BTB";
      case Preset::ClassicDis: return "ClassicDis";
      case Preset::Confluence: return "Confluence";
      case Preset::Boomerang: return "Boomerang";
      case Preset::Shotgun: return "Shotgun";
      case Preset::PerfectL1i: return "PerfectL1i";
      case Preset::PerfectL1iBtb: return "PerfectL1i+BTBinf";
      case Preset::Fdip: return "FDIP";
      case Preset::MicroBtb: return "MicroBTB";
    }
    return "?";
}

SystemConfig
makeConfig(const workload::WorkloadProfile &profile, Preset preset)
{
    SystemConfig cfg;
    cfg.profile = profile;
    cfg.preset = preset;
    cfg.faults = defaultFaultPlan();
    cfg.genericStep = defaultGenericStep();

    switch (preset) {
      case Preset::NL:
      case Preset::N2L:
      case Preset::N4L:
      case Preset::N8L:
        // The NXL motivation studies use a 64-entry prefetch buffer to
        // immunize the L1i from pollution (Section IV).
        cfg.l1i.usePrefetchBuffer = true;
        break;
      case Preset::N4LPlain:
        cfg.sn4l.selective = false;
        cfg.sn4l.enableDis = false;
        cfg.sn4l.enableBtbPrefetch = false;
        cfg.sn4l.proactive = false;
        break;
      case Preset::SN4L:
        cfg.sn4l.enableDis = false;
        cfg.sn4l.enableBtbPrefetch = false;
        cfg.sn4l.proactive = false;
        break;
      case Preset::DisOnly:
        cfg.sn4l.seqDepth = 0;
        cfg.sn4l.enableBtbPrefetch = false;
        break;
      case Preset::SN4LDis:
        cfg.sn4l.enableBtbPrefetch = false;
        break;
      case Preset::Confluence:
        // Upper-bound Confluence: SHIFT + 16 K-entry BTB (Section VI.D).
        cfg.btbEntries = 16 * 1024;
        break;
      case Preset::Shotgun:
        cfg.l1i.usePrefetchBuffer = true; //!< 64-entry L1i prefetch buffer
        break;
      case Preset::PerfectL1i:
        cfg.fetch.perfectL1i = true;
        break;
      case Preset::PerfectL1iBtb:
        cfg.fetch.perfectL1i = true;
        cfg.fetch.perfectBtb = true;
        break;
      case Preset::Fdip:
        // The decoupled BPU runs ahead through a deeper FTQ than the
        // BTB-directed baselines' default.
        cfg.fetch.ftqEntries = cfg.fdip.ftqDepth;
        break;
      case Preset::MicroBtb:
        break; // defaults in MicroBtbConfig
      default:
        break;
    }

    if (profile.variableLength) {
        cfg.llc.dvllc = true;
        cfg.l1i.fetchFootprints = true;
        cfg.sn4l.disTable.byteOffsets = true;
    }
    return cfg;
}

} // namespace dcfb::sim
