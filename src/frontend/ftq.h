/**
 * @file
 * Fetch target queue.
 *
 * A queue of basic blocks between the branch-prediction unit and the
 * instruction cache (paper footnote 1).  BTB-directed prefetchers
 * (Boomerang, Shotgun) fill it several blocks ahead of fetch and issue
 * prefetches from its contents; an empty FTQ stalls the fetch engine
 * (Table I).
 */

#ifndef DCFB_FRONTEND_FTQ_H
#define DCFB_FRONTEND_FTQ_H

#include <cstdint>

#include "common/queue.h"
#include "common/types.h"

namespace dcfb::frontend {

/** One FTQ entry: a basic block expressed as a retired-trace range. */
struct FtqEntry
{
    std::uint64_t traceBegin = 0; //!< first instruction (walker index)
    std::uint64_t traceEnd = 0;   //!< one past the terminator
    Addr startPc = 0;
};

/** The fetch target queue (32 entries in both baselines). */
using Ftq = BoundedQueue<FtqEntry>;

} // namespace dcfb::frontend

#endif // DCFB_FRONTEND_FTQ_H
