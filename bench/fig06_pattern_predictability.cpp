/**
 * @file
 * Figure 6: predictability of the access pattern of the four blocks
 * following a cache block.  For each block, from insertion to eviction,
 * record which of the four subsequent blocks were accessed; compare the
 * pattern with the previous residency's pattern.  Paper: 92 % average.
 */

#include <unordered_map>

#include "bench_common.h"
#include "sim/system.h"

namespace {

using namespace dcfb;

/** Observer that measures next-4-block pattern stability. */
class PatternObserver : public mem::L1iListener
{
  public:
    void
    onDemandAccess(Addr block_addr, bool hit) override
    {
        (void)hit;
        // Mark this block in the live patterns of its four predecessors.
        for (unsigned i = 1; i <= 4; ++i) {
            Addr pred = block_addr - Addr{i} * kBlockBytes;
            auto it = live.find(pred);
            if (it != live.end())
                it->second |= 1u << (i - 1);
        }
        live.try_emplace(block_addr, 0);
    }

    void
    onEvict(Addr block_addr, bool, bool) override
    {
        auto it = live.find(block_addr);
        if (it == live.end())
            return;
        std::uint8_t pattern = it->second;
        live.erase(it);
        auto [prev_it, fresh] = last.try_emplace(block_addr, pattern);
        if (!fresh) {
            for (unsigned b = 0; b < 4; ++b) {
                ++bits;
                if (((prev_it->second >> b) & 1) == ((pattern >> b) & 1))
                    ++correct;
            }
            prev_it->second = pattern;
        }
    }

    double
    accuracy() const
    {
        return bits ? static_cast<double>(correct) /
                static_cast<double>(bits)
                    : 0.0;
    }

  private:
    std::unordered_map<Addr, std::uint8_t> live;
    std::unordered_map<Addr, std::uint8_t> last;
    std::uint64_t bits = 0, correct = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness h(argc, argv, "Fig. 6 - next-4-block access-pattern predictability",
                  "92% average accuracy");

    sim::Table table({"workload", "predictability"});
    double sum = 0.0;
    auto names = bench::allWorkloads();
    for (const auto &name : names) {
        auto cfg = sim::makeConfig(workload::serverProfile(name),
                                   sim::Preset::Baseline);
        sim::System system(cfg);
        PatternObserver obs;
        system.l1i->setObserver(&obs);
        for (Cycle c = 0; c < 300000; ++c)
            system.step();
        sum += obs.accuracy();
        table.addRow({name, sim::Table::pct(obs.accuracy())});
    }
    table.addRow({"Average",
                  sim::Table::pct(sum / static_cast<double>(names.size()))});
    h.report(table, "Predictability of the next-4-block access pattern");
    return 0;
}
