# Empty compiler generated dependencies file for tab02_storage.
# This may be replaced when dependencies are built.
