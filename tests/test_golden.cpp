/**
 * @file
 * Golden-result regression suite: re-simulates every cell pinned in
 * `golden_cells.h` and asserts the result is *bit-identical* to the
 * RunResult JSON committed under `tests/golden/`.
 *
 * This is the license for hot-path optimization of the simulator core:
 * any change that flips one counter, adds or removes a stats key, or
 * perturbs a histogram in any cell fails here.  Intentional result
 * changes must regenerate the corpus with `scripts/update_golden.py`
 * (which refuses to run over a dirty git tree) and commit the diff.
 *
 * Comparison is on the serialized form (`sim::toJson(...).dump(2)`),
 * the exact bytes the generator wrote: this covers every counter key,
 * every histogram bucket, and the serialization itself.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "golden_cells.h"
#include "sim/report.h"

#ifndef DCFB_GOLDEN_DIR
#error "DCFB_GOLDEN_DIR must point at the committed corpus directory"
#endif

namespace dcfb {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::in | std::ios::binary);
    if (!in.is_open())
        return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class GoldenCell : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(GoldenCell, ReproducesCommittedResultBitForBit)
{
    const golden::Cell cell = golden::cells()[GetParam()];
    const std::string path =
        std::string(DCFB_GOLDEN_DIR) + "/" + golden::fileName(cell);

    std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden file " << path
        << " -- run scripts/update_golden.py";

    sim::RunResult result =
        sim::simulate(golden::config(cell), golden::windows());
    std::string actual = sim::toJson(result).dump(2) + "\n";

    if (actual != expected) {
        // The full documents are large; point at the first divergence so
        // the failure names the counter, not just "differs".
        std::size_t at = 0;
        while (at < actual.size() && at < expected.size() &&
               actual[at] == expected[at]) {
            ++at;
        }
        std::size_t from = at > 120 ? at - 120 : 0;
        FAIL() << golden::fileName(cell) << " diverges at byte " << at
               << "\n  expected ..."
               << expected.substr(from, 240) << "\n  actual   ..."
               << actual.substr(from, 240);
    }
}

std::string
cellName(const ::testing::TestParamInfo<std::size_t> &info)
{
    std::string file = golden::fileName(golden::cells()[info.param]);
    std::string out;
    for (char c : file.substr(0, file.size() - 5)) // strip ".json"
        out += (c == '-' || c == '.') ? '_' : c;
    return out;
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenCell,
                         ::testing::Range<std::size_t>(
                             0, golden::cells().size()),
                         cellName);

// The corpus must cover every prefetcher family exactly once per
// (workload, preset, vl) combination -- duplicate cells would silently
// halve coverage because both write the same file.
TEST(GoldenCorpus, CellFileNamesAreUnique)
{
    auto cs = golden::cells();
    for (std::size_t i = 0; i < cs.size(); ++i) {
        for (std::size_t j = i + 1; j < cs.size(); ++j) {
            EXPECT_NE(golden::fileName(cs[i]), golden::fileName(cs[j]))
                << "cells " << i << " and " << j << " collide";
        }
    }
}

} // namespace
} // namespace dcfb
