/**
 * @file
 * Basic-block-oriented BTB (Boomerang).
 *
 * Boomerang's frontend walks basic blocks: each entry is keyed by the
 * basic block's start address and stores the distance to its terminating
 * branch, the branch kind, and the taken target.  A hit lets the BTB-
 * directed engine jump to the next basic block; a miss stalls it until
 * the block is fetched and pre-decoded (Section II.B).
 */

#ifndef DCFB_FRONTEND_BB_BTB_H
#define DCFB_FRONTEND_BB_BTB_H

#include <cstdint>

#include "common/stats.h"
#include "common/types.h"
#include "isa/encoding.h"
#include "mem/cache.h"

namespace dcfb::frontend {

/** One basic-block BTB entry. */
struct BbBtbEntry
{
    std::uint16_t sizeBytes = 0; //!< start to end of terminating branch
    std::uint16_t branchOffset = 0; //!< start of the terminator, bytes
    isa::InstrKind kind = isa::InstrKind::CondBranch;
    Addr target = kInvalidAddr;
};

/**
 * Set-associative basic-block BTB keyed by block start PC.
 */
class BbBtb
{
  public:
    explicit BbBtb(unsigned entries = 2048, unsigned assoc = 4)
        : array(entries / assoc, assoc)
    {}

    const BbBtbEntry *
    lookup(Addr bb_start)
    {
        statSet.add("bbbtb_lookups");
        if (auto *line = array.lookup(key(bb_start))) {
            statSet.add("bbbtb_hits");
            return &line->meta;
        }
        statSet.add("bbbtb_misses");
        return nullptr;
    }

    bool
    contains(Addr bb_start) const
    {
        return array.lookup(key(bb_start)) != nullptr;
    }

    void
    update(Addr bb_start, const BbBtbEntry &entry)
    {
        if (auto *line = array.lookup(key(bb_start))) {
            line->meta = entry;
            return;
        }
        array.insert(key(bb_start), entry);
    }

    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }

  private:
    static Addr key(Addr pc) { return pc << kBlockShift; }

    mem::SetAssocCache<BbBtbEntry> array;
    StatSet statSet;
};

} // namespace dcfb::frontend

#endif // DCFB_FRONTEND_BB_BTB_H
