/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Every stochastic decision in dcfb (workload construction, trace walking,
 * background NoC traffic) draws from an explicitly seeded Rng so that runs
 * are bit-for-bit reproducible.  The generator is xorshift64*, which is
 * fast, has a 2^64-1 period, and passes the statistical tests we care
 * about for workload synthesis.
 */

#ifndef DCFB_COMMON_RNG_H
#define DCFB_COMMON_RNG_H

#include <cstdint>

namespace dcfb {

/**
 * xorshift64* pseudo-random generator with convenience draws.
 */
class Rng
{
  public:
    /** Seed the generator; a zero seed is remapped to a fixed constant. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw that is true with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Zipf-like popularity draw over [0, n): smaller indices are more
     * popular.  @p skew of 0 degenerates to uniform; ~0.8-1.2 resembles the
     * function-popularity skew of server software.
     */
    std::uint64_t
    zipf(std::uint64_t n, double skew)
    {
        if (skew <= 0.0 || n <= 1)
            return below(n ? n : 1);
        // Inverse-CDF approximation: u^(1/(1-skew)) biases toward 0 for
        // skew in (0,1); clamp the exponent for skew >= 1.
        double exponent = skew < 0.99 ? 1.0 / (1.0 - skew) : 64.0;
        double u = uniform();
        double biased = 1.0;
        // pow() without <cmath> dependency creep is not worth it; use it.
        biased = power(u, exponent);
        auto idx = static_cast<std::uint64_t>(biased * static_cast<double>(n));
        return idx >= n ? n - 1 : idx;
    }

  private:
    /** Minimal positive-base pow helper (u in [0,1), e >= 1). */
    static double
    power(double u, double e)
    {
        // exp(e * ln(u)) via builtins keeps the header self-contained.
        return __builtin_exp(e * __builtin_log(u > 0 ? u : 1e-300));
    }

    std::uint64_t state;
};

} // namespace dcfb

#endif // DCFB_COMMON_RNG_H
