#include "svc/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/span.h"

namespace dcfb::svc {

namespace {

rt::Error
clientError(const std::string &message)
{
    return rt::Error(rt::ErrorKind::Config, message)
        .with("errno", std::strerror(errno));
}

const std::string *
stringMember(const obs::JsonValue &doc, const std::string &name)
{
    const obs::JsonValue *v = doc.find(name);
    if (!v || v->kind() != obs::JsonValue::Kind::String)
        return nullptr;
    return &v->asString();
}

} // namespace

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    pending.clear();
}

rt::Expected<void>
Client::connect(const std::string &socket_path)
{
    close();
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return clientError("cannot create socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        close();
        return rt::Error(rt::ErrorKind::Config, "socket path too long")
            .with("path", socket_path);
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        rt::Error err = clientError("cannot connect to daemon")
                            .with("path", socket_path);
        close();
        return err;
    }
    return {};
}

rt::Expected<void>
Client::sendAll(const std::string &text)
{
    std::size_t off = 0;
    while (off < text.size()) {
        ssize_t w = ::send(fd, text.data() + off, text.size() - off,
                           MSG_NOSIGNAL);
        if (w <= 0)
            return clientError("send to daemon failed");
        off += static_cast<std::size_t>(w);
    }
    return {};
}

rt::Expected<std::string>
Client::recvLine()
{
    for (;;) {
        if (std::size_t nl = pending.find('\n'); nl != std::string::npos) {
            std::string line = pending.substr(0, nl);
            pending.erase(0, nl + 1);
            return line;
        }
        char buf[4096];
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return clientError("daemon closed the connection");
        pending.append(buf, static_cast<std::size_t>(n));
    }
}

rt::Expected<obs::JsonValue>
Client::requestLine(const std::string &line)
{
    if (fd < 0)
        return rt::Error(rt::ErrorKind::Config, "client is not connected");
    if (auto sent = sendAll(line + "\n"); !sent.ok())
        return sent.error();
    auto reply_line = recvLine();
    if (!reply_line.ok())
        return reply_line.error();
    auto reply = obs::JsonValue::parse(reply_line.value());
    if (!reply) {
        return rt::Error(rt::ErrorKind::Config,
                         "daemon reply is not valid JSON")
            .with("reply", reply_line.value());
    }
    return std::move(*reply);
}

rt::Expected<obs::JsonValue>
Client::request(const obs::JsonValue &doc)
{
    return requestLine(doc.dump());
}

rt::Expected<obs::JsonValue>
Client::submitAndWait(const obs::JsonValue &doc, unsigned max_retries)
{
    // When the span sink is open, the whole submit+fetch round-trip is
    // one client span and its IDs ride along on the wire, so the
    // daemon's handling spans land in the same trace.
    std::optional<obs::SpanScope> span;
    obs::JsonValue submit = doc;
    if (obs::Spans::enabled()) {
        const std::string *label = stringMember(doc, "workload");
        span.emplace("client.submit_wait", label ? *label : std::string());
        submit["trace_id"] = span->traceId();
        submit["parent_span"] = span->spanId();
    }

    std::string job;
    for (unsigned attempt = 0;; ++attempt) {
        auto reply = request(submit);
        if (!reply.ok())
            return reply.error();
        const obs::JsonValue &r = reply.value();
        const obs::JsonValue *ok = r.find("ok");
        if (ok && ok->kind() == obs::JsonValue::Kind::Bool &&
            ok->asBool()) {
            const std::string *id = stringMember(r, "job");
            if (!id) {
                return rt::Error(rt::ErrorKind::Config,
                                 "submit reply has no job id");
            }
            job = *id;
            break;
        }
        const std::string *code = stringMember(r, "error");
        bool retryable =
            code && (*code == "queue_full" || *code == "draining");
        if (!retryable || attempt + 1 >= max_retries) {
            return rt::Error(rt::ErrorKind::Config, "submit rejected")
                .with("error", code ? *code : "?")
                .with("attempts", std::uint64_t{attempt} + 1);
        }
        std::uint64_t backoff_ms = 250;
        if (const obs::JsonValue *hint = r.find("retry_after_ms");
            hint && hint->kind() == obs::JsonValue::Kind::Uint) {
            backoff_ms = hint->asUint();
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoff_ms));
    }

    obs::JsonValue fetch = obs::JsonValue::object();
    fetch["op"] = "fetch";
    fetch["job"] = job;
    if (span) {
        fetch["trace_id"] = span->traceId();
        fetch["parent_span"] = span->spanId();
    }
    for (;;) {
        auto reply = request(fetch);
        if (!reply.ok())
            return reply.error();
        const obs::JsonValue &r = reply.value();
        const std::string *code = stringMember(r, "error");
        if (code && *code == "not_ready") {
            std::uint64_t backoff_ms = 100;
            if (const obs::JsonValue *hint = r.find("retry_after_ms");
                hint && hint->kind() == obs::JsonValue::Kind::Uint) {
                backoff_ms = hint->asUint();
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff_ms));
            continue;
        }
        return std::move(reply.value());
    }
}

} // namespace dcfb::svc
