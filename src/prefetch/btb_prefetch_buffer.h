/**
 * @file
 * Confluence-like BTB prefetch buffer (Section V.C).
 *
 * Pre-decoded branches are stored next to the (unmodified) BTB in a
 * 2-way set-associative, 32-entry buffer.  Entries are organized per
 * cache block, so all branches of a block are installed in a single
 * buffer access (the Confluence AirBTB-style organization).  On a BTB
 * miss the fetch engine probes the buffer; a hit moves the entry into
 * the BTB, avoiding the miss.  Shotgun uses the same structure (32
 * entries, fully-associative) for its C-BTB prefills.
 */

#ifndef DCFB_PREFETCH_BTB_PREFETCH_BUFFER_H
#define DCFB_PREFETCH_BTB_PREFETCH_BUFFER_H

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "exec/arena.h"
#include "isa/encoding.h"
#include "isa/predecoder.h"
#include "mem/cache.h"

namespace dcfb::prefetch {

/** One buffered pre-decoded branch. */
struct BufferedBranch
{
    std::uint8_t byteOffset = 0;
    isa::InstrKind kind = isa::InstrKind::CondBranch;
    Addr target = kInvalidAddr;
    bool hasTarget = false;
};

/** All branches of one pre-decoded cache block.  Inline fixed storage
 *  (a block has at most one branch per byte offset) so installing or
 *  replacing a block never heap-allocates. */
struct BufferedBlock
{
    static constexpr unsigned kMaxBranches = kBlockBytes;

    std::array<BufferedBranch, kMaxBranches> branches{};
    std::uint8_t count = 0;

    const BufferedBranch *begin() const { return branches.data(); }
    const BufferedBranch *end() const { return branches.data() + count; }
};

/**
 * Block-grained BTB prefetch buffer.
 */
class BtbPrefetchBuffer
{
  public:
    /**
     * @param entries_ block entries (paper: 32)
     * @param assoc_   associativity (paper: 2-way; Shotgun: fully assoc.)
     */
    explicit BtbPrefetchBuffer(unsigned entries_ = 32, unsigned assoc_ = 2,
                               exec::Arena *arena = nullptr)
        : array(entries_ / assoc_, assoc_, arena),
          cInserts(statSet.lazy("btbpb_inserts")),
          cProbes(statSet.lazy("btbpb_probes")),
          cHits(statSet.lazy("btbpb_hits"))
    {}

    /** Install the pre-decoded branches of @p block_addr (one access). */
    void
    insertBlock(Addr block_addr,
                std::span<const isa::PredecodedBranch> branches)
    {
        cInserts.add();
        BufferedBlock blk;
        for (const auto &b : branches) {
            if (blk.count >= BufferedBlock::kMaxBranches)
                break;
            blk.branches[blk.count++] = {
                static_cast<std::uint8_t>(b.byteOffset), b.kind, b.target,
                b.hasTarget};
        }
        if (auto *line = array.lookup(block_addr)) {
            line->meta = blk;
            return;
        }
        array.insert(blockAlign(block_addr), blk);
    }

    /**
     * Probe for the branch at @p pc (called on a BTB miss).  On a hit the
     * branch record is returned; the caller moves it into the BTB.
     */
    const BufferedBranch *
    findBranch(Addr pc)
    {
        cProbes.add();
        auto *line = array.lookup(blockAlign(pc));
        if (!line)
            return nullptr;
        unsigned off = blockOffset(pc);
        for (const auto &b : line->meta) {
            if (b.byteOffset == off) {
                cHits.add();
                return &b;
            }
        }
        return nullptr;
    }

    bool
    containsBlock(Addr block_addr) const
    {
        return array.lookup(block_addr) != nullptr;
    }

    /** Storage: per entry, up to 4 branches x (6-bit offset + 32-bit
     *  target + kind) plus the block tag: ~1 KB total at 32 entries. */
    std::uint64_t
    storageBits() const
    {
        return std::uint64_t{array.sets()} * array.ways() * (4 * 40 + 52);
    }

    const StatSet &stats() const { return statSet; }

  private:
    StatSet statSet;
    mem::SetAssocCache<BufferedBlock> array;
    obs::LazyCounter cInserts;
    obs::LazyCounter cProbes;
    obs::LazyCounter cHits;
};

} // namespace dcfb::prefetch

#endif // DCFB_PREFETCH_BTB_PREFETCH_BUFFER_H
