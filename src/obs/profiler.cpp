/**
 * @file
 * Profiler globals: the enable flag and the mutex-guarded record log.
 */

#include "obs/profiler.h"

#include <mutex>
#include <utility>

namespace dcfb::obs {

std::atomic<bool> Profiler::enabledFlag{false};

namespace {

std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

std::vector<ProfRecord> &
logRecords()
{
    static std::vector<ProfRecord> records;
    return records;
}

} // namespace

const char *
profPhaseName(ProfPhase phase)
{
    switch (phase) {
      case ProfPhase::Backend:
        return "backend";
      case ProfPhase::L1iTick:
        return "l1i_tick";
      case ProfPhase::Prefetcher:
        return "prefetcher";
      case ProfPhase::Dispatch:
        return "dispatch";
      case ProfPhase::Fetch:
        return "fetch";
      case ProfPhase::Integrity:
        return "integrity";
    }
    return "unknown";
}

void
Profiler::setEnabled(bool on)
{
    enabledFlag.store(on, std::memory_order_relaxed);
}

void
Profiler::push(ProfRecord record)
{
    std::lock_guard<std::mutex> lock(logMutex());
    logRecords().push_back(std::move(record));
}

std::vector<ProfRecord>
Profiler::drain()
{
    std::lock_guard<std::mutex> lock(logMutex());
    return std::exchange(logRecords(), {});
}

} // namespace dcfb::obs
