#include "svc/protocol.h"

#include <array>

#include "workload/profiles.h"

namespace dcfb::svc {

namespace {

constexpr std::array<sim::Preset, 18> kAllPresets = {
    sim::Preset::Baseline,   sim::Preset::NL,
    sim::Preset::N2L,        sim::Preset::N4L,
    sim::Preset::N8L,        sim::Preset::N4LPlain,
    sim::Preset::SN4L,       sim::Preset::DisOnly,
    sim::Preset::SN4LDis,    sim::Preset::SN4LDisBtb,
    sim::Preset::ClassicDis, sim::Preset::Confluence,
    sim::Preset::Boomerang,  sim::Preset::Shotgun,
    sim::Preset::PerfectL1i, sim::Preset::PerfectL1iBtb,
    sim::Preset::Fdip,       sim::Preset::MicroBtb,
};

rt::Error
badRequest(std::string message)
{
    return rt::Error(rt::ErrorKind::Config, std::move(message));
}

/** Required string member. */
rt::Expected<std::string>
stringField(const obs::JsonValue &doc, const std::string &name)
{
    const obs::JsonValue *v = doc.find(name);
    if (!v || v->kind() != obs::JsonValue::Kind::String)
        return badRequest("missing string field").with("field", name);
    return v->asString();
}

/** Optional non-negative integer member. */
rt::Expected<std::optional<std::uint64_t>>
uintField(const obs::JsonValue &doc, const std::string &name)
{
    const obs::JsonValue *v = doc.find(name);
    if (!v)
        return std::optional<std::uint64_t>{};
    if (v->kind() != obs::JsonValue::Kind::Uint)
        return badRequest("field must be a non-negative integer")
            .with("field", name);
    return std::optional<std::uint64_t>{v->asUint()};
}

} // namespace

rt::Expected<sim::Preset>
presetFromName(const std::string &name)
{
    std::string known;
    for (sim::Preset p : kAllPresets) {
        if (sim::presetName(p) == name)
            return p;
        if (!known.empty())
            known += ", ";
        known += sim::presetName(p);
    }
    return badRequest("unknown preset")
        .with("preset", name)
        .with("known", known);
}

const char *
opName(Request::Op op)
{
    switch (op) {
      case Request::Op::Ping: return "ping";
      case Request::Op::Submit: return "submit";
      case Request::Op::Status: return "status";
      case Request::Op::Fetch: return "fetch";
      case Request::Op::Cancel: return "cancel";
      case Request::Op::Stats: return "stats";
      case Request::Op::Metrics: return "metrics";
      case Request::Op::Drain: return "drain";
    }
    return "?";
}

rt::Expected<Request>
parseRequest(const std::string &line)
{
    auto doc = obs::JsonValue::parse(line);
    if (!doc)
        return badRequest("request is not valid JSON");
    if (doc->kind() != obs::JsonValue::Kind::Object)
        return badRequest("request must be a JSON object");

    auto op = stringField(*doc, "op");
    if (!op.ok())
        return op.error();

    Request req;
    // Span-stitching IDs are accepted on every op (they only annotate
    // the daemon-side telemetry, never the result).
    auto trace_id = uintField(*doc, "trace_id");
    if (!trace_id.ok())
        return trace_id.error();
    req.traceId = trace_id.value().value_or(0);
    auto parent_span = uintField(*doc, "parent_span");
    if (!parent_span.ok())
        return parent_span.error();
    req.parentSpan = parent_span.value().value_or(0);

    const std::string &name = op.value();
    if (name == "ping") {
        req.op = Request::Op::Ping;
        return req;
    }
    if (name == "stats") {
        req.op = Request::Op::Stats;
        return req;
    }
    if (name == "metrics") {
        req.op = Request::Op::Metrics;
        return req;
    }
    if (name == "drain") {
        req.op = Request::Op::Drain;
        return req;
    }
    if (name == "status" || name == "fetch" || name == "cancel") {
        req.op = name == "status" ? Request::Op::Status
            : name == "fetch"     ? Request::Op::Fetch
                                  : Request::Op::Cancel;
        auto job = stringField(*doc, "job");
        if (!job.ok())
            return job.error();
        req.job = job.value();
        return req;
    }
    if (name != "submit") {
        return badRequest("unknown op").with("op", name).with(
            "known",
            "ping, submit, status, fetch, cancel, stats, metrics, drain");
    }

    req.op = Request::Op::Submit;
    auto workload = stringField(*doc, "workload");
    if (!workload.ok())
        return workload.error();
    // Validate the workload at admission so a typo is a typed reject,
    // not a failed job.
    if (auto profile = workload::tryServerProfile(workload.value());
        !profile.ok()) {
        return profile.error();
    }
    req.submit.workload = workload.value();

    auto preset_name = stringField(*doc, "preset");
    if (!preset_name.ok())
        return preset_name.error();
    auto preset = presetFromName(preset_name.value());
    if (!preset.ok())
        return preset.error();
    req.submit.preset = preset.value();

    auto warm = uintField(*doc, "warm");
    if (!warm.ok())
        return warm.error();
    auto measure = uintField(*doc, "measure");
    if (!measure.ok())
        return measure.error();
    if (warm.value().has_value() != measure.value().has_value())
        return badRequest("warm and measure must be given together");
    if (warm.value()) {
        req.submit.hasWindows = true;
        req.submit.windows.warm = *warm.value();
        req.submit.windows.measure = *measure.value();
        if (req.submit.windows.measure == 0)
            return badRequest("measure window must be positive");
    }

    auto seed = uintField(*doc, "seed");
    if (!seed.ok())
        return seed.error();
    req.submit.seed = seed.value();

    if (const obs::JsonValue *inject = doc->find("inject")) {
        if (inject->kind() != obs::JsonValue::Kind::String)
            return badRequest("inject must be a fault-spec string");
        auto plan = rt::parseFaultPlan(inject->asString());
        if (!plan.ok())
            return plan.error();
        req.submit.faults = plan.value();
    }

    auto deadline = uintField(*doc, "deadline_ms");
    if (!deadline.ok())
        return deadline.error();
    req.submit.deadlineMs = deadline.value().value_or(0);
    return req;
}

obs::JsonValue
submitSpecToJson(const SubmitSpec &spec)
{
    obs::JsonValue doc = obs::JsonValue::object();
    doc["op"] = "submit";
    doc["workload"] = spec.workload;
    doc["preset"] = sim::presetName(spec.preset);
    if (spec.hasWindows) {
        doc["warm"] = std::uint64_t{spec.windows.warm};
        doc["measure"] = std::uint64_t{spec.windows.measure};
    }
    if (spec.seed)
        doc["seed"] = *spec.seed;
    if (spec.faults.active())
        doc["inject"] = rt::faultPlanSpec(spec.faults);
    if (spec.deadlineMs)
        doc["deadline_ms"] = spec.deadlineMs;
    return doc;
}

obs::JsonValue
okReply()
{
    obs::JsonValue reply = obs::JsonValue::object();
    reply["schema"] = kProtocolSchema;
    reply["ok"] = true;
    return reply;
}

obs::JsonValue
errorReply(const std::string &code, const std::string &message)
{
    obs::JsonValue reply = obs::JsonValue::object();
    reply["schema"] = kProtocolSchema;
    reply["ok"] = false;
    reply["error"] = code;
    reply["message"] = message;
    return reply;
}

obs::JsonValue
errorReply(const rt::Error &error)
{
    obs::JsonValue reply = errorReply("bad_request", error.message);
    obs::JsonValue context = obs::JsonValue::object();
    for (const auto &kv : error.context)
        context[kv.first] = kv.second;
    if (!context.members().empty())
        reply["context"] = std::move(context);
    return reply;
}

} // namespace dcfb::svc
