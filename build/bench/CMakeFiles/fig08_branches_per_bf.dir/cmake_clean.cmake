file(REMOVE_RECURSE
  "CMakeFiles/fig08_branches_per_bf.dir/fig08_branches_per_bf.cpp.o"
  "CMakeFiles/fig08_branches_per_bf.dir/fig08_branches_per_bf.cpp.o.d"
  "fig08_branches_per_bf"
  "fig08_branches_per_bf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_branches_per_bf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
