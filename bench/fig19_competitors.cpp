/**
 * @file
 * Figure 19 (competitor study): the evaluated proposal against the two
 * competitor frontends it is most often compared to -- FDIP (a
 * fetch-directed prefetcher fed by a decoupled BPU running on the
 * conventional BTB) and Micro BTB (a large last-level BTB behind the
 * main BTB, no instruction prefetching).  Each competitor attacks one
 * side of the frontend bottleneck only -- FDIP the L1i misses, Micro
 * BTB the BTB misses -- while the proposal covers both.  EXPERIMENTS.md
 * discusses where the synthetic workloads bend this comparison away
 * from the paper's testbed (their BTB-miss side is mild, flattering
 * FDIP and starving Micro BTB).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv,
                     "Fig. 19 - competitor prefetchers vs the proposal",
                     "FDIP recovers the L1i side only, Micro BTB the "
                     "BTB side only; the proposal covers both");

    std::vector<sim::Preset> designs = {
        sim::Preset::Fdip, sim::Preset::MicroBtb, sim::Preset::SN4LDisBtb};
    std::vector<sim::Preset> all = designs;
    all.push_back(sim::Preset::Baseline);
    sim::ExperimentGrid grid(all, bench::windows());
    grid.run();

    sim::Table table({"workload", "FDIP", "MicroBTB", "SN4L+Dis+BTB"});
    for (const auto &name : grid.workloads()) {
        const auto &base = grid.at(name, sim::Preset::Baseline);
        std::vector<std::string> row{name};
        for (auto d : designs) {
            row.push_back(
                sim::Table::num(sim::speedup(grid.at(name, d), base), 3));
        }
        table.addRow(row);
    }
    std::vector<std::string> avg{"GeoMean"};
    for (auto d : designs) {
        avg.push_back(sim::Table::num(
            grid.gmeanSpeedup(d, sim::Preset::Baseline), 3));
    }
    table.addRow(avg);
    h.report(table, "Speedup over baseline: competitors vs the proposal");

    double ours = grid.gmeanSpeedup(sim::Preset::SN4LDisBtb,
                                    sim::Preset::Baseline);
    double fdip =
        grid.gmeanSpeedup(sim::Preset::Fdip, sim::Preset::Baseline);
    double mbtb =
        grid.gmeanSpeedup(sim::Preset::MicroBtb, sim::Preset::Baseline);
    h.note("fdip_gmean_speedup", fdip);
    h.note("microbtb_gmean_speedup", mbtb);
    h.note("ours_gmean_speedup", ours);
    std::printf("\nSN4L+Dis+BTB over FDIP (avg): %.1f%%\n",
                (ours / fdip - 1.0) * 100.0);
    h.note("ours_over_fdip_avg_pct", (ours / fdip - 1.0) * 100.0);
    std::printf("SN4L+Dis+BTB over MicroBTB (avg): %.1f%%\n",
                (ours / mbtb - 1.0) * 100.0);
    h.note("ours_over_microbtb_avg_pct", (ours / mbtb - 1.0) * 100.0);
    return 0;
}
