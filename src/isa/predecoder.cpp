#include "isa/predecoder.h"

#include "isa/vl_encoding.h"
#include "rt/faults.h"

namespace dcfb::isa {

namespace {

/** Decode one instruction at (block, offset); VL instructions may straddle
 *  into the next block, so reads go through the stitched image reader. */
bool
decodeOne(const workload::ProgramImage &image, bool variable_length,
          Addr block_addr, unsigned byte_offset, PredecodedBranch &out)
{
    Addr pc = blockAlign(block_addr) + byte_offset;
    if (!variable_length) {
        if (byte_offset % kInstrBytes != 0)
            return false;
        const auto *blk = image.block(pc);
        if (!blk)
            return false;
        std::uint32_t word = readWord(blk->data() + byte_offset);
        DecodedInstr instr = decodeInstr(pc, word);
        if (!isBranch(instr.kind))
            return false;
        out = {byte_offset, instr.kind, instr.hasTarget, instr.target, pc};
        return true;
    }
    std::uint8_t buf[kVlMaxLength];
    unsigned got = image.read(pc, buf, kVlMaxLength);
    VlDecodedInstr instr = vlDecodeInstr(pc, buf, got);
    if (instr.length == 0 || !isBranch(instr.kind))
        return false;
    out = {byte_offset, instr.kind, instr.hasTarget, instr.target, pc};
    return true;
}

} // namespace

void
Predecoder::perturb(std::vector<PredecodedBranch> &branches) const
{
    if (!injector)
        return;
    for (auto &b : branches) {
        if (b.hasTarget)
            b.target = injector->corruptTarget(b.target);
    }
}

std::vector<PredecodedBranch>
Predecoder::predecodeBlock(Addr block_addr) const
{
    std::vector<PredecodedBranch> branches;
    if (variableLength) {
        // Boundaries unknown without a footprint: nothing decodable.
        return branches;
    }
    for (unsigned slot = 0; slot < kInstrPerBlock; ++slot) {
        PredecodedBranch b;
        if (decodeOne(image, false, block_addr, slot * kInstrBytes, b))
            branches.push_back(b);
    }
    perturb(branches);
    return branches;
}

std::vector<PredecodedBranch>
Predecoder::predecodeWithFootprint(
    Addr block_addr, const std::vector<std::uint8_t> &footprint) const
{
    std::vector<PredecodedBranch> branches;
    for (std::uint8_t off : footprint) {
        PredecodedBranch b;
        if (off < kBlockBytes &&
            decodeOne(image, variableLength, block_addr, off, b)) {
            branches.push_back(b);
        }
    }
    perturb(branches);
    return branches;
}

std::vector<PredecodedBranch>
Predecoder::decodeAt(Addr block_addr, unsigned byte_offset) const
{
    std::vector<PredecodedBranch> branches;
    PredecodedBranch b;
    if (byte_offset < kBlockBytes &&
        decodeOne(image, variableLength, block_addr, byte_offset, b)) {
        branches.push_back(b);
    }
    perturb(branches);
    return branches;
}

} // namespace dcfb::isa
