/**
 * @file
 * Decoupled (BTB-directed) fetch engine: Boomerang and Shotgun.
 *
 * A branch-prediction unit (BPU) runs ahead of fetch, discovering basic
 * blocks with its BTB structures and pushing them into the FTQ; the
 * fetch engine drains the FTQ.  Instruction prefetching falls out of the
 * BPU's lookahead: blocks of discovered basic blocks (Boomerang) or of
 * U-BTB footprints (Shotgun) are prefetched before fetch reaches them.
 *
 * The failure mode the paper dissects in Section III is modeled
 * faithfully: a BTB miss *stalls the BPU* until the missing block is
 * fetched and pre-decoded (reactive prefill), during which the fetch
 * engine drains the FTQ dry and the core starves ("empty-FTQ" stalls,
 * Table I).  Shotgun's U-BTB entries carry call/return footprints that
 * only the retired stream can build: entries restored by prefill have
 * no footprints, so no region prefetch and no proactive C-BTB prefill
 * happen for them (footprint misses, Fig. 1).
 */

#ifndef DCFB_SIM_DECOUPLED_H
#define DCFB_SIM_DECOUPLED_H

#include <cstdint>
#include <vector>

#include "frontend/bb_btb.h"
#include "frontend/ftq.h"
#include "frontend/ras.h"
#include "frontend/shotgun_btb.h"
#include "frontend/tage.h"
#include "isa/predecoder.h"
#include "mem/l1i.h"
#include "prefetch/btb_prefetch_buffer.h"
#include "sim/fetch.h"
#include "workload/trace.h"

namespace dcfb::rt {
class InvariantRegistry;
} // namespace dcfb::rt

namespace dcfb::prefetch {
class Fdip;
} // namespace dcfb::prefetch

namespace dcfb::sim {

/**
 * BTB-directed frontend (Boomerang / Shotgun) and the FDIP competitor,
 * whose BPU runs ahead through the conventional BTB and feeds the
 * prefetch::Fdip unit from every FTQ append.
 */
class DecoupledFetchEngine final : public FetchEngine, public mem::L1iListener
{
  public:
    enum class Kind { Boomerang, Shotgun, Fdip };

    /**
     * @param conv_btb conventional BTB driving the BPU (Kind::Fdip only)
     * @param fdip     FTQ-append consumer (Kind::Fdip only)
     */
    DecoupledFetchEngine(const FetchConfig &config, Kind kind_,
                         workload::TraceWalker &walker, mem::L1iCache &l1i,
                         frontend::Tage &tage,
                         const isa::Predecoder &predecoder,
                         unsigned boomerang_btb_entries,
                         const frontend::ShotgunBtbConfig &shotgun_cfg,
                         frontend::Btb *conv_btb = nullptr,
                         prefetch::Fdip *fdip = nullptr,
                         exec::Arena *arena = nullptr);

    void cycle(Cycle now) override;
    StallReason stallReason(Cycle now) const override;

    /** L1i fill hook: proactive BTB prefill from prefetched blocks. */
    void onFill(Addr block_addr, bool was_prefetch,
                const mem::BranchFootprint *bf) override;

    frontend::ShotgunBtb &shotgunBtb() { return sgBtb; }
    frontend::BbBtb &bbBtb() { return bbtb; }

    /** Register FTQ-ordering and lookahead invariants. */
    void registerInvariants(rt::InvariantRegistry &reg);

    // Progress/occupancy accessors (failure snapshots/tests).
    std::size_t ftqSize() const { return ftq.size(); }
    std::uint64_t fetchIndex() const { return fetchIdx; }
    std::uint64_t bpuIndex() const { return bpuIdx; }

  private:
    /** The retired-trace entry at absolute index @p idx. */
    const workload::TraceEntry &entryAt(std::uint64_t idx);

    /** Index of the terminating branch of the BB starting at @p idx. */
    std::uint64_t scanTerminator(std::uint64_t idx);

    /** One BPU step: discover the next basic block. */
    void bpuStep(Cycle now);

    /** Engine-specific BTB handling; returns false when the BPU must
     *  stall (reactive prefill in progress). */
    bool boomerangLookup(Addr bb_start, std::uint64_t term_idx, Cycle now);
    bool shotgunLookup(Addr bb_start, std::uint64_t term_idx, Cycle now);
    bool fdipLookup(Addr bb_start, std::uint64_t term_idx, Cycle now);

    /** Begin a reactive prefill stall for the block at @p addr,
     *  counting it against @p stat. */
    void reactiveStall(Addr addr, Cycle now, obs::LazyCounter &stat);

    /** Prefetch + pre-decode the blocks named by a Shotgun footprint. */
    void footprintPrefetch(Addr anchor_block, std::uint8_t bits, Cycle now);

    /** Pre-decode @p block_addr into the 32-entry BTB prefetch buffer. */
    void prefillFromBlock(Addr block_addr);

    /** Install Boomerang BB entries derived from a pre-decoded block. */
    void boomerangPrefill(Addr block_addr);

    /** Fetch-side bookkeeping (footprint construction). */
    void recordFetched(const workload::TraceEntry &e);

    /** Fetch stage: drain the FTQ into the fetch buffer. */
    void fetchStep(Cycle now);

    Kind kind;
    workload::TraceWalker &walker;
    mem::L1iCache &l1i;
    frontend::Tage &tage;
    const isa::Predecoder &pd;
    frontend::ReturnAddressStack ras;

    frontend::BbBtb bbtb;
    frontend::ShotgunBtb sgBtb;
    prefetch::BtbPrefetchBuffer btbPb; //!< Shotgun: 32-entry prefill buffer
    frontend::Btb *convBtb;            //!< Fdip: the conventional BTB
    prefetch::Fdip *fdip;              //!< Fdip: FTQ-append consumer

    frontend::Ftq ftq;

    /**
     * Trace lookahead between the fetch cursor and the BPU cursor, as a
     * power-of-two ring indexed by *absolute* trace index (entry i lives
     * at look[i & lookMask]).  The window [lookBase, lookEnd) is
     * contiguous; consuming the front is just advancing lookBase.  The
     * ring grows (rarely: the window is bounded by the FTQ depth times
     * the BB-scan bound) and is then reused for the rest of the run --
     * the previous deque backing churned allocations every cycle.
     */
    std::vector<workload::TraceEntry> look;
    std::size_t lookMask = 0;
    std::uint64_t lookBase = 0;
    std::uint64_t lookEnd = 0;
    std::uint64_t bpuIdx = 0;
    std::uint64_t fetchIdx = 0;

    /** Ensure lookahead entries exist up to absolute index @p idx. */
    void extendLook(std::uint64_t idx);

    Cycle bpuStalledUntil = 0;
    bool targetMispredict = false; //!< stale stored target this BB
    Addr wrongPathTarget = kInvalidAddr; //!< where the BPU went instead
    bool blockedOnFill = false;
    Cycle fillReady = 0;
    Addr currentBlock = kInvalidAddr;
    bool lastCycleEmptyFtq = false;

    /** Shotgun footprint construction state. */
    struct CallRecord
    {
        Addr callPc = kInvalidAddr;
        Addr targetBlock = 0; //!< block number of the callee entry
        std::uint8_t fp = 0;
    };
    std::vector<CallRecord> recStack;
    struct RetRecord
    {
        Addr callPc = kInvalidAddr;
        Addr retBlock = 0;
        std::uint8_t fp = 0;
        unsigned remaining = 0;
    };
    std::vector<RetRecord> retRecords;

    // Typed handles for the per-cycle hot path.
    obs::Counter cFetched, cIcacheStallCycles, cEmptyFtqStallCycles,
        cBpuStallCycles, cFtqPushes;
    obs::Histogram hFtqOcc, hBufferOcc;
    // Lazily-bound handles for per-event sites (see obs::LazyCounter).
    obs::LazyCounter cReactiveFills, cSgPrefillBlocks,
        cBoomerangPrefillEntries, cSgFootprintPrefetches, cSgCbtbFills,
        cSgRegionSkipped, cBpuTargetMispredicts, cBpuMispredicts,
        cBpuRasMispredicts, cSquashes, cWrongPathPrefetches,
        cBbBtbMisses, cCbtbMisses, cUbtbMisses, cRibMisses, cFdipBtbMisses;
};

} // namespace dcfb::sim

#endif // DCFB_SIM_DECOUPLED_H
