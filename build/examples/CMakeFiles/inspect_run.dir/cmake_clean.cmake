file(REMOVE_RECURSE
  "CMakeFiles/inspect_run.dir/inspect_run.cpp.o"
  "CMakeFiles/inspect_run.dir/inspect_run.cpp.o.d"
  "inspect_run"
  "inspect_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
