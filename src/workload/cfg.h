/**
 * @file
 * Synthetic server-program control-flow graph.
 *
 * The paper evaluates real server stacks (TPC-C on Oracle/DB2, SPECweb99,
 * CloudSuite).  We cannot run those, so we synthesize programs whose
 * *instruction-stream shape* matches what the paper's mechanisms react
 * to: multi-megabyte instruction footprints, deep call chains, biased
 * conditional branches, rarely-executed cold regions (error handling /
 * else-paths, Algorithm 1 in the paper), and a dominant discontinuity
 * branch per block (Fig. 7).
 *
 * A Program is a set of functions laid out contiguously in the code
 * segment.  Function 0 is the *driver*: an endless dispatch loop that
 * indirect-calls worker functions with Zipf popularity, mimicking a
 * request-processing loop.  Static call sites only call functions of a
 * strictly higher level, bounding call depth.
 */

#ifndef DCFB_WORKLOAD_CFG_H
#define DCFB_WORKLOAD_CFG_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "isa/encoding.h"
#include "workload/image.h"

namespace dcfb::workload {

/** Knobs that shape a synthetic workload (one set per server profile). */
struct WorkloadProfile
{
    std::string name = "generic";
    std::uint32_t numFunctions = 512;   //!< worker functions (excl. driver)
    std::uint32_t minBlocks = 3;        //!< basic blocks per function
    std::uint32_t maxBlocks = 12;
    std::uint32_t minInstrs = 4;        //!< instructions per basic block
    std::uint32_t maxInstrs = 16;
    double condProb = 0.45;    //!< block terminator: conditional branch
    double callProb = 0.18;    //!< block terminator: static call
    double jumpProb = 0.08;    //!< block terminator: jump over a cold region
    double coldGuardFrac = 0.4; //!< fraction of cond branches guarding cold code
    double takenBias = 0.95;   //!< dominant-direction probability
    double loopProb = 0.15;    //!< fraction of cond branches that loop back
    double zipfSkew = 0.6;     //!< driver call-popularity skew (0 = flat)
    double callSkew = 0.75;    //!< static call-site callee skew (0 = flat)
    std::uint32_t maxCallDepth = 4;  //!< static call-graph depth bound
    std::uint32_t driverBlocks = 8;  //!< dispatch-loop basic blocks
    double loadFrac = 0.22;    //!< body instruction mix
    double storeFrac = 0.10;
    std::uint64_t dataFootprint = 8ull << 20; //!< bytes of data touched
    bool variableLength = false; //!< build for the VL-ISA configuration
    std::uint64_t seed = 1;
};

/** Basic-block terminator classes. */
enum class TermKind : std::uint8_t {
    FallThrough,  //!< last instruction is a plain body instruction
    Cond,         //!< conditional branch (fall through or jump)
    Jump,         //!< unconditional jump
    Call,         //!< static direct call
    IndirectCall, //!< driver dispatch call (runtime-selected callee)
    Return,       //!< function return
};

/** One basic block after layout. */
struct BasicBlock
{
    Addr start = 0;                      //!< address of the first instruction
    std::vector<std::uint8_t> lens;      //!< per-instruction byte lengths
    std::vector<isa::InstrKind> kinds;   //!< per-instruction kinds
    std::vector<Addr> pcs;               //!< per-instruction PCs
    TermKind term = TermKind::FallThrough;
    std::uint32_t targetBlock = 0;       //!< Cond/Jump target (block index)
    std::uint32_t callee = 0;            //!< Call target (function index)
    double takenProb = 0.0;              //!< Cond: probability taken
    bool cold = false;                   //!< deliberately rarely-executed

    std::size_t numInstrs() const { return kinds.size(); }
    Addr termPc() const { return pcs.back(); }
    Addr endPc() const { return pcs.back() + lens.back(); }
};

/** One function after layout. */
struct Function
{
    Addr entry = 0;
    std::uint32_t level = 0; //!< call-graph level (driver = 0)
    std::vector<BasicBlock> blocks;
};

/** A fully-built synthetic program. */
struct Program
{
    WorkloadProfile profile;
    std::vector<Function> functions; //!< functions[0] is the driver
    ProgramImage image;
    Addr codeBase = 0;
    Addr codeEnd = 0;
    Addr dataBase = 0;
    std::vector<std::uint32_t> driverTargets; //!< indirect-call candidates

    /** Code footprint in bytes (blocks actually emitted). */
    std::size_t codeBytes() const { return image.sizeBytes(); }
};

/**
 * Build a program from @p profile.  Deterministic for a given seed.
 */
Program buildProgram(const WorkloadProfile &profile);

} // namespace dcfb::workload

#endif // DCFB_WORKLOAD_CFG_H
