# Empty compiler generated dependencies file for dcfb.
# This may be replaced when dependencies are built.
