# Empty dependencies file for fig06_pattern_predictability.
# This may be replaced when dependencies are built.
