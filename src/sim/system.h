/**
 * @file
 * System: one fully-wired simulated node (program + walker + memory
 * hierarchy + frontend + backend + the configured prefetcher/engine).
 *
 * Two mechanics make a cell fast without changing any result
 * (DESIGN.md §14):
 *
 *  - **Preset-specialized stepping.**  step() dispatches through a
 *    member-function pointer bound once at construction to a
 *    `stepImpl<Pf, Fe>` instantiation for the preset's concrete
 *    prefetcher and fetch-engine types.  Inside one instantiation every
 *    per-cycle prefetcher/fetch call devirtualizes; a Baseline cell
 *    pays zero SN4L/Dis/BTB branches.  `SystemConfig::genericStep`
 *    forces the fully generic instantiation (virtual dispatch), which
 *    must be bit-identical — the dispatch-equivalence tests assert it.
 *
 *  - **Arena-resident state.**  The cell's flat tables (cache line
 *    arrays, TAGE tables, BTB ways, prefetcher tables/queues, ROB ring,
 *    fetch rings) are placed into one per-cell bump arena sized at
 *    construction (exec/arena.h), so a pool thread's working set is one
 *    contiguous slab.  The arena is declared first, hence destroyed
 *    last — after every component that allocated from it.
 */

#ifndef DCFB_SIM_SYSTEM_H
#define DCFB_SIM_SYSTEM_H

#include <memory>

#include "core/backend.h"
#include "exec/arena.h"
#include "frontend/btb.h"
#include "frontend/tage.h"
#include "isa/predecoder.h"
#include "mem/l1d.h"
#include "mem/l1i.h"
#include "mem/llc.h"
#include "mem/memory.h"
#include "noc/mesh.h"
#include "obs/json.h"
#include "obs/profiler.h"
#include "prefetch/prefetcher.h"
#include "sim/config.h"
#include "sim/decoupled.h"
#include "sim/fetch.h"
#include "workload/cfg.h"
#include "workload/trace.h"

namespace dcfb::sim {

/**
 * Owns and wires every component of one simulated node.
 */
class System
{
  public:
    explicit System(const SystemConfig &config);

    /** Advance the machine by one cycle. */
    void
    step()
    {
        if (obs::Profiler::enabled()) [[unlikely]] {
            (this->*stepProfFn)();
            return;
        }
        (this->*stepFn)();
    }

    /** Current cycle. */
    Cycle now() const { return cycleCount; }

    /** Reset statistics at the warmup/measure boundary. */
    void resetStats();

    /** BF construction from the retired stream (VL-ISA mode). */
    void recordRetiredFootprints(const workload::TraceEntry &e);

    /**
     * Structured machine-state snapshot (schema "dcfb-snapshot-v1"):
     * queues, MSHRs, in-flight prefetches, progress counters.  Attached
     * to watchdog/invariant failures so a wedged run dies with evidence.
     */
    obs::JsonValue snapshot() const;

    /** Slab size the cell arena is created with for @p config. */
    static std::size_t estimateArenaBytes(const SystemConfig &config);

    SystemConfig cfg;

    /** The cell arena.  Declared before every component so it is
     *  destroyed last; components hand ArenaAlloc copies to their
     *  containers, so the slab must outlive them all. */
    exec::Arena arena;

    /** The program under simulation.  Either the shared immutable image
     *  from cfg.program (experiment runners, one build per workload) or
     *  a privately-built one (standalone simulate() callers). */
    std::shared_ptr<const workload::Program> program;
    std::unique_ptr<workload::TraceWalker> walker;
    std::unique_ptr<isa::Predecoder> predecoder;

    std::unique_ptr<noc::MeshModel> mesh;
    std::unique_ptr<mem::MemoryModel> memory;
    std::unique_ptr<mem::Llc> llc;
    std::unique_ptr<mem::L1iCache> l1i;
    std::unique_ptr<mem::L1dCache> l1d;

    std::unique_ptr<frontend::Tage> tage;
    std::unique_ptr<frontend::Btb> btb;
    std::unique_ptr<frontend::MicroBtb> microBtb; //!< MicroBTB preset only
    std::unique_ptr<core::Backend> backend;

    std::unique_ptr<prefetch::InstrPrefetcher> prefetcher;
    std::unique_ptr<FetchEngine> fetch;
    DecoupledFetchEngine *decoupled = nullptr; //!< non-null for BTB-directed

    StatSet simStats;

    rt::FaultInjector injector;     //!< active only under --inject
    rt::InvariantRegistry invariants;

    /** Per-phase cycle-loop attribution; only written while
     *  obs::Profiler::enabled() (the integrity slot is accumulated by
     *  the run loop in simulator.cpp). */
    obs::PhaseSeconds profPhases{};

  private:
    /** One step-path entry point (specialized or generic). */
    using StepFn = void (System::*)();

    /** Wire the fault injector and register every component invariant. */
    void registerIntegrity();

    /** Bind stepFn/stepProfFn to the preset's specialization family. */
    void selectStepFns();

    /** Construct the coupled fetch engine for concrete prefetcher @p Pf. */
    template <typename Pf> void makeCoupledFetch();

    template <typename Pf, typename Fe> void bindStep();

    /** One simulated cycle, specialized on the concrete prefetcher and
     *  fetch-engine types (the generic instantiation uses the abstract
     *  bases and is the pre-specialization behaviour). */
    template <typename Pf, typename Fe> void stepImpl();

    /** stepImpl with per-phase wall attribution (profiling runs only):
     *  chained timestamps, so N phases cost N+1 clock reads. */
    template <typename Pf, typename Fe> void stepProfiledImpl();

    template <typename Fe> void dispatchStageImpl(Fe &fe);

    StepFn stepFn = nullptr;
    StepFn stepProfFn = nullptr;

    Cycle cycleCount = 0;
    std::uint64_t instructionsRetired = 0;

    // Typed handles for the per-cycle dispatch accounting.
    obs::Counter cDispatchActive, cStallBackend, cStallIcache, cStallBtb,
        cStallEmptyFtq, cStallMispredict, cStallFrontend, cStallOther;

  public:
    std::uint64_t instructions() const { return backend->retired(); }
};

} // namespace dcfb::sim

#endif // DCFB_SIM_SYSTEM_H
