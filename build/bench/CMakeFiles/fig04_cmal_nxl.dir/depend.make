# Empty dependencies file for fig04_cmal_nxl.
# This may be replaced when dependencies are built.
