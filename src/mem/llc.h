/**
 * @file
 * Shared last-level cache with optional DV-LLC branch-footprint
 * virtualization (Sections IV and V.D).
 *
 * The LLC is 32 MB, 16-way, 16 banks, 18-cycle access (Table III).  Banks
 * map to mesh tiles by block number, so every access pays a round trip
 * through the MeshModel; misses continue to the MemoryModel.
 *
 * DV-LLC: each cache block carries an isInstruction bit.  While a set
 * holds at least one instruction block, its last way flips from
 * block-holder to BF-holder and stores up to bfSlotsPerSet branch
 * footprints (BFs), each a list of up to branchesPerBf byte offsets of
 * branch instructions within one resident instruction block.  BFs are
 * constructed from the retired instruction stream (recordBranchOffset)
 * and travel with instruction blocks to the L1i, where they guide the
 * variable-length pre-decoder.
 */

#ifndef DCFB_MEM_LLC_H
#define DCFB_MEM_LLC_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "exec/arena.h"
#include "mem/cache.h"
#include "mem/memory.h"
#include "noc/mesh.h"

namespace dcfb::mem {

/** LLC configuration. */
struct LlcConfig
{
    std::size_t capacityBytes = 32ull << 20;
    unsigned assoc = 16;
    unsigned banks = 16;
    Cycle accessLatency = 18;
    unsigned replyFlits = 5;      //!< 64 B data + head flit
    unsigned requestFlits = 1;

    bool dvllc = false;           //!< enable BF virtualization
    unsigned bfSlotsPerSet = 8;   //!< BF-holder capacity (Fig. 9 sweep)
    unsigned branchesPerBf = 4;   //!< offsets per BF (Fig. 8 sweep)
};

/** A branch footprint: byte offsets of branches within one block. */
struct BranchFootprint
{
    std::vector<std::uint8_t> offsets;
};

/**
 * Banked LLC + DV-LLC footprint store.
 */
class Llc
{
  public:
    /** Result of a round-trip access from the core tile. */
    struct AccessResult
    {
        Cycle ready = 0;    //!< cycle the block arrives at the requester
        bool hit = false;   //!< LLC hit (vs. DRAM fill)
        bool bfValid = false;
        BranchFootprint bf; //!< valid when bfValid
    };

    Llc(const LlcConfig &config, noc::MeshModel &mesh_, MemoryModel &mem_,
        unsigned core_tile, exec::Arena *arena = nullptr);

    /** Arena bytes this configuration's flat tables want (line array +
     *  per-set BF state); used to size a cell's slab up front. */
    static std::size_t
    arenaBytes(const LlcConfig &config)
    {
        auto sets = static_cast<unsigned>(config.capacityBytes /
                                          kBlockBytes / config.assoc);
        return SetAssocCache<LineMeta>::storageBytes(sets, config.assoc) +
            sets * sizeof(BfSet);
    }

    /**
     * Fetch the block at @p addr, starting at @p now, on behalf of the
     * core.  @p is_instruction tags the block; @p want_bf additionally
     * returns the block's branch footprint when DV-LLC holds one.
     */
    AccessResult access(Addr addr, Cycle now, bool is_instruction,
                        bool want_bf = false);

    /**
     * Record that the retired stream saw a branch starting at byte
     * @p byte_offset of the block at @p block_addr (BF construction).
     */
    void recordBranchOffset(Addr block_addr, std::uint8_t byte_offset);

    /**
     * Functional warmup touch: insert/refresh the block without timing,
     * NoC traffic or statistics.  Mirrors SimFlex checkpoints, which
     * include long-term cache contents (Section VI.C).
     */
    void warmTouch(Addr addr, bool is_instruction);

    /** True when the block currently resides in the LLC (tests). */
    bool contains(Addr addr) const { return array.contains(addr); }

    /** The BF currently stored for @p block_addr, if any. */
    const BranchFootprint *findFootprint(Addr block_addr) const;

    /** Number of sets whose LRU way is currently a BF-holder. */
    std::size_t bfHolderSets() const;

    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }
    const LlcConfig &config() const { return cfg; }

  private:
    struct LineMeta
    {
        bool isInstruction = false;
    };

    /** Per-set DV-LLC state: BF slots keyed by resident block address. */
    struct BfSet
    {
        bool holder = false; //!< LRU way is in BF-holder mode
        struct Slot
        {
            Addr blockAddr = kInvalidAddr;
            BranchFootprint bf;
            std::uint64_t lastUse = 0;
        };
        std::vector<Slot> slots;
    };

    /** Effective ways of a set given its BF-holder state. */
    unsigned effectiveWays(unsigned set_index) const;

    /** Re-evaluate BF-holder mode after an insert/evict in @p set_index. */
    void updateHolderMode(unsigned set_index);

    /** Find or allocate the BF slot for @p block_addr in its set. */
    BfSet::Slot *bfSlot(Addr block_addr, bool allocate);

    LlcConfig cfg;
    noc::MeshModel &mesh;
    MemoryModel &memory;
    unsigned coreTile;
    SetAssocCache<LineMeta> array;
    exec::ArenaVector<BfSet> bfSets;
    std::uint64_t bfTick = 0;
    StatSet statSet;
};

} // namespace dcfb::mem

#endif // DCFB_MEM_LLC_H
