file(REMOVE_RECURSE
  "CMakeFiles/fig09_bf_per_set.dir/fig09_bf_per_set.cpp.o"
  "CMakeFiles/fig09_bf_per_set.dir/fig09_bf_per_set.cpp.o.d"
  "fig09_bf_per_set"
  "fig09_bf_per_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_bf_per_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
