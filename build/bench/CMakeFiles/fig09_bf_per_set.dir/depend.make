# Empty dependencies file for fig09_bf_per_set.
# This may be replaced when dependencies are built.
