/**
 * @file
 * The experiment service daemon (dcfb-serve): a resident process that
 * accepts simulation jobs over a Unix-domain socket, schedules them
 * onto one shared exec::Pool, shares one workload::ImageCache across
 * all jobs, and serves/persists results through the content-addressed
 * svc::ResultCache.
 *
 * Life of a request (DESIGN.md §9 has the full architecture):
 *
 *   client ──line──▶ connection thread ──admit──▶ bounded queue
 *          ◀─reply──                               │ dispatcher
 *                                                  ▼
 *                                   exec::Pool workers ──▶ job table
 *                                                  │
 *                                       ResultCache (hit: no sim)
 *
 * Admission control is explicit: the queue holds at most
 * `queueCapacity` jobs, and a submit that would exceed it is rejected
 * with a well-formed backpressure reply carrying `retry_after_ms` —
 * the daemon never blocks a client on a full queue and never grows
 * unbounded.  The bound is checked as an rt invariant after every
 * enqueue; a violation is counted and surfaced in `stats`, and the
 * test suite asserts the counter stays zero.
 *
 * Deduplication is content-addressed end to end: a submit whose
 * fingerprint key is already cached replies instantly from the
 * ResultCache (`"cached":true`), and one whose key is already queued
 * or running coalesces onto the in-flight job (`"coalesced":true`) —
 * identical work is never simulated twice.
 *
 * Draining: SIGTERM (or an admin `drain` request) stops admission
 * (submits get a `draining` reject), lets every queued and running job
 * finish, flushes results to the cache, then shuts the socket down.
 *
 * Crash safety (`--journal`, DESIGN.md "Failure model and recovery"):
 * with a journal directory configured, every admission is written ahead
 * to an svc::Journal before the submit reply goes out, and every
 * terminal transition appends a matching record.  start() replays
 * admits without a terminal record: finished work is served from the
 * ResultCache (`recovered` + instant done), the rest re-enters the
 * queue outside the admission bound.  The fingerprint key doubles as a
 * client idempotency key (`already_known` replies), and an optional
 * per-job lease lets a watchdog reclaim jobs from hung workers.  All
 * of it is strictly additive: with the journal off, admission, replies
 * and stats are bit-identical to a journal-less build.
 *
 * Instrumentation: one obs::StatRegistry (guarded by the server mutex
 * — this is a control path, not a simulation hot path) counts
 * admissions, rejects, coalesces, cache hits, completions and
 * failures, and samples queue-wait / run / request latencies (overall
 * and per op, `svc.op.<op>.latency_us`) into log2 histograms; the
 * `stats` request serves a full snapshot.
 *
 * The metrics plane (DESIGN.md "Telemetry plane") adds two live
 * views.  The `metrics` request renders every counter, histogram and
 * a set of derived gauges (queue depth, jobs in flight, cache hit
 * rate, pool occupancy, cells/s) as Prometheus text exposition; when
 * `metricsIntervalMs` is non-zero a sampler thread also snapshots the
 * gauges into an obs::Timeseries ring served alongside the body.  And
 * when the process-global span sink (obs::Spans) is open, every
 * request handler, queue wait and job run records a span carrying the
 * client's `trace_id`, so one timeline stitches client -> admission ->
 * queue -> worker -> sim::simulate.  Both are zero-cost when off.
 */

#ifndef DCFB_SVC_SERVER_H
#define DCFB_SVC_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/pool.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "rt/error.h"
#include "rt/faults.h"
#include "sim/config.h"
#include "sim/simulator.h"
#include "svc/journal.h"
#include "svc/protocol.h"
#include "svc/result_cache.h"

namespace dcfb::svc {

/** Daemon configuration (CLI flags of dcfb-serve map 1:1). */
struct ServerConfig
{
    std::string socketPath;        //!< Unix-domain socket ("" = none)
    std::string listenAddr;        //!< TCP host:port ("" = none); port
                                   //!< 0 binds ephemeral (see tcpPort())
    unsigned jobs = 0;             //!< simulation workers (0 = auto)
    std::size_t queueCapacity = 64; //!< admission bound (jobs waiting)
    unsigned retryAfterMs = 250;   //!< backpressure hint to clients
    std::string cacheDir;          //!< ResultCache dir ("" = no cache)
    sim::RunWindows defaultWindows; //!< when a submit names none
    unsigned metricsIntervalMs = 0; //!< gauge sampler period (0 = off)

    // -- crash safety (DESIGN.md "Failure model and recovery") ------------
    std::string journalDir;        //!< job journal dir ("" = off)
    FsyncPolicy journalFsync = FsyncPolicy::Always;
    std::uint64_t journalRotateEvery = 4096; //!< appends per segment
    std::uint64_t leaseMs = 0;     //!< worker lease period (0 = off)
    std::uint64_t leaseMaxReclaims = 3; //!< requeues before failing
    rt::SvcFaultPlan svcInjectPlan; //!< service I/O fault plane

    /** Optional per-config tweak applied after makeConfig (tests use
     *  this to shrink workloads; applied before fingerprinting so
     *  tweaked configs get their own cache keys). */
    std::function<void(sim::SystemConfig &)> configHook;

    /** Optional hook called by a worker right before it simulates
     *  (tests use this to wedge a worker so the lease watchdog and the
     *  graceful-drain path can be exercised deterministically). */
    std::function<void(const std::string &label)> runHook;
};

class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, start the accept/dispatch/worker machinery. */
    rt::Expected<void> start();

    /** Stop admitting submits; queued and running jobs keep going. */
    void requestDrain();

    /** Block until every admitted job reached a terminal state. */
    void awaitDrained();

    /** Full shutdown: drain, stop threads, close + unlink the socket.
     *  Idempotent; the destructor calls it. */
    void shutdown();

    bool draining() const { return drainFlag.load(); }

    /** Resolved TCP port (0 when no `listenAddr` was bound).  With
     *  `--listen host:0` this is how tests and scripts learn the
     *  ephemeral port the kernel picked. */
    std::uint16_t tcpPort() const { return boundTcpPort; }

    /** Snapshot of the `stats` reply (tests read it in-process). */
    obs::JsonValue statsSnapshot();

    /** The `metrics` reply: Prometheus exposition body + sampler ring. */
    obs::JsonValue metricsSnapshot();

    /** One request line -> one reply document (the socket handler and
     *  in-process tests share this entry point). */
    obs::JsonValue handleLine(const std::string &line);

  private:
    enum class JobState { Queued, Running, Done, Failed, Cancelled };

    struct Job
    {
        std::string id;
        std::string key;            //!< content-addressed cache key
        std::string label;          //!< "workload/preset"
        sim::SystemConfig cfg;
        sim::RunWindows windows;
        obs::JsonValue fp;          //!< canonical fingerprint
        JobState state = JobState::Queued;
        bool cached = false;        //!< answered from the ResultCache
        std::string errorCode;
        std::string errorText;
        std::optional<sim::RunResult> result;
        std::chrono::steady_clock::time_point submittedAt;
        std::chrono::steady_clock::time_point startedAt;
        std::uint64_t deadlineMs = 0;
        std::uint64_t traceId = 0;      //!< span stitching (0 = none)
        std::uint64_t parentSpan = 0;   //!< submit-op span to parent under
        std::uint64_t submitSpanUs = 0; //!< queue-wait span start

        // -- crash safety -------------------------------------------------
        obs::JsonValue spec;      //!< submit-shaped doc (journal mode)
        bool recovered = false;   //!< replayed from the journal
        bool boundExempt = false; //!< requeued outside admission control
        std::uint64_t generation = 0; //!< lease-reclaim epoch
        std::uint64_t reclaims = 0;   //!< lease reclaims so far
        std::chrono::steady_clock::time_point leaseExpiry;
    };

    static const char *stateName(JobState state);

    obs::JsonValue handleSubmit(const SubmitSpec &spec);
    obs::JsonValue handleStatus(const std::string &job_id);
    obs::JsonValue handleFetch(const std::string &job_id);
    obs::JsonValue handleCancel(const std::string &job_id);

    /** rt invariant: the admission queue never exceeds its bound. */
    rt::Expected<void> checkQueueBoundLocked();

    /** Replay incomplete journal records at start() (journal mode). */
    rt::Expected<void> recoverFromJournal();

    /** Append to the journal, surfacing failures on stderr (journal
     *  mode; terminal records must never fail the job they retire). */
    void journalAppendLocked(const JournalRecord &record);

    /** Journal a job's terminal transition (no-op when journal off). */
    void journalTerminalLocked(const Job &job);

    void acceptLoop();
    void handleConnection(int fd);
    void dispatchLoop();
    void runJob(const std::shared_ptr<Job> &job);
    void leaseLoop();

    /** Gauge set shared by the `metrics` body and the sampler ring.
     *  Rate gauges are deltas against the previous call. */
    struct GaugeSample
    {
        double queueDepth = 0;
        double jobsInflight = 0;
        double cacheHitRate = 0;
        double poolOccupancy = 0;
        double cellsPerSec = 0;
    };
    GaugeSample sampleGaugesLocked();
    void metricsLoop();

    std::shared_ptr<Job> findJob(const std::string &job_id);

    ServerConfig cfg;

    std::unique_ptr<ResultCache> cache;       //!< nullptr = no cache
    std::unique_ptr<exec::Pool> pool;
    std::unique_ptr<Journal> journal;         //!< nullptr = no journal
    rt::SvcFaultInjector svcInject;           //!< service I/O faults

    mutable std::mutex mutex;
    std::condition_variable queueReady;       //!< dispatcher wake-up
    std::condition_variable jobsSettled;      //!< awaitDrained wake-up
    std::deque<std::shared_ptr<Job>> queue;   //!< admitted, not started
    std::map<std::string, std::shared_ptr<Job>> jobs;       //!< by id
    std::map<std::string, std::shared_ptr<Job>> inflight;   //!< by key
    // Idempotency index (journal mode only): the latest job per
    // fingerprint key, *including* terminal Done jobs, so a blind
    // resubmit after a lost reply finds its result (`already_known`).
    std::map<std::string, std::shared_ptr<Job>> byKey;
    std::uint64_t nextJobId = 0;
    std::size_t queuePeak = 0;
    std::uint64_t activeJobs = 0;             //!< running on the pool
    // Queued jobs exempt from the admission bound: journal replays and
    // lease reclaims re-enter the queue without a client to reject, so
    // the invariant allows `capacity + boundExempt` until they drain.
    std::uint64_t boundExempt = 0;

    obs::StatRegistry stats;                  //!< guarded by `mutex`
    obs::Counter cSubmitted, cAdmitted, cRejectedFull, cRejectedDraining,
        cBadRequests, cCoalesced, cCacheHits, cSimsExecuted, cCompleted,
        cFailed, cCancelled, cDeadlineExpired, cInvariantViolations;
    obs::Histogram hQueueWaitUs, hRunUs, hRequestUs;
    obs::Histogram hOpLatencyUs[kOpCount];    //!< svc.op.<op>.latency_us
    // Crash-safety counters bind lazily so the stats/counters key set
    // is unchanged from PR 6 while these features sit unused.
    obs::LazyCounter cRecoveryReplayed, cRecoveryCacheHits,
        cRecoveryKeyMismatch, cAlreadyKnown, cLeaseReclaimed,
        cLeaseExpiredFailed, cLeaseStaleCompletions, cTmpReaped;

    obs::Timeseries series;                   //!< gauge sampler ring
    std::thread metricsThread;
    std::mutex metricsMutex;                  //!< sampler sleep/stop only
    std::condition_variable metricsStop;
    // Previous cumulative values behind the rate gauges; touched only
    // under `mutex` (sampler + metrics requests).
    double prevBusySeconds = 0.0;
    double prevUptimeSeconds = 0.0;
    std::uint64_t prevSimsExecuted = 0;

    std::atomic<bool> drainFlag{false};
    std::atomic<bool> stopFlag{false};
    int listenFd = -1;                        //!< Unix-domain listener
    int tcpListenFd = -1;                     //!< TCP listener
    std::uint16_t boundTcpPort = 0;
    std::thread acceptThread;
    std::thread dispatchThread;
    std::thread leaseThread;                  //!< lease watchdog
    std::mutex leaseMutex;                    //!< watchdog sleep/stop only
    std::condition_variable leaseStop;
    std::uint64_t activeConnections = 0;
    std::set<int> connectionFds;              //!< open handler sockets
    std::condition_variable connectionsIdle;
    std::chrono::steady_clock::time_point startedAt;
    bool started = false;
};

} // namespace dcfb::svc

#endif // DCFB_SVC_SERVER_H
