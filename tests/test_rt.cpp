/**
 * @file
 * Tests for the runtime-integrity layer: structured errors, Expected,
 * the --inject spec parser, the invariant registry, the forward-progress
 * watchdog, and fuzz-style negative tests that feed the trace walker
 * malformed control-flow graphs and expect typed diagnostics -- never
 * out-of-bounds indexing or a silent wrong walk.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rt/error.h"
#include "rt/faults.h"
#include "rt/invariants.h"
#include "rt/watchdog.h"
#include "workload/cfg.h"
#include "workload/trace.h"

namespace dcfb::rt {
namespace {

TEST(RtError, RenderCarriesKindMessageAndContext)
{
    Error e = Error(ErrorKind::Workload, "something broke")
                  .with("where", "here")
                  .with("count", std::uint64_t{42});
    std::string r = e.render();
    EXPECT_NE(r.find("workload"), std::string::npos);
    EXPECT_NE(r.find("something broke"), std::string::npos);
    EXPECT_NE(r.find("where"), std::string::npos);
    EXPECT_NE(r.find("here"), std::string::npos);
    EXPECT_NE(r.find("42"), std::string::npos);
    // Context renders in insertion order.
    EXPECT_LT(r.find("where"), r.find("count"));
}

TEST(RtError, KindNamesAreDistinct)
{
    EXPECT_STRNE(errorKindName(ErrorKind::Config),
                 errorKindName(ErrorKind::Workload));
    EXPECT_STRNE(errorKindName(ErrorKind::Invariant),
                 errorKindName(ErrorKind::Watchdog));
}

TEST(RtExpected, ValueAndErrorPaths)
{
    Expected<int> good(7);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 7);

    Expected<int> bad(Error(ErrorKind::Config, "nope"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().kind, ErrorKind::Config);
    EXPECT_THROW(bad.value(), Exception);

    Expected<void> fine;
    EXPECT_TRUE(fine.ok());
    Expected<void> failed{Error(ErrorKind::Invariant, "broken")};
    EXPECT_FALSE(failed.ok());
    EXPECT_THROW(failed.value(), Exception);
}

TEST(RtExpected, ExceptionRendersTheError)
{
    try {
        raise(Error(ErrorKind::Watchdog, "no forward progress")
                  .with("window", std::uint64_t{50000}));
        FAIL() << "raise() returned";
    } catch (const Exception &ex) {
        EXPECT_EQ(ex.error().kind, ErrorKind::Watchdog);
        EXPECT_NE(std::string(ex.what()).find("no forward progress"),
                  std::string::npos);
        EXPECT_NE(std::string(ex.what()).find("50000"), std::string::npos);
    }
}

TEST(RtFaultPlan, ParsesEveryKindAndKey)
{
    auto drop = parseFaultPlan("drop");
    ASSERT_TRUE(drop.ok());
    EXPECT_EQ(drop.value().kind, FaultKind::Drop);
    EXPECT_TRUE(drop.value().active());

    auto delay = parseFaultPlan("delay:cycles=300,rate=0.5,seed=9");
    ASSERT_TRUE(delay.ok());
    EXPECT_EQ(delay.value().kind, FaultKind::Delay);
    EXPECT_EQ(delay.value().delayCycles, 300u);
    EXPECT_DOUBLE_EQ(delay.value().rate, 0.5);
    EXPECT_EQ(delay.value().seed, 9u);

    auto corrupt = parseFaultPlan("corrupt:rate=1");
    ASSERT_TRUE(corrupt.ok());
    EXPECT_EQ(corrupt.value().kind, FaultKind::Corrupt);

    auto bp = parseFaultPlan("backpressure");
    ASSERT_TRUE(bp.ok());
    EXPECT_EQ(bp.value().kind, FaultKind::Backpressure);

    auto off = parseFaultPlan("none");
    ASSERT_TRUE(off.ok());
    EXPECT_FALSE(off.value().active());
}

TEST(RtFaultPlan, SpecRoundTrips)
{
    for (const char *spec :
         {"drop", "delay:cycles=300", "corrupt:rate=0.5,seed=3",
          "backpressure:rate=0.75", "none"}) {
        auto plan = parseFaultPlan(spec);
        ASSERT_TRUE(plan.ok()) << spec;
        auto again = parseFaultPlan(faultPlanSpec(plan.value()));
        ASSERT_TRUE(again.ok()) << faultPlanSpec(plan.value());
        EXPECT_EQ(again.value().kind, plan.value().kind);
        EXPECT_DOUBLE_EQ(again.value().rate, plan.value().rate);
        EXPECT_EQ(again.value().delayCycles, plan.value().delayCycles);
        EXPECT_EQ(again.value().seed, plan.value().seed);
    }
}

TEST(RtFaultPlan, RejectsMalformedSpecs)
{
    for (const char *spec :
         {"", "bogus", "drop:rate=1.5", "drop:rate=-0.1", "drop:rate=abc",
          "delay:cycles=0", "delay:cycles=xyz", "drop:frobnicate=1",
          "drop:rate=", "drop:", ":rate=0.5"}) {
        auto plan = parseFaultPlan(spec);
        ASSERT_FALSE(plan.ok()) << spec;
        EXPECT_EQ(plan.error().kind, ErrorKind::Fault) << spec;
        // The diagnostic teaches the accepted syntax.
        EXPECT_NE(plan.error().render().find("drop"), std::string::npos)
            << spec;
    }
}

TEST(RtFaultPlan, KindIsolationKeepsDrawSequencesIndependent)
{
    // A Corrupt-only injector must never answer a Drop hook, and the
    // answer must not consume randomness that shifts later draws.
    FaultPlan plan;
    plan.kind = FaultKind::Corrupt;
    plan.rate = 1.0;
    FaultInjector inj(plan, 1);
    Addr first = inj.corruptTarget(0x10000);
    EXPECT_FALSE(inj.dropPrefetchResponse());
    EXPECT_EQ(inj.responseDelay(), 0u);
    EXPECT_FALSE(inj.forceBackpressure());

    FaultInjector twin(plan, 1);
    EXPECT_EQ(twin.corruptTarget(0x10000), first);
}

TEST(RtFaultPlan, CorruptedTargetsStayBlockAlignedAndWrong)
{
    FaultPlan plan;
    plan.kind = FaultKind::Corrupt;
    plan.rate = 1.0;
    FaultInjector inj(plan, 7);
    for (int i = 0; i < 256; ++i) {
        Addr t = 0x40000 + static_cast<Addr>(i) * kBlockBytes;
        Addr c = inj.corruptTarget(t);
        EXPECT_EQ(c % kBlockBytes, 0u);
        EXPECT_NE(c, blockAlign(t));
    }
    EXPECT_EQ(inj.stats().get("faults_corrupted"), 256u);
}

TEST(RtInvariants, SweepReportsOnlyViolations)
{
    InvariantRegistry reg;
    reg.add("always.holds", [](Cycle) { return std::nullopt; });
    reg.add("always.fails",
            [](Cycle now) -> std::optional<std::string> {
                return "broke at cycle " + std::to_string(now);
            });
    auto violations = reg.sweep(123);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].invariant, "always.fails");
    EXPECT_NE(violations[0].detail.find("123"), std::string::npos);

    auto checked = reg.check(123);
    ASSERT_FALSE(checked.ok());
    EXPECT_EQ(checked.error().kind, ErrorKind::Invariant);
    EXPECT_NE(checked.error().render().find("always.fails"),
              std::string::npos);
}

TEST(RtInvariants, DisabledRegistrySweepsNothing)
{
    InvariantRegistry reg;
    int calls = 0;
    reg.add("counts.calls",
            [&calls](Cycle) -> std::optional<std::string> {
                ++calls;
                return "always fails";
            });
    reg.setEnabled(false);
    EXPECT_TRUE(reg.sweep(1).empty());
    EXPECT_TRUE(reg.check(1).ok());
    EXPECT_EQ(calls, 0);
}

TEST(RtInvariants, ZeroActivityGateSkipsTheCheck)
{
    InvariantRegistry reg;
    std::size_t active = 0;
    int walks = 0;
    reg.add("gated.walk", [&active] { return active; },
            [&walks](Cycle) -> std::optional<std::string> {
                ++walks;
                return std::nullopt;
            });

    // Idle state: the gate answers 0, the walk must never run.
    for (Cycle c = 1; c <= 5; ++c)
        EXPECT_TRUE(reg.sweep(c).empty());
    EXPECT_EQ(walks, 0);
    EXPECT_EQ(reg.checksRun(), 0u);
    EXPECT_EQ(reg.checksSkipped(), 5u);

    // Entries appear: the same registration runs again.
    active = 3;
    EXPECT_TRUE(reg.sweep(6).empty());
    EXPECT_EQ(walks, 1);
    EXPECT_EQ(reg.checksRun(), 1u);

    // Drained again: back to skipping.
    active = 0;
    EXPECT_TRUE(reg.sweep(7).empty());
    EXPECT_EQ(walks, 1);
    EXPECT_EQ(reg.checksSkipped(), 6u);
}

TEST(RtInvariants, GatedViolationStillReportsWhenActive)
{
    InvariantRegistry reg;
    std::size_t active = 0;
    reg.add("gated.fails", [&active] { return active; },
            [](Cycle) -> std::optional<std::string> {
                return "bad entry";
            });
    EXPECT_TRUE(reg.sweep(1).empty()); // masked while idle
    active = 1;
    auto violations = reg.sweep(2);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].invariant, "gated.fails");
}

TEST(RtInvariants, SweepCostIsActiveEntriesNotCapacity)
{
    // The contract the simulator relies on: a sweep over idle machine
    // state costs one gate probe per gated check -- no structure walks.
    // Pin it by counting both probes and walks over a mixed registry.
    InvariantRegistry reg;
    int probes = 0, walks = 0;
    std::size_t active = 0;
    for (int i = 0; i < 8; ++i) {
        reg.add("gated." + std::to_string(i),
                [&probes, &active] {
                    ++probes;
                    return active;
                },
                [&walks](Cycle) -> std::optional<std::string> {
                    ++walks;
                    return std::nullopt;
                });
    }
    reg.add("ungated", [&walks](Cycle) -> std::optional<std::string> {
        ++walks;
        return std::nullopt;
    });

    reg.sweep(1);
    EXPECT_EQ(probes, 8);
    EXPECT_EQ(walks, 1); // only the ungated check walked

    active = 2;
    reg.sweep(2);
    EXPECT_EQ(probes, 16);
    EXPECT_EQ(walks, 10); // all 8 gated walks + the ungated one
}

TEST(RtWatchdog, HealthyProgressNeverTrips)
{
    Watchdog dog(100);
    std::uint64_t retired = 0, fetched = 0;
    for (Cycle now = 0; now < 2000; now += 50) {
        retired += 10;
        fetched += 20;
        EXPECT_FALSE(dog.observe(now, retired, fetched).has_value());
    }
}

TEST(RtWatchdog, NoRetireTripsAfterWindow)
{
    Watchdog dog(100);
    dog.observe(0, 5, 5); // arms the baseline
    // Fetch advances, retire freezes: a wedged backend.
    EXPECT_FALSE(dog.observe(50, 5, 10).has_value());
    EXPECT_FALSE(dog.observe(100, 5, 15).has_value());
    auto err = dog.observe(150, 5, 20);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->kind, ErrorKind::Watchdog);
    EXPECT_NE(err->render().find("retire"), std::string::npos);
}

TEST(RtWatchdog, RearmResetsTheBaseline)
{
    Watchdog dog(100);
    dog.observe(0, 5, 5);
    EXPECT_FALSE(dog.observe(80, 5, 5).has_value());
    dog.rearm(90, 5, 5);
    // The old frozen window must not count after a rearm.
    EXPECT_FALSE(dog.observe(150, 5, 5).has_value());
    EXPECT_TRUE(dog.observe(200, 5, 5).has_value());
}

// ---------------------------------------------------------------------------
// Fuzz-style negative tests: hand-build malformed CFGs and expect the
// walker to die with a typed Workload error, never UB.

using workload::BasicBlock;
using workload::Function;
using workload::Program;
using workload::TermKind;
using workload::TraceWalker;

BasicBlock
makeBlock(Addr start, std::size_t instrs, TermKind term,
          std::uint32_t target = 0, std::uint32_t callee = 0)
{
    BasicBlock bb;
    bb.start = start;
    bb.term = term;
    bb.targetBlock = target;
    bb.callee = callee;
    bb.takenProb = 0.5;
    for (std::size_t i = 0; i < instrs; ++i) {
        bb.pcs.push_back(start + i * kInstrBytes);
        bb.lens.push_back(kInstrBytes);
        bb.kinds.push_back(isa::InstrKind::Alu);
    }
    switch (term) {
      case TermKind::Cond:
        bb.kinds.back() = isa::InstrKind::CondBranch;
        break;
      case TermKind::Jump:
        bb.kinds.back() = isa::InstrKind::Jump;
        break;
      case TermKind::Call:
        bb.kinds.back() = isa::InstrKind::Call;
        break;
      case TermKind::Return:
        bb.kinds.back() = isa::InstrKind::Return;
        break;
      default:
        break;
    }
    return bb;
}

Program
makeProgram(std::vector<Function> functions)
{
    Program prog;
    prog.functions = std::move(functions);
    prog.driverTargets = {0};
    return prog;
}

TEST(RtTraceGuards, EmptyProgramIsRejectedAtConstruction)
{
    Program prog;
    try {
        TraceWalker w(prog, 1);
        FAIL() << "empty program accepted";
    } catch (const Exception &ex) {
        EXPECT_EQ(ex.error().kind, ErrorKind::Workload);
    }
}

TEST(RtTraceGuards, FallThroughOffTheEndRaises)
{
    // One block, FallThrough terminator: nowhere to fall into.
    Function fn;
    fn.blocks.push_back(makeBlock(0x1000, 4, TermKind::FallThrough));
    Program prog = makeProgram({fn});
    TraceWalker w(prog, 1);
    for (int i = 0; i < 3; ++i)
        w.next();
    try {
        w.next();
        FAIL() << "walked past the last block";
    } catch (const Exception &ex) {
        EXPECT_EQ(ex.error().kind, ErrorKind::Workload);
        EXPECT_NE(ex.error().render().find("fall-through"),
                  std::string::npos);
    }
}

TEST(RtTraceGuards, OutOfRangeBranchTargetRaises)
{
    Function fn;
    fn.blocks.push_back(makeBlock(0x1000, 2, TermKind::Jump, 99));
    fn.blocks.push_back(makeBlock(0x2000, 2, TermKind::Jump, 0));
    Program prog = makeProgram({fn});
    TraceWalker w(prog, 1);
    w.next();
    EXPECT_THROW(w.next(), Exception);
}

TEST(RtTraceGuards, CallToMissingFunctionRaises)
{
    Function fn;
    fn.blocks.push_back(makeBlock(0x1000, 2, TermKind::Call, 0, 7));
    fn.blocks.push_back(makeBlock(0x2000, 2, TermKind::Jump, 0));
    Program prog = makeProgram({fn});
    TraceWalker w(prog, 1);
    w.next();
    try {
        w.next();
        FAIL() << "called a function that does not exist";
    } catch (const Exception &ex) {
        EXPECT_EQ(ex.error().kind, ErrorKind::Workload);
        EXPECT_NE(ex.error().render().find("callee"), std::string::npos);
    }
}

TEST(RtTraceGuards, SelfReferentialCallGraphHitsTheDepthBound)
{
    // The driver calls itself: a cycle the generator's strictly
    // increasing call-level rule forbids.  The walk must terminate with
    // a typed error instead of growing the stack until OOM.
    Function fn;
    fn.blocks.push_back(makeBlock(0x1000, 2, TermKind::Call, 0, 0));
    fn.blocks.push_back(makeBlock(0x2000, 2, TermKind::Jump, 0));
    Program prog = makeProgram({fn});
    TraceWalker w(prog, 1);
    try {
        for (int i = 0; i < (1 << 20); ++i)
            w.next();
        FAIL() << "self-referential call graph never tripped";
    } catch (const Exception &ex) {
        EXPECT_EQ(ex.error().kind, ErrorKind::Workload);
        EXPECT_NE(ex.error().render().find("depth"), std::string::npos);
    }
}

TEST(RtTraceGuards, DriverReturnRaises)
{
    Function fn;
    fn.blocks.push_back(makeBlock(0x1000, 2, TermKind::Return));
    Program prog = makeProgram({fn});
    TraceWalker w(prog, 1);
    w.next();
    try {
        w.next();
        FAIL() << "driver returned";
    } catch (const Exception &ex) {
        EXPECT_EQ(ex.error().kind, ErrorKind::Workload);
        EXPECT_NE(ex.error().render().find("driver"), std::string::npos);
    }
}

TEST(RtTraceGuards, FuzzedCorruptionsNeverCrash)
{
    // Start from a real generated program, corrupt one structural field
    // per trial, and require the walk to either keep producing entries
    // or die with a typed Workload error -- nothing else.
    workload::WorkloadProfile profile;
    profile.name = "fuzz";
    profile.numFunctions = 16;
    profile.seed = 42;
    Rng rng(2026);
    for (int trial = 0; trial < 40; ++trial) {
        Program prog = workload::buildProgram(profile);
        auto &fns = prog.functions;
        std::uint32_t fi =
            static_cast<std::uint32_t>(rng.below(fns.size()));
        auto &blocks = fns[fi].blocks;
        std::uint32_t bi =
            static_cast<std::uint32_t>(rng.below(blocks.size()));
        switch (trial % 4) {
          case 0: // out-of-range branch target
            blocks[bi].term = TermKind::Jump;
            blocks[bi].targetBlock = 0xdeadu;
            break;
          case 1: // call into the void
            blocks[bi].term = TermKind::Call;
            blocks[bi].callee =
                static_cast<std::uint32_t>(fns.size()) + 9;
            break;
          case 2: // truncate: make the last block fall off the end
            blocks.back().term = TermKind::FallThrough;
            break;
          case 3: // driver-level return
            blocks[bi].term = TermKind::Return;
            break;
        }
        TraceWalker w(prog, 1);
        try {
            for (int i = 0; i < 200000; ++i)
                w.next();
            // Walks that never visit the corrupted block are fine.
        } catch (const Exception &ex) {
            EXPECT_EQ(ex.error().kind, ErrorKind::Workload) << trial;
        }
    }
}

} // namespace
} // namespace dcfb::rt
