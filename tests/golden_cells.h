/**
 * @file
 * The golden-result corpus cell list, shared between the generator
 * (`tools/dcfb_golden.cpp`, via `scripts/update_golden.py`) and the
 * regression test (`tests/test_golden.cpp`).
 *
 * Sixteen (workload, preset) cells spanning every prefetcher family the
 * paper evaluates -- sequential (NL/SN4L), discontinuity, BTB-directed
 * (Boomerang/Shotgun), Confluence, the competitor designs (FDIP and
 * the micro BTB), the combined proposal, the perfect frontends, and one
 * variable-length-ISA flavour so the VL decode path
 * is pinned too.  Each cell's RunResult JSON is committed under
 * `tests/golden/`; `test_golden.cpp` asserts that re-simulating the cell
 * reproduces the committed result *bit for bit* (RunResult::operator==
 * over every counter and histogram).  That equality is what licenses
 * hot-path optimization of the simulator core: any change that alters
 * one counter in one cell fails the suite.
 *
 * The corpus deliberately uses shorter windows than the benches (the
 * point is covering code paths, not paper-scale measurements); the
 * windows and warmup length are part of the pinned contract and must
 * never change without regenerating the corpus via
 * `scripts/update_golden.py` (which refuses to run on a dirty tree).
 */

#ifndef DCFB_TESTS_GOLDEN_CELLS_H
#define DCFB_TESTS_GOLDEN_CELLS_H

#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/simulator.h"
#include "workload/profiles.h"

namespace dcfb::golden {

/** One pinned corpus cell. */
struct Cell
{
    const char *workload; //!< server-profile name (Table IV)
    sim::Preset preset;   //!< evaluated design
    bool vl = false;      //!< variable-length-ISA flavour
};

/** The sixteen pinned cells. */
inline std::vector<Cell>
cells()
{
    using sim::Preset;
    return {
        {"Media Streaming", Preset::Baseline},
        {"OLTP (DB A)", Preset::SN4LDisBtb},
        {"OLTP (DB B)", Preset::NL},
        {"Web (Apache)", Preset::SN4L},
        {"Web (Zeus)", Preset::DisOnly},
        {"Web Frontend", Preset::SN4LDis},
        {"Web Search", Preset::Shotgun},
        {"OLTP (DB A)", Preset::Confluence},
        {"Web (Apache)", Preset::Boomerang},
        {"Media Streaming", Preset::ClassicDis},
        {"Web Frontend", Preset::PerfectL1iBtb},
        {"Web Search", Preset::SN4LDisBtb, /*vl=*/true},
        {"OLTP (DB A)", Preset::Fdip},
        {"Web Frontend", Preset::Fdip},
        {"OLTP (DB A)", Preset::MicroBtb},
        {"Web Frontend", Preset::MicroBtb},
    };
}

/** Pinned run windows (short: coverage, not measurement). */
inline sim::RunWindows
windows()
{
    return sim::RunWindows{30000, 40000};
}

/** The cell's full SystemConfig (pinned warmup, default seed/faults). */
inline sim::SystemConfig
config(const Cell &cell)
{
    sim::SystemConfig cfg =
        sim::makeConfig(workload::serverProfile(cell.workload, cell.vl),
                        cell.preset);
    cfg.functionalWarmInstrs = 250000;
    cfg.faults = rt::FaultPlan{}; // corpus is always uninjected
    return cfg;
}

/** Stable on-disk name, e.g. "oltp_db_a-sn4l_dis_btb.json". */
inline std::string
fileName(const Cell &cell)
{
    auto slug = [](const std::string &s) {
        std::string out;
        bool gap = false;
        for (char c : s) {
            if (std::isalnum(static_cast<unsigned char>(c))) {
                if (gap && !out.empty())
                    out += '_';
                gap = false;
                out += static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c)));
            } else {
                gap = true;
            }
        }
        return out;
    };
    std::string name =
        slug(cell.workload) + "-" + slug(sim::presetName(cell.preset));
    if (cell.vl)
        name += "-vl";
    return name + ".json";
}

} // namespace dcfb::golden

#endif // DCFB_TESTS_GOLDEN_CELLS_H
