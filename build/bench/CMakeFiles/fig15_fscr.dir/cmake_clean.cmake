file(REMOVE_RECURSE
  "CMakeFiles/fig15_fscr.dir/fig15_fscr.cpp.o"
  "CMakeFiles/fig15_fscr.dir/fig15_fscr.cpp.o.d"
  "fig15_fscr"
  "fig15_fscr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_fscr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
