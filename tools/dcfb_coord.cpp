/**
 * @file
 * dcfb-coord: the fleet coordinator daemon.
 *
 *   dcfb-coord --worker NAME=ENDPOINT [--worker ...]
 *              [--socket PATH] [--listen HOST:PORT]
 *              [--vnodes N] [--warm N --measure N]
 *              [--connect-budget-ms N] [--recv-timeout-ms N]
 *              [--poll-ms N] [--cell-attempts N]
 *              [--trace-spans FILE]
 *
 * Each --worker names one dcfb-serve daemon (ENDPOINT is a Unix-socket
 * path or host:port).  Grid cells are sharded across the fleet on a
 * consistent-hash ring keyed by their result-cache fingerprints, so
 * repeat cells land on the worker whose cache holds them (DESIGN.md
 * section 15); the `grid` op streams per-cell events and a merged
 * dcfb-grid-v1 report.  Runs until SIGTERM/SIGINT, then drains: the
 * running grid finishes, fleet stats print to stdout, exit 0.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "cli/flag_docs.h"
#include "obs/span.h"
#include "svc/coordinator.h"

namespace {

volatile std::sig_atomic_t stopRequested = 0;

void
onSignal(int)
{
    stopRequested = 1;
}

[[noreturn]] void
usage(const char *argv0)
{
    // Rendered from the same table as docs/FLAGS.md (src/cli/flag_docs.cpp).
    for (const auto &doc : dcfb::cli::allBinaryDocs()) {
        if (doc.binary != "dcfb-coord")
            continue;
        std::fprintf(stderr, "usage: %s %s\n", argv0,
                     dcfb::cli::usageLine(doc).c_str());
        std::exit(2);
    }
    std::fprintf(stderr, "usage: %s --worker NAME=ENDPOINT ...\n", argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dcfb;

    svc::CoordinatorConfig config;
    config.defaultWindows = sim::RunWindows{150000, 150000};
    std::string spanPath;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--worker") {
            std::string spec = next();
            std::size_t eq = spec.find('=');
            svc::WorkerSpec worker;
            if (eq == std::string::npos) {
                // Bare ENDPOINT: the endpoint doubles as the ring name.
                worker.name = spec;
                worker.endpoint = spec;
            } else {
                worker.name = spec.substr(0, eq);
                worker.endpoint = spec.substr(eq + 1);
            }
            config.workers.push_back(std::move(worker));
        } else if (arg == "--socket")
            config.socketPath = next();
        else if (arg == "--listen")
            config.listenAddr = next();
        else if (arg == "--vnodes")
            config.vnodes = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--warm")
            config.defaultWindows.warm =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--measure")
            config.defaultWindows.measure =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--connect-budget-ms")
            config.connectBudgetMs =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--recv-timeout-ms")
            config.recvTimeoutMs =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--poll-ms")
            config.pollMs =
                static_cast<std::uint64_t>(std::atoll(next()));
        else if (arg == "--cell-attempts")
            config.cellAttempts =
                static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--trace-spans")
            spanPath = next();
        else
            usage(argv[0]);
    }
    if (config.workers.empty() ||
        (config.socketPath.empty() && config.listenAddr.empty()))
        usage(argv[0]);

    if (!spanPath.empty() && !obs::Spans::open(spanPath)) {
        std::fprintf(stderr, "dcfb-coord: cannot open %s\n",
                     spanPath.c_str());
        return 1;
    }

    svc::Coordinator coordinator(config);
    if (auto started = coordinator.start(); !started.ok()) {
        std::fprintf(stderr, "dcfb-coord: %s\n",
                     started.error().render().c_str());
        return 1;
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    if (!config.listenAddr.empty()) {
        // `--listen host:0` binds an ephemeral port; announce the
        // resolved one so scripts can discover it.
        std::fprintf(stderr, "dcfb-coord: listening on tcp port %u\n",
                     coordinator.tcpPort());
    }
    if (!config.socketPath.empty()) {
        std::fprintf(stderr, "dcfb-coord: listening on %s\n",
                     config.socketPath.c_str());
    }
    std::fprintf(stderr, "dcfb-coord: %zu worker(s)\n",
                 config.workers.size());

    while (!stopRequested)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::fprintf(stderr, "dcfb-coord: draining\n");
    coordinator.requestDrain();
    std::printf("%s\n", coordinator.fleetStats().dump(2).c_str());
    coordinator.shutdown();
    if (!spanPath.empty()) {
        obs::Spans::close();
        std::fprintf(stderr,
                     "dcfb-coord: span timeline written to %s\n",
                     spanPath.c_str());
    }
    std::fprintf(stderr, "dcfb-coord: drained, exiting\n");
    return 0;
}
