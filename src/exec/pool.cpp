#include "exec/pool.h"

#include <chrono>
#include <string>

#include "obs/span.h"

namespace dcfb::exec {

unsigned
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

Pool::Pool(unsigned workers_, std::size_t queue_capacity)
{
    unsigned n = workers_ ? workers_ : 1;
    capacity = queue_capacity ? queue_capacity
                              : static_cast<std::size_t>(n) * 2;
    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        threads.emplace_back([this, i] {
            // Named tracks make the span timeline's per-worker
            // occupancy readable; a no-op when the sink is closed.
            obs::Spans::setThreadName("worker-" + std::to_string(i));
            workerLoop();
        });
    }
}

Pool::~Pool()
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        stopping = true;
    }
    taskReady.notify_all();
    spaceReady.notify_all();
    for (auto &t : threads)
        t.join();
}

void
Pool::submit(Task task)
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        spaceReady.wait(lock, [this] {
            return queue.size() < capacity || stopping;
        });
        if (stopping)
            return; // destructor raced a submit; drop the task
        queue.push_back(std::move(task));
    }
    taskReady.notify_one();
}

void
Pool::wait()
{
    std::unique_lock<std::mutex> lock(mutex);
    allIdle.wait(lock, [this] { return queue.empty() && active == 0; });
    if (firstError) {
        std::exception_ptr err = firstError;
        firstError = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

std::uint64_t
Pool::tasksRun() const
{
    std::unique_lock<std::mutex> lock(mutex);
    return done;
}

std::uint64_t
Pool::exceptionsDropped() const
{
    std::unique_lock<std::mutex> lock(mutex);
    return droppedErrors;
}

double
Pool::busySeconds() const
{
    std::unique_lock<std::mutex> lock(mutex);
    return static_cast<double>(busyNanos) * 1e-9;
}

void
Pool::workerLoop()
{
    using clock = std::chrono::steady_clock;
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            taskReady.wait(lock, [this] {
                return !queue.empty() || stopping;
            });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
            ++active;
        }
        spaceReady.notify_one();

        auto t0 = clock::now();
        std::exception_ptr err;
        try {
            task();
        } catch (...) {
            err = std::current_exception();
        }
        auto t1 = clock::now();

        bool idle = false;
        {
            std::unique_lock<std::mutex> lock(mutex);
            busyNanos += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count());
            ++done;
            --active;
            if (err) {
                if (firstError)
                    ++droppedErrors;
                else
                    firstError = err;
            }
            idle = queue.empty() && active == 0;
        }
        if (idle)
            allIdle.notify_all();
    }
}

} // namespace dcfb::exec
