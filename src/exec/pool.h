/**
 * @file
 * Work-sharing thread pool: fixed worker threads over one bounded task
 * deque.
 *
 * The pool is the execution engine behind the parallel experiment
 * runner (sim::ExperimentGrid, bench::simulateAll): every (workload x
 * design) cell of a sweep is an independent, deterministically-seeded
 * simulation, so a grid schedules each cell as one task and merges the
 * per-cell results after the wait() barrier.
 *
 * Design points, in the order they matter:
 *
 *  - **Work-sharing, not work-stealing.**  Tasks here are multi-second
 *    simulations; one shared MPMC deque behind a mutex costs nanoseconds
 *    per pop and keeps the implementation dependency-free and easy to
 *    reason about.  Stealing only pays when tasks are microseconds.
 *  - **Bounded queue.**  submit() blocks once `queueCapacity` tasks are
 *    pending, so a producer enumerating a large sweep cannot balloon
 *    memory by materializing every closure up front.
 *  - **Exception propagation.**  A task that throws does not kill the
 *    worker: the first exception is captured and rethrown from wait()
 *    on the caller's thread; later exceptions are counted and dropped.
 *  - **Occupancy accounting.**  Per-task busy time is accumulated so
 *    callers can report pool occupancy (busy / (wall x workers)) in the
 *    `dcfb-bench-v1` JSON.
 *
 * Thread-ownership contract (see DESIGN.md "Execution model"): tasks
 * must not share mutable state with each other; everything a task
 * mutates is owned by that task (per-cell System, StatRegistry,
 * Watchdog, FaultInjector), and anything shared is immutable
 * (workload::ImageCache programs).
 */

#ifndef DCFB_EXEC_POOL_H
#define DCFB_EXEC_POOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dcfb::exec {

/** std::thread::hardware_concurrency() clamped to at least 1. */
unsigned hardwareJobs();

/**
 * Fixed-size work-sharing pool with a bounded task deque.
 */
class Pool
{
  public:
    using Task = std::function<void()>;

    /**
     * Start @p workers_ threads.
     * @param workers_        worker-thread count (clamped to >= 1)
     * @param queue_capacity  bound on pending (not yet running) tasks;
     *                        0 picks 2 x workers
     */
    explicit Pool(unsigned workers_, std::size_t queue_capacity = 0);

    /** Waits for every submitted task, then joins the workers.  Any
     *  still-pending exception from an unchecked wait() is dropped. */
    ~Pool();

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    /**
     * Enqueue @p task; blocks while the queue is at capacity.  Must not
     * be called from a worker thread (a full queue would deadlock).
     */
    void submit(Task task);

    /**
     * Barrier: block until every submitted task has finished, then
     * rethrow the first task exception (if any) on this thread.
     */
    void wait();

    unsigned workers() const { return static_cast<unsigned>(threads.size()); }
    std::size_t queueCapacity() const { return capacity; }

    /** Tasks completed so far (including ones that threw). */
    std::uint64_t tasksRun() const;

    /** Tasks whose exception was dropped because one was already held. */
    std::uint64_t exceptionsDropped() const;

    /** Summed wall time spent inside tasks, across all workers. */
    double busySeconds() const;

  private:
    void workerLoop();

    mutable std::mutex mutex;
    std::condition_variable taskReady;  //!< workers: queue non-empty / stop
    std::condition_variable spaceReady; //!< submitters: queue below capacity
    std::condition_variable allIdle;    //!< wait(): queue empty, none active

    std::deque<Task> queue;
    std::size_t capacity;
    unsigned active = 0;          //!< tasks currently executing
    bool stopping = false;
    std::uint64_t done = 0;
    std::uint64_t droppedErrors = 0;
    std::uint64_t busyNanos = 0;
    std::exception_ptr firstError;

    std::vector<std::thread> threads;
};

} // namespace dcfb::exec

#endif // DCFB_EXEC_POOL_H
