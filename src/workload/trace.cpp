#include "workload/trace.h"

#include "rt/error.h"

namespace dcfb::workload {

using isa::InstrKind;

namespace {

/** Walk-stack depth bound; the generator's call-graph level rule keeps
 *  real programs far below it (maxCallDepth is single digits). */
constexpr std::size_t kMaxWalkDepth = 1u << 16;

/** A walk stepping past a function's last block means the generator
 *  emitted a block with no successor — a malformed CFG.  Die with the
 *  walk coordinates instead of indexing out of bounds. */
[[noreturn]] void
raiseNoSuccessor(const char *site, std::uint32_t fn, std::uint32_t blk,
                 std::size_t blocks)
{
    rt::raise(rt::Error(rt::ErrorKind::Workload,
                        "trace walk fell off the end of a function")
                  .with("site", site)
                  .with("function", fn)
                  .with("block", blk)
                  .with("blocks in function", blocks));
}

} // namespace

TraceWalker::TraceWalker(const Program &program_, std::uint64_t seed)
    : program(program_), rng(seed)
{
    if (program.functions.empty() || program.functions[0].blocks.empty() ||
        program.functions[0].blocks[0].numInstrs() == 0) {
        rt::raise(rt::Error(rt::ErrorKind::Workload,
                            "program has no driver code to walk")
                      .with("functions", program.functions.size()));
    }
    Frame root;
    stack.push_back(root);
}

Addr
TraceWalker::dataAddress(std::uint32_t fn)
{
    // Server-like data locality: most accesses hit a small per-function
    // hot region (stack frame / hot object), a slice walks the
    // function's 4 KB working set, and the tail sprays the shared heap
    // across the configured data footprint (this is what populates LLC
    // sets with data blocks for the DV-LLC experiments).
    std::uint64_t footprint = program.profile.dataFootprint;
    double u = rng.uniform();
    Addr addr;
    if (u < 0.93) {
        Addr region = program.dataBase + Addr{fn} * 4096;
        addr = region + (rng.below(256) & ~7ull);
    } else if (u < 0.98) {
        Addr region = program.dataBase + Addr{fn} * 4096;
        addr = region + (rng.below(4096) & ~7ull);
    } else {
        addr = program.dataBase + 0x10000000ull +
            (rng.below(footprint ? footprint : 4096) & ~7ull);
    }
    return addr;
}

TraceEntry
TraceWalker::next()
{
    Frame &f = stack.back();
    const Function &fn = program.functions[f.fn];
    const BasicBlock &bb = fn.blocks[f.blk];

    TraceEntry e;
    e.pc = bb.pcs[f.instr];
    e.len = bb.lens[f.instr];
    e.kind = bb.kinds[f.instr];
    ++count;

    bool is_terminator = f.instr + 1 == bb.numInstrs();

    if (e.kind == InstrKind::Load || e.kind == InstrKind::Store)
        e.dataAddr = dataAddress(f.fn);

    if (!is_terminator || bb.term == TermKind::FallThrough) {
        if (!is_terminator) {
            ++f.instr;
        } else {
            // Fall into the next block of the same function.
            if (f.blk + 1 >= fn.blocks.size())
                raiseNoSuccessor("fall-through", f.fn, f.blk,
                                 fn.blocks.size());
            ++f.blk;
            f.instr = 0;
        }
        e.nextPc = e.pc + e.len;
        return e;
    }

    switch (bb.term) {
      case TermKind::Cond: {
        if (bb.targetBlock >= fn.blocks.size()) {
            rt::raise(rt::Error(rt::ErrorKind::Workload,
                                "branch targets a block outside its function")
                          .with("function", f.fn)
                          .with("block", f.blk)
                          .with("target block", bb.targetBlock)
                          .with("blocks in function", fn.blocks.size()));
        }
        bool back_edge = bb.targetBlock <= f.blk;
        if (back_edge) {
            // Bounded loop: take the back edge for the drawn trip count,
            // then exit.  Mean trips follow the branch's taken bias.
            auto [it, fresh] = f.loopTrips.try_emplace(e.pc, 0);
            if (fresh) {
                auto mean = static_cast<std::uint32_t>(
                    bb.takenProb / (1.0 - bb.takenProb + 1e-6));
                it->second = static_cast<std::uint32_t>(
                    rng.range(1, std::max(2u * mean, 2u)));
            }
            if (it->second > 0) {
                --it->second;
                e.taken = true;
            } else {
                f.loopTrips.erase(it);
                e.taken = false;
            }
        } else {
            e.taken = rng.chance(bb.takenProb);
        }
        e.target = fn.blocks[bb.targetBlock].start;
        if (e.taken) {
            e.nextPc = e.target;
            f.blk = bb.targetBlock;
        } else {
            if (f.blk + 1 >= fn.blocks.size())
                raiseNoSuccessor("cond not-taken", f.fn, f.blk,
                                 fn.blocks.size());
            e.nextPc = e.pc + e.len;
            ++f.blk;
        }
        f.instr = 0;
        break;
      }
      case TermKind::Jump: {
        e.taken = true;
        if (bb.targetBlock >= fn.blocks.size()) {
            rt::raise(rt::Error(rt::ErrorKind::Workload,
                                "jump targets a block outside its function")
                          .with("function", f.fn)
                          .with("block", f.blk)
                          .with("target block", bb.targetBlock)
                          .with("blocks in function", fn.blocks.size()));
        }
        e.target = fn.blocks[bb.targetBlock].start;
        e.nextPc = e.target;
        f.blk = bb.targetBlock;
        f.instr = 0;
        break;
      }
      case TermKind::Call:
      case TermKind::IndirectCall: {
        e.taken = true;
        std::uint32_t callee;
        if (bb.term == TermKind::Call) {
            callee = bb.callee;
        } else if (stickyLeft > 0) {
            // Request batching: stay on the current handler for a while.
            callee = stickyCallee;
            --stickyLeft;
        } else {
            std::uint64_t pick = rng.zipf(program.driverTargets.size(),
                                          program.profile.zipfSkew);
            callee = program.driverTargets[pick];
            stickyCallee = callee;
            stickyLeft = static_cast<std::uint32_t>(rng.range(1, 3));
        }
        if (callee >= program.functions.size() ||
            program.functions[callee].blocks.empty()) {
            rt::raise(rt::Error(rt::ErrorKind::Workload,
                                "call targets a missing or empty function")
                          .with("function", f.fn)
                          .with("block", f.blk)
                          .with("callee", callee)
                          .with("functions", program.functions.size()));
        }
        // Self-referential call graphs (a cycle the generator's
        // strictly-increasing level rule forbids) would otherwise grow
        // the walk stack without bound.
        if (stack.size() >= kMaxWalkDepth) {
            rt::raise(rt::Error(rt::ErrorKind::Workload,
                                "call depth exceeded the walk bound")
                          .with("function", f.fn)
                          .with("callee", callee)
                          .with("depth", stack.size())
                          .with("bound", kMaxWalkDepth));
        }
        e.target = program.functions[callee].entry;
        e.nextPc = e.target;
        if (f.blk + 1 >= fn.blocks.size())
            raiseNoSuccessor("call return-site", f.fn, f.blk,
                             fn.blocks.size());
        Frame callee_frame;
        callee_frame.fn = callee;
        callee_frame.retBlk = f.blk + 1;
        stack.push_back(callee_frame);
        break;
      }
      case TermKind::Return: {
        e.taken = true;
        if (stack.size() <= 1) {
            // The driver's dispatch loop is endless by construction; a
            // Return terminator reaching it is a generator bug.
            rt::raise(rt::Error(rt::ErrorKind::Workload,
                                "the driver function returned")
                          .with("function", f.fn)
                          .with("block", f.blk)
                          .with("call depth", stack.size()));
        }
        std::uint32_t resume_blk = f.retBlk;
        stack.pop_back();
        Frame &caller = stack.back();
        caller.blk = resume_blk;
        caller.instr = 0;
        const Function &cf = program.functions[caller.fn];
        e.target = cf.blocks[resume_blk].start;
        e.nextPc = e.target;
        break;
      }
      case TermKind::FallThrough:
        break; // handled above
    }
    return e;
}

} // namespace dcfb::workload
