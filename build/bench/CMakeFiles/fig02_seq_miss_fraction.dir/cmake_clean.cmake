file(REMOVE_RECURSE
  "CMakeFiles/fig02_seq_miss_fraction.dir/fig02_seq_miss_fraction.cpp.o"
  "CMakeFiles/fig02_seq_miss_fraction.dir/fig02_seq_miss_fraction.cpp.o.d"
  "fig02_seq_miss_fraction"
  "fig02_seq_miss_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_seq_miss_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
