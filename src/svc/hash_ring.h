/**
 * @file
 * Consistent-hash ring: the coordinator's shard map from result-cache
 * fingerprint keys to worker daemons (DESIGN.md section 15).
 *
 * Each worker contributes `vnodes` points at fnv1a64(name + "#" + i)
 * on a 64-bit ring; a key is owned by the first point clockwise from
 * fnv1a64(key), wrapping at the top.  Properties the fleet depends on
 * (all pinned by tests/test_fleet.cpp):
 *
 *  - Determinism: placement is a pure function of the member names —
 *    every coordinator (and every restart) computes the same map, so
 *    a repeat cell is routed to the worker whose ResultCache already
 *    holds its result (the federated cache hit).
 *  - Uniformity: with the default 64 vnodes, 1k keys over 3 workers
 *    land within a reasonable factor of an even split.
 *  - Minimal remapping: removing a worker moves only the keys it
 *    owned (its arcs fall to the next point clockwise); keys owned by
 *    survivors never move, so a rebalance after a worker death
 *    re-runs only the dead worker's shard.
 */

#ifndef DCFB_SVC_HASH_RING_H
#define DCFB_SVC_HASH_RING_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dcfb::svc {

class HashRing
{
  public:
    /** Virtual nodes per member; more points = smoother split. */
    static constexpr unsigned kDefaultVnodes = 64;

    explicit HashRing(unsigned vnodes = kDefaultVnodes)
        : vnodesPerNode(vnodes ? vnodes : 1)
    {
    }

    /** Add member @p name (idempotent). */
    void add(const std::string &name);

    /** Remove member @p name; its arcs fall to the survivors. */
    void remove(const std::string &name);

    bool contains(const std::string &name) const;
    std::size_t size() const { return members.size(); }
    bool empty() const { return members.empty(); }

    /** Members in insertion-independent (sorted) order. */
    std::vector<std::string> nodes() const;

    /** Owner of @p key; empty string when the ring is empty. */
    const std::string &owner(const std::string &key) const;

  private:
    unsigned vnodesPerNode;
    std::map<std::uint64_t, std::string> ring; //!< point -> member
    std::map<std::string, bool> members;
    std::string none; //!< returned for an empty ring
};

} // namespace dcfb::svc

#endif // DCFB_SVC_HASH_RING_H
