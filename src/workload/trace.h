/**
 * @file
 * Trace walker: the retired-instruction stream of a synthetic program.
 *
 * Plays the role of the Flexus functional simulator in the paper's setup:
 * it produces the committed (correct-path) instruction stream that drives
 * the timing model.  Wrong-path instructions are *not* produced here —
 * the fetch unit reconstructs them from the program image when a BTB miss
 * or misprediction sends it down the wrong path.
 */

#ifndef DCFB_WORKLOAD_TRACE_H
#define DCFB_WORKLOAD_TRACE_H

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "isa/encoding.h"
#include "workload/cfg.h"

namespace dcfb::workload {

/** One retired instruction. */
struct TraceEntry
{
    Addr pc = 0;
    std::uint8_t len = 0;
    isa::InstrKind kind = isa::InstrKind::Alu;
    bool taken = false;     //!< branch outcome (unconditional => true)
    Addr target = kInvalidAddr; //!< destination when taken
    Addr nextPc = 0;        //!< PC of the next retired instruction
    Addr dataAddr = kInvalidAddr; //!< loads/stores only

    bool isBranch() const { return isa::isBranch(kind); }
};

/**
 * Deterministic walker over a Program's control-flow graph.
 */
class TraceWalker
{
  public:
    /**
     * @param program_ the built program (must outlive the walker)
     * @param seed     runtime-randomness seed (branch outcomes, dispatch)
     */
    TraceWalker(const Program &program_, std::uint64_t seed);

    /** Produce the next retired instruction. The stream is endless. */
    TraceEntry next();

    /** Retired-instruction count so far. */
    std::uint64_t retired() const { return count; }

  private:
    struct Frame
    {
        std::uint32_t fn = 0;
        std::uint32_t blk = 0;
        std::uint32_t instr = 0;
        std::uint32_t retBlk = 0; //!< caller block to resume after return
        /** Remaining trip counts of this invocation's loops (keyed by
         *  back-edge branch PC).  Loops run a bounded number of trips
         *  and exit - unbounded geometric retries would trap the walk
         *  in tiny regions for arbitrarily long stretches. */
        std::map<Addr, std::uint32_t> loopTrips;
    };

    /** Generate a load/store effective address. */
    Addr dataAddress(std::uint32_t fn);

    const Program &program;
    Rng rng;
    std::vector<Frame> stack;
    std::uint64_t count = 0;
    /** Server request batching: the dispatch loop tends to invoke the
     *  same handler several times in a row (phases), which also makes
     *  the indirect-call target realistically predictable. */
    std::uint32_t stickyCallee = 0;
    std::uint32_t stickyLeft = 0;
};

} // namespace dcfb::workload

#endif // DCFB_WORKLOAD_TRACE_H
