file(REMOVE_RECURSE
  "CMakeFiles/tab02_storage.dir/tab02_storage.cpp.o"
  "CMakeFiles/tab02_storage.dir/tab02_storage.cpp.o.d"
  "tab02_storage"
  "tab02_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
