#include "sim/experiment.h"

#include <cmath>
#include <cstdio>

#include "rt/error.h"

namespace dcfb::sim {

ExperimentGrid::ExperimentGrid(std::vector<Preset> presets_,
                               RunWindows windows_, ConfigHook hook_,
                               bool vl)
    : presets(std::move(presets_)), windows(windows_),
      hook(std::move(hook_)), variableLength(vl)
{
}

void
ExperimentGrid::run()
{
    run(workload::serverWorkloadNames());
}

void
ExperimentGrid::run(const std::vector<std::string> &workload_names)
{
    names = workload_names;
    for (const auto &name : names) {
        auto profile = workload::serverProfile(name, variableLength);
        for (Preset preset : presets) {
            SystemConfig cfg = makeConfig(profile, preset);
            if (hook)
                hook(cfg);
            results.emplace(std::make_pair(name, preset),
                            simulate(cfg, windows));
            std::fprintf(stderr, "  [grid] %s / %s done\n", name.c_str(),
                         presetName(preset).c_str());
        }
    }
}

const RunResult *
ExperimentGrid::tryAt(const std::string &workload_name, Preset preset) const
{
    auto it = results.find(std::make_pair(workload_name, preset));
    return it == results.end() ? nullptr : &it->second;
}

const RunResult &
ExperimentGrid::at(const std::string &workload_name, Preset preset) const
{
    if (const RunResult *res = tryAt(workload_name, preset))
        return *res;
    std::string available;
    for (const auto &kv : results) {
        if (!available.empty())
            available += ", ";
        available += kv.first.first + "/" + presetName(kv.first.second);
    }
    rt::raise(rt::Error(rt::ErrorKind::Result, "no result in the grid")
                  .with("requested",
                        workload_name + "/" + presetName(preset))
                  .with("available",
                        available.empty() ? "(none run)" : available));
}

double
ExperimentGrid::mean(
    Preset preset,
    const std::function<double(const RunResult &)> &metric) const
{
    if (names.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &name : names)
        sum += metric(at(name, preset));
    return sum / static_cast<double>(names.size());
}

double
ExperimentGrid::gmeanSpeedup(Preset design, Preset baseline) const
{
    if (names.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const auto &name : names) {
        double s = speedup(at(name, design), at(name, baseline));
        log_sum += std::log(s > 0 ? s : 1e-9);
    }
    return std::exp(log_sum / static_cast<double>(names.size()));
}

} // namespace dcfb::sim
