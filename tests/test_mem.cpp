/**
 * @file
 * Tests for the memory substrate: generic cache (incl. LRU properties),
 * prefetch buffer, main memory bandwidth model, LLC round trips, DV-LLC
 * holder-mode invariants, and L1i demand/prefetch/MSHR behaviour.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/cache.h"
#include "mem/l1d.h"
#include "mem/l1i.h"
#include "mem/llc.h"
#include "mem/memory.h"
#include "mem/prefetch_buffer.h"
#include "noc/mesh.h"

namespace dcfb::mem {
namespace {

struct NoMeta
{};

TEST(SetAssocCache, HitAfterInsert)
{
    SetAssocCache<NoMeta> c(16, 2);
    EXPECT_FALSE(c.contains(0x1000));
    c.insert(0x1000, {});
    EXPECT_TRUE(c.contains(0x1000));
    EXPECT_TRUE(c.contains(0x103f)); // same block
    EXPECT_FALSE(c.contains(0x1040));
}

TEST(SetAssocCache, LruEviction)
{
    SetAssocCache<NoMeta> c(1, 2); // one set, two ways
    c.insert(0x0000, {});
    c.insert(0x0040, {});
    c.lookup(0x0000); // refresh 0x0000
    auto ev = c.insert(0x0080, {});
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.blockAddr, 0x0040u); // LRU victim
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_TRUE(c.contains(0x0080));
}

TEST(SetAssocCache, WayLimitRestrictsCapacity)
{
    SetAssocCache<NoMeta> c(1, 4);
    c.insert(0x0000, {}, 2);
    c.insert(0x0040, {}, 2);
    auto ev = c.insert(0x0080, {}, 2);
    EXPECT_TRUE(ev.valid); // only 2 ways usable
    EXPECT_EQ(c.occupancy(), 2u);
}

TEST(SetAssocCache, InvalidateRemoves)
{
    SetAssocCache<NoMeta> c(4, 2);
    c.insert(0x2000, {});
    c.invalidate(0x2000);
    EXPECT_FALSE(c.contains(0x2000));
}

TEST(SetAssocCache, CapacityBytes)
{
    auto c = SetAssocCache<NoMeta>::fromBytes(32 * 1024, 8);
    EXPECT_EQ(c.capacityBytes(), 32u * 1024);
    EXPECT_EQ(c.sets(), 64u);
    EXPECT_EQ(c.ways(), 8u);
}

/** Property: occupancy never exceeds sets*ways under random traffic. */
class CacheProperty : public ::testing::TestWithParam<unsigned>
{};

TEST_P(CacheProperty, OccupancyBounded)
{
    unsigned assoc = GetParam();
    SetAssocCache<NoMeta> c(8, assoc);
    Rng rng(assoc * 1000 + 1);
    for (int i = 0; i < 5000; ++i) {
        Addr a = rng.below(4096) * kBlockBytes;
        if (rng.chance(0.5))
            c.insert(a, {});
        else
            c.lookup(a);
        ASSERT_LE(c.occupancy(), std::size_t{8} * assoc);
    }
    // Hits after inserts must be found.
    c.insert(0x7000, {});
    EXPECT_TRUE(c.contains(0x7000));
}

INSTANTIATE_TEST_SUITE_P(Assocs, CacheProperty,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(PrefetchBuffer, InsertExtract)
{
    PrefetchBuffer b(2);
    b.insert(0x1000);
    EXPECT_TRUE(b.contains(0x1000));
    EXPECT_TRUE(b.extract(0x1000));
    EXPECT_FALSE(b.contains(0x1000));
    EXPECT_FALSE(b.extract(0x1000));
}

TEST(PrefetchBuffer, LruEvictionWhenFull)
{
    PrefetchBuffer b(2);
    b.insert(0x1000);
    b.insert(0x2000);
    b.insert(0x3000); // evicts 0x1000
    EXPECT_FALSE(b.contains(0x1000));
    EXPECT_TRUE(b.contains(0x2000));
    EXPECT_TRUE(b.contains(0x3000));
    EXPECT_EQ(b.size(), 2u);
}

TEST(PrefetchBuffer, ReinsertRefreshes)
{
    PrefetchBuffer b(2);
    b.insert(0x1000);
    b.insert(0x2000);
    b.insert(0x1000); // refresh
    b.insert(0x3000); // evicts 0x2000 (LRU)
    EXPECT_TRUE(b.contains(0x1000));
    EXPECT_FALSE(b.contains(0x2000));
}

TEST(MemoryModel, FixedLatencyWhenIdle)
{
    MemoryModel mem(MemoryConfig{});
    Cycle r = mem.access(0x1000, 100);
    EXPECT_EQ(r, 100u + 120);
}

TEST(MemoryModel, ChannelQueueing)
{
    MemoryConfig cfg;
    MemoryModel mem(cfg);
    // Two back-to-back accesses to the same channel queue up.
    Addr a = 0x0000;
    Addr b = a + Addr{cfg.channels} * kBlockBytes; // same channel
    Cycle r1 = mem.access(a, 100);
    Cycle r2 = mem.access(b, 100);
    EXPECT_EQ(r1, 220u);
    EXPECT_EQ(r2, 220u + cfg.channelBusyPerBlock);
}

TEST(MemoryModel, DistinctChannelsDontQueue)
{
    MemoryConfig cfg;
    MemoryModel mem(cfg);
    Cycle r1 = mem.access(0, 100);
    Cycle r2 = mem.access(kBlockBytes, 100); // next channel
    EXPECT_EQ(r1, r2);
}

TEST(MeshModel, ZeroLoadLatency)
{
    noc::MeshConfig cfg;
    cfg.bgUtilization = 0.0;
    noc::MeshModel mesh(cfg);
    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 3), 3u);
    EXPECT_EQ(mesh.hops(0, 15), 6u);
    EXPECT_EQ(mesh.zeroLoadLatency(0, 0), 2u);
    EXPECT_EQ(mesh.zeroLoadLatency(0, 5), 2u + 2 * 3);
    // traverse with no contention matches the zero-load latency for
    // single-flit packets.
    EXPECT_EQ(mesh.traverse(0, 5, 1000, 1), 1000 + mesh.zeroLoadLatency(0, 5));
}

TEST(MeshModel, SelfContentionQueues)
{
    noc::MeshConfig cfg;
    cfg.bgUtilization = 0.0;
    noc::MeshModel mesh(cfg);
    Cycle first = mesh.traverse(0, 1, 100, 5);
    Cycle second = mesh.traverse(0, 1, 100, 5);
    EXPECT_GT(second, first); // the second packet waits for the link
}

TEST(MeshModel, BackgroundLoadSlowsTraffic)
{
    noc::MeshConfig quiet;
    quiet.bgUtilization = 0.0;
    noc::MeshConfig busy;
    busy.bgUtilization = 0.5;
    noc::MeshModel a(quiet), b(busy);
    // Average over many packets on fresh links.
    Cycle qa = 0, qb = 0;
    for (int i = 0; i < 200; ++i) {
        qa += a.traverse(0, 15, i * 1000, 1) - i * 1000;
        qb += b.traverse(0, 15, i * 1000, 1) - i * 1000;
    }
    EXPECT_GT(qb, qa);
}

class LlcTest : public ::testing::Test
{
  public:
    LlcTest()
        : mesh(makeMeshCfg()), memory(MemoryConfig{}),
          llc(makeLlcCfg(), mesh, memory, 0)
    {}

    static noc::MeshConfig
    makeMeshCfg()
    {
        noc::MeshConfig c;
        c.bgUtilization = 0.0;
        return c;
    }

    static LlcConfig
    makeLlcCfg()
    {
        LlcConfig c;
        c.capacityBytes = 1 << 20; // 1 MB for faster tests
        return c;
    }

    noc::MeshModel mesh;
    MemoryModel memory;
    Llc llc;
};

TEST_F(LlcTest, MissThenHit)
{
    auto first = llc.access(0x40000, 100, true);
    EXPECT_FALSE(first.hit);
    auto second = llc.access(0x40000, first.ready, true);
    EXPECT_TRUE(second.hit);
    EXPECT_LT(second.ready - first.ready, first.ready - 100);
    EXPECT_EQ(llc.stats().get("llc_misses"), 1u);
    EXPECT_EQ(llc.stats().get("llc_hits"), 1u);
}

TEST_F(LlcTest, HitLatencyIncludesNocAndAccess)
{
    llc.access(0x40000, 0, true);
    auto res = llc.access(0x40000, 10000, true);
    ASSERT_TRUE(res.hit);
    // Round trip: >= 2 * zero-load local latency + 18.
    EXPECT_GE(res.ready - 10000, 18u);
}

TEST_F(LlcTest, InstructionVsDataStats)
{
    llc.access(0x40000, 0, true);
    llc.access(0x80000, 0, false);
    EXPECT_EQ(llc.stats().get("llc_instr_accesses"), 1u);
    EXPECT_EQ(llc.stats().get("llc_data_accesses"), 1u);
}

class DvLlcTest : public ::testing::Test
{
  protected:
    DvLlcTest()
        : mesh(LlcTest::makeMeshCfg()), memory(MemoryConfig{}),
          llc(makeCfg(), mesh, memory, 0)
    {}

    static LlcConfig
    makeCfg()
    {
        LlcConfig c;
        c.capacityBytes = 64 * 1024; // 64 sets at 16 ways: tiny for tests
        c.dvllc = true;
        c.bfSlotsPerSet = 2;
        c.branchesPerBf = 4;
        return c;
    }

    /** Distinct blocks mapping to set 0 of the 64-set array. */
    Addr
    setZeroBlock(unsigned i) const
    {
        return Addr{i} * 64 * kBlockBytes;
    }

    noc::MeshModel mesh;
    MemoryModel memory;
    Llc llc;
};

TEST_F(DvLlcTest, HolderActivatesWithInstructionBlock)
{
    EXPECT_EQ(llc.bfHolderSets(), 0u);
    llc.access(setZeroBlock(1), 0, false); // data only: no holder
    EXPECT_EQ(llc.bfHolderSets(), 0u);
    llc.access(setZeroBlock(2), 0, true); // instruction: holder on
    EXPECT_EQ(llc.bfHolderSets(), 1u);
}

TEST_F(DvLlcTest, HolderDeactivatesWhenInstructionsLeave)
{
    llc.access(setZeroBlock(0), 0, true);
    ASSERT_EQ(llc.bfHolderSets(), 1u);
    // Flood the set with data blocks until the instruction block is
    // evicted; holder mode must turn off.
    for (unsigned i = 1; i < 40; ++i)
        llc.access(setZeroBlock(i), 0, false);
    EXPECT_FALSE(llc.contains(setZeroBlock(0)));
    EXPECT_EQ(llc.bfHolderSets(), 0u);
}

TEST_F(DvLlcTest, FootprintRecordAndFetch)
{
    Addr block = setZeroBlock(3);
    llc.access(block, 0, true);
    llc.recordBranchOffset(block, 12);
    llc.recordBranchOffset(block, 40);
    llc.recordBranchOffset(block, 12); // duplicate ignored
    const BranchFootprint *bf = llc.findFootprint(block);
    ASSERT_NE(bf, nullptr);
    EXPECT_EQ(bf->offsets.size(), 2u);

    auto res = llc.access(block, 1000, true, /*want_bf=*/true);
    EXPECT_TRUE(res.bfValid);
    EXPECT_EQ(res.bf.offsets.size(), 2u);
}

TEST_F(DvLlcTest, BfOverflowCountsUncovered)
{
    Addr block = setZeroBlock(4);
    llc.access(block, 0, true);
    for (std::uint8_t off = 0; off < 6; ++off)
        llc.recordBranchOffset(block, static_cast<std::uint8_t>(off * 5));
    const BranchFootprint *bf = llc.findFootprint(block);
    ASSERT_NE(bf, nullptr);
    EXPECT_EQ(bf->offsets.size(), 4u); // branchesPerBf
    EXPECT_EQ(llc.stats().get("bf_branches_uncovered"), 2u);
}

TEST_F(DvLlcTest, BfSlotCapacityPerSet)
{
    // Three instruction blocks in a set with 2 BF slots: one BF must be
    // replaced and later re-fetch is uncovered.
    Addr b1 = setZeroBlock(1), b2 = setZeroBlock(2), b3 = setZeroBlock(3);
    for (Addr b : {b1, b2, b3}) {
        llc.access(b, 0, true);
        llc.recordBranchOffset(b, 8);
    }
    int covered = 0;
    for (Addr b : {b1, b2, b3})
        covered += llc.findFootprint(b) != nullptr;
    EXPECT_EQ(covered, 2);
}

TEST_F(DvLlcTest, EffectiveCapacityShrinksByOneWay)
{
    // With holder mode on, only 15 ways hold blocks in that set.
    for (unsigned i = 0; i < 16; ++i)
        llc.access(setZeroBlock(i), 0, true);
    unsigned resident = 0;
    for (unsigned i = 0; i < 16; ++i)
        resident += llc.contains(setZeroBlock(i));
    EXPECT_EQ(resident, 15u);
}

class L1iTest : public ::testing::Test
{
  protected:
    L1iTest()
        : mesh(LlcTest::makeMeshCfg()), memory(MemoryConfig{}),
          llc(LlcTest::makeLlcCfg(), mesh, memory, 0),
          l1i(L1iConfig{}, llc)
    {}

    /** Run ticks until @p cycle. */
    void
    runTo(Cycle cycle)
    {
        l1i.tick(cycle);
    }

    noc::MeshModel mesh;
    MemoryModel memory;
    Llc llc;
    L1iCache l1i;
};

TEST_F(L1iTest, DemandMissThenFillThenHit)
{
    auto res = l1i.demandAccess(0x40000, 100);
    EXPECT_FALSE(res.hit);
    EXPECT_GT(res.ready, 100u);
    runTo(res.ready);
    auto res2 = l1i.demandAccess(0x40000, res.ready + 1);
    EXPECT_TRUE(res2.hit);
    EXPECT_EQ(l1i.stats().get("l1i_misses"), 1u);
    EXPECT_EQ(l1i.stats().get("l1i_hits"), 1u);
}

TEST_F(L1iTest, SequentialMissClassification)
{
    auto r1 = l1i.demandAccess(0x40000, 0);
    runTo(r1.ready);
    auto r2 = l1i.demandAccess(0x40040, r1.ready); // next block: sequential
    runTo(r2.ready);
    l1i.demandAccess(0x50000, r2.ready); // far away: discontinuity
    EXPECT_EQ(l1i.stats().get("l1i_seq_misses"), 1u);
    EXPECT_EQ(l1i.stats().get("l1i_disc_misses"), 2u);
}

TEST_F(L1iTest, PrefetchCoversFullLatency)
{
    auto out = l1i.prefetch(0x40000, 100);
    EXPECT_EQ(out, L1iCache::PfOutcome::Issued);
    runTo(100000);
    auto res = l1i.demandAccess(0x40000, 100000);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(l1i.stats().get("pf_useful"), 1u);
    EXPECT_EQ(l1i.stats().get("cmal_covered_cycles"),
              l1i.stats().get("cmal_full_cycles"));
    EXPECT_GT(l1i.stats().get("cmal_full_cycles"), 0u);
}

TEST_F(L1iTest, LatePrefetchPartiallyCovers)
{
    l1i.prefetch(0x40000, 100);
    auto res = l1i.demandAccess(0x40000, 110); // still in flight
    EXPECT_TRUE(res.hitInFlight);
    EXPECT_EQ(l1i.stats().get("pf_late"), 1u);
    EXPECT_EQ(l1i.stats().get("cmal_covered_cycles"), 10u);
    EXPECT_GT(l1i.stats().get("cmal_full_cycles"), 10u);
}

TEST_F(L1iTest, UselessPrefetchCountedOnEviction)
{
    // Fill a whole set with prefetches, then push them out with demand
    // fills to the same set.
    L1iConfig cfg;
    unsigned sets = static_cast<unsigned>(cfg.capacityBytes / kBlockBytes /
                                          cfg.assoc);
    Cycle t = 0;
    for (unsigned i = 0; i < cfg.assoc; ++i) {
        l1i.prefetch(Addr{i} * sets * kBlockBytes, t);
        t += 1000;
        runTo(t);
    }
    for (unsigned i = 0; i < cfg.assoc; ++i) {
        auto r = l1i.demandAccess(
            Addr{100 + i} * sets * kBlockBytes, t);
        t = r.ready + 1000;
        runTo(t);
    }
    EXPECT_GT(l1i.stats().get("pf_useless"), 0u);
    EXPECT_EQ(l1i.stats().get("pf_useful"), 0u);
}

TEST_F(L1iTest, PrefetchOutcomes)
{
    EXPECT_EQ(l1i.prefetch(0x40000, 0), L1iCache::PfOutcome::Issued);
    EXPECT_EQ(l1i.prefetch(0x40000, 1), L1iCache::PfOutcome::InFlight);
    runTo(100000);
    EXPECT_EQ(l1i.prefetch(0x40000, 100000), L1iCache::PfOutcome::InCache);
}

TEST_F(L1iTest, MshrLimitDropsPrefetches)
{
    L1iConfig cfg; // 32 MSHRs
    for (unsigned i = 0; i < cfg.mshrs; ++i) {
        EXPECT_EQ(l1i.prefetch(0x40000 + Addr{i} * kBlockBytes, 0),
                  L1iCache::PfOutcome::Issued);
    }
    EXPECT_EQ(l1i.prefetch(0x80000, 0), L1iCache::PfOutcome::NoMshr);
    EXPECT_EQ(l1i.stats().get("pf_dropped_mshr"), 1u);
}

TEST_F(L1iTest, WrongPathDoesNotPolluteDemandStats)
{
    l1i.demandAccess(0x40000, 0, /*wrong_path=*/true);
    EXPECT_EQ(l1i.stats().get("l1i_accesses"), 0u);
    EXPECT_EQ(l1i.stats().get("l1i_misses"), 0u);
    EXPECT_EQ(l1i.stats().get("l1i_wp_accesses"), 1u);
    EXPECT_EQ(l1i.stats().get("l1i_wp_misses"), 1u);
    // But the fill really happens (pollution is modeled).
    runTo(100000);
    EXPECT_TRUE(l1i.probe(0x40000));
}

TEST_F(L1iTest, ListenerCallbacks)
{
    struct Recorder : L1iListener
    {
        int fills = 0, misses = 0, uses = 0;
        void onFill(Addr, bool, const BranchFootprint *) override
        {
            ++fills;
        }
        void onDemandMiss(Addr, bool) override { ++misses; }
        void onPrefetchUsed(Addr) override { ++uses; }
    } rec;
    l1i.setListener(&rec);
    l1i.prefetch(0x40000, 0);
    runTo(100000);
    l1i.demandAccess(0x40000, 100000);
    l1i.demandAccess(0x50000, 100001);
    EXPECT_EQ(rec.fills, 1);
    EXPECT_EQ(rec.misses, 1);
    EXPECT_EQ(rec.uses, 1);
}

TEST(L1iBufferMode, PrefetchGoesToBufferThenCache)
{
    noc::MeshConfig mc;
    mc.bgUtilization = 0.0;
    noc::MeshModel mesh(mc);
    MemoryModel memory(MemoryConfig{});
    Llc llc(LlcTest::makeLlcCfg(), mesh, memory, 0);
    L1iConfig cfg;
    cfg.usePrefetchBuffer = true;
    L1iCache l1i(cfg, llc);

    l1i.prefetch(0x40000, 0);
    l1i.tick(100000);
    // The block is in the buffer, not (yet) in the cache array meta.
    EXPECT_TRUE(l1i.probe(0x40000));
    EXPECT_EQ(l1i.lineMeta(0x40000), nullptr);

    auto res = l1i.demandAccess(0x40000, 100000);
    EXPECT_TRUE(res.hit);
    EXPECT_TRUE(res.fromPrefetchBuffer);
    EXPECT_NE(l1i.lineMeta(0x40000), nullptr);
    EXPECT_EQ(l1i.stats().get("pf_useful"), 1u);
}

TEST(L1d, HitAfterMiss)
{
    noc::MeshConfig mc;
    mc.bgUtilization = 0.0;
    noc::MeshModel mesh(mc);
    MemoryModel memory(MemoryConfig{});
    Llc llc(LlcTest::makeLlcCfg(), mesh, memory, 0);
    L1dCache l1d(L1dConfig{}, llc);

    Cycle r1 = l1d.access(0x90000, 100, false);
    EXPECT_GT(r1, 200u); // went to memory
    Cycle r2 = l1d.access(0x90000, r1, false);
    EXPECT_EQ(r2, r1 + 4);
    EXPECT_EQ(l1d.stats().get("l1d_misses"), 1u);
    EXPECT_EQ(l1d.stats().get("l1d_hits"), 1u);
}

} // namespace
} // namespace dcfb::mem
