/**
 * @file
 * The seven server-workload profiles of Table IV.
 *
 * Each profile is a parameterization of the synthetic program generator
 * tuned so that the *motivation* characteristics the paper reports land
 * in the right bands (sequential-miss fraction 65-80 %, Fig. 2;
 * dominant-discontinuity-branch rate ~80 %, Fig. 7; Shotgun footprint
 * miss ratio 4-31 %, Fig. 1).  Knobs are then held fixed for every
 * evaluation experiment.  EXPERIMENTS.md records paper-vs-measured.
 */

#ifndef DCFB_WORKLOAD_PROFILES_H
#define DCFB_WORKLOAD_PROFILES_H

#include <string>
#include <vector>

#include "rt/error.h"
#include "workload/cfg.h"

namespace dcfb::workload {

/** Names follow the paper's figures. */
std::vector<std::string> serverWorkloadNames();

/**
 * Profile for @p name; an unknown name yields an rt::Error listing the
 * known profiles.
 * @param variable_length build the VL-ISA flavour of the workload
 */
rt::Expected<WorkloadProfile> tryServerProfile(const std::string &name,
                                               bool variable_length = false);

/** tryServerProfile() for legacy callers: raises rt::Exception. */
WorkloadProfile serverProfile(const std::string &name,
                              bool variable_length = false);

/** All seven profiles, paper order. */
std::vector<WorkloadProfile> allServerProfiles(bool variable_length = false);

} // namespace dcfb::workload

#endif // DCFB_WORKLOAD_PROFILES_H
