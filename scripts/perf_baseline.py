#!/usr/bin/env python3
"""Measure simulator-core throughput and gate it against a baseline.

Runs a bench binary (default: fig16_speedup, the full 7x5 grid) with
--profile --json and folds the per-cell timing records ("prof" section,
schema dcfb-prof-v1) into BENCH_perf.json:

  schema dcfb-perf-v1
    presets.<name>.cycles_per_sec   simulated cycles / simulation wall,
                                    aggregated over the preset's cells
    presets.<name>.wall_p50_s/p95_s per-cell simulation-wall percentiles
    total.cycles_per_sec            whole-grid throughput

With --baseline the new numbers are compared to a committed reference:
any preset whose cycles/sec drops more than --gate (default 15%) below
the baseline fails the run.  --advisory reports the comparison without
failing, which is what CI uses on pull requests (absolute throughput is
machine-sensitive; the enforced gate runs on main's fixed runner
class).  Regenerate the committed baseline on an intentional perf
change with:

  scripts/perf_baseline.py --out tests/perf/BENCH_perf_baseline.json
"""

import argparse
import json
import pathlib
import statistics
import subprocess
import sys
import tempfile

import machine_context

REPO = pathlib.Path(__file__).resolve().parent.parent


def percentile(values, p):
    if not values:
        return 0.0
    ordered = sorted(values)
    k = (len(ordered) - 1) * p
    lo, hi = int(k), min(int(k) + 1, len(ordered) - 1)
    frac = k - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def run_bench(binary, repeats):
    """Run the bench `repeats` times, return all prof cell records."""
    cells = []
    for i in range(repeats):
        with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
            cmd = [str(binary), "--jobs", "1", "--profile",
                   "--json", tmp.name]
            print(f"  [{i + 1}/{repeats}] $", " ".join(cmd))
            subprocess.run(cmd, check=True, cwd=REPO,
                           stdout=subprocess.DEVNULL)
            doc = json.load(open(tmp.name))
        prof = doc.get("prof")
        if not prof or prof.get("schema") != "dcfb-prof-v1":
            print("bench emitted no dcfb-prof-v1 section; "
                  "is --profile supported?", file=sys.stderr)
            sys.exit(1)
        cells.extend(prof["cells"])
    return cells


def summarize(cells, repeats, bench_name):
    by_preset = {}
    for c in cells:
        by_preset.setdefault(c["design"], []).append(c)
    presets = {}
    for name, group in sorted(by_preset.items()):
        walls = [c["sim_s"] for c in group]
        cycles = sum(c["cycles"] for c in group)
        sim_s = sum(walls)
        presets[name] = {
            "cells": len(group),
            "cycles": cycles,
            "sim_s": round(sim_s, 6),
            "cycles_per_sec": round(cycles / sim_s) if sim_s > 0 else 0,
            "wall_p50_s": round(percentile(walls, 0.50), 6),
            "wall_p95_s": round(percentile(walls, 0.95), 6),
        }
    total_cycles = sum(c["cycles"] for c in cells)
    total_sim = sum(c["sim_s"] for c in cells)
    return {
        "schema": "dcfb-perf-v1",
        "bench": bench_name,
        "repeats": repeats,
        # Where these numbers were measured: absolute throughput is
        # machine-sensitive, so the context travels with the document
        # and update_golden.py refuses cross-machine re-baselining.
        "meta": {"machine": machine_context.collect()},
        "presets": presets,
        "total": {
            "cells": len(cells),
            "cycles": total_cycles,
            "sim_s": round(total_sim, 6),
            "cycles_per_sec":
                round(total_cycles / total_sim) if total_sim > 0 else 0,
        },
    }


def compare(report, baseline, gate, advisory):
    """Return process exit code after printing the comparison."""
    failed = []
    recorded = baseline.get("meta", {}).get("machine")
    for m in machine_context.diff(recorded):
        print(f"  [machine-context mismatch] {m}")
    print(f"\nbaseline comparison (gate: -{gate * 100:.0f}%):")
    rows = list(report["presets"].items()) + [("TOTAL", report["total"])]
    base_rows = dict(baseline["presets"])
    base_rows["TOTAL"] = baseline["total"]
    for name, now in rows:
        base = base_rows.get(name)
        if base is None:
            print(f"  {name:16s} (not in baseline)")
            continue
        ratio = now["cycles_per_sec"] / base["cycles_per_sec"] \
            if base["cycles_per_sec"] else float("inf")
        verdict = "ok"
        if ratio < 1.0 - gate:
            verdict = "REGRESSION"
            failed.append(name)
        print(f"  {name:16s} {now['cycles_per_sec']:>12,} c/s "
              f"vs {base['cycles_per_sec']:>12,}  "
              f"({(ratio - 1.0) * 100:+6.1f}%)  {verdict}")
    if failed:
        msg = ", ".join(failed)
        if advisory:
            print(f"\nadvisory: throughput regressions in {msg} "
                  "(not failing: --advisory)")
            return 0
        print(f"\nFAIL: throughput regressed beyond the gate in {msg}")
        return 1
    print("\nall presets within the gate")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build/release")
    ap.add_argument("--bench", default="fig16_speedup",
                    help="bench binary to profile (default: fig16_speedup)")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--out", default="BENCH_perf.json")
    ap.add_argument("--baseline",
                    help="committed dcfb-perf-v1 file to gate against")
    ap.add_argument("--gate", type=float, default=0.15,
                    help="allowed fractional cycles/sec drop (default 0.15)")
    ap.add_argument("--advisory", action="store_true",
                    help="report regressions without failing")
    args = ap.parse_args()

    binary = REPO / args.build_dir / "bin" / args.bench
    if not binary.exists():
        print(f"no bench binary at {binary}; build first", file=sys.stderr)
        return 1

    cells = run_bench(binary, args.repeats)
    report = summarize(cells, args.repeats, args.bench)

    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n[perf report written to {out}]")
    for name, p in report["presets"].items():
        print(f"  {name:16s} {p['cycles_per_sec']:>12,} cycles/sec "
              f"p50={p['wall_p50_s'] * 1e3:7.1f}ms "
              f"p95={p['wall_p95_s'] * 1e3:7.1f}ms")
    t = report["total"]
    print(f"  {'TOTAL':16s} {t['cycles_per_sec']:>12,} cycles/sec")

    if args.baseline:
        baseline = json.load(open(args.baseline))
        if baseline.get("schema") != "dcfb-perf-v1":
            print(f"{args.baseline} is not a dcfb-perf-v1 document",
                  file=sys.stderr)
            return 1
        return compare(report, baseline, args.gate, args.advisory)
    return 0


if __name__ == "__main__":
    sys.exit(main())
