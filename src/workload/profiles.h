/**
 * @file
 * The seven server-workload profiles of Table IV.
 *
 * Each profile is a parameterization of the synthetic program generator
 * tuned so that the *motivation* characteristics the paper reports land
 * in the right bands (sequential-miss fraction 65-80 %, Fig. 2;
 * dominant-discontinuity-branch rate ~80 %, Fig. 7; Shotgun footprint
 * miss ratio 4-31 %, Fig. 1).  Knobs are then held fixed for every
 * evaluation experiment.  EXPERIMENTS.md records paper-vs-measured.
 */

#ifndef DCFB_WORKLOAD_PROFILES_H
#define DCFB_WORKLOAD_PROFILES_H

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rt/error.h"
#include "workload/cfg.h"

namespace dcfb::workload {

/** Names follow the paper's figures. */
std::vector<std::string> serverWorkloadNames();

/**
 * Profile for @p name; an unknown name yields an rt::Error listing the
 * known profiles.
 * @param variable_length build the VL-ISA flavour of the workload
 */
rt::Expected<WorkloadProfile> tryServerProfile(const std::string &name,
                                               bool variable_length = false);

/** tryServerProfile() for legacy callers: raises rt::Exception. */
WorkloadProfile serverProfile(const std::string &name,
                              bool variable_length = false);

/** All seven profiles, paper order. */
std::vector<WorkloadProfile> allServerProfiles(bool variable_length = false);

/**
 * Canonical key covering every knob that shapes the built program.
 * Keying on the full parameterization (not just the name) keeps custom
 * or hook-tweaked profiles from aliasing a stock entry.  Used by both
 * the ImageCache and the svc::ResultCache fingerprint.
 */
std::string profileKey(const WorkloadProfile &profile);

/** A built program shared immutably across experiment cells. */
using ProgramRef = std::shared_ptr<const Program>;

/**
 * Cache of built workload images.
 *
 * Building a profile's program (CFG layout + code-image emission +
 * data-footprint plan) dominates experiment setup, and an N-way
 * parallel grid would otherwise pay it once per (workload x design)
 * cell.  The cache builds each profile once and hands every caller the
 * same `shared_ptr<const Program>`; a built Program is never mutated
 * (the trace walker, pre-decoders and warmup only read it), so sharing
 * one image across concurrently-running cells is safe.
 *
 * Keyed by the full profile parameterization -- two profiles that share
 * a name but differ in any knob (e.g. the fixed-length and VL-ISA
 * flavours of a workload) get distinct entries, while repeated requests
 * for the same flavour hit.  Thread-safe; builds are serialized, which
 * is fine because grids resolve their images up front on one thread.
 */
class ImageCache
{
  public:
    /** The shared Program for @p profile, building it on first use. */
    ProgramRef get(const WorkloadProfile &profile);

    /** get() for the named server profile (tryServerProfile errors
     *  propagate as rt::Exception). */
    ProgramRef server(const std::string &name, bool variable_length = false);

    /** Programs built (cache misses) so far. */
    std::size_t built() const;

    /** Requests served from the cache (hits) so far. */
    std::size_t hits() const;

    /** Drop every entry (images survive while callers hold refs). */
    void clear();

    /** The process-wide cache every experiment runner shares. */
    static ImageCache &global();

  private:
    mutable std::mutex mutex;
    std::map<std::string, ProgramRef> cache; //!< keyed by profile knobs
    std::size_t misses = 0;
    std::size_t lookups = 0;
};

} // namespace dcfb::workload

#endif // DCFB_WORKLOAD_PROFILES_H
