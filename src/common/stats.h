/**
 * @file
 * Lightweight named-counter statistics registry.
 *
 * Components register counters by name; the experiment harness dumps them
 * or computes derived metrics (FSCR, CMAL, coverage).  Counters are plain
 * uint64 accumulators; ratios are computed at reporting time.
 */

#ifndef DCFB_COMMON_STATS_H
#define DCFB_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>

namespace dcfb {

/**
 * A bag of named 64-bit counters with insertion-ordered dump support.
 */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero if new). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters[name] += delta;
    }

    /** Read counter @p name; absent counters read as zero. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    /** Ratio of two counters; 0 when the denominator is zero. */
    double
    ratio(const std::string &num, const std::string &den) const
    {
        std::uint64_t d = get(den);
        return d == 0 ? 0.0 : static_cast<double>(get(num)) /
            static_cast<double>(d);
    }

    /** Reset every counter to zero (used at the warmup/measure boundary). */
    void reset();

    /** Render "name = value" lines for debugging dumps. */
    std::string dump() const;

    /** All counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters;
    }

  private:
    std::map<std::string, std::uint64_t> counters;
};

} // namespace dcfb

#endif // DCFB_COMMON_STATS_H
