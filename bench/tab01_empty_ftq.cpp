/**
 * @file
 * Table I: fraction of cycles the core is stalled on an empty FTQ under
 * Shotgun.  Paper: 1.64 % (OLTP DB B) to 18.87 % (OLTP DB A).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Table I - empty-FTQ stall cycles in Shotgun",
                  "1.6-18.9% of cycles; OLTP (DB A) worst");

    sim::Table table({"workload", "empty-FTQ stall fraction",
                      "BPU stall cycles"});
    for (const auto &name : bench::allWorkloads()) {
        auto cfg = sim::makeConfig(workload::serverProfile(name),
                                   sim::Preset::Shotgun);
        auto res = sim::simulate(cfg, bench::windows());
        double frac =
            static_cast<double>(res.stat("fe.fe_empty_ftq_stall_cycles")) /
            static_cast<double>(res.cycles);
        table.addRow({name, sim::Table::pct(frac),
                      std::to_string(res.stat("fe.bpu_stall_cycles"))});
    }
    h.report(table, "Empty-FTQ stall cycles in Shotgun");
    return 0;
}
