/**
 * @file
 * Invariant checker: a registration API for structural conservation
 * checks swept periodically by the simulation loop.
 *
 * Components expose their invariants by registering named check
 * callbacks (every L1i miss eventually resolves, MSHR alloc/free
 * balance, FTQ ordering, SeqTable/prefetch-flag consistency, queue
 * occupancy bounds, ...).  A callback returns std::nullopt when the
 * invariant holds and a violation detail string otherwise; it must be
 * read-only -- sweeps run inside measured windows and must not perturb
 * statistics or machine state.
 *
 * Cost model:
 *  - compiled out (DCFB_RT_INVARIANTS=0): add()/sweep() collapse to
 *    empty inlines, zero code and data;
 *  - disabled at runtime (setEnabled(false)): sweep() is one branch;
 *  - enabled: checks run every sweepInterval cycles (IntegrityConfig),
 *    off the per-cycle hot path.
 */

#ifndef DCFB_RT_INVARIANTS_H
#define DCFB_RT_INVARIANTS_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "rt/error.h"

#ifndef DCFB_RT_INVARIANTS
#define DCFB_RT_INVARIANTS 1
#endif

namespace dcfb::rt {

/** Integrity-layer knobs carried in SystemConfig. */
struct IntegrityConfig
{
    bool invariants = true;      //!< run registered invariant sweeps
    Cycle sweepInterval = 8192;  //!< cycles between sweeps
    bool watchdog = true;        //!< forward-progress watchdog
    Cycle watchdogWindow = 50000; //!< no-retire/no-fetch trip threshold
    /** Upper bound on how long one L1i miss may stay unresolved before
     *  the "every miss eventually resolves" invariant flags a leak.
     *  Must exceed the worst-case memory round trip plus any injected
     *  response delay. */
    Cycle missResolutionBound = 20000;
    /** Optional liveness callback invoked at the sweep cadence (and
     *  during functional warmup), independent of the invariants and
     *  watchdog switches.  The service layer hangs a worker-lease
     *  renewal here so a long-running but healthy simulation is never
     *  reclaimed; must be cheap and must not touch machine state.  Not
     *  part of any fingerprint/cache key. */
    std::function<void()> heartbeat;
};

/** One invariant violation found by a sweep. */
struct Violation
{
    std::string invariant; //!< registered name ("l1i.mshr_balance", ...)
    std::string detail;    //!< what was observed
};

/**
 * Named read-only checks, swept on demand.
 */
class InvariantRegistry
{
  public:
    /** Pass -> nullopt; violation -> detail string. Must be read-only. */
    using Check = std::function<std::optional<std::string>(Cycle now)>;

    /**
     * Activity gate: how many live entries the check would walk.  A
     * gated check is skipped entirely when its gate returns 0, so a
     * sweep over idle state (empty MSHR file, drained queues) costs one
     * size read per gated check instead of a full structure walk --
     * sweep cost is O(active entries), not O(capacity).  Gates must be
     * O(1) and read-only.
     */
    using Gate = std::function<std::size_t()>;

#if DCFB_RT_INVARIANTS
    /** Register invariant @p name, swept unconditionally. */
    void
    add(std::string name, Check check)
    {
        checks.push_back({std::move(name), nullptr, std::move(check)});
    }

    /** Register invariant @p name behind activity gate @p gate. */
    void
    add(std::string name, Gate gate, Check check)
    {
        checks.push_back(
            {std::move(name), std::move(gate), std::move(check)});
    }

    void setEnabled(bool on) { enabledFlag = on; }
    bool enabled() const { return enabledFlag; }
    std::size_t size() const { return checks.size(); }

    /** Checks actually executed across all sweeps (tests/telemetry). */
    std::uint64_t checksRun() const { return runCount; }
    /** Checks skipped by a zero activity gate across all sweeps. */
    std::uint64_t checksSkipped() const { return skipCount; }

    /** Run every check; empty result means all invariants hold.  One
     *  branch and an immediate return when disabled. */
    std::vector<Violation> sweep(Cycle now) const;

    /** sweep() folded into an Expected: an ErrorKind::Invariant error
     *  listing every violation, or success. */
    Expected<void> check(Cycle now) const;

  private:
    struct Entry
    {
        std::string name;
        Gate gate; //!< null: always run
        Check check;
    };
    std::vector<Entry> checks;
    bool enabledFlag = true;
    mutable std::uint64_t runCount = 0;
    mutable std::uint64_t skipCount = 0;
#else
    void add(std::string, Check) {}
    void add(std::string, Gate, Check) {}
    void setEnabled(bool) {}
    bool enabled() const { return false; }
    std::size_t size() const { return 0; }
    std::uint64_t checksRun() const { return 0; }
    std::uint64_t checksSkipped() const { return 0; }
    std::vector<Violation> sweep(Cycle) const { return {}; }
    Expected<void> check(Cycle) const { return {}; }
#endif
};

} // namespace dcfb::rt

#endif // DCFB_RT_INVARIANTS_H
