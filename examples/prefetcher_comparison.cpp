/**
 * @file
 * Example: compare every evaluated frontend design on one workload —
 * the paper's full cast (baseline, NXL family, SN4L ablations, classic
 * discontinuity, Confluence, Boomerang, Shotgun, perfect frontends).
 *
 * Usage: prefetcher_comparison [workload-name]
 */

#include <cstdio>
#include <string>

#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/profiles.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;

    std::string name = argc > 1 ? argv[1] : "OLTP (DB A)";
    auto profile = workload::serverProfile(name);
    sim::RunWindows windows{150000, 150000};

    auto base = sim::simulate(
        sim::makeConfig(profile, sim::Preset::Baseline), windows);

    sim::Table table({"design", "IPC", "speedup", "L1i miss cov.",
                      "pf accuracy", "FSCR"});
    const sim::Preset designs[] = {
        sim::Preset::Baseline,   sim::Preset::NL,
        sim::Preset::N4L,        sim::Preset::SN4L,
        sim::Preset::SN4LDis,    sim::Preset::SN4LDisBtb,
        sim::Preset::ClassicDis, sim::Preset::Confluence,
        sim::Preset::Boomerang,  sim::Preset::Shotgun,
        sim::Preset::PerfectL1i, sim::Preset::PerfectL1iBtb,
    };
    for (auto preset : designs) {
        auto res = preset == sim::Preset::Baseline
            ? base
            : sim::simulate(sim::makeConfig(profile, preset), windows);
        double acc = res.stat("l1i.pf_issued")
            ? res.ratio("l1i.pf_useful", "l1i.pf_issued")
            : 0.0;
        table.addRow({res.design, sim::Table::num(res.ipc()),
                      sim::Table::num(sim::speedup(res, base), 3),
                      sim::Table::pct(res.coverage(
                          base.stat("l1i.l1i_misses"))),
                      sim::Table::pct(acc),
                      sim::Table::pct(sim::fscr(res, base))});
    }
    table.print("All designs on " + name);
    return 0;
}
