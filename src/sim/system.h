/**
 * @file
 * System: one fully-wired simulated node (program + walker + memory
 * hierarchy + frontend + backend + the configured prefetcher/engine).
 */

#ifndef DCFB_SIM_SYSTEM_H
#define DCFB_SIM_SYSTEM_H

#include <memory>

#include "core/backend.h"
#include "frontend/btb.h"
#include "frontend/tage.h"
#include "isa/predecoder.h"
#include "mem/l1d.h"
#include "mem/l1i.h"
#include "mem/llc.h"
#include "mem/memory.h"
#include "noc/mesh.h"
#include "obs/json.h"
#include "obs/profiler.h"
#include "prefetch/prefetcher.h"
#include "sim/config.h"
#include "sim/decoupled.h"
#include "sim/fetch.h"
#include "workload/cfg.h"
#include "workload/trace.h"

namespace dcfb::sim {

/**
 * Owns and wires every component of one simulated node.
 */
class System
{
  public:
    explicit System(const SystemConfig &config);

    /** Advance the machine by one cycle. */
    void step();

    /** Current cycle. */
    Cycle now() const { return cycleCount; }

    /** Reset statistics at the warmup/measure boundary. */
    void resetStats();

    /** BF construction from the retired stream (VL-ISA mode). */
    void recordRetiredFootprints(const workload::TraceEntry &e);

    /**
     * Structured machine-state snapshot (schema "dcfb-snapshot-v1"):
     * queues, MSHRs, in-flight prefetches, progress counters.  Attached
     * to watchdog/invariant failures so a wedged run dies with evidence.
     */
    obs::JsonValue snapshot() const;

    SystemConfig cfg;
    /** The program under simulation.  Either the shared immutable image
     *  from cfg.program (experiment runners, one build per workload) or
     *  a privately-built one (standalone simulate() callers). */
    std::shared_ptr<const workload::Program> program;
    std::unique_ptr<workload::TraceWalker> walker;
    std::unique_ptr<isa::Predecoder> predecoder;

    std::unique_ptr<noc::MeshModel> mesh;
    std::unique_ptr<mem::MemoryModel> memory;
    std::unique_ptr<mem::Llc> llc;
    std::unique_ptr<mem::L1iCache> l1i;
    std::unique_ptr<mem::L1dCache> l1d;

    std::unique_ptr<frontend::Tage> tage;
    std::unique_ptr<frontend::Btb> btb;
    std::unique_ptr<core::Backend> backend;

    std::unique_ptr<prefetch::InstrPrefetcher> prefetcher;
    std::unique_ptr<FetchEngine> fetch;
    DecoupledFetchEngine *decoupled = nullptr; //!< non-null for BTB-directed

    StatSet simStats;

    rt::FaultInjector injector;     //!< active only under --inject
    rt::InvariantRegistry invariants;

    /** Per-phase cycle-loop attribution; only written while
     *  obs::Profiler::enabled() (the integrity slot is accumulated by
     *  the run loop in simulator.cpp). */
    obs::PhaseSeconds profPhases{};

  private:
    /** Wire the fault injector and register every component invariant. */
    void registerIntegrity();

    void dispatchStage();

    /** step() with per-phase wall attribution (profiling runs only). */
    void stepProfiled();

    Cycle cycleCount = 0;
    std::uint64_t instructionsRetired = 0;

    // Typed handles for the per-cycle dispatch accounting.
    obs::Counter cDispatchActive, cStallBackend, cStallIcache, cStallBtb,
        cStallEmptyFtq, cStallMispredict, cStallFrontend, cStallOther;

  public:
    std::uint64_t instructions() const { return backend->retired(); }
};

} // namespace dcfb::sim

#endif // DCFB_SIM_SYSTEM_H
