/**
 * @file
 * Report rendering for the bench harnesses: plain-text tables plus the
 * shared JSON forms (tables and RunResults) behind every bench's
 * `--json` mode and the BENCH_*.json regression tracking.
 *
 * Every bench prints the same rows/series the paper's figures report;
 * these helpers keep the formatting consistent and aligned, and the JSON
 * form carries exactly the same cells so text and JSON never diverge.
 */

#ifndef DCFB_SIM_REPORT_H
#define DCFB_SIM_REPORT_H

#include <string>
#include <vector>

#include "obs/json.h"
#include "sim/simulator.h"

namespace dcfb::sim {

/**
 * Column-aligned text table.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row (must match the header's column count). */
    void addRow(std::vector<std::string> row);

    /** Convenience: formatted numeric cells. */
    static std::string pct(double fraction, int decimals = 1);
    static std::string num(double value, int decimals = 2);

    /** Render with padded columns. */
    std::string render() const;

    /** Render and print to stdout with a title line. */
    void print(const std::string &title) const;

    /**
     * JSON form: {"title": ..., "columns": [...], "rows": [{col: cell}]}.
     * Cells stay the formatted strings the text table prints, so the
     * JSON report always matches the table byte for byte.
     */
    obs::JsonValue toJson(const std::string &title) const;

  private:
    std::vector<std::vector<std::string>> rows;
};

/** Full JSON form of a RunResult (counters + histograms). */
obs::JsonValue toJson(const RunResult &result);

/** Inverse of toJson(RunResult); nullopt when @p v lacks the schema. */
std::optional<RunResult> runResultFromJson(const obs::JsonValue &v);

} // namespace dcfb::sim

#endif // DCFB_SIM_REPORT_H
