/**
 * @file
 * Durable write-ahead job journal for the experiment service.
 *
 * The daemon's admission queue lives in memory; a SIGKILL (or power
 * loss) would silently discard every admitted-but-unfinished job.  The
 * journal closes that hole with the classic write-ahead discipline:
 * before `submit` is acknowledged, an **admit** record carrying the
 * job's content-addressed fingerprint key and its full submit spec is
 * appended (and, under the default fsync policy, flushed to disk);
 * when the job reaches a terminal state a matching **done** / **failed**
 * / **cancelled** record follows.  A restarted `dcfb-serve --journal
 * <dir>` replays admits without a terminal record: ones whose result
 * already sits in the ResultCache complete instantly, the rest are
 * re-enqueued.  Exactly-once *observable* results come from the
 * fingerprint: re-running a replayed job is idempotent because equal
 * fingerprints produce bit-identical RunResults and dedupe in the
 * cache.
 *
 * Format (`dcfb-journal-v1`): append-only NDJSON segments named
 * `journal-<NNNNNN>.ndjson`.  Every line is a compact JSON object whose
 * **last** member is `"crc"`, the FNV-1a hex of the record body with
 * the crc member removed — the decoder strips the suffix textually, so
 * validation never depends on re-serialization key order.  Line one of
 * each segment is a `header` record pinning the schema.  Crash
 * containment rules, checked at open():
 *
 *  - a final line without a trailing newline is a **torn tail** (the
 *    append raced the crash): it is truncated off the file and counted,
 *    losing at most that one record;
 *  - a complete line whose crc does not match is **corrupt**: skipped
 *    and counted, the scan continues (one bad sector loses one record,
 *    not the segment).
 *
 * Rotation bounds file growth: after `rotateEvery` appended records the
 * journal **compacts** — live (admit-without-terminal) records are
 * written to the next-numbered segment via temp file + rename + parent
 * directory fsync, then the old segments are unlinked.  Terminal
 * records for finished jobs are thereby garbage-collected.
 *
 * Fsync policy (`--journal-fsync`): `always` (default; every append is
 * flushed — survives power loss), `rotate` (flush only on segment
 * rotation — survives process SIGKILL, may lose recent records on power
 * loss), `never` (leave it to the page cache — testing only).
 *
 * The service fault plane (`--svc-inject truncate`) hooks append() to
 * tear writes short deliberately; see rt::SvcFaultInjector.
 */

#ifndef DCFB_SVC_JOURNAL_H
#define DCFB_SVC_JOURNAL_H

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "rt/error.h"
#include "rt/faults.h"

namespace dcfb::svc {

/** Journal record / segment schema version.  Bump on layout change. */
inline constexpr const char *kJournalSchema = "dcfb-journal-v1";

/** When appended records reach the platter (see file comment). */
enum class FsyncPolicy : std::uint8_t {
    Always, //!< fsync every append (default; power-loss safe)
    Rotate, //!< fsync only on segment rotation (kill-safe)
    Never,  //!< never fsync (testing only)
};

const char *fsyncPolicyName(FsyncPolicy policy);

/** Parse a `--journal-fsync` value (`always` | `rotate` | `never`). */
rt::Expected<FsyncPolicy> parseFsyncPolicy(std::string_view text);

/** One journal record. */
struct JournalRecord
{
    enum class Type : std::uint8_t {
        Admit,     //!< job accepted: key + full submit spec
        Done,      //!< job finished with a result (now in the cache)
        Failed,    //!< job finished with an error
        Cancelled, //!< job cancelled before completion
    };

    Type type = Type::Admit;
    std::string key;         //!< content-addressed fingerprint key
    std::uint64_t jobId = 0; //!< server-local id (diagnostic only)
    std::string label;       //!< Admit: human-readable job label
    obs::JsonValue spec;     //!< Admit: submit-shaped request document
    std::string errorCode;   //!< Failed: machine-readable code
    std::string errorText;   //!< Failed: human-readable message
};

const char *journalRecordTypeName(JournalRecord::Type type);

/** Counters for `stats` replies, tests and the chaos harness. */
struct JournalStats
{
    std::uint64_t recordsAppended = 0;  //!< appends since open
    std::uint64_t recordsRecovered = 0; //!< valid records read at open
    std::uint64_t tornTailsRepaired = 0;
    std::uint64_t checksumRejects = 0;
    std::uint64_t rotations = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t liveRecords = 0; //!< admits without a terminal record
    std::uint64_t segmentIndex = 0; //!< current segment number
};

/**
 * The write-ahead journal.  One instance per daemon; append() is
 * thread-safe (internally locked — the server calls it from the
 * connection handlers and the worker pool).
 */
class Journal
{
  public:
    struct Config
    {
        std::string dir;
        FsyncPolicy fsync = FsyncPolicy::Always;
        std::uint64_t rotateEvery = 4096; //!< appends before compaction
        rt::SvcFaultInjector *inject = nullptr; //!< torn-write hook
    };

    explicit Journal(Config config);
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open (creating the directory if needed), scan every segment
     * oldest-first, repair a torn tail, and return the surviving
     * records in append order.  The caller (Server) replays them.
     */
    rt::Expected<std::vector<JournalRecord>> open();

    /**
     * Append one record.  Admits enter the live set; terminal records
     * retire the live admit with the same key.  May trigger rotation.
     * A fault-injected torn write still returns success — the tear is
     * only observable at the next open(), exactly like a real one.
     */
    rt::Expected<void> append(const JournalRecord &record);

    JournalStats stats() const;
    const std::string &dir() const { return config.dir; }

    /** Render @p record as one NDJSON line (no trailing newline). */
    static std::string encode(const JournalRecord &record);

    /** Validate + parse one line; rejects bad crc / unknown shape. */
    static rt::Expected<JournalRecord> decode(std::string_view line);

  private:
    std::string segmentPath(std::uint64_t index) const;
    rt::Expected<void> openSegmentLocked(std::uint64_t index, bool fresh);
    rt::Expected<void> writeLineLocked(const std::string &line);
    rt::Expected<void> rotateLocked();
    void trackLocked(const JournalRecord &record);

    Config config;
    mutable std::mutex mutex;
    int fd = -1;
    std::uint64_t segment = 0;          //!< current segment index
    std::uint64_t segmentRecords = 0;   //!< records in current segment
    std::vector<std::uint64_t> segmentsOnDisk; //!< unlinked on rotation
    bool pendingTornTail = false;       //!< injected tear awaiting '\n'
    // Admits not yet retired by a terminal record, in admit order (the
    // compaction source).  Keyed by fingerprint; at most one live job
    // per key exists at a time (equal keys coalesce in the server).
    std::vector<JournalRecord> live;
    JournalStats counters;
};

} // namespace dcfb::svc

#endif // DCFB_SVC_JOURNAL_H
