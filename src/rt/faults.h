/**
 * @file
 * Seeded fault injector (--inject).
 *
 * Deterministically perturbs the simulated machine so robustness tests
 * can assert *graceful degradation*: the run completes, IPC drops,
 * counters stay conserved, and nothing crashes or hangs.  Four fault
 * kinds, all driven by one explicitly seeded Rng so a given
 * (plan, runSeed) pair replays bit-for-bit:
 *
 *  - **drop**: prefetch responses vanish at fill time (the MSHR is
 *    freed, the block never arrives).  Demand responses are never
 *    dropped -- a real memory system retries demands, and dropping them
 *    would convert the fault into a guaranteed hang;
 *  - **delay**: memory responses (demand and prefetch fills) arrive
 *    late by a configured number of cycles;
 *  - **corrupt**: pre-decode output lies -- discovered branch targets
 *    are redirected to a wrong nearby block, poisoning Dis replay, BTB
 *    prefill and proactive chains;
 *  - **backpressure**: the prefetch engine's internal queues
 *    (SeqQueue/DisQueue/RLUQueue) reject pushes, starving the proactive
 *    chains.
 *
 * Spec syntax (CLI `--inject <spec>`, parsed by parseFaultPlan):
 *
 *     <kind>[:key=value[,key=value]...]
 *     kinds: drop | delay | corrupt | backpressure | none
 *     keys:  rate=<0..1>  cycles=<delay cycles>  seed=<uint>
 *
 * e.g. `--inject drop:rate=0.5,seed=3` or `--inject delay:cycles=300`.
 */

#ifndef DCFB_RT_FAULTS_H
#define DCFB_RT_FAULTS_H

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "rt/error.h"

namespace dcfb::rt {

/** What to break. */
enum class FaultKind : std::uint8_t {
    None,
    Drop,         //!< drop prefetch responses at fill time
    Delay,        //!< delay memory responses
    Corrupt,      //!< corrupt pre-decoded branch targets
    Backpressure, //!< force prefetch-queue back-pressure
};

const char *faultKindName(FaultKind kind);

/** A parsed, config-driven injection plan. */
struct FaultPlan
{
    FaultKind kind = FaultKind::None;
    double rate = 0.25;        //!< per-event injection probability
    Cycle delayCycles = 256;   //!< extra latency for Delay faults
    std::uint64_t seed = 1;    //!< injector RNG seed (mixed with runSeed)

    bool active() const { return kind != FaultKind::None && rate > 0.0; }
};

/** Parse an `--inject` spec; error lists the accepted syntax. */
Expected<FaultPlan> parseFaultPlan(std::string_view spec);

/** Render a plan back to its canonical spec string (reports/tests). */
std::string faultPlanSpec(const FaultPlan &plan);

/**
 * The injector: one per System, seeded from (plan.seed, runSeed).
 *
 * Every hook draws from the RNG only when its fault kind is configured,
 * so enabling one kind never shifts the draw sequence of another and an
 * inactive injector costs a single predictable branch per hook.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;

    FaultInjector(const FaultPlan &plan_, std::uint64_t run_seed)
        : plan(plan_), rng(plan_.seed * 0x9e3779b97f4a7c15ull ^ run_seed)
    {
        if (plan.active()) {
            cDropped = statSet.counter("faults_dropped");
            cDelayed = statSet.counter("faults_delayed");
            cDelayCycles = statSet.counter("faults_delay_cycles");
            cCorrupted = statSet.counter("faults_corrupted");
            cBackpressure = statSet.counter("faults_backpressure");
        }
    }

    bool active() const { return plan.active(); }
    const FaultPlan &planRef() const { return plan; }

    /** Drop fault: should this completed prefetch fill be discarded? */
    bool
    dropPrefetchResponse()
    {
        if (plan.kind != FaultKind::Drop || !rng.chance(plan.rate))
            return false;
        cDropped.add();
        return true;
    }

    /** Delay fault: extra cycles to add to a memory response (0 = none). */
    Cycle
    responseDelay()
    {
        if (plan.kind != FaultKind::Delay || !rng.chance(plan.rate))
            return 0;
        cDelayed.add();
        cDelayCycles.add(plan.delayCycles);
        return plan.delayCycles;
    }

    /** Corrupt fault: possibly redirect a pre-decoded branch target to a
     *  wrong nearby block (1..7 blocks away, deterministic). */
    Addr
    corruptTarget(Addr target)
    {
        if (plan.kind != FaultKind::Corrupt || !rng.chance(plan.rate))
            return target;
        cCorrupted.add();
        Addr skew = (1 + rng.below(7)) * kBlockBytes;
        return blockAlign(target) ^ skew;
    }

    /** Backpressure fault: should this queue push be rejected? */
    bool
    forceBackpressure()
    {
        if (plan.kind != FaultKind::Backpressure || !rng.chance(plan.rate))
            return false;
        cBackpressure.add();
        return true;
    }

    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }

  private:
    FaultPlan plan;
    Rng rng;
    StatSet statSet;
    obs::Counter cDropped, cDelayed, cDelayCycles, cCorrupted,
        cBackpressure;
};

// -- service-level fault plane (--svc-inject) -----------------------------
//
// The simulator injector above perturbs the *machine*; this plane
// perturbs the experiment service's I/O path (DESIGN.md "Failure model
// and recovery"): socket frames between dcfb-client and dcfb-serve,
// and the durability writes behind the job journal and the result
// cache.  It exists so the crash-safety machinery can be exercised
// deterministically from a flag instead of waiting for a flaky disk or
// network:
//
//  - **drop**: a reply frame is silently discarded (the client sees a
//    hung request and must time out and retry);
//  - **delay**: a reply frame is held for `delay_ms` before sending
//    (exercises client backoff without losing data);
//  - **truncate**: a journal append or cache store writes only a prefix
//    of its payload (a torn write -- recovery must detect and contain
//    it via the per-record checksums / fingerprint validation);
//  - **reset**: the connection is closed before the reply is sent (the
//    client sees ECONNRESET/EOF mid-request and must reconnect and
//    resubmit idempotently).
//
// Spec syntax mirrors --inject:  <kind>[:key=value,...]
//     kinds: drop | delay | truncate | reset | none
//     keys:  rate=<0..1>  delay_ms=<ms>  seed=<uint>
//
// Determinism: one seeded Rng drives every decision, so a single-client
// sequence of operations replays bit-for-bit for a given seed.  Under
// concurrency the *interleaving* of draws follows request order, but
// each decision is still an honest Bernoulli(rate) draw, which is what
// the chaos harness asserts against (rates, not positions).

/** What to break on the service I/O path. */
enum class SvcFaultKind : std::uint8_t {
    None,
    Drop,     //!< discard reply frames
    Delay,    //!< delay reply frames by delayMs
    Truncate, //!< tear journal/cache writes short
    Reset,    //!< close the connection instead of replying
};

const char *svcFaultKindName(SvcFaultKind kind);

/** A parsed `--svc-inject` plan. */
struct SvcFaultPlan
{
    SvcFaultKind kind = SvcFaultKind::None;
    double rate = 0.05;          //!< per-event injection probability
    std::uint64_t delayMs = 50;  //!< frame hold time for Delay faults
    std::uint64_t seed = 1;      //!< injector RNG seed

    bool active() const { return kind != SvcFaultKind::None && rate > 0.0; }
};

/** Parse a `--svc-inject` spec; error lists the accepted syntax. */
Expected<SvcFaultPlan> parseSvcFaultPlan(std::string_view spec);

/** Render a plan back to its canonical spec string (reports/tests). */
std::string svcFaultPlanSpec(const SvcFaultPlan &plan);

/**
 * The service-path injector.  Unlike FaultInjector (one per System,
 * single-threaded), this one is shared by every connection handler and
 * worker of a daemon, so the RNG draw and the counters sit behind a
 * mutex -- the service control path can afford it.
 */
class SvcFaultInjector
{
  public:
    /** Counter snapshot for `stats` replies and the chaos harness. */
    struct Counters
    {
        std::uint64_t framesDropped = 0;
        std::uint64_t framesDelayed = 0;
        std::uint64_t framesReset = 0;
        std::uint64_t writesTruncated = 0;
    };

    SvcFaultInjector() = default;

    explicit SvcFaultInjector(const SvcFaultPlan &plan_)
        : plan(plan_), rng(plan_.seed * 0x9e3779b97f4a7c15ull + 1)
    {
    }

    bool active() const { return plan.active(); }
    const SvcFaultPlan &planRef() const { return plan; }

    /** Drop fault: should this reply frame vanish? */
    bool
    dropFrame()
    {
        if (plan.kind != SvcFaultKind::Drop)
            return false;
        std::lock_guard<std::mutex> lock(mutex);
        if (!rng.chance(plan.rate))
            return false;
        ++counts.framesDropped;
        return true;
    }

    /** Reset fault: should this connection be torn down pre-reply? */
    bool
    resetFrame()
    {
        if (plan.kind != SvcFaultKind::Reset)
            return false;
        std::lock_guard<std::mutex> lock(mutex);
        if (!rng.chance(plan.rate))
            return false;
        ++counts.framesReset;
        return true;
    }

    /** Delay fault: ms to hold this reply frame (0 = send now). */
    std::uint64_t
    frameDelayMs()
    {
        if (plan.kind != SvcFaultKind::Delay)
            return 0;
        std::lock_guard<std::mutex> lock(mutex);
        if (!rng.chance(plan.rate))
            return 0;
        ++counts.framesDelayed;
        return plan.delayMs;
    }

    /** Truncate fault: should this journal/cache write be torn short? */
    bool
    truncateWrite()
    {
        if (plan.kind != SvcFaultKind::Truncate)
            return false;
        std::lock_guard<std::mutex> lock(mutex);
        if (!rng.chance(plan.rate))
            return false;
        ++counts.writesTruncated;
        return true;
    }

    Counters
    counters() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return counts;
    }

  private:
    SvcFaultPlan plan;
    Rng rng;
    mutable std::mutex mutex;
    Counters counts;
};

} // namespace dcfb::rt

#endif // DCFB_RT_FAULTS_H
