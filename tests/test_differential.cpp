/**
 * @file
 * Differential tests for the hot-path data structures.
 *
 * The optimized SeqTable/DisTable index and tag paths (flat pre-sized
 * owner array, shift-based partial tags) are cross-checked against
 * naive reference models in `ref::` that keep the pre-optimization
 * semantics verbatim: hash maps probed per access, tag bits computed by
 * division.  Both models consume identical randomized streams (fixed
 * seeds) and must agree on every observable -- lookup results, conflict
 * and write counts -- at every step.
 *
 * The same file carries the property/fuzz suite for the predecoder's
 * block cache: randomized fixed-length blocks must decode to identical
 * branch footprints cold and cached, including across eviction/refill
 * of the direct-mapped cache, and decodeAt() must stay consistent with
 * the full-block decode.
 */

#include <gtest/gtest.h>

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "isa/encoding.h"
#include "isa/predecoder.h"
#include "prefetch/dis_table.h"
#include "prefetch/seq_table.h"
#include "workload/image.h"

namespace dcfb {
namespace ref {

/**
 * Pre-optimization SeqTable: same direct-mapped tagless bit table, but
 * the conflict instrumentation probes a hash map per write (the code
 * the flat owner array replaced).
 */
class SeqTable
{
  public:
    explicit SeqTable(std::size_t entries_)
        : entries(entries_), bits(entries_, true)
    {}

    bool get(Addr block_addr) const { return bits[index(block_addr)]; }

    void
    set(Addr block_addr, bool useful)
    {
        std::size_t i = index(block_addr);
        Addr owner = blockNumber(block_addr);
        auto [it, inserted] = lastOwner.try_emplace(i, owner);
        if (!inserted && it->second != owner) {
            ++conflicts;
            it->second = owner;
        }
        ++writes;
        bits[i] = useful;
    }

    std::uint8_t
    statusOfNextFour(Addr block_addr) const
    {
        std::uint8_t packed = 0;
        for (unsigned i = 0; i < 4; ++i) {
            if (get(block_addr + Addr{i + 1} * kBlockBytes))
                packed |= 1u << i;
        }
        return packed;
    }

    std::uint64_t conflicts = 0;
    std::uint64_t writes = 0;

  private:
    std::size_t
    index(Addr block_addr) const
    {
        return static_cast<std::size_t>(blockNumber(block_addr)) &
            (entries - 1);
    }

    std::size_t entries;
    std::vector<bool> bits;
    std::unordered_map<std::size_t, Addr> lastOwner;
};

/**
 * Pre-optimization DisTable: identical table, but the partial tag is
 * always the division form `blockNumber / entries` (the code the
 * power-of-two shift replaced).
 */
class DisTable
{
  public:
    explicit DisTable(const prefetch::DisTableConfig &config)
        : cfg(config), table(cfg.entries)
    {}

    void
    record(Addr block_addr, std::uint8_t offset)
    {
        Entry &e = table[index(block_addr)];
        e.valid = true;
        e.tag = tagOf(block_addr);
        e.offset = offset;
    }

    std::optional<std::uint8_t>
    lookup(Addr block_addr) const
    {
        const Entry &e = table[index(block_addr)];
        if (!e.valid)
            return std::nullopt;
        if (cfg.tagPolicy != prefetch::DisTagPolicy::Tagless &&
            e.tag != tagOf(block_addr)) {
            return std::nullopt;
        }
        return e.offset;
    }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint8_t offset = 0;
    };

    std::size_t
    index(Addr block_addr) const
    {
        return static_cast<std::size_t>(blockNumber(block_addr)) &
            (cfg.entries - 1);
    }

    std::uint64_t
    tagOf(Addr block_addr) const
    {
        std::uint64_t above = blockNumber(block_addr) / cfg.entries;
        switch (cfg.tagPolicy) {
          case prefetch::DisTagPolicy::Tagless: return 0;
          case prefetch::DisTagPolicy::Partial4: return above & 0xf;
          case prefetch::DisTagPolicy::Full: return above;
        }
        return 0;
    }

    prefetch::DisTableConfig cfg;
    std::vector<Entry> table;
};

} // namespace ref

namespace {

class SeqTableDifferential : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SeqTableDifferential, AgreesWithMapModelOnRandomStream)
{
    constexpr std::size_t kEntries = 64; // small: force heavy aliasing
    prefetch::SeqTable opt(kEntries);
    ref::SeqTable model(kEntries);

    Rng rng(GetParam());
    const Addr base = 0x40000;
    for (int op = 0; op < 20000; ++op) {
        // 8x more blocks than entries, so conflicts are common.
        Addr block = base + rng.below(kEntries * 8) * kBlockBytes;
        switch (rng.below(3)) {
          case 0:
            opt.set(block, rng.chance(0.5));
            // Mirror the draw: both models must see identical streams.
            model.set(block, opt.get(block));
            break;
          case 1:
            ASSERT_EQ(opt.get(block), model.get(block))
                << "get() diverged at op " << op;
            break;
          default:
            ASSERT_EQ(opt.statusOfNextFour(block),
                      model.statusOfNextFour(block))
                << "statusOfNextFour() diverged at op " << op;
            break;
        }
    }

    EXPECT_EQ(opt.stats().get("seqtable_conflicts"), model.conflicts);
    EXPECT_EQ(opt.stats().get("seqtable_writes"), model.writes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqTableDifferential,
                         ::testing::Values(11, 22, 33, 44, 55));

struct DisCase
{
    std::size_t entries;
    prefetch::DisTagPolicy policy;
    std::uint64_t seed;
};

class DisTableDifferential : public ::testing::TestWithParam<DisCase>
{};

TEST_P(DisTableDifferential, AgreesWithDivisionModelOnRandomStream)
{
    const DisCase &c = GetParam();
    prefetch::DisTableConfig cfg;
    cfg.entries = c.entries;
    cfg.tagPolicy = c.policy;
    prefetch::DisTable opt(cfg);
    ref::DisTable model(cfg);

    Rng rng(c.seed);
    const Addr base = 0x40000;
    for (int op = 0; op < 20000; ++op) {
        // Span many multiples of the table size so partial tags alias.
        Addr block = base + rng.below(c.entries * 64) * kBlockBytes;
        if (rng.chance(0.4)) {
            auto offset = static_cast<std::uint8_t>(rng.below(16));
            opt.record(block, offset);
            model.record(block, offset);
        } else {
            ASSERT_EQ(opt.lookup(block), model.lookup(block))
                << "lookup() diverged at op " << op;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DisTableDifferential,
    ::testing::Values(
        // Power-of-two sizes take the shift path; the non-power-of-two
        // size keeps the division fallback -- both must match the
        // always-divide model.
        DisCase{64, prefetch::DisTagPolicy::Partial4, 101},
        DisCase{64, prefetch::DisTagPolicy::Tagless, 102},
        DisCase{64, prefetch::DisTagPolicy::Full, 103},
        DisCase{4096, prefetch::DisTagPolicy::Partial4, 104},
        DisCase{48, prefetch::DisTagPolicy::Partial4, 105},
        DisCase{48, prefetch::DisTagPolicy::Full, 106}));

// ---------------------------------------------------------------------
// Predecode-cache properties.
// ---------------------------------------------------------------------

using isa::DecodedInstr;
using isa::InstrKind;
using isa::PredecodedBranch;

bool
sameBranches(const std::vector<PredecodedBranch> &a,
             const std::vector<PredecodedBranch> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].byteOffset != b[i].byteOffset || a[i].kind != b[i].kind ||
            a[i].hasTarget != b[i].hasTarget ||
            a[i].target != b[i].target || a[i].pc != b[i].pc) {
            return false;
        }
    }
    return true;
}

/** Write one random fixed-length block at @p base; ~1/4 branch slots. */
void
writeRandomBlock(workload::ProgramImage &image, Addr base, Rng &rng)
{
    static const InstrKind kBranchKinds[] = {
        InstrKind::CondBranch, InstrKind::Jump,         InstrKind::Call,
        InstrKind::Return,     InstrKind::IndirectCall,
    };
    for (unsigned slot = 0; slot < kInstrPerBlock; ++slot) {
        Addr pc = base + slot * kInstrBytes;
        DecodedInstr di{InstrKind::Alu, false, kInvalidAddr};
        if (rng.chance(0.25)) {
            di.kind = kBranchKinds[rng.below(5)];
            if (isa::hasEncodedTarget(di.kind)) {
                di.hasTarget = true;
                std::int64_t delta =
                    static_cast<std::int64_t>(rng.below(1 << 12)) -
                    (1 << 11);
                di.target = static_cast<Addr>(
                    static_cast<std::int64_t>(pc) + delta * kInstrBytes);
            }
        }
        std::uint8_t buf[kInstrBytes];
        isa::writeWord(buf, isa::encodeInstr(pc, di));
        image.write(pc, buf, kInstrBytes);
    }
}

class PredecodeCacheProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(PredecodeCacheProperty, ColdAndCachedDecodesAreIdentical)
{
    Rng rng(GetParam());
    workload::ProgramImage image;
    constexpr unsigned kBlocks = 64;
    const Addr base = 0x40000;
    for (unsigned b = 0; b < kBlocks; ++b)
        writeRandomBlock(image, base + Addr{b} * kBlockBytes, rng);

    isa::Predecoder cached(image, /*variable_length=*/false);
    for (int round = 0; round < 3; ++round) {
        for (unsigned b = 0; b < kBlocks; ++b) {
            Addr block = base + Addr{b} * kBlockBytes;
            // A fresh predecoder per probe never hits its cache.
            isa::Predecoder cold(image, false);
            ASSERT_TRUE(sameBranches(cold.predecodeBlock(block),
                                     cached.predecodeBlock(block)))
                << "block " << b << " round " << round;
        }
    }
}

TEST_P(PredecodeCacheProperty, SurvivesEvictionAndRefill)
{
    Rng rng(GetParam() + 1000);
    workload::ProgramImage image;
    // Two blocks 1024 block-numbers apart alias onto the same entry of
    // the 256-entry direct-mapped cache, so decoding one evicts the
    // other.  (If the cache ever grows past 1024 entries these become
    // non-aliasing probes and the test degrades to the cold/cached
    // property above, still sound.)
    const Addr a = 0x40000;
    const Addr b = a + Addr{1024} * kBlockBytes;
    writeRandomBlock(image, a, rng);
    writeRandomBlock(image, b, rng);

    isa::Predecoder pd(image, false);
    auto first_a = pd.predecodeBlock(a);
    auto first_b = pd.predecodeBlock(b); // evicts a's entry
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(sameBranches(pd.predecodeBlock(a), first_a));
        ASSERT_TRUE(sameBranches(pd.predecodeBlock(b), first_b));
    }
}

TEST_P(PredecodeCacheProperty, DecodeAtMatchesFullBlockDecode)
{
    Rng rng(GetParam() + 2000);
    workload::ProgramImage image;
    const Addr block = 0x40000;
    writeRandomBlock(image, block, rng);

    isa::Predecoder pd(image, false);
    auto all = pd.predecodeBlock(block);
    std::vector<bool> is_branch_offset(kBlockBytes, false);
    for (const auto &br : all) {
        auto one = pd.decodeAt(block, br.byteOffset);
        ASSERT_EQ(one.size(), 1u);
        EXPECT_TRUE(sameBranches(one, {br}));
        is_branch_offset[br.byteOffset] = true;
    }
    for (unsigned off = 0; off < kBlockBytes; off += kInstrBytes) {
        if (!is_branch_offset[off])
            EXPECT_TRUE(pd.decodeAt(block, off).empty());
    }
}

TEST_P(PredecodeCacheProperty, UnmappedAndVariableLengthStayEmpty)
{
    Rng rng(GetParam() + 3000);
    workload::ProgramImage image;
    writeRandomBlock(image, 0x40000, rng);

    isa::Predecoder fl(image, false);
    EXPECT_TRUE(fl.predecodeBlock(0x99000).empty());
    EXPECT_TRUE(fl.predecodeBlock(0x99000).empty()); // cached miss too

    // VL mode has no full-block decode; the cache must not change that.
    isa::Predecoder vl(image, true);
    EXPECT_TRUE(vl.predecodeBlock(0x40000).empty());
    EXPECT_TRUE(vl.predecodeBlock(0x40000).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredecodeCacheProperty,
                         ::testing::Values(7, 17, 27));

} // namespace
} // namespace dcfb
