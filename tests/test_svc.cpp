/**
 * @file
 * Experiment-service tests: fingerprint/key stability, result-cache
 * hit/miss/crash-safety behaviour, the `--cache`-off parity and warm
 * -sweep speedup guarantees, protocol parsing, and the daemon itself
 * (admission control, dedup, drain) driven both in-process and over a
 * real Unix-domain socket.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/span.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "svc/client.h"
#include "svc/fingerprint.h"
#include "svc/protocol.h"
#include "svc/result_cache.h"
#include "svc/server.h"
#include "workload/profiles.h"

namespace dcfb {
namespace {

/** Fresh scratch directory under TMPDIR for one test. */
std::string
scratchDir(const std::string &tag)
{
    std::string templ = ::testing::TempDir() + "dcfb_svc_" + tag + "_XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    const char *made = ::mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    return made ? made : templ;
}

/** Shrink a config so one simulation is fast but non-trivial. */
void
shrink(sim::SystemConfig &cfg)
{
    cfg.profile.numFunctions = 24;
    cfg.profile.dataFootprint = 1ull << 20;
    cfg.functionalWarmInstrs = 40000;
}

sim::SystemConfig
tinyConfig(sim::Preset preset = sim::Preset::Baseline)
{
    sim::SystemConfig cfg =
        sim::makeConfig(workload::serverProfile("Web (Apache)"), preset);
    shrink(cfg);
    return cfg;
}

sim::RunWindows
tinyWindows()
{
    return sim::RunWindows{4000, 6000};
}

/** RAII guard: no process-global result cache leaks across tests. */
struct GlobalCacheGuard
{
    ~GlobalCacheGuard() { svc::ResultCache::closeGlobal(); }
};

// -- fingerprint ----------------------------------------------------------

TEST(SvcFingerprint, Fnv1aReferenceVectors)
{
    // Standard FNV-1a 64-bit vectors pin the hash function itself.
    EXPECT_EQ(svc::fnv1aHex(""), "cbf29ce484222325");
    EXPECT_EQ(svc::fnv1aHex("a"), "af63dc4c8601ec8c");
    EXPECT_EQ(svc::fnv1aHex("foobar"), "85944171f73967e8");
}

TEST(SvcFingerprint, StableAcrossCalls)
{
    sim::SystemConfig cfg = tinyConfig(sim::Preset::SN4L);
    auto fp1 = svc::fingerprint(cfg, tinyWindows());
    auto fp2 = svc::fingerprint(cfg, tinyWindows());
    EXPECT_EQ(fp1, fp2);
    EXPECT_EQ(svc::cacheKey(cfg, tinyWindows()),
              svc::cacheKey(cfg, tinyWindows()));
    EXPECT_EQ(svc::cacheKey(cfg, tinyWindows()).size(), 16u);
    const obs::JsonValue *schema = fp1.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->asString(), svc::kCacheSchema);
}

TEST(SvcFingerprint, EveryResultShapingKnobChangesTheKey)
{
    sim::SystemConfig base = tinyConfig(sim::Preset::SN4L);
    sim::RunWindows w = tinyWindows();
    std::string key = svc::cacheKey(base, w);

    sim::SystemConfig c = base;
    c.preset = sim::Preset::Baseline;
    EXPECT_NE(svc::cacheKey(c, w), key);

    c = base;
    c.runSeed += 1;
    EXPECT_NE(svc::cacheKey(c, w), key);

    c = base;
    c.profile.numFunctions += 1;
    EXPECT_NE(svc::cacheKey(c, w), key);

    c = base;
    c.btbEntries *= 2;
    EXPECT_NE(svc::cacheKey(c, w), key);

    c = base;
    c.faults = rt::parseFaultPlan("drop:rate=0.5,seed=3").value();
    EXPECT_NE(svc::cacheKey(c, w), key);

    sim::RunWindows w2 = w;
    w2.measure += 1;
    EXPECT_NE(svc::cacheKey(base, w2), key);
}

// -- result cache ---------------------------------------------------------

TEST(SvcResultCache, MissThenHitRoundTripsExactly)
{
    svc::ResultCache cache(scratchDir("hit"));
    ASSERT_TRUE(cache.open().ok());

    sim::SystemConfig cfg = tinyConfig();
    auto fp = svc::fingerprint(cfg, tinyWindows());
    std::string key = svc::fnv1aHex(fp.dump());

    EXPECT_FALSE(cache.get(key, fp).has_value());
    sim::RunResult result = sim::simulate(cfg, tinyWindows());
    ASSERT_TRUE(cache.put(key, fp, result).ok());

    auto hit = cache.get(key, fp);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, result); // bit-identical counters and histograms

    svc::ResultCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_EQ(stats.rejects, 0u);
}

TEST(SvcResultCache, CacheOffIsExactlyTheDirectSimulator)
{
    svc::ResultCache::closeGlobal();
    sim::SystemConfig cfg = tinyConfig(sim::Preset::SN4L);
    sim::RunResult direct = sim::simulate(cfg, tinyWindows());
    sim::RunResult routed = svc::simulateCached(cfg, tinyWindows());
    EXPECT_EQ(direct, routed);
    EXPECT_EQ(sim::toJson(direct).dump(), sim::toJson(routed).dump());
}

TEST(SvcResultCache, StrayTempFileFromKilledWriterIsIgnored)
{
    svc::ResultCache cache(scratchDir("tmp"));
    ASSERT_TRUE(cache.open().ok());

    sim::SystemConfig cfg = tinyConfig();
    auto fp = svc::fingerprint(cfg, tinyWindows());
    std::string key = svc::fnv1aHex(fp.dump());

    // A writer killed mid-put leaves only the temp file behind; lookups
    // must treat that as a clean miss.
    {
        std::ofstream stray(cache.entryPath(key) + ".tmp.9999");
        stray << "{\"schema\": \"dcfb-cache-v2\", \"trunca";
    }
    EXPECT_FALSE(cache.get(key, fp).has_value());

    sim::RunResult result = sim::simulate(cfg, tinyWindows());
    ASSERT_TRUE(cache.put(key, fp, result).ok());
    auto hit = cache.get(key, fp);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, result);
}

TEST(SvcResultCache, CorruptEntryIsRejectedAndRecomputed)
{
    svc::ResultCache cache(scratchDir("corrupt"));
    ASSERT_TRUE(cache.open().ok());

    sim::SystemConfig cfg = tinyConfig();
    auto fp = svc::fingerprint(cfg, tinyWindows());
    std::string key = svc::fnv1aHex(fp.dump());
    sim::RunResult result = sim::simulate(cfg, tinyWindows());
    ASSERT_TRUE(cache.put(key, fp, result).ok());

    // Corrupt the entry on disk (torn write / bit rot).
    {
        std::ofstream out(cache.entryPath(key),
                          std::ios::out | std::ios::trunc);
        out << "{\"schema\": \"dcfb-cache-v2\", this is not json";
    }
    auto load = cache.load(key, fp);
    ASSERT_FALSE(load.ok()); // typed error, not a crash
    EXPECT_EQ(load.error().kind, rt::ErrorKind::Result);

    // get() applies the production policy: reject, unlink, recompute.
    EXPECT_FALSE(cache.get(key, fp).has_value());
    EXPECT_EQ(cache.stats().rejects, 1u);
    std::ifstream gone(cache.entryPath(key));
    EXPECT_FALSE(gone.is_open()) << "rejected entry must be unlinked";

    ASSERT_TRUE(cache.put(key, fp, result).ok());
    auto hit = cache.get(key, fp);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, result);
}

TEST(SvcResultCache, TruncatedEntryIsRejected)
{
    svc::ResultCache cache(scratchDir("trunc"));
    ASSERT_TRUE(cache.open().ok());

    sim::SystemConfig cfg = tinyConfig();
    auto fp = svc::fingerprint(cfg, tinyWindows());
    std::string key = svc::fnv1aHex(fp.dump());
    ASSERT_TRUE(cache.put(key, fp, sim::simulate(cfg, tinyWindows())).ok());

    // Chop the entry in half (crash mid-rewrite on a non-atomic fs).
    std::string text;
    {
        std::ifstream in(cache.entryPath(key));
        std::getline(in, text, '\0');
    }
    {
        std::ofstream out(cache.entryPath(key),
                          std::ios::out | std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    }
    EXPECT_FALSE(cache.get(key, fp).has_value());
    EXPECT_EQ(cache.stats().rejects, 1u);
}

TEST(SvcResultCache, FingerprintMismatchGuardsAgainstCollisions)
{
    svc::ResultCache cache(scratchDir("collide"));
    ASSERT_TRUE(cache.open().ok());

    sim::SystemConfig a = tinyConfig(sim::Preset::Baseline);
    sim::SystemConfig b = tinyConfig(sim::Preset::SN4L);
    auto fp_a = svc::fingerprint(a, tinyWindows());
    auto fp_b = svc::fingerprint(b, tinyWindows());
    std::string key = svc::fnv1aHex(fp_a.dump());

    // Force a "collision": b's result stored under a's key.
    ASSERT_TRUE(cache.put(key, fp_b, sim::simulate(b, tinyWindows())).ok());
    auto load = cache.load(key, fp_a);
    ASSERT_FALSE(load.ok());
    EXPECT_FALSE(cache.get(key, fp_a).has_value());
    EXPECT_EQ(cache.stats().rejects, 1u);
}

TEST(SvcResultCache, WarmGridSweepIsTenTimesFasterAndIdentical)
{
    GlobalCacheGuard guard;
    ASSERT_TRUE(svc::ResultCache::openGlobal(scratchDir("warm")).ok());

    // A fig11-style sweep: one workload, several designs, through the
    // parallel grid runner with the global cache open.
    std::vector<sim::Preset> presets = {
        sim::Preset::Baseline, sim::Preset::NL, sim::Preset::SN4L,
        sim::Preset::SN4LDisBtb};
    std::vector<std::string> workloads = {"Web (Apache)"};
    sim::RunWindows windows{20000, 30000};

    auto sweep = [&](sim::ExperimentGrid &grid) {
        auto t0 = std::chrono::steady_clock::now();
        grid.run(workloads);
        auto t1 = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(t1 - t0).count();
    };

    sim::ExperimentGrid cold(presets, windows, shrink);
    double cold_s = sweep(cold);
    svc::ResultCacheStats after_cold = svc::ResultCache::global()->stats();
    EXPECT_EQ(after_cold.misses, presets.size());
    EXPECT_EQ(after_cold.stores, presets.size());
    EXPECT_EQ(after_cold.hits, 0u);

    sim::ExperimentGrid warm(presets, windows, shrink);
    double warm_s = sweep(warm);
    svc::ResultCacheStats after_warm = svc::ResultCache::global()->stats();
    EXPECT_EQ(after_warm.hits, presets.size());
    EXPECT_EQ(after_warm.misses, after_cold.misses); // no new simulations

    for (sim::Preset p : presets)
        EXPECT_EQ(cold.at("Web (Apache)", p), warm.at("Web (Apache)", p));

    EXPECT_GE(cold_s, 10.0 * warm_s)
        << "warm sweep took " << warm_s << "s vs cold " << cold_s << "s";
}

// -- protocol -------------------------------------------------------------

TEST(SvcProtocol, ParsesAFullSubmit)
{
    auto req = svc::parseRequest(
        R"j({"op":"submit","workload":"Web (Apache)","preset":"SN4L",)j"
        R"("warm":1000,"measure":2000,"seed":7,)"
        R"("inject":"drop:rate=0.25,seed=9","deadline_ms":5000})");
    ASSERT_TRUE(req.ok());
    const svc::SubmitSpec &s = req.value().submit;
    EXPECT_EQ(req.value().op, svc::Request::Op::Submit);
    EXPECT_EQ(s.workload, "Web (Apache)");
    EXPECT_EQ(s.preset, sim::Preset::SN4L);
    ASSERT_TRUE(s.hasWindows);
    EXPECT_EQ(s.windows.warm, 1000u);
    EXPECT_EQ(s.windows.measure, 2000u);
    ASSERT_TRUE(s.seed.has_value());
    EXPECT_EQ(*s.seed, 7u);
    EXPECT_EQ(s.deadlineMs, 5000u);
    EXPECT_NE(rt::faultPlanSpec(s.faults), "none");
}

TEST(SvcProtocol, MalformedRequestsAreTypedErrors)
{
    const char *bad[] = {
        "not json at all",
        "[1,2,3]",
        R"({"no_op":1})",
        R"({"op":"frobnicate"})",
        R"({"op":"submit","preset":"SN4L"})",
        R"({"op":"submit","workload":"No Such Workload","preset":"SN4L"})",
        R"j({"op":"submit","workload":"Web (Apache)","preset":"Nope"})j",
        R"j({"op":"submit","workload":"Web (Apache)","preset":"SN4L",)j"
        R"("warm":100})",
        R"j({"op":"submit","workload":"Web (Apache)","preset":"SN4L",)j"
        R"("warm":100,"measure":0})",
        R"j({"op":"submit","workload":"Web (Apache)","preset":"SN4L",)j"
        R"("inject":"bogus-spec"})",
        R"({"op":"status"})",
    };
    for (const char *line : bad) {
        auto req = svc::parseRequest(line);
        EXPECT_FALSE(req.ok()) << "should reject: " << line;
        if (!req.ok())
            EXPECT_FALSE(req.error().message.empty());
    }
}

TEST(SvcProtocol, ErrorReplyShape)
{
    obs::JsonValue reply = svc::errorReply("queue_full", "try later");
    EXPECT_EQ(reply.find("ok")->asBool(), false);
    EXPECT_EQ(reply.find("error")->asString(), "queue_full");
    EXPECT_EQ(reply.find("schema")->asString(), svc::kProtocolSchema);
}

TEST(SvcProtocol, ParsesMetricsOpAndSpanStitchingIds)
{
    auto metrics = svc::parseRequest(R"({"op":"metrics"})");
    ASSERT_TRUE(metrics.ok());
    EXPECT_EQ(metrics.value().op, svc::Request::Op::Metrics);
    EXPECT_EQ(metrics.value().traceId, 0u);

    // trace_id / parent_span ride on any op.
    auto ping = svc::parseRequest(
        R"({"op":"ping","trace_id":123,"parent_span":456})");
    ASSERT_TRUE(ping.ok());
    EXPECT_EQ(ping.value().traceId, 123u);
    EXPECT_EQ(ping.value().parentSpan, 456u);

    auto bad = svc::parseRequest(R"({"op":"ping","trace_id":"nope"})");
    EXPECT_FALSE(bad.ok());

    // Every op has a wire name and the count covers the enum.
    EXPECT_STREQ(svc::opName(svc::Request::Op::Metrics), "metrics");
    EXPECT_EQ(svc::kOpCount, 8u);
}

// -- server ---------------------------------------------------------------

std::uint64_t
counterOf(const obs::JsonValue &stats, const std::string &name)
{
    const obs::JsonValue *counters = stats.find("counters");
    if (!counters)
        return 0;
    const obs::JsonValue *c = counters->find(name);
    return c ? c->asUint() : 0;
}

/** Server on a scratch socket with fast tiny jobs. */
svc::ServerConfig
testServerConfig(const std::string &tag)
{
    svc::ServerConfig config;
    config.socketPath = scratchDir(tag) + "/dcfb.sock";
    config.jobs = 1;
    config.queueCapacity = 8;
    config.retryAfterMs = 10;
    config.defaultWindows = tinyWindows();
    config.configHook = shrink;
    return config;
}

std::string
submitLine(std::uint64_t seed)
{
    return R"j({"op":"submit","workload":"Web (Apache)","preset":"SN4L",)j"
           R"("seed":)" +
        std::to_string(seed) + "}";
}

/** Poll status until the job is terminal; returns the last reply. */
obs::JsonValue
awaitTerminal(svc::Server &server, const std::string &job)
{
    for (int i = 0; i < 2000; ++i) {
        obs::JsonValue reply = server.handleLine(
            R"({"op":"status","job":")" + job + R"("})");
        const obs::JsonValue *state = reply.find("state");
        if (state && state->asString() != "queued" &&
            state->asString() != "running")
            return reply;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ADD_FAILURE() << "job " << job << " never reached a terminal state";
    return obs::JsonValue();
}

TEST(SvcServer, SubmitRunsFetchMatchesDirectSimulation)
{
    svc::Server server(testServerConfig("run"));
    ASSERT_TRUE(server.start().ok());

    obs::JsonValue reply = server.handleLine(submitLine(11));
    ASSERT_TRUE(reply.find("ok")->asBool()) << reply.dump();
    std::string job = reply.find("job")->asString();

    obs::JsonValue status = awaitTerminal(server, job);
    EXPECT_EQ(status.find("state")->asString(), "done") << status.dump();

    obs::JsonValue fetched = server.handleLine(
        R"({"op":"fetch","job":")" + job + R"("})");
    ASSERT_TRUE(fetched.find("ok")->asBool()) << fetched.dump();
    auto result = sim::runResultFromJson(*fetched.find("result"));
    ASSERT_TRUE(result.has_value());

    // The served result is exactly what simulating the same spec
    // directly produces.
    sim::SystemConfig cfg =
        sim::makeConfig(workload::serverProfile("Web (Apache)"),
                        sim::Preset::SN4L);
    cfg.faults = rt::FaultPlan{};
    cfg.runSeed = 11;
    shrink(cfg);
    EXPECT_EQ(*result, sim::simulate(cfg, tinyWindows()));
    server.shutdown();
}

TEST(SvcServer, DuplicateSubmitsAreCachedOrCoalescedNeverResimulated)
{
    svc::ServerConfig config = testServerConfig("dedup");
    config.cacheDir = scratchDir("dedup_cache");
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    obs::JsonValue first = server.handleLine(submitLine(21));
    ASSERT_TRUE(first.find("ok")->asBool());
    std::string job = first.find("job")->asString();

    // Immediately duplicated while in flight: coalesces onto job 1.
    obs::JsonValue dup = server.handleLine(submitLine(21));
    ASSERT_TRUE(dup.find("ok")->asBool()) << dup.dump();
    const obs::JsonValue *coalesced = dup.find("coalesced");
    ASSERT_NE(coalesced, nullptr) << dup.dump();
    EXPECT_TRUE(coalesced->asBool());
    EXPECT_EQ(dup.find("job")->asString(), job);

    awaitTerminal(server, job);

    // Duplicated after completion: served straight from the cache.
    obs::JsonValue cached = server.handleLine(submitLine(21));
    ASSERT_TRUE(cached.find("ok")->asBool()) << cached.dump();
    const obs::JsonValue *hit = cached.find("cached");
    ASSERT_NE(hit, nullptr) << cached.dump();
    EXPECT_TRUE(hit->asBool());
    EXPECT_EQ(cached.find("state")->asString(), "done");

    obs::JsonValue stats = server.statsSnapshot();
    EXPECT_EQ(counterOf(stats, "svc.sims_executed"), 1u);
    EXPECT_EQ(counterOf(stats, "svc.coalesced"), 1u);
    EXPECT_EQ(counterOf(stats, "svc.cache_hits"), 1u);
    EXPECT_EQ(counterOf(stats, "svc.submitted"), 3u);
    server.shutdown();
}

TEST(SvcServer, OverloadGetsWellFormedBackpressureAndBoundHolds)
{
    svc::ServerConfig config = testServerConfig("overload");
    config.queueCapacity = 1;
    // Slower jobs so the worker is certainly still busy while the
    // flood of submits lands.
    config.defaultWindows = sim::RunWindows{20000, 30000};
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    unsigned rejected = 0;
    std::vector<std::string> admitted;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        obs::JsonValue reply = server.handleLine(submitLine(100 + seed));
        if (reply.find("ok")->asBool()) {
            admitted.push_back(reply.find("job")->asString());
            continue;
        }
        ++rejected;
        EXPECT_EQ(reply.find("error")->asString(), "queue_full")
            << reply.dump();
        ASSERT_NE(reply.find("retry_after_ms"), nullptr);
        EXPECT_EQ(reply.find("retry_after_ms")->asUint(),
                  config.retryAfterMs);
    }
    // worker + pool buffer + dispatcher-held + 1 queued = at most 4
    // absorbed; the rest must have been rejected, not dropped or hung.
    EXPECT_GE(rejected, 4u);
    EXPECT_GE(admitted.size(), 1u);

    server.requestDrain();
    server.awaitDrained();
    for (const auto &job : admitted) {
        obs::JsonValue status = server.handleLine(
            R"({"op":"status","job":")" + job + R"("})");
        EXPECT_EQ(status.find("state")->asString(), "done");
    }
    obs::JsonValue stats = server.statsSnapshot();
    EXPECT_EQ(counterOf(stats, "svc.invariant_violations"), 0u);
    EXPECT_EQ(counterOf(stats, "svc.rejected_full"), rejected);
    EXPECT_LE(stats.find("queue_peak")->asUint(), config.queueCapacity);
    server.shutdown();
}

TEST(SvcServer, DrainRejectsNewWorkAndFinishesAdmitted)
{
    svc::Server server(testServerConfig("drain"));
    ASSERT_TRUE(server.start().ok());

    obs::JsonValue admitted = server.handleLine(submitLine(31));
    ASSERT_TRUE(admitted.find("ok")->asBool());
    std::string job = admitted.find("job")->asString();

    obs::JsonValue drain = server.handleLine(R"({"op":"drain"})");
    EXPECT_TRUE(drain.find("ok")->asBool());
    EXPECT_TRUE(server.draining());

    obs::JsonValue rejected = server.handleLine(submitLine(32));
    EXPECT_FALSE(rejected.find("ok")->asBool());
    EXPECT_EQ(rejected.find("error")->asString(), "draining");

    server.awaitDrained();
    obs::JsonValue status = server.handleLine(
        R"({"op":"status","job":")" + job + R"("})");
    EXPECT_EQ(status.find("state")->asString(), "done");
    server.shutdown();
}

TEST(SvcServer, CancelQueuedJobAndExpireDeadlines)
{
    svc::ServerConfig config = testServerConfig("cancel");
    config.defaultWindows = sim::RunWindows{20000, 30000};
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    // Fill the worker and the pool buffer with slow jobs, so the next
    // submits stay queued long enough to act on.
    server.handleLine(submitLine(41));
    server.handleLine(submitLine(42));
    server.handleLine(submitLine(43));

    obs::JsonValue doomed = server.handleLine(
        R"j({"op":"submit","workload":"Web (Apache)","preset":"SN4L",)j"
        R"("seed":44,"deadline_ms":1})");
    ASSERT_TRUE(doomed.find("ok")->asBool());
    std::string deadline_job = doomed.find("job")->asString();

    obs::JsonValue queued = server.handleLine(submitLine(45));
    ASSERT_TRUE(queued.find("ok")->asBool());
    std::string cancel_job = queued.find("job")->asString();

    obs::JsonValue cancel = server.handleLine(
        R"({"op":"cancel","job":")" + cancel_job + R"("})");
    ASSERT_TRUE(cancel.find("ok")->asBool()) << cancel.dump();
    EXPECT_EQ(cancel.find("state")->asString(), "cancelled");

    obs::JsonValue expired = awaitTerminal(server, deadline_job);
    EXPECT_EQ(expired.find("state")->asString(), "failed");
    EXPECT_EQ(expired.find("error")->asString(), "deadline_exceeded")
        << expired.dump();

    obs::JsonValue fetch = server.handleLine(
        R"({"op":"fetch","job":")" + cancel_job + R"("})");
    EXPECT_FALSE(fetch.find("ok")->asBool());
    EXPECT_EQ(fetch.find("error")->asString(), "cancelled");

    server.requestDrain();
    server.awaitDrained();
    obs::JsonValue stats = server.statsSnapshot();
    EXPECT_EQ(counterOf(stats, "svc.cancelled"), 1u);
    EXPECT_EQ(counterOf(stats, "svc.deadline_expired"), 1u);
    // The cancelled and expired jobs were never simulated.
    EXPECT_EQ(counterOf(stats, "svc.sims_executed"), 3u);
    server.shutdown();
}

TEST(SvcServer, GracefulDrainSettlesCoalescedWaitersExactlyOnce)
{
    // Satellite of the crash-safety PR: a SIGTERM-style drain while
    // duplicate submits are coalesced onto one in-flight job must hand
    // every waiter a terminal reply and count the work exactly once.
    svc::ServerConfig config = testServerConfig("drain_coalesce");
    config.defaultWindows = sim::RunWindows{20000, 30000};
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    obs::JsonValue first = server.handleLine(submitLine(91));
    ASSERT_TRUE(first.find("ok")->asBool()) << first.dump();
    std::string job = first.find("job")->asString();
    // Two more clients pile onto the same fingerprint while it runs.
    for (int dup = 0; dup < 2; ++dup) {
        obs::JsonValue reply = server.handleLine(submitLine(91));
        ASSERT_TRUE(reply.find("ok")->asBool()) << reply.dump();
        EXPECT_EQ(reply.find("job")->asString(), job);
    }

    server.requestDrain(); // what SIGTERM triggers in dcfb-serve
    server.awaitDrained();

    obs::JsonValue status = server.handleLine(
        R"({"op":"status","job":")" + job + R"("})");
    EXPECT_EQ(status.find("state")->asString(), "done");
    obs::JsonValue fetched = server.handleLine(
        R"({"op":"fetch","job":")" + job + R"("})");
    EXPECT_TRUE(fetched.find("ok")->asBool()) << fetched.dump();

    obs::JsonValue stats = server.statsSnapshot();
    EXPECT_EQ(counterOf(stats, "svc.submitted"), 3u);
    EXPECT_EQ(counterOf(stats, "svc.coalesced"), 2u);
    EXPECT_EQ(counterOf(stats, "svc.sims_executed"), 1u);
    EXPECT_EQ(counterOf(stats, "svc.completed"), 1u);
    server.shutdown();
}

TEST(SvcResultCache, StrayTempFilesAreReapedAtOpen)
{
    std::string dir = scratchDir("reap");
    // Two writers killed mid-put left temp files; a finished entry and
    // an unrelated file must survive the sweep.
    { std::ofstream(dir + "/aaaa.json.tmp.101") << "{\"trunc"; }
    { std::ofstream(dir + "/bbbb.json.tmp.102") << "{\"trunc"; }
    { std::ofstream(dir + "/cccc.json") << "{}"; }
    { std::ofstream(dir + "/README") << "not a cache file"; }

    svc::ResultCache cache(dir);
    ASSERT_TRUE(cache.open().ok());
    EXPECT_EQ(cache.stats().tmpReaped, 2u);
    EXPECT_FALSE(std::ifstream(dir + "/aaaa.json.tmp.101").is_open());
    EXPECT_FALSE(std::ifstream(dir + "/bbbb.json.tmp.102").is_open());
    EXPECT_TRUE(std::ifstream(dir + "/cccc.json").is_open());
    EXPECT_TRUE(std::ifstream(dir + "/README").is_open());
}

TEST(SvcServer, MalformedLinesAreCountedNotFatal)
{
    svc::Server server(testServerConfig("badreq"));
    ASSERT_TRUE(server.start().ok());
    obs::JsonValue reply = server.handleLine("this is not a request");
    EXPECT_FALSE(reply.find("ok")->asBool());
    EXPECT_EQ(reply.find("error")->asString(), "bad_request");
    reply = server.handleLine(R"({"op":"submit","workload":"?"})");
    EXPECT_FALSE(reply.find("ok")->asBool());
    obs::JsonValue stats = server.statsSnapshot();
    EXPECT_EQ(counterOf(stats, "svc.bad_requests"), 2u);
    server.shutdown();
}

TEST(SvcServer, EndToEndOverTheSocket)
{
    svc::ServerConfig config = testServerConfig("socket");
    config.cacheDir = scratchDir("socket_cache");
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    svc::Client client;
    ASSERT_TRUE(client.connect(config.socketPath).ok());

    obs::JsonValue ping = obs::JsonValue::object();
    ping["op"] = "ping";
    auto pong = client.request(ping);
    ASSERT_TRUE(pong.ok());
    EXPECT_TRUE(pong.value().find("ok")->asBool());

    obs::JsonValue submit = obs::JsonValue::object();
    submit["op"] = "submit";
    submit["workload"] = "Web (Apache)";
    submit["preset"] = "SN4L";
    submit["seed"] = std::uint64_t{51};
    auto fetched = client.submitAndWait(submit);
    ASSERT_TRUE(fetched.ok()) << fetched.error().render();
    ASSERT_NE(fetched.value().find("result"), nullptr)
        << fetched.value().dump();
    auto result = sim::runResultFromJson(*fetched.value().find("result"));
    ASSERT_TRUE(result.has_value());
    EXPECT_GT(result->cycles, 0u);

    // A second client sees the duplicate as a cache hit.
    svc::Client other;
    ASSERT_TRUE(other.connect(config.socketPath).ok());
    auto dup = other.request(submit);
    ASSERT_TRUE(dup.ok());
    const obs::JsonValue *cached = dup.value().find("cached");
    ASSERT_NE(cached, nullptr) << dup.value().dump();
    EXPECT_TRUE(cached->asBool());

    obs::JsonValue statsReq = obs::JsonValue::object();
    statsReq["op"] = "stats";
    auto stats = client.request(statsReq);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(counterOf(stats.value(), "svc.sims_executed"), 1u);
    const obs::JsonValue *cache = stats.value().find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->find("stores")->asUint(), 1u);

    client.close();
    other.close();
    server.shutdown();
}

TEST(SvcServer, MetricsOpServesPrometheusExposition)
{
    svc::ServerConfig config = testServerConfig("metrics");
    config.cacheDir = scratchDir("metrics_cache");
    svc::Server server(config);
    ASSERT_TRUE(server.start().ok());

    obs::JsonValue reply = server.handleLine(submitLine(61));
    ASSERT_TRUE(reply.find("ok")->asBool()) << reply.dump();
    awaitTerminal(server, reply.find("job")->asString());

    obs::JsonValue metrics = server.handleLine(R"({"op":"metrics"})");
    ASSERT_TRUE(metrics.find("ok")->asBool()) << metrics.dump();
    EXPECT_EQ(metrics.find("op")->asString(), "metrics");
    EXPECT_EQ(metrics.find("content_type")->asString(),
              "text/plain; version=0.0.4");
    ASSERT_NE(metrics.find("series"), nullptr);
    EXPECT_EQ(
        metrics.find("series")->find("names")->items().size(), 5u);

    const std::string &body = metrics.find("body")->asString();
    // Counters, per-op histograms and derived gauges all render.
    EXPECT_NE(body.find("# TYPE dcfb_svc_submitted_total counter\n"),
              std::string::npos);
    EXPECT_NE(body.find("dcfb_svc_submitted_total 1\n"),
              std::string::npos);
    EXPECT_NE(
        body.find("# TYPE dcfb_svc_op_submit_latency_us histogram\n"),
        std::string::npos);
    EXPECT_NE(body.find("dcfb_svc_op_submit_latency_us_count 1\n"),
              std::string::npos);
    for (const char *gauge :
         {"dcfb_queue_depth", "dcfb_jobs_inflight", "dcfb_workers",
          "dcfb_cache_hit_rate", "dcfb_pool_occupancy",
          "dcfb_cells_per_second", "dcfb_uptime_seconds"}) {
        EXPECT_NE(body.find(std::string("# TYPE ") + gauge + " gauge\n"),
                  std::string::npos)
            << "missing gauge " << gauge;
    }
    // Every sample line's metric name is already exposition-clean.
    EXPECT_EQ(body.find('('), std::string::npos);

    // After the drain the queue and pool are empty.
    server.requestDrain();
    server.awaitDrained();
    obs::JsonValue after = server.handleLine(R"({"op":"metrics"})");
    EXPECT_NE(after.find("body")->asString().find(
                  "dcfb_jobs_inflight 0\n"),
              std::string::npos);
    server.shutdown();
}

TEST(SvcServer, StatsHistogramsCarryCumulativeBuckets)
{
    svc::Server server(testServerConfig("buckets"));
    ASSERT_TRUE(server.start().ok());
    obs::JsonValue reply = server.handleLine(submitLine(71));
    ASSERT_TRUE(reply.find("ok")->asBool()) << reply.dump();
    awaitTerminal(server, reply.find("job")->asString());

    obs::JsonValue stats = server.statsSnapshot();
    const obs::JsonValue *hists = stats.find("hists");
    ASSERT_NE(hists, nullptr);
    const obs::JsonValue *run = hists->find("svc.run_us");
    ASSERT_NE(run, nullptr);
    const obs::JsonValue *buckets = run->find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_GT(buckets->items().size(), 0u);
    std::uint64_t prev = 0;
    for (const auto &b : buckets->items()) {
        EXPECT_GE(b.find("count")->asUint(), prev);
        prev = b.find("count")->asUint();
    }
    EXPECT_EQ(prev, run->find("count")->asUint());
    server.shutdown();
}

TEST(SvcServer, SpansStitchClientToSimulate)
{
    std::string path = ::testing::TempDir() + "dcfb_svc_spans.json";
    ASSERT_TRUE(obs::Spans::open(path));

    svc::ServerConfig config = testServerConfig("spans");
    config.cacheDir = scratchDir("spans_cache");
    {
        svc::Server server(config);
        ASSERT_TRUE(server.start().ok());

        // The client span is the trace root; its IDs ride the wire.
        std::uint64_t root_trace = 0;
        {
            obs::SpanScope root("client.submit_wait", "test");
            root_trace = root.traceId();
            obs::JsonValue submit = obs::JsonValue::object();
            submit["op"] = "submit";
            submit["workload"] = "Web (Apache)";
            submit["preset"] = "SN4L";
            submit["seed"] = std::uint64_t{81};
            submit["trace_id"] = root.traceId();
            submit["parent_span"] = root.spanId();
            obs::JsonValue reply = server.handleLine(submit.dump());
            ASSERT_TRUE(reply.find("ok")->asBool()) << reply.dump();
            // The daemon echoes the trace id back.
            ASSERT_NE(reply.find("trace_id"), nullptr);
            EXPECT_EQ(reply.find("trace_id")->asUint(), root.traceId());
            awaitTerminal(server, reply.find("job")->asString());
        }
        ASSERT_NE(root_trace, 0u);
        server.shutdown();

        obs::Spans::close();
        ASSERT_FALSE(obs::Spans::enabled());

        std::ifstream in(path);
        ASSERT_TRUE(in.is_open());
        std::stringstream buf;
        buf << in.rdbuf();
        auto doc = obs::JsonValue::parse(buf.str());
        ASSERT_TRUE(doc.has_value());
        ASSERT_EQ(doc->kind(), obs::JsonValue::Kind::Array);

        // Collect the "X" spans: every parent must resolve (no
        // orphans) and the whole submit -> queue -> run -> simulate
        // chain must share the client's trace id.
        char want[24];
        std::snprintf(want, sizeof(want), "0x%llx",
                      static_cast<unsigned long long>(root_trace));
        std::set<std::string> span_ids;
        std::set<std::string> chain_names;
        std::vector<std::string> parent_refs;
        for (const auto &ev : doc->items()) {
            if (ev.find("ph")->asString() != "X")
                continue;
            const obs::JsonValue *args = ev.find("args");
            span_ids.insert(args->find("span")->asString());
            if (const obs::JsonValue *p = args->find("parent"))
                parent_refs.push_back(p->asString());
            if (args->find("trace")->asString() == want)
                chain_names.insert(ev.find("name")->asString());
        }
        for (const std::string &parent : parent_refs)
            EXPECT_TRUE(span_ids.count(parent))
                << "orphaned parent " << parent;
        for (const char *name :
             {"client.submit_wait", "svc.submit", "svc.queue_wait",
              "svc.run", "sim.simulate", "sim.measure"}) {
            EXPECT_TRUE(chain_names.count(name))
                << "span " << name << " missing from trace " << want;
        }
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace dcfb
