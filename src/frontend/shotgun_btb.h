/**
 * @file
 * Shotgun's split BTB (Section II.B / III).
 *
 * Shotgun partitions BTB storage into:
 *  - U-BTB (1.5 K entries): unconditional branches, each carrying a
 *    *call footprint* (bit vector of useful blocks around the branch
 *    target) and a *return footprint* (blocks around the return site);
 *  - C-BTB (128 entries): conditional branches, kept tiny because it is
 *    aggressively prefilled by pre-decoding prefetched blocks;
 *  - RIB (512 entries): return instructions (targets come from the RAS).
 *
 * The paper's §III critique hinges on a U-BTB property this model
 * reproduces: BTB *prefilling* can restore an evicted entry's target
 * (it is decodable from the instruction bytes) but NOT its footprints,
 * which only the retired stream can rebuild.  Entries restored by
 * prefill therefore have invalid footprints, and Fig. 1's "footprint
 * miss ratio" counts exactly those lookups.
 */

#ifndef DCFB_FRONTEND_SHOTGUN_BTB_H
#define DCFB_FRONTEND_SHOTGUN_BTB_H

#include <cstdint>

#include "common/stats.h"
#include "common/types.h"
#include "isa/encoding.h"
#include "mem/cache.h"

namespace dcfb::frontend {

/** Footprint window: blocks [anchor, anchor + kFootprintBlocks). */
constexpr unsigned kFootprintBlocks = 8;

/** U-BTB entry. */
struct UBtbEntry
{
    Addr target = kInvalidAddr;
    isa::InstrKind kind = isa::InstrKind::Jump;
    std::uint8_t callFootprint = 0; //!< blocks around the target
    bool callFpValid = false;
    std::uint8_t retFootprint = 0;  //!< blocks around the return site
    bool retFpValid = false;
};

/** C-BTB entry. */
struct CBtbEntry
{
    Addr target = kInvalidAddr;
};

/** RIB entry: presence identifies the PC as a return. */
struct RibEntry
{};

/** Shotgun BTB sizing (per the original proposal). */
struct ShotgunBtbConfig
{
    unsigned ubtbEntries = 1536; //!< 256 sets x 6 ways
    unsigned ubtbAssoc = 6;
    unsigned cbtbEntries = 128;
    unsigned cbtbAssoc = 4;
    unsigned ribEntries = 512;
    unsigned ribAssoc = 4;
};

/**
 * The three-part Shotgun BTB.
 */
class ShotgunBtb
{
  public:
    explicit ShotgunBtb(const ShotgunBtbConfig &config = ShotgunBtbConfig{})
        : ubtb(config.ubtbEntries / config.ubtbAssoc, config.ubtbAssoc),
          cbtb(config.cbtbEntries / config.cbtbAssoc, config.cbtbAssoc),
          rib(config.ribEntries / config.ribAssoc, config.ribAssoc)
    {}

    /** U-BTB lookup for the unconditional branch at @p pc. */
    UBtbEntry *
    lookupU(Addr pc)
    {
        statSet.add("ubtb_lookups");
        if (auto *line = ubtb.lookup(key(pc))) {
            statSet.add("ubtb_hits");
            if (!line->meta.callFpValid)
                statSet.add("ubtb_footprint_misses");
            return &line->meta;
        }
        statSet.add("ubtb_misses");
        statSet.add("ubtb_footprint_misses");
        return nullptr;
    }

    /** C-BTB lookup for the conditional branch at @p pc. */
    const CBtbEntry *
    lookupC(Addr pc)
    {
        statSet.add("cbtb_lookups");
        if (auto *line = cbtb.lookup(key(pc))) {
            statSet.add("cbtb_hits");
            return &line->meta;
        }
        statSet.add("cbtb_misses");
        return nullptr;
    }

    /** RIB lookup: is the instruction at @p pc a known return? */
    bool
    lookupRib(Addr pc)
    {
        statSet.add("rib_lookups");
        if (rib.lookup(key(pc))) {
            statSet.add("rib_hits");
            return true;
        }
        statSet.add("rib_misses");
        return false;
    }

    /**
     * Install/refresh a U-BTB entry.  @p from_prefill marks entries
     * restored by pre-decoding: their footprints stay invalid until the
     * retired stream rebuilds them.
     */
    UBtbEntry &
    updateU(Addr pc, Addr target, isa::InstrKind kind, bool from_prefill)
    {
        if (auto *line = ubtb.lookup(key(pc))) {
            line->meta.target = target;
            line->meta.kind = kind;
            return line->meta;
        }
        UBtbEntry fresh;
        fresh.target = target;
        fresh.kind = kind;
        if (from_prefill)
            statSet.add("ubtb_prefill_installs");
        ubtb.insert(key(pc), fresh);
        return ubtb.lookup(key(pc))->meta;
    }

    void
    updateC(Addr pc, Addr target)
    {
        if (auto *line = cbtb.lookup(key(pc))) {
            line->meta.target = target;
            return;
        }
        cbtb.insert(key(pc), CBtbEntry{target});
    }

    void
    updateRib(Addr pc)
    {
        if (!rib.lookup(key(pc)))
            rib.insert(key(pc), RibEntry{});
    }

    /** Stat-free mutable U-BTB access (footprint construction paths;
     *  these are retired-stream updates, not BPU lookups, so they must
     *  not perturb the Fig. 1 lookup/miss accounting). */
    UBtbEntry *
    findU(Addr pc)
    {
        auto *line = ubtb.lookup(key(pc), /*touch=*/false);
        return line ? &line->meta : nullptr;
    }

    /** Presence probes without stats (tests). */
    bool containsU(Addr pc) const { return ubtb.lookup(key(pc)) != nullptr; }
    bool containsC(Addr pc) const { return cbtb.lookup(key(pc)) != nullptr; }
    bool containsRib(Addr pc) const { return rib.lookup(key(pc)) != nullptr; }

    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }

  private:
    static Addr key(Addr pc) { return pc << kBlockShift; }

    mem::SetAssocCache<UBtbEntry> ubtb;
    mem::SetAssocCache<CBtbEntry> cbtb;
    mem::SetAssocCache<RibEntry> rib;
    StatSet statSet;
};

} // namespace dcfb::frontend

#endif // DCFB_FRONTEND_SHOTGUN_BTB_H
