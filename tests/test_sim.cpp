/**
 * @file
 * Integration tests for the simulator: end-to-end runs of every preset,
 * ordering sanity (prefetchers reduce frontend stalls; perfect frontend
 * dominates), decoupled-engine behaviour (FTQ/empty-FTQ stalls, Shotgun
 * footprint misses), determinism, and metric identities.
 */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/profiles.h"

namespace dcfb::sim {
namespace {

/** Small fast windows for integration testing. */
RunWindows
fastWindows()
{
    return RunWindows{40000, 60000};
}

workload::WorkloadProfile
testProfile()
{
    auto p = workload::serverProfile("Web (Apache)");
    return p;
}

SystemConfig
fastConfig(Preset preset)
{
    SystemConfig cfg = makeConfig(testProfile(), preset);
    cfg.functionalWarmInstrs = 400000;
    return cfg;
}

/** One cached baseline for the ordering tests. */
const RunResult &
baselineRun()
{
    static RunResult res =
        simulate(fastConfig(Preset::Baseline), fastWindows());
    return res;
}

TEST(Simulator, BaselineProducesSaneIpc)
{
    const auto &res = baselineRun();
    EXPECT_GT(res.ipc(), 0.2);
    EXPECT_LT(res.ipc(), 3.0);
    EXPECT_GT(res.instructions, 10000u);
    // Stat identity: hits + misses = accesses.
    EXPECT_EQ(res.stat("l1i.l1i_hits") + res.stat("l1i.l1i_misses"),
              res.stat("l1i.l1i_accesses"));
    // Miss classes partition misses.
    EXPECT_EQ(res.stat("l1i.l1i_seq_misses") +
                  res.stat("l1i.l1i_disc_misses"),
              res.stat("l1i.l1i_misses"));
}

TEST(Simulator, DeterministicAcrossRuns)
{
    auto a = simulate(fastConfig(Preset::SN4L), fastWindows());
    auto b = simulate(fastConfig(Preset::SN4L), fastWindows());
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.stat("l1i.l1i_misses"), b.stat("l1i.l1i_misses"));
}

TEST(Simulator, DifferentSeedsDiffer)
{
    auto cfg = fastConfig(Preset::Baseline);
    cfg.runSeed = 1234;
    auto a = simulate(cfg, fastWindows());
    EXPECT_NE(a.instructions, baselineRun().instructions);
}

TEST(Simulator, PrefetchingImprovesOverBaseline)
{
    auto sn4l = simulate(fastConfig(Preset::SN4L), fastWindows());
    EXPECT_GT(speedup(sn4l, baselineRun()), 1.02);
    EXPECT_LT(sn4l.stat("l1i.l1i_misses"),
              baselineRun().stat("l1i.l1i_misses"));
    EXPECT_GT(fscr(sn4l, baselineRun()), 0.05);
}

TEST(Simulator, FullProposalBeatsSn4lAlone)
{
    auto sn4l = simulate(fastConfig(Preset::SN4L), fastWindows());
    auto full = simulate(fastConfig(Preset::SN4LDisBtb), fastWindows());
    EXPECT_GE(speedup(full, baselineRun()),
              speedup(sn4l, baselineRun()) * 0.99);
}

TEST(Simulator, SelectivityBeatsPlainN4lOnAccuracy)
{
    auto n4l = simulate(fastConfig(Preset::N4LPlain), fastWindows());
    auto sn4l = simulate(fastConfig(Preset::SN4L), fastWindows());
    double n4l_acc = n4l.ratio("l1i.pf_useful", "l1i.pf_issued");
    double sn4l_acc = sn4l.ratio("l1i.pf_useful", "l1i.pf_issued");
    EXPECT_GT(sn4l_acc, n4l_acc);
}

TEST(Simulator, PerfectL1iEliminatesInstructionMisses)
{
    auto perfect = simulate(fastConfig(Preset::PerfectL1i), fastWindows());
    EXPECT_EQ(perfect.stat("l1i.l1i_misses"), 0u);
    EXPECT_GT(speedup(perfect, baselineRun()), 1.1);
}

TEST(Simulator, PerfectBtbAddsOnTopOfPerfectL1i)
{
    auto p1 = simulate(fastConfig(Preset::PerfectL1i), fastWindows());
    auto p2 = simulate(fastConfig(Preset::PerfectL1iBtb), fastWindows());
    EXPECT_GE(p2.ipc(), p1.ipc());
    EXPECT_EQ(p2.stat("fe.fe_btb_redirects"), 0u);
}

TEST(Simulator, NxlDepthIncreasesBandwidth)
{
    auto nl = simulate(fastConfig(Preset::NL), fastWindows());
    auto n8 = simulate(fastConfig(Preset::N8L), fastWindows());
    EXPECT_GT(n8.stat("l1i.l1i_external_requests"),
              nl.stat("l1i.l1i_external_requests"));
}

TEST(Simulator, ConfluenceUsesBigBtbAndPrefetches)
{
    auto conf = simulate(fastConfig(Preset::Confluence), fastWindows());
    EXPECT_GT(conf.stat("pf.shift_issued"), 0u);
    EXPECT_GT(speedup(conf, baselineRun()), 1.0);
}

TEST(Simulator, BoomerangRunsAndPrefetches)
{
    auto boom = simulate(fastConfig(Preset::Boomerang), fastWindows());
    EXPECT_GT(boom.ipc(), 0.2);
    EXPECT_GT(boom.stat("fe.ftq_pushes"), 1000u);
    EXPECT_GT(boom.stat("l1i.pf_issued"), 0u);
}

TEST(Simulator, ShotgunRunsWithFootprints)
{
    auto sg = simulate(fastConfig(Preset::Shotgun), fastWindows());
    EXPECT_GT(sg.ipc(), 0.2);
    EXPECT_GT(sg.stat("sg.ubtb_lookups"), 0u);
    EXPECT_GT(sg.stat("fe.sg_footprint_prefetches"), 0u);
    // Footprint misses exist but are not universal (Fig. 1: 4-31 %).
    double fp_miss = sg.ratio("sg.ubtb_footprint_misses",
                              "sg.ubtb_lookups");
    EXPECT_GT(fp_miss, 0.0);
    EXPECT_LT(fp_miss, 0.9);
}

TEST(Simulator, ShotgunEmptyFtqStallsExist)
{
    auto sg = simulate(fastConfig(Preset::Shotgun), fastWindows());
    EXPECT_GT(sg.stat("fe.fe_empty_ftq_stall_cycles"), 0u);
}

TEST(Simulator, CmalWithinUnitInterval)
{
    auto sn4l = simulate(fastConfig(Preset::SN4L), fastWindows());
    double c = sn4l.cmal();
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    EXPECT_GT(c, 0.3); // SN4L is a timely prefetcher
}

TEST(Simulator, ProposalReducesFrontendStallsMost)
{
    auto full = simulate(fastConfig(Preset::SN4LDisBtb), fastWindows());
    auto nl = simulate(fastConfig(Preset::NL), fastWindows());
    EXPECT_GT(fscr(full, baselineRun()), fscr(nl, baselineRun()));
}

TEST(Experiment, GridRunsSubset)
{
    ExperimentGrid grid({Preset::Baseline, Preset::SN4L},
                        RunWindows{20000, 30000});
    grid.run({"Web Frontend"});
    const auto &b = grid.at("Web Frontend", Preset::Baseline);
    const auto &s = grid.at("Web Frontend", Preset::SN4L);
    EXPECT_GT(b.ipc(), 0.0);
    EXPECT_GE(grid.gmeanSpeedup(Preset::SN4L, Preset::Baseline), 0.9);
    EXPECT_GT(grid.mean(Preset::SN4L,
                        [](const RunResult &r) { return r.ipc(); }),
              0.0);
    (void)s;
}

TEST(Report, TableRendersAligned)
{
    Table t({"a", "bbb"});
    t.addRow({"x", "y"});
    std::string out = t.render();
    EXPECT_NE(out.find("a"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_EQ(Table::pct(0.1234), "12.3%");
    EXPECT_EQ(Table::num(1.5, 1), "1.5");
}

TEST(Config, PresetNamesUnique)
{
    for (int a = 0; a <= static_cast<int>(Preset::PerfectL1iBtb); ++a) {
        for (int b = a + 1; b <= static_cast<int>(Preset::PerfectL1iBtb);
             ++b) {
            EXPECT_NE(presetName(static_cast<Preset>(a)),
                      presetName(static_cast<Preset>(b)));
        }
    }
}

TEST(Config, VlProfileEnablesDvLlc)
{
    auto p = workload::serverProfile("Web Frontend", true);
    auto cfg = makeConfig(p, Preset::SN4LDisBtb);
    EXPECT_TRUE(cfg.llc.dvllc);
    EXPECT_TRUE(cfg.l1i.fetchFootprints);
    EXPECT_TRUE(cfg.sn4l.disTable.byteOffsets);
}

} // namespace
} // namespace dcfb::sim
