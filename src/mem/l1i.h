/**
 * @file
 * L1 instruction cache with MSHRs, optional prefetch buffer, and the
 * per-line metadata the SN4L prefetcher needs (prefetch flag + 4-bit
 * local prefetch status, Section V.A).
 *
 * The L1i is where the paper's metrics are measured:
 *  - miss classification into sequential vs. discontinuity (Fig. 2),
 *  - covered memory access latency, CMAL (Figs. 4/13),
 *  - external bandwidth usage (Fig. 5),
 *  - cache lookups (Fig. 14),
 *  - prefetch usefulness (feeds SeqTable updates).
 *
 * Prefetchers do not see a wrong-path flag: hardware cannot distinguish
 * wrong-path fetches at access time, so listeners fire identically; only
 * the *statistics* separate correct- and wrong-path demand traffic.
 */

#ifndef DCFB_MEM_L1I_H
#define DCFB_MEM_L1I_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "exec/arena.h"
#include "mem/cache.h"
#include "mem/llc.h"
#include "mem/prefetch_buffer.h"

namespace dcfb::rt {
class FaultInjector;
class InvariantRegistry;
} // namespace dcfb::rt

namespace dcfb::mem {

/** L1i configuration (Table III). */
struct L1iConfig
{
    std::size_t capacityBytes = 32 * 1024;
    unsigned assoc = 8;
    Cycle hitLatency = 4;       //!< pipelined; hits do not stall fetch
    unsigned mshrs = 32;
    bool usePrefetchBuffer = false; //!< NXL study / Shotgun configurations
    std::size_t prefetchBufferEntries = 64;
    bool fetchFootprints = false;   //!< VL-ISA: fetch BFs with blocks
};

/** Per-line metadata. */
struct L1iMeta
{
    bool prefetched = false;     //!< brought in by the prefetcher, unused
    bool demanded = false;       //!< demand-accessed at least once
    std::uint8_t localStatus = 0xf; //!< SN4L 4-bit local prefetch status
    Cycle fillLatency = 0;       //!< LLC round trip that filled the line
    Cycle filledAt = 0;          //!< cycle the fill completed
};

/**
 * Observer interface for prefetchers and instrumentation.
 */
class L1iListener
{
  public:
    virtual ~L1iListener() = default;

    /** Every demand access (hit or miss), correct or wrong path. */
    virtual void onDemandAccess(Addr block_addr, bool hit)
    {
        (void)block_addr;
        (void)hit;
    }

    /** A demand miss; @p sequential means spatially next to the last
     *  demanded block. */
    virtual void onDemandMiss(Addr block_addr, bool sequential)
    {
        (void)block_addr;
        (void)sequential;
    }

    /** A block arrived from the LLC (demand or prefetch fill). */
    virtual void
    onFill(Addr block_addr, bool was_prefetch, const BranchFootprint *bf)
    {
        (void)block_addr;
        (void)was_prefetch;
        (void)bf;
    }

    /** A block left the cache. */
    virtual void onEvict(Addr block_addr, bool was_prefetch, bool demanded)
    {
        (void)block_addr;
        (void)was_prefetch;
        (void)demanded;
    }

    /** First demand use of a line the prefetcher brought in. */
    virtual void onPrefetchUsed(Addr block_addr) { (void)block_addr; }
};

/**
 * The L1 instruction cache.
 */
class L1iCache
{
  public:
    /** Outcome of a demand access. */
    struct DemandResult
    {
        bool hit = false;          //!< in cache or prefetch buffer
        Cycle ready = 0;           //!< cycle the instructions are usable
        bool fromPrefetchBuffer = false;
        bool hitInFlight = false;  //!< merged with an outstanding fill
    };

    /** Outcome of a prefetch attempt. */
    enum class PfOutcome {
        InCache,  //!< already present: no request sent
        InBuffer, //!< already in the prefetch buffer
        InFlight, //!< an MSHR already tracks this block
        Issued,   //!< request sent to the LLC
        NoMshr,   //!< dropped: MSHR file full
    };

    L1iCache(const L1iConfig &config, Llc &llc_,
             exec::Arena *arena = nullptr);

    /** Arena bytes this configuration's flat tables want (line array +
     *  MSHR file); used to size a cell's slab up front. */
    static std::size_t
    arenaBytes(const L1iConfig &config)
    {
        auto sets = static_cast<unsigned>(config.capacityBytes /
                                          kBlockBytes / config.assoc);
        return SetAssocCache<L1iMeta>::storageBytes(sets, config.assoc) +
            config.mshrs * sizeof(MshrEntry);
    }

    void setListener(L1iListener *l) { listener = l; }

    /** Secondary, instrumentation-only observer (benches/experiments);
     *  receives the same callbacks after the primary listener. */
    void setObserver(L1iListener *l) { observer = l; }

    /** Attach a fault injector perturbing memory responses (delay faults
     *  at issue, prefetch-response drops at fill completion).  nullptr
     *  restores unperturbed behaviour. */
    void setFaultInjector(rt::FaultInjector *f) { injector = f; }

    /**
     * Register this cache's structural invariants: MSHR uniqueness and
     * occupancy bounds, miss-resolution latency (every outstanding miss
     * resolves within @p miss_resolution_bound cycles of issue), line
     * metadata consistency, and hit/miss counter conservation.  All
     * checks are read-only (no statistics are perturbed).
     */
    void registerInvariants(rt::InvariantRegistry &reg,
                            Cycle miss_resolution_bound);

    /** Read-only view of one outstanding MSHR (failure snapshots). */
    struct MshrView
    {
        Addr blockAddr;
        Cycle issued;
        Cycle ready;
        bool isPrefetch;
        bool demanded;
    };

    /** Snapshot of the outstanding-miss file (failure snapshots/tests). */
    std::vector<MshrView> mshrState() const;

    /**
     * Demand fetch of the block containing @p addr at cycle @p now.
     * @p wrong_path marks squashable wrong-path fetches (statistics
     * only; behaviour is identical).
     */
    DemandResult demandAccess(Addr addr, Cycle now,
                              bool wrong_path = false);

    /** Prefetch the block containing @p addr (directly into the cache,
     *  or into the prefetch buffer when configured). */
    PfOutcome prefetch(Addr addr, Cycle now);

    /** Complete fills whose data has arrived by @p now. */
    void tick(Cycle now);

    /** Functional warmup: install the block as a demanded line without
     *  timing or statistics. */
    void warmInsert(Addr addr);

    /** Counted cache lookup (Fig. 14): presence in cache or buffer. */
    bool lookup(Addr addr);

    /** Presence probe without statistics (internal/tests). */
    bool probe(Addr addr) const;

    /** True when an MSHR tracks the block. */
    bool inFlight(Addr addr) const;

    /** Completion cycle of the outstanding fill for @p addr (0 when no
     *  MSHR tracks the block).  Used by BTB-directed engines that stall
     *  until a block arrives for pre-decoding. */
    Cycle fillReadyCycle(Addr addr) const;

    /** Per-line metadata (nullptr when not resident). */
    L1iMeta *lineMeta(Addr addr);

    /** The branch footprint delivered with the block's last fill. */
    const BranchFootprint *footprintFor(Addr addr) const;

    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }
    const L1iConfig &config() const { return cfg; }

  private:
    struct MshrEntry
    {
        Addr blockAddr = kInvalidAddr;
        Cycle issued = 0;
        Cycle ready = 0;
        bool isPrefetch = false;
        bool demanded = false;
        Cycle demandCycle = 0;
        bool bfValid = false;
        BranchFootprint bf;
    };

    MshrEntry *findMshr(Addr block_addr);
    const MshrEntry *findMshr(Addr block_addr) const;

    /** Issue a fill to the LLC and allocate an MSHR. */
    MshrEntry &issueFill(Addr block_addr, Cycle now, bool is_prefetch);

    /** Install a completed fill into the cache (or buffer). */
    void installFill(const MshrEntry &entry);

    /** Handle the CMAL/use bookkeeping for a demand hit on a
     *  prefetched resident line. */
    void notePrefetchedLineUse(Addr block_addr, L1iMeta &meta, Cycle now,
                               bool sequential);

    /** Record eviction statistics/attribution for a victim line. */
    void noteEviction(Addr block_addr, const L1iMeta &meta, Cycle now);

    /** Timing of a fill that landed in the prefetch buffer. */
    struct BufferFill
    {
        Cycle latency = 0;
        Cycle filledAt = 0;
    };

    L1iConfig cfg;
    Llc &llc;
    SetAssocCache<L1iMeta> array;
    PrefetchBuffer buffer;
    std::unordered_map<Addr, BufferFill> bufferFillLatency;
    std::unordered_map<Addr, BranchFootprint> footprints;
    exec::ArenaVector<MshrEntry> mshrs;
    L1iListener *listener = nullptr;
    L1iListener *observer = nullptr;
    rt::FaultInjector *injector = nullptr;
    Addr lastDemandBlock = kInvalidAddr;
    StatSet statSet;

    // Typed handles for the per-access hot path (registered once in the
    // constructor; no string hashing per event).
    obs::Counter cLookups, cAccesses, cWpAccesses, cHits, cPfBufferHits,
        cMisses, cSeqMisses, cDiscMisses, cWpMisses, cEvictions,
        cExternalRequests, cPfAttempts, cPfIssued, cPfUseful, cPfLate,
        cPfUseless, cPfDroppedMshr, cMshrPressure, cCmalCovered, cCmalFull,
        cDemandMissCycles;
    obs::Histogram hMissLatency, hPfToUse, hMshrOccupancy;
};

} // namespace dcfb::mem

#endif // DCFB_MEM_L1I_H
