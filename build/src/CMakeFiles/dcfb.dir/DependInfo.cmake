
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/dcfb.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/common/stats.cpp.o.d"
  "/root/repo/src/frontend/tage.cpp" "src/CMakeFiles/dcfb.dir/frontend/tage.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/frontend/tage.cpp.o.d"
  "/root/repo/src/isa/encoding.cpp" "src/CMakeFiles/dcfb.dir/isa/encoding.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/isa/encoding.cpp.o.d"
  "/root/repo/src/isa/predecoder.cpp" "src/CMakeFiles/dcfb.dir/isa/predecoder.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/isa/predecoder.cpp.o.d"
  "/root/repo/src/isa/vl_encoding.cpp" "src/CMakeFiles/dcfb.dir/isa/vl_encoding.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/isa/vl_encoding.cpp.o.d"
  "/root/repo/src/mem/l1i.cpp" "src/CMakeFiles/dcfb.dir/mem/l1i.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/mem/l1i.cpp.o.d"
  "/root/repo/src/mem/llc.cpp" "src/CMakeFiles/dcfb.dir/mem/llc.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/mem/llc.cpp.o.d"
  "/root/repo/src/mem/prefetch_buffer.cpp" "src/CMakeFiles/dcfb.dir/mem/prefetch_buffer.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/mem/prefetch_buffer.cpp.o.d"
  "/root/repo/src/noc/mesh.cpp" "src/CMakeFiles/dcfb.dir/noc/mesh.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/noc/mesh.cpp.o.d"
  "/root/repo/src/prefetch/confluence.cpp" "src/CMakeFiles/dcfb.dir/prefetch/confluence.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/prefetch/confluence.cpp.o.d"
  "/root/repo/src/prefetch/sn4l_dis_btb.cpp" "src/CMakeFiles/dcfb.dir/prefetch/sn4l_dis_btb.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/prefetch/sn4l_dis_btb.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/CMakeFiles/dcfb.dir/sim/config.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/sim/config.cpp.o.d"
  "/root/repo/src/sim/decoupled.cpp" "src/CMakeFiles/dcfb.dir/sim/decoupled.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/sim/decoupled.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/dcfb.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/fetch.cpp" "src/CMakeFiles/dcfb.dir/sim/fetch.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/sim/fetch.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/CMakeFiles/dcfb.dir/sim/report.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/sim/report.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/dcfb.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/CMakeFiles/dcfb.dir/sim/system.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/sim/system.cpp.o.d"
  "/root/repo/src/workload/cfg.cpp" "src/CMakeFiles/dcfb.dir/workload/cfg.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/workload/cfg.cpp.o.d"
  "/root/repo/src/workload/image.cpp" "src/CMakeFiles/dcfb.dir/workload/image.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/workload/image.cpp.o.d"
  "/root/repo/src/workload/profiles.cpp" "src/CMakeFiles/dcfb.dir/workload/profiles.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/workload/profiles.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/dcfb.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/dcfb.dir/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
