/**
 * @file
 * Typed, hierarchical statistics registry.
 *
 * Counters and histograms are registered once, by name, against a
 * StatRegistry; registration interns the name to a stable slot and hands
 * back a trivially-copyable handle.  Hot paths bump the handle -- a
 * single pointer-indirect add, no per-event string hashing -- while the
 * registry keeps the name -> slot mapping for reporting.
 *
 * Hierarchical scoping uses dotted names ("l1i.misses", "pf.chain_depth");
 * the Scope helper prepends a component prefix so subsystems can register
 * against a shared registry without repeating their prefix.
 *
 * Histograms are log2-bucketed: bucket 0 holds exactly the value 0 and
 * bucket i (i >= 1) holds [2^(i-1), 2^i - 1].  That gives cheap constant
 * cost per sample (std::bit_width) and bounded storage for unbounded
 * quantities such as miss latencies, prefetch-to-use distances, proactive
 * chain depths and queue occupancies.
 *
 * Threading model: a StatRegistry and its handles are single-threaded
 * by design -- hot-path bumps must never pay for synchronization.  The
 * parallel experiment runner therefore gives every (workload x design)
 * cell its own registries (one per component, inside that cell's
 * System) and merges the per-cell snapshots into the grid only after
 * the pool barrier; no registry is ever touched by two threads.  The
 * shared discard slots that back *default-constructed* handles are
 * thread_local so a not-yet-registered handle bumped on a worker
 * cannot race another worker's.
 */

#ifndef DCFB_OBS_REGISTRY_H
#define DCFB_OBS_REGISTRY_H

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dcfb::obs {

/** Number of log2 buckets: one for zero plus one per uint64 bit width. */
inline constexpr unsigned kHistBuckets = 65;

/** Bucket index of @p value: 0 for 0, otherwise bit_width(value). */
constexpr unsigned
histBucket(std::uint64_t value)
{
    return value == 0 ? 0u : static_cast<unsigned>(std::bit_width(value));
}

/** Smallest value in bucket @p i. */
constexpr std::uint64_t
histBucketLow(unsigned i)
{
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

/** Largest value in bucket @p i. */
constexpr std::uint64_t
histBucketHigh(unsigned i)
{
    if (i == 0)
        return 0;
    if (i >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
}

/**
 * Typed counter handle.  Trivially copyable; a default-constructed
 * handle accumulates into a shared discard slot so components can hold
 * handles as members before registration.
 */
class Counter
{
  public:
    Counter() : slot(&discard) {}

    void add(std::uint64_t delta = 1) { *slot += delta; }
    std::uint64_t value() const { return *slot; }

  private:
    friend class StatRegistry;
    explicit Counter(std::uint64_t *s) : slot(s) {}

    // thread_local: unregistered handles on different workers must not
    // share (and race on) one sink slot.
    static inline thread_local std::uint64_t discard = 0;
    std::uint64_t *slot;
};

class StatRegistry;

/**
 * Lazily-binding counter handle for hot paths that historically used
 * string adds (StatRegistry::add).
 *
 * A string add interns its name on *first use*, so a counter that never
 * fires never appears in the registry -- and therefore never appears in
 * a RunResult's stats map.  Converting such a site to an eagerly
 * registered Counter would create the name at zero and change reported
 * results.  LazyCounter keeps the exact lazy semantics: the name is
 * interned on the first add() and every later add() is the same
 * single pointer-indirect bump a Counter does.
 *
 * The name must outlive the handle (use string literals).  A
 * default-constructed handle discards, like Counter.
 */
class LazyCounter
{
  public:
    LazyCounter() = default;
    LazyCounter(StatRegistry &registry, const char *name_)
        : reg(&registry), name(name_)
    {
    }

    inline void add(std::uint64_t delta = 1);
    std::uint64_t value() const { return handle.value(); }

  private:
    StatRegistry *reg = nullptr;
    const char *name = "";
    Counter handle; //!< discards until bound
    bool bound = false;
};

/** Raw accumulation state of one histogram. */
struct HistData
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kHistBuckets> buckets{};

    void
    reset()
    {
        count = sum = max = 0;
        buckets.fill(0);
    }
};

/** Typed histogram handle (same conventions as Counter). */
class Histogram
{
  public:
    Histogram() : data(&discard) {}

    void
    sample(std::uint64_t value)
    {
        HistData &d = *data;
        ++d.count;
        d.sum += value;
        if (value > d.max)
            d.max = value;
        ++d.buckets[histBucket(value)];
    }

    const HistData &raw() const { return *data; }

  private:
    friend class StatRegistry;
    explicit Histogram(HistData *d) : data(d) {}

    static inline thread_local HistData discard{};
    HistData *data;
};

/**
 * Value-type histogram snapshot used by RunResult and the JSON report
 * writer.  Only non-empty buckets are kept, as (bucket index, count)
 * pairs in ascending index order.
 */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::vector<std::pair<unsigned, std::uint64_t>> buckets;

    double
    mean() const
    {
        return count ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
    }

    static HistogramSnapshot from(const HistData &d);

    /** Accumulate another snapshot (per-component merge). */
    void merge(const HistogramSnapshot &other);

    bool operator==(const HistogramSnapshot &) const = default;
};

/**
 * The registry: interns names to stable slots and hands out handles.
 * Re-registering a name returns a handle to the same slot, so IDs are
 * stable across components and across calls.
 */
class StatRegistry
{
  public:
    /** Register (or re-find) counter @p name. */
    Counter counter(std::string_view name);

    /** Register (or re-find) histogram @p name. */
    Histogram histogram(std::string_view name);

    /** A counter handle that interns @p name on first add (hot-path
     *  replacement for string adds; see LazyCounter). */
    LazyCounter
    lazyCounter(const char *name)
    {
        return LazyCounter(*this, name);
    }

    /** Slot index of counter @p name (registering it if new).  Exposed
     *  so tests can assert interning stability. */
    std::size_t counterIndex(std::string_view name);

    /** Cold-path string add: interns on first use. */
    void add(std::string_view name, std::uint64_t delta = 1);

    /** Cold-path read; absent counters read as zero. */
    std::uint64_t get(std::string_view name) const;

    /** Zero every counter and histogram; names and slots survive. */
    void reset();

    std::size_t counterCount() const { return counterSlots.size(); }
    std::size_t histogramCount() const { return histSlots.size(); }

    /** All counters, sorted by name. */
    std::map<std::string, std::uint64_t> counters() const;

    /** All histograms, sorted by name, as snapshots. */
    std::map<std::string, HistogramSnapshot> histograms() const;

  private:
    // Deques give stable element addresses across growth.
    std::deque<std::uint64_t> counterSlots;
    std::deque<HistData> histSlots;
    std::map<std::string, std::size_t, std::less<>> counterIds;
    std::map<std::string, std::size_t, std::less<>> histIds;
};

inline void
LazyCounter::add(std::uint64_t delta)
{
    if (!bound) [[unlikely]] {
        if (!reg) {
            handle.add(delta); // unbound handle: discard, like Counter
            return;
        }
        handle = reg->counter(name);
        bound = true;
    }
    handle.add(delta);
}

/**
 * Dotted-prefix view of a registry: Scope(reg, "l1i").counter("misses")
 * registers "l1i.misses".
 */
class Scope
{
  public:
    Scope(StatRegistry &registry, std::string prefix_)
        : reg(registry), prefix(std::move(prefix_))
    {
    }

    Counter
    counter(std::string_view name) const
    {
        return reg.counter(qualified(name));
    }

    Histogram
    histogram(std::string_view name) const
    {
        return reg.histogram(qualified(name));
    }

    Scope
    scope(std::string_view sub) const
    {
        return Scope(reg, qualified(sub));
    }

    std::string
    qualified(std::string_view name) const
    {
        return prefix.empty() ? std::string(name)
                              : prefix + "." + std::string(name);
    }

  private:
    StatRegistry &reg;
    std::string prefix;
};

} // namespace dcfb::obs

#endif // DCFB_OBS_REGISTRY_H
