/**
 * @file
 * SeqTable: SN4L's usefulness metadata (Section V.A).
 *
 * A direct-mapped, tagless table of single-bit prefetch-status entries,
 * one per instruction block (16 K entries = 2 KB in the paper's
 * configuration).  All entries initialize to 1 ("prefetch the first
 * time").  Because the table is tagless, distinct blocks alias onto the
 * same entry; Section VII.C reports a 28 % conflict ratio that still
 * yields 92 % correct predictions, which is why no tags are needed.
 */

#ifndef DCFB_PREFETCH_SEQ_TABLE_H
#define DCFB_PREFETCH_SEQ_TABLE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "exec/arena.h"

namespace dcfb::prefetch {

/**
 * Direct-mapped tagless bit table keyed by block number.
 */
class SeqTable
{
  public:
    /**
     * @param entries_ table size (power of two); 0 = unlimited (one
     *                 dedicated entry per block, the Fig. 11 reference)
     */
    explicit SeqTable(std::size_t entries_ = 16 * 1024,
                      exec::Arena *arena = nullptr)
        : entries(entries_),
          bits(entries_ ? entries_ : 0, true,
               exec::ArenaAlloc<bool>(arena)),
          owners(entries_ ? entries_ : 0, kInvalidAddr,
                 exec::ArenaAlloc<Addr>(arena)),
          cConflicts(statSet.lazy("seqtable_conflicts")),
          cWrites(statSet.lazy("seqtable_writes"))
    {}

    /** Arena bytes an @p entries_ table wants (bit table + owners). */
    static std::size_t
    arenaBytes(std::size_t entries_)
    {
        return entries_ / 8 + entries_ * sizeof(Addr) + 64;
    }

    /** Read the prefetch-status bit for @p block_addr. */
    bool
    get(Addr block_addr) const
    {
        if (unlimited()) {
            auto it = dedicated.find(blockNumber(block_addr));
            return it == dedicated.end() ? true : it->second;
        }
        return bits[index(block_addr)];
    }

    /** Write the prefetch-status bit for @p block_addr. */
    void
    set(Addr block_addr, bool useful)
    {
        if (unlimited()) {
            dedicated[blockNumber(block_addr)] = useful;
            return;
        }
        std::size_t i = index(block_addr);
        // Conflict instrumentation: remember the last owner per entry.
        // Flat pre-sized array (kInvalidAddr = never written): the old
        // per-write unordered_map probe was a measurable hot path.
        Addr owner = blockNumber(block_addr);
        if (owners[i] != owner && owners[i] != kInvalidAddr)
            cConflicts.add();
        owners[i] = owner;
        cWrites.add();
        bits[i] = useful;
    }

    /**
     * Status of the four blocks following @p block_addr, packed with the
     * nearest block in bit 0 (this is what SN4L copies into the line's
     * local prefetch status on fill).
     */
    std::uint8_t
    statusOfNextFour(Addr block_addr) const
    {
        std::uint8_t packed = 0;
        for (unsigned i = 0; i < 4; ++i) {
            if (get(block_addr + Addr{i + 1} * kBlockBytes))
                packed |= 1u << i;
        }
        return packed;
    }

    bool unlimited() const { return entries == 0; }
    std::size_t size() const { return entries; }

    /** Storage cost: one bit per entry (tagless). */
    std::uint64_t storageBits() const { return entries; }

    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }

  private:
    std::size_t
    index(Addr block_addr) const
    {
        return static_cast<std::size_t>(blockNumber(block_addr)) &
            (entries - 1);
    }

    std::size_t entries;
    std::vector<bool, exec::ArenaAlloc<bool>> bits;
    std::unordered_map<Addr, bool> dedicated; //!< unlimited mode
    StatSet statSet;
    exec::ArenaVector<Addr> owners; //!< last writer per entry (stats only)
    obs::LazyCounter cConflicts;
    obs::LazyCounter cWrites;
};

} // namespace dcfb::prefetch

#endif // DCFB_PREFETCH_SEQ_TABLE_H
