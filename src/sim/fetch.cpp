#include "sim/fetch.h"

namespace dcfb::sim {

// The generic engine is instantiated here once; specialized
// instantiations (one per preset family) live with their selection
// logic in system.cpp.
template class CoupledFetchEngineT<prefetch::InstrPrefetcher>;

} // namespace dcfb::sim
