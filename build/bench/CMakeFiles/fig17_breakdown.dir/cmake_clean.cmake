file(REMOVE_RECURSE
  "CMakeFiles/fig17_breakdown.dir/fig17_breakdown.cpp.o"
  "CMakeFiles/fig17_breakdown.dir/fig17_breakdown.cpp.o.d"
  "fig17_breakdown"
  "fig17_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
