/**
 * @file
 * Confluence, modeled as SHIFT + a 16 K-entry BTB (Section VI.D.1).
 *
 * SHIFT is a temporal instruction prefetcher: the sequence of demanded
 * instruction blocks is recorded in a history buffer, an index table
 * maps a block address to its most recent position in the history, and
 * on a demand miss the recorded stream is replayed ahead of the fetch
 * stream.  The real system virtualizes this metadata in the LLC; the
 * paper evaluates an upper-bound Confluence with dedicated storage and a
 * 16 K-entry BTB standing in for its BTB prefilling, and we model the
 * same configuration (the simulator's Confluence preset pairs this
 * prefetcher with a 16 K-entry conventional BTB).
 */

#ifndef DCFB_PREFETCH_CONFLUENCE_H
#define DCFB_PREFETCH_CONFLUENCE_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "exec/arena.h"
#include "prefetch/prefetcher.h"

namespace dcfb::prefetch {

/** SHIFT configuration. */
struct ConfluenceConfig
{
    std::size_t historyEntries = 128 * 1024; //!< ~200 KB-class metadata
    std::size_t indexEntries = 32 * 1024;    //!< direct-mapped index
    unsigned streamDegree = 8;  //!< blocks replayed on a stream (re)start
    unsigned lookahead = 4;     //!< blocks kept in flight while streaming
};

/**
 * SHIFT-style temporal stream prefetcher.
 */
class ConfluencePrefetcher final : public InstrPrefetcher
{
  public:
    ConfluencePrefetcher(mem::L1iCache &l1i_,
                         const ConfluenceConfig &config = ConfluenceConfig{},
                         exec::Arena *arena = nullptr);

    /** Arena bytes this configuration's history and index want. */
    static std::size_t arenaBytes(const ConfluenceConfig &config);

    std::string name() const override { return "Confluence"; }
    void tick(Cycle now) override;
    std::uint64_t storageBits() const override;

    void onDemandAccess(Addr block_addr, bool hit) override;
    void onDemandMiss(Addr block_addr, bool sequential) override;

    const StatSet &stats() const { return statSet; }

  private:
    struct IndexEntry
    {
        Addr blockAddr = kInvalidAddr;
        std::uint64_t position = 0; //!< absolute history position
        /** The block's previous occurrence.  A miss records the block
         *  into the history *before* the stream lookup runs, so the
         *  replay must start from the occurrence before that one. */
        std::uint64_t prev = kNoPosition;
    };

    static constexpr std::uint64_t kNoPosition = ~std::uint64_t{0};

    void issueAhead(Cycle now);

    mem::L1iCache &l1i;
    ConfluenceConfig cfg;
    exec::ArenaVector<Addr> history; //!< circular, absolute positions
    std::uint64_t writePos = 0;
    exec::ArenaVector<IndexEntry> index;
    Addr lastRecorded = kInvalidAddr;

    bool streaming = false;
    std::uint64_t streamPos = 0;    //!< next history position to match
    std::uint64_t issuedUpTo = 0;   //!< last history position prefetched
    Cycle pendingTick = 0;
    bool workPending = false;
    StatSet statSet;
    // Lazily-bound per-event counters (see obs::LazyCounter).
    obs::LazyCounter cRecorded, cStreamFollows, cIndexMisses, cStreamStarts,
        cStreamOverwritten, cIssued;
};

} // namespace dcfb::prefetch

#endif // DCFB_PREFETCH_CONFLUENCE_H
