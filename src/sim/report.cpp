#include "sim/report.h"

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace dcfb::sim {

Table::Table(std::vector<std::string> header)
{
    rows.push_back(std::move(header));
}

void
Table::addRow(std::vector<std::string> row)
{
    rows.push_back(std::move(row));
}

std::string
Table::pct(double fraction, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << fraction * 100.0
       << "%";
    return os.str();
}

std::string
Table::num(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths;
    for (const auto &row : rows) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    std::ostringstream os;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << rows[r][c];
        }
        os << '\n';
        if (r == 0) {
            for (std::size_t c = 0; c < widths.size(); ++c)
                os << std::string(widths[c], '-') << "  ";
            os << '\n';
        }
    }
    return os.str();
}

void
Table::print(const std::string &title) const
{
    std::cout << "\n== " << title << " ==\n" << render() << std::flush;
}

} // namespace dcfb::sim
