/**
 * @file
 * Figure 15: Frontend Stall Cycle Reduction (FSCR) of SN4L+Dis+BTB,
 * Shotgun and Confluence.  Paper: 61 / 35 / 32 % on average.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 15 - Frontend Stall Cycle Reduction",
                  "SN4L+Dis+BTB 61%, Shotgun 35%, Confluence 32% (avg)");

    std::vector<sim::Preset> designs = {sim::Preset::SN4LDisBtb,
                                        sim::Preset::Shotgun,
                                        sim::Preset::Confluence};
    sim::ExperimentGrid grid({sim::Preset::Baseline, sim::Preset::SN4LDisBtb,
                              sim::Preset::Shotgun, sim::Preset::Confluence},
                             bench::windows());
    grid.run();

    sim::Table table({"workload", "SN4L+Dis+BTB", "Shotgun", "Confluence"});
    std::vector<double> sums(designs.size(), 0.0);
    for (const auto &name : grid.workloads()) {
        const auto &base = grid.at(name, sim::Preset::Baseline);
        std::vector<std::string> row{name};
        for (std::size_t d = 0; d < designs.size(); ++d) {
            double f = sim::fscr(grid.at(name, designs[d]), base);
            sums[d] += f;
            row.push_back(sim::Table::pct(f));
        }
        table.addRow(row);
    }
    std::vector<std::string> avg{"Average"};
    for (double s : sums)
        avg.push_back(
            sim::Table::pct(s / static_cast<double>(
                                    grid.workloads().size())));
    table.addRow(avg);
    h.report(table, "Frontend Stall Cycle Reduction (FSCR)");
    return 0;
}
