/**
 * @file
 * Figure 13: prefetch timeliness (CMAL) of N4L, SN4L, Dis and
 * SN4L+Dis+BTB.  Paper: 88 / 93 / 89 / 91 %.  Includes the proactive-
 * depth ablation called out in DESIGN.md.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 13 - timeliness (CMAL) of the proposed designs",
                  "N4L 88%, SN4L 93%, Dis 89%, SN4L+Dis+BTB 91%");

    sim::Table table({"design", "CMAL (avg)"});
    for (auto preset : {sim::Preset::N4LPlain, sim::Preset::SN4L,
                        sim::Preset::DisOnly, sim::Preset::SN4LDisBtb}) {
        double sum = 0.0;
        for (const auto &name : bench::allWorkloads()) {
            auto res = sim::simulate(
                sim::makeConfig(workload::serverProfile(name), preset),
                bench::windows());
            sum += res.cmal();
        }
        table.addRow({sim::presetName(preset), sim::Table::pct(sum / 7.0)});
    }
    h.report(table, "Timeliness of different prefetchers");

    // Ablation: proactive chain depth limit (paper picks 4).
    sim::Table depth({"chain depth limit", "CMAL (avg)", "speedup (avg)"});
    for (unsigned limit : {1u, 2u, 4u, 8u}) {
        double cmal_sum = 0.0, speed_sum = 0.0;
        for (const auto &name : bench::sweepWorkloads()) {
            auto profile = workload::serverProfile(name);
            auto base = sim::simulate(
                sim::makeConfig(profile, sim::Preset::Baseline),
                bench::windows());
            auto cfg = sim::makeConfig(profile, sim::Preset::SN4LDisBtb);
            cfg.sn4l.chainDepthLimit = limit;
            auto res = sim::simulate(cfg, bench::windows());
            cmal_sum += res.cmal();
            speed_sum += sim::speedup(res, base);
        }
        depth.addRow({std::to_string(limit),
                      sim::Table::pct(cmal_sum / 3.0),
                      sim::Table::num(speed_sum / 3.0, 3)});
    }
    h.report(depth, "Ablation: proactive chain depth limit");

    // Ablation: SN1L vs. SN4L for the sequential tails of discontinuity
    // regions (the paper chooses SN1L to protect accuracy at depth).
    sim::Table tails({"tail policy", "pf accuracy (avg)", "speedup (avg)"});
    for (bool sn1l : {true, false}) {
        double acc_sum = 0.0, speed_sum = 0.0;
        for (const auto &name : bench::sweepWorkloads()) {
            auto profile = workload::serverProfile(name);
            auto base = sim::simulate(
                sim::makeConfig(profile, sim::Preset::Baseline),
                bench::windows());
            auto cfg = sim::makeConfig(profile, sim::Preset::SN4LDisBtb);
            cfg.sn4l.sn1lTails = sn1l;
            auto res = sim::simulate(cfg, bench::windows());
            acc_sum += res.ratio("l1i.pf_useful", "l1i.pf_issued");
            speed_sum += sim::speedup(res, base);
        }
        tails.addRow({sn1l ? "SN1L tails (paper)" : "SN4L tails",
                      sim::Table::pct(acc_sum / 3.0),
                      sim::Table::num(speed_sum / 3.0, 3)});
    }
    h.report(tails, "Ablation: sequential-tail depth beyond discontinuities");
    return 0;
}
