# Empty compiler generated dependencies file for fig16_speedup.
# This may be replaced when dependencies are built.
