file(REMOVE_RECURSE
  "CMakeFiles/fig12_tagging.dir/fig12_tagging.cpp.o"
  "CMakeFiles/fig12_tagging.dir/fig12_tagging.cpp.o.d"
  "fig12_tagging"
  "fig12_tagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
