/**
 * @file
 * Conventional program-counter-indexed branch target buffer.
 *
 * This is the 2 K-entry BTB of Table III.  The paper's proposal keeps it
 * unmodified ("BTB modification: No" in Table II) and adds a prefetch
 * buffer next to it; Confluence's upper-bound configuration simply uses
 * a 16 K-entry instance of this same structure.
 */

#ifndef DCFB_FRONTEND_BTB_H
#define DCFB_FRONTEND_BTB_H

#include <cstdint>

#include "common/stats.h"
#include "common/types.h"
#include "isa/encoding.h"
#include "mem/cache.h"

namespace dcfb::frontend {

/** One BTB entry's payload. */
struct BtbEntry
{
    Addr target = kInvalidAddr;
    isa::InstrKind kind = isa::InstrKind::CondBranch;
};

/**
 * Set-associative BTB keyed by branch PC.
 */
class Btb
{
  public:
    /**
     * @param entries total entry count (power of two)
     * @param assoc   ways
     * @param arena   optional cell arena backing the entry array
     */
    explicit Btb(unsigned entries = 2048, unsigned assoc = 4,
                 exec::Arena *arena = nullptr)
        : array(entries / assoc, assoc, arena),
          cLookups(statSet.lazy("btb_lookups")),
          cHits(statSet.lazy("btb_hits")),
          cMisses(statSet.lazy("btb_misses"))
    {}

    /** Arena bytes an (entries, assoc) geometry wants. */
    static std::size_t
    arenaBytes(unsigned entries, unsigned assoc)
    {
        return mem::SetAssocCache<BtbEntry>::storageBytes(entries / assoc,
                                                          assoc);
    }

    /** Look up the branch at @p pc; nullptr on miss.  Counts stats. */
    const BtbEntry *
    lookup(Addr pc)
    {
        cLookups.add();
        if (auto *line = array.lookup(key(pc))) {
            cHits.add();
            return &line->meta;
        }
        cMisses.add();
        return nullptr;
    }

    /** Presence probe without statistics. */
    bool contains(Addr pc) const { return array.lookup(key(pc)) != nullptr; }

    /** Install or update the entry for the branch at @p pc. */
    void
    update(Addr pc, Addr target, isa::InstrKind kind)
    {
        if (auto *line = array.lookup(key(pc))) {
            line->meta.target = target;
            line->meta.kind = kind;
            return;
        }
        array.insert(key(pc), BtbEntry{target, kind});
    }

    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }
    std::size_t entryCount() const
    {
        return std::size_t{array.sets()} * array.ways();
    }

  private:
    /**
     * BTB sets are indexed by instruction address; reuse the block-keyed
     * cache by shifting the PC so that each instruction address maps to
     * a distinct "block".
     */
    static Addr key(Addr pc) { return pc << kBlockShift; }

    StatSet statSet;
    mem::SetAssocCache<BtbEntry> array;
    obs::LazyCounter cLookups;
    obs::LazyCounter cHits;
    obs::LazyCounter cMisses;
};

} // namespace dcfb::frontend

#endif // DCFB_FRONTEND_BTB_H
