/**
 * @file
 * Example: define your own synthetic workload and evaluate the paper's
 * prefetcher on it.  Shows the full public API surface: profile knobs,
 * program construction, trace inspection, and a timed run.
 */

#include <cstdio>

#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/cfg.h"
#include "workload/trace.h"

int
main()
{
    using namespace dcfb;

    // A branch-dense microservice-style workload: many small functions,
    // shallow call graph, moderately biased branches.
    workload::WorkloadProfile profile;
    profile.name = "my-microservice";
    profile.numFunctions = 600;
    profile.minBlocks = 2;
    profile.maxBlocks = 7;
    profile.minInstrs = 3;
    profile.maxInstrs = 10;
    profile.condProb = 0.55;
    profile.callProb = 0.20;
    profile.takenBias = 0.85;
    profile.zipfSkew = 0.9;
    profile.callSkew = 0.9;
    profile.maxCallDepth = 3;
    profile.seed = 2024;

    auto program = workload::buildProgram(profile);
    std::printf("built %zu functions, %zu KB of code\n",
                program.functions.size(), program.codeBytes() / 1024);

    // Peek at the retired stream.
    workload::TraceWalker walker(program, 1);
    unsigned branches = 0;
    for (int i = 0; i < 10000; ++i)
        branches += walker.next().isBranch();
    std::printf("branch density over 10K instructions: %.1f%%\n",
                branches / 100.0);

    // Evaluate the paper's prefetcher against the baseline.
    sim::RunWindows windows{100000, 150000};
    auto base_cfg = sim::makeConfig(profile, sim::Preset::Baseline);
    auto pf_cfg = sim::makeConfig(profile, sim::Preset::SN4LDisBtb);
    auto base = sim::simulate(base_cfg, windows);
    auto pf = sim::simulate(pf_cfg, windows);

    sim::Table table({"design", "IPC", "L1i misses", "frontend stalls"});
    table.addRow({base.design, sim::Table::num(base.ipc()),
                  std::to_string(base.stat("l1i.l1i_misses")),
                  std::to_string(base.frontendStalls())});
    table.addRow({pf.design, sim::Table::num(pf.ipc()),
                  std::to_string(pf.stat("l1i.l1i_misses")),
                  std::to_string(pf.frontendStalls())});
    table.print("custom workload: " + profile.name);
    std::printf("speedup: %.3f  FSCR: %.1f%%\n", sim::speedup(pf, base),
                sim::fscr(pf, base) * 100.0);
    return 0;
}
