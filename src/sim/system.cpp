#include "sim/system.h"

#include <bit>

#include "prefetch/classic_discontinuity.h"
#include "prefetch/confluence.h"
#include "prefetch/fdip.h"
#include "prefetch/nextline.h"
#include "prefetch/sn4l_dis_btb.h"

namespace dcfb::sim {

namespace {

/** Classic-discontinuity table size (the prefetcher's default). */
constexpr std::size_t kClassicDisEntries = 4096;

} // namespace

std::size_t
System::estimateArenaBytes(const SystemConfig &config)
{
    // Sum of every component's arena appetite.  The estimate errs high
    // (container headers, allocator rounding); a low estimate would only
    // cost locality — the arena overflows to the heap, never fails.
    std::size_t bytes = mem::Llc::arenaBytes(config.llc) +
        mem::L1iCache::arenaBytes(config.l1i) +
        mem::L1dCache::arenaBytes(config.l1d) +
        frontend::Tage::arenaBytes() +
        frontend::Btb::arenaBytes(config.btbEntries, config.btbAssoc) +
        std::bit_ceil(std::size_t{config.backend.robEntries
                                      ? config.backend.robEntries
                                      : 1}) *
            sizeof(Cycle);

    // Fetch-side rings: the dispatch buffer and the trace lookahead.
    bytes += std::bit_ceil(std::size_t{config.fetch.fetchBufferEntries
                                           ? config.fetch.fetchBufferEntries
                                           : 1}) *
        sizeof(FetchedSlot);
    bytes += 64 * sizeof(workload::TraceEntry);

    switch (config.preset) {
      case Preset::N4LPlain:
      case Preset::SN4L:
      case Preset::DisOnly:
      case Preset::SN4LDis:
      case Preset::SN4LDisBtb:
        bytes += prefetch::Sn4lDisBtb::arenaBytes(config.sn4l);
        break;
      case Preset::ClassicDis:
        bytes +=
            prefetch::ClassicDiscontinuity::arenaBytes(kClassicDisEntries);
        break;
      case Preset::Confluence:
        bytes += prefetch::ConfluencePrefetcher::arenaBytes(config.confluence);
        break;
      case Preset::Fdip:
        bytes += prefetch::Fdip::arenaBytes(config.fdip);
        break;
      case Preset::MicroBtb:
        bytes += frontend::MicroBtb::arenaBytes(config.microBtb);
        break;
      default:
        break;
    }

    // Per-allocation alignment waste plus slack for small containers.
    return bytes + bytes / 8 + 4096;
}

System::System(const SystemConfig &config)
    : cfg(config), arena(estimateArenaBytes(config)),
      program(config.program
                  ? config.program
                  : std::make_shared<const workload::Program>(
                        workload::buildProgram(config.profile))),
      injector(config.faults, config.runSeed)
{
    cDispatchActive = simStats.counter("dispatch_active_cycles");
    cStallBackend = simStats.counter("stall_backend");
    cStallIcache = simStats.counter("stall_icache");
    cStallBtb = simStats.counter("stall_btb");
    cStallEmptyFtq = simStats.counter("stall_empty_ftq");
    cStallMispredict = simStats.counter("stall_mispredict");
    cStallFrontend = simStats.counter("stall_frontend");
    cStallOther = simStats.counter("stall_other");

    walker = std::make_unique<workload::TraceWalker>(*program, cfg.runSeed);
    predecoder = std::make_unique<isa::Predecoder>(
        program->image, cfg.profile.variableLength);

    mesh = std::make_unique<noc::MeshModel>(cfg.mesh);
    memory = std::make_unique<mem::MemoryModel>(cfg.memory);
    llc = std::make_unique<mem::Llc>(cfg.llc, *mesh, *memory, cfg.coreTile,
                                     &arena);
    l1i = std::make_unique<mem::L1iCache>(cfg.l1i, *llc, &arena);
    l1d = std::make_unique<mem::L1dCache>(cfg.l1d, *llc, &arena);

    tage = std::make_unique<frontend::Tage>(frontend::TageConfig{}, &arena);
    btb = std::make_unique<frontend::Btb>(cfg.btbEntries, cfg.btbAssoc,
                                          &arena);
    if (cfg.preset == Preset::MicroBtb)
        microBtb = std::make_unique<frontend::MicroBtb>(cfg.microBtb, &arena);
    backend = std::make_unique<core::Backend>(cfg.backend, &arena);

    switch (cfg.preset) {
      case Preset::NL:
        prefetcher =
            std::make_unique<prefetch::NextLinePrefetcher>(*l1i, 1);
        break;
      case Preset::N2L:
        prefetcher =
            std::make_unique<prefetch::NextLinePrefetcher>(*l1i, 2);
        break;
      case Preset::N4L:
        prefetcher =
            std::make_unique<prefetch::NextLinePrefetcher>(*l1i, 4);
        break;
      case Preset::N8L:
        prefetcher =
            std::make_unique<prefetch::NextLinePrefetcher>(*l1i, 8);
        break;
      case Preset::N4LPlain:
      case Preset::SN4L:
      case Preset::DisOnly:
      case Preset::SN4LDis:
      case Preset::SN4LDisBtb:
        prefetcher = std::make_unique<prefetch::Sn4lDisBtb>(
            *l1i, *predecoder, btb.get(), cfg.sn4l, &arena);
        break;
      case Preset::ClassicDis:
        prefetcher = std::make_unique<prefetch::ClassicDiscontinuity>(
            *l1i, kClassicDisEntries, true, &arena);
        break;
      case Preset::Confluence:
        prefetcher = std::make_unique<prefetch::ConfluencePrefetcher>(
            *l1i, cfg.confluence, &arena);
        break;
      case Preset::Fdip:
        prefetcher = std::make_unique<prefetch::Fdip>(*l1i, cfg.fdip,
                                                      &arena);
        break;
      default:
        prefetcher = std::make_unique<prefetch::NullPrefetcher>();
        break;
    }

    // Functional warmup: replay the retired stream into the long-term
    // structures (LLC, L1s, BTB, TAGE) without timing, mirroring the
    // checkpoint state of the paper's SimFlex methodology.  Branch PCs
    // are remembered so the BTB-directed engines' structures can be
    // primed after construction.
    std::vector<workload::TraceEntry> warm_branches;
    // Only Shotgun consumes the collected branches (to prime its split
    // BTB); Boomerang and FDIP prime through btb/bbtb updates directly.
    bool collect_warm_branches = cfg.preset == Preset::Shotgun;
    // The warmup pass can outlast a worker lease on its own, so it
    // reports liveness at the same cadence the timed windows do.
    const Cycle hb_interval =
        cfg.integrity.sweepInterval ? cfg.integrity.sweepInterval : 8192;
    for (std::uint64_t i = 0; i < cfg.functionalWarmInstrs; ++i) {
        if (cfg.integrity.heartbeat && i % hb_interval == 0)
            cfg.integrity.heartbeat();
        workload::TraceEntry e = walker->next();
        llc->warmTouch(e.pc, true);
        l1i->warmInsert(e.pc);
        if (e.dataAddr != kInvalidAddr) {
            llc->warmTouch(e.dataAddr, false);
            l1d->warmInsert(e.dataAddr);
        }
        if (e.isBranch()) {
            if (e.kind == isa::InstrKind::CondBranch) {
                tage->predict(e.pc);
                tage->update(e.pc, e.taken);
            } else {
                tage->updateHistoryUnconditional(e.pc);
            }
            if (e.taken) {
                btb->update(e.pc, e.target, e.kind);
                if (microBtb)
                    microBtb->fill(e.pc, e.target, e.kind);
            }
            if (collect_warm_branches)
                warm_branches.push_back(e);
        }
        recordRetiredFootprints(e);
    }

    if (cfg.preset == Preset::Boomerang || cfg.preset == Preset::Shotgun ||
        cfg.preset == Preset::Fdip) {
        prefetch::Fdip *fdip_unit = cfg.preset == Preset::Fdip
            ? static_cast<prefetch::Fdip *>(prefetcher.get())
            : nullptr;
        auto engine = std::make_unique<DecoupledFetchEngine>(
            cfg.fetch,
            cfg.preset == Preset::Boomerang
                ? DecoupledFetchEngine::Kind::Boomerang
                : cfg.preset == Preset::Shotgun
                      ? DecoupledFetchEngine::Kind::Shotgun
                      : DecoupledFetchEngine::Kind::Fdip,
            *walker, *l1i, *tage, *predecoder, cfg.boomerangBtbEntries,
            cfg.shotgunBtb, btb.get(), fdip_unit, &arena);
        decoupled = engine.get();
        // FDIP's fills/usefulness land in the prefetcher's accounting;
        // the BTB-directed engines do their own prefill on fills.
        l1i->setListener(fdip_unit
                             ? static_cast<mem::L1iListener *>(fdip_unit)
                             : decoupled);
        // Prime the Shotgun BTB from the warm branch stream (footprints
        // still build during the timed warm window: only the retired
        // stream can construct them, Section III).
        for (const auto &e : warm_branches) {
            if (cfg.preset == Preset::Shotgun) {
                auto &sg = engine->shotgunBtb();
                switch (e.kind) {
                  case isa::InstrKind::CondBranch:
                    sg.updateC(e.pc, e.target);
                    break;
                  case isa::InstrKind::Return:
                    sg.updateRib(e.pc);
                    break;
                  default:
                    sg.updateU(e.pc, e.target, e.kind, false);
                    break;
                }
            }
        }
        fetch = std::move(engine);
    } else {
        l1i->setListener(prefetcher.get());
        if (cfg.genericStep) {
            makeCoupledFetch<prefetch::InstrPrefetcher>();
        } else {
            switch (cfg.preset) {
              case Preset::NL:
              case Preset::N2L:
              case Preset::N4L:
              case Preset::N8L:
                makeCoupledFetch<prefetch::NextLinePrefetcher>();
                break;
              case Preset::N4LPlain:
              case Preset::SN4L:
              case Preset::DisOnly:
              case Preset::SN4LDis:
              case Preset::SN4LDisBtb:
                makeCoupledFetch<prefetch::Sn4lDisBtb>();
                break;
              case Preset::ClassicDis:
                makeCoupledFetch<prefetch::ClassicDiscontinuity>();
                break;
              case Preset::Confluence:
                makeCoupledFetch<prefetch::ConfluencePrefetcher>();
                break;
              default:
                makeCoupledFetch<prefetch::NullPrefetcher>();
                break;
            }
        }
    }

    if (microBtb)
        fetch->setMicroBtb(microBtb.get());

    selectStepFns();
    registerIntegrity();
}

template <typename Pf>
void
System::makeCoupledFetch()
{
    fetch = std::make_unique<CoupledFetchEngineT<Pf>>(
        cfg.fetch, *walker, *l1i, *btb, *tage, program->image,
        static_cast<Pf &>(*prefetcher), &arena);
}

template <typename Pf, typename Fe>
void
System::bindStep()
{
    stepFn = &System::stepImpl<Pf, Fe>;
    stepProfFn = &System::stepProfiledImpl<Pf, Fe>;
}

void
System::selectStepFns()
{
    // Which concrete (Pf, Fe) pair a preset steps with.  Must mirror the
    // fetch-engine construction above: stepImpl static_casts to these
    // types.  DESIGN.md §14 documents the family table.
    if (cfg.genericStep) {
        bindStep<prefetch::InstrPrefetcher, FetchEngine>();
        return;
    }
    switch (cfg.preset) {
      case Preset::Boomerang:
      case Preset::Shotgun:
        bindStep<prefetch::NullPrefetcher, DecoupledFetchEngine>();
        break;
      case Preset::Fdip:
        bindStep<prefetch::Fdip, DecoupledFetchEngine>();
        break;
      case Preset::NL:
      case Preset::N2L:
      case Preset::N4L:
      case Preset::N8L:
        bindStep<prefetch::NextLinePrefetcher,
                 CoupledFetchEngineT<prefetch::NextLinePrefetcher>>();
        break;
      case Preset::N4LPlain:
      case Preset::SN4L:
      case Preset::DisOnly:
      case Preset::SN4LDis:
      case Preset::SN4LDisBtb:
        bindStep<prefetch::Sn4lDisBtb,
                 CoupledFetchEngineT<prefetch::Sn4lDisBtb>>();
        break;
      case Preset::ClassicDis:
        bindStep<prefetch::ClassicDiscontinuity,
                 CoupledFetchEngineT<prefetch::ClassicDiscontinuity>>();
        break;
      case Preset::Confluence:
        bindStep<prefetch::ConfluencePrefetcher,
                 CoupledFetchEngineT<prefetch::ConfluencePrefetcher>>();
        break;
      default:
        bindStep<prefetch::NullPrefetcher,
                 CoupledFetchEngineT<prefetch::NullPrefetcher>>();
        break;
    }
}

void
System::registerIntegrity()
{
    // Fault hooks only attach when a plan is active, so the uninjected
    // hot paths keep their exact pre-integrity behaviour (and results
    // stay bit-identical with injection off).
    if (injector.active()) {
        l1i->setFaultInjector(&injector);
        predecoder->setFaultInjector(&injector);
        if (auto *p = dynamic_cast<prefetch::Sn4lDisBtb *>(prefetcher.get()))
            p->setFaultInjector(&injector);
    }

    invariants.setEnabled(cfg.integrity.invariants);

    // Delay faults legitimately stretch miss lifetimes; widen the
    // resolution bound so the leak detector doesn't flag injected
    // latency as a lost response.
    Cycle miss_bound = cfg.integrity.missResolutionBound;
    if (miss_bound && cfg.faults.kind == rt::FaultKind::Delay)
        miss_bound += cfg.faults.delayCycles;
    l1i->registerInvariants(invariants, miss_bound);
    if (auto *p = dynamic_cast<prefetch::Sn4lDisBtb *>(prefetcher.get()))
        p->registerInvariants(invariants);
    if (decoupled)
        decoupled->registerInvariants(invariants);

    invariants.add("sim.rob_occupancy",
                   [this](Cycle) -> std::optional<std::string> {
        if (backend->robOccupancy() > cfg.backend.robEntries) {
            return std::to_string(backend->robOccupancy()) +
                " ROB entries exceed the " +
                std::to_string(cfg.backend.robEntries) + "-entry bound";
        }
        return std::nullopt;
    });
}

obs::JsonValue
System::snapshot() const
{
    obs::JsonValue doc = obs::JsonValue::object();
    doc["schema"] = "dcfb-snapshot-v1";
    doc["cycle"] = cycleCount;
    doc["workload"] = cfg.profile.name;
    doc["design"] = presetName(cfg.preset);
    doc["retired"] = backend->retired();
    doc["fetched"] = fetch->stats().get("fe_fetched");
    doc["rob_occupancy"] =
        static_cast<std::uint64_t>(backend->robOccupancy());
    doc["fetch_buffer"] =
        static_cast<std::uint64_t>(fetch->buffer().size());

    obs::JsonValue mshrs = obs::JsonValue::array();
    std::uint64_t inflight_prefetches = 0;
    for (const auto &m : l1i->mshrState()) {
        obs::JsonValue e = obs::JsonValue::object();
        e["block"] = m.blockAddr;
        e["issued"] = m.issued;
        e["ready"] = m.ready;
        e["prefetch"] = m.isPrefetch;
        e["demanded"] = m.demanded;
        mshrs.push(std::move(e));
        inflight_prefetches += m.isPrefetch && !m.demanded;
    }
    doc["inflight_prefetches"] = inflight_prefetches;
    doc["mshrs"] = std::move(mshrs);

    // Cell arena health: a persistent overflow means the estimate in
    // estimateArenaBytes() has drifted from a component's real appetite.
    const auto &as = arena.stats();
    obs::JsonValue aj = obs::JsonValue::object();
    aj["slab_bytes"] = static_cast<std::uint64_t>(as.slabBytes);
    aj["used_bytes"] = static_cast<std::uint64_t>(as.usedBytes);
    aj["allocs"] = static_cast<std::uint64_t>(as.allocs);
    aj["overflow_allocs"] = static_cast<std::uint64_t>(as.overflowAllocs);
    aj["overflow_bytes"] = static_cast<std::uint64_t>(as.overflowBytes);
    doc["arena"] = std::move(aj);

    if (auto *p =
            dynamic_cast<const prefetch::Sn4lDisBtb *>(prefetcher.get())) {
        auto depths = p->queueDepths();
        obs::JsonValue q = obs::JsonValue::object();
        q["seq"] = static_cast<std::uint64_t>(depths.seq);
        q["dis"] = static_cast<std::uint64_t>(depths.dis);
        q["rlu"] = static_cast<std::uint64_t>(depths.rlu);
        doc["pf_queues"] = std::move(q);
    }
    if (auto *p = dynamic_cast<const prefetch::Fdip *>(prefetcher.get())) {
        obs::JsonValue q = obs::JsonValue::object();
        q["queue"] = static_cast<std::uint64_t>(p->queueDepth());
        doc["fdip"] = std::move(q);
    }
    if (decoupled) {
        obs::JsonValue f = obs::JsonValue::object();
        f["size"] = static_cast<std::uint64_t>(decoupled->ftqSize());
        f["fetch_idx"] = decoupled->fetchIndex();
        f["bpu_idx"] = decoupled->bpuIndex();
        doc["ftq"] = std::move(f);
    }
    if (injector.active())
        doc["fault_plan"] = rt::faultPlanSpec(injector.planRef());
    return doc;
}

void
System::resetStats()
{
    mesh->stats().reset();
    memory->stats().reset();
    llc->stats().reset();
    l1i->stats().reset();
    l1d->stats().reset();
    tage->stats().reset();
    btb->stats().reset();
    backend->stats().reset();
    fetch->stats().reset();
    if (decoupled)
        decoupled->shotgunBtb().stats().reset();
    if (microBtb)
        microBtb->stats().reset();
    if (auto *p = dynamic_cast<prefetch::Sn4lDisBtb *>(prefetcher.get()))
        p->stats().reset();
    if (auto *p = dynamic_cast<prefetch::Fdip *>(prefetcher.get()))
        p->stats().reset();
    injector.stats().reset();
    simStats.reset();
}

void
System::recordRetiredFootprints(const workload::TraceEntry &e)
{
    if (!cfg.llc.dvllc)
        return;
    if (e.isBranch()) {
        llc->recordBranchOffset(blockAlign(e.pc),
                                static_cast<std::uint8_t>(blockOffset(e.pc)));
    }
}

template <typename Fe>
void
System::dispatchStageImpl(Fe &fe)
{
    auto &buffer = fe.buffer();
    unsigned dispatched = 0;
    while (backend->canDispatch() && !buffer.empty() &&
           buffer.front().ready <= cycleCount) {
        const workload::TraceEntry &e = buffer.front().entry;
        Cycle data_ready = 0;
        if (e.kind == isa::InstrKind::Load ||
            e.kind == isa::InstrKind::Store) {
            data_ready = l1d->access(e.dataAddr, cycleCount,
                                     e.kind == isa::InstrKind::Store);
        }
        backend->dispatch(e.kind, cycleCount, data_ready);
        recordRetiredFootprints(e);
        buffer.pop();
        ++dispatched;
    }

    if (dispatched > 0) {
        cDispatchActive.add();
        return;
    }
    if (backend->robFull()) {
        cStallBackend.add();
        return;
    }
    switch (fe.stallReason(cycleCount)) {
      case StallReason::ICacheMiss:
        cStallIcache.add();
        cStallFrontend.add();
        break;
      case StallReason::BtbMissRedirect:
        cStallBtb.add();
        cStallFrontend.add();
        break;
      case StallReason::EmptyFtq:
        cStallEmptyFtq.add();
        cStallFrontend.add();
        break;
      case StallReason::MispredictRedirect:
        cStallMispredict.add();
        break;
      default:
        cStallOther.add();
        break;
    }
}

template <typename Pf, typename Fe>
void
System::stepImpl()
{
    auto &pf = static_cast<Pf &>(*prefetcher);
    auto &fe = static_cast<Fe &>(*fetch);
    backend->beginCycle(cycleCount);
    l1i->tick(cycleCount);
    pf.tick(cycleCount);
    dispatchStageImpl(fe);
    fe.cycle(cycleCount);
    ++cycleCount;
}

template <typename Pf, typename Fe>
void
System::stepProfiledImpl()
{
    using obs::ProfPhase;
    auto &pf = static_cast<Pf &>(*prefetcher);
    auto &fe = static_cast<Fe &>(*fetch);
    // Chained boundary timestamps: each read ends one phase and starts
    // the next, so five phases cost six clock reads per cycle.
    double t0 = obs::profNow();
    backend->beginCycle(cycleCount);
    double t1 = obs::profNow();
    l1i->tick(cycleCount);
    double t2 = obs::profNow();
    pf.tick(cycleCount);
    double t3 = obs::profNow();
    dispatchStageImpl(fe);
    double t4 = obs::profNow();
    fe.cycle(cycleCount);
    double t5 = obs::profNow();
    profPhases[static_cast<unsigned>(ProfPhase::Backend)] += t1 - t0;
    profPhases[static_cast<unsigned>(ProfPhase::L1iTick)] += t2 - t1;
    profPhases[static_cast<unsigned>(ProfPhase::Prefetcher)] += t3 - t2;
    profPhases[static_cast<unsigned>(ProfPhase::Dispatch)] += t4 - t3;
    profPhases[static_cast<unsigned>(ProfPhase::Fetch)] += t5 - t4;
    ++cycleCount;
}

} // namespace dcfb::sim
