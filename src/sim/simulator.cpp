#include "sim/simulator.h"

namespace dcfb::sim {

namespace {

/** Merge a component's counters under a prefix. */
void
merge(std::map<std::string, std::uint64_t> &out, const std::string &prefix,
      const StatSet &stats)
{
    for (const auto &kv : stats.all())
        out[prefix + "." + kv.first] += kv.second;
}

} // namespace

RunResult
simulate(const SystemConfig &config, const RunWindows &windows)
{
    System system(config);

    for (Cycle c = 0; c < windows.warm; ++c)
        system.step();

    std::uint64_t instr_before = system.instructions();
    system.resetStats();

    for (Cycle c = 0; c < windows.measure; ++c)
        system.step();

    RunResult res;
    res.workload = config.profile.name;
    res.design = presetName(config.preset);
    res.cycles = windows.measure;
    res.instructions = system.instructions() - instr_before;

    merge(res.stats, "sim", system.simStats);
    merge(res.stats, "fe", system.fetch->stats());
    merge(res.stats, "l1i", system.l1i->stats());
    merge(res.stats, "l1d", system.l1d->stats());
    merge(res.stats, "llc", system.llc->stats());
    merge(res.stats, "mem", system.memory->stats());
    merge(res.stats, "noc", system.mesh->stats());
    merge(res.stats, "btb", system.btb->stats());
    merge(res.stats, "tage", system.tage->stats());
    merge(res.stats, "be", system.backend->stats());
    if (system.decoupled) {
        merge(res.stats, "sg", system.decoupled->shotgunBtb().stats());
        merge(res.stats, "bb", system.decoupled->bbBtb().stats());
    }
    if (auto *p = dynamic_cast<prefetch::Sn4lDisBtb *>(
            system.prefetcher.get())) {
        merge(res.stats, "pf", p->stats());
        merge(res.stats, "pf", p->seqTable().stats());
        merge(res.stats, "pf", p->disTable().stats());
        merge(res.stats, "pf", p->rlu().stats());
    }
    if (auto *p = dynamic_cast<prefetch::ConfluencePrefetcher *>(
            system.prefetcher.get())) {
        merge(res.stats, "pf", p->stats());
    }
    return res;
}

double
fscr(const RunResult &design, const RunResult &baseline)
{
    std::uint64_t base = baseline.frontendStalls();
    if (base == 0)
        return 0.0;
    std::uint64_t mine = design.frontendStalls();
    if (mine >= base)
        return 0.0;
    return 1.0 - static_cast<double>(mine) / static_cast<double>(base);
}

double
speedup(const RunResult &design, const RunResult &baseline)
{
    return baseline.ipc() > 0 ? design.ipc() / baseline.ipc() : 0.0;
}

} // namespace dcfb::sim
