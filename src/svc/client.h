/**
 * @file
 * Client side of the dcfb-svc-v1 protocol: a thin blocking connection
 * to a dcfb-serve socket plus the retry/backoff policy the daemon's
 * backpressure replies ask for.
 *
 * `Client` owns one connected socket and exchanges one reply per
 * request line.  `submitAndWait()` layers the full job lifecycle on
 * top: submit, honor `queue_full`/`draining` rejects by sleeping
 * `retry_after_ms` and retrying, then poll `status` until the job is
 * terminal and `fetch` the result.  Both the dcfb-client CLI and the
 * in-process tests drive this class.
 */

#ifndef DCFB_SVC_CLIENT_H
#define DCFB_SVC_CLIENT_H

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "rt/error.h"
#include "svc/protocol.h"

namespace dcfb::svc {

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to the daemon socket at @p socket_path. */
    rt::Expected<void> connect(const std::string &socket_path);

    bool connected() const { return fd >= 0; }
    void close();

    /** One request line out, one reply document back. */
    rt::Expected<obs::JsonValue> request(const obs::JsonValue &doc);

    /** request() on a raw line (the CLI's passthrough mode). */
    rt::Expected<obs::JsonValue> requestLine(const std::string &line);

    /**
     * Submit @p doc (an `op:"submit"` document) and block until the job
     * is terminal, retrying admission rejects with the daemon's
     * `retry_after_ms` hint.  Returns the `fetch` reply (carrying
     * `result` on success) or a typed error after @p max_retries
     * consecutive rejects.
     */
    rt::Expected<obs::JsonValue> submitAndWait(const obs::JsonValue &doc,
                                               unsigned max_retries = 40);

  private:
    rt::Expected<void> sendAll(const std::string &text);
    rt::Expected<std::string> recvLine();

    int fd = -1;
    std::string pending; //!< bytes read past the last newline
};

} // namespace dcfb::svc

#endif // DCFB_SVC_CLIENT_H
