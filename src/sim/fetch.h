/**
 * @file
 * Fetch engines.
 *
 * Two frontend organizations are modeled:
 *
 *  - **CoupledFetchEngineT**: the conventional frontend used by the
 *    baseline, the NXL family, SN4L+Dis+BTB and Confluence.  Fetch
 *    follows the predicted stream; on a BTB miss for a taken branch or a
 *    direction/target misprediction the frontend runs down the wrong
 *    path for the redirect penalty (issuing real wrong-path I-cache
 *    accesses) before resuming.
 *
 *    The engine is a template over the *concrete* prefetcher type: when
 *    the System selects a specialized step path (see sim/system.h), the
 *    per-instruction onFetchInstr() notification and the per-branch
 *    btbPrefetchBuffer() probe devirtualize and inline.  A preset whose
 *    prefetcher never prefills a BTB buffer (Baseline, NL/NXL,
 *    Confluence) compiles the probe out entirely.  The
 *    `CoupledFetchEngine` alias instantiates the template with the
 *    abstract base and is bit-identical to the pre-template engine; it
 *    backs the `generic_step` escape hatch and the dispatch-equivalence
 *    tests.
 *
 *  - **DecoupledFetchEngine** (sim/decoupled.h): the BTB-directed
 *    frontend of Boomerang and Shotgun, with a branch-prediction unit
 *    that runs ahead of fetch through the FTQ.
 *
 * Both deliver fetched instructions into a bounded fetch buffer that the
 * simulator's dispatch stage drains, and both expose a per-cycle stall
 * reason for the frontend-stall accounting behind FSCR (Fig. 15).
 */

#ifndef DCFB_SIM_FETCH_H
#define DCFB_SIM_FETCH_H

#include <cstdint>

#include "common/queue.h"
#include "common/stats.h"
#include "exec/arena.h"
#include "frontend/btb.h"
#include "frontend/micro_btb.h"
#include "frontend/ras.h"
#include "frontend/tage.h"
#include "mem/l1i.h"
#include "obs/trace.h"
#include "prefetch/btb_prefetch_buffer.h"
#include "prefetch/prefetcher.h"
#include "sim/config.h"
#include "workload/trace.h"

namespace dcfb::sim {

/** Why the frontend failed to deliver instructions this cycle. */
enum class StallReason {
    None,
    ICacheMiss,
    BtbMissRedirect,
    MispredictRedirect,
    EmptyFtq,
    FetchPipe, //!< buffer momentarily empty (pipeline fill)
};

/** An instruction sitting in the fetch buffer. */
struct FetchedSlot
{
    workload::TraceEntry entry;
    Cycle ready = 0; //!< cycle it becomes visible to dispatch
};

/**
 * Common fetch-engine interface.
 */
class FetchEngine
{
  public:
    explicit FetchEngine(const FetchConfig &config,
                         exec::Arena *arena = nullptr)
        : cfg(config), fetchBuffer(config.fetchBufferEntries, arena)
    {}
    virtual ~FetchEngine() = default;

    /** Produce instructions for cycle @p now. */
    virtual void cycle(Cycle now) = 0;

    /** Why nothing (more) was delivered as of @p now. */
    virtual StallReason stallReason(Cycle now) const = 0;

    BoundedQueue<FetchedSlot> &buffer() { return fetchBuffer; }
    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }

    /** Attach a last-level BTB (the MicroBTB preset).  Null for every
     *  other preset, so the probe sites stay bit-identical without it. */
    void setMicroBtb(frontend::MicroBtb *m) { mbtb = m; }

  protected:
    FetchConfig cfg;
    BoundedQueue<FetchedSlot> fetchBuffer; //!< ring: drained every cycle
    StatSet statSet;
    frontend::MicroBtb *mbtb = nullptr; //!< MicroBTB preset only
};

/**
 * Conventional (coupled) frontend, parameterized on the concrete
 * prefetcher type @p Pf.
 *
 * @tparam Pf the prefetcher's static type.  `prefetch::InstrPrefetcher`
 *            gives the fully generic (virtual-dispatch) engine; a final
 *            concrete class devirtualizes the two per-instruction
 *            prefetcher calls.  Both instantiations execute the same
 *            statements in the same order, so RunResults are
 *            bit-identical across them (asserted by the dispatch
 *            equivalence tests).
 */
template <typename Pf>
class CoupledFetchEngineT final : public FetchEngine
{
  public:
    /**
     * @param config     fetch parameters (incl. perfect-frontend flags)
     * @param walker     retired-instruction source
     * @param l1i        instruction cache
     * @param btb        conventional BTB
     * @param tage       direction predictor
     * @param image      program image (wrong-path reconstruction)
     * @param prefetcher bound prefetcher (never null; NullPrefetcher ok)
     * @param arena      optional cell arena for the fetch rings
     */
    CoupledFetchEngineT(const FetchConfig &config,
                        workload::TraceWalker &walker_, mem::L1iCache &l1i_,
                        frontend::Btb &btb_, frontend::Tage &tage_,
                        const workload::ProgramImage &image_,
                        Pf &prefetcher, exec::Arena *arena = nullptr)
        : FetchEngine(config, arena), walker(walker_), l1i(l1i_), btb(btb_),
          tage(tage_), image(image_), pf(prefetcher), look(kLookahead, arena)
    {
        cFetched = statSet.counter("fe_fetched");
        cIcacheStallCycles = statSet.counter("fe_icache_stall_cycles");
        cBtbStallCycles = statSet.counter("fe_btb_stall_cycles");
        cMispredictStallCycles =
            statSet.counter("fe_mispredict_stall_cycles");
        cWrongPathBlocks = statSet.counter("fe_wrong_path_blocks");
        hBufferOcc = statSet.histogram("fetch_buffer_occ");
        cBtbRedirects = statSet.lazy("fe_btb_redirects");
        cMispredictRedirects = statSet.lazy("fe_mispredict_redirects");
        cBtbBufferFills = statSet.lazy("fe_btb_buffer_fills");
        cBtbMissTaken = statSet.lazy("fe_btb_miss_taken");
        cBtbMissNotTaken = statSet.lazy("fe_btb_miss_not_taken");
        cCondMispredicts = statSet.lazy("fe_cond_mispredicts");
        cStaleTarget = statSet.lazy("fe_stale_target");
        cIndirectMispredicts = statSet.lazy("fe_indirect_mispredicts");
        cRasMispredicts = statSet.lazy("fe_ras_mispredicts");
        refill();
    }

    void
    cycle(Cycle now) override
    {
        refill();
        hBufferOcc.sample(fetchBuffer.size());

        if (blockedOnFill) {
            if (now < fillReady) {
                cIcacheStallCycles.add();
                return;
            }
            blockedOnFill = false;
        }

        if (now < redirectUntil) {
            (redirectReason == StallReason::BtbMissRedirect
                 ? cBtbStallCycles
                 : cMispredictStallCycles)
                .add();
            wrongPathFetch(now);
            return;
        }

        unsigned budget = cfg.fetchWidth;
        while (budget > 0 && fetchBuffer.size() < cfg.fetchBufferEntries) {
            // Copy: pop() below invalidates references into the queue,
            // and e is still needed for the branch handling afterwards.
            const workload::TraceEntry e = look.front();

            // Block transition: access the I-cache (VL instructions may
            // straddle two blocks; both must be present).
            Addr first = blockAlign(e.pc);
            Addr last = blockAlign(e.pc + e.len - 1);
            for (Addr block = first; block <= last; block += kBlockBytes) {
                if (block == currentBlock)
                    continue;
                if (cfg.perfectL1i) {
                    currentBlock = block;
                    continue;
                }
                auto res = l1i.demandAccess(block, now);
                currentBlock = block;
                if (!res.hit) {
                    blockedOnFill = true;
                    fillReady = res.ready;
                    cIcacheStallCycles.add();
                    return;
                }
            }

            fetchBuffer.push({e, now + cfg.frontendStages});
            pf.onFetchInstr({e.pc, e.len, e.kind, e.taken, e.target}, now);
            look.pop();
            --budget;
            cFetched.add();

            if (e.isBranch()) {
                bool stop = handleBranch(e, now);
                if (stop)
                    break;
            }
        }
    }

    StallReason
    stallReason(Cycle now) const override
    {
        if (blockedOnFill && now < fillReady)
            return StallReason::ICacheMiss;
        if (now < redirectUntil)
            return redirectReason;
        return StallReason::FetchPipe;
    }

  private:
    /** Handle the branch just fetched; returns true when fetch must stop
     *  (taken branch or redirect). */
    bool
    handleBranch(const workload::TraceEntry &e, Cycle now)
    {
        using isa::InstrKind;

        // Direction prediction for conditionals.
        bool predicted_taken = true;
        if (e.kind == InstrKind::CondBranch) {
            // Note: perfectBtb only removes BTB misses; direction
            // prediction still comes from TAGE (Fig. 17's BTB-infinity
            // is a 32 K-entry BTB, not an oracle).
            predicted_taken = tage.predict(e.pc);
            tage.update(e.pc, e.taken);
        } else {
            tage.updateHistoryUnconditional(e.pc);
        }

        // RAS maintenance.
        Addr ras_target = kInvalidAddr;
        if (e.kind == InstrKind::Call || e.kind == InstrKind::IndirectCall)
            ras.push(e.pc + e.len);
        else if (e.kind == InstrKind::Return)
            ras_target = ras.pop();

        // BTB: identifies the branch and provides the target.
        const frontend::BtbEntry *entry = nullptr;
        frontend::BtbEntry from_buffer;
        if (cfg.perfectBtb) {
            from_buffer = {e.target, e.kind};
            entry = &from_buffer;
        } else {
            entry = btb.lookup(e.pc);
            if (!entry) {
                // Probe the BTB prefetch buffer (Section V.C): a hit
                // moves the entry into the BTB and avoids the miss.
                // When Pf is a concrete type without a buffer this
                // whole probe folds away.
                if (auto *pb = pf.btbPrefetchBuffer()) {
                    if (const auto *b = pb->findBranch(e.pc)) {
                        updateBtb(e.pc,
                                   b->hasTarget ? b->target : e.target,
                                   b->kind);
                        from_buffer = {b->hasTarget ? b->target : e.target,
                                       b->kind};
                        entry = &from_buffer;
                        cBtbBufferFills.add();
                        if (obs::Tracing::enabled()) {
                            obs::Tracing::record("btb", now, e.pc,
                                                 obs::MissClass::Btb,
                                                 obs::MissOutcome::Covered);
                        }
                    }
                }
                // Last-level BTB (the MicroBTB competitor): a hit
                // promotes the entry into the main BTB, trading the
                // decode-time redirect for a short fill bubble.
                if (!entry && mbtb) {
                    if (const frontend::MicroBtbEntry *me =
                            mbtb->probe(e.pc)) {
                        updateBtb(e.pc, me->target, me->kind);
                        from_buffer = {me->target, me->kind};
                        entry = &from_buffer;
                        mbtb->notePromote();
                        if (mbtb->promoteLatency() > 0) {
                            // A fetch bubble, not a squash: no wrong-path
                            // fetches, stalls accrue to the BTB bucket.
                            redirectUntil = now + mbtb->promoteLatency();
                            redirectReason = StallReason::BtbMissRedirect;
                            wrongPathPc = kInvalidAddr;
                            wrongPathBlock = kInvalidAddr;
                        }
                        if (obs::Tracing::enabled()) {
                            obs::Tracing::record("btb", now, e.pc,
                                                 obs::MissClass::Btb,
                                                 obs::MissOutcome::Covered);
                        }
                    }
                }
            }
        }

        if (!entry) {
            // The frontend does not know this is a branch.  Fall-through
            // fetch is accidentally correct for a not-taken conditional;
            // anything taken costs a decode-time redirect.
            if (e.taken) {
                cBtbMissTaken.add();
                if (obs::Tracing::enabled()) {
                    obs::Tracing::record("btb", now, e.pc,
                                         obs::MissClass::Btb,
                                         obs::MissOutcome::Uncovered);
                }
                redirect(now, cfg.decodeRedirectPenalty, e.pc + e.len,
                         StallReason::BtbMissRedirect);
                updateBtb(e.pc, e.target, e.kind);
                return true;
            }
            cBtbMissNotTaken.add();
            updateBtb(e.pc, e.target, e.kind);
            return false;
        }

        // Known branch: check the predicted direction and target.
        switch (e.kind) {
          case InstrKind::CondBranch:
            if (predicted_taken != e.taken) {
                cCondMispredicts.add();
                Addr wrong = predicted_taken ? entry->target : e.pc + e.len;
                redirect(now, cfg.execRedirectPenalty, wrong,
                         StallReason::MispredictRedirect);
                updateBtb(e.pc, e.target, e.kind);
                return true;
            }
            if (e.taken && entry->target != e.target) {
                cStaleTarget.add();
                redirect(now, cfg.execRedirectPenalty, entry->target,
                         StallReason::MispredictRedirect);
                updateBtb(e.pc, e.target, e.kind);
                return true;
            }
            return e.taken;
          case InstrKind::Jump:
          case InstrKind::Call:
            if (entry->target != e.target) {
                cStaleTarget.add();
                redirect(now, cfg.decodeRedirectPenalty, entry->target,
                         StallReason::MispredictRedirect);
                updateBtb(e.pc, e.target, e.kind);
                return true;
            }
            return true;
          case InstrKind::IndirectCall:
            if (entry->target != e.target) {
                cIndirectMispredicts.add();
                redirect(now, cfg.execRedirectPenalty, entry->target,
                         StallReason::MispredictRedirect);
                updateBtb(e.pc, e.target, e.kind);
                return true;
            }
            return true;
          case InstrKind::Return:
            if (ras_target != e.target) {
                cRasMispredicts.add();
                redirect(now, cfg.execRedirectPenalty,
                         ras_target == kInvalidAddr ? e.pc + e.len
                                                    : ras_target,
                         StallReason::MispredictRedirect);
                return true;
            }
            return true;
          default:
            return false;
        }
    }

    /** Install or refresh a BTB entry, mirroring it into the last-level
     *  BTB when one is attached (inclusive fill policy). */
    void
    updateBtb(Addr pc, Addr target, isa::InstrKind kind)
    {
        btb.update(pc, target, kind);
        if (mbtb)
            mbtb->fill(pc, target, kind);
    }

    /** Begin a redirect window. */
    void
    redirect(Cycle now, Cycle penalty, Addr wrong_path_pc,
             StallReason reason)
    {
        redirectUntil = now + penalty;
        redirectReason = reason;
        wrongPathPc = wrong_path_pc;
        wrongPathBlock = kInvalidAddr;
        (reason == StallReason::BtbMissRedirect ? cBtbRedirects
                                                : cMispredictRedirects)
            .add();
    }

    /** Issue wrong-path fetches during a redirect window. */
    void
    wrongPathFetch(Cycle now)
    {
        // The frontend keeps fetching down the wrong path until the
        // squash.  We model up to one new block touched per cycle;
        // wrong-path accesses really hit the cache/MSHRs (pollution and,
        // at times, accidental prefetching - both real effects).
        if (wrongPathPc == kInvalidAddr)
            return;
        if (!image.contains(wrongPathPc)) {
            wrongPathPc = kInvalidAddr; // ran off mapped code
            return;
        }
        Addr block = blockAlign(wrongPathPc);
        if (block != wrongPathBlock) {
            wrongPathBlock = block;
            l1i.demandAccess(wrongPathPc, now, /*wrong_path=*/true);
            cWrongPathBlocks.add();
        }
        wrongPathPc += cfg.fetchWidth * kInstrBytes;
    }

    void
    refill()
    {
        while (!look.full())
            look.push(walker.next());
    }

    workload::TraceWalker &walker;
    mem::L1iCache &l1i;
    frontend::Btb &btb;
    frontend::Tage &tage;
    const workload::ProgramImage &image;
    Pf &pf;
    frontend::ReturnAddressStack ras;

    // Typed handles for the per-cycle hot path.
    obs::Counter cFetched, cIcacheStallCycles, cBtbStallCycles,
        cMispredictStallCycles, cWrongPathBlocks;
    obs::Histogram hBufferOcc;
    // Lazily-bound handles for per-branch event sites (these must only
    // appear in results once they fire; see obs::LazyCounter).
    obs::LazyCounter cBtbRedirects, cMispredictRedirects, cBtbBufferFills,
        cBtbMissTaken, cBtbMissNotTaken, cCondMispredicts, cStaleTarget,
        cIndirectMispredicts, cRasMispredicts;

    static constexpr std::size_t kLookahead = 64;
    /** Trace lookahead window (ring; refilled to capacity each cycle). */
    BoundedQueue<workload::TraceEntry> look;
    Addr currentBlock = kInvalidAddr;      //!< last block fetch accessed

    bool blockedOnFill = false;
    Cycle fillReady = 0;

    Cycle redirectUntil = 0;
    StallReason redirectReason = StallReason::None;
    Addr wrongPathPc = kInvalidAddr;
    Addr wrongPathBlock = kInvalidAddr;
};

/** The generic (virtual-dispatch) coupled engine: the pre-template
 *  behaviour, used by the `generic_step` escape hatch and anywhere the
 *  prefetcher's concrete type is not known at compile time. */
using CoupledFetchEngine = CoupledFetchEngineT<prefetch::InstrPrefetcher>;

// The generic instantiation is compiled once in fetch.cpp.
extern template class CoupledFetchEngineT<prefetch::InstrPrefetcher>;

} // namespace dcfb::sim

#endif // DCFB_SIM_FETCH_H
