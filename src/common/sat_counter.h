/**
 * @file
 * Saturating counter used by the TAGE predictor and usefulness bits.
 */

#ifndef DCFB_COMMON_SAT_COUNTER_H
#define DCFB_COMMON_SAT_COUNTER_H

#include <cstdint>

namespace dcfb {

/**
 * An n-bit saturating counter, n <= 8.
 *
 * For direction prediction the counter is interpreted as taken when it is
 * in the upper half of its range.
 */
class SatCounter
{
  public:
    explicit SatCounter(unsigned bits_ = 2, std::uint8_t initial = 0)
        : bits(bits_), value(initial)
    {}

    /** Increment, saturating at 2^bits - 1. */
    void
    up()
    {
        if (value < maxValue())
            ++value;
    }

    /** Decrement, saturating at 0. */
    void
    down()
    {
        if (value > 0)
            --value;
    }

    /** Move toward taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        taken ? up() : down();
    }

    /** Predicted-taken when in the upper half of the range. */
    bool taken() const { return value >= (1u << (bits - 1)); }

    /** True at either saturation point (used for TAGE confidence). */
    bool saturated() const { return value == 0 || value == maxValue(); }

    /** True in the middle of the range (weak prediction). */
    bool
    weak() const
    {
        std::uint8_t mid = 1u << (bits - 1);
        return value == mid || value == mid - 1;
    }

    std::uint8_t raw() const { return value; }
    void set(std::uint8_t v) { value = v > maxValue() ? maxValue() : v; }
    std::uint8_t maxValue() const
    {
        return static_cast<std::uint8_t>((1u << bits) - 1);
    }

  private:
    unsigned bits;
    std::uint8_t value;
};

} // namespace dcfb

#endif // DCFB_COMMON_SAT_COUNTER_H
