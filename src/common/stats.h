/**
 * @file
 * Per-component statistics facade over the typed obs registry.
 *
 * Components register counters by name; the experiment harness dumps them
 * or computes derived metrics (FSCR, CMAL, coverage).  Counters are plain
 * uint64 accumulators; ratios are computed at reporting time.
 *
 * Two access styles:
 *  - **Typed handles** (hot paths): register once with counter() /
 *    histogram() and bump the returned obs::Counter / obs::Histogram --
 *    no per-event string hashing.
 *  - **String adds** (cold paths): add(name) interns on first use; fine
 *    for redirects, overflows and other rare events.
 */

#ifndef DCFB_COMMON_STATS_H
#define DCFB_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/registry.h"

namespace dcfb {

/**
 * A bag of named 64-bit counters and log2 histograms.  Dumps and all()
 * render counters sorted by name (ordering is part of the report
 * contract: stable diffs and stable JSON).
 */
class StatSet
{
  public:
    /** Register (or re-find) a typed counter handle for @p name. */
    obs::Counter
    counter(std::string_view name)
    {
        return registry.counter(name);
    }

    /** Register (or re-find) a typed log2-histogram handle. */
    obs::Histogram
    histogram(std::string_view name)
    {
        return registry.histogram(name);
    }

    /**
     * A lazily-binding counter handle for @p name: interns the name on
     * the first add, exactly like the string add() below, but every
     * later bump is a single pointer-indirect add.  @p name must be a
     * string literal (the handle keeps the pointer).
     */
    obs::LazyCounter
    lazy(const char *name)
    {
        return registry.lazyCounter(name);
    }

    /** Add @p delta to counter @p name (creating it at zero if new). */
    void
    add(std::string_view name, std::uint64_t delta = 1)
    {
        registry.add(name, delta);
    }

    /** Read counter @p name; absent counters read as zero. */
    std::uint64_t
    get(std::string_view name) const
    {
        return registry.get(name);
    }

    /** Ratio of two counters; 0 when the denominator is zero. */
    double
    ratio(std::string_view num, std::string_view den) const
    {
        std::uint64_t d = get(den);
        return d == 0 ? 0.0 : static_cast<double>(get(num)) /
            static_cast<double>(d);
    }

    /** Reset every counter and histogram to zero (used at the
     *  warmup/measure boundary).  Registered names survive. */
    void reset();

    /** Render "name = value" lines for debugging dumps (sorted). */
    std::string dump() const;

    /** All counters, sorted by name. */
    std::map<std::string, std::uint64_t>
    all() const
    {
        return registry.counters();
    }

    /** All histograms, sorted by name, as snapshots. */
    std::map<std::string, obs::HistogramSnapshot>
    histograms() const
    {
        return registry.histograms();
    }

  private:
    obs::StatRegistry registry;
};

} // namespace dcfb

#endif // DCFB_COMMON_STATS_H
