file(REMOVE_RECURSE
  "CMakeFiles/tab01_empty_ftq.dir/tab01_empty_ftq.cpp.o"
  "CMakeFiles/tab01_empty_ftq.dir/tab01_empty_ftq.cpp.o.d"
  "tab01_empty_ftq"
  "tab01_empty_ftq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_empty_ftq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
