/**
 * @file
 * Figure 4: covered memory access latency (CMAL) of NL, N2L, N4L and
 * N8L.  Paper: 65 / 80 / 88 / 85 % - note the N8L inversion caused by
 * useless-prefetch traffic inflating LLC latency.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 4 - CMAL for sequential prefetchers",
                  "NL 65%, N2L 80%, N4L 88%, N8L 85% (N8L inverts)");

    const sim::Preset depths[] = {sim::Preset::NL, sim::Preset::N2L,
                                  sim::Preset::N4L, sim::Preset::N8L};
    sim::Table table({"design", "CMAL (avg over workloads)",
                      "ext. requests (avg)"});
    for (auto preset : depths) {
        double sum = 0.0;
        std::uint64_t reqs = 0;
        auto names = bench::allWorkloads();
        for (const auto &name : names) {
            auto res = sim::simulate(
                sim::makeConfig(workload::serverProfile(name), preset),
                bench::windows());
            sum += res.cmal();
            reqs += res.stat("l1i.l1i_external_requests");
        }
        table.addRow({sim::presetName(preset),
                      sim::Table::pct(sum / 7.0),
                      std::to_string(reqs / 7)});
    }
    h.report(table, "Covered Memory Access Latency (CMAL)");
    return 0;
}
