# Empty dependencies file for fig01_footprint_miss.
# This may be replaced when dependencies are built.
