/**
 * @file
 * L1 data cache: 32 KB, 8-way, 4-cycle load-to-use, 32 MSHRs
 * (Table III).
 *
 * The L1d exists so that (a) backend load latencies respond to the data
 * working set and (b) the LLC holds a realistic mix of instruction and
 * data blocks, which the DV-LLC experiments (Section VII.J) depend on.
 * It is latency-only: misses return their completion cycle immediately
 * and the backend models the overlap via the ROB.
 */

#ifndef DCFB_MEM_L1D_H
#define DCFB_MEM_L1D_H

#include "common/stats.h"
#include "common/types.h"
#include "mem/cache.h"
#include "mem/llc.h"

namespace dcfb::mem {

/** L1d configuration. */
struct L1dConfig
{
    std::size_t capacityBytes = 32 * 1024;
    unsigned assoc = 8;
    Cycle hitLatency = 4;
};

/**
 * Latency-model data cache in front of the shared LLC.
 */
class L1dCache
{
  public:
    L1dCache(const L1dConfig &config, Llc &llc_,
             exec::Arena *arena = nullptr)
        : cfg(config), llc(llc_),
          array(SetAssocCache<Empty>::fromBytes(config.capacityBytes,
                                                config.assoc, arena)),
          cAccesses(statSet.lazy("l1d_accesses")),
          cStores(statSet.lazy("l1d_stores")),
          cHits(statSet.lazy("l1d_hits")),
          cMisses(statSet.lazy("l1d_misses"))
    {}

    /** Arena bytes this configuration's line array wants. */
    static std::size_t
    arenaBytes(const L1dConfig &config)
    {
        auto sets = static_cast<unsigned>(config.capacityBytes /
                                          kBlockBytes / config.assoc);
        return SetAssocCache<Empty>::storageBytes(sets, config.assoc);
    }

    /** Access @p addr at @p now; returns the data-ready cycle. */
    Cycle
    access(Addr addr, Cycle now, bool is_store)
    {
        cAccesses.add();
        if (is_store)
            cStores.add();
        if (array.lookup(addr)) {
            cHits.add();
            return now + cfg.hitLatency;
        }
        cMisses.add();
        auto res = llc.access(blockAlign(addr), now + cfg.hitLatency,
                              /*is_instruction=*/false);
        array.insert(addr, Empty{});
        return res.ready;
    }

    /** Functional warmup insert (no timing, no statistics). */
    void
    warmInsert(Addr addr)
    {
        if (!array.lookup(addr))
            array.insert(addr, Empty{});
    }

    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }

  private:
    struct Empty
    {};

    L1dConfig cfg;
    Llc &llc;
    StatSet statSet;
    SetAssocCache<Empty> array;
    // Lazily-bound handles preserving the key-presence semantics of the
    // previous per-access string adds (see obs::LazyCounter).
    obs::LazyCounter cAccesses, cStores, cHits, cMisses;
};

} // namespace dcfb::mem

#endif // DCFB_MEM_L1D_H
