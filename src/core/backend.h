/**
 * @file
 * Simplified out-of-order backend (Table III): 3-wide dispatch and
 * retirement, 128-entry ROB, 12 backend pipeline stages.
 *
 * The backend exists to convert instruction-supply gaps into cycles, so
 * the model is deliberately latency-oriented: dispatched instructions
 * enter the ROB with a completion cycle (ALU ops after a fixed latency,
 * loads when the L1d/LLC round trip finishes) and retire in order.  It
 * applies backpressure (ROB full) and exposes the dispatch-starvation
 * signal the frontend-stall accounting needs.
 */

#ifndef DCFB_CORE_BACKEND_H
#define DCFB_CORE_BACKEND_H

#include <cstdint>
#include <deque>

#include "common/stats.h"
#include "common/types.h"
#include "isa/encoding.h"

namespace dcfb::core {

/** Backend configuration. */
struct BackendConfig
{
    unsigned dispatchWidth = 3;
    unsigned retireWidth = 3;
    unsigned robEntries = 128;
    unsigned pipelineDepth = 12; //!< dispatch-to-writeback depth
    Cycle aluLatency = 1;
};

/**
 * ROB-based retirement model.
 */
class Backend
{
  public:
    explicit Backend(const BackendConfig &config = BackendConfig{})
        : cfg(config)
    {}

    /** Can another instruction be dispatched this cycle? */
    bool
    canDispatch() const
    {
        return rob.size() < cfg.robEntries &&
            dispatchedThisCycle < cfg.dispatchWidth;
    }

    /**
     * Dispatch one instruction at cycle @p now.  @p data_ready is the
     * completion cycle of its memory access (loads/stores), or 0 for
     * non-memory instructions.
     */
    void
    dispatch(isa::InstrKind kind, Cycle now, Cycle data_ready)
    {
        Cycle complete = now + cfg.pipelineDepth + cfg.aluLatency;
        if (kind == isa::InstrKind::Load && data_ready > 0)
            complete = std::max(complete, data_ready);
        // Stores complete at writeback; the store buffer hides the miss.
        rob.push_back(complete);
        ++dispatchedThisCycle;
        statSet.add("dispatched");
    }

    /**
     * Advance one cycle: retire completed instructions in order.  Call
     * once per cycle *before* dispatching into the new cycle.
     */
    void
    beginCycle(Cycle now)
    {
        dispatchedThisCycle = 0;
        unsigned retired_now = 0;
        while (!rob.empty() && retired_now < cfg.retireWidth &&
               rob.front() <= now) {
            rob.pop_front();
            ++retired_now;
            ++retiredTotal;
        }
        if (rob.size() >= cfg.robEntries)
            statSet.add("rob_full_cycles");
    }

    bool robFull() const { return rob.size() >= cfg.robEntries; }
    bool robEmpty() const { return rob.empty(); }
    std::size_t robOccupancy() const { return rob.size(); }
    std::uint64_t retired() const { return retiredTotal; }

    /** Squash everything younger than retirement (pipeline flush). */
    void
    squash()
    {
        statSet.add("squashes");
    }

    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }
    const BackendConfig &config() const { return cfg; }

  private:
    BackendConfig cfg;
    std::deque<Cycle> rob; //!< in-order completion cycles
    unsigned dispatchedThisCycle = 0;
    std::uint64_t retiredTotal = 0;
    StatSet statSet;
};

} // namespace dcfb::core

#endif // DCFB_CORE_BACKEND_H
