/**
 * @file
 * Canonical run fingerprints for the content-addressed result cache.
 *
 * A fingerprint is a JSON document covering *every* knob that shapes a
 * RunResult: the full workload-profile parameterization, the preset and
 * all structure configs, the run seed, the functional-warmup length,
 * the fault-injection spec, and the warm/measure windows — plus the
 * cache schema version so a layout change invalidates old entries
 * wholesale.  Two runs with equal fingerprints produce bit-identical
 * RunResults (simulation is deterministic); the cache key is an FNV-1a
 * hash of the compact fingerprint serialization.
 *
 * Deliberately excluded: `rt::IntegrityConfig` (sweep cadence and
 * watchdog thresholds never change a successful run's counters — see
 * FaultIntegrity.DisablingIntegrityKeepsResultsIdentical) and the
 * resolved `program` pointer (it is a pure function of the profile).
 *
 * Maintenance rule: when a result-shaping field is added to
 * SystemConfig or a nested config struct, it MUST be added here and
 * `kCacheSchema` MUST be bumped.  tests/test_svc.cpp pins the key of a
 * reference config to catch accidental fingerprint drift.
 */

#ifndef DCFB_SVC_FINGERPRINT_H
#define DCFB_SVC_FINGERPRINT_H

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "sim/config.h"
#include "sim/simulator.h"

namespace dcfb::svc {

/** Cache entry schema / fingerprint version.  Bump on layout change. */
inline constexpr const char *kCacheSchema = "dcfb-cache-v2";

/** The canonical fingerprint document for one (config, windows) run. */
obs::JsonValue fingerprint(const sim::SystemConfig &config,
                           const sim::RunWindows &windows);

/** FNV-1a 64-bit hash of @p text (the raw value behind fnv1aHex; the
 *  consistent-hash ring places keys with it). */
std::uint64_t fnv1a64(const std::string &text);

/** FNV-1a 64-bit hash of @p text, rendered as 16 lowercase hex chars. */
std::string fnv1aHex(const std::string &text);

/** Content-addressed key: fnv1aHex of the compact fingerprint dump. */
std::string cacheKey(const sim::SystemConfig &config,
                     const sim::RunWindows &windows);

} // namespace dcfb::svc

#endif // DCFB_SVC_FINGERPRINT_H
