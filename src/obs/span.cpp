#include "obs/span.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include <unistd.h>

#include "obs/json.h"

namespace dcfb::obs {

namespace {

/**
 * One thread's bounded span buffer.  Single writer (the owning
 * thread): a span is stored then published with one release store of
 * the size counter; close() acquires the counter and reads exactly the
 * published prefix.  Owned by the sink via shared_ptr so a thread may
 * exit before close() without losing its spans.
 */
struct ThreadBuf
{
    explicit ThreadBuf(std::size_t capacity) : records(capacity) {}

    std::vector<SpanRecord> records; //!< fixed capacity, never resized
    std::atomic<std::size_t> size{0};
    std::atomic<std::uint64_t> droppedCount{0};
    std::string threadName;
    std::uint32_t track = 0;
};

/** Bumped on every open() so stale thread slots re-register. */
std::atomic<std::uint64_t> gEpoch{1};

struct ThreadSlot
{
    std::shared_ptr<ThreadBuf> buf;
    std::uint64_t epoch = 0;
    SpanIds current;
    std::string name; //!< set via setThreadName before first record
};

thread_local ThreadSlot tlSlot;

std::uint64_t
idSalt()
{
    // Keep IDs unique across the processes that may write into one
    // conceptual trace (dcfb-client + dcfb-serve).
    static const std::uint64_t salt =
        (static_cast<std::uint64_t>(::getpid()) & 0xffff) << 44;
    return salt;
}

std::atomic<std::uint64_t> gNextId{1};

char *
hexId(char (&buf)[24], std::uint64_t id)
{
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

} // namespace

struct Spans::State
{
    Config cfg;
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuf>> bufs; //!< registration order
};

Spans::State *Spans::state = nullptr;
std::atomic<bool> Spans::enabledFlag{false};

SpanIds &
Spans::threadCurrent()
{
    return tlSlot.current;
}

bool
Spans::open(const std::string &path)
{
    Config cfg;
    cfg.path = path;
    return open(cfg);
}

bool
Spans::open(const Config &config)
{
    close();
    // Probe writability now so a bad path fails at the CLI, not after
    // a full run.
    {
        std::ofstream probe(config.path,
                            std::ios::out | std::ios::trunc);
        if (!probe.is_open()) {
            std::fprintf(stderr, "[obs] cannot open span file %s\n",
                         config.path.c_str());
            return false;
        }
    }
    state = new State;
    state->cfg = config;
    if (state->cfg.maxPerThread == 0)
        state->cfg.maxPerThread = 1;
    gEpoch.fetch_add(1, std::memory_order_acq_rel);
    enabledFlag.store(true, std::memory_order_release);
    return true;
}

std::uint64_t
Spans::newTraceId()
{
    return idSalt() | gNextId.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
Spans::newSpanId()
{
    return idSalt() | gNextId.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
Spans::nowUs()
{
    static const auto base = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - base)
            .count());
}

SpanIds
Spans::current()
{
    return tlSlot.current;
}

void
Spans::setThreadName(std::string name)
{
    tlSlot.name = std::move(name);
    if (tlSlot.buf)
        tlSlot.buf->threadName = tlSlot.name;
}

void
Spans::record(const char *name, std::uint64_t traceId,
              std::uint64_t spanId, std::uint64_t parentId,
              std::uint64_t startUs, std::uint64_t endUs,
              std::string label)
{
    if (!enabled())
        return;
    ThreadSlot &slot = tlSlot;
    std::uint64_t epoch = gEpoch.load(std::memory_order_acquire);
    if (!slot.buf || slot.epoch != epoch) {
        State *s = state;
        if (!s)
            return; // raced a close(); drop the span
        auto buf = std::make_shared<ThreadBuf>(s->cfg.maxPerThread);
        std::lock_guard<std::mutex> lock(s->mutex);
        buf->track = static_cast<std::uint32_t>(s->bufs.size());
        buf->threadName = slot.name.empty()
            ? "thread-" + std::to_string(buf->track)
            : slot.name;
        s->bufs.push_back(buf);
        slot.buf = std::move(buf);
        slot.epoch = epoch;
    }
    ThreadBuf &buf = *slot.buf;
    std::size_t n = buf.size.load(std::memory_order_relaxed);
    if (n >= buf.records.size()) {
        buf.droppedCount.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    SpanRecord &rec = buf.records[n];
    rec.traceId = traceId;
    rec.spanId = spanId;
    rec.parentId = parentId;
    rec.startUs = startUs;
    rec.endUs = endUs;
    rec.name = name;
    rec.label = std::move(label);
    buf.size.store(n + 1, std::memory_order_release);
}

std::uint64_t
Spans::recorded()
{
    if (!state)
        return 0;
    std::lock_guard<std::mutex> lock(state->mutex);
    std::uint64_t total = 0;
    for (const auto &buf : state->bufs)
        total += buf->size.load(std::memory_order_acquire);
    return total;
}

std::uint64_t
Spans::dropped()
{
    if (!state)
        return 0;
    std::lock_guard<std::mutex> lock(state->mutex);
    std::uint64_t total = 0;
    for (const auto &buf : state->bufs)
        total += buf->droppedCount.load(std::memory_order_relaxed);
    return total;
}

void
Spans::close()
{
    if (!state)
        return;
    enabledFlag.store(false, std::memory_order_release);
    gEpoch.fetch_add(1, std::memory_order_acq_rel);
    State *s = state;
    state = nullptr;

    std::vector<std::shared_ptr<ThreadBuf>> bufs;
    {
        std::lock_guard<std::mutex> lock(s->mutex);
        bufs = std::move(s->bufs);
    }

    struct Entry
    {
        const SpanRecord *rec;
        std::uint32_t track;
    };
    std::vector<Entry> entries;
    std::uint64_t droppedTotal = 0;
    for (const auto &buf : bufs) {
        std::size_t n = buf->size.load(std::memory_order_acquire);
        for (std::size_t i = 0; i < n; ++i)
            entries.push_back(Entry{&buf->records[i], buf->track});
        droppedTotal += buf->droppedCount.load(std::memory_order_relaxed);
    }
    // Deterministic file order regardless of which thread recorded
    // what when: by start time, span ID as the tiebreak.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.rec->startUs != b.rec->startUs)
                      return a.rec->startUs < b.rec->startUs;
                  return a.rec->spanId < b.rec->spanId;
              });

    std::ofstream out(s->cfg.path, std::ios::out | std::ios::trunc);
    if (!out.is_open()) {
        std::fprintf(stderr, "[obs] cannot open span file %s\n",
                     s->cfg.path.c_str());
        delete s;
        return;
    }
    out << "[";
    bool first = true;
    auto emit = [&](const JsonValue &record) {
        out << (first ? "\n" : ",\n") << record.dump();
        first = false;
    };

    {
        JsonValue proc = JsonValue::object();
        proc["name"] = "process_name";
        proc["ph"] = "M";
        proc["pid"] = std::uint64_t{0};
        proc["tid"] = std::uint64_t{0};
        JsonValue args = JsonValue::object();
        args["name"] = "dcfb";
        proc["args"] = std::move(args);
        emit(proc);
    }
    for (const auto &buf : bufs) {
        JsonValue meta = JsonValue::object();
        meta["name"] = "thread_name";
        meta["ph"] = "M";
        meta["pid"] = std::uint64_t{0};
        meta["tid"] = std::uint64_t{buf->track};
        JsonValue args = JsonValue::object();
        args["name"] = buf->threadName;
        meta["args"] = std::move(args);
        emit(meta);
    }

    char idBuf[24];
    for (const Entry &entry : entries) {
        const SpanRecord &rec = *entry.rec;
        JsonValue ev = JsonValue::object();
        ev["name"] = rec.name;
        ev["cat"] = "dcfb";
        ev["ph"] = "X";
        ev["ts"] = rec.startUs;
        ev["dur"] = std::uint64_t{
            rec.endUs > rec.startUs ? rec.endUs - rec.startUs : 0};
        ev["pid"] = std::uint64_t{0};
        ev["tid"] = std::uint64_t{entry.track};
        JsonValue args = JsonValue::object();
        args["trace"] = hexId(idBuf, rec.traceId);
        args["span"] = hexId(idBuf, rec.spanId);
        if (rec.parentId)
            args["parent"] = hexId(idBuf, rec.parentId);
        if (!rec.label.empty())
            args["label"] = rec.label;
        ev["args"] = std::move(args);
        emit(ev);
    }

    {
        JsonValue summary = JsonValue::object();
        summary["name"] = "span_summary";
        summary["ph"] = "i";
        summary["ts"] = nowUs();
        summary["pid"] = std::uint64_t{0};
        summary["tid"] = std::uint64_t{0};
        summary["s"] = "g";
        JsonValue args = JsonValue::object();
        args["spans"] = std::uint64_t{entries.size()};
        args["dropped"] = droppedTotal;
        args["tracks"] = std::uint64_t{bufs.size()};
        summary["args"] = std::move(args);
        emit(summary);
    }
    out << "\n]\n";
    delete s;
}

// ------------------------------------------------------------- SpanScope

void
SpanScope::begin(std::uint64_t traceId, std::uint64_t parentId)
{
    trace = traceId ? traceId : Spans::newTraceId();
    parent = parentId;
    span = Spans::newSpanId();
    startUs = Spans::nowUs();
    SpanIds &cur = Spans::threadCurrent();
    saved = cur;
    cur = SpanIds{trace, span};
    active = true;
}

SpanScope::SpanScope(const char *name_, std::string label_)
    : name(name_), label(std::move(label_))
{
    if (!Spans::enabled())
        return;
    SpanIds ambient = Spans::current();
    begin(ambient.trace, ambient.span);
}

SpanScope::SpanScope(const char *name_, std::uint64_t traceId,
                     std::uint64_t parentId, std::string label_)
    : name(name_), label(std::move(label_))
{
    if (!Spans::enabled())
        return;
    begin(traceId, parentId);
}

SpanScope::~SpanScope()
{
    if (!active)
        return;
    Spans::record(name, trace, span, parent, startUs, Spans::nowUs(),
                  std::move(label));
    Spans::threadCurrent() = saved;
}

} // namespace dcfb::obs
