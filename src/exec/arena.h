/**
 * @file
 * Per-cell bump arena.
 *
 * One simulated cell owns dozens of flat tables (LLC/L1 line arrays,
 * TAGE tables, BTB ways, prefetcher queues and filters).  Allocated
 * individually they land wherever the heap puts them; allocated from a
 * per-cell arena they form one contiguous slab, so a pool thread's
 * working set stays cache/TLB-resident and cell teardown is one free
 * (the flat-table layout idiom from HybridSim).
 *
 * The arena is a bump allocator: allocation is a pointer increment,
 * individual deallocation inside the slab is a no-op, and the whole
 * slab is reclaimed at once when the arena dies (or is reset()).  When
 * the slab is exhausted the arena falls back to the heap -- a mis-sized
 * estimate degrades locality, never correctness -- and counts the
 * overflow so tests and the snapshot can see it.
 *
 * Thread model: an Arena belongs to exactly one System, and a System is
 * confined to one pool thread (DESIGN.md §8).  Nothing here locks.
 */

#ifndef DCFB_EXEC_ARENA_H
#define DCFB_EXEC_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

namespace dcfb::exec {

/**
 * Single-slab bump allocator with heap overflow fallback.
 */
class Arena
{
  public:
    /** Allocation statistics (exposed in System::snapshot and tests). */
    struct Stats
    {
        std::size_t slabBytes = 0;     //!< capacity of the slab
        std::size_t usedBytes = 0;     //!< bump high-water inside the slab
        std::size_t allocs = 0;        //!< slab allocations served
        std::size_t overflowAllocs = 0; //!< allocations sent to the heap
        std::size_t overflowBytes = 0;  //!< bytes sent to the heap
    };

    /** Create an arena backed by a @p bytes slab (0 = heap-only). */
    explicit Arena(std::size_t bytes)
    {
        if (bytes > 0) {
            slab = static_cast<std::byte *>(
                ::operator new(bytes, std::align_val_t{kSlabAlign}));
        }
        slabStats.slabBytes = bytes;
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    ~Arena()
    {
        releaseOverflow();
        if (slab)
            ::operator delete(slab, std::align_val_t{kSlabAlign});
    }

    /**
     * Allocate @p bytes aligned to @p align.  Never returns nullptr:
     * when the slab can't fit the request it comes from the heap.
     */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        assert(align > 0 && (align & (align - 1)) == 0);
        std::size_t at = (slabStats.usedBytes + align - 1) & ~(align - 1);
        if (slab && bytes <= slabStats.slabBytes &&
            at <= slabStats.slabBytes - bytes) {
            slabStats.usedBytes = at + bytes;
            ++slabStats.allocs;
            return slab + at;
        }
        ++slabStats.overflowAllocs;
        slabStats.overflowBytes += bytes;
        void *p = align > __STDCPP_DEFAULT_NEW_ALIGNMENT__
                      ? ::operator new(bytes, std::align_val_t{align})
                      : ::operator new(bytes);
        overflow.push_back({p, align});
        return p;
    }

    /**
     * Release @p p.  Slab pointers are a no-op (the slab frees as one);
     * overflow pointers return to the heap immediately.
     */
    void
    deallocate(void *p) noexcept
    {
        if (p == nullptr || contains(p))
            return;
        for (std::size_t i = 0; i < overflow.size(); ++i) {
            if (overflow[i].ptr != p)
                continue;
            release(overflow[i]);
            overflow[i] = overflow.back();
            overflow.pop_back();
            return;
        }
        // Not ours: pointer predates this arena (or a double free).
        assert(false && "Arena::deallocate of unknown pointer");
    }

    /** True when @p p points into the slab. */
    bool
    contains(const void *p) const
    {
        const auto *b = static_cast<const std::byte *>(p);
        return slab && b >= slab && b < slab + slabStats.slabBytes;
    }

    /**
     * Rewind the bump pointer and free any overflow allocations.  Only
     * legal once every container allocated from this arena is gone.
     */
    void
    reset()
    {
        releaseOverflow();
        slabStats.usedBytes = 0;
        slabStats.allocs = 0;
        slabStats.overflowAllocs = 0;
        slabStats.overflowBytes = 0;
    }

    const Stats &stats() const { return slabStats; }

  private:
    /** Slabs hold cache line arrays; align to a typical page. */
    static constexpr std::size_t kSlabAlign = 4096;

    struct OverflowBlock
    {
        void *ptr = nullptr;
        std::size_t align = 0;
    };

    static void
    release(const OverflowBlock &blk) noexcept
    {
        if (blk.align > __STDCPP_DEFAULT_NEW_ALIGNMENT__)
            ::operator delete(blk.ptr, std::align_val_t{blk.align});
        else
            ::operator delete(blk.ptr);
    }

    void
    releaseOverflow() noexcept
    {
        for (const auto &blk : overflow)
            release(blk);
        overflow.clear();
    }

    std::byte *slab = nullptr;
    Stats slabStats;
    std::vector<OverflowBlock> overflow;
};

/**
 * std-compatible allocator over an optional Arena.
 *
 * Default-constructed (or with a null arena) it is exactly the heap:
 * every existing container keeps its behaviour.  Bound to an arena it
 * bump-allocates from the slab.  Containers that grow geometrically
 * (std::vector) leave their old block dead in the slab -- acceptable,
 * because the simulator sizes its tables once at construction.
 */
template <typename T>
class ArenaAlloc
{
  public:
    using value_type = T;
    using propagate_on_container_copy_assignment = std::true_type;
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;
    using is_always_equal = std::false_type;

    ArenaAlloc() noexcept = default;
    explicit ArenaAlloc(Arena *arena) noexcept : a(arena) {}

    template <typename U>
    ArenaAlloc(const ArenaAlloc<U> &other) noexcept : a(other.arena())
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (a)
            return static_cast<T *>(a->allocate(n * sizeof(T), alignof(T)));
        return static_cast<T *>(alignof(T) >
                                        __STDCPP_DEFAULT_NEW_ALIGNMENT__
                                    ? ::operator new(
                                          n * sizeof(T),
                                          std::align_val_t{alignof(T)})
                                    : ::operator new(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        if (a) {
            a->deallocate(p);
            return;
        }
        if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__)
            ::operator delete(p, std::align_val_t{alignof(T)});
        else
            ::operator delete(p);
    }

    Arena *arena() const noexcept { return a; }

    template <typename U>
    bool
    operator==(const ArenaAlloc<U> &other) const noexcept
    {
        return a == other.arena();
    }

  private:
    Arena *a = nullptr;
};

/** Vector whose storage may live in a cell arena. */
template <typename T>
using ArenaVector = std::vector<T, ArenaAlloc<T>>;

} // namespace dcfb::exec

#endif // DCFB_EXEC_ARENA_H
