/**
 * @file
 * Conventional discontinuity prefetcher (Spracklen et al., HPCA'05 —
 * reference [17] of the paper).
 *
 * The straightforward implementation the paper contrasts Dis against: a
 * table that records, per trigger block, the full *address* of the
 * discontinuous block that followed it, and prefetches that address on
 * the next access to the trigger.  Storing whole addresses is what makes
 * it cost "tens of kilobytes" (Section V.B); Dis replaces the address
 * with a branch offset plus pre-decoding.
 */

#ifndef DCFB_PREFETCH_CLASSIC_DISCONTINUITY_H
#define DCFB_PREFETCH_CLASSIC_DISCONTINUITY_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "exec/arena.h"
#include "prefetch/prefetcher.h"

namespace dcfb::prefetch {

/**
 * Address-table discontinuity prefetcher, optionally with a next-line
 * companion (the HPCA'05 deployment pairs it with a sequential one).
 */
class ClassicDiscontinuity final : public InstrPrefetcher
{
  public:
    /**
     * @param l1i_     cache to prefetch into
     * @param entries_ direct-mapped table size
     * @param with_nl  also prefetch the next line on every access
     * @param arena    optional cell arena for the address table
     */
    ClassicDiscontinuity(mem::L1iCache &l1i_, std::size_t entries_ = 4096,
                         bool with_nl = true, exec::Arena *arena = nullptr)
        : l1i(l1i_), table(entries_, exec::ArenaAlloc<Entry>(arena)),
          withNl(with_nl),
          cRecorded(statSet.lazy("cdis_recorded")),
          cReplayed(statSet.lazy("cdis_replayed")),
          cIssued(statSet.lazy("cdis_issued"))
    {}

    /** Arena bytes an @p entries_ table wants. */
    static std::size_t
    arenaBytes(std::size_t entries_)
    {
        return entries_ * sizeof(Entry) + 64;
    }

    std::string name() const override { return "ClassicDis"; }

    void
    onDemandAccess(Addr block_addr, bool hit) override
    {
        (void)hit;
        pending = blockAlign(block_addr);
        havePending = true;
    }

    void
    onDemandMiss(Addr block_addr, bool sequential) override
    {
        // Record the discontinuity under the previous demand block.
        if (!sequential && lastBlock != kInvalidAddr &&
            !sameBlock(lastBlock, block_addr)) {
            Entry &e = table[index(lastBlock)];
            e.trigger = lastBlock;
            e.target = blockAlign(block_addr);
            cRecorded.add();
        }
        lastBlock = blockAlign(block_addr);
    }

    void
    tick(Cycle now) override
    {
        if (!havePending)
            return;
        havePending = false;
        lastBlock = pending;
        const Entry &e = table[index(pending)];
        if (e.trigger == pending && e.target != kInvalidAddr) {
            cReplayed.add();
            if (l1i.prefetch(e.target, now) ==
                mem::L1iCache::PfOutcome::Issued) {
                cIssued.add();
            }
        }
        if (withNl)
            l1i.prefetch(pending + kBlockBytes, now);
    }

    /** Full target addresses: the storage cost Dis eliminates. */
    std::uint64_t
    storageBits() const override
    {
        return table.size() * (52 + 52);
    }

    const StatSet &stats() const { return statSet; }

  private:
    struct Entry
    {
        Addr trigger = kInvalidAddr;
        Addr target = kInvalidAddr;
    };

    std::size_t
    index(Addr block_addr) const
    {
        return static_cast<std::size_t>(blockNumber(block_addr)) %
            table.size();
    }

    mem::L1iCache &l1i;
    exec::ArenaVector<Entry> table;
    bool withNl;
    Addr lastBlock = kInvalidAddr;
    Addr pending = 0;
    bool havePending = false;
    StatSet statSet;
    obs::LazyCounter cRecorded;
    obs::LazyCounter cReplayed;
    obs::LazyCounter cIssued;
};

} // namespace dcfb::prefetch

#endif // DCFB_PREFETCH_CLASSIC_DISCONTINUITY_H
