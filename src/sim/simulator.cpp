#include "sim/simulator.h"

#include <optional>

#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "rt/watchdog.h"

namespace dcfb::sim {

namespace {

/** Merge a component's counters and histograms under a prefix. */
void
merge(RunResult &out, const std::string &prefix, const StatSet &stats)
{
    for (const auto &kv : stats.all())
        out.stats[prefix + "." + kv.first] += kv.second;
    for (const auto &kv : stats.histograms()) {
        if (kv.second.count == 0)
            continue;
        out.hists[prefix + "." + kv.first].merge(kv.second);
    }
}

} // namespace

rt::Expected<RunResult>
trySimulate(const SystemConfig &config, const RunWindows &windows)
{
    // Profiling walls: setup covers System construction (workload image
    // build or reuse, warm-touch, component wiring); warm/measure cover
    // the two run windows.  All clock reads are gated so unprofiled runs
    // pay nothing.
    const bool prof = obs::Profiler::enabled();
    double mark = prof ? obs::profNow() : 0.0;

    // Span phases mirror the profiling walls.  The scopes parent under
    // the caller's ambient span (exec.cell or svc.run), so one timeline
    // shows which phase of which cell each worker was in; all gated so
    // untraced runs pay one predicted branch.
    const bool spans = obs::Spans::enabled();
    std::optional<obs::SpanScope> simSpan;
    if (spans) {
        simSpan.emplace("sim.simulate", config.profile.name + "/" +
                                            presetName(config.preset));
    }

    // Phase spans are recorded retroactively (start stamp taken before,
    // record after) so the phases stay straight-line code.
    std::uint64_t span_mark = spans ? obs::Spans::nowUs() : 0;
    auto span_phase = [&](const char *name) {
        std::uint64_t t = obs::Spans::nowUs();
        obs::SpanIds cur = obs::Spans::current();
        obs::Spans::record(name, cur.trace, obs::Spans::newSpanId(),
                           cur.span, span_mark, t, {});
        span_mark = t;
    };

    System system(config);

    double setup_seconds = 0.0;
    if (spans)
        span_phase("sim.setup");
    if (prof) {
        double t = obs::profNow();
        setup_seconds = t - mark;
        mark = t;
    }

    const rt::IntegrityConfig &ic = config.integrity;
    const Cycle interval = ic.sweepInterval ? ic.sweepInterval : 8192;

    std::optional<rt::Watchdog> watchdog;
    if (ic.watchdog) {
        watchdog.emplace(ic.watchdogWindow);
        watchdog->setCell(config.profile.name + "/" +
                          presetName(config.preset));
    }

    auto fetched = [&system] {
        return system.fetch->stats().get("fe_fetched");
    };

    // Attach the machine-state snapshot so a wedged or inconsistent run
    // dies with evidence, not just a message.
    auto fail = [&system](rt::Error err) {
        err.with("snapshot", system.snapshot().dump());
        return err;
    };

    // One warm/measure window with periodic integrity sweeps.  The
    // sweeps are read-only, so enabling them does not perturb results.
    auto sweep = [&]() -> std::optional<rt::Error> {
        if (auto checked = system.invariants.check(system.now());
            !checked.ok()) {
            return fail(checked.error());
        }
        if (watchdog) {
            if (auto err = watchdog->observe(
                    system.now(), system.instructions(), fetched())) {
                return fail(std::move(*err));
            }
        }
        return std::nullopt;
    };

    auto run_window = [&](Cycle cycles) -> std::optional<rt::Error> {
        for (Cycle c = 0; c < cycles; ++c) {
            system.step();
            if (system.now() % interval != 0)
                continue;
            if (ic.heartbeat)
                ic.heartbeat();
            if (prof) {
                obs::PhaseTimer t(system.profPhases,
                                  obs::ProfPhase::Integrity);
                if (auto err = sweep())
                    return err;
            } else if (auto err = sweep()) {
                return err;
            }
        }
        return std::nullopt;
    };

    if (auto err = run_window(windows.warm))
        return std::move(*err);

    if (spans)
        span_phase("sim.warm");
    double warm_seconds = 0.0;
    if (prof) {
        double t = obs::profNow();
        warm_seconds = t - mark;
        mark = t;
    }

    std::uint64_t instr_before = system.instructions();
    system.resetStats();
    if (watchdog)
        watchdog->rearm(system.now(), system.instructions(), fetched());

    // Miss-attribution tracing covers exactly the measured window, so
    // the bounded stream is not burnt on warmup traffic.
    bool tracing = obs::Tracing::sinkOpen();
    if (tracing) {
        obs::Tracing::beginRun(config.profile.name,
                               presetName(config.preset));
    }

    auto measure_err = run_window(windows.measure);

    if (tracing)
        obs::Tracing::endRun();
    if (spans)
        span_phase("sim.measure");
    if (measure_err)
        return std::move(*measure_err);

    RunResult res;
    res.workload = config.profile.name;
    res.design = presetName(config.preset);
    res.cycles = windows.measure;
    res.instructions = system.instructions() - instr_before;

    if (prof) {
        obs::ProfRecord rec;
        rec.workload = res.workload;
        rec.design = res.design;
        rec.cycles = windows.warm + windows.measure;
        rec.instructions = system.instructions();
        rec.setupSeconds = setup_seconds;
        rec.warmSeconds = warm_seconds;
        rec.measureSeconds = obs::profNow() - mark;
        rec.phaseSeconds = system.profPhases;
        obs::Profiler::push(std::move(rec));
    }

    merge(res, "sim", system.simStats);
    merge(res, "fe", system.fetch->stats());
    merge(res, "l1i", system.l1i->stats());
    merge(res, "l1d", system.l1d->stats());
    merge(res, "llc", system.llc->stats());
    merge(res, "mem", system.memory->stats());
    merge(res, "noc", system.mesh->stats());
    merge(res, "btb", system.btb->stats());
    merge(res, "tage", system.tage->stats());
    merge(res, "be", system.backend->stats());
    if (system.decoupled) {
        merge(res, "sg", system.decoupled->shotgunBtb().stats());
        merge(res, "bb", system.decoupled->bbBtb().stats());
    }
    if (auto *p = dynamic_cast<prefetch::Sn4lDisBtb *>(
            system.prefetcher.get())) {
        merge(res, "pf", p->stats());
        merge(res, "pf", p->seqTable().stats());
        merge(res, "pf", p->disTable().stats());
        merge(res, "pf", p->rlu().stats());
    }
    if (auto *p = dynamic_cast<prefetch::ConfluencePrefetcher *>(
            system.prefetcher.get())) {
        merge(res, "pf", p->stats());
    }
    if (auto *p = dynamic_cast<prefetch::Fdip *>(
            system.prefetcher.get())) {
        merge(res, "pf", p->stats());
    }
    if (system.microBtb)
        merge(res, "mbtb", system.microBtb->stats());
    // Fault counters only exist under --inject, keeping uninjected
    // reports bit-identical to the pre-integrity format.
    if (system.injector.active())
        merge(res, "rt", system.injector.stats());
    return res;
}

RunResult
simulate(const SystemConfig &config, const RunWindows &windows)
{
    auto res = trySimulate(config, windows);
    return std::move(res.value()); // raises rt::Exception on failure
}

double
fscr(const RunResult &design, const RunResult &baseline)
{
    std::uint64_t base = baseline.frontendStalls();
    if (base == 0)
        return 0.0;
    std::uint64_t mine = design.frontendStalls();
    if (mine >= base)
        return 0.0;
    return 1.0 - static_cast<double>(mine) / static_cast<double>(base);
}

double
speedup(const RunResult &design, const RunResult &baseline)
{
    return baseline.ipc() > 0 ? design.ipc() / baseline.ipc() : 0.0;
}

} // namespace dcfb::sim
