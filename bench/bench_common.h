/**
 * @file
 * Shared helpers for the per-figure bench harnesses.
 *
 * Each bench binary regenerates one table or figure of the paper: same
 * rows/series, measured on the synthetic server workloads.  Absolute
 * numbers differ from the paper's testbed; EXPERIMENTS.md records the
 * paper-vs-measured comparison.
 *
 * Every bench routes its output through a bench::Harness, which adds two
 * flags on top of the text tables (see EXPERIMENTS.md for the schemas):
 *
 *   --json <file>   also write every reported table (same cells as the
 *                   text output) plus recorded scalars as one JSON
 *                   document -- the BENCH_*.json regression format
 *   --trace <file>  stream miss-attribution events from every simulated
 *                   run into <file> (*.jsonl -> JSONL, else Chrome
 *                   trace-event format)
 *   --inject <spec> seeded fault injection applied to every run, e.g.
 *                   drop:rate=0.5,seed=3 (see README "Robustness")
 */

#ifndef DCFB_BENCH_COMMON_H
#define DCFB_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"
#include "rt/faults.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/profiles.h"

namespace dcfb::bench {

/** Bench-wide run windows (shorter than the tests' defaults to keep a
 *  full sweep over every bench binary tractable on one core). */
inline sim::RunWindows
windows()
{
    return sim::RunWindows{150000, 150000};
}

/** The three workloads used for parameter sweeps (largest, middle,
 *  smallest footprint) when a full 7-workload grid would be excessive. */
inline std::vector<std::string>
sweepWorkloads()
{
    return {"OLTP (DB A)", "Web (Apache)", "Web Frontend"};
}

/** All seven workloads, paper order. */
inline std::vector<std::string>
allWorkloads()
{
    return workload::serverWorkloadNames();
}

/** Print the standard bench banner. */
inline void
banner(const char *figure, const char *claim)
{
    std::printf("%s\n  paper: %s\n", figure, claim);
}

/**
 * Per-bench output harness: prints the banner, parses the shared
 * flags, mirrors reported tables/scalars into the JSON document, and
 * flushes everything on destruction.
 */
class Harness
{
  public:
    Harness(int argc, char **argv, const char *figure_, const char *claim_)
        : figure(figure_), claim(claim_)
    {
        parseArgs(argc, argv);
        banner(figure_, claim_);
        if (!tracePath.empty() && obs::Tracing::open(tracePath))
            traceOpened = true;
    }

    ~Harness()
    {
        if (traceOpened)
            obs::Tracing::close();
        if (!jsonPath.empty())
            writeJson();
    }

    Harness(const Harness &) = delete;
    Harness &operator=(const Harness &) = delete;

    /** Print @p table and mirror it into the JSON document. */
    void
    report(const sim::Table &table, const std::string &title)
    {
        table.print(title);
        tables.push(table.toJson(title));
    }

    /** Record a derived scalar in the JSON document (callers print
     *  their own text form; this only feeds the machine output). */
    void
    note(const std::string &key, double value)
    {
        notes[key] = value;
    }

    /** Attach a full RunResult (counters + histograms) to the JSON
     *  document, keyed under "runs". */
    void
    attachRun(const sim::RunResult &result)
    {
        runs.push(sim::toJson(result));
    }

  private:
    void
    parseArgs(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto value = [&](const char *flag) -> std::string {
                std::string prefix = std::string(flag) + "=";
                if (arg.rfind(prefix, 0) == 0 &&
                    arg.size() > prefix.size())
                    return arg.substr(prefix.size());
                if (arg == flag && i + 1 < argc)
                    return argv[++i];
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            };
            if (arg == "--help" || arg == "-h") {
                std::printf("usage: %s [--json <file>] [--trace <file>] "
                            "[--inject <spec>]\n",
                            argv[0]);
                std::exit(0);
            } else if (arg.rfind("--json", 0) == 0) {
                jsonPath = value("--json");
            } else if (arg.rfind("--trace", 0) == 0) {
                tracePath = value("--trace");
            } else if (arg.rfind("--inject", 0) == 0) {
                auto plan = rt::parseFaultPlan(value("--inject"));
                if (!plan.ok()) {
                    std::fprintf(stderr, "%s\n",
                                 plan.error().render().c_str());
                    std::exit(2);
                }
                sim::setDefaultFaultPlan(plan.value());
                injectSpec = rt::faultPlanSpec(plan.value());
                std::printf("  [fault injection: %s]\n",
                            injectSpec.c_str());
            } else {
                std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
                std::exit(2);
            }
        }
    }

    void
    writeJson()
    {
        obs::JsonValue doc = obs::JsonValue::object();
        doc["schema"] = "dcfb-bench-v1";
        doc["figure"] = figure;
        doc["claim"] = claim;
        if (!injectSpec.empty())
            doc["inject"] = injectSpec;
        doc["tables"] = std::move(tables);
        if (!notes.members().empty())
            doc["notes"] = std::move(notes);
        if (!runs.items().empty())
            doc["runs"] = std::move(runs);
        std::ofstream out(jsonPath, std::ios::out | std::ios::trunc);
        if (!out.is_open()) {
            std::fprintf(stderr, "cannot open %s\n", jsonPath.c_str());
            return;
        }
        out << doc.dump(2) << '\n';
        std::printf("\n[json report written to %s]\n", jsonPath.c_str());
    }

    std::string figure;
    std::string claim;
    std::string jsonPath;
    std::string tracePath;
    std::string injectSpec;
    bool traceOpened = false;
    obs::JsonValue tables = obs::JsonValue::array();
    obs::JsonValue notes = obs::JsonValue::object();
    obs::JsonValue runs = obs::JsonValue::array();
};

} // namespace dcfb::bench

#endif // DCFB_BENCH_COMMON_H
