#!/usr/bin/env python3
"""Concurrency smoke test for dcfb-serve (protocol dcfb-svc-v1).

Starts the daemon with a small bounded queue and a cold result cache,
then fires 200 concurrent clients at it over the Unix-domain socket:

  * ~150 valid submits drawn from a small pool of unique specs, so most
    requests are duplicates -- they must be answered from the in-flight
    coalescing map or the result cache, never re-simulated;
  * ~50 malformed or unknown requests, which must come back as typed
    ok:false replies without hurting the daemon or other clients.

Valid clients honor the admission-control contract: a queue_full or
draining reject is retried after the reply's retry_after_ms.  At the
end the script checks the daemon's own accounting (stats op) and then
sends SIGTERM and requires a clean drain: exit code 0 and a final
stats JSON document on stdout.

While the storm runs, a scraper thread polls the `metrics` op and
checks every reply parses as Prometheus text exposition 0.0.4 and
carries the dcfb_jobs_inflight gauge; after the clients drain the
gauge must read 0 again.

Pass criteria (any failure exits non-zero):
  - >= 99% of valid requests produce a fetched result;
  - every duplicate of a spec fetches a result identical to the first;
  - sims_executed == number of unique specs (dedup held);
  - invariant_violations == 0 and queue_peak <= queue_capacity;
  - every invalid request got a well-formed ok:false reply;
  - every metrics scrape is valid exposition with dcfb_jobs_inflight,
    and the gauge returns to 0 once the clients are done;
  - the drain stats carry svc.op.*.latency_us histograms whose
    cumulative buckets are monotone and end at the sample count;
  - SIGTERM => exit 0 with parseable final stats.

Stdlib only; no external dependencies.
"""

import argparse
import json
import os
import random
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

WORKLOADS = [
    "Media Streaming",
    "OLTP (DB A)",
    "Web (Apache)",
    "Web (Zeus)",
    "Web Frontend",
]
PRESETS = ["Baseline", "SN4L+Dis+BTB"]
SEEDS = [1, 2]

INVALID_LINES = [
    "this is not json",
    "[1,2,3]",
    '{"op":"warp"}',
    '{"op":"submit"}',
    '{"op":"submit","workload":"No Such Service","preset":"SN4L"}',
    '{"op":"submit","workload":"Web Frontend","preset":"SN999"}',
    '{"op":"submit","workload":"Web Frontend","preset":"SN4L","warm":100}',
    '{"op":"fetch"}',
    '{"op":"status","job":"job-999999"}',
    '{"op":"submit","workload":"Web Frontend","preset":"SN4L",'
    '"inject":"gibberish spec"}',
]


class Client:
    """One NDJSON request/reply exchange per call, with line buffering.

    `addr` is either a Unix-socket path (str) or a TCP (host, port)
    tuple -- the storm runs unchanged over both transports.
    """

    def __init__(self, addr, timeout=30.0):
        self.sock = None
        self.buf = b""
        deadline = time.monotonic() + timeout
        family = socket.AF_INET if isinstance(addr, tuple) else socket.AF_UNIX
        # The listener's backlog can overflow under the thundering herd;
        # retry the connect until the daemon drains the backlog.
        while True:
            try:
                s = socket.socket(family, socket.SOCK_STREAM)
                s.settimeout(timeout)
                s.connect(addr)
                self.sock = s
                return
            except OSError:
                s.close()
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.02)

    def request_line(self, line):
        self.sock.sendall(line.encode() + b"\n")
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the connection")
            self.buf += chunk
        reply, self.buf = self.buf.split(b"\n", 1)
        return json.loads(reply)

    def request(self, doc):
        return self.request_line(json.dumps(doc))

    def close(self):
        if self.sock:
            self.sock.close()
            self.sock = None


def run_valid(path, spec, out, idx):
    """Submit with backpressure retries, then fetch until terminal."""
    try:
        c = Client(path)
        submit = {
            "op": "submit",
            "workload": spec[0],
            "preset": spec[1],
            "seed": spec[2],
            "warm": 2000,
            "measure": 3000,
        }
        job = None
        for _ in range(2000):
            reply = c.request(submit)
            if reply.get("ok"):
                job = reply["job"]
                break
            if reply.get("error") in ("queue_full", "draining"):
                time.sleep(reply.get("retry_after_ms", 50) / 1000.0)
                continue
            out[idx] = ("reject", reply)
            return
        if job is None:
            out[idx] = ("submit_timeout", None)
            return
        for _ in range(4000):
            reply = c.request({"op": "fetch", "job": job})
            if reply.get("ok"):
                out[idx] = ("done", reply["result"])
                return
            if reply.get("error") == "not_ready":
                time.sleep(reply.get("retry_after_ms", 50) / 1000.0)
                continue
            out[idx] = ("failed", reply)
            return
        out[idx] = ("fetch_timeout", None)
    except Exception as exc:  # noqa: BLE001 - smoke harness, record all
        out[idx] = ("exception", repr(exc))
    finally:
        try:
            c.close()
        except Exception:  # noqa: BLE001
            pass


def parse_exposition(body):
    """Parse Prometheus text exposition 0.0.4 into {name: [(labels, value)]}.

    Raises ValueError on any malformed line, so a scrape doubles as a
    format check.  Histogram child series keep their label part as an
    opaque string; the smoke test only needs names and sample values.
    """
    samples = {}
    for line in body.splitlines():
        if not line or line.startswith("#"):
            if line.startswith("#") and not (
                    line.startswith("# TYPE ") or line.startswith("# HELP ")):
                raise ValueError(f"bad comment line: {line!r}")
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"bad sample line: {line!r}")
        float(value_part)  # must parse (inf/nan allowed)
        if "{" in name_part:
            name, labels = name_part.split("{", 1)
            if not labels.endswith("}"):
                raise ValueError(f"bad label part: {line!r}")
        else:
            name, labels = name_part, ""
        if not name or not all(
                c.isalnum() or c in "_:" for c in name):
            raise ValueError(f"bad metric name: {line!r}")
        samples.setdefault(name, []).append((labels, float(value_part)))
    return samples


def scrape_metrics(path):
    """One metrics request; returns the parsed exposition body."""
    c = Client(path)
    try:
        reply = c.request({"op": "metrics"})
        if not reply.get("ok") or "body" not in reply:
            raise ValueError(f"bad metrics reply: {reply}")
        return parse_exposition(reply["body"])
    finally:
        c.close()


def run_scraper(path, stop, out):
    """Poll the metrics op until told to stop; record any failure."""
    scrapes = 0
    try:
        while not stop.is_set():
            samples = scrape_metrics(path)
            if "dcfb_jobs_inflight" not in samples:
                raise ValueError("dcfb_jobs_inflight missing from scrape")
            scrapes += 1
            stop.wait(0.2)
        out["scrapes"] = scrapes
    except Exception as exc:  # noqa: BLE001
        out["error"] = repr(exc)


def run_invalid(path, line, out, idx):
    """A bad request must yield ok:false and leave the connection live."""
    try:
        c = Client(path)
        reply = c.request_line(line)
        if reply.get("ok") is not False or "error" not in reply:
            out[idx] = ("accepted_bad_input", reply)
            return
        # The connection must survive the bad line.
        pong = c.request({"op": "ping"})
        ok = pong.get("ok") is True
        out[idx] = ("rejected" if ok else "connection_poisoned", reply)
        c.close()
    except Exception as exc:  # noqa: BLE001
        out[idx] = ("exception", repr(exc))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--serve", required=True, help="path to dcfb-serve")
    ap.add_argument("--valid", type=int, default=150)
    ap.add_argument("--invalid", type=int, default=50)
    ap.add_argument("--queue", type=int, default=8)
    ap.add_argument("--jobs", type=int, default=0)
    ap.add_argument("--transport", choices=("unix", "tcp"), default="unix",
                    help="run the storm over the Unix socket or the "
                         "TCP listener (--listen 127.0.0.1:0)")
    args = ap.parse_args()

    tmp = tempfile.mkdtemp(prefix="dcfb-smoke-")
    sock_path = os.path.join(tmp, "svc.sock")
    cache_dir = os.path.join(tmp, "cache")
    cmd = [
        args.serve, "--queue", str(args.queue),
        "--cache", cache_dir, "--warm", "2000", "--measure", "3000",
        "--retry-after-ms", "25",
    ]
    if args.transport == "tcp":
        cmd += ["--listen", "127.0.0.1:0"]
    else:
        cmd += ["--socket", sock_path]
    if args.jobs:
        cmd += ["--jobs", str(args.jobs)]
    print("smoke: starting", " ".join(cmd), flush=True)
    serve = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                             stderr=subprocess.PIPE, text=True)

    # Tail the daemon's stderr: in TCP mode the ephemeral port arrives
    # as a "listening on tcp port N" announcement, and the pipe must be
    # drained either way so the daemon never blocks on a full pipe.
    stderr_lines = []
    port_box = {}
    port_ready = threading.Event()

    def drain_stderr():
        for line in serve.stderr:
            stderr_lines.append(line.rstrip("\n"))
            m = re.search(r"listening on tcp port (\d+)", line)
            if m:
                port_box["port"] = int(m.group(1))
                port_ready.set()
        port_ready.set()
    threading.Thread(target=drain_stderr, daemon=True).start()

    failures = []
    try:
        if args.transport == "tcp":
            if not port_ready.wait(30) or "port" not in port_box:
                print("smoke: daemon never announced its TCP port:",
                      "\n".join(stderr_lines), file=sys.stderr)
                return 1
            sock_path = ("127.0.0.1", port_box["port"])
        else:
            deadline = time.monotonic() + 30
            while not os.path.exists(sock_path):
                if serve.poll() is not None or time.monotonic() > deadline:
                    print("smoke: daemon failed to come up", file=sys.stderr)
                    return 1
                time.sleep(0.05)
        ping = Client(sock_path).request({"op": "ping"})
        assert ping.get("ok"), ping

        scraper_stop = threading.Event()
        scraper_out = {}
        scraper = threading.Thread(
            target=run_scraper,
            args=(sock_path, scraper_stop, scraper_out))
        scraper.start()

        specs = [(w, p, s) for w in WORKLOADS for p in PRESETS
                 for s in SEEDS]
        rng = random.Random(20260806)
        plan = [specs[i % len(specs)] for i in range(args.valid)]
        rng.shuffle(plan)

        valid_out = [None] * args.valid
        invalid_out = [None] * args.invalid
        threads = []
        for i, spec in enumerate(plan):
            threads.append(threading.Thread(
                target=run_valid, args=(sock_path, spec, valid_out, i)))
        for i in range(args.invalid):
            line = INVALID_LINES[i % len(INVALID_LINES)]
            threads.append(threading.Thread(
                target=run_invalid, args=(sock_path, line, invalid_out, i)))
        rng.shuffle(threads)

        t0 = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        wall = time.monotonic() - t0
        print(f"smoke: {len(threads)} clients finished in {wall:.1f}s",
              flush=True)

        scraper_stop.set()
        scraper.join(timeout=30)
        if "error" in scraper_out:
            failures.append(
                f"metrics scrape failed: {scraper_out['error']}")
        else:
            print(f"smoke: {scraper_out.get('scrapes', 0)} metrics "
                  f"scrapes, all valid exposition", flush=True)

        # Every client fetched a terminal result, so the inflight gauge
        # must come back to zero (allow a moment for bookkeeping).
        inflight = None
        for _ in range(100):
            samples = scrape_metrics(sock_path)
            inflight = samples["dcfb_jobs_inflight"][0][1]
            if inflight == 0:
                break
            time.sleep(0.1)
        if inflight != 0:
            failures.append(
                f"dcfb_jobs_inflight={inflight} after clients drained, "
                f"expected 0")

        ok_valid = sum(1 for v in valid_out if v and v[0] == "done")
        need = -(-args.valid * 99 // 100)  # ceil(99%)
        if ok_valid < need:
            bad = [v for v in valid_out if not v or v[0] != "done"][:5]
            failures.append(
                f"only {ok_valid}/{args.valid} valid requests succeeded "
                f"(need >= {need}); sample failures: {bad}")

        # Duplicates must fetch identical results.
        first = {}
        for spec, v in zip(plan, valid_out):
            if not v or v[0] != "done":
                continue
            blob = json.dumps(v[1], sort_keys=True)
            if spec in first and first[spec] != blob:
                failures.append(f"divergent results for duplicate {spec}")
            first.setdefault(spec, blob)

        bad_invalid = [v for v in invalid_out if not v or v[0] != "rejected"]
        if bad_invalid:
            failures.append(
                f"{len(bad_invalid)} invalid requests mishandled: "
                f"{bad_invalid[:5]}")

        # A request's own latency is sampled after its reply is built,
        # so take the snapshot twice: the second sees the first's sample
        # and every op the storm exercised has a populated histogram.
        stats_client = Client(sock_path)
        stats_client.request({"op": "stats"})
        stats = stats_client.request({"op": "stats"})
        stats_client.close()
        counters = stats.get("counters", {})
        sims = counters.get("svc.sims_executed")
        if sims != len(specs):
            failures.append(
                f"sims_executed={sims}, expected {len(specs)} unique "
                f"specs (duplicates were re-simulated)")
        if counters.get("svc.invariant_violations") != 0:
            failures.append(f"invariant violations: {counters}")
        if stats.get("queue_peak", 0) > stats.get("queue_capacity", 0):
            failures.append(
                f"queue bound broken: peak {stats.get('queue_peak')} > "
                f"capacity {stats.get('queue_capacity')}")
        cache = stats.get("cache", {})
        if cache.get("stores") != len(specs):
            failures.append(
                f"cache stores={cache.get('stores')}, expected "
                f"{len(specs)}")
        # Per-op latency histograms: present for every op the storm
        # exercised, with monotone cumulative buckets ending at count.
        hists = stats.get("hists", {})
        for op in ("submit", "fetch", "ping", "stats"):
            name = f"svc.op.{op}.latency_us"
            h = hists.get(name)
            if not h:
                failures.append(f"stats missing histogram {name}")
                continue
            if h.get("count", 0) <= 0:
                failures.append(f"{name} recorded no samples")
                continue
            counts = [b["count"] for b in h.get("buckets", [])]
            if counts != sorted(counts):
                failures.append(f"{name} buckets not monotone: {counts}")
            if counts and counts[-1] != h["count"]:
                failures.append(
                    f"{name} cumulative tail {counts[-1]} != "
                    f"count {h['count']}")

        dedup = counters.get("svc.coalesced", 0) + \
            counters.get("svc.cache_hits", 0)
        print(f"smoke: sims={sims} coalesced+cache_hits={dedup} "
              f"queue_peak={stats.get('queue_peak')} "
              f"rejected_full={counters.get('svc.rejected_full')}",
              flush=True)
    finally:
        try:
            scraper_stop.set()
            scraper.join(timeout=5)
        except NameError:
            pass  # failed before the scraper started
        serve.send_signal(signal.SIGTERM)
        try:
            stdout, _ = serve.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            serve.kill()
            stdout, _ = serve.communicate()
            failures.append("daemon did not drain within 60s of SIGTERM")

    if serve.returncode != 0:
        failures.append(f"daemon exit code {serve.returncode}, expected 0")
    try:
        final = json.loads(stdout)
        assert "counters" in final
    except (ValueError, AssertionError):
        failures.append(f"final stats not valid JSON: {stdout[:200]!r}")

    if failures:
        for f in failures:
            print("smoke FAIL:", f, file=sys.stderr)
        return 1
    print("smoke PASS", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
