/**
 * @file
 * Tests for the parallel experiment engine: exec::Pool semantics
 * (bounded queue, exception propagation, drain-on-destruction), the
 * jobs-resolution rules, workload::ImageCache sharing, and -- the
 * contract everything else rests on -- that `--jobs 1` and `--jobs 4`
 * grids produce identical RunResults for every cell of every preset.
 * The parallel grid tests double as the TSan target: CI runs this
 * binary under ThreadSanitizer to prove the concurrency model clean.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/pool.h"
#include "exec/schedule.h"
#include "obs/trace.h"
#include "rt/watchdog.h"
#include "sim/experiment.h"
#include "workload/profiles.h"

namespace dcfb {
namespace {

TEST(Pool, RunsEveryTask)
{
    exec::Pool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
    EXPECT_EQ(pool.tasksRun(), 100u);
    EXPECT_EQ(pool.workers(), 4u);
}

TEST(Pool, DefaultQueueCapacityIsTwiceWorkers)
{
    exec::Pool pool(3);
    EXPECT_EQ(pool.queueCapacity(), 6u);
}

TEST(Pool, BoundedQueueBlocksSubmitter)
{
    exec::Pool pool(1, /*queue_capacity=*/1);

    std::mutex m;
    std::condition_variable cv;
    bool release = false;

    // Occupy the single worker so submitted tasks stay queued.
    pool.submit([&] {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return release; });
    });
    // Give the worker a moment to pick the blocker up, then fill the
    // one queue slot.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pool.submit([] {});

    // A further submit must block until the worker frees the slot.
    std::atomic<bool> submitted{false};
    std::thread producer([&] {
        pool.submit([] {});
        submitted = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(submitted.load());

    {
        std::unique_lock<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    producer.join();
    EXPECT_TRUE(submitted.load());
    pool.wait();
    EXPECT_EQ(pool.tasksRun(), 3u);
}

TEST(Pool, FirstExceptionRethrownAtBarrier)
{
    exec::Pool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&ran, i] {
            ++ran;
            if (i == 3)
                throw std::runtime_error("cell failure");
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // Every task still ran: one bad cell does not cancel its siblings.
    EXPECT_EQ(ran.load(), 8);
    // The barrier cleared the error; the pool remains usable.
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 9);
}

TEST(Pool, LaterExceptionsAreCountedNotLost)
{
    exec::Pool pool(2);
    for (int i = 0; i < 4; ++i)
        pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(pool.exceptionsDropped(), 3u);
}

TEST(Pool, DestructorDrainsPendingWork)
{
    std::atomic<int> count{0};
    {
        exec::Pool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&count] { ++count; });
        // No wait(): shutdown must still complete all submitted work.
    }
    EXPECT_EQ(count.load(), 32);
}

TEST(Pool, BusySecondsAccumulate)
{
    exec::Pool pool(2);
    for (int i = 0; i < 4; ++i) {
        pool.submit([] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        });
    }
    pool.wait();
    EXPECT_GE(pool.busySeconds(), 0.015);
}

TEST(Schedule, ResolveJobsPrecedence)
{
    unsigned saved = exec::defaultJobs();
    exec::setDefaultJobs(3);
    EXPECT_EQ(exec::resolveJobs(), 3u);
    EXPECT_EQ(exec::resolveJobs(2), 2u); // explicit request wins
    exec::setDefaultJobs(0);
    EXPECT_EQ(exec::resolveJobs(), exec::hardwareJobs()); // auto
    exec::setDefaultJobs(saved);
}

TEST(Schedule, ParallelForMatchesSerialLoop)
{
    std::vector<int> serial(64), parallel(64);
    for (std::size_t i = 0; i < serial.size(); ++i)
        serial[i] = static_cast<int>(i * i + 1);
    exec::parallelFor(parallel.size(), 4, [&](std::size_t i) {
        parallel[i] = static_cast<int>(i * i + 1);
    });
    EXPECT_EQ(parallel, serial);
}

TEST(Schedule, RunIndexedReportsCellsAndOccupancy)
{
    auto report = exec::runIndexed(
        "unit", 6, 2,
        [](std::size_t) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        },
        [](std::size_t i) { return "cell-" + std::to_string(i); });
    EXPECT_EQ(report.label, "unit");
    EXPECT_EQ(report.jobs, 2u);
    EXPECT_EQ(report.cells, 6u);
    ASSERT_EQ(report.cellTimes.size(), 6u);
    EXPECT_EQ(report.cellTimes[5].label, "cell-5");
    EXPECT_GT(report.cellTimes[0].seconds, 0.0);
    EXPECT_GT(report.wallSeconds, 0.0);
    EXPECT_GT(report.occupancy(), 0.0);
    EXPECT_LE(report.occupancy(), 1.0 + 1e-9);
}

TEST(Schedule, ExecLogDrainsPushedReports)
{
    exec::ExecLog::drain(); // discard whatever earlier tests logged
    exec::ExecReport r;
    r.label = "probe";
    r.jobs = 2;
    exec::ExecLog::push(r);
    auto drained = exec::ExecLog::drain();
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].label, "probe");
    EXPECT_TRUE(exec::ExecLog::drain().empty());
}

TEST(ImageCache, SharesOneBuildPerProfile)
{
    workload::ImageCache cache;
    auto a = cache.server("Web (Apache)");
    auto b = cache.server("Web (Apache)");
    EXPECT_EQ(a.get(), b.get()); // the same immutable program
    EXPECT_EQ(cache.built(), 1u);
    EXPECT_EQ(cache.hits(), 1u);

    // The VL-ISA flavour is a different image, cached separately.
    auto vl = cache.server("Web (Apache)", true);
    EXPECT_NE(vl.get(), a.get());
    EXPECT_EQ(cache.built(), 2u);

    // A tweaked profile must not alias the stock entry.
    auto profile = workload::serverProfile("Web (Apache)");
    profile.numFunctions += 1;
    auto tweaked = cache.get(profile);
    EXPECT_NE(tweaked.get(), a.get());
    EXPECT_EQ(cache.built(), 3u);
}

TEST(ImageCache, SharedProgramsSurviveClear)
{
    workload::ImageCache cache;
    auto a = cache.server("Web Frontend");
    cache.clear();
    EXPECT_GT(a->codeBytes(), 0u); // our ref keeps the image alive
    auto b = cache.server("Web Frontend");
    EXPECT_NE(a.get(), b.get()); // rebuilt after clear
    EXPECT_EQ(a->codeEnd, b->codeEnd); // deterministic build
}

TEST(Watchdog, TripCarriesCellLabel)
{
    rt::Watchdog wd(100);
    wd.setCell("Web (Apache)/SN4L");
    wd.rearm(0, 10, 10);
    EXPECT_FALSE(wd.observe(50, 10, 10).has_value());
    auto err = wd.observe(500, 10, 10);
    ASSERT_TRUE(err.has_value());
    bool found = false;
    for (const auto &kv : err->context)
        found |= kv.first == "cell" && kv.second == "Web (Apache)/SN4L";
    EXPECT_TRUE(found);
}

// -- Grid-level determinism and sharing ---------------------------------

sim::RunWindows
gridWindows()
{
    return sim::RunWindows{10000, 15000};
}

sim::ExperimentGrid::ConfigHook
fastWarmHook()
{
    return [](sim::SystemConfig &cfg) { cfg.functionalWarmInstrs = 150000; };
}

std::vector<sim::Preset>
allPresets()
{
    return {sim::Preset::Baseline,   sim::Preset::NL,
            sim::Preset::N2L,        sim::Preset::N4L,
            sim::Preset::N8L,        sim::Preset::N4LPlain,
            sim::Preset::SN4L,       sim::Preset::DisOnly,
            sim::Preset::SN4LDis,    sim::Preset::SN4LDisBtb,
            sim::Preset::ClassicDis, sim::Preset::Confluence,
            sim::Preset::Boomerang,  sim::Preset::Shotgun,
            sim::Preset::PerfectL1i, sim::Preset::PerfectL1iBtb,
            sim::Preset::Fdip,       sim::Preset::MicroBtb};
}

TEST(ParallelGrid, JobsOneMatchesJobsFourAcrossAllPresets)
{
    const std::vector<std::string> workloads = {"Web Frontend"};

    sim::ExperimentGrid serial(allPresets(), gridWindows(), fastWarmHook());
    serial.run(workloads, 1);
    sim::ExperimentGrid parallel(allPresets(), gridWindows(),
                                 fastWarmHook());
    parallel.run(workloads, 4);

    for (const auto &name : workloads) {
        for (auto preset : allPresets()) {
            const auto &a = serial.at(name, preset);
            const auto &b = parallel.at(name, preset);
            // Full structural equality: counters, histograms, identity.
            EXPECT_EQ(a, b) << name << "/" << sim::presetName(preset);
        }
    }
    EXPECT_EQ(serial.execReport().jobs, 1u);
    EXPECT_EQ(parallel.execReport().jobs, 4u);
    EXPECT_EQ(parallel.execReport().cells, allPresets().size());
}

TEST(ParallelGrid, GridReusesCachedImagesAcrossRuns)
{
    auto &cache = workload::ImageCache::global();
    sim::ExperimentGrid first({sim::Preset::Baseline, sim::Preset::SN4L},
                              gridWindows(), fastWarmHook());
    first.run({"Web (Apache)"}, 2);
    std::size_t after_first = cache.built();

    sim::ExperimentGrid second({sim::Preset::Baseline, sim::Preset::SN4L},
                               gridWindows(), fastWarmHook());
    second.run({"Web (Apache)"}, 2);
    // Same profile, same knobs: the second grid built nothing new.
    EXPECT_EQ(cache.built(), after_first);
    EXPECT_EQ(first.at("Web (Apache)", sim::Preset::SN4L),
              second.at("Web (Apache)", sim::Preset::SN4L));
}

/** The tracer merges per-thread run buffers at close in a canonical
 *  (workload, design) order, so the stream written by a parallel grid
 *  must be byte-identical to the serial one.  This is the regression
 *  gate for removing the PR 3 serial-only trace clamp. */
TEST(ParallelGrid, TraceMergeIsJobCountInvariant)
{
    auto tracedGrid = [](const std::string &path, unsigned jobs) {
        ASSERT_TRUE(obs::Tracing::open(path));
        sim::ExperimentGrid grid(
            {sim::Preset::Baseline, sim::Preset::NL, sim::Preset::SN4L,
             sim::Preset::SN4LDisBtb},
            gridWindows(), fastWarmHook());
        grid.run({"Web Frontend", "Web (Apache)"}, jobs);
        obs::Tracing::close();
    };
    auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream out;
        out << in.rdbuf();
        return out.str();
    };

    const std::string serial_path = "trace_merge_serial.jsonl";
    const std::string parallel_path = "trace_merge_parallel.jsonl";
    tracedGrid(serial_path, 1);
    tracedGrid(parallel_path, 4);

    std::string serial = slurp(serial_path);
    std::string parallel = slurp(parallel_path);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    std::remove(serial_path.c_str());
    std::remove(parallel_path.c_str());
}

/** The TSan workhorse: several workers simulating concurrently, every
 *  cell of one workload sharing one immutable image. */
TEST(ParallelGrid, ParallelRunIsRaceFree)
{
    sim::ExperimentGrid grid(
        {sim::Preset::Baseline, sim::Preset::SN4L, sim::Preset::SN4LDisBtb,
         sim::Preset::Shotgun},
        gridWindows(), fastWarmHook());
    grid.run({"Web Frontend", "Web (Apache)"}, 4);
    EXPECT_GT(grid.at("Web Frontend", sim::Preset::Baseline).ipc(), 0.0);
    EXPECT_EQ(grid.execReport().cells, 8u);
    EXPECT_GT(grid.execReport().occupancy(), 0.0);
}

} // namespace
} // namespace dcfb
