#include "obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace dcfb::obs {

namespace {

void
appendUint(std::string &out, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out += buf;
}

void
appendDouble(std::string &out, double value)
{
    if (!std::isfinite(value)) {
        out += value > 0 ? "+Inf" : (value < 0 ? "-Inf" : "NaN");
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    out += buf;
}

void
typeLine(std::string &out, const std::string &name, const char *type)
{
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
}

} // namespace

std::string
promName(std::string_view raw)
{
    std::string name;
    name.reserve(raw.size());
    for (char c : raw) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '_' || c == ':';
        name += ok ? c : '_';
    }
    if (name.empty() || (name[0] >= '0' && name[0] <= '9'))
        name.insert(name.begin(), '_');
    return name;
}

void
promCounter(std::string &out, const std::string &name,
            std::uint64_t value)
{
    typeLine(out, name, "counter");
    out += name;
    out += ' ';
    appendUint(out, value);
    out += '\n';
}

void
promGauge(std::string &out, const std::string &name, double value)
{
    typeLine(out, name, "gauge");
    out += name;
    out += ' ';
    appendDouble(out, value);
    out += '\n';
}

void
promHistogram(std::string &out, const std::string &name,
              const HistogramSnapshot &snap)
{
    typeLine(out, name, "histogram");
    std::uint64_t cumulative = 0;
    for (const auto &bucket : snap.buckets) {
        cumulative += bucket.second;
        out += name;
        out += "_bucket{le=\"";
        appendUint(out, histBucketHigh(bucket.first));
        out += "\"} ";
        appendUint(out, cumulative);
        out += '\n';
    }
    out += name;
    out += "_bucket{le=\"+Inf\"} ";
    appendUint(out, snap.count);
    out += '\n';
    out += name;
    out += "_sum ";
    appendUint(out, snap.sum);
    out += '\n';
    out += name;
    out += "_count ";
    appendUint(out, snap.count);
    out += '\n';
}

void
promInfo(std::string &out, const std::string &name,
         std::initializer_list<std::pair<std::string_view,
                                         std::string_view>> labels)
{
    typeLine(out, name, "gauge");
    out += name;
    out += '{';
    bool first = true;
    for (const auto &label : labels) {
        if (!first)
            out += ',';
        first = false;
        out += label.first;
        out += "=\"";
        for (char c : label.second) {
            if (c == '\\' || c == '"')
                out += '\\';
            if (c == '\n') {
                out += "\\n";
                continue;
            }
            out += c;
        }
        out += '"';
    }
    out += "} 1\n";
}

} // namespace dcfb::obs
