/**
 * @file
 * Micro BTB: a large, slow last-level BTB backing the conventional BTB.
 *
 * Models the competitor design of "Micro BTB: A High Performance and
 * Lightweight Last-Level Branch Target Buffer for Servers" at the level
 * this simulator cares about: when the 2 K-entry main BTB misses, the
 * frontend probes a much larger second-level table; a hit there promotes
 * the entry into the main BTB for a small fill latency instead of paying
 * the full decode-time redirect.  Misses in both levels behave exactly
 * like the baseline BTB miss.
 *
 * Unlike mem::SetAssocCache (which asserts power-of-two set counts and
 * keys by block address), this table indexes sets by PC modulo the set
 * count, so non-power-of-two geometries are legal — the differential
 * tests exercise them.  Replacement is true LRU with the same victim
 * rules as SetAssocCache: first invalid way, else the strictly lowest
 * last-use age (earlier way wins ties).
 */

#ifndef DCFB_FRONTEND_MICRO_BTB_H
#define DCFB_FRONTEND_MICRO_BTB_H

#include <cstdint>

#include "common/stats.h"
#include "common/types.h"
#include "exec/arena.h"
#include "isa/encoding.h"

namespace dcfb::frontend {

/** Micro-BTB geometry and promote timing. */
struct MicroBtbConfig
{
    unsigned entries = 16 * 1024; //!< total entries (sets need not be pow2)
    unsigned assoc = 4;           //!< ways per set
    Cycle fillLatency = 2;        //!< promote-into-main-BTB bubble
};

/** One micro-BTB entry's payload. */
struct MicroBtbEntry
{
    Addr target = kInvalidAddr;
    isa::InstrKind kind = isa::InstrKind::CondBranch;
};

/**
 * Set-associative last-level BTB keyed by branch PC, modulo-indexed.
 */
class MicroBtb
{
  public:
    /** A displaced entry (differential tests check evict ordering). */
    struct Evicted
    {
        bool valid = false;
        Addr pc = kInvalidAddr;
    };

    explicit MicroBtb(const MicroBtbConfig &config,
                      exec::Arena *arena = nullptr)
        : cfg(config), numSets(config.entries / config.assoc),
          ways(std::size_t{numSets} * config.assoc,
               exec::ArenaAlloc<Way>(arena)),
          cProbes(statSet.lazy("mbtb_probes")),
          cHits(statSet.lazy("mbtb_hits")),
          cMisses(statSet.lazy("mbtb_misses")),
          cFills(statSet.lazy("mbtb_fills")),
          cEvicts(statSet.lazy("mbtb_evicts")),
          cPromotes(statSet.lazy("mbtb_promotes")),
          cPromoteStallCycles(statSet.lazy("mbtb_promote_stall_cycles"))
    {}

    /** Arena bytes the configured geometry wants. */
    static std::size_t
    arenaBytes(const MicroBtbConfig &config)
    {
        return std::size_t{config.entries / config.assoc} * config.assoc *
            sizeof(Way);
    }

    /** Probe for the branch at @p pc; nullptr on miss.  Counts stats and
     *  refreshes the hit way's LRU age. */
    const MicroBtbEntry *
    probe(Addr pc)
    {
        cProbes.add();
        Way *w = find(pc, /*touch=*/true);
        if (w) {
            cHits.add();
            return &w->entry;
        }
        cMisses.add();
        return nullptr;
    }

    /** Presence probe without statistics or LRU movement. */
    bool contains(Addr pc) { return find(pc, /*touch=*/false) != nullptr; }

    /** Install or update the branch at @p pc; returns the victim. */
    Evicted
    fill(Addr pc, Addr target, isa::InstrKind kind)
    {
        cFills.add();
        if (Way *w = find(pc, /*touch=*/true)) {
            w->entry.target = target;
            w->entry.kind = kind;
            return {};
        }
        Way *victim = nullptr;
        std::size_t base = std::size_t{setIndex(pc)} * cfg.assoc;
        for (unsigned i = 0; i < cfg.assoc; ++i) {
            Way &w = ways[base + i];
            if (!w.valid) {
                victim = &w;
                break;
            }
            if (!victim || w.lastUse < victim->lastUse)
                victim = &w;
        }
        Evicted ev;
        if (victim->valid) {
            ev.valid = true;
            ev.pc = victim->pc;
            cEvicts.add();
        }
        victim->valid = true;
        victim->pc = pc;
        victim->lastUse = ++tick;
        victim->entry.target = target;
        victim->entry.kind = kind;
        return ev;
    }

    /** Account one promote of a hit entry into the main BTB. */
    void
    notePromote()
    {
        cPromotes.add();
        cPromoteStallCycles.add(cfg.fillLatency);
    }

    Cycle promoteLatency() const { return cfg.fillLatency; }

    /** Metadata storage in bits (Table II-style audit): partial tag,
     *  target and kind per entry. */
    std::uint64_t
    storageBits() const
    {
        return std::uint64_t{cfg.entries} * (16 + 46 + 2);
    }

    unsigned sets() const { return numSets; }
    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }

  private:
    struct Way
    {
        Addr pc = kInvalidAddr;
        std::uint64_t lastUse = 0;
        MicroBtbEntry entry{};
        bool valid = false;
    };

    unsigned
    setIndex(Addr pc) const
    {
        // Modulo (not mask) indexing: the set count may be any value.
        return static_cast<unsigned>(pc % numSets);
    }

    Way *
    find(Addr pc, bool touch)
    {
        std::size_t base = std::size_t{setIndex(pc)} * cfg.assoc;
        for (unsigned i = 0; i < cfg.assoc; ++i) {
            Way &w = ways[base + i];
            if (w.valid && w.pc == pc) {
                if (touch)
                    w.lastUse = ++tick;
                return &w;
            }
        }
        return nullptr;
    }

    MicroBtbConfig cfg;
    unsigned numSets;
    exec::ArenaVector<Way> ways;
    std::uint64_t tick = 0;

    StatSet statSet;
    obs::LazyCounter cProbes, cHits, cMisses, cFills, cEvicts, cPromotes,
        cPromoteStallCycles;
};

} // namespace dcfb::frontend

#endif // DCFB_FRONTEND_MICRO_BTB_H
