/**
 * @file
 * Figure 7: predictability of the branch instruction responsible for a
 * discontinuity.  For each block, compare consecutive discontinuity-
 * causing branches; the paper reports the same instruction 78-83 % of
 * the time (80 % average), which is what lets DisTable store a single
 * offset per block.
 */

#include <unordered_map>

#include "bench_common.h"
#include "workload/trace.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 7 - dominant discontinuity branch per block",
                  "78-83% of discontinuities repeat the same branch");

    sim::Table table({"workload", "discontinuities", "same-branch rate"});
    double sum = 0.0;
    auto names = bench::allWorkloads();
    for (const auto &name : names) {
        auto program = workload::buildProgram(workload::serverProfile(name));
        workload::TraceWalker walker(program, 7);

        std::unordered_map<Addr, Addr> last_branch; //!< block -> branch pc
        std::uint64_t total = 0, same = 0;
        workload::TraceEntry prev = walker.next();
        for (int i = 1; i < 2000000; ++i) {
            workload::TraceEntry e = walker.next();
            bool discontinuity = prev.isBranch() && prev.taken &&
                !sameBlock(prev.pc + prev.len, e.pc) &&
                blockNumber(e.pc) != blockNumber(prev.pc) + 1;
            if (discontinuity) {
                Addr block = blockAlign(prev.pc);
                auto [it, fresh] = last_branch.try_emplace(block, prev.pc);
                if (!fresh) {
                    ++total;
                    same += it->second == prev.pc;
                    it->second = prev.pc;
                }
            }
            prev = e;
        }
        double rate = total ? static_cast<double>(same) /
                static_cast<double>(total)
                            : 0.0;
        sum += rate;
        table.addRow({name, std::to_string(total), sim::Table::pct(rate)});
    }
    table.addRow({"Average", "",
                  sim::Table::pct(sum / static_cast<double>(names.size()))});
    h.report(table, "Predictability of the discontinuity branch");
    return 0;
}
