#include "svc/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/span.h"

namespace dcfb::svc {

namespace {

rt::Error
clientError(const std::string &message)
{
    return rt::Error(rt::ErrorKind::Config, message)
        .with("errno", std::strerror(errno));
}

const std::string *
stringMember(const obs::JsonValue &doc, const std::string &name)
{
    const obs::JsonValue *v = doc.find(name);
    if (!v || v->kind() != obs::JsonValue::Kind::String)
        return nullptr;
    return &v->asString();
}

} // namespace

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    framer.reset();
}

rt::Expected<void>
Client::connect(const std::string &endpoint)
{
    close();
    socketPath = endpoint;
    auto connected = isTcpEndpoint(endpoint) ? tcpConnect(endpoint)
                                             : unixConnect(endpoint);
    if (!connected.ok()) {
        lastErrno = errno;
        return connected.error();
    }
    fd = connected.value();
    lastErrno = 0;
    applyRecvTimeout();
    return {};
}

rt::Expected<void>
Client::connectWithRetry(const std::string &endpoint,
                         unsigned max_retries)
{
    std::uint64_t backoff_ms = policy.submitBackoffMs;
    std::uint64_t spent_ms = 0;
    for (unsigned attempt = 0;; ++attempt) {
        auto connected = connect(endpoint);
        if (connected.ok())
            return {};
        // Only the "daemon not up yet" family is worth waiting out:
        // refused (nothing listening), timed out (host slow to come
        // up), and a Unix-socket file not bound yet.  Anything else
        // (bad host, permissions) will not improve by retrying.
        bool transient = lastErrno == ECONNREFUSED ||
            lastErrno == ETIMEDOUT || lastErrno == ENOENT ||
            lastErrno == ECONNRESET;
        if (!transient || attempt + 1 >= max_retries) {
            rt::Error err = connected.error();
            return std::move(err)
                .with("attempts", std::uint64_t{attempt} + 1)
                .with("spent_ms", spent_ms);
        }
        double scaled = static_cast<double>(
                            std::min(backoff_ms, policy.capMs)) *
            (0.5 + jitter.uniform());
        std::uint64_t ms = static_cast<std::uint64_t>(scaled);
        ms = ms ? ms : 1;
        if (policy.budgetMs && spent_ms + ms > policy.budgetMs) {
            rt::Error err = connected.error();
            return std::move(err)
                .with("stage", "connect")
                .with("budget_ms", policy.budgetMs)
                .with("spent_ms", spent_ms)
                .with("attempts", std::uint64_t{attempt} + 1);
        }
        spent_ms += ms;
        backoff_ms = std::min(backoff_ms * 2, policy.capMs);
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
}

void
Client::setRetryPolicy(const RetryPolicy &p)
{
    policy = p;
    std::uint64_t seed = policy.jitterSeed;
    if (seed == 0) {
        seed = static_cast<std::uint64_t>(::getpid()) *
            0x9e3779b97f4a7c15ull;
    }
    jitter = Rng(seed);
    applyRecvTimeout();
}

void
Client::applyRecvTimeout()
{
    if (fd < 0 || policy.recvTimeoutMs == 0)
        return;
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(policy.recvTimeoutMs / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((policy.recvTimeoutMs % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

rt::Expected<void>
Client::sendAll(const std::string &text)
{
    std::size_t off = 0;
    while (off < text.size()) {
        ssize_t w = ::send(fd, text.data() + off, text.size() - off,
                           MSG_NOSIGNAL);
        if (w < 0 && errno == EINTR)
            continue; // interrupted by a signal, not a dead socket
        if (w <= 0) {
            lastErrno = w < 0 ? errno : 0;
            return clientError("send to daemon failed");
        }
        off += static_cast<std::size_t>(w);
    }
    return {};
}

rt::Expected<std::string>
Client::recvLine()
{
    for (;;) {
        if (auto line = framer.next())
            return std::move(*line);
        char buf[4096];
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue; // interrupted by a signal; the reply may still come
        if (n <= 0) {
            lastErrno = n < 0 ? errno : 0;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                return clientError("daemon reply timed out");
            return clientError("daemon closed the connection");
        }
        if (auto fed = framer.feed(buf, static_cast<std::size_t>(n));
            !fed.ok()) {
            return fed.error();
        }
    }
}

rt::Expected<obs::JsonValue>
Client::receive()
{
    if (fd < 0)
        return rt::Error(rt::ErrorKind::Config, "client is not connected");
    auto reply_line = recvLine();
    if (!reply_line.ok())
        return reply_line.error();
    auto reply = obs::JsonValue::parse(reply_line.value());
    if (!reply) {
        return rt::Error(rt::ErrorKind::Config,
                         "daemon reply is not valid JSON")
            .with("reply", reply_line.value());
    }
    return std::move(*reply);
}

rt::Expected<obs::JsonValue>
Client::requestLine(const std::string &line)
{
    if (fd < 0)
        return rt::Error(rt::ErrorKind::Config, "client is not connected");
    if (auto sent = sendAll(line + "\n"); !sent.ok())
        return sent.error();
    return receive();
}

rt::Expected<obs::JsonValue>
Client::request(const obs::JsonValue &doc)
{
    return requestLine(doc.dump());
}

rt::Expected<obs::JsonValue>
Client::submitAndWait(const obs::JsonValue &doc, unsigned max_retries)
{
    // When the span sink is open, the whole submit+fetch round-trip is
    // one client span and its IDs ride along on the wire, so the
    // daemon's handling spans land in the same trace.
    std::optional<obs::SpanScope> span;
    obs::JsonValue submit = doc;
    if (obs::Spans::enabled()) {
        const std::string *label = stringMember(doc, "workload");
        span.emplace("client.submit_wait", label ? *label : std::string());
        submit["trace_id"] = span->traceId();
        submit["parent_span"] = span->spanId();
    }

    // Failure accounting shared by the submit and fetch phases.
    // `attempt` counts consecutive failures (admission rejects,
    // transport errors, unknown_job restarts) and resets on any healthy
    // reply; `retry_spent_ms` charges failure sleeps against the
    // budget.  The exponential base doubles per consecutive failure up
    // to capMs; `retry_after_ms` hints override the base for one sleep.
    unsigned attempt = 0;
    std::uint64_t retry_spent_ms = 0;
    std::uint64_t backoff_base_ms = policy.submitBackoffMs;

    auto jittered = [&](std::uint64_t base) -> std::uint64_t {
        double scaled =
            static_cast<double>(base) * (0.5 + jitter.uniform());
        auto ms = static_cast<std::uint64_t>(scaled);
        return ms ? ms : 1;
    };
    auto healthy = [&] {
        attempt = 0;
        backoff_base_ms = policy.submitBackoffMs;
    };
    auto budgetError = [&](const char *stage) {
        return rt::Error(rt::ErrorKind::Config, "retry budget exhausted")
            .with("stage", stage)
            .with("budget_ms", policy.budgetMs)
            .with("spent_ms", retry_spent_ms)
            .with("attempts", std::uint64_t{attempt});
    };
    // One failure backoff: pick the delay (hint > exponential base),
    // charge the budget, sleep, and grow the base for next time.
    // Returns false when the budget cannot afford the sleep.
    auto failureBackoff = [&](const obs::JsonValue *reply) -> bool {
        std::uint64_t base = std::min(backoff_base_ms, policy.capMs);
        if (reply) {
            if (const obs::JsonValue *hint = reply->find("retry_after_ms");
                hint && hint->kind() == obs::JsonValue::Kind::Uint) {
                base = hint->asUint();
            }
        }
        std::uint64_t ms = jittered(base);
        if (policy.budgetMs && retry_spent_ms + ms > policy.budgetMs)
            return false;
        retry_spent_ms += ms;
        backoff_base_ms = std::min(backoff_base_ms * 2, policy.capMs);
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        return true;
    };
    auto reconnect = [&] {
        if (!socketPath.empty())
            (void)connect(socketPath);
    };

    // Outer loop: one full submit+fetch lifecycle per iteration; a
    // post-restart `unknown_job` fetch reply restarts it with an
    // idempotent resubmit (the daemon dedupes by fingerprint).
    for (;;) {
        std::string job;
        for (;;) {
            auto reply = request(submit);
            if (!reply.ok()) {
                if (++attempt >= max_retries) {
                    rt::Error err = reply.error();
                    return std::move(err).with("attempts",
                                               std::uint64_t{attempt});
                }
                if (!failureBackoff(nullptr))
                    return budgetError("submit");
                reconnect();
                continue;
            }
            const obs::JsonValue &r = reply.value();
            const obs::JsonValue *ok = r.find("ok");
            if (ok && ok->kind() == obs::JsonValue::Kind::Bool &&
                ok->asBool()) {
                const std::string *id = stringMember(r, "job");
                if (!id) {
                    return rt::Error(rt::ErrorKind::Config,
                                     "submit reply has no job id");
                }
                job = *id;
                healthy();
                break;
            }
            const std::string *code = stringMember(r, "error");
            bool retryable = code &&
                (*code == "queue_full" || *code == "draining" ||
                 *code == "journal_error");
            if (!retryable || attempt + 1 >= max_retries) {
                return rt::Error(rt::ErrorKind::Config, "submit rejected")
                    .with("error", code ? *code : "?")
                    .with("attempts", std::uint64_t{attempt} + 1);
            }
            ++attempt;
            if (!failureBackoff(&r))
                return budgetError("submit");
        }

        obs::JsonValue fetch = obs::JsonValue::object();
        fetch["op"] = "fetch";
        fetch["job"] = job;
        if (span) {
            fetch["trace_id"] = span->traceId();
            fetch["parent_span"] = span->spanId();
        }
        bool resubmit = false;
        while (!resubmit) {
            auto reply = request(fetch);
            if (!reply.ok()) {
                if (++attempt >= max_retries) {
                    rt::Error err = reply.error();
                    return std::move(err).with("attempts",
                                               std::uint64_t{attempt});
                }
                if (!failureBackoff(nullptr))
                    return budgetError("fetch");
                reconnect();
                continue;
            }
            const obs::JsonValue &r = reply.value();
            const std::string *code = stringMember(r, "error");
            if (code && *code == "not_ready") {
                // Healthy wait: the job is queued or running.  Poll
                // sleeps are jittered but never charged to the budget.
                healthy();
                std::uint64_t base = policy.pollMs;
                if (const obs::JsonValue *hint = r.find("retry_after_ms");
                    hint && hint->kind() == obs::JsonValue::Kind::Uint) {
                    base = hint->asUint();
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(jittered(base)));
                continue;
            }
            if (code && *code == "unknown_job") {
                // The daemon forgot the id — it restarted (journal off)
                // or recovered the job under a new id.  Resubmitting is
                // safe: admission dedupes by content fingerprint.
                if (++attempt >= max_retries) {
                    return rt::Error(rt::ErrorKind::Config,
                                     "job lost after daemon restart")
                        .with("job", job)
                        .with("attempts", std::uint64_t{attempt});
                }
                if (!failureBackoff(&r))
                    return budgetError("resubmit");
                resubmit = true;
                continue;
            }
            return std::move(reply.value());
        }
    }
}

} // namespace dcfb::svc
