/**
 * @file
 * SN4L+Dis+BTB: the paper's proposed prefetcher (Section V).
 *
 * Three cooperating mechanisms behind one proactive engine:
 *
 *  - **SN4L** (Section V.A): a selective next-four-line prefetcher.  A
 *    16 K-entry tagless SeqTable holds a 1-bit usefulness status per
 *    block; only next-4 candidates whose bit is set are prefetched.
 *    Status updates: set on demand miss and on first use of a prefetched
 *    block, reset when a prefetched block is evicted unused.
 *
 *  - **Dis** (Section V.B): a discontinuity prefetcher.  A 4 K-entry
 *    direct-mapped, 4-bit-partially-tagged DisTable records the offset
 *    of the branch that caused a discontinuity miss; on replay the block
 *    is pre-decoded at that offset to recover the target (direct
 *    branches) or the BTB is consulted (indirect).
 *
 *  - **BTB prefetch** (Section V.C): every block that misses in the RLU
 *    is pre-decoded and its branches installed, block-at-a-time, in a
 *    32-entry 2-way BTB prefetch buffer beside the unmodified BTB.
 *
 *  The proactive engine (Section V.B "Proactive Sequential and
 *  Discontinuity Prefetching") chains regions ahead of the fetch stream:
 *  SeqQueue and DisQueue hold triggering blocks with a chain depth,
 *  candidates flow through RLUQueue, the 8-entry RLU filters repeated
 *  lookups, chains terminate at depth 4, and sequential tails beyond a
 *  discontinuity use SN1L instead of SN4L.
 *
 *  Every knob is configurable so that ablations (plain N4L, SN4L-only,
 *  SN4L+Dis, table-size and tagging sweeps) reuse this one engine.
 */

#ifndef DCFB_PREFETCH_SN4L_DIS_BTB_H
#define DCFB_PREFETCH_SN4L_DIS_BTB_H

#include <cstdint>
#include <memory>

#include "common/queue.h"
#include "common/stats.h"
#include "frontend/btb.h"
#include "isa/predecoder.h"
#include "prefetch/btb_prefetch_buffer.h"
#include "prefetch/dis_table.h"
#include "prefetch/prefetcher.h"
#include "prefetch/rlu.h"
#include "prefetch/seq_table.h"

namespace dcfb::rt {
class FaultInjector;
class InvariantRegistry;
} // namespace dcfb::rt

namespace dcfb::prefetch {

/** Configuration for the combined engine and its ablations. */
struct Sn4lDisBtbConfig
{
    bool selective = true;        //!< false = plain N4L behaviour
    bool enableDis = true;
    bool enableBtbPrefetch = true;
    bool proactive = true;        //!< chase chains via the queues
    unsigned seqDepth = 4;        //!< next-X for depth-0 triggers
    unsigned chainDepthLimit = 4; //!< proactive chain termination
    bool sn1lTails = true;        //!< SN1L for discontinuity tails
    std::size_t seqTableEntries = 16 * 1024; //!< 0 = unlimited
    DisTableConfig disTable;
    unsigned queueEntries = 16;   //!< SeqQueue/DisQueue/RLUQueue
    unsigned rluEntries = 8;
    unsigned btbPbEntries = 32;
    unsigned btbPbAssoc = 2;
    unsigned drainPerCycle = 2;   //!< RLUQueue pops per cycle (2 ports)
};

/**
 * The SN4L+Dis+BTB prefetcher.
 */
class Sn4lDisBtb final : public InstrPrefetcher
{
  public:
    /**
     * @param l1i_       cache to prefetch into
     * @param predecoder shared pre-decoder (Dis + BTB prefetch)
     * @param btb_       core BTB, consulted for indirect Dis targets
     *                   (may be nullptr)
     * @param config     engine configuration
     * @param arena      optional cell arena for the metadata tables
     */
    Sn4lDisBtb(mem::L1iCache &l1i_, const isa::Predecoder &predecoder,
               frontend::Btb *btb_,
               const Sn4lDisBtbConfig &config = Sn4lDisBtbConfig{},
               exec::Arena *arena = nullptr);

    /** Arena bytes this configuration's tables and queues want. */
    static std::size_t arenaBytes(const Sn4lDisBtbConfig &config);

    std::string name() const override;
    void tick(Cycle now) override;
    void onFetchInstr(const FetchedInstr &instr, Cycle now) override;
    std::uint64_t storageBits() const override;
    BtbPrefetchBuffer *btbPrefetchBuffer() override
    {
        return cfg.enableBtbPrefetch ? &btbPb : nullptr;
    }

    // L1i listener hooks (SN4L metadata + Dis recording + triggers).
    void onDemandAccess(Addr block_addr, bool hit) override;
    void onDemandMiss(Addr block_addr, bool sequential) override;
    void onFill(Addr block_addr, bool was_prefetch,
                const mem::BranchFootprint *bf) override;
    void onEvict(Addr block_addr, bool was_prefetch, bool demanded) override;
    void onPrefetchUsed(Addr block_addr) override;

    const SeqTable &seqTable() const { return seq; }
    const DisTable &disTable() const { return dis; }
    const Rlu &rlu() const { return rluFilter; }
    const StatSet &stats() const { return statSet; }
    StatSet &stats() { return statSet; }

    /** Attach a fault injector: backpressure faults reject pushes into
     *  the engine's SeqQueue/DisQueue/RLUQueue, starving the proactive
     *  chains.  nullptr restores unperturbed behaviour. */
    void setFaultInjector(rt::FaultInjector *f) { injector = f; }

    /** Register queue-occupancy and chain-depth invariants. */
    void registerInvariants(rt::InvariantRegistry &reg);

    /** Current queue occupancies (failure snapshots/tests). */
    struct QueueDepths
    {
        std::size_t seq;
        std::size_t dis;
        std::size_t rlu;
    };

    QueueDepths
    queueDepths() const
    {
        return {seqQueue.size(), disQueue.size(), rluQueue.size()};
    }

  private:
    struct Trigger
    {
        Addr blockAddr;
        unsigned depth;
    };

    /** Process one SeqQueue trigger: emit next-line candidates. */
    void processSeq(const Trigger &t);

    /** Process one DisQueue trigger: DisTable replay + BTB prefill. */
    void processDis(const Trigger &t, Cycle now);

    /** Process RLUQueue candidates (the cache-lookup stage). */
    void processRluQueue(Cycle now);

    /** Push a candidate into RLUQueue. */
    void emitCandidate(Addr block_addr, unsigned depth);

    /** Start a new chain trigger (Seq + Dis queues). */
    void pushTrigger(Addr block_addr, unsigned depth);

    /** Pre-decode a block and prefill the BTB prefetch buffer. */
    void prefillBtb(Addr block_addr);

    mem::L1iCache &l1i;
    const isa::Predecoder &pd;
    frontend::Btb *btb;
    Sn4lDisBtbConfig cfg;

    SeqTable seq;
    DisTable dis;
    Rlu rluFilter;
    BtbPrefetchBuffer btbPb;

    // Ring-backed queues (see common/queue.h): pushed/popped every
    // cycle, so no deque node churn on the hot path.
    BoundedQueue<Trigger> seqQueue;
    BoundedQueue<Trigger> disQueue;
    BoundedQueue<Trigger> rluQueue;

    /** Dis recording registers: the last two demanded instructions. */
    FetchedInstr lastInstr[2];
    bool haveInstr[2] = {false, false};

    rt::FaultInjector *injector = nullptr;

    StatSet statSet;

    // Typed handles for the per-trigger hot path.
    obs::Counter cLocalStatusHits, cLocalStatusFills, cSeqTableReads,
        cSn4lFiltered, cSn4lCandidates, cRluFiltered, cIssued;
    obs::Histogram hChainDepth, hRluQueueOcc;
    // Lazily-bound counters for the per-event sites that used string
    // adds (must stay lazy: see obs::LazyCounter).
    obs::LazyCounter cSeqOverflow, cDisOverflow, cRluOverflow,
        cMissStatusOff, cDisRecorded, cDisNotBranch, cDisNoTarget,
        cDisCandidates, cPrefillNoFootprint, cPrefillBlocks;
};

} // namespace dcfb::prefetch

#endif // DCFB_PREFETCH_SN4L_DIS_BTB_H
