/**
 * @file
 * Instruction-block pre-decoder.
 *
 * The pre-decoder is the shared hardware unit that Confluence-style BTB
 * prefetching, the Dis prefetcher, Boomerang and Shotgun all rely on
 * (Section V.C): given the raw bytes of an instruction block it extracts
 * the branch instructions and, for direct branches, their targets.
 *
 * Fixed-length mode decodes all 16 slots in parallel (one pass).  In
 * variable-length mode instruction boundaries are unknown, so the
 * pre-decoder must be *guided*: either by a single byte offset (DisTable)
 * or by a branch footprint of up to four byte offsets (Section IV,
 * Fig. 8) fetched from the DV-LLC.
 */

#ifndef DCFB_ISA_PREDECODER_H
#define DCFB_ISA_PREDECODER_H

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "isa/encoding.h"
#include "workload/image.h"

namespace dcfb::rt {
class FaultInjector;
} // namespace dcfb::rt

namespace dcfb::isa {

/** One branch discovered by pre-decoding a block. */
struct PredecodedBranch
{
    unsigned byteOffset = 0; //!< first byte of the branch within the block
    InstrKind kind = InstrKind::CondBranch;
    bool hasTarget = false;
    Addr target = kInvalidAddr;
    Addr pc = kInvalidAddr;  //!< full PC of the branch instruction
};

/**
 * Block pre-decoder bound to a program image.
 */
class Predecoder
{
  public:
    /**
     * @param image_ program bytes to decode
     * @param variable_length true for the VL-ISA configuration
     */
    Predecoder(const workload::ProgramImage &image_, bool variable_length)
        : image(image_), variableLength(variable_length)
    {}

    /**
     * Extract every branch in the block at @p block_addr.
     *
     * In fixed-length mode this decodes all slots.  In variable-length
     * mode full-block pre-decoding is only possible with a footprint, so
     * this returns an empty vector (mirroring the hardware limitation the
     * paper works around); use predecodeWithFootprint() instead.
     */
    std::vector<PredecodedBranch> predecodeBlock(Addr block_addr) const;

    /**
     * Zero-copy variant of predecodeBlock() for per-cycle callers (BTB
     * prefill): the returned span aliases the internal block cache (or,
     * under fault injection, a perturbed scratch copy) and is valid only
     * until the next Predecoder call.  Decoded contents and injector RNG
     * draw order are identical to predecodeBlock().
     */
    std::span<const PredecodedBranch> predecodeBlockSpan(Addr block_addr) const;

    /**
     * Single-branch variant of decodeAt() for DisTable replay: writes the
     * branch record to @p out and returns true only when the bytes at
     * @p byte_offset decode to a branch.  Identical outcomes (and
     * injector RNG draw order) to decodeAt().
     */
    bool decodeBranchAt(Addr block_addr, unsigned byte_offset,
                        PredecodedBranch &out) const;

    /**
     * Variable-length mode: decode exactly the instructions whose starting
     * byte offsets are listed in @p footprint (a branch footprint from the
     * DV-LLC).  Offsets that do not decode to branches are skipped.
     */
    std::vector<PredecodedBranch>
    predecodeWithFootprint(Addr block_addr,
                           const std::vector<std::uint8_t> &footprint) const;

    /**
     * Decode a single instruction at @p byte_offset within the block
     * (DisTable replay).  Returns a branch record only when the bytes at
     * that offset decode to a branch instruction; stale DisTable entries
     * thus yield no prefetch, exactly as in Section V.B "Replaying".
     */
    std::vector<PredecodedBranch> decodeAt(Addr block_addr,
                                           unsigned byte_offset) const;

    bool isVariableLength() const { return variableLength; }

    /** Attach a fault injector: corrupt faults perturb the targets of
     *  pre-decoded direct branches (wrong-block redirects), modeling a
     *  lying pre-decode unit.  nullptr restores exact decoding. */
    void setFaultInjector(rt::FaultInjector *f) { injector = f; }

  private:
    /** Apply corrupt faults to freshly decoded branches. */
    void perturb(std::vector<PredecodedBranch> &branches) const;

    /**
     * One cached *clean* fixed-length block decode.  The program image
     * is immutable, so a block's decode never changes; re-decoding all
     * 16 slots on every predecodeBlock() call was a measurable hot
     * path.  Fault perturbation is applied to a per-call copy, never to
     * the cached record, so the injector's RNG draw order is identical
     * with and without the cache.
     */
    struct CachedBlock
    {
        Addr tag = kInvalidAddr; //!< block number; kInvalidAddr = empty
        std::uint8_t count = 0;
        std::array<PredecodedBranch, kInstrPerBlock> branches{};
    };

    /** Direct-mapped cache size (power of two). */
    static constexpr std::size_t kCacheEntries = 256;

    /** The cached clean decode of @p block_addr, filling on miss. */
    const CachedBlock &cachedBlock(Addr block_addr) const;

    const workload::ProgramImage &image;
    bool variableLength;
    rt::FaultInjector *injector = nullptr;
    mutable std::vector<CachedBlock> cache; //!< sized on first use
    /** Perturbed copy backing predecodeBlockSpan() under injection. */
    mutable std::array<PredecodedBranch, kInstrPerBlock> scratch{};
};

} // namespace dcfb::isa

#endif // DCFB_ISA_PREDECODER_H
