/**
 * @file
 * Single source of truth for every user-facing command-line flag.
 *
 * The per-binary parsers (bench/bench_common.h, tools/dcfb_serve.cpp,
 * tools/dcfb_client.cpp) render their `--help`/usage text from these
 * tables, and `tools/dcfb-docgen` renders `docs/FLAGS.md` from the same
 * tables — so a flag added to a parser without a table entry is missing
 * from its own --help, and a table entry without regenerating the doc
 * fails the CI docs job (`dcfb-docgen --check docs/FLAGS.md`).
 */

#ifndef DCFB_CLI_FLAG_DOCS_H
#define DCFB_CLI_FLAG_DOCS_H

#include <string>
#include <vector>

namespace dcfb::cli {

/** One documented flag (or positional argument when name lacks "--"). */
struct FlagDoc
{
    std::string name;     //!< "--jobs"
    std::string arg;      //!< metavariable, "" for booleans
    std::string def;      //!< rendered default, "" when none applies
    std::string help;     //!< one-line description
    bool required = false;
};

/** One binary (or subcommand) and its flags. */
struct BinaryDoc
{
    std::string binary;      //!< e.g. "dcfb-serve"
    std::string synopsis;    //!< one-line invocation form
    std::string description; //!< short prose paragraph
    std::vector<FlagDoc> flags;
};

/** Every documented binary, in the order docs/FLAGS.md presents them. */
const std::vector<BinaryDoc> &allBinaryDocs();

/** The shared bench-harness table (used by bench_common.h --help). */
const BinaryDoc &benchHarnessDocs();

/** "[--json <file>] [--trace <file>] ..." for one table. */
std::string usageLine(const BinaryDoc &doc);

/** The full docs/FLAGS.md document (trailing newline included). */
std::string flagsMarkdown();

} // namespace dcfb::cli

#endif // DCFB_CLI_FLAG_DOCS_H
