/**
 * @file
 * Fundamental types and address arithmetic shared by every dcfb subsystem.
 *
 * The simulated machine follows Table III of the paper: 64-byte cache
 * blocks, 2 GHz cores.  All address manipulation helpers live here so the
 * block/offset conventions are defined exactly once.
 */

#ifndef DCFB_COMMON_TYPES_H
#define DCFB_COMMON_TYPES_H

#include <cstdint>

namespace dcfb {

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Simulation time in core clock cycles (2 GHz). */
using Cycle = std::uint64_t;

/** Cache-block geometry (64-byte blocks throughout the hierarchy). */
constexpr unsigned kBlockShift = 6;
constexpr unsigned kBlockBytes = 1u << kBlockShift;

/** Fixed-length ISA geometry: 4-byte instructions, 16 per block. */
constexpr unsigned kInstrBytes = 4;
constexpr unsigned kInstrPerBlock = kBlockBytes / kInstrBytes;

/** Sentinel for "no address". */
constexpr Addr kInvalidAddr = ~Addr{0};

/** Align @p addr down to its cache-block base. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~Addr{kBlockBytes - 1};
}

/** Cache-block number of @p addr (address divided by block size). */
constexpr Addr
blockNumber(Addr addr)
{
    return addr >> kBlockShift;
}

/** Byte offset of @p addr within its cache block. */
constexpr unsigned
blockOffset(Addr addr)
{
    return static_cast<unsigned>(addr & (kBlockBytes - 1));
}

/** Instruction-slot index of a fixed-length instruction within its block. */
constexpr unsigned
instrSlot(Addr addr)
{
    return blockOffset(addr) / kInstrBytes;
}

/** True when @p a and @p b fall in the same cache block. */
constexpr bool
sameBlock(Addr a, Addr b)
{
    return blockNumber(a) == blockNumber(b);
}

/** floor(log2(x)) for x > 0. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    unsigned r = 0;
    while (x > 1) {
        x >>= 1;
        ++r;
    }
    return r;
}

/** True when @p x is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace dcfb

#endif // DCFB_COMMON_TYPES_H
