/**
 * @file
 * Miss-attribution tracer.
 *
 * Every L1i and BTB miss the simulator observes can be tagged with the
 * paper's taxonomy class (sequential / discontinuity / BTB) and its
 * prefetch outcome (covered / late / uncovered / wasted) and streamed to
 * a bounded JSONL or Chrome trace-event file.
 *
 * The tracer is process-global and off by default.  Instrumentation
 * sites guard with the inline Tracing::enabled() check -- a pointer
 * compare that short-circuits before the thread-local run flag -- so
 * the disabled cost is effectively zero; all buffering lives out of
 * line and only runs when a sink is open AND a run is active on the
 * calling thread (Tracing::beginRun), which keeps warmup windows out
 * of the stream.
 *
 * Threading model: each simulated run buffers its events in a
 * thread-local run buffer (a run executes entirely on one worker, so
 * recording takes no lock), endRun() hands the finished buffer to the
 * sink under a mutex, and close() writes every run in a deterministic
 * order -- runs sorted by (workload, design), events within a run in
 * cycle order.  The stream is therefore identical for every `--jobs`
 * value; the PR 3 serial-only clamp is gone.
 *
 * Output format is chosen from the file extension: "*.jsonl" emits one
 * JSON object per line; anything else emits a Chrome trace-event array
 * loadable in chrome://tracing / Perfetto (instant events, ts = cycle,
 * pid = run index).  Each run's stream is bounded (default 1 M events
 * per run); overflow increments a dropped-event count reported in the
 * closing summary record.
 */

#ifndef DCFB_OBS_TRACE_H
#define DCFB_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace dcfb::obs {

/** Paper taxonomy of frontend misses (Section II). */
enum class MissClass : std::uint8_t {
    Sequential,    //!< spatially next to the previous demanded block
    Discontinuity, //!< control transfer into a non-resident block
    Btb,           //!< the frontend did not know the branch
    None,          //!< not a miss (e.g. a wasted-prefetch event)
};

/** Prefetch outcome attributed to the event. */
enum class MissOutcome : std::uint8_t {
    Covered,   //!< prefetch fully hid the fill (or avoided the BTB miss)
    Late,      //!< prefetch in flight: latency partially hidden
    Uncovered, //!< no prefetch; full penalty paid
    Wasted,    //!< prefetched block evicted without any demand use
};

const char *missClassName(MissClass cls);
const char *missOutcomeName(MissOutcome outcome);

enum class TraceFormat : std::uint8_t { Jsonl, ChromeTrace };

/** Format implied by @p path ("*.jsonl" -> Jsonl, else ChromeTrace). */
TraceFormat traceFormatForPath(const std::string &path);

/**
 * Process-global trace sink.
 */
class Tracing
{
  public:
    struct Config
    {
        std::string path;
        TraceFormat format = TraceFormat::Jsonl;
        std::uint64_t maxEvents = 1u << 20; //!< bound per run
    };

    /** Open a sink at @p path, format inferred from the extension.
     *  Returns false (and stays disabled) when the file cannot be
     *  created. */
    static bool open(const std::string &path);
    static bool open(const Config &config);

    /** Merge every finished run buffer, write the stream plus the
     *  closing summary record, and disable tracing. */
    static void close();

    /** True while a sink is open and a run is active on this thread.
     *  Inline so instrumentation sites pay one pointer compare when
     *  disabled (the thread-local read only happens sink-open). */
    static bool
    enabled()
    {
        return state != nullptr && tlRunActive;
    }

    /** True while a sink is open (independent of run state). */
    static bool
    sinkOpen()
    {
        return state != nullptr;
    }

    /** Mark the start of a measured run on the calling thread: opens a
     *  thread-local run buffer and enables event recording.  Runs on
     *  different workers record concurrently without synchronizing. */
    static void beginRun(const std::string &workload,
                         const std::string &design);

    /** Mark the end of this thread's run: hands the finished buffer to
     *  the sink and disables event recording on the thread. */
    static void endRun();

    /**
     * Record one attribution event.
     * @param unit  emitting component ("l1i" or "btb")
     * @param cycle simulation cycle of the event
     * @param addr  block or branch address
     */
    static void record(const char *unit, Cycle cycle, Addr addr,
                       MissClass cls, MissOutcome outcome);

    /** Events buffered so far across all runs (excludes dropped). */
    static std::uint64_t emitted();

    /** Events dropped after a run hit the per-run bound. */
    static std::uint64_t dropped();

  private:
    struct State;
    static State *state;
    static thread_local bool tlRunActive;
};

} // namespace dcfb::obs

#endif // DCFB_OBS_TRACE_H
