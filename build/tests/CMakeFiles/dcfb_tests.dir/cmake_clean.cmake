file(REMOVE_RECURSE
  "CMakeFiles/dcfb_tests.dir/test_common.cpp.o"
  "CMakeFiles/dcfb_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/dcfb_tests.dir/test_fetch.cpp.o"
  "CMakeFiles/dcfb_tests.dir/test_fetch.cpp.o.d"
  "CMakeFiles/dcfb_tests.dir/test_frontend.cpp.o"
  "CMakeFiles/dcfb_tests.dir/test_frontend.cpp.o.d"
  "CMakeFiles/dcfb_tests.dir/test_isa.cpp.o"
  "CMakeFiles/dcfb_tests.dir/test_isa.cpp.o.d"
  "CMakeFiles/dcfb_tests.dir/test_mem.cpp.o"
  "CMakeFiles/dcfb_tests.dir/test_mem.cpp.o.d"
  "CMakeFiles/dcfb_tests.dir/test_prefetch.cpp.o"
  "CMakeFiles/dcfb_tests.dir/test_prefetch.cpp.o.d"
  "CMakeFiles/dcfb_tests.dir/test_properties.cpp.o"
  "CMakeFiles/dcfb_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/dcfb_tests.dir/test_sim.cpp.o"
  "CMakeFiles/dcfb_tests.dir/test_sim.cpp.o.d"
  "CMakeFiles/dcfb_tests.dir/test_workload.cpp.o"
  "CMakeFiles/dcfb_tests.dir/test_workload.cpp.o.d"
  "dcfb_tests"
  "dcfb_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcfb_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
