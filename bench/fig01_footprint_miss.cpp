/**
 * @file
 * Figure 1: footprint miss ratio in Shotgun's U-BTB per workload.
 * Paper band: 4-31 %, worst on OLTP (DB A).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace dcfb;
    bench::Harness h(argc, argv, "Fig. 1 - Shotgun U-BTB footprint miss ratio",
                  "4-31% across workloads; OLTP (DB A) worst (31%)");

    sim::Table table({"workload", "U-BTB lookups", "footprint misses",
                      "footprint miss ratio"});
    for (const auto &name : bench::allWorkloads()) {
        auto cfg = sim::makeConfig(workload::serverProfile(name),
                                   sim::Preset::Shotgun);
        auto res = sim::simulate(cfg, bench::windows());
        table.addRow({name,
                      std::to_string(res.stat("sg.ubtb_lookups")),
                      std::to_string(res.stat("sg.ubtb_footprint_misses")),
                      sim::Table::pct(res.ratio(
                          "sg.ubtb_footprint_misses", "sg.ubtb_lookups"))});
    }
    h.report(table, "Footprint miss ratio in Shotgun");
    return 0;
}
