# Empty compiler generated dependencies file for fig18_btb_sweep.
# This may be replaced when dependencies are built.
