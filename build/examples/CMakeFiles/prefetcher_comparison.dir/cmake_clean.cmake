file(REMOVE_RECURSE
  "CMakeFiles/prefetcher_comparison.dir/prefetcher_comparison.cpp.o"
  "CMakeFiles/prefetcher_comparison.dir/prefetcher_comparison.cpp.o.d"
  "prefetcher_comparison"
  "prefetcher_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetcher_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
