# Empty dependencies file for tab01_empty_ftq.
# This may be replaced when dependencies are built.
