/**
 * @file
 * Wire protocol of the experiment service (dcfb-serve / dcfb-client).
 *
 * Transport is newline-delimited JSON over a Unix-domain socket: one
 * request object per line, one reply object per line, schema
 * `dcfb-svc-v1`.  Requests (EXPERIMENTS.md documents the full schema):
 *
 *   {"op":"ping"}
 *   {"op":"submit","workload":"OLTP (DB A)","preset":"SN4L+Dis+BTB",
 *    "warm":20000,"measure":20000,          // optional, default windows
 *    "seed":42,                             // optional run seed
 *    "inject":"drop:rate=0.5,seed=3",       // optional fault spec
 *    "deadline_ms":30000}                   // optional queue deadline
 *   {"op":"status","job":"job-7"}
 *   {"op":"fetch","job":"job-7"}
 *   {"op":"cancel","job":"job-7"}
 *   {"op":"stats"}
 *   {"op":"metrics"}                        // Prometheus exposition
 *   {"op":"drain"}                          // admin: same as SIGTERM
 *
 * Any request may carry the optional span-stitching fields
 * "trace_id" and "parent_span" (non-negative integers minted by
 * obs::Spans): the daemon parents its handling spans under them and
 * echoes "trace_id" in the reply, so one `--trace-spans` timeline
 * stitches client -> daemon -> pool -> simulate.  Requests without
 * them behave exactly as before.
 *
 * Every reply carries "ok".  Failures carry "error" (a stable code) and
 * "message"; the admission-control reject additionally carries
 * "retry_after_ms" so clients can back off and retry:
 *
 *   {"ok":false,"error":"queue_full","retry_after_ms":250,...}
 *
 * Crash-safety fields (present only when true — replies are unchanged
 * when the journal is off):
 *
 *  - "already_known": a submit whose fingerprint key matches a job the
 *    journal-backed daemon already finished replies with that job's id
 *    instead of admitting new work — the fingerprint doubles as a
 *    client idempotency key, so blind resubmission after a lost reply
 *    or daemon restart is always safe;
 *  - "recovered": the job was replayed from the journal after a
 *    restart (on submit/status/fetch replies).
 *
 * The `metrics` reply wraps the Prometheus text-exposition body
 * (format 0.0.4) plus the sampler ring:
 *
 *   {"ok":true,"op":"metrics",
 *    "content_type":"text/plain; version=0.0.4",
 *    "body":"# TYPE dcfb_svc_submitted_total counter\n...",
 *    "series":{"names":[...],"samples":[...]}}
 *
 * Parsing is fully typed: malformed requests become rt::Errors, which
 * render into "bad_request" replies — the daemon never dies on input.
 */

#ifndef DCFB_SVC_PROTOCOL_H
#define DCFB_SVC_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>

#include "obs/json.h"
#include "rt/error.h"
#include "rt/faults.h"
#include "sim/config.h"
#include "sim/simulator.h"

namespace dcfb::svc {

/** Protocol schema tag, echoed in every reply. */
inline constexpr const char *kProtocolSchema = "dcfb-svc-v1";

/** Preset for a report name ("SN4L+Dis+BTB"); error lists all names. */
rt::Expected<sim::Preset> presetFromName(const std::string &name);

/** Parameters of one submit request. */
struct SubmitSpec
{
    std::string workload;
    sim::Preset preset = sim::Preset::Baseline;
    sim::RunWindows windows;              //!< server default when omitted
    bool hasWindows = false;
    std::optional<std::uint64_t> seed;    //!< run-seed override
    rt::FaultPlan faults;                 //!< parsed from "inject"
    std::uint64_t deadlineMs = 0;         //!< 0 = no deadline
};

/** One parsed request. */
struct Request
{
    enum class Op {
        Ping,
        Submit,
        Status,
        Fetch,
        Cancel,
        Stats,
        Metrics,
        Drain,
    };

    Op op = Op::Ping;
    std::string job;   //!< status/fetch/cancel target
    SubmitSpec submit; //!< valid when op == Submit

    std::uint64_t traceId = 0;    //!< optional "trace_id" (0 = none)
    std::uint64_t parentSpan = 0; //!< optional "parent_span"
};

/** Number of Request::Op values (per-op latency histograms index by
 *  the enum). */
inline constexpr unsigned kOpCount = 8;

/** Wire name of @p op ("ping", "submit", ...). */
const char *opName(Request::Op op);

/** Parse one request line; typed error on any malformed input. */
rt::Expected<Request> parseRequest(const std::string &line);

/**
 * Render @p spec back as a submit-shaped request document (the inverse
 * of parseRequest for the submit fields).  The journal stores admits in
 * this form so recovery replays them through the exact same validation
 * path a live submit takes.
 */
obs::JsonValue submitSpecToJson(const SubmitSpec &spec);

/** Reply skeletons (callers add op-specific fields). */
obs::JsonValue okReply();
obs::JsonValue errorReply(const std::string &code,
                          const std::string &message);

/** Render an rt::Error as a "bad_request" reply (context included). */
obs::JsonValue errorReply(const rt::Error &error);

} // namespace dcfb::svc

#endif // DCFB_SVC_PROTOCOL_H
