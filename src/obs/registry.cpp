#include "obs/registry.h"

namespace dcfb::obs {

HistogramSnapshot
HistogramSnapshot::from(const HistData &d)
{
    HistogramSnapshot s;
    s.count = d.count;
    s.sum = d.sum;
    s.max = d.max;
    for (unsigned i = 0; i < kHistBuckets; ++i) {
        if (d.buckets[i])
            s.buckets.emplace_back(i, d.buckets[i]);
    }
    return s;
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    count += other.count;
    sum += other.sum;
    max = std::max(max, other.max);
    // Merge the sparse bucket lists, keeping ascending index order.
    std::vector<std::pair<unsigned, std::uint64_t>> merged;
    merged.reserve(buckets.size() + other.buckets.size());
    std::size_t a = 0, b = 0;
    while (a < buckets.size() || b < other.buckets.size()) {
        if (b >= other.buckets.size() ||
            (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
            merged.push_back(buckets[a++]);
        } else if (a >= buckets.size() ||
                   other.buckets[b].first < buckets[a].first) {
            merged.push_back(other.buckets[b++]);
        } else {
            merged.emplace_back(buckets[a].first,
                                buckets[a].second + other.buckets[b].second);
            ++a;
            ++b;
        }
    }
    buckets = std::move(merged);
}

Counter
StatRegistry::counter(std::string_view name)
{
    return Counter(&counterSlots[counterIndex(name)]);
}

std::size_t
StatRegistry::counterIndex(std::string_view name)
{
    auto it = counterIds.find(name);
    if (it != counterIds.end())
        return it->second;
    std::size_t id = counterSlots.size();
    counterSlots.push_back(0);
    counterIds.emplace(std::string(name), id);
    return id;
}

Histogram
StatRegistry::histogram(std::string_view name)
{
    auto it = histIds.find(name);
    if (it == histIds.end()) {
        std::size_t id = histSlots.size();
        histSlots.emplace_back();
        it = histIds.emplace(std::string(name), id).first;
    }
    return Histogram(&histSlots[it->second]);
}

void
StatRegistry::add(std::string_view name, std::uint64_t delta)
{
    counterSlots[counterIndex(name)] += delta;
}

std::uint64_t
StatRegistry::get(std::string_view name) const
{
    auto it = counterIds.find(name);
    return it == counterIds.end() ? 0 : counterSlots[it->second];
}

void
StatRegistry::reset()
{
    for (auto &slot : counterSlots)
        slot = 0;
    for (auto &h : histSlots)
        h.reset();
}

std::map<std::string, std::uint64_t>
StatRegistry::counters() const
{
    std::map<std::string, std::uint64_t> out;
    for (const auto &kv : counterIds)
        out.emplace(kv.first, counterSlots[kv.second]);
    return out;
}

std::map<std::string, HistogramSnapshot>
StatRegistry::histograms() const
{
    std::map<std::string, HistogramSnapshot> out;
    for (const auto &kv : histIds)
        out.emplace(kv.first, HistogramSnapshot::from(histSlots[kv.second]));
    return out;
}

} // namespace dcfb::obs
